#ifndef SWOLE_COST_ESTIMATES_H_
#define SWOLE_COST_ESTIMATES_H_

#include <cstdint>

#include "expr/expr.h"

// Sampling-based cardinality estimation feeding the cost model's sigma and
// hash-table-size inputs. Deterministic: strided samples, no RNG.

namespace swole {

class Table;

/// Fraction of rows satisfying boolean `expr`, from a strided sample of at
/// most `max_sample` rows. Returns a value in [0, 1].
double EstimateSelectivity(const Table& table, const Expr& expr,
                           int64_t max_sample = 16384);

/// Estimated number of distinct values of `expr` over the table, from a
/// strided sample (first-order jackknife scale-up, capped at row count).
int64_t EstimateDistinctCount(const Table& table, const Expr& expr,
                              int64_t max_sample = 16384);

}  // namespace swole

#endif  // SWOLE_COST_ESTIMATES_H_
