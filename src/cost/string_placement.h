#ifndef SWOLE_COST_STRING_PLACEMENT_H_
#define SWOLE_COST_STRING_PLACEMENT_H_

#include <string>
#include <vector>

#include "cost/cost_model.h"
#include "expr/expr.h"

// Access-aware placement of raw-string predicates (the pullup question,
// applied to the predicate class that dominates real OLAP traffic). A
// kLike conjunct over a kText fact column can run pushed into the scan —
// every row pays a sequential kernel match — or pulled above the join
// tree and the other fact conjuncts, where only surviving rows pay a
// random arena touch plus the match. DecideStringPlacement splits the
// fact filter accordingly; every strategy engine, the reference oracle,
// and the JIT generator honor the same split, so placement changes access
// patterns only, never results (AND is commutative).

namespace swole {

class Catalog;
struct QueryPlan;

enum class StringPlacementMode : uint8_t {
  kAuto,       // cost model decides (default)
  kForcePush,  // SWOLE_STR_PLACEMENT=push
  kForcePull,  // SWOLE_STR_PLACEMENT=pull
};

/// Reads SWOLE_STR_PLACEMENT=auto|push|pull (unset/unknown -> auto).
/// Re-read on every call: tests and benches flip it between queries.
StringPlacementMode StringPlacementModeFromEnv();

struct StringPredSplit {
  /// What the scan evaluates: the whole fact filter when nothing is
  /// pulled, the non-string remainder otherwise (null when the plan has
  /// no fact filter, or every conjunct was pulled).
  ExprPtr scan_filter;

  /// String conjuncts to evaluate after all other qualifications. The
  /// pointers alias plan.fact_filter's tree — the plan outlives execution.
  std::vector<const Expr*> pulled;

  bool pull = false;  // true iff `pulled` is non-empty

  /// Model inputs behind the decision (zeroed when there was nothing to
  /// decide) and the one-line rendering for traces/decision logs.
  StringPredWorkload workload;
  std::string rationale;
};

/// Splits plan.fact_filter into scan-resident and pulled string conjuncts.
/// sigma_other combines the estimated selectivity of the non-string fact
/// conjuncts with every dim-tree filter (reverse/disjunctive joins are
/// conservatively ignored: they only make pulling more attractive, so
/// ignoring them biases toward the safe pushdown default).
StringPredSplit DecideStringPlacement(const QueryPlan& plan,
                                      const Catalog& catalog,
                                      const CostProfile& profile,
                                      StringPlacementMode mode);

/// Convenience overload using the env-configured mode.
StringPredSplit DecideStringPlacement(const QueryPlan& plan,
                                      const Catalog& catalog,
                                      const CostProfile& profile);

}  // namespace swole

#endif  // SWOLE_COST_STRING_PLACEMENT_H_
