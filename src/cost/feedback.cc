#include "cost/feedback.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "common/env.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "obs/metrics.h"

namespace swole::cost {

namespace {

RefitMode ParseRefitMode(const std::string& value) {
  if (value.empty() || value == "off" || value == "0") return RefitMode::kOff;
  if (value == "observe") return RefitMode::kObserve;
  if (value == "apply" || value == "on" || value == "1") {
    return RefitMode::kApply;
  }
  SWOLE_LOG(WARNING) << "ignoring malformed SWOLE_COST_REFIT=\"" << value
                     << "\"; expected off|observe|apply, using off";
  return RefitMode::kOff;
}

std::atomic<int>& ModeStorage() {
  // Parsed once; SetRefitModeForTest overwrites.
  static std::atomic<int> mode{static_cast<int>(
      ParseRefitMode(GetEnvString("SWOLE_COST_REFIT", "")))};
  return mode;
}

double Clamp(double v, double lo, double hi) {
  return std::min(hi, std::max(lo, v));
}

// One guarded update step: the raw decayed-LS estimate moves the applied
// scale by at most ±kMaxStepPerObservation relative, then the absolute
// guard rail clamps it.
double GuardedStep(double current, double raw) {
  double stepped =
      Clamp(raw, current * (1.0 - CostFeedback::kMaxStepPerObservation),
            current * (1.0 + CostFeedback::kMaxStepPerObservation));
  return Clamp(stepped, CostFeedback::kMinScale, CostFeedback::kMaxScale);
}

}  // namespace

RefitMode CurrentRefitMode() {
  return static_cast<RefitMode>(
      ModeStorage().load(std::memory_order_relaxed));
}

void SetRefitModeForTest(RefitMode mode) {
  ModeStorage().store(static_cast<int>(mode), std::memory_order_relaxed);
}

bool RefitEnabled() { return CurrentRefitMode() != RefitMode::kOff; }

const char* RefitModeName(RefitMode mode) {
  switch (mode) {
    case RefitMode::kOff:
      return "off";
    case RefitMode::kObserve:
      return "observe";
    case RefitMode::kApply:
      return "apply";
  }
  return "?";
}

CostFeedback& CostFeedback::Global() {
  static CostFeedback* instance = new CostFeedback();
  return *instance;
}

void CostFeedback::Observe(const QueryObservation& record) {
  if (record.rows <= 0 || record.elapsed_ns <= 0 || record.predicted_ns <= 0) {
    return;
  }

  static obs::Counter& observations =
      obs::MetricsRegistry::Global().GetCounter("cost.refit.observations");
  static obs::Gauge& bw_gauge = obs::MetricsRegistry::Global().GetGauge(
      "cost.refit.bandwidth_scale_x1000");
  static obs::Gauge& mem_gauge = obs::MetricsRegistry::Global().GetGauge(
      "cost.refit.memory_scale_x1000");
  static obs::Gauge& sample_gauge =
      obs::MetricsRegistry::Global().GetGauge("cost.refit.samples");
  observations.Add(1);

  std::lock_guard<std::mutex> lock(mu_);
  samples_ += 1;

  // Bandwidth fit: one-parameter decayed least squares of observed total
  // ns against the model's prediction. Minimizing sum lambda^k (obs_k -
  // s * pred_k)^2 gives s = sum(pred*obs) / sum(pred^2).
  time_pp_ = time_pp_ * kDecay + record.predicted_ns * record.predicted_ns;
  time_po_ = time_po_ * kDecay + record.predicted_ns * record.elapsed_ns;
  if (time_pp_ > 0) {
    bandwidth_scale_ = GuardedStep(bandwidth_scale_, time_po_ / time_pp_);
  }

  // Memory fit: same decayed LS over LLC misses per tuple, usable only
  // when hardware counters ran and the model expected misses (a cache-
  // resident aggregation predicts ~0 misses — no signal to fit).
  if (record.cycles > 0 && record.expected_misses_per_tuple > 0) {
    double observed_mpt =
        static_cast<double>(record.llc_misses) / std::max(1.0, record.rows);
    mem_pp_ =
        mem_pp_ * kDecay +
        record.expected_misses_per_tuple * record.expected_misses_per_tuple;
    mem_po_ =
        mem_po_ * kDecay + record.expected_misses_per_tuple * observed_mpt;
    if (mem_pp_ > 0) {
      memory_scale_ = GuardedStep(memory_scale_, mem_po_ / mem_pp_);
    }
  }

  if (record.cycles > 0) {
    double observed = record.elapsed_ns / static_cast<double>(record.cycles);
    ns_per_cycle_ = ns_per_cycle_ <= 0
                        ? observed
                        : ns_per_cycle_ * kDecay + observed * (1.0 - kDecay);
  }

  // Epoch: bump only on material movement (> 1% relative), so a converged
  // fit stops invalidating memoized plan analyses.
  if (std::abs(bandwidth_scale_ - epoch_bandwidth_scale_) >
          0.01 * epoch_bandwidth_scale_ ||
      std::abs(memory_scale_ - epoch_memory_scale_) >
          0.01 * epoch_memory_scale_) {
    epoch_ += 1;
    epoch_bandwidth_scale_ = bandwidth_scale_;
    epoch_memory_scale_ = memory_scale_;
  }

  bw_gauge.Set(static_cast<int64_t>(bandwidth_scale_ * 1000));
  mem_gauge.Set(static_cast<int64_t>(memory_scale_ * 1000));
  sample_gauge.Set(samples_);
}

CostProfile CostFeedback::Refitted(const CostProfile& base) const {
  if (CurrentRefitMode() != RefitMode::kApply) return base;
  std::lock_guard<std::mutex> lock(mu_);
  if (samples_ < kMinSamples) return base;
  CostProfile p = base;
  p.read_seq *= bandwidth_scale_;
  p.read_cond *= bandwidth_scale_;
  p.ht_lookup_l3 *= memory_scale_;
  p.ht_lookup_mem *= memory_scale_;
  p.ht_insert *= memory_scale_;
  p.ht_delete *= memory_scale_;
  if (ns_per_cycle_ > 0) {
    p.ns_per_cycle =
        Clamp(ns_per_cycle_, base.ns_per_cycle * 0.5, base.ns_per_cycle * 2.0);
  }
  return p;
}

int64_t CostFeedback::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

int64_t CostFeedback::samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_;
}

double CostFeedback::bandwidth_scale() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bandwidth_scale_;
}

double CostFeedback::memory_scale() const {
  std::lock_guard<std::mutex> lock(mu_);
  return memory_scale_;
}

void CostFeedback::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  time_pp_ = time_po_ = 0;
  bandwidth_scale_ = 1.0;
  mem_pp_ = mem_po_ = 0;
  memory_scale_ = 1.0;
  ns_per_cycle_ = 0;
  samples_ = 0;
  epoch_bandwidth_scale_ = epoch_memory_scale_ = 1.0;
  epoch_ += 1;  // memoized analyses made under the old state re-analyze
}

void CostFeedback::ForceStateForTest(double bandwidth_scale,
                                     double memory_scale) {
  std::lock_guard<std::mutex> lock(mu_);
  bandwidth_scale_ = Clamp(bandwidth_scale, kMinScale, kMaxScale);
  memory_scale_ = Clamp(memory_scale, kMinScale, kMaxScale);
  samples_ = kMinSamples;
  ns_per_cycle_ = 0;
  epoch_bandwidth_scale_ = bandwidth_scale_;
  epoch_memory_scale_ = memory_scale_;
  epoch_ += 1;
}

std::string CostFeedback::ToString() const {
  std::lock_guard<std::mutex> lock(mu_);
  return StringFormat(
      "refit{mode=%s samples=%lld bw=%.3f mem=%.3f ns_per_cycle=%.3f "
      "epoch=%lld}",
      RefitModeName(CurrentRefitMode()), static_cast<long long>(samples_),
      bandwidth_scale_, memory_scale_, ns_per_cycle_,
      static_cast<long long>(epoch_));
}

}  // namespace swole::cost
