#include "cost/estimates.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"
#include "expr/scalar_eval.h"
#include "storage/table.h"

namespace swole {

double EstimateSelectivity(const Table& table, const Expr& expr,
                           int64_t max_sample) {
  SWOLE_CHECK_GT(max_sample, 0);
  int64_t rows = table.num_rows();
  if (rows == 0) return 0.0;
  int64_t stride = std::max<int64_t>(1, rows / max_sample);
  ScalarEvaluator eval(table);
  int64_t sampled = 0;
  int64_t hits = 0;
  for (int64_t row = 0; row < rows; row += stride) {
    ++sampled;
    if (eval.Eval(expr, row) != 0) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(sampled);
}

int64_t EstimateDistinctCount(const Table& table, const Expr& expr,
                              int64_t max_sample) {
  SWOLE_CHECK_GT(max_sample, 0);
  int64_t rows = table.num_rows();
  if (rows == 0) return 0;
  int64_t stride = std::max<int64_t>(1, rows / max_sample);
  ScalarEvaluator eval(table);
  std::unordered_map<int64_t, int64_t> counts;
  int64_t sampled = 0;
  for (int64_t row = 0; row < rows; row += stride) {
    ++sampled;
    counts[eval.Eval(expr, row)]++;
  }
  int64_t distinct = static_cast<int64_t>(counts.size());
  if (stride == 1) return distinct;  // exact
  // First-order jackknife: d_est = d + f1 * (n/sample - 1), where f1 is the
  // number of values seen exactly once.
  int64_t f1 = 0;
  for (const auto& [value, count] : counts) {
    if (count == 1) ++f1;
  }
  double scale = static_cast<double>(rows) / static_cast<double>(sampled);
  int64_t estimate =
      distinct + static_cast<int64_t>(static_cast<double>(f1) * (scale - 1.0));
  return std::min(estimate, rows);
}

}  // namespace swole
