#include "cost/string_placement.h"

#include <utility>

#include "common/env.h"
#include "common/string_util.h"
#include "cost/estimates.h"
#include "plan/plan.h"
#include "storage/table.h"

namespace swole {

namespace {

/// True for a conjunct the string kernels own: LIKE over a raw-text fact
/// column. Dictionary LIKE stays where it is — its per-code mask lookup is
/// already a cheap integer probe, not a per-row string match.
bool IsRawStringConjunct(const Expr& e, const Table& fact) {
  if (e.kind != ExprKind::kLike) return false;
  const Expr& target = *e.children[0];
  if (target.kind != ExprKind::kColumnRef) return false;
  auto col = fact.GetColumn(target.column);
  return col.ok() && (*col)->type().logical == LogicalType::kText;
}

/// Product of the estimated selectivities of every filter in a dim tree.
double DimTreeSelectivity(const std::vector<DimJoin>& dims,
                          const Catalog& catalog) {
  double sigma = 1.0;
  for (const DimJoin& dim : dims) {
    if (dim.filter != nullptr) {
      sigma *= EstimateSelectivity(catalog.TableRef(dim.hop.to_table),
                                   *dim.filter);
    }
    sigma *= DimTreeSelectivity(dim.children, catalog);
  }
  return sigma;
}

/// AND-folds clones of `conjuncts` (null when empty).
ExprPtr FoldConjunction(const std::vector<const Expr*>& conjuncts) {
  ExprPtr out;
  for (const Expr* c : conjuncts) {
    out = out == nullptr ? c->Clone() : And(std::move(out), c->Clone());
  }
  return out;
}

}  // namespace

StringPlacementMode StringPlacementModeFromEnv() {
  const std::string mode = GetEnvString("SWOLE_STR_PLACEMENT", "auto");
  if (mode == "push") return StringPlacementMode::kForcePush;
  if (mode == "pull") return StringPlacementMode::kForcePull;
  return StringPlacementMode::kAuto;
}

StringPredSplit DecideStringPlacement(const QueryPlan& plan,
                                      const Catalog& catalog,
                                      const CostProfile& profile,
                                      StringPlacementMode mode) {
  StringPredSplit split;
  if (plan.fact_filter == nullptr) {
    split.rationale = "no fact filter";
    return split;
  }
  const Table& fact = catalog.TableRef(plan.fact_table);

  std::vector<const Expr*> scan_conjuncts;
  std::vector<const Expr*> string_conjuncts;
  for (const Expr* c : SplitConjuncts(*plan.fact_filter)) {
    (IsRawStringConjunct(*c, fact) ? string_conjuncts : scan_conjuncts)
        .push_back(c);
  }
  if (string_conjuncts.empty()) {
    split.scan_filter = plan.fact_filter->Clone();
    split.rationale = "no raw-string conjuncts";
    return split;
  }

  // Model inputs: everything that qualifies a fact row besides the string
  // match itself — the non-string fact conjuncts and the dim trees.
  split.workload.rows = static_cast<double>(fact.num_rows());
  double sigma_other = DimTreeSelectivity(plan.dims, catalog);
  ExprPtr rest = FoldConjunction(scan_conjuncts);
  if (rest != nullptr) sigma_other *= EstimateSelectivity(fact, *rest);
  split.workload.sigma_other = sigma_other;
  double avg_len = 0;
  for (const Expr* c : string_conjuncts) {
    const Column& col = fact.ColumnRef(c->children[0]->column);
    avg_len += col.text()->ComputeStats().avg_len;
  }
  split.workload.avg_len =
      avg_len / static_cast<double>(string_conjuncts.size());

  StringPlacement choice;
  const char* why;
  switch (mode) {
    case StringPlacementMode::kForcePush:
      choice = StringPlacement::kPushdown;
      why = "forced (SWOLE_STR_PLACEMENT=push)";
      break;
    case StringPlacementMode::kForcePull:
      choice = StringPlacement::kPullup;
      why = "forced (SWOLE_STR_PLACEMENT=pull)";
      break;
    default:
      choice = ChooseStringPlacement(profile, split.workload);
      why = "cost model";
      break;
  }
  split.rationale =
      StringFormat("str_placement=%s (%s; %s)", StringPlacementName(choice),
                   why, DescribeStringDecision(profile, split.workload).c_str());

  if (choice == StringPlacement::kPullup) {
    split.pull = true;
    split.pulled = std::move(string_conjuncts);
    split.scan_filter = std::move(rest);
  } else {
    split.scan_filter = plan.fact_filter->Clone();
  }
  return split;
}

StringPredSplit DecideStringPlacement(const QueryPlan& plan,
                                      const Catalog& catalog,
                                      const CostProfile& profile) {
  return DecideStringPlacement(plan, catalog, profile,
                               StringPlacementModeFromEnv());
}

}  // namespace swole
