#include "cost/cost_model.h"

#include <algorithm>

#include "common/string_util.h"
#include "expr/expr.h"

namespace swole {

std::string CostProfile::ToString() const {
  return StringFormat(
      "read_seq=%.2f read_cond=%.2f ht_insert=%.2f ht_null=%.2f "
      "ht_delete=%.2f ht_lookup={l1=%.2f l2=%.2f l3=%.2f mem=%.2f} "
      "ns_per_cycle=%.3f str_seq_byte=%.3f",
      read_seq, read_cond, ht_insert, ht_null, ht_delete, ht_lookup_l1,
      ht_lookup_l2, ht_lookup_l3, ht_lookup_mem, ns_per_cycle, str_seq_byte);
}

namespace {

// Sequential reads are bandwidth-bound: kernels now execute at the
// column's physical width, so the per-tuple cost of a streaming read
// scales with bytes moved (8 bytes = the calibrated read_seq). The
// conditional read_cond terms deliberately do NOT scale — a random touch
// pays its cache line regardless of element width.
double SeqRead(const CostProfile& p, double avg_read_width) {
  return p.read_seq * (avg_read_width / 8.0);
}

}  // namespace

double HybridCost(const CostProfile& p, const AggWorkload& w) {
  // Selection: one sequential read. Aggregation: for selected tuples only,
  // the max of compute and the conditional reads of every aggregation
  // input (plus the group lookup).
  double reads = p.read_cond * w.num_read_columns;
  double agg = std::max(w.comp_ns, reads);
  if (w.group_ht_bytes > 0) {
    agg = std::max(agg, p.HtLookup(w.group_ht_bytes));
  }
  return w.rows * (SeqRead(p, w.avg_read_width) + w.selectivity * agg);
}

double ValueMaskingCost(const CostProfile& p, const AggWorkload& w) {
  // Every tuple is aggregated; the conditional reads become sequential.
  double reads = SeqRead(p, w.avg_read_width) * w.num_read_columns;
  double agg = std::max(w.comp_ns, reads);
  if (w.group_ht_bytes > 0) {
    // Unconditional lookup for every tuple (the VM_gb extension, §III-B).
    agg = std::max(agg, p.HtLookup(w.group_ht_bytes));
  }
  return w.rows * (SeqRead(p, w.avg_read_width) + agg);
}

double KeyMaskingCost(const CostProfile& p, const AggWorkload& w) {
  // Valid aggregations do a real lookup; masked ones hit the cached
  // throwaway entry.
  double reads = SeqRead(p, w.avg_read_width) * w.num_read_columns;
  double valid = std::max({w.comp_ns, reads,
                           p.HtLookup(w.group_ht_bytes)});
  double masked = std::max({w.comp_ns, reads, p.ht_null});
  return w.rows * (SeqRead(p, w.avg_read_width) + w.selectivity * valid +
                   (1.0 - w.selectivity) * masked);
}

double GroupjoinCost(const CostProfile& p, const GroupjoinWorkload& w) {
  double build =
      w.s_rows * (SeqRead(p, w.avg_read_width) +
                  w.sigma_s * (p.read_cond + p.ht_insert));
  double probe =
      w.r_rows * (SeqRead(p, w.avg_read_width) +
                  w.sigma_r * (p.read_cond + p.HtLookup(w.ht_bytes)) +
                  w.match_prob * std::max(w.comp_ns, p.read_cond));
  return build + probe;
}

double EagerAggregationCost(const CostProfile& p,
                            const GroupjoinWorkload& w) {
  // Unconditional aggregation of R by the join key, using the best of the
  // three aggregation techniques; then deletion of non-qualifying keys.
  AggWorkload agg;
  agg.rows = 1.0;  // per-tuple cost; scaled below
  agg.selectivity = w.sigma_r;
  agg.comp_ns = w.comp_ns;
  agg.group_ht_bytes = w.ea_ht_bytes > 0 ? w.ea_ht_bytes : w.ht_bytes;
  agg.num_read_columns = w.num_read_columns;
  agg.avg_read_width = w.avg_read_width;
  double per_tuple = std::min({HybridCost(p, agg), ValueMaskingCost(p, agg),
                               KeyMaskingCost(p, agg)});
  double build =
      w.r_rows * (SeqRead(p, w.avg_read_width) + w.sigma_r * per_tuple);
  double del =
      w.s_rows * (SeqRead(p, w.avg_read_width) +
                  (1.0 - w.sigma_s) * (p.read_cond + p.ht_delete));
  return build + del;
}

double StringPushedCost(const CostProfile& p, const StringPredWorkload& w) {
  return w.rows * (p.read_seq + w.avg_len * p.str_seq_byte);
}

double StringPulledCost(const CostProfile& p, const StringPredWorkload& w) {
  return w.rows * w.sigma_other * (p.read_cond + w.avg_len * p.str_seq_byte);
}

double EstimateComputeNs(const CostProfile& p, const Expr& expr) {
  double cycles = 0;
  switch (expr.kind) {
    case ExprKind::kColumnRef:
      cycles = 1;  // load
      break;
    case ExprKind::kLiteral:
      cycles = 0;
      break;
    case ExprKind::kBinary:
      switch (expr.op) {
        case BinaryOp::kDiv:
          cycles = 25;  // integer division latency
          break;
        case BinaryOp::kMul:
          cycles = 3;
          break;
        default:
          cycles = 1;
          break;
      }
      break;
    case ExprKind::kNot:
      cycles = 1;
      break;
    case ExprKind::kLike:
      cycles = 2;  // dictionary mask lookup
      break;
    case ExprKind::kInList:
      cycles = static_cast<double>(expr.in_list.size());
      break;
    case ExprKind::kCase:
      cycles = 2;  // selection overhead; arms accounted below
      break;
  }
  double total = cycles * p.ns_per_cycle;
  for (const ExprPtr& child : expr.children) {
    total += EstimateComputeNs(p, *child);
  }
  return total;
}

const char* AggChoiceName(AggChoice choice) {
  switch (choice) {
    case AggChoice::kHybridFallback:
      return "hybrid";
    case AggChoice::kValueMasking:
      return "value-masking";
    case AggChoice::kKeyMasking:
      return "key-masking";
  }
  return "?";
}

AggChoice ChooseAggregation(const CostProfile& p, const AggWorkload& w) {
  double hybrid = HybridCost(p, w);
  double vm = ValueMaskingCost(p, w);
  if (w.group_ht_bytes == 0) {
    return vm < hybrid ? AggChoice::kValueMasking
                       : AggChoice::kHybridFallback;
  }
  double km = KeyMaskingCost(p, w);
  if (km <= vm && km <= hybrid) return AggChoice::kKeyMasking;
  if (vm <= hybrid) return AggChoice::kValueMasking;
  return AggChoice::kHybridFallback;
}

bool ChooseEagerAggregation(const CostProfile& p,
                            const GroupjoinWorkload& w) {
  return EagerAggregationCost(p, w) < GroupjoinCost(p, w);
}

const char* StringPlacementName(StringPlacement placement) {
  switch (placement) {
    case StringPlacement::kPushdown:
      return "pushdown";
    case StringPlacement::kPullup:
      return "pullup";
  }
  return "?";
}

StringPlacement ChooseStringPlacement(const CostProfile& p,
                                      const StringPredWorkload& w) {
  return StringPulledCost(p, w) < StringPushedCost(p, w)
             ? StringPlacement::kPullup
             : StringPlacement::kPushdown;
}

std::string DescribeAggDecision(const CostProfile& p, const AggWorkload& w) {
  std::string out = StringFormat(
      "hybrid=%.1fms vm=%.1fms", HybridCost(p, w) / 1e6,
      ValueMaskingCost(p, w) / 1e6);
  if (w.group_ht_bytes > 0) {
    out += StringFormat(" km=%.1fms", KeyMaskingCost(p, w) / 1e6);
  }
  out += StringFormat(" sigma=%.3f cols=%d width=%.1fB ht=%lldB",
                      w.selectivity, w.num_read_columns, w.avg_read_width,
                      static_cast<long long>(w.group_ht_bytes));
  return out;
}

std::string DescribeEagerDecision(const CostProfile& p,
                                  const GroupjoinWorkload& w) {
  return StringFormat(
      "groupjoin=%.1fms ea=%.1fms sigma_s=%.3f match=%.3f width=%.1fB "
      "ht=%lldB/%lldB",
      GroupjoinCost(p, w) / 1e6, EagerAggregationCost(p, w) / 1e6, w.sigma_s,
      w.match_prob, w.avg_read_width, static_cast<long long>(w.ht_bytes),
      static_cast<long long>(w.ea_ht_bytes));
}

std::string DescribeStringDecision(const CostProfile& p,
                                   const StringPredWorkload& w) {
  return StringFormat(
      "pushed=%.1fms pulled=%.1fms sigma_other=%.3f avg_len=%.1fB",
      StringPushedCost(p, w) / 1e6, StringPulledCost(p, w) / 1e6,
      w.sigma_other, w.avg_len);
}

}  // namespace swole
