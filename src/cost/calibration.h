#ifndef SWOLE_COST_CALIBRATION_H_
#define SWOLE_COST_CALIBRATION_H_

#include "cost/cost_model.h"

// Micro-probes that measure the machine's actual access costs and fill a
// CostProfile: sequential read bandwidth, conditional-read penalty,
// hash-table lookup cost per cache level, throwaway-entry access, and the
// effective clock. Used by benchmarks; tests use CostProfile::Default() for
// determinism.

namespace swole {

struct CalibrationOptions {
  // Working-set sizes for the read probes (bytes).
  int64_t probe_bytes = 64 << 20;
  // Probes per hash-table size point.
  int64_t ht_probes = 1 << 20;
  uint64_t seed = 0xC0FFEE;
  // Explicit cache-capacity overrides (bytes); 0 defers to the SWOLE_L*
  // environment variables, whose absence means the compiled-in defaults.
  // Precedence: option > environment > default.
  int64_t l1_bytes = 0;
  int64_t l2_bytes = 0;
  int64_t l3_bytes = 0;
};

/// Runs the calibration probes (a few hundred ms) and returns the measured
/// profile. Cache capacities come from compiled-in defaults, overridden by
/// SWOLE_L1_BYTES / SWOLE_L2_BYTES / SWOLE_L3_BYTES (malformed values are
/// warned about and ignored — common/env.h), overridden in turn by any
/// non-zero CalibrationOptions capacity.
CostProfile CalibrateCostProfile(const CalibrationOptions& options = {});

// Individual probes (exposed for the calibration benchmark / tests).
double MeasureReadSeqNs(const CalibrationOptions& options);
double MeasureReadCondNs(const CalibrationOptions& options);
/// Lookup ns/probe for a hash table of ~`keys` entries.
double MeasureHtLookupNs(int64_t keys, const CalibrationOptions& options);
double MeasureHtNullNs(const CalibrationOptions& options);
double MeasureNsPerCycle();

}  // namespace swole

#endif  // SWOLE_COST_CALIBRATION_H_
