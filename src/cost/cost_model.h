#ifndef SWOLE_COST_COST_MODEL_H_
#define SWOLE_COST_COST_MODEL_H_

#include <cstdint>
#include <string>

#include "common/status.h"

// The paper's cost models (§III), in nanoseconds per tuple.
//
//   Hybrid  = R * (read_seq + sigma * max(comp, read_cond))            (III-A)
//   VM      = R * (read_seq + max(comp, read_seq))                     (III-A)
//   VM_gb   = R * (read_seq + max(comp, read_seq, ht_lookup))          (III-B)
//   KM      = R * (read_seq + sigma     * max(comp, read_seq, ht_lookup)
//                           + (1-sigma) * max(comp, read_seq, ht_null))(III-B)
//   Groupjoin = S * (read_seq + sigma_S * (read_cond + ht_insert))
//             + R * (read_seq + sigma_R * (read_cond + ht_lookup)
//                             + match * max(comp, read_cond))          (III-E)
//   EA      = R * (read_seq + sigma_R * min(Hybrid, VM, KM))
//           + S * (read_seq + (1-sigma_S) * (read_cond + ht_delete))   (III-E)
//
// ht_lookup depends on hash-table size through the cache hierarchy;
// `comp` is estimated by introspection of the aggregate expression [4].

namespace swole {

struct Expr;

/// Calibrated (or default) per-operation costs. All times ns/tuple.
struct CostProfile {
  double read_seq = 0.5;     // sequential column access
  double read_cond = 3.0;    // conditional access (branch + sparse touch)
  double ht_insert = 12.0;   // hash-table insert (memory-resident table)
  double ht_null = 1.5;      // throwaway-entry access (always cached)
  double ht_delete = 12.0;   // tombstone delete
  double ns_per_cycle = 0.45;
  // String-kernel cost per byte streamed through a match (arena bytes are
  // read sequentially inside one row). Deliberately outside the online
  // refit's fitted set (cost/feedback.h): the refit regresses tuple-grain
  // access constants, and mixing a byte-grain term in would let string
  // workloads skew the numeric fits.
  double str_seq_byte = 0.03;

  // Cache capacities (bytes) and per-level lookup costs.
  int64_t l1_bytes = 32 << 10;
  int64_t l2_bytes = 1 << 20;
  int64_t l3_bytes = 24 << 20;
  double ht_lookup_l1 = 2.0;
  double ht_lookup_l2 = 4.0;
  double ht_lookup_l3 = 10.0;
  double ht_lookup_mem = 40.0;

  /// Lookup cost for a hash table of `table_bytes` total size.
  double HtLookup(int64_t table_bytes) const {
    if (table_bytes <= l1_bytes) return ht_lookup_l1;
    if (table_bytes <= l2_bytes) return ht_lookup_l2;
    if (table_bytes <= l3_bytes) return ht_lookup_l3;
    return ht_lookup_mem;
  }

  /// Deterministic defaults (plausible for a ~2GHz server core). Tests use
  /// this; benchmarks may calibrate (cost/calibration.h).
  static CostProfile Default() { return CostProfile(); }

  std::string ToString() const;
};

// ---- Formula evaluators (exposed for tests and the model-vs-measured
// benchmark). All return total ns for the stated workload. ----

struct AggWorkload {
  double rows = 0;          // |R|
  double selectivity = 0;   // sigma in [0,1]
  double comp_ns = 0;       // per-tuple aggregate compute cost
  int64_t group_ht_bytes = 0;  // 0 => scalar aggregation (no hash table)
  // Distinct columns the aggregation phase reads (group key + aggregate
  // inputs). The per-tuple read terms scale with it: a 7-column TPC-H Q1
  // aggregation pays 7 conditional reads under the hybrid plan but 7
  // sequential ones under masking — which is what tips Q1 to key masking.
  int num_read_columns = 1;
  // Average physical width (bytes) of the columns read, 8 = legacy int64.
  // Sequential reads are bandwidth-bound, so their cost scales with bytes
  // actually moved now that kernels execute at native width; conditional
  // reads stay width-independent (a random touch costs a cache line
  // either way). Narrow columns therefore bias the model toward the
  // masking (sequential) plans.
  double avg_read_width = 8.0;
};

double HybridCost(const CostProfile& p, const AggWorkload& w);
double ValueMaskingCost(const CostProfile& p, const AggWorkload& w);
double KeyMaskingCost(const CostProfile& p, const AggWorkload& w);

struct GroupjoinWorkload {
  double r_rows = 0;        // probe side |R|
  double s_rows = 0;        // build side |S|
  double sigma_r = 1.0;     // probe-side predicate selectivity
  double sigma_s = 1.0;     // build-side predicate selectivity
  double match_prob = 1.0;  // P(join match) for a probing tuple
  double comp_ns = 0;       // final aggregation compute cost
  // The groupjoin's table holds only qualifying build keys; the eager
  // rewrite's table holds (almost) every key, so it is larger — sizing
  // them separately is what makes the model reject EA when the join
  // filters many keys (the paper's Q3 discussion).
  int64_t ht_bytes = 0;     // groupjoin hash-table size
  int64_t ea_ht_bytes = 0;  // eager-aggregation hash-table size
  int num_read_columns = 1;  // aggregation inputs (see AggWorkload)
  double avg_read_width = 8.0;  // bytes per value read (see AggWorkload)
};

double GroupjoinCost(const CostProfile& p, const GroupjoinWorkload& w);
double EagerAggregationCost(const CostProfile& p, const GroupjoinWorkload& w);

// ---- String predicate placement (access-aware pullup for raw text) ----
//
// A string predicate on the fact table can run in two places:
//
//   Pushed (into the scan): every fact row pays a kernel match — the arena
//     streams sequentially at full bandwidth, nothing is skipped.
//       rows * (read_seq + avg_len * str_seq_byte)
//   Pulled (above the joins / other conjuncts): only rows that survive
//     everything else pay the match, but each surviving row is a random
//     arena touch (read_cond) before its bytes stream.
//       rows * sigma_other * (read_cond + avg_len * str_seq_byte)
//
// The flip point is sigma_other = (read_seq + avg_len * str_seq_byte) /
// (read_cond + avg_len * str_seq_byte): selective join trees favor pulling
// the expensive match up, unselective ones favor the sequential scan.
// AND is commutative, so placement changes performance only — results are
// bit-identical either way (the differential tests pin this).

struct StringPredWorkload {
  double rows = 0;          // fact rows scanned
  double sigma_other = 1;   // selectivity of all non-string quals combined
  double avg_len = 0;       // average string length in bytes
};

double StringPushedCost(const CostProfile& p, const StringPredWorkload& w);
double StringPulledCost(const CostProfile& p, const StringPredWorkload& w);

/// "Introspection" estimate of the per-tuple compute cost of an expression
/// (cycle counts per operator, converted by the profile's clock).
double EstimateComputeNs(const CostProfile& p, const Expr& expr);

// ---- Decisions ----

enum class AggChoice : uint8_t { kHybridFallback, kValueMasking, kKeyMasking };
const char* AggChoiceName(AggChoice choice);

enum class StringPlacement : uint8_t { kPushdown, kPullup };
const char* StringPlacementName(StringPlacement placement);

/// Picks where a fact-side string predicate runs (cheaper of the two
/// formulas above).
StringPlacement ChooseStringPlacement(const CostProfile& p,
                                      const StringPredWorkload& w);

/// Picks the cheapest aggregation technique. Scalar aggregations
/// (group_ht_bytes == 0) never pick key masking — there is no key.
AggChoice ChooseAggregation(const CostProfile& p, const AggWorkload& w);

/// True if the eager-aggregation rewrite beats the traditional groupjoin.
bool ChooseEagerAggregation(const CostProfile& p,
                            const GroupjoinWorkload& w);

// ---- Decision logging (obs/trace.h) ----
// One-line renderings of a decision's model inputs and candidate costs, so
// traces record not just what was chosen but the numbers it was chosen on.

/// "hybrid=12.3ms vm=10.1ms km=11.8ms sigma=0.200 cols=7 ht=16384B".
std::string DescribeAggDecision(const CostProfile& p, const AggWorkload& w);

/// "groupjoin=8.1ms ea=6.9ms sigma_s=0.500 match=0.100 ht=4096B/65536B".
std::string DescribeEagerDecision(const CostProfile& p,
                                  const GroupjoinWorkload& w);

/// "pushed=2.1ms pulled=4.0ms sigma_other=0.800 avg_len=48.2B".
std::string DescribeStringDecision(const CostProfile& p,
                                   const StringPredWorkload& w);

}  // namespace swole

#endif  // SWOLE_COST_COST_MODEL_H_
