#ifndef SWOLE_COST_FEEDBACK_H_
#define SWOLE_COST_FEEDBACK_H_

#include <cstdint>
#include <mutex>
#include <string>

#include "cost/cost_model.h"

// Online cost-model refit (the feedback half of "workload-specialized
// kernels and an online cost model", DESIGN.md §13).
//
// The offline profile (cost/calibration.h) measures access constants with
// synthetic probes once; real queries then observe what those constants
// should have been — wall time vs the model's prediction, and (when
// SWOLE_PERF_COUNTERS=1) hardware cycles and LLC misses vs the model's
// expected miss traffic. CostFeedback accumulates those observations with
// exponentially-decayed least squares and derives guard-railed correction
// scales:
//
//   * bandwidth scale  — applied to read_seq / read_cond, fitted from
//     observed-vs-predicted total ns (elapsed ≈ scale * predicted is a
//     one-parameter decayed LS fit);
//   * memory scale     — applied to the random-access constants
//     (ht_lookup_l3 / ht_lookup_mem / ht_insert / ht_delete), fitted from
//     observed-vs-expected LLC misses per tuple when counters are present;
//   * ns_per_cycle     — decayed mean of elapsed_ns / cycles.
//
// Guard rails: a scale moves at most ±25% per observation (decayed LS can
// lurch on an outlier query; the step bound turns that into a nudge), is
// clamped to [0.25, 4.0] of the calibrated base, and nothing is applied
// before kMinSamples observations. The refit NEVER changes kernels'
// numeric behavior — every consumer re-runs a *decision* (VM/KM/hybrid,
// EA, groupjoin) whose alternatives are bit-identical by construction.
//
// Modes (SWOLE_COST_REFIT):
//   off      — no observations, no refit (the default; zero overhead);
//   observe  — accumulate observations and export cost.refit.* metrics,
//              but Refitted() returns the base profile unchanged;
//   apply    — Refitted() returns the scaled profile and the strategies'
//              mid-query re-decision points may overturn choices.

namespace swole::cost {

enum class RefitMode { kOff, kObserve, kApply };

/// The process-wide mode: parsed once from SWOLE_COST_REFIT (malformed
/// values warn and mean off), overridable by SetRefitModeForTest.
RefitMode CurrentRefitMode();

/// Overrides the mode for tests and benchmarks (process-wide).
void SetRefitModeForTest(RefitMode mode);

/// True when observations should flow (mode != off).
bool RefitEnabled();

const char* RefitModeName(RefitMode mode);

/// One query's worth of feedback. Engines fill the estimate-side fields
/// before execution (rows, selectivity, predicted cost); GovernanceScope
/// fills the observed side (elapsed, hardware counts) when it tears down
/// and forwards the whole record to CostFeedback::Global().
struct QueryObservation {
  double rows = 0;              // fact rows scanned
  double selectivity = -1;      // qualification selectivity (estimate, or
                                // the observed popcount once a strategy's
                                // mid-query re-decision measured it)
  int num_read_columns = 1;
  double avg_read_width = 8.0;  // bytes
  int64_t group_ht_bytes = 0;
  double predicted_ns = 0;      // cost model's total for the chosen plan
  // Model-expected LLC misses per fact tuple for the chosen technique
  // (0 when the group table fits in cache; < 0 when not modeled).
  double expected_misses_per_tuple = -1;
  double elapsed_ns = 0;        // observed (GovernanceScope)
  int64_t cycles = 0;           // observed (perf counters; 0 = unavailable)
  int64_t llc_misses = 0;
  std::string technique;        // e.g. "swole/key-masking", "data-centric"
};

class CostFeedback {
 public:
  static CostFeedback& Global();

  /// Ingests one query's observation. Ignored when the record is unusable
  /// (no rows, no elapsed time, or no prediction to compare against).
  /// Thread-safe.
  void Observe(const QueryObservation& obs);

  /// The refitted profile: `base` with the correction scales applied.
  /// Returns `base` unchanged unless the mode is apply AND at least
  /// kMinSamples observations accumulated.
  CostProfile Refitted(const CostProfile& base) const;

  /// Monotonic counter bumped whenever the fitted scales move materially
  /// (> 1% relative). Memoized plan analyses key on it so a converged fit
  /// stops invalidating them.
  int64_t epoch() const;

  int64_t samples() const;
  double bandwidth_scale() const;
  double memory_scale() const;

  /// Clears all accumulated state (tests/benchmarks).
  void Reset();

  /// Installs a fitted state directly: scales applied as-is (still clamped
  /// to the absolute guard rail), sample count satisfied, epoch bumped.
  /// For determinism tests that need a known refit state without replaying
  /// observations.
  void ForceStateForTest(double bandwidth_scale, double memory_scale);

  std::string ToString() const;

  static constexpr int64_t kMinSamples = 3;
  static constexpr double kMaxStepPerObservation = 0.25;  // ±25%
  static constexpr double kMinScale = 0.25;
  static constexpr double kMaxScale = 4.0;
  static constexpr double kDecay = 0.9;

 private:
  CostFeedback() = default;

  mutable std::mutex mu_;
  // Decayed least-squares accumulators for elapsed ≈ s * predicted.
  double time_pp_ = 0;
  double time_po_ = 0;
  double bandwidth_scale_ = 1.0;
  // Decayed LS for observed ≈ s * expected LLC misses per tuple.
  double mem_pp_ = 0;
  double mem_po_ = 0;
  double memory_scale_ = 1.0;
  // Decayed mean of elapsed_ns / cycles.
  double ns_per_cycle_ = 0;
  int64_t samples_ = 0;
  // Scales as of the last epoch bump, for the material-change test.
  double epoch_bandwidth_scale_ = 1.0;
  double epoch_memory_scale_ = 1.0;
  int64_t epoch_ = 0;
};

}  // namespace swole::cost

#endif  // SWOLE_COST_FEEDBACK_H_
