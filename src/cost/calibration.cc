#include "cost/calibration.h"

#include <vector>

#include "common/env.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/timer.h"
#include "exec/hash_table.h"

namespace swole {

namespace {
// Repeats a probe a few times and takes the fastest run (steady-state,
// caches warm, no interference).
template <typename Fn>
double BestOf(int reps, Fn&& fn) {
  double best = 0;
  for (int i = 0; i < reps; ++i) {
    double t = fn();
    if (i == 0 || t < best) best = t;
  }
  return best;
}
}  // namespace

double MeasureReadSeqNs(const CalibrationOptions& options) {
  int64_t n = options.probe_bytes / sizeof(int32_t);
  std::vector<int32_t> data(n);
  Rng rng(options.seed);
  for (auto& v : data) v = static_cast<int32_t>(rng.Next());

  return BestOf(3, [&] {
    Timer timer;
    int64_t sum = 0;
    for (int64_t i = 0; i < n; ++i) sum += data[i];
    DoNotOptimize(sum);
    return timer.ElapsedSeconds() * 1e9 / static_cast<double>(n);
  });
}

double MeasureReadCondNs(const CalibrationOptions& options) {
  // Conditional reads in the engines are selection-vector gathers: an
  // ascending but sparse index walk. Probe with ~10% density so most
  // cache lines are skipped (dense selections degenerate to sequential).
  int64_t n = options.probe_bytes / sizeof(int32_t);
  std::vector<int32_t> data(n);
  Rng rng(options.seed + 1);
  for (auto& v : data) v = static_cast<int32_t>(rng.Next());
  std::vector<int32_t> sel;
  sel.reserve(n / 8);
  for (int64_t i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.1)) sel.push_back(static_cast<int32_t>(i));
  }
  if (sel.empty()) sel.push_back(0);

  return BestOf(3, [&] {
    Timer timer;
    int64_t sum = 0;
    for (int32_t index : sel) sum += data[index];
    DoNotOptimize(sum);
    return timer.ElapsedSeconds() * 1e9 /
           static_cast<double>(sel.size());
  });
}

double MeasureHtLookupNs(int64_t keys, const CalibrationOptions& options) {
  HashTable table(/*payload_width=*/1, keys);
  for (int64_t k = 0; k < keys; ++k) *table.GetOrInsert(k) = k;

  int64_t probes = options.ht_probes;
  std::vector<int64_t> probe_keys(probes);
  Rng rng(options.seed + 2);
  for (auto& k : probe_keys) {
    k = static_cast<int64_t>(rng.NextBounded(static_cast<uint64_t>(keys)));
  }

  return BestOf(3, [&] {
    Timer timer;
    int64_t sum = 0;
    for (int64_t i = 0; i < probes; ++i) {
      const int64_t* payload = table.Find(probe_keys[i]);
      sum += *payload;
    }
    DoNotOptimize(sum);
    return timer.ElapsedSeconds() * 1e9 / static_cast<double>(probes);
  });
}

double MeasureHtNullNs(const CalibrationOptions& options) {
  HashTable table(/*payload_width=*/1, 1 << 20);
  Rng rng(options.seed + 3);
  for (int64_t k = 0; k < (1 << 20); ++k) *table.GetOrInsert(k) = 1;
  *table.GetOrInsert(HashTable::kMaskKey) = 0;

  int64_t probes = options.ht_probes;
  return BestOf(3, [&] {
    Timer timer;
    int64_t sum = 0;
    for (int64_t i = 0; i < probes; ++i) {
      sum += *table.Find(HashTable::kMaskKey);
    }
    DoNotOptimize(sum);
    return timer.ElapsedSeconds() * 1e9 / static_cast<double>(probes);
  });
}

double MeasureNsPerCycle() {
  // A chain of dependent adds executes ~1 per cycle.
  constexpr int64_t kIters = 1 << 26;
  volatile int64_t seed = 1;
  Timer timer;
  int64_t x = seed;
  for (int64_t i = 0; i < kIters; ++i) x += i ^ x;
  DoNotOptimize(x);
  double ns = timer.ElapsedSeconds() * 1e9;
  // Two dependent ALU ops per iteration.
  return ns / (2.0 * static_cast<double>(kIters));
}

CostProfile CalibrateCostProfile(const CalibrationOptions& options) {
  CostProfile p = CostProfile::Default();
  // Option > environment > default. GetEnvInt64 warns on malformed values
  // (trailing garbage, negatives, overflow) and keeps the fallback.
  p.l1_bytes = options.l1_bytes > 0
                   ? options.l1_bytes
                   : GetEnvInt64("SWOLE_L1_BYTES", p.l1_bytes);
  p.l2_bytes = options.l2_bytes > 0
                   ? options.l2_bytes
                   : GetEnvInt64("SWOLE_L2_BYTES", p.l2_bytes);
  p.l3_bytes = options.l3_bytes > 0
                   ? options.l3_bytes
                   : GetEnvInt64("SWOLE_L3_BYTES", p.l3_bytes);

  p.read_seq = MeasureReadSeqNs(options);
  p.read_cond = MeasureReadCondNs(options);
  p.ns_per_cycle = MeasureNsPerCycle();
  p.ht_null = MeasureHtNullNs(options);

  // One table size per cache level: entries are 16 bytes (key + payload),
  // target half the level's capacity.
  auto keys_for_bytes = [](int64_t bytes) {
    return std::max<int64_t>(64, bytes / 2 / 16);
  };
  p.ht_lookup_l1 = MeasureHtLookupNs(keys_for_bytes(p.l1_bytes), options);
  p.ht_lookup_l2 = MeasureHtLookupNs(keys_for_bytes(p.l2_bytes), options);
  p.ht_lookup_l3 = MeasureHtLookupNs(keys_for_bytes(p.l3_bytes), options);
  p.ht_lookup_mem = MeasureHtLookupNs(keys_for_bytes(p.l3_bytes * 8), options);
  p.ht_insert = p.ht_lookup_mem;  // inserts into large tables miss like reads
  p.ht_delete = p.ht_lookup_mem;

  SWOLE_LOG(INFO) << "calibrated cost profile: " << p.ToString();
  return p;
}

}  // namespace swole
