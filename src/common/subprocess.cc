#include "common/subprocess.h"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "common/string_util.h"

namespace swole {

namespace {

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Drains whatever is ready on `fd` into `out`, respecting the capture cap.
// Returns false once the pipe reaches EOF.
bool DrainPipe(int fd, std::string* out, int64_t cap) {
  char buffer[4096];
  while (true) {
    ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n > 0) {
      int64_t room = cap - static_cast<int64_t>(out->size());
      if (room > 0) out->append(buffer, static_cast<size_t>(std::min<int64_t>(n, room)));
      continue;
    }
    if (n == 0) return false;  // EOF
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    if (errno == EINTR) continue;
    return false;  // read error; treat as EOF
  }
}

}  // namespace

Result<SubprocessResult> RunSubprocess(const std::vector<std::string>& argv,
                                       const SubprocessOptions& options) {
  if (argv.empty()) {
    return Status::InvalidArgument("RunSubprocess: empty argv");
  }

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    return Status::IOError(
        StringFormat("RunSubprocess: pipe failed: %s", std::strerror(errno)));
  }

  std::vector<char*> c_argv;
  c_argv.reserve(argv.size() + 1);
  for (const std::string& arg : argv) {
    c_argv.push_back(const_cast<char*>(arg.c_str()));
  }
  c_argv.push_back(nullptr);

  int64_t start_ms = NowMs();
  pid_t pid = ::fork();
  if (pid < 0) {
    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
    return Status::IOError(
        StringFormat("RunSubprocess: fork failed: %s", std::strerror(errno)));
  }

  if (pid == 0) {
    // Child: own process group (so a timeout can kill compiler + any cc1
    // grandchildren), stdout/stderr into the capture pipe, stdin closed.
    ::setpgid(0, 0);
    ::close(pipe_fds[0]);
    ::dup2(pipe_fds[1], STDOUT_FILENO);
    ::dup2(pipe_fds[1], STDERR_FILENO);
    ::close(pipe_fds[1]);
    int devnull = ::open("/dev/null", O_RDONLY);
    if (devnull >= 0) {
      ::dup2(devnull, STDIN_FILENO);
      ::close(devnull);
    }
    ::execvp(c_argv[0], c_argv.data());
    // Only reached when exec fails; 127 matches the shell convention.
    ::dprintf(STDERR_FILENO, "exec %s failed: %s\n", c_argv[0],
              std::strerror(errno));
    ::_exit(127);
  }

  // Parent.
  ::close(pipe_fds[1]);
  int read_fd = pipe_fds[0];
  int fd_flags = ::fcntl(read_fd, F_GETFL, 0);
  ::fcntl(read_fd, F_SETFL, fd_flags | O_NONBLOCK);

  SubprocessResult result;
  bool pipe_open = true;
  while (pipe_open) {
    int poll_timeout = -1;
    if (options.timeout_ms > 0) {
      int64_t left = options.timeout_ms - (NowMs() - start_ms);
      if (left <= 0) {
        // Deadline passed: kill the whole process group and stop waiting
        // for output (the pipe drains below after the kill).
        ::kill(-pid, SIGKILL);
        result.timed_out = true;
        break;
      }
      poll_timeout = static_cast<int>(std::min<int64_t>(left, 200));
    }
    struct pollfd pfd = {read_fd, POLLIN, 0};
    int rc = ::poll(&pfd, 1, poll_timeout);
    if (rc < 0 && errno != EINTR) break;
    if (rc > 0) {
      pipe_open = DrainPipe(read_fd, &result.captured_output,
                            options.max_capture_bytes);
    }
  }
  // Final drain: after EOF or a kill, collect anything still buffered.
  DrainPipe(read_fd, &result.captured_output, options.max_capture_bytes);
  ::close(read_fd);

  int wait_status = 0;
  while (::waitpid(pid, &wait_status, 0) < 0 && errno == EINTR) {
  }
  result.elapsed_ms = NowMs() - start_ms;
  if (WIFEXITED(wait_status)) {
    result.exit_code = WEXITSTATUS(wait_status);
  } else if (WIFSIGNALED(wait_status)) {
    result.term_signal = WTERMSIG(wait_status);
  }
  return result;
}

}  // namespace swole
