#ifndef SWOLE_COMMON_STATUS_H_
#define SWOLE_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "common/macros.h"

// Error handling without exceptions (per the Google style guide). Fallible
// operations return `Status`, or `Result<T>` when they produce a value.
//
// Usage:
//   Status DoThing();
//   Result<Table> LoadTable(...);
//   SWOLE_RETURN_NOT_OK(DoThing());
//   SWOLE_ASSIGN_OR_RETURN(Table t, LoadTable(...));

namespace swole {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kIOError,
  kTypeError,
  // Query-lifecycle governance outcomes (exec/query_context.h): the query
  // failed as a *query* — the process and its engines remain healthy.
  kBudgetExceeded,    // memory budget breached (SWOLE_MEM_LIMIT)
  kDeadlineExceeded,  // wall-clock deadline fired (SWOLE_DEADLINE_MS)
  kCancelled,         // cooperative cancellation was requested
  kSpillFailed,       // spill-to-disk exhausted (depth/IO); budget still binds
  // Admission-control outcomes (exec/admission.h): the query was never
  // started — the server shed it at the door instead of degrading every
  // in-flight query. Retryable by the client after backoff.
  kAdmissionRejected,  // concurrency / queue-depth / tenant cap refused it
  kQueueTimeout,       // waited in the admission queue past the bounded wait
};

/// Human-readable name of a status code (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// A success-or-error value. Cheap to copy on the OK path (no allocation).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status BudgetExceeded(std::string msg) {
    return Status(StatusCode::kBudgetExceeded, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status SpillFailed(std::string msg) {
    return Status(StatusCode::kSpillFailed, std::move(msg));
  }
  static Status AdmissionRejected(std::string msg) {
    return Status(StatusCode::kAdmissionRejected, std::move(msg));
  }
  static Status QueueTimeout(std::string msg) {
    return Status(StatusCode::kQueueTimeout, std::move(msg));
  }

  /// True for the governance codes a QueryContext produces: the query was
  /// stopped by policy (budget/deadline/cancel), not by a defect — callers
  /// like the JIT fallback chain must surface these instead of retrying on
  /// another engine.
  /// kSpillFailed counts as governance: the spill ladder already gave the
  /// query every chance under its budget, and retrying on an engine that
  /// does not charge memory (the reference oracle) would silently violate
  /// the limit the user set.
  bool IsGovernance() const {
    return code_ == StatusCode::kBudgetExceeded ||
           code_ == StatusCode::kDeadlineExceeded ||
           code_ == StatusCode::kCancelled ||
           code_ == StatusCode::kSpillFailed;
  }

  /// True for the admission-control codes (exec/admission.h): the server
  /// refused to start the query while overloaded. Distinct from
  /// IsGovernance() — no work ran, nothing was degraded, and the client may
  /// simply retry later; engine fallback chains must not reinterpret these
  /// as execution failures.
  bool IsAdmission() const {
    return code_ == StatusCode::kAdmissionRejected ||
           code_ == StatusCode::kQueueTimeout;
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// Aborts the process with the status message if not OK.
  void CheckOK() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error. Holds either a `T` or a non-OK `Status`.
template <typename T>
class Result {
 public:
  // Implicit construction from values and from error Status keeps call sites
  // terse (`return 42;` / `return Status::NotFound(...)`), matching the
  // Status/Result idiom of Arrow.
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status)                         // NOLINT(runtime/explicit)
      : data_(std::move(status)) {
    if (SWOLE_UNLIKELY(std::get<Status>(data_).ok())) {
      std::get<Status>(data_) =
          Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(data_);
  }

  /// Preconditions: ok(). Aborts otherwise.
  T& value() & {
    CheckHasValue();
    return std::get<T>(data_);
  }
  const T& value() const& {
    CheckHasValue();
    return std::get<T>(data_);
  }
  T&& value() && {
    CheckHasValue();
    return std::move(std::get<T>(data_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Returns the value, or `fallback` if this holds an error.
  T ValueOr(T fallback) const {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }

 private:
  void CheckHasValue() const {
    if (SWOLE_UNLIKELY(!ok())) std::get<Status>(data_).CheckOK();
  }

  std::variant<T, Status> data_;
};

#define SWOLE_RETURN_NOT_OK(expr)                  \
  do {                                             \
    ::swole::Status _st = (expr);                  \
    if (SWOLE_UNLIKELY(!_st.ok())) return _st;     \
  } while (false)

#define SWOLE_ASSIGN_OR_RETURN_IMPL(result_name, lhs, rexpr) \
  auto result_name = (rexpr);                                \
  if (SWOLE_UNLIKELY(!result_name.ok())) {                   \
    return result_name.status();                             \
  }                                                          \
  lhs = std::move(result_name).value()

#define SWOLE_ASSIGN_OR_RETURN(lhs, rexpr)                             \
  SWOLE_ASSIGN_OR_RETURN_IMPL(SWOLE_CONCAT(_result_, __LINE__), lhs, \
                              rexpr)

}  // namespace swole

#endif  // SWOLE_COMMON_STATUS_H_
