#ifndef SWOLE_COMMON_ENV_H_
#define SWOLE_COMMON_ENV_H_

#include <cstdint>
#include <string>

// Environment-variable configuration used by the benchmark harnesses so the
// paper's experiments can be re-run at different scales without recompiling
// (e.g. SWOLE_SF=1 ./bench/tpch_bench).

namespace swole {

/// Value of env var `name` parsed as int64, or `fallback` if unset/invalid.
int64_t GetEnvInt64(const char* name, int64_t fallback);

/// Value of env var `name` parsed as double, or `fallback` if unset/invalid.
double GetEnvDouble(const char* name, double fallback);

/// Value of env var `name`, or `fallback` if unset.
std::string GetEnvString(const char* name, const std::string& fallback);

}  // namespace swole

#endif  // SWOLE_COMMON_ENV_H_
