#include "common/scratch_dir.h"

#include <dirent.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>

#include "common/env.h"
#include "common/logging.h"
#include "common/string_util.h"

namespace swole {

std::string ScratchDir::ResolveBase(const char* env_var, const char* what) {
  std::string base = GetEnvString(env_var, "");
  if (base.empty()) base = GetEnvString("TMPDIR", "");
  if (base.empty()) base = "/tmp";
  while (base.size() > 1 && base.back() == '/') base.pop_back();
  if (!IsExecSafe(base)) {
    SWOLE_LOG(WARNING) << what << " base \"" << base << "\" (" << env_var
                       << "/TMPDIR) contains characters unsafe for exec; "
                          "falling back to /tmp";
    base = "/tmp";
  }
  return base;
}

Result<ScratchDir> ScratchDir::CreateUnder(const std::string& base,
                                           const char* prefix) {
  std::string tmpl = StringFormat("%s/%sXXXXXX", base.c_str(), prefix);
  if (::mkdtemp(tmpl.data()) == nullptr) {
    return Status::IOError(StringFormat(
        "mkdtemp failed for \"%s\" (is the directory writable?)",
        tmpl.c_str()));
  }
  ScratchDir dir;
  dir.path_ = std::move(tmpl);
  dir.owned_ = true;
  dir.armed_ = true;
  return dir;
}

ScratchDir ScratchDir::Adopt(std::string existing_dir) {
  ScratchDir dir;
  dir.path_ = std::move(existing_dir);
  dir.owned_ = false;
  dir.armed_ = true;
  return dir;
}

ScratchDir::ScratchDir(ScratchDir&& other) noexcept {
  std::lock_guard<std::mutex> lock(other.mu_);
  path_ = std::move(other.path_);
  files_ = std::move(other.files_);
  owned_ = other.owned_;
  armed_ = other.armed_;
  other.path_.clear();
  other.files_.clear();
  other.armed_ = false;
}

ScratchDir& ScratchDir::operator=(ScratchDir&& other) noexcept {
  if (this != &other) {
    RemoveAll();
    std::scoped_lock lock(mu_, other.mu_);
    path_ = std::move(other.path_);
    files_ = std::move(other.files_);
    owned_ = other.owned_;
    armed_ = other.armed_;
    other.path_.clear();
    other.files_.clear();
    other.armed_ = false;
  }
  return *this;
}

ScratchDir::~ScratchDir() { RemoveAll(); }

void ScratchDir::Track(std::string file) {
  std::lock_guard<std::mutex> lock(mu_);
  files_.push_back(std::move(file));
}

void ScratchDir::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_ = false;
}

void ScratchDir::RemoveAll() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!armed_ || path_.empty()) return;
  for (const std::string& file : files_) std::remove(file.c_str());
  files_.clear();
  if (owned_) {
    // Sweep stragglers (e.g. a partial temp file from an injected fault
    // between create and Track) so an owned scratch dir never leaks
    // contents, then remove the directory itself.
    if (DIR* dir = ::opendir(path_.c_str())) {
      while (dirent* entry = ::readdir(dir)) {
        std::string name = entry->d_name;
        if (name == "." || name == "..") continue;
        std::remove((path_ + "/" + name).c_str());
      }
      ::closedir(dir);
    }
    ::rmdir(path_.c_str());
  }
  armed_ = false;
}

}  // namespace swole
