#ifndef SWOLE_COMMON_SCRATCH_DIR_H_
#define SWOLE_COMMON_SCRATCH_DIR_H_

#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

// RAII scratch directory shared by the JIT compile pipeline (codegen/jit.cc)
// and the spill subsystem (exec/spill.h). Both need the same three
// guarantees:
//
//   1. Base-dir policy: a subsystem env var (SWOLE_JIT_TMPDIR /
//      SWOLE_SPILL_DIR) wins, then TMPDIR, then /tmp — with exec-unsafe
//      bases (whitespace, quotes, shell metacharacters) refused with a
//      warning rather than propagated into an exec or a spill path.
//   2. A private mkdtemp directory, so concurrent queries and processes
//      never collide.
//   3. Cleanup on every exit path — abort, cancel, deadline, injected
//      fault — removes tracked files, sweeps any stragglers in an owned
//      directory, and removes the directory itself. Disarm() keeps
//      artifacts for debugging (keep_artifacts / post-mortem).

namespace swole {

class ScratchDir {
 public:
  /// Disengaged; path() is empty and the destructor is a no-op.
  ScratchDir() = default;

  /// Base-directory resolution shared by every scratch consumer:
  /// `env_var` > TMPDIR > /tmp, trailing slashes stripped, exec-unsafe
  /// values refused (warning naming `what`) in favor of /tmp.
  static std::string ResolveBase(const char* env_var, const char* what);

  /// Creates `<base>/<prefix>XXXXXX` via mkdtemp. The directory is owned:
  /// the destructor sweeps and removes it unless Disarm() was called.
  static Result<ScratchDir> CreateUnder(const std::string& base,
                                        const char* prefix);

  /// Wraps a caller-provided directory (e.g. JitOptions::work_dir). Not
  /// owned: the destructor removes tracked files only, never the directory
  /// or untracked contents.
  static ScratchDir Adopt(std::string existing_dir);

  ScratchDir(ScratchDir&& other) noexcept;
  ScratchDir& operator=(ScratchDir&& other) noexcept;
  ScratchDir(const ScratchDir&) = delete;
  ScratchDir& operator=(const ScratchDir&) = delete;

  ~ScratchDir();

  /// Registers a file for removal at destruction. Thread-safe (spill
  /// workers create partition files concurrently).
  void Track(std::string file);

  /// Keeps everything on disk (artifact debugging). One-way.
  void Disarm();

  /// Removes tracked files (and, for owned dirs, sweeps + rmdirs) now
  /// instead of at destruction. Idempotent.
  void RemoveAll();

  const std::string& path() const { return path_; }
  bool owned() const { return owned_; }
  bool armed() const { return armed_; }

 private:
  std::mutex mu_;
  std::string path_;
  std::vector<std::string> files_;
  bool owned_ = false;
  bool armed_ = false;
};

}  // namespace swole

#endif  // SWOLE_COMMON_SCRATCH_DIR_H_
