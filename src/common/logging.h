#ifndef SWOLE_COMMON_LOGGING_H_
#define SWOLE_COMMON_LOGGING_H_

#include <sstream>
#include <string>

#include "common/macros.h"

// Minimal streaming logger with CHECK macros, in the style of glog.
//
//   SWOLE_LOG(INFO) << "loaded " << n << " rows";
//   SWOLE_CHECK(ptr != nullptr) << "null table";
//   SWOLE_DCHECK_LT(i, size);   // debug builds only
//
// CHECK failures abort the process; they guard internal invariants, not
// user-facing errors (those use Status).

namespace swole {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global minimum level; messages below it are discarded. Default: kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Parses "debug" / "info" / "warning" / "error" (case-insensitive) or a
/// numeric level 0-3 into `*out`. False on malformed input.
bool ParseLogLevel(const std::string& value, LogLevel* out);

/// Applies SWOLE_LOG_LEVEL to SetLogLevel. Runs automatically at startup
/// (static initializer in logging.cc); exposed so tests can re-apply after
/// setenv. Malformed values are warned about and ignored, matching the
/// env.cc numeric-knob convention.
void InitLogLevelFromEnv();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line, bool fatal = false);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
  LogLevel level_;
  const char* file_;
  int line_;
  bool fatal_;
  bool enabled_;
};

// Swallows the streamed-in message when a check passes.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

// Converts a streamed LogMessage expression to void so CHECK macros can use
// the ternary form (glog's voidify idiom): '&' binds looser than '<<'.
struct Voidify {
  void operator&(LogMessage&) {}
};

}  // namespace internal
}  // namespace swole

#define SWOLE_LOG_DEBUG ::swole::LogLevel::kDebug
#define SWOLE_LOG_INFO ::swole::LogLevel::kInfo
#define SWOLE_LOG_WARNING ::swole::LogLevel::kWarning
#define SWOLE_LOG_ERROR ::swole::LogLevel::kError

#define SWOLE_LOG(level) \
  ::swole::internal::LogMessage(SWOLE_LOG_##level, __FILE__, __LINE__)

#define SWOLE_CHECK(cond)                                          \
  (SWOLE_LIKELY(cond))                                             \
      ? (void)0                                                    \
      : ::swole::internal::Voidify() &                             \
            (::swole::internal::LogMessage(                        \
                 ::swole::LogLevel::kError, __FILE__, __LINE__,    \
                 /*fatal=*/true)                                   \
             << "Check failed: " #cond " ")

#define SWOLE_CHECK_OP(lhs, op, rhs) SWOLE_CHECK((lhs)op(rhs))
#define SWOLE_CHECK_EQ(a, b) SWOLE_CHECK_OP(a, ==, b)
#define SWOLE_CHECK_NE(a, b) SWOLE_CHECK_OP(a, !=, b)
#define SWOLE_CHECK_LT(a, b) SWOLE_CHECK_OP(a, <, b)
#define SWOLE_CHECK_LE(a, b) SWOLE_CHECK_OP(a, <=, b)
#define SWOLE_CHECK_GT(a, b) SWOLE_CHECK_OP(a, >, b)
#define SWOLE_CHECK_GE(a, b) SWOLE_CHECK_OP(a, >=, b)

#ifdef NDEBUG
#define SWOLE_DCHECK(cond) \
  while (false) SWOLE_CHECK(cond)
#else
#define SWOLE_DCHECK(cond) SWOLE_CHECK(cond)
#endif

#define SWOLE_DCHECK_EQ(a, b) SWOLE_DCHECK((a) == (b))
#define SWOLE_DCHECK_NE(a, b) SWOLE_DCHECK((a) != (b))
#define SWOLE_DCHECK_LT(a, b) SWOLE_DCHECK((a) < (b))
#define SWOLE_DCHECK_LE(a, b) SWOLE_DCHECK((a) <= (b))
#define SWOLE_DCHECK_GT(a, b) SWOLE_DCHECK((a) > (b))
#define SWOLE_DCHECK_GE(a, b) SWOLE_DCHECK((a) >= (b))

#endif  // SWOLE_COMMON_LOGGING_H_
