#ifndef SWOLE_COMMON_RANDOM_H_
#define SWOLE_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

#include "common/logging.h"

// Deterministic, fast PRNG used by all data generators (TPC-H dbgen-equivalent
// and the microbenchmark tables). Not std::mt19937: xorshift128+ is ~4x
// faster, and generator output must be stable across standard library
// versions so tests and experiments are reproducible.

namespace swole {

/// xorshift128+ generator. Deterministic for a given seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) { Reseed(seed); }

  /// Re-initializes the state from `seed` via splitmix64 so that nearby
  /// seeds produce uncorrelated streams.
  void Reseed(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform in [0, bound). Preconditions: bound > 0.
  uint64_t NextBounded(uint64_t bound) {
    SWOLE_DCHECK_GT(bound, 0u);
    // Lemire's multiply-shift rejection-free mapping; negligible bias for
    // bound << 2^64, which holds for every use in this project.
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  /// Uniform integer in the inclusive range [lo, hi].
  int64_t UniformInt(int64_t lo, int64_t hi) {
    SWOLE_DCHECK_LE(lo, hi);
    return lo + static_cast<int64_t>(
                    NextBounded(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability `p` (clamped to [0,1]).
  bool Bernoulli(double p) { return UniformDouble() < p; }

 private:
  uint64_t s0_ = 0;
  uint64_t s1_ = 0;
};

/// splitmix64 step; used for seeding and as a cheap integer hash.
uint64_t SplitMix64(uint64_t x);

/// Fisher-Yates shuffle with the project PRNG (deterministic per seed).
template <typename T>
void Shuffle(std::vector<T>* values, Rng* rng) {
  for (size_t i = values->size(); i > 1; --i) {
    size_t j = rng->NextBounded(i);
    std::swap((*values)[i - 1], (*values)[j]);
  }
}

/// Zipf-distributed sampler over {0, ..., n-1} with exponent `theta`.
/// theta == 0 degenerates to uniform. Used by skew experiments.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta, uint64_t seed = 42);

  uint64_t Next();

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  Rng rng_;
};

}  // namespace swole

#endif  // SWOLE_COMMON_RANDOM_H_
