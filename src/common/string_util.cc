#include "common/string_util.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

#include "common/logging.h"

namespace swole {

std::string StringFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  SWOLE_CHECK_GE(needed, 0);
  std::string out(static_cast<size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

std::vector<std::string> StrSplit(std::string_view input, char sep) {
  std::vector<std::string> pieces;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(sep, start);
    if (pos == std::string_view::npos) {
      pieces.emplace_back(input.substr(start));
      return pieces;
    }
    pieces.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool IsExecSafe(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '/' ||
              c == '+' || c == '-' || c == '=' || c == ',' || c == ':' ||
              c == '@' || c == '%';
    if (!ok) return false;
  }
  return true;
}

uint64_t Fnv1aHash64(std::string_view s, uint64_t seed) {
  uint64_t h = seed;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

bool LikeMatch(std::string_view value, std::string_view pattern) {
  // Two-pointer matching with backtracking to the last '%'.
  size_t v = 0;
  size_t p = 0;
  size_t star_p = std::string_view::npos;
  size_t star_v = 0;
  while (v < value.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == value[v])) {
      ++p;
      ++v;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_v = v;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      v = ++star_v;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

std::string FormatDecimal(int64_t value, int scale) {
  SWOLE_CHECK_GE(scale, 0);
  if (scale == 0) return StringFormat("%lld", static_cast<long long>(value));
  int64_t divisor = 1;
  for (int i = 0; i < scale; ++i) divisor *= 10;
  int64_t whole = value / divisor;
  int64_t frac = value % divisor;
  bool negative = value < 0;
  if (frac < 0) frac = -frac;
  if (negative && whole == 0) {
    return StringFormat("-0.%0*lld", scale, static_cast<long long>(frac));
  }
  return StringFormat("%lld.%0*lld", static_cast<long long>(whole), scale,
                      static_cast<long long>(frac));
}

namespace {
// Howard Hinnant's days-from-civil algorithm (public domain).
int64_t DaysFromCivil(int64_t y, unsigned m, unsigned d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

void CivilFromDays(int64_t z, int* year, unsigned* month, unsigned* day) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t y = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  *day = doy - (153 * mp + 2) / 5 + 1;
  *month = mp + (mp < 10 ? 3 : -9);
  *year = static_cast<int>(y + (*month <= 2));
}
}  // namespace

int32_t DateToDays(int year, int month, int day) {
  return static_cast<int32_t>(
      DaysFromCivil(year, static_cast<unsigned>(month),
                    static_cast<unsigned>(day)));
}

std::string DaysToDateString(int32_t days) {
  int year = 0;
  unsigned month = 0;
  unsigned day = 0;
  CivilFromDays(days, &year, &month, &day);
  return StringFormat("%04d-%02u-%02u", year, month, day);
}

int32_t ParseDate(std::string_view text) {
  SWOLE_CHECK_EQ(text.size(), 10u) << "bad date: " << std::string(text);
  SWOLE_CHECK(text[4] == '-' && text[7] == '-')
      << "bad date: " << std::string(text);
  auto to_int = [&](size_t pos, size_t len) {
    int out = 0;
    for (size_t i = pos; i < pos + len; ++i) {
      SWOLE_CHECK(text[i] >= '0' && text[i] <= '9')
          << "bad date: " << std::string(text);
      out = out * 10 + (text[i] - '0');
    }
    return out;
  };
  return DateToDays(to_int(0, 4), to_int(5, 2), to_int(8, 2));
}

}  // namespace swole
