#include "common/fault_injection.h"

#include <cstdio>
#include <cstdlib>

#include "common/env.h"
#include "common/logging.h"
#include "common/string_util.h"

namespace swole {

namespace {

// splitmix64: full-period 64-bit mixer; the standard seeding/streaming
// primitive (same one Rng::Reseed uses).
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t HashSiteName(const std::string& site) {
  // FNV-1a.
  uint64_t h = 0xCBF29CE484222325ULL;
  for (char c : site) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

constexpr uint64_t kDefaultSeed = 42;

// Registry backing SWOLE_FAULT=list. Function-local statics so registrars
// in other translation units can run during static initialization in any
// order.
std::mutex& RegistryMutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

std::map<std::string, std::string>& Registry() {
  static auto* registry = new std::map<std::string, std::string>();
  return *registry;
}

}  // namespace

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = [] {
    auto* inj = new FaultInjector();
    inj->LoadFromEnv();
    return inj;
  }();
  return *injector;
}

void FaultInjector::LoadFromEnv() {
  std::string spec = GetEnvString("SWOLE_FAULT", "");
  uint64_t seed = static_cast<uint64_t>(
      GetEnvInt64("SWOLE_FAULT_SEED", static_cast<int64_t>(kDefaultSeed)));
  Status st = Configure(spec, seed);
  if (!st.ok()) {
    SWOLE_LOG(WARNING) << "ignoring malformed SWOLE_FAULT=\"" << spec
                       << "\": " << st.ToString();
  }
}

void FaultInjector::RegisterSite(const char* site, const char* description) {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  Registry().emplace(site, description);
}

std::vector<std::pair<std::string, std::string>>
FaultInjector::RegisteredSites() {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  return {Registry().begin(), Registry().end()};  // map iteration is sorted
}

void FaultInjector::PrintRegisteredSites() {
  auto sites = RegisteredSites();
  std::fprintf(stderr, "SWOLE_FAULT sites (%zu registered):\n", sites.size());
  for (const auto& [name, description] : sites) {
    std::fprintf(stderr, "  %-24s %s\n", name.c_str(), description.c_str());
  }
}

Status FaultInjector::Configure(const std::string& spec, uint64_t seed) {
  if (spec == "list") {
    // Enumeration mode: print the registered fault surface and arm nothing,
    // so `SWOLE_FAULT=list ./any_binary` is a safe discovery command.
    PrintRegisteredSites();
    std::lock_guard<std::mutex> lock(mu_);
    seed_ = seed;
    sites_.clear();
    armed_.store(false, std::memory_order_release);
    return Status::OK();
  }
  std::map<std::string, Site> parsed;
  for (const std::string& entry : StrSplit(spec, ',')) {
    if (entry.empty()) continue;
    std::vector<std::string> parts = StrSplit(entry, ':');
    double probability = 1.0;
    if (parts.size() == 2) {
      char* end = nullptr;
      probability = std::strtod(parts[1].c_str(), &end);
      if (end == nullptr || *end != '\0') {
        return Status::InvalidArgument(
            StringFormat("bad fault probability in \"%s\"", entry.c_str()));
      }
    } else if (parts.size() != 1) {
      return Status::InvalidArgument(
          StringFormat("bad fault entry \"%s\" (want site:prob)",
                       entry.c_str()));
    }
    if (probability < 0.0 || probability > 1.0) {
      return Status::InvalidArgument(StringFormat(
          "fault probability out of [0,1] in \"%s\"", entry.c_str()));
    }
    Site site;
    site.probability = probability;
    site.rng_state = HashSiteName(parts[0]) ^ seed;
    parsed[parts[0]] = site;
  }

  std::lock_guard<std::mutex> lock(mu_);
  seed_ = seed;
  sites_ = std::move(parsed);
  armed_.store(!sites_.empty(), std::memory_order_release);
  for (const auto& [name, site] : sites_) {
    SWOLE_LOG(INFO) << "fault injection armed: " << name << " p="
                    << site.probability;
  }
  return Status::OK();
}

void FaultInjector::SetFault(const std::string& site, double probability) {
  std::lock_guard<std::mutex> lock(mu_);
  Site s;
  s.probability = probability;
  s.rng_state = HashSiteName(site) ^ seed_;
  sites_[site] = s;
  armed_.store(true, std::memory_order_release);
}

void FaultInjector::Clear(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  sites_.erase(site);
  armed_.store(!sites_.empty(), std::memory_order_release);
}

void FaultInjector::ClearAll() {
  std::lock_guard<std::mutex> lock(mu_);
  sites_.clear();
  armed_.store(false, std::memory_order_release);
}

bool FaultInjector::ShouldFail(const char* site) {
  if (!armed_.load(std::memory_order_acquire)) return false;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end()) return false;
  Site& s = it->second;
  ++s.evaluated;
  bool fail;
  if (s.probability >= 1.0) {
    fail = true;
  } else if (s.probability <= 0.0) {
    fail = false;
  } else {
    // 53-bit uniform draw from the site's deterministic stream.
    double draw = static_cast<double>(SplitMix64(&s.rng_state) >> 11) *
                  (1.0 / 9007199254740992.0);
    fail = draw < s.probability;
  }
  if (fail) {
    ++s.injected;
    SWOLE_LOG(DEBUG) << "fault injected at " << site << " (call "
                     << s.evaluated << ")";
  }
  return fail;
}

int64_t FaultInjector::EvaluatedCount(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.evaluated;
}

int64_t FaultInjector::InjectedCount(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.injected;
}

int64_t FaultInjector::TotalInjected() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (const auto& [name, site] : sites_) total += site.injected;
  return total;
}

}  // namespace swole
