#ifndef SWOLE_COMMON_TIMER_H_
#define SWOLE_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

// Wall-clock timing for benchmarks and the cost-model calibration probes.

namespace swole {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Prevents the compiler from optimizing away a computed value whose only
/// purpose is its side effect on timing (google-benchmark's DoNotOptimize).
template <typename T>
inline void DoNotOptimize(T const& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}

}  // namespace swole

#endif  // SWOLE_COMMON_TIMER_H_
