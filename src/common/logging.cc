#include "common/logging.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace swole {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

bool ParseLogLevel(const std::string& value, LogLevel* out) {
  std::string lower;
  lower.reserve(value.size());
  for (char c : value) {
    lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "debug") {
    *out = LogLevel::kDebug;
  } else if (lower == "info") {
    *out = LogLevel::kInfo;
  } else if (lower == "warning" || lower == "warn") {
    *out = LogLevel::kWarning;
  } else if (lower == "error") {
    *out = LogLevel::kError;
  } else if (lower.size() == 1 && lower[0] >= '0' && lower[0] <= '3') {
    *out = static_cast<LogLevel>(lower[0] - '0');
  } else {
    return false;
  }
  return true;
}

void InitLogLevelFromEnv() {
  const char* value = std::getenv("SWOLE_LOG_LEVEL");
  if (value == nullptr || *value == '\0') return;
  LogLevel level;
  if (!ParseLogLevel(value, &level)) {
    SWOLE_LOG(WARNING) << "ignoring malformed SWOLE_LOG_LEVEL=\"" << value
                       << "\"; using default "
                       << LevelName(GetLogLevel());
    return;
  }
  SetLogLevel(level);
}

namespace {
// Static initializer: logging.cc is linked into every binary (LogMessage is
// referenced from the Status/env machinery), so SWOLE_LOG_LEVEL takes
// effect before main() without each entry point opting in.
const bool g_log_level_env_applied = [] {
  InitLogLevelFromEnv();
  return true;
}();
}  // namespace

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line, bool fatal)
    : level_(level),
      file_(file),
      line_(line),
      fatal_(fatal),
      enabled_(fatal || static_cast<int>(level) >=
                            g_log_level.load(std::memory_order_relaxed)) {}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level_), Basename(file_),
                 line_, stream_.str().c_str());
  }
  if (fatal_) std::abort();
}

}  // namespace internal
}  // namespace swole
