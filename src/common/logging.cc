#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace swole {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line, bool fatal)
    : level_(level),
      file_(file),
      line_(line),
      fatal_(fatal),
      enabled_(fatal || static_cast<int>(level) >=
                            g_log_level.load(std::memory_order_relaxed)) {}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level_), Basename(file_),
                 line_, stream_.str().c_str());
  }
  if (fatal_) std::abort();
}

}  // namespace internal
}  // namespace swole
