#ifndef SWOLE_COMMON_STRING_UTIL_H_
#define SWOLE_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

// String helpers shared by the TPC-H generator, the LIKE matcher, and the
// code generator's source emitter.

namespace swole {

/// printf-style formatting into a std::string.
std::string StringFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Splits on a single character; keeps empty pieces.
std::vector<std::string> StrSplit(std::string_view input, char sep);

/// Joins with a separator.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// True if `s` is safe to use as a single exec argv token naming a path,
/// binary, or compiler flag: non-empty, only alphanumerics and `_./+-=,:@%`.
/// Whitespace, quotes, and shell metacharacters are rejected — the JIT never
/// passes user-controlled strings through a shell, but option validation
/// still refuses values that only make sense as injection attempts.
bool IsExecSafe(std::string_view s);

/// FNV-1a 64-bit hash; used for content-addressing (kernel cache keys).
uint64_t Fnv1aHash64(std::string_view s, uint64_t seed = 0xCBF29CE484222325ULL);

/// SQL LIKE with '%' (any run) and '_' (any single byte) wildcards.
/// Case-sensitive, as in TPC-H. Iterative two-pointer algorithm, O(n*m) worst
/// case but linear on the patterns TPC-H uses. Matching is plain byte
/// comparison over the string_view's full extent: embedded NUL bytes are
/// ordinary bytes (in the value and in the pattern), non-ASCII/high-bit
/// bytes match only themselves ('_' consumes exactly one byte, not one
/// UTF-8 code point), and the empty value matches exactly the patterns
/// made of '%'s only. This is the reference the SIMD LIKE kernels
/// (exec/simd_string.h) are differentially tested against.
bool LikeMatch(std::string_view value, std::string_view pattern);

/// Formats a fixed-point int64 (value * 10^scale) as a decimal string,
/// e.g. FormatDecimal(123456, 2) == "1234.56".
std::string FormatDecimal(int64_t value, int scale);

/// Days-since-epoch (1970-01-01) for a calendar date; proleptic Gregorian.
int32_t DateToDays(int year, int month, int day);

/// Inverse of DateToDays; outputs "YYYY-MM-DD".
std::string DaysToDateString(int32_t days);

/// Parses "YYYY-MM-DD" into days-since-epoch; aborts on malformed input.
int32_t ParseDate(std::string_view text);

}  // namespace swole

#endif  // SWOLE_COMMON_STRING_UTIL_H_
