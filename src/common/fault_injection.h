#ifndef SWOLE_COMMON_FAULT_INJECTION_H_
#define SWOLE_COMMON_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/status.h"

// Deterministic fault injection for the JIT pipeline (and any other fallible
// subsystem that wants testable failure paths). A fault site is a named
// point in the code; each site carries an injection probability. Sites are
// configured either programmatically (tests) or from the environment:
//
//   SWOLE_FAULT=jit_compile:0.5           one site, 50% of calls fail
//   SWOLE_FAULT=jit_dlopen:1.0,jit_workdir:0.25
//   SWOLE_FAULT_SEED=7                    reseed the per-site PRNG streams
//   SWOLE_FAULT=list                      print every registered site, arm none
//
// Sites self-register (SWOLE_REGISTER_FAULT_SITE at namespace scope next to
// the code that evaluates them), so `SWOLE_FAULT=list` enumerates the whole
// fault surface without grepping; the table is also kept in EXPERIMENTS.md.
//
// Probabilities use a per-site xorshift-style stream seeded from
// hash(site) ^ SWOLE_FAULT_SEED, so a given configuration injects the same
// faults at the same call indices on every run — failures are reproducible,
// not flaky. `ShouldFail` costs one relaxed atomic load when no faults are
// configured, so instrumented hot paths stay free in production.

namespace swole {

class FaultInjector {
 public:
  /// Process-wide injector; parses SWOLE_FAULT once on first access.
  static FaultInjector& Global();

  /// Re-reads SWOLE_FAULT / SWOLE_FAULT_SEED, replacing all current sites.
  void LoadFromEnv();

  /// Arms `site` with the given probability in [0, 1]. Replaces any
  /// existing configuration for the site and resets its counters.
  void SetFault(const std::string& site, double probability);

  /// Disarms one site / every site.
  void Clear(const std::string& site);
  void ClearAll();

  /// True if this call at `site` should fail. Unarmed sites never fail.
  bool ShouldFail(const char* site);

  /// How many times `site` was evaluated / actually injected.
  int64_t EvaluatedCount(const std::string& site) const;
  int64_t InjectedCount(const std::string& site) const;

  /// Total injections across all sites.
  int64_t TotalInjected() const;

  /// Parses a SWOLE_FAULT-style spec ("site:prob[,site:prob...]") into this
  /// injector. Empty spec clears everything. The literal spec "list" arms
  /// nothing and instead prints every registered site to stderr.
  Status Configure(const std::string& spec, uint64_t seed);

  /// Adds `site` to the process-wide registry `SWOLE_FAULT=list` prints.
  /// Idempotent; normally invoked via SWOLE_REGISTER_FAULT_SITE.
  static void RegisterSite(const char* site, const char* description);

  /// All registered (site, description) pairs, sorted by site name.
  static std::vector<std::pair<std::string, std::string>> RegisteredSites();

  /// Writes the registered-site table to stderr (the =list output).
  static void PrintRegisteredSites();

 private:
  FaultInjector() = default;

  struct Site {
    double probability = 0.0;
    uint64_t rng_state = 0;
    int64_t evaluated = 0;
    int64_t injected = 0;
  };

  mutable std::mutex mu_;
  std::map<std::string, Site> sites_;
  uint64_t seed_ = 0;
  // Fast-path flag: true iff sites_ is non-empty. Written under mu_.
  std::atomic<bool> armed_{false};
};

// Returns the given error Status from the enclosing function when the fault
// site fires. The zero-cost (one atomic load) guard for JIT pipeline stages.
#define SWOLE_FAULT_POINT(site, error_status)                             \
  do {                                                                    \
    if (SWOLE_UNLIKELY(                                                   \
            ::swole::FaultInjector::Global().ShouldFail(site))) {         \
      return (error_status);                                              \
    }                                                                     \
  } while (false)

// Namespace-scope registrar: places `site` in the SWOLE_FAULT=list table.
// Use once per site, next to the code that evaluates it.
#define SWOLE_REGISTER_FAULT_SITE(site, description)                      \
  namespace {                                                             \
  const bool SWOLE_CONCAT(swole_fault_site_registrar_, __LINE__) = [] {   \
    ::swole::FaultInjector::RegisterSite(site, description);              \
    return true;                                                          \
  }();                                                                    \
  }  // namespace

}  // namespace swole

#endif  // SWOLE_COMMON_FAULT_INJECTION_H_
