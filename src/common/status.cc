#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace swole {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kBudgetExceeded:
      return "BudgetExceeded";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kSpillFailed:
      return "SpillFailed";
    case StatusCode::kAdmissionRejected:
      return "AdmissionRejected";
    case StatusCode::kQueueTimeout:
      return "QueueTimeout";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

void Status::CheckOK() const {
  if (ok()) return;
  std::fprintf(stderr, "FATAL: %s\n", ToString().c_str());
  std::abort();
}

}  // namespace swole
