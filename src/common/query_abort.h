#ifndef SWOLE_COMMON_QUERY_ABORT_H_
#define SWOLE_COMMON_QUERY_ABORT_H_

#include <cstdint>
#include <cstring>

// Query-lifecycle abort plumbing shared by the host engines and the
// header-only runtime that JIT-generated kernels compile against
// (exec/hash_table.h, storage/bitmap.h). When a tracked allocation is
// refused — budget breach, deadline, cancellation, or an injected
// allocation fault — the data structure throws `QueryAbort`; the engine (or
// the morsel scheduler) catches it at the query boundary and converts it to
// the structured Status of the matching code.
//
// The type is deliberately exception-minimal (no std::string members, no
// std::exception base) and marked default-visibility: a kernel .so compiled
// from these same headers can throw one across the dlopen boundary, and
// even if RTTI unification fails there, the host still classifies the
// failure through QueryContext's pending-abort record (the refusing thunk
// writes the reason *before* the throw — see exec/query_context.h).

namespace swole {

enum class AbortReason : int {
  kNone = 0,
  kBudget = 1,    // memory budget refused the charge
  kDeadline = 2,  // wall-clock deadline fired
  kCancelled = 3, // cancellation was requested
};

struct
#if defined(__GNUC__)
    __attribute__((visibility("default")))
#endif
    QueryAbort {
  AbortReason reason = AbortReason::kBudget;
  int64_t requested_bytes = 0;  // the charge that was refused (0 if n/a)
  char site[64] = {0};          // operator site name of the refusal

  QueryAbort() = default;
  QueryAbort(AbortReason r, const char* at, int64_t requested)
      : reason(r), requested_bytes(requested) {
    if (at != nullptr) {
      std::strncpy(site, at, sizeof(site) - 1);
      site[sizeof(site) - 1] = '\0';
    }
  }
};

/// Allocation-charge hook shared by HashTable / PositionalBitmap and the
/// JIT kernel ABI (codegen/generator.h KernelIO::mem_charge). `delta` > 0
/// asks permission to grow by that many bytes; the hook returns 0 to allow
/// or an AbortReason integer to refuse (the structure then throws
/// QueryAbort without allocating). `delta` < 0 releases bytes and must
/// always be accepted.
using MemHookFn = int (*)(void* ctx, int64_t delta, const char* site);

}  // namespace swole

#endif  // SWOLE_COMMON_QUERY_ABORT_H_
