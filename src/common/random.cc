#include "common/random.h"

#include <cmath>

namespace swole {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

void Rng::Reseed(uint64_t seed) {
  s0_ = SplitMix64(seed);
  s1_ = SplitMix64(s0_);
  if (s0_ == 0 && s1_ == 0) s1_ = 1;  // all-zero state is a fixed point
}

namespace {
double Zeta(uint64_t n, double theta) {
  double sum = 0.0;
  for (uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(static_cast<double>(i), theta);
  return sum;
}
}  // namespace

ZipfGenerator::ZipfGenerator(uint64_t n, double theta, uint64_t seed)
    : n_(n), theta_(theta), rng_(seed) {
  SWOLE_CHECK_GT(n, 0u);
  SWOLE_CHECK_GE(theta, 0.0);
  SWOLE_CHECK_LT(theta, 1.0);  // the closed form below requires theta < 1
  zetan_ = Zeta(n_, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - Zeta(2, theta_) / zetan_);
}

uint64_t ZipfGenerator::Next() {
  if (theta_ == 0.0) return rng_.NextBounded(n_);
  // Gray et al.'s quantile approximation, the standard YCSB formulation.
  double u = rng_.UniformDouble();
  double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  return static_cast<uint64_t>(
      static_cast<double>(n_) *
      std::pow(eta_ * u - eta_ + 1.0, alpha_));
}

}  // namespace swole
