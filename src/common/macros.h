#ifndef SWOLE_COMMON_MACROS_H_
#define SWOLE_COMMON_MACROS_H_

// Project-wide helper macros. Kept deliberately small: branch hints for hot
// loops and an always-on invariant check used at module boundaries.

#define SWOLE_LIKELY(x) __builtin_expect(!!(x), 1)
#define SWOLE_UNLIKELY(x) __builtin_expect(!!(x), 0)

#define SWOLE_ALWAYS_INLINE inline __attribute__((always_inline))
#define SWOLE_NOINLINE __attribute__((noinline))

// Restrict-qualified pointer, used by the vectorized primitives so GCC can
// auto-vectorize tiled loops the same way the paper's hand-written C does.
#define SWOLE_RESTRICT __restrict__

// Concatenation helpers for unique local identifiers in macros.
#define SWOLE_CONCAT_IMPL(x, y) x##y
#define SWOLE_CONCAT(x, y) SWOLE_CONCAT_IMPL(x, y)

#endif  // SWOLE_COMMON_MACROS_H_
