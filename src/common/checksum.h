#ifndef SWOLE_COMMON_CHECKSUM_H_
#define SWOLE_COMMON_CHECKSUM_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"

// Content checksums for on-disk artifacts: spill-run blocks (exec/spill.h)
// and cached JIT kernels (codegen/kernel_cache.h). XXH64 — fast enough to
// sit on the spill write path, 64 bits so block corruption is detected with
// ~2^-64 false-accept probability. Not cryptographic; these files defend
// against torn writes and bit rot, not adversaries.

namespace swole {

/// XXH64 of `len` bytes at `data`.
uint64_t Xxh64(const void* data, size_t len, uint64_t seed = 0);

/// XXH64 of a file's entire contents. IOError if the file cannot be read.
Result<uint64_t> Xxh64File(const std::string& path);

}  // namespace swole

#endif  // SWOLE_COMMON_CHECKSUM_H_
