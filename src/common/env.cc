#include "common/env.h"

#include <cerrno>
#include <cstdlib>

#include "common/logging.h"

namespace swole {

namespace {

// Every SWOLE_* numeric knob is a count, size, or duration, so negative
// values are as malformed as trailing garbage. A bad value must not be
// silently swallowed: log which variable was ignored and which default is
// in effect, so a typo like SWOLE_THREADS=abc is visible instead of
// mysteriously running single-threaded.
void WarnMalformed(const char* name, const char* value, double fallback) {
  SWOLE_LOG(WARNING) << "ignoring malformed " << name << "=\"" << value
                     << "\"; using default " << fallback;
}

}  // namespace

int64_t GetEnvInt64(const char* name, int64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  int64_t parsed = std::strtoll(value, &end, 10);
  if (end == nullptr || *end != '\0' || errno == ERANGE || parsed < 0) {
    WarnMalformed(name, value, static_cast<double>(fallback));
    return fallback;
  }
  return parsed;
}

double GetEnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  double parsed = std::strtod(value, &end);
  if (end == nullptr || *end != '\0' || errno == ERANGE || parsed < 0) {
    WarnMalformed(name, value, fallback);
    return fallback;
  }
  return parsed;
}

std::string GetEnvString(const char* name, const std::string& fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::string(value) : fallback;
}

}  // namespace swole
