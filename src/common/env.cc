#include "common/env.h"

#include <cstdlib>

namespace swole {

int64_t GetEnvInt64(const char* name, int64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  int64_t parsed = std::strtoll(value, &end, 10);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

double GetEnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  double parsed = std::strtod(value, &end);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

std::string GetEnvString(const char* name, const std::string& fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::string(value) : fallback;
}

}  // namespace swole
