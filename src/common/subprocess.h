#ifndef SWOLE_COMMON_SUBPROCESS_H_
#define SWOLE_COMMON_SUBPROCESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

// fork/exec subprocess runner used by the JIT compile pipeline. Unlike
// std::system there is no shell in between: argv goes to execvp verbatim, so
// paths never need quoting and cannot be hijacked by metacharacters. The
// runner captures the child's stderr (and stdout, merged into it) through a
// pipe and can kill a hung child after a configurable timeout — a compiler
// that wedges must not wedge the query engine.

namespace swole {

struct SubprocessOptions {
  // Wall-clock budget for the child; 0 = no timeout. On expiry the child's
  // process group receives SIGKILL and the result has timed_out = true.
  int64_t timeout_ms = 0;

  // Captured-output cap; output beyond this is discarded (compilers can
  // emit megabytes of template backtraces).
  int64_t max_capture_bytes = 1 << 16;
};

struct SubprocessResult {
  // Exit code if the child exited normally, -1 otherwise.
  int exit_code = -1;
  // Signal that terminated the child, 0 if it exited normally.
  int term_signal = 0;
  // True if the runner killed the child because the timeout expired.
  bool timed_out = false;
  // Child stderr + stdout, interleaved, capped at max_capture_bytes.
  std::string captured_output;
  int64_t elapsed_ms = 0;

  bool Succeeded() const { return !timed_out && exit_code == 0; }
};

/// Runs `argv[0]` (resolved via PATH) with the given arguments and waits for
/// it. A non-zero exit or a timeout is reported in the result, not as an
/// error Status; Status is only non-OK when the child could not be spawned
/// at all (fork/pipe failure, empty argv).
Result<SubprocessResult> RunSubprocess(const std::vector<std::string>& argv,
                                       const SubprocessOptions& options = {});

}  // namespace swole

#endif  // SWOLE_COMMON_SUBPROCESS_H_
