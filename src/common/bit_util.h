#ifndef SWOLE_COMMON_BIT_UTIL_H_
#define SWOLE_COMMON_BIT_UTIL_H_

#include <bit>
#include <cstdint>

// Small bit-manipulation helpers shared by the hash table, positional
// bitmaps, and null-suppressed column storage.

namespace swole::bit_util {

/// Smallest power of two >= v (and >= 1).
inline uint64_t NextPowerOfTwo(uint64_t v) {
  return v <= 1 ? 1 : uint64_t{1} << (64 - std::countl_zero(v - 1));
}

inline bool IsPowerOfTwo(uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

/// Number of 64-bit words needed to hold `bits` bits.
inline uint64_t WordsForBits(uint64_t bits) { return (bits + 63) / 64; }

inline int PopCount(uint64_t v) { return std::popcount(v); }

/// Index of the lowest set bit. Preconditions: v != 0.
inline int CountTrailingZeros(uint64_t v) { return std::countr_zero(v); }

/// Bits needed to represent values in [0, n); at least 1.
inline int BitsToRepresent(uint64_t n) {
  return n <= 2 ? 1 : 64 - std::countl_zero(n - 1);
}

/// Rounds `v` up to a multiple of `align` (align must be a power of two).
inline uint64_t RoundUp(uint64_t v, uint64_t align) {
  return (v + align - 1) & ~(align - 1);
}

}  // namespace swole::bit_util

#endif  // SWOLE_COMMON_BIT_UTIL_H_
