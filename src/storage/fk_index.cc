#include "storage/fk_index.h"

#include <unordered_map>

#include "common/string_util.h"
#include "storage/column.h"

namespace swole {

Result<FkIndex> FkIndex::Build(const Column& fk, const Column& pk) {
  const int64_t pk_rows = pk.size();
  if (pk_rows == 0) {
    return Status::InvalidArgument("FkIndex: empty primary-key column");
  }
  if (pk_rows > UINT32_MAX) {
    return Status::OutOfRange("FkIndex: referenced table too large");
  }

  FkIndex index;
  index.referenced_size_ = pk_rows;
  index.offsets_.resize(fk.size());

  // Fast path: dense primary keys pk[i] == base + i (true for all generated
  // tables here, and the common case for surrogate keys). Falls back to a
  // hash map otherwise.
  const int64_t base = pk.ValueAt(0);
  bool dense = (pk.MaxValue() - pk.MinValue() + 1 == pk_rows) &&
               (pk.MinValue() == base);
  if (dense) {
    for (int64_t i = 0; i < pk_rows; ++i) {
      if (pk.ValueAt(i) != base + i) {
        dense = false;
        break;
      }
    }
  }

  if (dense) {
    for (int64_t i = 0; i < fk.size(); ++i) {
      int64_t offset = fk.ValueAt(i) - base;
      if (offset < 0 || offset >= pk_rows) {
        return Status::InvalidArgument(StringFormat(
            "FkIndex: referential integrity violation at row %lld "
            "(fk=%lld not in [%lld, %lld])",
            static_cast<long long>(i),
            static_cast<long long>(fk.ValueAt(i)),
            static_cast<long long>(base),
            static_cast<long long>(base + pk_rows - 1)));
      }
      index.offsets_[i] = static_cast<uint32_t>(offset);
    }
    return index;
  }

  std::unordered_map<int64_t, uint32_t> pk_positions;
  pk_positions.reserve(pk_rows);
  for (int64_t i = 0; i < pk_rows; ++i) {
    auto [it, inserted] =
        pk_positions.emplace(pk.ValueAt(i), static_cast<uint32_t>(i));
    if (!inserted) {
      return Status::InvalidArgument(StringFormat(
          "FkIndex: duplicate primary key %lld",
          static_cast<long long>(pk.ValueAt(i))));
    }
  }
  for (int64_t i = 0; i < fk.size(); ++i) {
    auto it = pk_positions.find(fk.ValueAt(i));
    if (it == pk_positions.end()) {
      return Status::InvalidArgument(StringFormat(
          "FkIndex: referential integrity violation, fk=%lld has no match",
          static_cast<long long>(fk.ValueAt(i))));
    }
    index.offsets_[i] = it->second;
  }
  return index;
}

}  // namespace swole
