#include "storage/table.h"

#include "common/string_util.h"

namespace swole {

Status Table::AddColumn(std::unique_ptr<Column> column) {
  if (column == nullptr) {
    return Status::InvalidArgument("Table::AddColumn: null column");
  }
  if (column_index_.count(column->name()) > 0) {
    return Status::AlreadyExists(
        StringFormat("column '%s' already exists in table '%s'",
                     column->name().c_str(), name_.c_str()));
  }
  if (num_rows_ < 0) {
    num_rows_ = column->size();
  } else if (column->size() != num_rows_) {
    return Status::InvalidArgument(StringFormat(
        "column '%s' has %lld rows, table '%s' has %lld",
        column->name().c_str(), static_cast<long long>(column->size()),
        name_.c_str(), static_cast<long long>(num_rows_)));
  }
  column_index_.emplace(column->name(), static_cast<int>(columns_.size()));
  columns_.push_back(std::move(column));
  return Status::OK();
}

Result<const Column*> Table::GetColumn(const std::string& name) const {
  auto it = column_index_.find(name);
  if (it == column_index_.end()) {
    return Status::NotFound(StringFormat("no column '%s' in table '%s'",
                                         name.c_str(), name_.c_str()));
  }
  return static_cast<const Column*>(columns_[it->second].get());
}

const Column& Table::ColumnRef(const std::string& name) const {
  Result<const Column*> result = GetColumn(name);
  result.status().CheckOK();
  return *result.value();
}

const Column& Table::ColumnAt(int index) const {
  SWOLE_CHECK_GE(index, 0);
  SWOLE_CHECK_LT(index, num_columns());
  return *columns_[index];
}

bool Table::HasColumn(const std::string& name) const {
  return column_index_.count(name) > 0;
}

std::vector<std::string> Table::ColumnNames() const {
  std::vector<std::string> names;
  names.reserve(columns_.size());
  for (const auto& column : columns_) names.push_back(column->name());
  return names;
}

Status Table::AddFkIndex(const std::string& fk_column, FkIndex index) {
  if (!HasColumn(fk_column)) {
    return Status::NotFound(StringFormat("no column '%s' in table '%s'",
                                         fk_column.c_str(), name_.c_str()));
  }
  if (index.size() != num_rows_) {
    return Status::InvalidArgument(
        StringFormat("fk index for '%s' has %lld entries, table has %lld",
                     fk_column.c_str(), static_cast<long long>(index.size()),
                     static_cast<long long>(num_rows_)));
  }
  fk_indexes_[fk_column] = std::move(index);
  return Status::OK();
}

Result<const FkIndex*> Table::GetFkIndex(const std::string& fk_column) const {
  auto it = fk_indexes_.find(fk_column);
  if (it == fk_indexes_.end()) {
    return Status::NotFound(StringFormat("no fk index on '%s.%s'",
                                         name_.c_str(), fk_column.c_str()));
  }
  return static_cast<const FkIndex*>(&it->second);
}

int64_t Table::ByteSize() const {
  int64_t total = 0;
  for (const auto& column : columns_) total += column->ByteSize();
  return total;
}

std::string Table::ToString() const {
  std::string out = StringFormat("Table %s (%lld rows)\n", name_.c_str(),
                                 static_cast<long long>(num_rows_));
  for (const auto& column : columns_) {
    out += StringFormat("  %-24s %s\n", column->name().c_str(),
                        column->type().ToString().c_str());
  }
  return out;
}

}  // namespace swole
