#ifndef SWOLE_STORAGE_TYPES_H_
#define SWOLE_STORAGE_TYPES_H_

#include <cstdint>
#include <string>

#include "common/status.h"

// Physical and logical type system of the columnar store.
//
// The paper's storage conventions (§IV): dictionary encoding for
// low-cardinality strings, null suppression (narrow integer storage) for
// low-cardinality integers, fixed-point decimals stored as integers, and
// 64-bit integer aggregates. We mirror that exactly:
//
//   logical type     physical representation
//   ------------     -----------------------
//   INT8/16/32/64    int8_t / int16_t / int32_t / int64_t arrays
//   DATE             int32_t days since 1970-01-01
//   DECIMAL(scale)   int64_t value * 10^scale
//   STRING           int32_t dictionary codes + per-column dictionary

namespace swole {

enum class PhysicalType : uint8_t {
  kInt8 = 0,
  kInt16,
  kInt32,
  kInt64,
};

enum class LogicalType : uint8_t {
  kInt = 0,   // plain integer (any physical width)
  kDate,      // days since epoch; physical kInt32
  kDecimal,   // fixed point; physical kInt64 (value * 10^scale)
  kString,    // dictionary code; physical kInt32
  kText,      // raw variable-length text (offsets + blob); no numeric data
};

/// Byte width of a physical type.
int PhysicalTypeSize(PhysicalType type);

const char* PhysicalTypeName(PhysicalType type);
const char* LogicalTypeName(LogicalType type);

/// C type name used by the source code generator ("int8_t", ...).
const char* PhysicalTypeCName(PhysicalType type);

/// Narrowest physical integer type that can hold all of [min, max].
PhysicalType NarrowestPhysicalType(int64_t min, int64_t max);

/// Full column type: logical type + physical width + decimal scale.
struct ColumnType {
  LogicalType logical = LogicalType::kInt;
  PhysicalType physical = PhysicalType::kInt64;
  int decimal_scale = 0;  // only for kDecimal

  static ColumnType Int(PhysicalType physical = PhysicalType::kInt64) {
    return {LogicalType::kInt, physical, 0};
  }
  static ColumnType Date() {
    return {LogicalType::kDate, PhysicalType::kInt32, 0};
  }
  static ColumnType Decimal(int scale) {
    return {LogicalType::kDecimal, PhysicalType::kInt64, scale};
  }
  static ColumnType String() {
    return {LogicalType::kString, PhysicalType::kInt32, 0};
  }
  static ColumnType Text() {
    return {LogicalType::kText, PhysicalType::kInt32, 0};
  }

  bool operator==(const ColumnType& other) const = default;

  std::string ToString() const;
};

/// 10^scale, for fixed-point conversions. Preconditions: 0 <= scale <= 18.
int64_t DecimalScaleFactor(int scale);

/// Dispatches on a physical type, binding the matching C++ type to a
/// template callable:  DispatchPhysical(type, [&]<typename T>() { ... });
template <typename Func>
auto DispatchPhysical(PhysicalType type, Func&& func) {
  switch (type) {
    case PhysicalType::kInt8:
      return func.template operator()<int8_t>();
    case PhysicalType::kInt16:
      return func.template operator()<int16_t>();
    case PhysicalType::kInt32:
      return func.template operator()<int32_t>();
    case PhysicalType::kInt64:
      return func.template operator()<int64_t>();
  }
  __builtin_unreachable();
}

}  // namespace swole

#endif  // SWOLE_STORAGE_TYPES_H_
