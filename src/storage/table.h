#ifndef SWOLE_STORAGE_TABLE_H_
#define SWOLE_STORAGE_TABLE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/column.h"
#include "storage/fk_index.h"

// A named collection of equal-length columns, plus the foreign-key offset
// indexes the paper's positional-bitmap technique relies on (§III-D: these
// indexes exist anyway to enforce referential integrity, so probing a bitmap
// through them is free).

namespace swole {

class Table {
 public:
  explicit Table(std::string name) : name_(std::move(name)) {}

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;
  Table(Table&&) = default;
  Table& operator=(Table&&) = default;

  const std::string& name() const { return name_; }
  int64_t num_rows() const { return num_rows_; }
  int num_columns() const { return static_cast<int>(columns_.size()); }

  /// Adds a column. All columns must end up the same length; the row count
  /// is fixed by the first column added.
  Status AddColumn(std::unique_ptr<Column> column);

  /// Column lookup by name. Returns NotFound for unknown names.
  Result<const Column*> GetColumn(const std::string& name) const;

  /// Aborting variant for call sites that already validated the plan.
  const Column& ColumnRef(const std::string& name) const;

  const Column& ColumnAt(int index) const;

  bool HasColumn(const std::string& name) const;

  std::vector<std::string> ColumnNames() const;

  /// Registers the referential-integrity index for `fk_column` (of this
  /// table) pointing at rows of another table.
  Status AddFkIndex(const std::string& fk_column, FkIndex index);

  /// The FK index for a column, or NotFound if none was registered.
  Result<const FkIndex*> GetFkIndex(const std::string& fk_column) const;

  /// Total bytes of column storage (excludes dictionaries and indexes).
  int64_t ByteSize() const;

  std::string ToString() const;

 private:
  std::string name_;
  int64_t num_rows_ = -1;  // -1 until the first column is added
  std::vector<std::unique_ptr<Column>> columns_;
  std::map<std::string, int> column_index_;
  std::map<std::string, FkIndex> fk_indexes_;
};

}  // namespace swole

#endif  // SWOLE_STORAGE_TABLE_H_
