#include "storage/types.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace swole {

int PhysicalTypeSize(PhysicalType type) {
  switch (type) {
    case PhysicalType::kInt8:
      return 1;
    case PhysicalType::kInt16:
      return 2;
    case PhysicalType::kInt32:
      return 4;
    case PhysicalType::kInt64:
      return 8;
  }
  return 0;
}

const char* PhysicalTypeName(PhysicalType type) {
  switch (type) {
    case PhysicalType::kInt8:
      return "int8";
    case PhysicalType::kInt16:
      return "int16";
    case PhysicalType::kInt32:
      return "int32";
    case PhysicalType::kInt64:
      return "int64";
  }
  return "?";
}

const char* PhysicalTypeCName(PhysicalType type) {
  switch (type) {
    case PhysicalType::kInt8:
      return "int8_t";
    case PhysicalType::kInt16:
      return "int16_t";
    case PhysicalType::kInt32:
      return "int32_t";
    case PhysicalType::kInt64:
      return "int64_t";
  }
  return "?";
}

const char* LogicalTypeName(LogicalType type) {
  switch (type) {
    case LogicalType::kInt:
      return "int";
    case LogicalType::kDate:
      return "date";
    case LogicalType::kDecimal:
      return "decimal";
    case LogicalType::kString:
      return "string";
    case LogicalType::kText:
      return "text";
  }
  return "?";
}

PhysicalType NarrowestPhysicalType(int64_t min, int64_t max) {
  SWOLE_CHECK_LE(min, max);
  if (min >= INT8_MIN && max <= INT8_MAX) return PhysicalType::kInt8;
  if (min >= INT16_MIN && max <= INT16_MAX) return PhysicalType::kInt16;
  if (min >= INT32_MIN && max <= INT32_MAX) return PhysicalType::kInt32;
  return PhysicalType::kInt64;
}

std::string ColumnType::ToString() const {
  switch (logical) {
    case LogicalType::kInt:
      return StringFormat("int(%s)", PhysicalTypeName(physical));
    case LogicalType::kDate:
      return "date";
    case LogicalType::kDecimal:
      return StringFormat("decimal(%d)", decimal_scale);
    case LogicalType::kString:
      return "string(dict)";
    case LogicalType::kText:
      return "text";
  }
  return "?";
}

int64_t DecimalScaleFactor(int scale) {
  SWOLE_CHECK_GE(scale, 0);
  SWOLE_CHECK_LE(scale, 18);
  int64_t factor = 1;
  for (int i = 0; i < scale; ++i) factor *= 10;
  return factor;
}

}  // namespace swole
