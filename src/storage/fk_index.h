#ifndef SWOLE_STORAGE_FK_INDEX_H_
#define SWOLE_STORAGE_FK_INDEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

// Foreign-key offset index (the referential-integrity structure of §III-D).
//
// For a foreign-key column R.fk referencing S.pk, the index stores, for every
// row of R, the *row offset* in S of the matching primary key. Positional
// bitmap probes then become `bitmap[offsets[i]]` — a positional lookup with
// no hashing. The index is built once at load time, which doubles as the
// referential-integrity check (every fk must resolve).

namespace swole {

class Column;

class FkIndex {
 public:
  FkIndex() = default;

  /// Builds the offset index for `fk` referencing `pk`. Fails with
  /// InvalidArgument if any fk value has no matching pk (RI violation) or if
  /// pk contains duplicates.
  static Result<FkIndex> Build(const Column& fk, const Column& pk);

  const uint32_t* offsets() const { return offsets_.data(); }
  int64_t size() const { return static_cast<int64_t>(offsets_.size()); }

  /// Number of rows in the referenced (primary-key) table.
  int64_t referenced_size() const { return referenced_size_; }

  uint32_t OffsetAt(int64_t row) const { return offsets_[row]; }

 private:
  std::vector<uint32_t> offsets_;
  int64_t referenced_size_ = 0;
};

}  // namespace swole

#endif  // SWOLE_STORAGE_FK_INDEX_H_
