#include "storage/bitmap.h"

#include <algorithm>

namespace swole {

void PositionalBitmap::PackBytes(int64_t start, const uint8_t* cmp,
                                 int64_t len) {
  SWOLE_DCHECK_GE(start, 0);
  SWOLE_DCHECK_LE(start + len, num_bits_);
  int64_t i = 0;
  // Word-aligned fast path: build each 64-bit word from 64 bytes.
  if ((start & 63) == 0) {
    for (; i + 64 <= len; i += 64) {
      uint64_t word = 0;
      for (int b = 0; b < 64; ++b) {
        word |= static_cast<uint64_t>(cmp[i + b] & 1) << b;
      }
      words_[(start + i) >> 6] = word;
    }
  }
  for (; i < len; ++i) SetTo(start + i, cmp[i] != 0);
}

int64_t PositionalBitmap::CountSetBits() const {
  int64_t count = 0;
  for (uint64_t word : words_) count += bit_util::PopCount(word);
  return count;
}

void PositionalBitmap::And(const PositionalBitmap& other) {
  SWOLE_CHECK_EQ(num_bits_, other.num_bits_);
  for (size_t w = 0; w < words_.size(); ++w) words_[w] &= other.words_[w];
}

void PositionalBitmap::Or(const PositionalBitmap& other) {
  SWOLE_CHECK_EQ(num_bits_, other.num_bits_);
  for (size_t w = 0; w < words_.size(); ++w) words_[w] |= other.words_[w];
}

CompressedBitmap CompressedBitmap::Compress(const PositionalBitmap& bitmap) {
  CompressedBitmap out;
  out.num_bits_ = bitmap.num_bits();
  int64_t num_blocks = (bitmap.num_bits() + kBlockBits - 1) / kBlockBits;
  out.block_slots_.resize(num_blocks);
  const uint64_t* words = bitmap.words();
  int64_t total_words = bit_util::WordsForBits(bitmap.num_bits());

  for (int64_t block = 0; block < num_blocks; ++block) {
    int64_t first_word = block * kBlockWords;
    int64_t last_word = std::min(first_word + kBlockWords, total_words);
    bool all_zero = true;
    bool all_one = true;
    for (int64_t w = first_word; w < last_word; ++w) {
      if (words[w] != 0) all_zero = false;
      if (words[w] != ~uint64_t{0}) all_one = false;
    }
    // A partial final block never qualifies as all-one: its padding bits in
    // the plain bitmap are zero, so all_one is already false there.
    if (all_zero) {
      out.block_slots_[block] = kAllZero;
    } else if (all_one && last_word - first_word == kBlockWords) {
      out.block_slots_[block] = kAllOne;
    } else {
      out.block_slots_[block] =
          static_cast<int32_t>(out.payload_.size() / kBlockWords);
      for (int64_t w = first_word; w < first_word + kBlockWords; ++w) {
        out.payload_.push_back(w < total_words ? words[w] : 0);
      }
    }
  }
  return out;
}

int64_t CompressedBitmap::ByteSize() const {
  return static_cast<int64_t>(block_slots_.size()) * sizeof(int32_t) +
         static_cast<int64_t>(payload_.size()) * sizeof(uint64_t);
}

}  // namespace swole
