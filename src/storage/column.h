#ifndef SWOLE_STORAGE_COLUMN_H_
#define SWOLE_STORAGE_COLUMN_H_

#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/logging.h"
#include "common/status.h"
#include "storage/dictionary.h"
#include "storage/string_column.h"
#include "storage/types.h"

// A typed, contiguous in-memory column. This is the unit every strategy's
// generated/kernel code reads: raw `const T*` arrays, so tiled loops
// auto-vectorize exactly like the paper's hand-written C.

namespace swole {

class Column {
 public:
  Column(std::string name, ColumnType type);

  Column(const Column&) = delete;
  Column& operator=(const Column&) = delete;
  Column(Column&&) = default;
  Column& operator=(Column&&) = default;

  const std::string& name() const { return name_; }
  const ColumnType& type() const { return type_; }
  int64_t size() const;

  /// Raw data pointer. Preconditions: T matches the physical type.
  template <typename T>
  const T* Data() const {
    const std::vector<T>* vec = std::get_if<std::vector<T>>(&data_);
    SWOLE_CHECK(vec != nullptr)
        << "column " << name_ << " is " << type_.ToString();
    return vec->data();
  }

  template <typename T>
  T* MutableData() {
    std::vector<T>* vec = std::get_if<std::vector<T>>(&data_);
    SWOLE_CHECK(vec != nullptr)
        << "column " << name_ << " is " << type_.ToString();
    return vec->data();
  }

  /// Width-generic element read, widened to int64. Slow path; used by the
  /// reference engine and tests, never by the strategy kernels.
  int64_t ValueAt(int64_t row) const;

  /// String value via the dictionary. Preconditions: logical type kString.
  const std::string& StringAt(int64_t row) const;

  /// Appends one value, checking it fits the physical width.
  void Append(int64_t value);

  void Reserve(int64_t rows);

  /// Bulk-append from a widened buffer (range-checked per element).
  void AppendN(const int64_t* values, int64_t count);

  const Dictionary* dictionary() const { return dictionary_.get(); }
  void set_dictionary(std::shared_ptr<const Dictionary> dict) {
    dictionary_ = std::move(dict);
  }

  /// Raw text payload (logical type kText); null otherwise. Text columns
  /// carry no numeric data — only the string arena.
  const StringColumn* text() const { return text_.get(); }
  void set_text(std::shared_ptr<const StringColumn> text) {
    SWOLE_CHECK(type_.logical == LogicalType::kText);
    text_ = std::move(text);
  }

  /// Text value at `row`. Preconditions: logical type kText.
  std::string_view TextAt(int64_t row) const {
    SWOLE_CHECK(text_ != nullptr) << "column " << name_ << " has no text";
    return text_->Get(row);
  }

  /// Min/max over all values; recomputed on demand and cached.
  /// Preconditions: size() > 0.
  int64_t MinValue() const;
  int64_t MaxValue() const;

  /// Bytes of physical storage held.
  int64_t ByteSize() const;

 private:
  void ComputeStatsIfNeeded() const;

  std::string name_;
  ColumnType type_;
  std::variant<std::vector<int8_t>, std::vector<int16_t>,
               std::vector<int32_t>, std::vector<int64_t>>
      data_;
  std::shared_ptr<const Dictionary> dictionary_;
  std::shared_ptr<const StringColumn> text_;

  mutable bool stats_valid_ = false;
  mutable int64_t min_value_ = 0;
  mutable int64_t max_value_ = 0;
};

}  // namespace swole

#endif  // SWOLE_STORAGE_COLUMN_H_
