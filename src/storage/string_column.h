#ifndef SWOLE_STORAGE_STRING_COLUMN_H_
#define SWOLE_STORAGE_STRING_COLUMN_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/logging.h"
#include "common/query_abort.h"

// Raw variable-length string storage: an append-only byte arena plus
// uint32 row offsets (offsets[0] == 0, row i spans
// [offsets[i], offsets[i+1])), with an optional null bitmap. This is the
// layout the SIMD string kernels (exec/simd_string.h) read directly —
// sequential bytes for pushed predicates, per-row views for pulled ones —
// and the shape the string-placement cost terms reason about
// (cost/cost_model.h): a pushed predicate streams `total_bytes()`
// sequentially, a pulled one makes random arena touches for the surviving
// rows only.
//
// High-cardinality TPC-H text (o_comment, l_comment) lives here; low-
// cardinality strings stay behind storage/dictionary.h. Values may contain
// any bytes, including NUL and non-ASCII — nothing in the engine treats
// text as C strings.
//
// Governance mirrors exec/hash_table.h: SetMemHook registers a
// charge-before-allocate hook (normally QueryContext::MemHookThunk with
// site "string_arena"); arena/offset growth asks permission first and
// throws QueryAbort on refusal, so query-time string materialization is
// charged against the query budget and the site doubles as a deterministic
// SWOLE_FAULT injection point.

namespace swole {

class StringColumn {
 public:
  StringColumn() { offsets_.push_back(0); }

  ~StringColumn() { ReleaseTracked(); }

  StringColumn(const StringColumn&) = delete;
  StringColumn& operator=(const StringColumn&) = delete;

  // Moves transfer the hook registration (and the charge it tracks) to the
  // destination, mirroring HashTable's move semantics.
  StringColumn(StringColumn&& other) noexcept
      : bytes_(std::move(other.bytes_)),
        offsets_(std::move(other.offsets_)),
        null_words_(std::move(other.null_words_)),
        null_count_(other.null_count_),
        tracked_bytes_(other.tracked_bytes_),
        mem_hook_(other.mem_hook_),
        mem_ctx_(other.mem_ctx_),
        mem_site_(other.mem_site_) {
    other.offsets_.clear();
    other.offsets_.push_back(0);
    other.null_count_ = 0;
    other.tracked_bytes_ = 0;
    other.mem_hook_ = nullptr;
    other.mem_ctx_ = nullptr;
  }

  StringColumn& operator=(StringColumn&& other) noexcept {
    if (this == &other) return *this;
    ReleaseTracked();
    bytes_ = std::move(other.bytes_);
    offsets_ = std::move(other.offsets_);
    null_words_ = std::move(other.null_words_);
    null_count_ = other.null_count_;
    tracked_bytes_ = other.tracked_bytes_;
    mem_hook_ = other.mem_hook_;
    mem_ctx_ = other.mem_ctx_;
    mem_site_ = other.mem_site_;
    other.offsets_.clear();
    other.offsets_.push_back(0);
    other.null_count_ = 0;
    other.tracked_bytes_ = 0;
    other.mem_hook_ = nullptr;
    other.mem_ctx_ = nullptr;
    return *this;
  }

  /// Appends one value. Any byte content is legal (embedded NUL included).
  /// Throws QueryAbort if a registered mem hook refuses the arena growth.
  void Append(std::string_view value);

  /// Appends a null row (empty payload + null bit).
  void AppendNull();

  int64_t size() const { return static_cast<int64_t>(offsets_.size()) - 1; }

  std::string_view Get(int64_t row) const {
    SWOLE_DCHECK_GE(row, 0);
    SWOLE_DCHECK_LT(row, size());
    return std::string_view(bytes_.data() + offsets_[row],
                            offsets_[row + 1] - offsets_[row]);
  }

  bool IsNull(int64_t row) const {
    SWOLE_DCHECK_GE(row, 0);
    SWOLE_DCHECK_LT(row, size());
    if (null_words_.empty()) return false;
    return (null_words_[static_cast<size_t>(row >> 6)] >>
            (static_cast<uint64_t>(row) & 63)) &
           1;
  }

  int64_t null_count() const { return null_count_; }

  /// Raw arena views for the tile kernels (exec/simd_string.h).
  const uint8_t* bytes() const {
    return reinterpret_cast<const uint8_t*>(bytes_.data());
  }
  const uint32_t* offsets() const { return offsets_.data(); }

  int64_t total_bytes() const { return static_cast<int64_t>(bytes_.size()); }

  int64_t ByteSize() const {
    return static_cast<int64_t>(bytes_.size()) +
           static_cast<int64_t>(offsets_.size()) * 4 +
           static_cast<int64_t>(null_words_.size()) * 8;
  }

  /// Per-column length statistics for the placement cost model — the
  /// string analogue of NarrowestPhysicalType's width stats.
  struct Stats {
    uint32_t min_len = 0;
    uint32_t max_len = 0;
    int64_t total_bytes = 0;
    double avg_len = 0.0;
  };
  Stats ComputeStats() const;

  /// Pre-sizes the arena/offsets (charged through the mem hook if set).
  void Reserve(int64_t rows, int64_t arena_bytes);

  /// Registers the allocation-charge hook (see exec/hash_table.h for the
  /// contract). Charges the current footprint on attach.
  void SetMemHook(MemHookFn hook, void* ctx, const char* site) {
    ReleaseTracked();
    mem_hook_ = hook;
    mem_ctx_ = ctx;
    mem_site_ = site;
    if (mem_hook_ != nullptr) ChargeDelta(FootprintBytes());
  }

 private:
  // Capacity-based footprint: what the vectors actually hold from the
  // allocator, so hook accounting matches real memory.
  int64_t FootprintBytes() const {
    return static_cast<int64_t>(bytes_.capacity()) +
           static_cast<int64_t>(offsets_.capacity()) * 4 +
           static_cast<int64_t>(null_words_.capacity()) * 8;
  }

  /// Asks the hook for `delta` more bytes; throws QueryAbort on refusal
  /// without allocating. Negative deltas (releases) are always accepted.
  void ChargeDelta(int64_t delta);

  void ReleaseTracked() {
    if (mem_hook_ != nullptr && tracked_bytes_ > 0) {
      mem_hook_(mem_ctx_, -tracked_bytes_, mem_site_);
    }
    tracked_bytes_ = 0;
  }

  /// Ensures capacity for one more row of `value_len` bytes, charging the
  /// growth before reserving.
  void EnsureRoom(size_t value_len, bool with_null_words);

  std::vector<char> bytes_;
  std::vector<uint32_t> offsets_;
  std::vector<uint64_t> null_words_;  // bit per row; empty until first null
  int64_t null_count_ = 0;

  int64_t tracked_bytes_ = 0;
  MemHookFn mem_hook_ = nullptr;
  void* mem_ctx_ = nullptr;
  const char* mem_site_ = "string_arena";
};

/// Legacy name: raw text storage predates StringColumn and several layers
/// still say TextData (column.h accessors, dbgen).
using TextData = StringColumn;

}  // namespace swole

#endif  // SWOLE_STORAGE_STRING_COLUMN_H_
