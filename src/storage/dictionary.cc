#include "storage/dictionary.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"

namespace swole {

Dictionary Dictionary::FromValues(std::vector<std::string> values) {
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  Dictionary dict;
  dict.values_ = std::move(values);
  dict.index_.reserve(dict.values_.size());
  for (int32_t code = 0; code < dict.size(); ++code) {
    dict.index_.emplace(dict.values_[code], code);
  }
  return dict;
}

int32_t Dictionary::Lookup(std::string_view value) const {
  auto it = index_.find(std::string(value));
  return it == index_.end() ? -1 : it->second;
}

const std::string& Dictionary::At(int32_t code) const {
  SWOLE_CHECK_GE(code, 0);
  SWOLE_CHECK_LT(code, size());
  return values_[code];
}

std::vector<int32_t> Dictionary::MatchLike(std::string_view pattern) const {
  std::vector<int32_t> matches;
  for (int32_t code = 0; code < size(); ++code) {
    if (LikeMatch(values_[code], pattern)) matches.push_back(code);
  }
  return matches;
}

std::vector<uint8_t> Dictionary::LikeMask(std::string_view pattern) const {
  std::vector<uint8_t> mask(values_.size(), 0);
  for (int32_t code = 0; code < size(); ++code) {
    mask[code] = LikeMatch(values_[code], pattern) ? 1 : 0;
  }
  return mask;
}

}  // namespace swole
