#ifndef SWOLE_STORAGE_TEXT_DATA_H_
#define SWOLE_STORAGE_TEXT_DATA_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/logging.h"

// Raw variable-length text storage (offsets + byte blob) for
// high-cardinality string columns where dictionary encoding is infeasible
// (TPC-H o_comment). Predicates on text columns cost a real string match
// per row — for every strategy — which is what makes Q13's NOT LIKE the
// dominant cost, as in the paper.

namespace swole {

class TextData {
 public:
  TextData() { offsets_.push_back(0); }

  void Append(std::string_view value) {
    bytes_.insert(bytes_.end(), value.begin(), value.end());
    offsets_.push_back(static_cast<uint32_t>(bytes_.size()));
  }

  int64_t size() const {
    return static_cast<int64_t>(offsets_.size()) - 1;
  }

  std::string_view Get(int64_t row) const {
    SWOLE_DCHECK_GE(row, 0);
    SWOLE_DCHECK_LT(row, size());
    return std::string_view(bytes_.data() + offsets_[row],
                            offsets_[row + 1] - offsets_[row]);
  }

  int64_t ByteSize() const {
    return static_cast<int64_t>(bytes_.size()) +
           static_cast<int64_t>(offsets_.size()) * 4;
  }

 private:
  std::vector<char> bytes_;
  std::vector<uint32_t> offsets_;
};

}  // namespace swole

#endif  // SWOLE_STORAGE_TEXT_DATA_H_
