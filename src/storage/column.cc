#include "storage/column.h"

#include <algorithm>
#include <limits>

namespace swole {

Column::Column(std::string name, ColumnType type)
    : name_(std::move(name)), type_(type) {
  DispatchPhysical(type_.physical, [&]<typename T>() {
    data_ = std::vector<T>();
  });
}

int64_t Column::size() const {
  if (type_.logical == LogicalType::kText) {
    return text_ != nullptr ? text_->size() : 0;
  }
  return std::visit(
      [](const auto& vec) { return static_cast<int64_t>(vec.size()); }, data_);
}

int64_t Column::ValueAt(int64_t row) const {
  SWOLE_DCHECK_GE(row, 0);
  SWOLE_DCHECK_LT(row, size());
  return std::visit(
      [row](const auto& vec) { return static_cast<int64_t>(vec[row]); },
      data_);
}

const std::string& Column::StringAt(int64_t row) const {
  SWOLE_CHECK(type_.logical == LogicalType::kString)
      << "column " << name_ << " is not a string column";
  SWOLE_CHECK(dictionary_ != nullptr);
  return dictionary_->At(static_cast<int32_t>(ValueAt(row)));
}

void Column::Append(int64_t value) {
  std::visit(
      [&](auto& vec) {
        using T = typename std::decay_t<decltype(vec)>::value_type;
        SWOLE_DCHECK_GE(value, std::numeric_limits<T>::min());
        SWOLE_DCHECK_LE(value, std::numeric_limits<T>::max());
        vec.push_back(static_cast<T>(value));
      },
      data_);
  stats_valid_ = false;
}

void Column::Reserve(int64_t rows) {
  std::visit([rows](auto& vec) { vec.reserve(rows); }, data_);
}

void Column::AppendN(const int64_t* values, int64_t count) {
  std::visit(
      [&](auto& vec) {
        using T = typename std::decay_t<decltype(vec)>::value_type;
        vec.reserve(vec.size() + count);
        for (int64_t i = 0; i < count; ++i) {
          SWOLE_DCHECK_GE(values[i], std::numeric_limits<T>::min());
          SWOLE_DCHECK_LE(values[i], std::numeric_limits<T>::max());
          vec.push_back(static_cast<T>(values[i]));
        }
      },
      data_);
  stats_valid_ = false;
}

void Column::ComputeStatsIfNeeded() const {
  if (stats_valid_) return;
  SWOLE_CHECK_GT(size(), 0) << "stats on empty column " << name_;
  std::visit(
      [this](const auto& vec) {
        auto [min_it, max_it] = std::minmax_element(vec.begin(), vec.end());
        min_value_ = static_cast<int64_t>(*min_it);
        max_value_ = static_cast<int64_t>(*max_it);
      },
      data_);
  stats_valid_ = true;
}

int64_t Column::MinValue() const {
  ComputeStatsIfNeeded();
  return min_value_;
}

int64_t Column::MaxValue() const {
  ComputeStatsIfNeeded();
  return max_value_;
}

int64_t Column::ByteSize() const {
  if (type_.logical == LogicalType::kText) {
    return text_ != nullptr ? text_->ByteSize() : 0;
  }
  return size() * PhysicalTypeSize(type_.physical);
}

}  // namespace swole
