#ifndef SWOLE_STORAGE_DICTIONARY_H_
#define SWOLE_STORAGE_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"

// Per-column dictionary for low-cardinality string columns. Codes are dense
// int32 starting at 0 and assigned in *sorted* order of the distinct values,
// so range comparisons on strings (rare, but e.g. `p_type like 'PROMO%'`
// prefix tests) can be answered on codes, and predicate evaluation reduces to
// integer operations — the property the paper's compression setup relies on.

namespace swole {

class Dictionary {
 public:
  Dictionary() = default;

  /// Builds a dictionary whose codes follow the sort order of `values`
  /// (duplicates collapsed).
  static Dictionary FromValues(std::vector<std::string> values);

  /// Code for `value`, or -1 if absent.
  int32_t Lookup(std::string_view value) const;

  /// Preconditions: 0 <= code < size().
  const std::string& At(int32_t code) const;

  int32_t size() const { return static_cast<int32_t>(values_.size()); }

  /// Codes whose value matches a SQL LIKE pattern. Evaluating LIKE once per
  /// dictionary entry (instead of once per row) is how all strategies handle
  /// string predicates on dictionary columns.
  std::vector<int32_t> MatchLike(std::string_view pattern) const;

  /// Dense bitmask over codes: mask[code] == 1 iff value matches `pattern`.
  std::vector<uint8_t> LikeMask(std::string_view pattern) const;

  const std::vector<std::string>& values() const { return values_; }

 private:
  std::vector<std::string> values_;  // sorted, unique
  std::unordered_map<std::string, int32_t> index_;
};

}  // namespace swole

#endif  // SWOLE_STORAGE_DICTIONARY_H_
