#ifndef SWOLE_STORAGE_BITMAP_H_
#define SWOLE_STORAGE_BITMAP_H_

#include <cstdint>
#include <vector>

#include "common/bit_util.h"
#include "common/logging.h"

// Positional bitmap (§III-D): one bit per row of the build-side table,
// bit[i] == 1 iff row i qualifies. Probing is a positional lookup through the
// foreign-key offset index; building is a purely sequential write. Even a
// 100M-row table needs only ~12.5MB, so the bitmap is cache-friendly where a
// hash table of the same keys is not.

namespace swole {

class PositionalBitmap {
 public:
  PositionalBitmap() = default;
  explicit PositionalBitmap(int64_t num_bits) { Resize(num_bits); }

  /// Resizes to `num_bits`, clearing all bits.
  void Resize(int64_t num_bits) {
    num_bits_ = num_bits;
    words_.assign(bit_util::WordsForBits(num_bits), 0);
  }

  int64_t num_bits() const { return num_bits_; }
  int64_t ByteSize() const { return static_cast<int64_t>(words_.size()) * 8; }

  bool Test(int64_t i) const {
    SWOLE_DCHECK_LT(i, num_bits_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  void Set(int64_t i) {
    SWOLE_DCHECK_LT(i, num_bits_);
    words_[i >> 6] |= uint64_t{1} << (i & 63);
  }

  void Clear(int64_t i) {
    SWOLE_DCHECK_LT(i, num_bits_);
    words_[i >> 6] &= ~(uint64_t{1} << (i & 63));
  }

  /// Unconditional store of the predicate result (value-masking style build:
  /// "set the corresponding bit at the tuple offset to the value of the
  /// predicate result").
  void SetTo(int64_t i, bool value) {
    SWOLE_DCHECK_LT(i, num_bits_);
    uint64_t mask = uint64_t{1} << (i & 63);
    uint64_t word = words_[i >> 6];
    words_[i >> 6] = value ? (word | mask) : (word & ~mask);
  }

  /// Branch-free OR-store: sets bit i if `value`, leaves it otherwise.
  /// Used when several source rows map to the same bit (reverse semijoin
  /// builds, §III-D applied to TPC-H Q4).
  void OrTo(int64_t i, bool value) {
    SWOLE_DCHECK_LT(i, num_bits_);
    words_[i >> 6] |= static_cast<uint64_t>(value) << (i & 63);
  }

  /// Packs a tile of byte-wide predicate results (0/1) into bits starting at
  /// bit offset `start`. Preconditions: start is a multiple of 64, or
  /// len small enough that the tail path is acceptable.
  void PackBytes(int64_t start, const uint8_t* cmp, int64_t len);

  int64_t CountSetBits() const;

  /// this &= other. Preconditions: equal size.
  void And(const PositionalBitmap& other);
  /// this |= other. Preconditions: equal size.
  void Or(const PositionalBitmap& other);

  const uint64_t* words() const { return words_.data(); }

 private:
  int64_t num_bits_ = 0;
  std::vector<uint64_t> words_;
};

/// Block-compressed bitmap (the paper's §III-D note: "replace entire blocks
/// of repeated values"). Blocks of 512 bits that are all-zero or all-one are
/// elided; mixed blocks store their words verbatim. Probe cost is one extra
/// indirection — the size/overhead trade-off §III-D describes.
class CompressedBitmap {
 public:
  static constexpr int64_t kBlockBits = 512;
  static constexpr int64_t kBlockWords = kBlockBits / 64;

  /// Compresses a plain bitmap.
  static CompressedBitmap Compress(const PositionalBitmap& bitmap);

  bool Test(int64_t i) const {
    SWOLE_DCHECK_LT(i, num_bits_);
    int64_t block = i / kBlockBits;
    int32_t slot = block_slots_[block];
    if (slot == kAllZero) return false;
    if (slot == kAllOne) return true;
    int64_t bit_in_block = i % kBlockBits;
    return (payload_[slot * kBlockWords + (bit_in_block >> 6)] >>
            (bit_in_block & 63)) &
           1;
  }

  int64_t num_bits() const { return num_bits_; }
  int64_t ByteSize() const;
  int64_t num_mixed_blocks() const {
    return static_cast<int64_t>(payload_.size()) / kBlockWords;
  }

 private:
  static constexpr int32_t kAllZero = -1;
  static constexpr int32_t kAllOne = -2;

  int64_t num_bits_ = 0;
  std::vector<int32_t> block_slots_;  // per block: kAllZero/kAllOne/payload ix
  std::vector<uint64_t> payload_;     // words of mixed blocks
};

}  // namespace swole

#endif  // SWOLE_STORAGE_BITMAP_H_
