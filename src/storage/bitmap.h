#ifndef SWOLE_STORAGE_BITMAP_H_
#define SWOLE_STORAGE_BITMAP_H_

#include <cstdint>
#include <vector>

#include "common/bit_util.h"
#include "common/logging.h"
#include "common/query_abort.h"

// Positional bitmap (§III-D): one bit per row of the build-side table,
// bit[i] == 1 iff row i qualifies. Probing is a positional lookup through the
// foreign-key offset index; building is a purely sequential write. Even a
// 100M-row table needs only ~12.5MB, so the bitmap is cache-friendly where a
// hash table of the same keys is not.

namespace swole {

class PositionalBitmap {
 public:
  PositionalBitmap() = default;
  explicit PositionalBitmap(int64_t num_bits) { Resize(num_bits); }

  // Copies duplicate the bits but not the memory-hook registration: the
  // copy starts untracked (call SetMemHook on it to charge it), while a
  // hooked copy-assignment target re-charges to the incoming size.
  PositionalBitmap(const PositionalBitmap& other)
      : num_bits_(other.num_bits_), words_(other.words_) {}
  PositionalBitmap& operator=(const PositionalBitmap& other) {
    if (this != &other) {
      ChargeDelta(static_cast<int64_t>(other.words_.size()) * 8 -
                  tracked_bytes_);
      num_bits_ = other.num_bits_;
      words_ = other.words_;
    }
    return *this;
  }

  // Custom moves: the memory-hook registration and the charged byte count
  // travel with the buffer (see exec/hash_table.h for the same pattern).
  PositionalBitmap(PositionalBitmap&& other) noexcept
      : num_bits_(other.num_bits_),
        words_(std::move(other.words_)),
        mem_hook_(other.mem_hook_),
        mem_ctx_(other.mem_ctx_),
        mem_site_(other.mem_site_),
        tracked_bytes_(other.tracked_bytes_) {
    other.DropHook();
  }
  PositionalBitmap& operator=(PositionalBitmap&& other) noexcept {
    if (this != &other) {
      ReleaseTracked();
      num_bits_ = other.num_bits_;
      words_ = std::move(other.words_);
      mem_hook_ = other.mem_hook_;
      mem_ctx_ = other.mem_ctx_;
      mem_site_ = other.mem_site_;
      tracked_bytes_ = other.tracked_bytes_;
      other.DropHook();
    }
    return *this;
  }

  ~PositionalBitmap() { ReleaseTracked(); }

  /// Registers the query-lifecycle memory hook (exec/query_context.h):
  /// Resize charges the tracker *before* allocating and throws QueryAbort
  /// when refused. `site` must have static storage duration. The current
  /// footprint is charged on attachment.
  void SetMemHook(MemHookFn hook, void* ctx, const char* site) {
    ReleaseTracked();
    mem_hook_ = hook;
    mem_ctx_ = ctx;
    mem_site_ = site;
    if (mem_hook_ != nullptr) ChargeDelta(ByteSize());
  }

  /// Resizes to `num_bits`, clearing all bits.
  void Resize(int64_t num_bits) {
    const int64_t new_bytes =
        static_cast<int64_t>(bit_util::WordsForBits(num_bits)) * 8;
    ChargeDelta(new_bytes - tracked_bytes_);
    num_bits_ = num_bits;
    words_.assign(bit_util::WordsForBits(num_bits), 0);
  }

  int64_t num_bits() const { return num_bits_; }
  int64_t ByteSize() const { return static_cast<int64_t>(words_.size()) * 8; }

  bool Test(int64_t i) const {
    SWOLE_DCHECK_LT(i, num_bits_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  void Set(int64_t i) {
    SWOLE_DCHECK_LT(i, num_bits_);
    words_[i >> 6] |= uint64_t{1} << (i & 63);
  }

  void Clear(int64_t i) {
    SWOLE_DCHECK_LT(i, num_bits_);
    words_[i >> 6] &= ~(uint64_t{1} << (i & 63));
  }

  /// Unconditional store of the predicate result (value-masking style build:
  /// "set the corresponding bit at the tuple offset to the value of the
  /// predicate result").
  void SetTo(int64_t i, bool value) {
    SWOLE_DCHECK_LT(i, num_bits_);
    uint64_t mask = uint64_t{1} << (i & 63);
    uint64_t word = words_[i >> 6];
    words_[i >> 6] = value ? (word | mask) : (word & ~mask);
  }

  /// Branch-free OR-store: sets bit i if `value`, leaves it otherwise.
  /// Used when several source rows map to the same bit (reverse semijoin
  /// builds, §III-D applied to TPC-H Q4).
  void OrTo(int64_t i, bool value) {
    SWOLE_DCHECK_LT(i, num_bits_);
    words_[i >> 6] |= static_cast<uint64_t>(value) << (i & 63);
  }

  /// Packs a tile of byte-wide predicate results (0/1) into bits starting at
  /// bit offset `start`. Preconditions: start is a multiple of 64, or
  /// len small enough that the tail path is acceptable.
  void PackBytes(int64_t start, const uint8_t* cmp, int64_t len);

  int64_t CountSetBits() const;

  /// this &= other. Preconditions: equal size.
  void And(const PositionalBitmap& other);
  /// this |= other. Preconditions: equal size.
  void Or(const PositionalBitmap& other);

  const uint64_t* words() const { return words_.data(); }

 private:
  // Asks the memory hook for `delta` more bytes (releases when negative).
  // Throws QueryAbort on refusal before anything is allocated.
  void ChargeDelta(int64_t delta) {
    if (mem_hook_ == nullptr || delta == 0) return;
    int rc = mem_hook_(mem_ctx_, delta, mem_site_);
    if (delta > 0 && rc != 0) {
      throw QueryAbort(static_cast<AbortReason>(rc), mem_site_, delta);
    }
    tracked_bytes_ += delta;
  }

  void ReleaseTracked() noexcept {
    if (mem_hook_ != nullptr && tracked_bytes_ > 0) {
      mem_hook_(mem_ctx_, -tracked_bytes_, mem_site_);
    }
    tracked_bytes_ = 0;
  }

  void DropHook() noexcept {
    mem_hook_ = nullptr;
    mem_ctx_ = nullptr;
    tracked_bytes_ = 0;
  }

  int64_t num_bits_ = 0;
  std::vector<uint64_t> words_;

  MemHookFn mem_hook_ = nullptr;
  void* mem_ctx_ = nullptr;
  const char* mem_site_ = "";
  int64_t tracked_bytes_ = 0;
};

/// Block-compressed bitmap (the paper's §III-D note: "replace entire blocks
/// of repeated values"). Blocks of 512 bits that are all-zero or all-one are
/// elided; mixed blocks store their words verbatim. Probe cost is one extra
/// indirection — the size/overhead trade-off §III-D describes.
class CompressedBitmap {
 public:
  static constexpr int64_t kBlockBits = 512;
  static constexpr int64_t kBlockWords = kBlockBits / 64;

  /// Compresses a plain bitmap.
  static CompressedBitmap Compress(const PositionalBitmap& bitmap);

  bool Test(int64_t i) const {
    SWOLE_DCHECK_LT(i, num_bits_);
    int64_t block = i / kBlockBits;
    int32_t slot = block_slots_[block];
    if (slot == kAllZero) return false;
    if (slot == kAllOne) return true;
    int64_t bit_in_block = i % kBlockBits;
    return (payload_[slot * kBlockWords + (bit_in_block >> 6)] >>
            (bit_in_block & 63)) &
           1;
  }

  int64_t num_bits() const { return num_bits_; }
  int64_t ByteSize() const;
  int64_t num_mixed_blocks() const {
    return static_cast<int64_t>(payload_.size()) / kBlockWords;
  }

 private:
  static constexpr int32_t kAllZero = -1;
  static constexpr int32_t kAllOne = -2;

  int64_t num_bits_ = 0;
  std::vector<int32_t> block_slots_;  // per block: kAllZero/kAllOne/payload ix
  std::vector<uint64_t> payload_;     // words of mixed blocks
};

}  // namespace swole

#endif  // SWOLE_STORAGE_BITMAP_H_
