#include "storage/string_column.h"

#include <algorithm>
#include <limits>

#include "common/fault_injection.h"

namespace swole {

// The charge path below routes through whatever hook is registered —
// normally QueryContext::TryCharge, which evaluates the fault injector at
// the site name — so arming SWOLE_FAULT=string_arena:1.0 deterministically
// refuses string-arena growth as a synthetic budget breach.
SWOLE_REGISTER_FAULT_SITE("string_arena",
                          "string-column arena/offset growth charge")

void StringColumn::ChargeDelta(int64_t delta) {
  if (mem_hook_ == nullptr || delta == 0) return;
  if (delta < 0) {
    mem_hook_(mem_ctx_, delta, mem_site_);
    tracked_bytes_ += delta;
    return;
  }
  int refused = mem_hook_(mem_ctx_, delta, mem_site_);
  if (SWOLE_UNLIKELY(refused != 0)) {
    throw QueryAbort(static_cast<AbortReason>(refused), mem_site_, delta);
  }
  tracked_bytes_ += delta;
}

void StringColumn::EnsureRoom(size_t value_len, bool with_null_words) {
  // Grow by explicit doubling so the charged delta matches the reserve
  // exactly (vector's own growth factor is implementation-defined).
  const int64_t before = FootprintBytes();
  size_t need_bytes = bytes_.size() + value_len;
  size_t cap_bytes = bytes_.capacity();
  if (need_bytes > cap_bytes) {
    cap_bytes = std::max({need_bytes, cap_bytes * 2, size_t{64}});
  }
  size_t need_offsets = offsets_.size() + 1;
  size_t cap_offsets = offsets_.capacity();
  if (need_offsets > cap_offsets) {
    cap_offsets = std::max({need_offsets, cap_offsets * 2, size_t{16}});
  }
  size_t cap_nulls = null_words_.capacity();
  if (with_null_words || !null_words_.empty()) {
    size_t need_nulls = static_cast<size_t>(size() / 64) + 1;
    if (need_nulls > cap_nulls) {
      cap_nulls = std::max({need_nulls, cap_nulls * 2, size_t{4}});
    }
  }
  const int64_t after = static_cast<int64_t>(cap_bytes) +
                        static_cast<int64_t>(cap_offsets) * 4 +
                        static_cast<int64_t>(cap_nulls) * 8;
  if (after > before) ChargeDelta(after - before);  // throws on refusal
  bytes_.reserve(cap_bytes);
  offsets_.reserve(cap_offsets);
  if (cap_nulls > null_words_.capacity()) null_words_.reserve(cap_nulls);
}

void StringColumn::Append(std::string_view value) {
  SWOLE_CHECK_LE(bytes_.size() + value.size(),
                 size_t{std::numeric_limits<uint32_t>::max()})
      << "string arena exceeds uint32 offset space";
  EnsureRoom(value.size(), /*with_null_words=*/false);
  bytes_.insert(bytes_.end(), value.begin(), value.end());
  offsets_.push_back(static_cast<uint32_t>(bytes_.size()));
  if (!null_words_.empty()) {
    const int64_t row = size() - 1;
    const size_t word = static_cast<size_t>(row >> 6);
    if (word >= null_words_.size()) null_words_.resize(word + 1, 0);
  }
}

void StringColumn::AppendNull() {
  EnsureRoom(0, /*with_null_words=*/true);
  const int64_t row = size();  // the row this append creates
  const size_t word = static_cast<size_t>(row >> 6);
  if (word >= null_words_.size()) null_words_.resize(word + 1, 0);
  // Backfill: rows appended before the first null have their bits at 0
  // already (resize zero-fills), so only the new row's bit is set.
  null_words_[word] |= uint64_t{1} << (static_cast<uint64_t>(row) & 63);
  ++null_count_;
  offsets_.push_back(static_cast<uint32_t>(bytes_.size()));
}

StringColumn::Stats StringColumn::ComputeStats() const {
  Stats s;
  const int64_t n = size();
  if (n == 0) return s;
  s.min_len = std::numeric_limits<uint32_t>::max();
  for (int64_t i = 0; i < n; ++i) {
    const uint32_t len = offsets_[i + 1] - offsets_[i];
    s.min_len = std::min(s.min_len, len);
    s.max_len = std::max(s.max_len, len);
  }
  s.total_bytes = total_bytes();
  s.avg_len = static_cast<double>(s.total_bytes) / static_cast<double>(n);
  return s;
}

void StringColumn::Reserve(int64_t rows, int64_t arena_bytes) {
  SWOLE_CHECK_GE(rows, 0);
  SWOLE_CHECK_GE(arena_bytes, 0);
  const int64_t before = FootprintBytes();
  const size_t cap_bytes =
      std::max(bytes_.capacity(), static_cast<size_t>(arena_bytes));
  const size_t cap_offsets =
      std::max(offsets_.capacity(), static_cast<size_t>(rows) + 1);
  const int64_t after = static_cast<int64_t>(cap_bytes) +
                        static_cast<int64_t>(cap_offsets) * 4 +
                        static_cast<int64_t>(null_words_.capacity()) * 8;
  if (after > before) ChargeDelta(after - before);
  bytes_.reserve(cap_bytes);
  offsets_.reserve(cap_offsets);
}

}  // namespace swole
