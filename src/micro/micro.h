#ifndef SWOLE_MICRO_MICRO_H_
#define SWOLE_MICRO_MICRO_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "plan/plan.h"

// The paper's microbenchmark (§IV-B, Fig. 7): a 100M-row table R with
// uniform values and two join tables S (1K and 1M rows). All sizes scale
// down by default so a figure regenerates in minutes on one core; set
// SWOLE_MICRO_R / SWOLE_MICRO_S_LARGE to restore paper scale.
//
// Schema (Fig. 7a), with physical types following the null-suppression
// convention (narrowest type that fits the cardinality):
//   R: r_a int8 (card 100), r_b int8 (card 100, >= 1 so it can divide),
//      r_x int8 (card 100, the [SEL] predicate column),
//      r_y int8 (always 1 — the "and r_y = 1" conjunct),
//      r_c_* group-by keys at 4 cardinalities (Fig. 9),
//      r_fk_small / r_fk_large int32 fks into S_small / S_large.
//   S: s_pk dense int32, s_x int8 (card 100, the [SEL] predicate).

namespace swole {

struct MicroConfig {
  int64_t r_rows = 4'000'000;
  int64_t s_small_rows = 1'000;
  int64_t s_large_rows = 1'000'000;
  // Group-key cardinalities for micro Q2 (paper: 10, 1K, 100K, 10M).
  // The largest is capped at r_rows / 4 so every key has a few rows.
  std::vector<int64_t> c_cardinalities = {10, 1'000, 100'000, 10'000'000};
  uint64_t seed = 42;

  // Skew for the fk and group-key columns. 0 = uniform (the paper's
  // setting — "the worst case for operations that use a hash table");
  // 0 < theta < 1 draws keys Zipf-distributed, making hot keys cache-
  // resident (the skew ablation benchmark).
  double zipf_theta = 0.0;

  // Average byte length of r_s, the raw variable-length string column
  // (actual lengths are uniform in [len/2, 3*len/2]).
  int64_t str_len = 48;

  /// Reads SWOLE_MICRO_R / SWOLE_MICRO_S_SMALL / SWOLE_MICRO_S_LARGE /
  /// SWOLE_MICRO_SEED / SWOLE_MICRO_ZIPF / SWOLE_MICRO_STRLEN over the
  /// defaults.
  static MicroConfig FromEnv();
};

/// Name of the r_c column for cardinality index `i` ("r_c_10", "r_c_1000",
/// ...; the capped value is reflected in the name).
struct MicroData {
  /// Generates R, S_small, S_large and registers the fk indexes.
  static std::unique_ptr<MicroData> Generate(const MicroConfig& config);

  MicroConfig config;
  Catalog catalog;  // tables: "r", "s_small", "s_large"
  std::vector<std::string> c_columns;      // per cardinality
  std::vector<int64_t> c_actual;           // actual (capped) cardinalities
};

// ---- Query builders (Fig. 7b). SEL values are percentages 0..100. ----

/// Q1: select sum(r_a [OP] r_b) from R where r_x < [SEL] and r_y = 1.
QueryPlan MicroQ1(bool division, int64_t sel);

/// Q2: Q1(*) with `group by <c_column>`.
QueryPlan MicroQ2(const std::string& c_column, int64_t c_cardinality,
                  int64_t sel);

/// Q3: select sum(r_x * [COL]) ... — COL = r_b reuses one predicate
/// attribute, COL = r_y reuses both (Fig. 10).
QueryPlan MicroQ3(bool reuse_both, int64_t sel);

/// Q4: join with S: sum(r_a*r_b) where r_fk = s_pk and r_x < [SEL1] and
/// s_x < [SEL2]. `large_s` picks S_large (1M) vs S_small (1K).
QueryPlan MicroQ4(bool large_s, int64_t sel1, int64_t sel2);

/// Q5: groupjoin: select r_fk, sum(r_a*r_b) ... where r_fk = s_pk and
/// s_x < [SEL] group by r_fk.
QueryPlan MicroQ5(bool large_s, int64_t sel, int64_t s_rows);

/// Q6 (string placement, cost/string_placement.h): sum(r_a*r_b) where
/// r_fk = s_pk and s_x < [SEL] and r_s LIKE '%zebra%'. The dim filter is
/// the only non-string qualification, so [SEL] directly sets sigma_other
/// and sweeping it crosses the push-vs-pull flip point (~44% with the
/// default cost profile and 48-byte strings).
QueryPlan MicroQ6(bool large_s, int64_t sel);

}  // namespace swole

#endif  // SWOLE_MICRO_MICRO_H_
