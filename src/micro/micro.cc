#include "micro/micro.h"

#include <algorithm>

#include "common/env.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/string_util.h"
#include "storage/table.h"

namespace swole {

MicroConfig MicroConfig::FromEnv() {
  MicroConfig config;
  config.r_rows = GetEnvInt64("SWOLE_MICRO_R", config.r_rows);
  config.s_small_rows =
      GetEnvInt64("SWOLE_MICRO_S_SMALL", config.s_small_rows);
  config.s_large_rows =
      GetEnvInt64("SWOLE_MICRO_S_LARGE", config.s_large_rows);
  config.seed = static_cast<uint64_t>(
      GetEnvInt64("SWOLE_MICRO_SEED", static_cast<int64_t>(config.seed)));
  config.zipf_theta = GetEnvDouble("SWOLE_MICRO_ZIPF", config.zipf_theta);
  config.str_len = GetEnvInt64("SWOLE_MICRO_STRLEN", config.str_len);
  return config;
}

namespace {

std::unique_ptr<Column> UniformColumn(const std::string& name,
                                      int64_t rows, int64_t lo, int64_t hi,
                                      Rng* rng) {
  auto col = std::make_unique<Column>(
      name, ColumnType::Int(NarrowestPhysicalType(lo, hi)));
  col->Reserve(rows);
  for (int64_t i = 0; i < rows; ++i) col->Append(rng->UniformInt(lo, hi));
  return col;
}

// Key column drawn uniformly (theta == 0) or Zipf-skewed over [0, card).
// Zipf ranks are shuffled so hot keys are not clustered at small ids.
std::unique_ptr<Column> KeyColumn(const std::string& name, int64_t rows,
                                  int64_t card, double theta, Rng* rng) {
  auto col = std::make_unique<Column>(
      name, ColumnType::Int(NarrowestPhysicalType(0, card - 1)));
  col->Reserve(rows);
  if (theta <= 0.0) {
    for (int64_t i = 0; i < rows; ++i) {
      col->Append(rng->UniformInt(0, card - 1));
    }
    return col;
  }
  ZipfGenerator zipf(card, theta, rng->Next());
  std::vector<int64_t> rank_to_key(card);
  for (int64_t k = 0; k < card; ++k) rank_to_key[k] = k;
  Shuffle(&rank_to_key, rng);
  for (int64_t i = 0; i < rows; ++i) {
    col->Append(rank_to_key[zipf.Next() % card]);
  }
  return col;
}

std::unique_ptr<Column> DenseKeyColumn(const std::string& name,
                                       int64_t rows) {
  auto col = std::make_unique<Column>(
      name, ColumnType::Int(NarrowestPhysicalType(0, rows - 1)));
  col->Reserve(rows);
  for (int64_t i = 0; i < rows; ++i) col->Append(i);
  return col;
}

// r_s: raw variable-length strings drawn from the letters a..y, with
// "zebra" spliced into ~2% of rows. The needle's 'z' cannot occur in the
// background text, so LIKE '%zebra%' selectivity is exactly the injection
// rate — no accidental matches to blur a sweep.
std::unique_ptr<Column> StringColumnR(int64_t rows, int64_t avg_len,
                                      Rng* rng) {
  auto text = std::make_shared<TextData>();
  std::string buf;
  for (int64_t i = 0; i < rows; ++i) {
    int64_t len = rng->UniformInt(avg_len / 2, avg_len + avg_len / 2);
    buf.resize(len);
    for (int64_t j = 0; j < len; ++j) {
      buf[j] = static_cast<char>('a' + rng->NextBounded(25));
    }
    if (len >= 5 && rng->Bernoulli(0.02)) {
      int64_t pos = rng->UniformInt(0, len - 5);
      buf.replace(pos, 5, "zebra");
    }
    text->Append(buf);
  }
  auto col = std::make_unique<Column>("r_s", ColumnType::Text());
  col->set_text(std::move(text));
  return col;
}

std::shared_ptr<Table> BuildS(const std::string& name, int64_t rows,
                              Rng* rng) {
  auto table = std::make_shared<Table>(name);
  table->AddColumn(DenseKeyColumn("s_pk", rows)).CheckOK();
  table->AddColumn(UniformColumn("s_x", rows, 0, 99, rng)).CheckOK();
  return table;
}

}  // namespace

std::unique_ptr<MicroData> MicroData::Generate(const MicroConfig& config) {
  SWOLE_CHECK_GT(config.r_rows, 0);
  auto data = std::make_unique<MicroData>();
  data->config = config;
  Rng rng(config.seed);

  auto s_small = BuildS("s_small", config.s_small_rows, &rng);
  auto s_large = BuildS("s_large", config.s_large_rows, &rng);

  auto r = std::make_shared<Table>("r");
  const int64_t rows = config.r_rows;
  r->AddColumn(UniformColumn("r_a", rows, 0, 99, &rng)).CheckOK();
  r->AddColumn(UniformColumn("r_b", rows, 1, 100, &rng)).CheckOK();
  r->AddColumn(UniformColumn("r_x", rows, 0, 99, &rng)).CheckOK();
  // r_y is constant 1 so the figures' x-axis equals [SEL] exactly; the
  // conjunct is still evaluated by every strategy.
  r->AddColumn(UniformColumn("r_y", rows, 1, 1, &rng)).CheckOK();
  r->AddColumn(StringColumnR(rows, config.str_len, &rng)).CheckOK();

  for (int64_t requested : config.c_cardinalities) {
    int64_t actual = std::min(requested, std::max<int64_t>(1, rows / 4));
    std::string name =
        StringFormat("r_c_%lld", static_cast<long long>(requested));
    r->AddColumn(KeyColumn(name, rows, actual, config.zipf_theta, &rng))
        .CheckOK();
    data->c_columns.push_back(name);
    data->c_actual.push_back(actual);
  }

  r->AddColumn(KeyColumn("r_fk_small", rows, config.s_small_rows,
                         config.zipf_theta, &rng))
      .CheckOK();
  r->AddColumn(KeyColumn("r_fk_large", rows, config.s_large_rows,
                         config.zipf_theta, &rng))
      .CheckOK();

  // Referential-integrity indexes (the substrate of §III-D).
  {
    Result<FkIndex> index =
        FkIndex::Build(r->ColumnRef("r_fk_small"), s_small->ColumnRef("s_pk"));
    index.status().CheckOK();
    r->AddFkIndex("r_fk_small", std::move(index).value()).CheckOK();
  }
  {
    Result<FkIndex> index =
        FkIndex::Build(r->ColumnRef("r_fk_large"), s_large->ColumnRef("s_pk"));
    index.status().CheckOK();
    r->AddFkIndex("r_fk_large", std::move(index).value()).CheckOK();
  }

  data->catalog.AddTable(std::move(r)).CheckOK();
  data->catalog.AddTable(std::move(s_small)).CheckOK();
  data->catalog.AddTable(std::move(s_large)).CheckOK();
  return data;
}

namespace {
ExprPtr MicroPredicate(int64_t sel) {
  return And(Lt(Col("r_x"), Lit(sel)), Eq(Col("r_y"), Lit(1)));
}
}  // namespace

QueryPlan MicroQ1(bool division, int64_t sel) {
  QueryPlan plan;
  plan.name = StringFormat("micro_q1_%s_sel%lld", division ? "div" : "mul",
                           static_cast<long long>(sel));
  plan.fact_table = "r";
  plan.fact_filter = MicroPredicate(sel);
  ExprPtr agg = division ? Div(Col("r_a"), Col("r_b"))
                         : Mul(Col("r_a"), Col("r_b"));
  plan.aggs.emplace_back(AggKind::kSum, std::move(agg), "sum_ab");
  return plan;
}

QueryPlan MicroQ2(const std::string& c_column, int64_t c_cardinality,
                  int64_t sel) {
  QueryPlan plan;
  plan.name = StringFormat("micro_q2_%s_sel%lld", c_column.c_str(),
                           static_cast<long long>(sel));
  plan.fact_table = "r";
  plan.fact_filter = MicroPredicate(sel);
  plan.group_by = Col(c_column);
  plan.group_cardinality_hint = c_cardinality;
  plan.aggs.emplace_back(AggKind::kSum, Mul(Col("r_a"), Col("r_b")),
                         "sum_ab");
  return plan;
}

QueryPlan MicroQ3(bool reuse_both, int64_t sel) {
  QueryPlan plan;
  plan.name = StringFormat("micro_q3_%s_sel%lld",
                           reuse_both ? "both" : "one",
                           static_cast<long long>(sel));
  plan.fact_table = "r";
  plan.fact_filter = MicroPredicate(sel);
  ExprPtr agg = reuse_both ? Mul(Col("r_x"), Col("r_y"))
                           : Mul(Col("r_x"), Col("r_b"));
  plan.aggs.emplace_back(AggKind::kSum, std::move(agg), "sum_x_col");
  return plan;
}

QueryPlan MicroQ4(bool large_s, int64_t sel1, int64_t sel2) {
  const char* s_table = large_s ? "s_large" : "s_small";
  const char* fk = large_s ? "r_fk_large" : "r_fk_small";
  QueryPlan plan;
  plan.name =
      StringFormat("micro_q4_%s_sel%lld_%lld", s_table,
                   static_cast<long long>(sel1),
                   static_cast<long long>(sel2));
  plan.fact_table = "r";
  plan.fact_filter = Lt(Col("r_x"), Lit(sel1));
  DimJoin dim;
  dim.hop = {fk, s_table, "s_pk"};
  dim.filter = Lt(Col("s_x"), Lit(sel2));
  plan.dims.push_back(std::move(dim));
  plan.aggs.emplace_back(AggKind::kSum, Mul(Col("r_a"), Col("r_b")),
                         "sum_ab");
  return plan;
}

QueryPlan MicroQ5(bool large_s, int64_t sel, int64_t s_rows) {
  const char* s_table = large_s ? "s_large" : "s_small";
  const char* fk = large_s ? "r_fk_large" : "r_fk_small";
  QueryPlan plan;
  plan.name = StringFormat("micro_q5_%s_sel%lld", s_table,
                           static_cast<long long>(sel));
  plan.fact_table = "r";
  DimJoin dim;
  dim.hop = {fk, s_table, "s_pk"};
  dim.filter = Lt(Col("s_x"), Lit(sel));
  plan.dims.push_back(std::move(dim));
  plan.group_by = Col(fk);
  plan.group_cardinality_hint = s_rows;
  plan.aggs.emplace_back(AggKind::kSum, Mul(Col("r_a"), Col("r_b")),
                         "sum_ab");
  return plan;
}

QueryPlan MicroQ6(bool large_s, int64_t sel) {
  const char* s_table = large_s ? "s_large" : "s_small";
  const char* fk = large_s ? "r_fk_large" : "r_fk_small";
  QueryPlan plan;
  plan.name = StringFormat("micro_q6_%s_sel%lld", s_table,
                           static_cast<long long>(sel));
  plan.fact_table = "r";
  plan.fact_filter = Like("r_s", "%zebra%");
  DimJoin dim;
  dim.hop = {fk, s_table, "s_pk"};
  dim.filter = Lt(Col("s_x"), Lit(sel));
  plan.dims.push_back(std::move(dim));
  plan.aggs.emplace_back(AggKind::kSum, Mul(Col("r_a"), Col("r_b")),
                         "sum_ab");
  return plan;
}

}  // namespace swole
