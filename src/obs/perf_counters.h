#ifndef SWOLE_OBS_PERF_COUNTERS_H_
#define SWOLE_OBS_PERF_COUNTERS_H_

#include <cstdint>
#include <memory>
#include <string>

// Hardware access-pattern counters via perf_event_open(2): cycles,
// instructions, LLC misses, and branch misses for the calling thread and —
// through inherit=1 — every worker it spawns while the set is running.
// This is the micro-architectural evidence the paper's claim rests on:
// SWOLE trades extra instructions for fewer LLC misses, and
// bench/access_pattern_bench.cc uses this wrapper to show it per strategy.
//
// Unavailability is the common case (containers and CI set
// perf_event_paranoid high, seccomp may return ENOSYS, non-Linux builds
// have no syscall at all), so TryCreate returns nullptr with a reason
// instead of failing: callers run uncounted and report
// "counters unavailable". The fault site `perf_open`
// (SWOLE_FAULT=perf_open:1.0) forces that path deterministically in tests.
//
// Off by default; GovernanceScope opens a set per query when
// SWOLE_PERF_COUNTERS=1 and attaches the readings to the trace root as
// hw.* attributes.

namespace swole::obs {

struct HwCounts {
  bool valid = false;  // false when any counter failed to read
  int64_t cycles = 0;
  int64_t instructions = 0;
  int64_t llc_misses = 0;
  int64_t branch_misses = 0;

  /// "cycles=... instructions=... llc_misses=... branch_misses=..." or
  /// "unavailable".
  std::string ToString() const;
};

class PerfCounterSet {
 public:
  static constexpr int kEvents = 4;

  /// Opens the four counters disabled; nullptr when perf events are
  /// unavailable (EACCES, ENOSYS, ENOENT, non-Linux), with the reason in
  /// `*error` when non-null. Counters are opened with inherit=1 so worker
  /// threads spawned while running are included.
  static std::unique_ptr<PerfCounterSet> TryCreate(std::string* error = nullptr);

  ~PerfCounterSet();

  PerfCounterSet(const PerfCounterSet&) = delete;
  PerfCounterSet& operator=(const PerfCounterSet&) = delete;

  /// Reset + enable all counters.
  void Start();
  /// Disable all counters; Read() then returns the stopped totals.
  void Stop();
  HwCounts Read() const;

 private:
  PerfCounterSet() = default;
  int fds_[kEvents] = {-1, -1, -1, -1};
};

/// SWOLE_PERF_COUNTERS=1 (parsed once, warn-on-malformed).
bool PerfCountersRequested();

}  // namespace swole::obs

#endif  // SWOLE_OBS_PERF_COUNTERS_H_
