#include "obs/metrics.h"

#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>

#include "common/logging.h"

namespace swole::obs {

void Histogram::Record(int64_t sample) {
  if (sample < 0) sample = 0;
  int bucket = 0;
  while ((int64_t{1} << bucket) <= sample && bucket < kBuckets - 1) ++bucket;
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(sample, std::memory_order_relaxed);
  int64_t prev = max_.load(std::memory_order_relaxed);
  while (sample > prev &&
         !max_.compare_exchange_weak(prev, sample, std::memory_order_relaxed)) {
  }
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

// All three instrument kinds live in one name-keyed map so a name collision
// across kinds is detected instead of silently splitting the metric.
struct MetricsRegistry::Impl {
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  mutable std::mutex mu;
  std::map<std::string, Entry> entries;
};

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked so instrument handles outlive static destructors (the shutdown
  // dump below reads them from atexit).
  static MetricsRegistry* registry = [] {
    auto* r = new MetricsRegistry();
    std::atexit([] {
      std::string line = Global().DumpCompactNonZero();
      if (!line.empty()) {
        SWOLE_LOG(INFO) << "metrics at shutdown: " << line;
      }
    });
    return r;
  }();
  return *registry;
}

MetricsRegistry::Impl& MetricsRegistry::impl() const {
  static Impl* impl = new Impl();
  return *impl;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto& entry = im.entries[name];
  if (entry.counter == nullptr) {
    SWOLE_CHECK(entry.gauge == nullptr && entry.histogram == nullptr)
        << "metric name reused across kinds: " << name;
    entry.kind = Impl::Kind::kCounter;
    entry.counter = std::make_unique<Counter>();
  }
  return *entry.counter;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto& entry = im.entries[name];
  if (entry.gauge == nullptr) {
    SWOLE_CHECK(entry.counter == nullptr && entry.histogram == nullptr)
        << "metric name reused across kinds: " << name;
    entry.kind = Impl::Kind::kGauge;
    entry.gauge = std::make_unique<Gauge>();
  }
  return *entry.gauge;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto& entry = im.entries[name];
  if (entry.histogram == nullptr) {
    SWOLE_CHECK(entry.counter == nullptr && entry.gauge == nullptr)
        << "metric name reused across kinds: " << name;
    entry.kind = Impl::Kind::kHistogram;
    entry.histogram = std::make_unique<Histogram>();
  }
  return *entry.histogram;
}

namespace {
// Upper edge of the smallest bucket prefix holding half the samples — a
// power-of-two approximation of the median, good enough for a text dump.
int64_t ApproxP50(const Histogram& h) {
  int64_t total = h.count();
  if (total == 0) return 0;
  int64_t seen = 0;
  for (int i = 0; i < Histogram::kBuckets; ++i) {
    seen += h.bucket(i);
    if (seen * 2 >= total) return i == 0 ? 0 : (int64_t{1} << i) - 1;
  }
  return h.max();
}
}  // namespace

std::string MetricsRegistry::DumpText() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  std::ostringstream out;
  for (const auto& [name, entry] : im.entries) {
    switch (entry.kind) {
      case Impl::Kind::kCounter:
        out << "counter " << name << " " << entry.counter->value() << "\n";
        break;
      case Impl::Kind::kGauge:
        out << "gauge " << name << " " << entry.gauge->value() << "\n";
        break;
      case Impl::Kind::kHistogram:
        out << "histogram " << name << " count=" << entry.histogram->count()
            << " sum=" << entry.histogram->sum()
            << " max=" << entry.histogram->max()
            << " p50~" << ApproxP50(*entry.histogram) << "\n";
        break;
    }
  }
  return out.str();
}

std::string MetricsRegistry::DumpCompactNonZero() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  std::ostringstream out;
  bool first = true;
  for (const auto& [name, entry] : im.entries) {
    int64_t value = 0;
    switch (entry.kind) {
      case Impl::Kind::kCounter:
        value = entry.counter->value();
        break;
      case Impl::Kind::kGauge:
        value = entry.gauge->value();
        break;
      case Impl::Kind::kHistogram:
        value = entry.histogram->count();
        break;
    }
    if (value == 0) continue;
    if (!first) out << " ";
    first = false;
    out << name << "=" << value;
  }
  return out.str();
}

void MetricsRegistry::ResetAll() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  for (auto& [name, entry] : im.entries) {
    switch (entry.kind) {
      case Impl::Kind::kCounter:
        entry.counter->Reset();
        break;
      case Impl::Kind::kGauge:
        entry.gauge->Reset();
        break;
      case Impl::Kind::kHistogram:
        entry.histogram->Reset();
        break;
    }
  }
}

}  // namespace swole::obs
