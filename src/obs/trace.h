#ifndef SWOLE_OBS_TRACE_H_
#define SWOLE_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

// Per-query hierarchical trace: one QueryTrace per execution records a tree
// of timed spans — the strategy chosen with its cost-model inputs, the
// per-operator phases (dim-build / probe / agg-merge), morsel-batch rollups
// from the scheduler (morsels, steals, workers), JIT stage timings and
// cache hit/miss, and governance events (per-site memory peaks, degradation
// retries, deadline fires).
//
// Attachment is a plain pointer on QueryContext (exec/query_context.h); the
// engines open spans through the null-safe SpanScope RAII below, so a query
// without a trace pays one pointer test per *phase* — no allocation, no
// lock, nothing per tuple or per morsel. Tracing is off by default; enable
// it per query (StrategyOptions::trace) or process-wide (SWOLE_TRACE=1,
// resolved by GovernanceScope, rendered at DEBUG log level on scope exit).
//
// Spans are opened and closed only by the query's driving thread — worker
// aggregates (steals, workers used) arrive as attributes after the
// scheduler joins — so the span tree SHAPE is deterministic across thread
// counts; attribute values may legitimately vary. The internal mutex makes
// concurrent Render/attr calls safe, but it is not a license to open spans
// from workers.

namespace swole::obs {

class QueryTrace {
 public:
  struct Span {
    std::string name;
    int64_t start_ns = 0;     // relative to the trace epoch
    int64_t duration_ns = -1;  // -1 while open
    std::vector<std::pair<std::string, std::string>> attrs;
    std::vector<std::unique_ptr<Span>> children;
    Span* parent = nullptr;
  };

  /// Opens the root span "query" at construction.
  QueryTrace();

  QueryTrace(const QueryTrace&) = delete;
  QueryTrace& operator=(const QueryTrace&) = delete;

  /// Opens a child of the current span and makes it current.
  Span* Begin(const char* name);

  /// Closes `span`, stamping its duration; the parent becomes current.
  void End(Span* span);

  void AddAttr(Span* span, const char* key, std::string value);
  void AddAttr(Span* span, const char* key, int64_t value);

  Span* root() { return root_.get(); }
  Span* current() { return current_; }

  /// EXPLAIN ANALYZE-style indented text, durations in ms:
  ///   query  [actual=12.41ms]
  ///     swole  [actual=12.38ms]  strategy=swole threads=8
  ///       build.dim  [actual=1.02ms]  rows=65536
  std::string ToText() const;

  /// Machine-readable rendering:
  ///   {"name":"query","start_ns":0,"duration_ns":...,
  ///    "attrs":{...},"children":[...]}
  std::string ToJson() const;

  /// Names + nesting only ("query(swole(build,probe,merge))") — the
  /// determinism tests compare this across thread counts, where timings
  /// and attr values legitimately differ.
  std::string ShapeString() const;

 private:
  void Render(const Span& span, int depth, std::ostringstream& out) const;
  void RenderJson(const Span& span, std::ostringstream& out) const;
  void RenderShape(const Span& span, std::ostringstream& out) const;
  int64_t NowNs() const;

  mutable std::mutex mu_;
  std::chrono::steady_clock::time_point epoch_;
  std::unique_ptr<Span> root_;
  Span* current_ = nullptr;
};

/// Null-safe RAII around Begin/End: a nullptr trace makes construction,
/// Attr, and destruction single pointer tests — the disabled hot path does
/// zero work and zero allocation.
class SpanScope {
 public:
  SpanScope(QueryTrace* trace, const char* name)
      : trace_(trace), span_(trace != nullptr ? trace->Begin(name) : nullptr) {}
  ~SpanScope() {
    if (trace_ != nullptr) trace_->End(span_);
  }

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  void Attr(const char* key, int64_t value) {
    if (trace_ != nullptr) trace_->AddAttr(span_, key, value);
  }
  void Attr(const char* key, std::string value) {
    if (trace_ != nullptr) trace_->AddAttr(span_, key, std::move(value));
  }

  QueryTrace::Span* span() { return span_; }
  QueryTrace* trace() { return trace_; }

 private:
  QueryTrace* trace_;
  QueryTrace::Span* span_;
};

}  // namespace swole::obs

#endif  // SWOLE_OBS_TRACE_H_
