#include "obs/trace.h"

#include <cstdio>
#include <sstream>

namespace swole::obs {

QueryTrace::QueryTrace() : epoch_(std::chrono::steady_clock::now()) {
  root_ = std::make_unique<Span>();
  root_->name = "query";
  root_->start_ns = 0;
  current_ = root_.get();
}

int64_t QueryTrace::NowNs() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

QueryTrace::Span* QueryTrace::Begin(const char* name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto span = std::make_unique<Span>();
  span->name = name;
  span->start_ns = NowNs();
  span->parent = current_;
  Span* raw = span.get();
  current_->children.push_back(std::move(span));
  current_ = raw;
  return raw;
}

void QueryTrace::End(Span* span) {
  std::lock_guard<std::mutex> lock(mu_);
  if (span == nullptr || span->duration_ns >= 0) return;
  span->duration_ns = NowNs() - span->start_ns;
  // Unwind to the span's parent even if inner spans were left open (an
  // exception unwound past their scopes): close them with the same stamp.
  for (Span* s = current_; s != nullptr && s != span; s = s->parent) {
    if (s->duration_ns < 0) s->duration_ns = NowNs() - s->start_ns;
  }
  current_ = span->parent != nullptr ? span->parent : root_.get();
}

void QueryTrace::AddAttr(Span* span, const char* key, std::string value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (span == nullptr) span = root_.get();
  span->attrs.emplace_back(key, std::move(value));
}

void QueryTrace::AddAttr(Span* span, const char* key, int64_t value) {
  AddAttr(span, key, std::to_string(value));
}

namespace {
double Ms(int64_t ns) { return static_cast<double>(ns) / 1e6; }

void AppendJsonString(const std::string& s, std::ostringstream& out) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}
}  // namespace

void QueryTrace::Render(const Span& span, int depth,
                        std::ostringstream& out) const {
  for (int i = 0; i < depth; ++i) out << "  ";
  out << span.name << "  [actual=";
  int64_t dur = span.duration_ns >= 0 ? span.duration_ns
                                      : NowNs() - span.start_ns;
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3fms", Ms(dur));
  out << buf << "]";
  for (const auto& [key, value] : span.attrs) {
    out << "  " << key << "=" << value;
  }
  out << "\n";
  for (const auto& child : span.children) Render(*child, depth + 1, out);
}

std::string QueryTrace::ToText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  Render(*root_, 0, out);
  return out.str();
}

void QueryTrace::RenderJson(const Span& span, std::ostringstream& out) const {
  out << "{\"name\":";
  AppendJsonString(span.name, out);
  int64_t dur = span.duration_ns >= 0 ? span.duration_ns
                                      : NowNs() - span.start_ns;
  out << ",\"start_ns\":" << span.start_ns << ",\"duration_ns\":" << dur;
  if (!span.attrs.empty()) {
    out << ",\"attrs\":{";
    for (size_t i = 0; i < span.attrs.size(); ++i) {
      if (i != 0) out << ",";
      AppendJsonString(span.attrs[i].first, out);
      out << ":";
      AppendJsonString(span.attrs[i].second, out);
    }
    out << "}";
  }
  if (!span.children.empty()) {
    out << ",\"children\":[";
    for (size_t i = 0; i < span.children.size(); ++i) {
      if (i != 0) out << ",";
      RenderJson(*span.children[i], out);
    }
    out << "]";
  }
  out << "}";
}

std::string QueryTrace::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  RenderJson(*root_, out);
  return out.str();
}

void QueryTrace::RenderShape(const Span& span, std::ostringstream& out) const {
  out << span.name;
  if (!span.children.empty()) {
    out << "(";
    for (size_t i = 0; i < span.children.size(); ++i) {
      if (i != 0) out << ",";
      RenderShape(*span.children[i], out);
    }
    out << ")";
  }
}

std::string QueryTrace::ShapeString() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  RenderShape(*root_, out);
  return out.str();
}

}  // namespace swole::obs
