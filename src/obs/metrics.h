#ifndef SWOLE_OBS_METRICS_H_
#define SWOLE_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <string>

// Process-wide metrics registry: named lock-free counters, gauges, and
// histograms shared by every engine, the scheduler, the JIT, and
// governance.
//
//   static obs::Counter& steals =
//       obs::MetricsRegistry::Global().GetCounter("scheduler.steals");
//   steals.Add(n);
//
// Handles returned by Get*() are valid for the life of the process, so the
// idiomatic use is a function-local static reference: one mutex-guarded map
// lookup ever, then plain relaxed atomics on the hot path. Instruments are
// never unregistered.
//
// The registry absorbs the ad-hoc GlobalJitStats() counters from PR 1
// (codegen/jit.h keeps its JitStats::Snapshot API, now backed by `jit.*`
// registry counters) and replaces the bespoke JIT shutdown logger with one
// registry-wide dump: at process exit every non-zero counter is logged in a
// single "metrics at shutdown:" INFO line.
//
// Naming: dotted lowercase paths, `<subsystem>.<event>` —
//   queries.<strategy>            engine executions per strategy kind
//   query.latency_us.<strategy>   per-strategy latency histogram
//   scheduler.{runs,morsels,steals}
//   governance.{budget_breaches,deadline_fires,cancellations,degradations}
//   jit.{compiles,compile_failures,retries,timeouts,cache_hits_memory,
//        cache_hits_disk,fallbacks,compile_ms}
//   perf.{sets_opened,open_failures}

namespace swole::obs {

/// Monotonic event count. Add/value/Reset are single relaxed atomics.
class Counter {
 public:
  void Add(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-write-wins instantaneous value (e.g. pool size, cache entries).
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Power-of-two-bucketed distribution of non-negative samples. Bucket i
/// counts samples in [2^(i-1), 2^i) (bucket 0 counts zeros); the dump
/// reports count/sum/max plus the populated buckets. Record is two relaxed
/// atomics plus a CAS-free max update — safe from any thread.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void Record(int64_t sample);
  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  int64_t max() const { return max_.load(std::memory_order_relaxed); }
  int64_t bucket(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  void Reset();

 private:
  std::atomic<int64_t> buckets_[kBuckets] = {};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> max_{0};
};

class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  /// Returns the instrument registered under `name`, creating it on first
  /// use. The reference stays valid forever; take it once (function-local
  /// static) and increment lock-free after that. A name identifies exactly
  /// one instrument kind — reusing it across kinds is a programming error
  /// (CHECK-fails).
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  /// One instrument per line, sorted by name, zero-valued entries included:
  ///   counter scheduler.steals 42
  ///   histogram query.latency_us.swole count=12 sum=48211 max=9001 p50~4096
  std::string DumpText() const;

  /// Single-line "name=value" rendering of the non-zero counters and
  /// gauges, for the shutdown log. Empty when nothing fired.
  std::string DumpCompactNonZero() const;

  /// Resets every registered instrument to zero (tests/benchmarks).
  void ResetAll();

 private:
  MetricsRegistry() = default;
  struct Impl;
  Impl& impl() const;
};

}  // namespace swole::obs

#endif  // SWOLE_OBS_METRICS_H_
