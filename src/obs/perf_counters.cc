#include "obs/perf_counters.h"

#include <cerrno>
#include <cstring>
#include <sstream>

#include "common/env.h"
#include "common/fault_injection.h"
#include "obs/metrics.h"

#if defined(__linux__) && __has_include(<linux/perf_event.h>)
#define SWOLE_HAVE_PERF_EVENTS 1
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#else
#define SWOLE_HAVE_PERF_EVENTS 0
#endif

namespace swole::obs {

std::string HwCounts::ToString() const {
  if (!valid) return "unavailable";
  std::ostringstream out;
  out << "cycles=" << cycles << " instructions=" << instructions
      << " llc_misses=" << llc_misses << " branch_misses=" << branch_misses;
  return out.str();
}

#if SWOLE_HAVE_PERF_EVENTS

namespace {
// Event order matches HwCounts field order; all four are the generic
// PERF_TYPE_HARDWARE events (PERF_COUNT_HW_CACHE_MISSES is the kernel's
// last-level-cache miss alias).
constexpr uint64_t kEventConfigs[PerfCounterSet::kEvents] = {
    PERF_COUNT_HW_CPU_CYCLES, PERF_COUNT_HW_INSTRUCTIONS,
    PERF_COUNT_HW_CACHE_MISSES, PERF_COUNT_HW_BRANCH_MISSES};

int PerfEventOpen(uint64_t config) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof attr);
  attr.type = PERF_TYPE_HARDWARE;
  attr.size = sizeof attr;
  attr.config = config;
  attr.disabled = 1;
  // Count worker threads spawned while the set runs (the morsel pool).
  attr.inherit = 1;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  return static_cast<int>(syscall(SYS_perf_event_open, &attr, /*pid=*/0,
                                  /*cpu=*/-1, /*group_fd=*/-1, /*flags=*/0));
}
}  // namespace

std::unique_ptr<PerfCounterSet> PerfCounterSet::TryCreate(std::string* error) {
  static Counter& opened =
      MetricsRegistry::Global().GetCounter("perf.sets_opened");
  static Counter& failures =
      MetricsRegistry::Global().GetCounter("perf.open_failures");
  if (FaultInjector::Global().ShouldFail("perf_open")) {
    failures.Add(1);
    if (error != nullptr) *error = "perf_event_open: injected EACCES";
    return nullptr;
  }
  std::unique_ptr<PerfCounterSet> set(new PerfCounterSet());
  for (int i = 0; i < kEvents; ++i) {
    set->fds_[i] = PerfEventOpen(kEventConfigs[i]);
    if (set->fds_[i] < 0) {
      failures.Add(1);
      if (error != nullptr) {
        *error = std::string("perf_event_open: ") + std::strerror(errno);
      }
      return nullptr;  // dtor closes the fds opened so far
    }
  }
  opened.Add(1);
  if (error != nullptr) error->clear();
  return set;
}

PerfCounterSet::~PerfCounterSet() {
  for (int fd : fds_) {
    if (fd >= 0) close(fd);
  }
}

void PerfCounterSet::Start() {
  for (int fd : fds_) {
    if (fd < 0) continue;
    ioctl(fd, PERF_EVENT_IOC_RESET, 0);
    ioctl(fd, PERF_EVENT_IOC_ENABLE, 0);
  }
}

void PerfCounterSet::Stop() {
  for (int fd : fds_) {
    if (fd >= 0) ioctl(fd, PERF_EVENT_IOC_DISABLE, 0);
  }
}

HwCounts PerfCounterSet::Read() const {
  HwCounts counts;
  int64_t values[kEvents] = {};
  for (int i = 0; i < kEvents; ++i) {
    if (fds_[i] < 0 ||
        read(fds_[i], &values[i], sizeof values[i]) !=
            static_cast<ssize_t>(sizeof values[i])) {
      return counts;  // valid stays false
    }
  }
  counts.valid = true;
  counts.cycles = values[0];
  counts.instructions = values[1];
  counts.llc_misses = values[2];
  counts.branch_misses = values[3];
  return counts;
}

#else  // !SWOLE_HAVE_PERF_EVENTS

std::unique_ptr<PerfCounterSet> PerfCounterSet::TryCreate(std::string* error) {
  static Counter& failures =
      MetricsRegistry::Global().GetCounter("perf.open_failures");
  failures.Add(1);
  if (error != nullptr) {
    *error = FaultInjector::Global().ShouldFail("perf_open")
                 ? "perf_event_open: injected EACCES"
                 : "perf events unsupported on this platform";
  } else {
    FaultInjector::Global().ShouldFail("perf_open");
  }
  return nullptr;
}

PerfCounterSet::~PerfCounterSet() = default;
void PerfCounterSet::Start() {}
void PerfCounterSet::Stop() {}
HwCounts PerfCounterSet::Read() const { return HwCounts{}; }

#endif  // SWOLE_HAVE_PERF_EVENTS

bool PerfCountersRequested() {
  static const bool requested = GetEnvInt64("SWOLE_PERF_COUNTERS", 0) != 0;
  return requested;
}

}  // namespace swole::obs
