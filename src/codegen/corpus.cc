#include "codegen/corpus.h"

#include <algorithm>
#include <atomic>
#include <fstream>
#include <mutex>
#include <set>
#include <sstream>

#include "common/env.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "exec/scheduler.h"
#include "micro/micro.h"
#include "obs/metrics.h"
#include "storage/table.h"
#include "tpch/queries.h"

namespace swole::codegen {

namespace {

// ---- Warm-hit accounting ----

struct CorpusKeySet {
  std::atomic<bool> active{false};
  std::mutex mu;
  std::set<std::string> keys;
};

CorpusKeySet& GlobalCorpusKeys() {
  static CorpusKeySet* set = new CorpusKeySet();
  return *set;
}

// ---- Named query registry ----

struct NamedQuery {
  const char* name;
  std::vector<const char*> required_tables;
  QueryPlan (*build)(const Catalog&);
};

QueryPlan BuildMicroQ1(const Catalog&) { return MicroQ1(false, 50); }
QueryPlan BuildMicroQ3(const Catalog&) { return MicroQ3(true, 50); }
QueryPlan BuildMicroQ4Small(const Catalog&) { return MicroQ4(false, 50, 50); }
QueryPlan BuildMicroQ4Large(const Catalog&) { return MicroQ4(true, 50, 50); }
QueryPlan BuildMicroQ5(const Catalog& catalog) {
  const Table* s = catalog.GetTable("s_small").ValueOr(nullptr);
  return MicroQ5(false, 50, s != nullptr ? s->num_rows() : 1000);
}

const std::vector<NamedQuery>& Registry() {
  static const std::vector<NamedQuery>* registry = new std::vector<
      NamedQuery>{
      {"tpch.q1", {"lineitem"}, tpch::Q1},
      {"tpch.q3", {"lineitem", "orders", "customer"}, tpch::Q3},
      {"tpch.q4", {"orders", "lineitem"}, tpch::Q4},
      {"tpch.q5",
       {"lineitem", "orders", "customer", "supplier", "nation", "region"},
       tpch::Q5},
      {"tpch.q6", {"lineitem"}, tpch::Q6},
      {"tpch.q13", {"customer", "orders"}, tpch::Q13},
      {"tpch.q14", {"lineitem", "part"}, tpch::Q14},
      {"tpch.q19", {"lineitem", "part"}, tpch::Q19},
      {"micro.q1", {"r"}, BuildMicroQ1},
      {"micro.q3", {"r"}, BuildMicroQ3},
      {"micro.q4_small", {"r", "s_small"}, BuildMicroQ4Small},
      {"micro.q4_large", {"r", "s_large"}, BuildMicroQ4Large},
      {"micro.q5", {"r", "s_small"}, BuildMicroQ5},
  };
  return *registry;
}

bool TablesPresent(const NamedQuery& query, const Catalog& catalog) {
  for (const char* table : query.required_tables) {
    if (!catalog.GetTable(table).ok()) return false;
  }
  return true;
}

const NamedQuery* FindQuery(const std::string& name) {
  for (const NamedQuery& query : Registry()) {
    if (name == query.name) return &query;
  }
  return nullptr;
}

Result<StrategyKind> ParseStrategy(const std::string& name) {
  for (int k = 0; k < 4; ++k) {
    StrategyKind kind = static_cast<StrategyKind>(k);
    if (name == StrategyKindName(kind)) return kind;
  }
  return Status::InvalidArgument(StringFormat(
      "corpus: unknown strategy \"%s\" (expected data-centric|hybrid|rof|"
      "swole)",
      name.c_str()));
}

// ---- Descriptor parsing (JSON subset) ----
//
// A hand-rolled cursor parser for exactly the shape the header documents:
// one object whose "entries" key holds an array of objects with string
// values. Nothing else in the container image parses JSON, and pulling a
// dependency in for fifteen lines of grammar is not worth it.

struct Cursor {
  const std::string& text;
  size_t pos = 0;

  void SkipWs() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }
  bool AtEnd() {
    SkipWs();
    return pos >= text.size();
  }
  bool Peek(char c) {
    SkipWs();
    return pos < text.size() && text[pos] == c;
  }
  Status Expect(char c) {
    SkipWs();
    if (pos >= text.size() || text[pos] != c) {
      return Status::InvalidArgument(StringFormat(
          "corpus descriptor: expected '%c' at offset %zu", c, pos));
    }
    ++pos;
    return Status::OK();
  }
  Result<std::string> ParseString() {
    SWOLE_RETURN_NOT_OK(Expect('"'));
    std::string out;
    while (pos < text.size() && text[pos] != '"') {
      if (text[pos] == '\\' && pos + 1 < text.size()) ++pos;
      out.push_back(text[pos++]);
    }
    SWOLE_RETURN_NOT_OK(Expect('"'));
    return out;
  }
};

struct DescriptorEntry {
  std::string query;
  std::string strategy;
};

Result<std::vector<DescriptorEntry>> ParseDescriptor(
    const std::string& text) {
  Cursor cur{text};
  SWOLE_RETURN_NOT_OK(cur.Expect('{'));
  std::vector<DescriptorEntry> entries;
  bool saw_entries = false;
  while (!cur.Peek('}')) {
    SWOLE_ASSIGN_OR_RETURN(std::string key, cur.ParseString());
    SWOLE_RETURN_NOT_OK(cur.Expect(':'));
    if (key != "entries") {
      return Status::InvalidArgument(StringFormat(
          "corpus descriptor: unknown top-level key \"%s\"", key.c_str()));
    }
    saw_entries = true;
    SWOLE_RETURN_NOT_OK(cur.Expect('['));
    while (!cur.Peek(']')) {
      SWOLE_RETURN_NOT_OK(cur.Expect('{'));
      DescriptorEntry entry;
      while (!cur.Peek('}')) {
        SWOLE_ASSIGN_OR_RETURN(std::string field, cur.ParseString());
        SWOLE_RETURN_NOT_OK(cur.Expect(':'));
        SWOLE_ASSIGN_OR_RETURN(std::string value, cur.ParseString());
        if (field == "query") {
          entry.query = std::move(value);
        } else if (field == "strategy") {
          entry.strategy = std::move(value);
        } else {
          return Status::InvalidArgument(StringFormat(
              "corpus descriptor: unknown entry field \"%s\"",
              field.c_str()));
        }
        if (cur.Peek(',')) cur.Expect(',').CheckOK();
      }
      SWOLE_RETURN_NOT_OK(cur.Expect('}'));
      if (entry.query.empty()) {
        return Status::InvalidArgument(
            "corpus descriptor: entry without a \"query\" field");
      }
      entries.push_back(std::move(entry));
      if (cur.Peek(',')) cur.Expect(',').CheckOK();
    }
    SWOLE_RETURN_NOT_OK(cur.Expect(']'));
    if (cur.Peek(',')) cur.Expect(',').CheckOK();
  }
  SWOLE_RETURN_NOT_OK(cur.Expect('}'));
  if (!cur.AtEnd()) {
    return Status::InvalidArgument(
        "corpus descriptor: trailing content after the top-level object");
  }
  if (!saw_entries) {
    return Status::InvalidArgument(
        "corpus descriptor: missing \"entries\" array");
  }
  return entries;
}

CorpusEntry MakeEntry(const NamedQuery& query, StrategyKind strategy,
                      const Catalog& catalog) {
  CorpusEntry entry;
  entry.name = StringFormat("%s/%s", query.name, StrategyKindName(strategy));
  entry.plan = query.build(catalog);
  entry.gen.strategy = strategy;
  return entry;
}

}  // namespace

void RegisterCorpusKey(const std::string& cache_key) {
  CorpusKeySet& set = GlobalCorpusKeys();
  {
    std::lock_guard<std::mutex> lock(set.mu);
    set.keys.insert(cache_key);
  }
  set.active.store(true, std::memory_order_release);
}

void NoteCorpusLookup(const std::string& cache_key, bool hit) {
  CorpusKeySet& set = GlobalCorpusKeys();
  if (!set.active.load(std::memory_order_acquire)) return;
  {
    std::lock_guard<std::mutex> lock(set.mu);
    if (set.keys.find(cache_key) == set.keys.end()) return;
  }
  static obs::Counter& warm =
      obs::MetricsRegistry::Global().GetCounter("jit.corpus.warm_hits");
  static obs::Counter& cold =
      obs::MetricsRegistry::Global().GetCounter("jit.corpus.cold_misses");
  (hit ? warm : cold).Add(1);
}

void ResetCorpusKeysForTest() {
  CorpusKeySet& set = GlobalCorpusKeys();
  std::lock_guard<std::mutex> lock(set.mu);
  set.keys.clear();
  set.active.store(false, std::memory_order_release);
}

std::string CorpusReport::ToString() const {
  return StringFormat(
      "corpus{entries=%lld compiled=%lld cache_hits=%lld unsupported=%lld "
      "failures=%lld elapsed_ms=%lld}",
      static_cast<long long>(entries), static_cast<long long>(compiled),
      static_cast<long long>(cache_hits),
      static_cast<long long>(unsupported),
      static_cast<long long>(failures), static_cast<long long>(elapsed_ms));
}

std::vector<std::string> CorpusQueryNames() {
  std::vector<std::string> names;
  for (const NamedQuery& query : Registry()) names.push_back(query.name);
  return names;
}

std::vector<CorpusEntry> AutoCorpus(const Catalog& catalog) {
  std::vector<CorpusEntry> entries;
  for (const NamedQuery& query : Registry()) {
    if (!TablesPresent(query, catalog)) continue;
    entries.push_back(MakeEntry(query, StrategyKind::kSwole, catalog));
  }
  return entries;
}

Result<std::vector<CorpusEntry>> LoadCorpusFile(const std::string& path,
                                                const Catalog& catalog) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError(StringFormat(
        "cannot read corpus descriptor \"%s\"", path.c_str()));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  SWOLE_ASSIGN_OR_RETURN(std::vector<DescriptorEntry> parsed,
                         ParseDescriptor(buffer.str()));

  std::vector<CorpusEntry> entries;
  for (const DescriptorEntry& d : parsed) {
    const NamedQuery* query = FindQuery(d.query);
    if (query == nullptr) {
      return Status::InvalidArgument(StringFormat(
          "corpus descriptor: unknown query \"%s\"", d.query.c_str()));
    }
    StrategyKind strategy = StrategyKind::kSwole;
    if (!d.strategy.empty()) {
      SWOLE_ASSIGN_OR_RETURN(strategy, ParseStrategy(d.strategy));
    }
    if (!TablesPresent(*query, catalog)) {
      SWOLE_LOG(WARNING) << "corpus: skipping \"" << d.query
                         << "\" — its tables are not in this catalog";
      continue;
    }
    entries.push_back(MakeEntry(*query, strategy, catalog));
  }
  return entries;
}

CorpusReport PrecompileCorpus(const std::vector<CorpusEntry>& entries,
                              const Catalog& catalog,
                              const JitOptions& jit_options) {
  static obs::Counter& m_entries =
      obs::MetricsRegistry::Global().GetCounter("jit.corpus.entries");
  static obs::Counter& m_compiled =
      obs::MetricsRegistry::Global().GetCounter("jit.corpus.precompiled");
  static obs::Counter& m_cache_hits =
      obs::MetricsRegistry::Global().GetCounter("jit.corpus.cache_hits");
  static obs::Counter& m_unsupported =
      obs::MetricsRegistry::Global().GetCounter("jit.corpus.unsupported");
  static obs::Counter& m_failures =
      obs::MetricsRegistry::Global().GetCounter("jit.corpus.failures");
  static obs::Counter& m_elapsed =
      obs::MetricsRegistry::Global().GetCounter("jit.corpus.precompile_ms");

  CorpusReport report;
  report.entries = static_cast<int64_t>(entries.size());
  m_entries.Add(report.entries);
  if (entries.empty()) return report;

  Timer timer;
  std::atomic<int64_t> compiled{0};
  std::atomic<int64_t> cache_hits{0};
  std::atomic<int64_t> unsupported{0};
  std::atomic<int64_t> failures{0};

  // One corpus entry per morsel: compiles are subprocess-bound, so the
  // shared pool overlaps them up to its thread cap.
  const int num_threads = std::min<int>(static_cast<int>(entries.size()),
                                        exec::GlobalPoolThreadCap());
  exec::ParallelMorsels(
      num_threads, static_cast<int64_t>(entries.size()), /*morsel_size=*/1,
      [&](int /*worker*/, int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) {
          const CorpusEntry& entry = entries[i];
          Result<GeneratedKernel> kernel =
              GenerateKernel(entry.plan, catalog, entry.gen);
          if (!kernel.ok()) {
            if (kernel.status().code() == StatusCode::kUnimplemented) {
              unsupported.fetch_add(1, std::memory_order_relaxed);
            } else {
              failures.fetch_add(1, std::memory_order_relaxed);
              SWOLE_LOG(WARNING)
                  << "corpus: generation failed for " << entry.name << ": "
                  << kernel.status().ToString();
            }
            continue;
          }
          std::string cache_key =
              ResolvedKernelCacheKey(kernel->source, jit_options);
          Result<std::unique_ptr<CompiledKernel>> built = CompileKernel(
              std::move(*kernel), entry.plan, jit_options);
          if (!built.ok()) {
            failures.fetch_add(1, std::memory_order_relaxed);
            SWOLE_LOG(WARNING) << "corpus: compile failed for " << entry.name
                               << ": " << built.status().ToString();
            continue;
          }
          // Register only after the compile succeeded, so warm-hit
          // accounting never counts a key the cache can't actually serve.
          RegisterCorpusKey(cache_key);
          if ((*built)->from_cache()) {
            cache_hits.fetch_add(1, std::memory_order_relaxed);
          } else {
            compiled.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });

  report.compiled = compiled.load();
  report.cache_hits = cache_hits.load();
  report.unsupported = unsupported.load();
  report.failures = failures.load();
  report.elapsed_ms = timer.ElapsedNanos() / 1'000'000;
  m_compiled.Add(report.compiled);
  m_cache_hits.Add(report.cache_hits);
  m_unsupported.Add(report.unsupported);
  m_failures.Add(report.failures);
  m_elapsed.Add(report.elapsed_ms);
  SWOLE_LOG(INFO) << "kernel corpus precompiled: " << report.ToString();
  return report;
}

CorpusReport WarmCorpusFromEnv(const Catalog& catalog,
                               const JitOptions& jit_options) {
  std::string value = GetEnvString("SWOLE_WARM_CORPUS", "");
  if (value.empty()) return CorpusReport();
  std::vector<CorpusEntry> entries;
  if (value == "auto") {
    entries = AutoCorpus(catalog);
  } else {
    Result<std::vector<CorpusEntry>> loaded =
        LoadCorpusFile(value, catalog);
    if (!loaded.ok()) {
      // Startup must not die over a bad descriptor; serve cold instead.
      SWOLE_LOG(WARNING) << "SWOLE_WARM_CORPUS=\"" << value
                         << "\" unusable, serving cold: "
                         << loaded.status().ToString();
      return CorpusReport();
    }
    entries = std::move(*loaded);
  }
  return PrecompileCorpus(entries, catalog, jit_options);
}

}  // namespace swole::codegen
