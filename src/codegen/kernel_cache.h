#ifndef SWOLE_CODEGEN_KERNEL_CACHE_H_
#define SWOLE_CODEGEN_KERNEL_CACHE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/status.h"

// Content-addressed cache of compiled query kernels. The key is a hash of
// (generated source, compiler, flag configuration), so two plans that lower
// to the same translation unit under the same toolchain share one shared
// object — repeated queries skip the ~1s compile entirely. Two layers:
//
//   memory:  key -> dlopened KernelLibrary (shared_ptr; never dlclosed
//            while a CompiledKernel still runs it)
//   disk:    <dir>/swole_kernel_<key>.so, reused across processes; written
//            atomically (temp file + rename) so concurrent benches can't
//            observe a half-copied object
//
// The disk layer is opt-in via JitOptions::disk_cache_dir or
// SWOLE_KERNEL_CACHE_DIR (see codegen/jit.h).

namespace swole::codegen {

/// A dlopened kernel shared object with its resolved entry points (the
/// six-symbol morsel ABI of codegen/generator.h). Shared between the
/// cache and every CompiledKernel bound to it; the handle is dlclosed when
/// the last reference drops.
class KernelLibrary {
 public:
  ~KernelLibrary();

  KernelLibrary(const KernelLibrary&) = delete;
  KernelLibrary& operator=(const KernelLibrary&) = delete;

  /// dlopens `library_path` and resolves all six generated entry points
  /// (the five morsel-ABI symbols plus swole_kernel_cancel_check). A
  /// shared object missing any of them (e.g. a disk-cached kernel built
  /// by an older ABI) fails here, which callers treat as "recompile", not
  /// as a fatal error. Honors the jit_dlopen / jit_dlsym fault sites.
  static Result<std::shared_ptr<KernelLibrary>> Load(
      const std::string& library_path);

  void* build_entry() const { return build_; }
  void* thread_state_entry() const { return thread_state_; }
  void* morsel_entry() const { return morsel_; }
  void* merge_entry() const { return merge_; }
  void* finish_entry() const { return finish_; }
  void* cancel_check_entry() const { return cancel_check_; }
  const std::string& library_path() const { return library_path_; }

 private:
  KernelLibrary() = default;

  void* handle_ = nullptr;
  void* build_ = nullptr;
  void* thread_state_ = nullptr;
  void* morsel_ = nullptr;
  void* merge_ = nullptr;
  void* finish_ = nullptr;
  void* cancel_check_ = nullptr;
  std::string library_path_;
};

/// Content hash of (source, compiler, flags), as 16 hex chars.
std::string KernelCacheKey(const std::string& source,
                           const std::string& compiler,
                           const std::string& flags);

class KernelCache {
 public:
  /// Process-wide cache used by CompileKernel.
  static KernelCache& Global();

  /// Memory layer. Lookup returns nullptr on miss.
  std::shared_ptr<KernelLibrary> Lookup(const std::string& key);
  void Insert(const std::string& key, std::shared_ptr<KernelLibrary> library);

  /// Disk layer: loads <dir>/swole_kernel_<key>.so if present. The object
  /// is verified against its .sum checksum sidecar before dlopen; a
  /// mismatch (or missing sidecar) quarantines the entry — renamed to
  /// *.corrupt.<pid> with a warning — and reads as a miss, so the caller
  /// recompiles instead of executing corrupt code. Returns nullptr (OK
  /// status) when the file does not exist; an error Status only when a
  /// verified object still cannot be loaded.
  Result<std::shared_ptr<KernelLibrary>> LookupDisk(const std::string& dir,
                                                    const std::string& key);

  /// Copies a freshly compiled `library_path` into the disk layer under
  /// `key` (atomic temp-file + rename; creates `dir` if needed) and writes
  /// the XXH64 content checksum sidecar LookupDisk verifies.
  Status StoreDisk(const std::string& dir, const std::string& key,
                   const std::string& library_path);

  int64_t size() const;
  void Clear();

 private:
  KernelCache() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<KernelLibrary>> entries_;
};

}  // namespace swole::codegen

#endif  // SWOLE_CODEGEN_KERNEL_CACHE_H_
