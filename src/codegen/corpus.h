#ifndef SWOLE_CODEGEN_CORPUS_H_
#define SWOLE_CODEGEN_CORPUS_H_

#include <string>
#include <vector>

#include "codegen/generator.h"
#include "codegen/jit.h"
#include "plan/plan.h"

// Startup kernel-corpus precompilation. A serving process pays the ~1s JIT
// compile exactly once per distinct (source, compiler, flags) key — but
// "once" lands on the first unlucky client of every kernel. A workload
// corpus moves those compiles to startup: a descriptor (or the automatic
// registry of known benchmark queries) names (plan, strategy) pairs, and
// PrecompileCorpus drives each through the content-addressed kernel cache
// in parallel on the shared worker pool, so the first client of every
// known query hits a warm cache.
//
// Activation: SWOLE_WARM_CORPUS=auto precompiles every registered query
// whose tables exist in the catalog; SWOLE_WARM_CORPUS=<path> loads a JSON
// descriptor:
//
//   { "entries": [
//       { "query": "tpch.q1", "strategy": "swole" },
//       { "query": "micro.q4_small", "strategy": "data-centric" } ] }
//
// `query` is a registered corpus name (CorpusQueryNames); `strategy` is
// optional and defaults to swole. Only the JSON subset shown is parsed —
// string-valued fields inside an "entries" array of objects.
//
// Effectiveness is observable: every precompiled cache key is registered,
// and CompileKernel reports each later consult of a registered key as
// jit.corpus.warm_hits (served from cache) or jit.corpus.cold_misses
// (compiled again — e.g. the cache was cleared). The precompile itself
// reports jit.corpus.entries / precompiled / cache_hits / unsupported /
// failures / precompile_ms.

namespace swole::codegen {

/// One corpus member: a plan plus the generator configuration whose
/// emitted source keys the cache.
struct CorpusEntry {
  std::string name;  // e.g. "tpch.q1/swole"
  QueryPlan plan;
  GeneratorOptions gen;
};

struct CorpusReport {
  int64_t entries = 0;      // corpus size
  int64_t compiled = 0;     // fresh compiles performed
  int64_t cache_hits = 0;   // already cached (memory or disk layer)
  int64_t unsupported = 0;  // plan shape outside the codegen subset
  int64_t failures = 0;     // generation or compile errors (logged)
  int64_t elapsed_ms = 0;

  std::string ToString() const;
};

/// Names accepted by descriptors and used by AutoCorpus, with the catalog
/// tables each requires ("tpch.q1", "micro.q4_small", ...).
std::vector<std::string> CorpusQueryNames();

/// Every registered query whose required tables exist in `catalog`, under
/// the default (swole) generator configuration.
std::vector<CorpusEntry> AutoCorpus(const Catalog& catalog);

/// Parses a workload descriptor file (see header comment) against
/// `catalog`. Unknown query names and malformed structure are errors;
/// entries whose tables are missing from the catalog are skipped with a
/// warning (a descriptor is shared across differently-loaded processes).
Result<std::vector<CorpusEntry>> LoadCorpusFile(const std::string& path,
                                                const Catalog& catalog);

/// Generates and compiles every entry in parallel on the shared worker
/// pool (exec/scheduler.h), registering each cache key for warm-hit
/// accounting. Individual failures are counted and logged, never fatal —
/// a corpus must not stop a server from starting.
CorpusReport PrecompileCorpus(const std::vector<CorpusEntry>& entries,
                              const Catalog& catalog,
                              const JitOptions& jit_options = {});

/// SWOLE_WARM_CORPUS entry point: "" (unset) does nothing, "auto" runs
/// AutoCorpus, anything else is a descriptor path. Descriptor errors are
/// logged and reported as zero entries, not raised.
CorpusReport WarmCorpusFromEnv(const Catalog& catalog,
                               const JitOptions& jit_options = {});

/// Registers `cache_key` as corpus-precompiled (PrecompileCorpus does this
/// for every entry; exposed for tests).
void RegisterCorpusKey(const std::string& cache_key);

/// CompileKernel's accounting hook: counts the consult of a registered key
/// as jit.corpus.warm_hits (hit) or jit.corpus.cold_misses. No-op until a
/// corpus has registered keys, so non-corpus processes pay one atomic load.
void NoteCorpusLookup(const std::string& cache_key, bool hit);

/// Drops all registered corpus keys (tests).
void ResetCorpusKeysForTest();

}  // namespace swole::codegen

#endif  // SWOLE_CODEGEN_CORPUS_H_
