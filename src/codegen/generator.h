#ifndef SWOLE_CODEGEN_GENERATOR_H_
#define SWOLE_CODEGEN_GENERATOR_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "cost/cost_model.h"
#include "plan/plan.h"
#include "storage/types.h"
#include "strategies/strategy.h"

// Source-level code generation: given a plan and a strategy, emit a
// complete, self-contained C++ translation unit whose loops are exactly
// the paper's generated-code shapes:
//
//   data-centric  -> one fused loop with an if-chain (Fig. 1 top)
//   hybrid        -> tiled prepass + no-branch selection vector (Fig. 1 mid)
//   swole         -> value masking (Fig. 3), key masking (Fig. 4 bottom),
//                    positional bitmaps for joins (§III-D)
//
// The generated unit includes only the header-only runtime
// (exec/kernels.h, exec/hash_table.h, storage/bitmap.h) — the same
// "library code" the engines use — and exports six extern "C" entry
// points forming a morsel-driven ABI (build shared state, create
// per-thread state, process one morsel, merge states, emit output,
// plus a governance cancel-check probe).
// codegen/jit.h compiles it with the system compiler, dlopens it, and
// drives the morsel entry under exec/scheduler.h's work-stealing
// scheduler.
//
// Supported plan subset: fact scan + filter (comparisons, AND/OR/NOT,
// BETWEEN, IN over integer columns, LIKE over raw-text columns), existence
// dimension joins (single level), scalar or grouped sum/count aggregation.
// Dictionary LIKE, column paths, reverse/disjunctive joins return
// Unimplemented — the interpreted engines cover those.
//
// Raw-text LIKE conjuncts honor the access-aware placement decision
// (cost/string_placement.h): pushed conjuncts run in the scan prepass via
// the tile kernel, pulled ones refine the mask / selection vector after
// every other qualification. Placement changes the emitted source (and
// thus the kernel-cache key), never the results.

namespace swole::codegen {

/// ABI between the host and a generated kernel. All column pointers are
/// raw physical arrays in slot order (see GeneratedKernel::column_slots).
struct KernelIO {
  const void* const* columns = nullptr;   // one per column slot
  const int64_t* table_rows = nullptr;    // one per table slot
  const uint32_t* const* fk_offsets = nullptr;  // one per dim slot
  int64_t* scalar_out = nullptr;          // naggs values (scalar plans)
  void* group_ctx = nullptr;              // grouped plans: emit callback
  void (*emit_group)(void* ctx, int64_t key, const int64_t* aggs) = nullptr;
  // ---- Governance (ABI v3) ----
  // Optional query-lifecycle hooks (exec/query_context.h). `mem_charge`
  // follows common/query_abort.h's MemHookFn contract: the kernel's hash
  // tables and bitmaps ask permission before growing (nonzero return ->
  // the structure throws QueryAbort instead of allocating). `cancel_check`
  // is polled at the top of every morsel; nonzero (an AbortReason) makes
  // the morsel return without touching its rows. Both may be null — the
  // generated code always carries the fields so kernel source (and thus
  // cache keys) is identical for governed and ungoverned runs.
  void* governor = nullptr;
  int (*mem_charge)(void* ctx, int64_t delta, const char* site) = nullptr;
  int (*cancel_check)(void* ctx) = nullptr;
  // ---- Native-width execution (ABI v4) ----
  // Nonzero forces the legacy widening path inside the kernel image
  // (kernels::SetWidenMode synced by swole_kernel_build): the dlopened
  // unit has its own copy of the inline flag, so the host mirrors
  // kernels::WidenEnabled() here on every run. Always emitted, so kernel
  // source and cache keys are identical in both modes.
  int64_t widen = 0;
  // ---- Raw text columns (ABI v5) ----
  // One entry per text slot (GeneratedKernel::text_slots_table/column):
  // the StringColumn's byte arena and its rows+1 offset array. Plans
  // without raw-text LIKE predicates have zero text slots and never read
  // these; the fields are always emitted so the struct layout (and thus
  // cache keys) is placement- and plan-independent.
  const void* const* text_bytes = nullptr;
  const uint32_t* const* text_offsets = nullptr;
};

/// Names of the entry points exported by every generated unit.
/// The host drives them as:
///
///   void* shared = swole_kernel_build(io);             // dim structures
///   void* state[w] = swole_kernel_thread_state(io);    // one per worker
///   swole_kernel_morsel(io, shared, state[w], b, e);   // [b, e) fact rows
///   swole_kernel_merge(state[0], state[w]);            // w = 1.. in order
///   swole_kernel_finish(io, shared, state[0]);         // emit + free
///
/// Morsel boundaries must be tile-aligned (GeneratedKernel::tile_size);
/// merge deletes its `from` argument, finish deletes `state` and `shared`.
inline constexpr char kBuildEntryPoint[] = "swole_kernel_build";
inline constexpr char kThreadStateEntryPoint[] = "swole_kernel_thread_state";
inline constexpr char kMorselEntryPoint[] = "swole_kernel_morsel";
inline constexpr char kMergeEntryPoint[] = "swole_kernel_merge";
inline constexpr char kFinishEntryPoint[] = "swole_kernel_finish";
/// Sixth entry point (ABI v3): returns KernelIO::cancel_check(governor),
/// or 0 when the hook is unset. Lets the host confirm a loaded kernel
/// carries the governance ABI; disk-cached objects from older builds miss
/// this symbol and are recompiled.
inline constexpr char kCancelCheckEntryPoint[] = "swole_kernel_cancel_check";

struct ColumnSlot {
  std::string table;
  std::string column;
  PhysicalType physical;
};

struct GeneratedKernel {
  std::string source;                  // the full translation unit
  std::vector<ColumnSlot> column_slots;
  std::vector<std::string> table_slots;     // tables, slot order
  std::vector<std::string> fk_slots_table;  // fk owner table per dim slot
  std::vector<std::string> fk_slots_column; // fk column per dim slot
  // Referenced (primary-key) table per dim slot; Run validates that the
  // bound fk index is sized for the owner and referenced tables it is given,
  // so stale indexes can't send generated code out of bounds.
  std::vector<std::string> fk_slots_ref_table;
  // Raw-text slots (ABI v5): table/column per text slot, in the order the
  // kernel expects KernelIO::text_bytes / text_offsets. The bound column
  // must be logical kText stored raw (Column::text() != nullptr).
  std::vector<std::string> text_slots_table;
  std::vector<std::string> text_slots_column;
  int num_aggs = 0;
  bool grouped = false;
  // The fact table driving the morsel loop, and the tile size the emitted
  // loops assume: morsel boundaries handed to swole_kernel_morsel must be
  // multiples of it (exec::DefaultMorselSize guarantees this).
  std::string fact_table;
  int64_t tile_size = 1024;
};

struct GeneratorOptions {
  StrategyKind strategy = StrategyKind::kSwole;
  int64_t tile_size = 1024;
  // SWOLE technique selection (the engine's cost-model decision, made
  // explicit so generated code is deterministic and inspectable).
  AggChoice agg_choice = AggChoice::kValueMasking;
  int64_t group_capacity_hint = 1024;
  // Worker threads for CompiledKernel::Run / ExecuteWithFallback. Does NOT
  // affect the emitted source (the morsel ABI is thread-count agnostic, so
  // kernel-cache keys stay stable across thread counts); 0 defers to
  // SWOLE_THREADS.
  int num_threads = 0;
  // Per-query trace (obs/trace.h) for ExecuteWithFallback / CompiledKernel
  // runs. Like num_threads, this NEVER affects the emitted source — span
  // recording happens entirely on the host side of the morsel ABI, so
  // kernel-cache keys are identical for traced and untraced runs. Null
  // disables recording; SWOLE_TRACE=1 enables an internally owned trace.
  obs::QueryTrace* trace = nullptr;
  // Concurrent serving (exec/admission.h, exec/scheduler.h): host-side
  // only, never part of the emitted source or the kernel-cache key.
  // Scheduler priority of this query's morsel jobs in the shared pool.
  int priority = 0;
  // Tenant identity for per-tenant admission caps; empty = default tenant.
  std::string tenant;
};

/// Emits the translation unit for `plan`, or Unimplemented if the plan
/// uses features outside the codegen subset.
Result<GeneratedKernel> GenerateKernel(const QueryPlan& plan,
                                       const Catalog& catalog,
                                       const GeneratorOptions& options);

}  // namespace swole::codegen

#endif  // SWOLE_CODEGEN_GENERATOR_H_
