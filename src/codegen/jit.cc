#include "codegen/jit.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>

#include "codegen/corpus.h"
#include "common/env.h"
#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/scratch_dir.h"
#include "common/string_util.h"
#include "common/subprocess.h"
#include "common/timer.h"
#include "cost/estimates.h"
#include "cost/feedback.h"
#include "engine/reference_engine.h"
#include "exec/admission.h"
#include "exec/kernels.h"
#include "exec/query_context.h"
#include "exec/scheduler.h"
#include "obs/trace.h"
#include "storage/table.h"
#include "strategies/strategy.h"

// The include root for the header-only runtime the generated code uses,
// injected by the build (src/CMakeLists.txt).
#ifndef SWOLE_SOURCE_DIR
#define SWOLE_SOURCE_DIR "."
#endif

namespace swole::codegen {

SWOLE_REGISTER_FAULT_SITE("jit_workdir",
                          "JIT work-dir creation (mkdtemp)")
SWOLE_REGISTER_FAULT_SITE("jit_source_write",
                          "generated kernel source write")
SWOLE_REGISTER_FAULT_SITE("jit_compile", "kernel compile subprocess")

namespace {

std::atomic<int64_t> g_kernel_counter{0};

// The work dir for one compile is a ScratchDir (common/scratch_dir.h): the
// same base-resolution policy (SWOLE_JIT_TMPDIR > TMPDIR > /tmp, with the
// exec-unsafe refusal — the path crosses the compiler's exec boundary) and
// the same cleanup-on-every-exit-path guarantee the spill subsystem uses.
// A caller-provided work_dir is adopted: tracked artifacts are removed on
// teardown, but the directory itself is left alone.
Result<ScratchDir> MakeWorkDir(const JitOptions& options) {
  SWOLE_FAULT_POINT("jit_workdir",
                    Status::IOError("injected fault: jit_workdir"));
  if (!options.work_dir.empty()) return ScratchDir::Adopt(options.work_dir);
  Result<ScratchDir> dir = ScratchDir::CreateUnder(
      ScratchDir::ResolveBase("SWOLE_JIT_TMPDIR", "JIT tmp"), "swole_jit_");
  if (!dir.ok()) {
    return Status::IOError(StringFormat(
        "%s (override with SWOLE_JIT_TMPDIR)", dir.status().message().c_str()));
  }
  return dir;
}

std::string ResolvedCompiler(const JitOptions& options) {
  return GetEnvString("SWOLE_CXX", options.compiler);
}

// The flag configuration identifying a compile, independent of which ladder
// rung ends up succeeding — so a query whose first compile degraded to -O2
// still hits the cache the next time around.
std::string FlagConfig(const JitOptions& options) {
  std::vector<std::string> rungs = {options.extra_flags};
  rungs.insert(rungs.end(), options.degrade_flags.begin(),
               options.degrade_flags.end());
  return StrJoin(rungs, "|");
}

std::vector<std::string> SplitFlags(const std::string& flags) {
  std::vector<std::string> tokens;
  for (std::string& token : StrSplit(flags, ' ')) {
    if (!token.empty()) tokens.push_back(std::move(token));
  }
  return tokens;
}

Status ValidateExecToken(const char* what, const std::string& value) {
  if (!IsExecSafe(value)) {
    return Status::InvalidArgument(StringFormat(
        "JitOptions: %s \"%s\" contains characters unsafe for exec "
        "(whitespace/quotes/shell metacharacters)",
        what, value.c_str()));
  }
  return Status::OK();
}

}  // namespace

Status JitOptions::Validate() const {
  SWOLE_RETURN_NOT_OK(ValidateExecToken("compiler", compiler));
  for (const std::string& token : SplitFlags(extra_flags)) {
    SWOLE_RETURN_NOT_OK(ValidateExecToken("flag", token));
  }
  for (const std::string& rung : degrade_flags) {
    for (const std::string& token : SplitFlags(rung)) {
      SWOLE_RETURN_NOT_OK(ValidateExecToken("flag", token));
    }
  }
  if (!work_dir.empty()) {
    SWOLE_RETURN_NOT_OK(ValidateExecToken("work_dir", work_dir));
  }
  if (!disk_cache_dir.empty()) {
    SWOLE_RETURN_NOT_OK(ValidateExecToken("disk_cache_dir", disk_cache_dir));
  }
  if (compile_timeout_ms < 0) {
    return Status::InvalidArgument("JitOptions: negative compile_timeout_ms");
  }
  return Status::OK();
}

JitStats::JitStats()
    : compiles(obs::MetricsRegistry::Global().GetCounter("jit.compiles")),
      compile_failures(
          obs::MetricsRegistry::Global().GetCounter("jit.compile_failures")),
      retries(obs::MetricsRegistry::Global().GetCounter("jit.retries")),
      timeouts(obs::MetricsRegistry::Global().GetCounter("jit.timeouts")),
      cache_hits_memory(
          obs::MetricsRegistry::Global().GetCounter("jit.cache_hits_memory")),
      cache_hits_disk(
          obs::MetricsRegistry::Global().GetCounter("jit.cache_hits_disk")),
      fallbacks(obs::MetricsRegistry::Global().GetCounter("jit.fallbacks")),
      compile_ms(obs::MetricsRegistry::Global().GetCounter("jit.compile_ms")) {
}

JitStats::Snapshot JitStats::snapshot() const {
  Snapshot s;
  s.compiles = compiles.value();
  s.compile_failures = compile_failures.value();
  s.retries = retries.value();
  s.timeouts = timeouts.value();
  s.cache_hits_memory = cache_hits_memory.value();
  s.cache_hits_disk = cache_hits_disk.value();
  s.fallbacks = fallbacks.value();
  s.compile_ms = compile_ms.value();
  return s;
}

void JitStats::Reset() {
  compiles.Reset();
  compile_failures.Reset();
  retries.Reset();
  timeouts.Reset();
  cache_hits_memory.Reset();
  cache_hits_disk.Reset();
  fallbacks.Reset();
  compile_ms.Reset();
}

std::string JitStats::Snapshot::ToString() const {
  return StringFormat(
      "compiles=%lld failures=%lld retries=%lld timeouts=%lld "
      "cache_hits=%lld(mem)/%lld(disk) fallbacks=%lld compile_ms=%lld",
      static_cast<long long>(compiles),
      static_cast<long long>(compile_failures),
      static_cast<long long>(retries), static_cast<long long>(timeouts),
      static_cast<long long>(cache_hits_memory),
      static_cast<long long>(cache_hits_disk),
      static_cast<long long>(fallbacks),
      static_cast<long long>(compile_ms));
}

JitStats& GlobalJitStats() {
  // The registry owns the counters (and the shutdown dump of non-zero
  // instruments); this is just the stable bundle of handles.
  static JitStats* stats = new JitStats();
  return *stats;
}

std::string ResolvedKernelCacheKey(const std::string& source,
                                   const JitOptions& options) {
  return KernelCacheKey(source, ResolvedCompiler(options),
                        FlagConfig(options));
}

Result<std::unique_ptr<CompiledKernel>> CompileKernel(
    GeneratedKernel kernel, const QueryPlan& plan,
    const JitOptions& options) {
  SWOLE_RETURN_NOT_OK(options.Validate());
  JitStats& stats = GlobalJitStats();
  std::string compiler = ResolvedCompiler(options);
  SWOLE_RETURN_NOT_OK(ValidateExecToken("compiler (SWOLE_CXX)", compiler));
  std::string disk_cache_dir =
      GetEnvString("SWOLE_KERNEL_CACHE_DIR", options.disk_cache_dir);
  if (!disk_cache_dir.empty()) {
    SWOLE_RETURN_NOT_OK(
        ValidateExecToken("disk_cache_dir (SWOLE_KERNEL_CACHE_DIR)",
                          disk_cache_dir));
  }

  std::string cache_key =
      KernelCacheKey(kernel.source, compiler, FlagConfig(options));

  auto make_compiled = [&](std::shared_ptr<KernelLibrary> library,
                           std::string source_path, bool from_cache) {
    auto compiled = std::unique_ptr<CompiledKernel>(new CompiledKernel());
    compiled->kernel_ = std::move(kernel);
    compiled->library_ = std::move(library);
    compiled->source_path_ = std::move(source_path);
    compiled->from_cache_ = from_cache;
    for (const AggSpec& agg : plan.aggs) {
      compiled->agg_names_.push_back(agg.name);
    }
    return compiled;
  };

  // Cache layers first: identical (source, compiler, flags) means the
  // compile below would produce an identical object. keep_artifacts asks
  // for an inspectable source tree, which only a fresh compile produces.
  if (options.use_cache && !options.keep_artifacts) {
    if (std::shared_ptr<KernelLibrary> library =
            KernelCache::Global().Lookup(cache_key)) {
      stats.cache_hits_memory.Add(1);
      NoteCorpusLookup(cache_key, /*hit=*/true);
      return make_compiled(std::move(library), "", /*from_cache=*/true);
    }
    if (!disk_cache_dir.empty()) {
      Result<std::shared_ptr<KernelLibrary>> from_disk =
          KernelCache::Global().LookupDisk(disk_cache_dir, cache_key);
      if (from_disk.ok() && *from_disk != nullptr) {
        stats.cache_hits_disk.Add(1);
        NoteCorpusLookup(cache_key, /*hit=*/true);
        KernelCache::Global().Insert(cache_key, *from_disk);
        return make_compiled(std::move(*from_disk), "", /*from_cache=*/true);
      }
      if (!from_disk.ok()) {
        SWOLE_LOG(WARNING) << "kernel disk cache entry unusable, "
                              "recompiling: "
                           << from_disk.status().ToString();
      }
    }
  }

  // Reaching here means a fresh compile — for a key the startup corpus
  // claimed to have precompiled, that is a cold miss worth accounting.
  NoteCorpusLookup(cache_key, /*hit=*/false);

  SWOLE_ASSIGN_OR_RETURN(ScratchDir dir, MakeWorkDir(options));
  int64_t id = g_kernel_counter.fetch_add(1);
  std::string base = StringFormat("%s/kernel_%lld", dir.path().c_str(),
                                  static_cast<long long>(id));
  std::string source_path = base + ".cc";
  std::string library_path = base + ".so";
  dir.Track(source_path);
  dir.Track(library_path);

  SWOLE_FAULT_POINT("jit_source_write",
                    Status::IOError("injected fault: jit_source_write"));
  {
    std::ofstream out(source_path);
    if (!out) {
      return Status::IOError(
          StringFormat("cannot write %s", source_path.c_str()));
    }
    out << kernel.source;
  }

  // The generated unit needs the logging runtime (CHECK failures in the
  // shared hash table); compile it in rather than exporting host symbols.
  int64_t timeout_ms =
      GetEnvInt64("SWOLE_JIT_TIMEOUT_MS", options.compile_timeout_ms);

  std::vector<std::string> rungs = {options.extra_flags};
  rungs.insert(rungs.end(), options.degrade_flags.begin(),
               options.degrade_flags.end());

  Status last_failure;
  bool compiled_ok = false;
  for (size_t attempt = 0; attempt < rungs.size(); ++attempt) {
    if (attempt > 0) {
      stats.retries.Add(1);
      SWOLE_LOG(WARNING) << "JIT retry " << attempt << " for plan "
                         << plan.name << " with flags \"" << rungs[attempt]
                         << "\": " << last_failure.ToString();
    }
    if (FaultInjector::Global().ShouldFail("jit_compile")) {
      last_failure = Status::Internal("injected fault: jit_compile");
      stats.compile_failures.Add(1);
      continue;
    }
    std::vector<std::string> argv = {compiler, "-std=c++20"};
    for (std::string& flag : SplitFlags(rungs[attempt])) {
      argv.push_back(std::move(flag));
    }
    argv.insert(argv.end(),
                {"-shared", "-fPIC", "-DNDEBUG", "-I" SWOLE_SOURCE_DIR,
                 source_path, SWOLE_SOURCE_DIR "/common/logging.cc", "-o",
                 library_path});
    SubprocessOptions sub_options;
    sub_options.timeout_ms = timeout_ms;
    stats.compiles.Add(1);
    SWOLE_ASSIGN_OR_RETURN(SubprocessResult run,
                           RunSubprocess(argv, sub_options));
    stats.compile_ms.Add(run.elapsed_ms);
    if (run.Succeeded()) {
      compiled_ok = true;
      break;
    }
    stats.compile_failures.Add(1);
    if (run.timed_out) {
      stats.timeouts.Add(1);
      last_failure = Status::Internal(StringFormat(
          "JIT compile timed out after %lld ms (flags \"%s\"); compiler "
          "killed",
          static_cast<long long>(run.elapsed_ms), rungs[attempt].c_str()));
    } else {
      last_failure = Status::Internal(StringFormat(
          "JIT compile failed (%s, flags \"%s\"):\n%s",
          run.exit_code >= 0
              ? StringFormat("rc=%d", run.exit_code).c_str()
              : StringFormat("signal=%d", run.term_signal).c_str(),
          rungs[attempt].c_str(),
          run.captured_output.substr(0, 2000).c_str()));
    }
  }
  if (!compiled_ok) {
    return Status::Internal(StringFormat(
        "JIT compile failed after %d attempt(s); last error: %s",
        static_cast<int>(rungs.size()), last_failure.message().c_str()));
  }

  SWOLE_ASSIGN_OR_RETURN(std::shared_ptr<KernelLibrary> library,
                         KernelLibrary::Load(library_path));

  if (options.use_cache) {
    KernelCache::Global().Insert(cache_key, library);
    if (!disk_cache_dir.empty()) {
      Status stored = KernelCache::Global().StoreDisk(disk_cache_dir,
                                                      cache_key,
                                                      library_path);
      if (!stored.ok()) {
        SWOLE_LOG(WARNING) << "kernel disk cache store failed: "
                           << stored.ToString();
      }
    }
  }

  if (options.keep_artifacts) {
    dir.Disarm();
  }
  // Otherwise the scratch dir unlinks source + .so (the mapped object
  // survives the unlink) and removes the auto-created work dir itself.
  return make_compiled(std::move(library), source_path,
                       /*from_cache=*/false);
}

Result<QueryResult> CompiledKernel::Run(const Catalog& catalog,
                                        int num_threads,
                                        exec::QueryContext* query_ctx) const {
  // Bind column slots.
  std::vector<const void*> columns;
  for (const ColumnSlot& slot : kernel_.column_slots) {
    SWOLE_ASSIGN_OR_RETURN(const Table* table, catalog.GetTable(slot.table));
    SWOLE_ASSIGN_OR_RETURN(const Column* column,
                           table->GetColumn(slot.column));
    if (column->type().physical != slot.physical) {
      return Status::TypeError(StringFormat(
          "kernel slot %s.%s expects %s", slot.table.c_str(),
          slot.column.c_str(), PhysicalTypeName(slot.physical)));
    }
    const void* data = DispatchPhysical(
        column->type().physical,
        [&]<typename T>() -> const void* { return column->Data<T>(); });
    columns.push_back(data);
  }

  std::vector<int64_t> table_rows;
  for (const std::string& name : kernel_.table_slots) {
    SWOLE_ASSIGN_OR_RETURN(const Table* table, catalog.GetTable(name));
    table_rows.push_back(table->num_rows());
  }

  // Bind fk-index slots, checking the index is sized for the tables it is
  // bound against — the generated loops index offsets[] by owner row and
  // bitmaps by referenced row, so a stale or foreign index would read out
  // of bounds instead of returning an error.
  std::vector<const uint32_t*> fk_offsets;
  for (size_t s = 0; s < kernel_.fk_slots_table.size(); ++s) {
    SWOLE_ASSIGN_OR_RETURN(const Table* owner,
                           catalog.GetTable(kernel_.fk_slots_table[s]));
    SWOLE_ASSIGN_OR_RETURN(const FkIndex* index,
                           owner->GetFkIndex(kernel_.fk_slots_column[s]));
    if (index->size() != owner->num_rows()) {
      return Status::InvalidArgument(StringFormat(
          "fk index %s.%s covers %lld rows but the table has %lld",
          kernel_.fk_slots_table[s].c_str(),
          kernel_.fk_slots_column[s].c_str(),
          static_cast<long long>(index->size()),
          static_cast<long long>(owner->num_rows())));
    }
    if (s < kernel_.fk_slots_ref_table.size()) {
      SWOLE_ASSIGN_OR_RETURN(
          const Table* referenced,
          catalog.GetTable(kernel_.fk_slots_ref_table[s]));
      if (index->referenced_size() != referenced->num_rows()) {
        return Status::InvalidArgument(StringFormat(
            "fk index %s.%s references %lld rows but %s has %lld",
            kernel_.fk_slots_table[s].c_str(),
            kernel_.fk_slots_column[s].c_str(),
            static_cast<long long>(index->referenced_size()),
            kernel_.fk_slots_ref_table[s].c_str(),
            static_cast<long long>(referenced->num_rows())));
      }
    }
    fk_offsets.push_back(index->offsets());
  }

  // Bind raw-text slots (ABI v5): the StringColumn byte arena + offset
  // array per slot. The logical-type check mirrors the generator's — a
  // slot bound to anything but raw text would send the compiled matcher
  // into garbage.
  std::vector<const void*> text_bytes;
  std::vector<const uint32_t*> text_offsets;
  for (size_t s = 0; s < kernel_.text_slots_table.size(); ++s) {
    SWOLE_ASSIGN_OR_RETURN(const Table* table,
                           catalog.GetTable(kernel_.text_slots_table[s]));
    SWOLE_ASSIGN_OR_RETURN(const Column* column,
                           table->GetColumn(kernel_.text_slots_column[s]));
    if (column->type().logical != LogicalType::kText ||
        column->text() == nullptr) {
      return Status::TypeError(StringFormat(
          "kernel text slot %s.%s expects a raw-text column",
          kernel_.text_slots_table[s].c_str(),
          kernel_.text_slots_column[s].c_str()));
    }
    text_bytes.push_back(column->text()->bytes());
    text_offsets.push_back(column->text()->offsets());
  }

  QueryResult result;
  result.agg_names = agg_names_;
  std::vector<int64_t> scalar(kernel_.num_aggs, 0);

  struct EmitContext {
    QueryResult* result;
  } emit_context{&result};

  KernelIO io;
  io.columns = columns.data();
  io.table_rows = table_rows.data();
  io.fk_offsets = fk_offsets.data();
  io.scalar_out = scalar.data();
  io.group_ctx = &emit_context;
  io.emit_group = [](void* ctx, int64_t key, const int64_t* aggs) {
    auto* emit = static_cast<EmitContext*>(ctx);
    emit->result->AddGroup(key, aggs);
  };
  // ABI v4: mirror the host's widening mode into the kernel image (the
  // dlopened unit has its own copy of the inline flag).
  io.widen = kernels::WidenEnabled() ? 1 : 0;
  // ABI v5: raw-text arenas (empty for plans without string predicates).
  io.text_bytes = text_bytes.data();
  io.text_offsets = text_offsets.data();

  // Governance (ABI v3): the kernel's structures charge the context's
  // memory tracker and its morsel entry polls the cancellation token. The
  // hooks stay null on ungoverned runs — same generated source either way.
  exec::GovernanceScope governance(query_ctx, /*mem_limit_bytes=*/-1,
                                   /*deadline_ms=*/-1);
  exec::QueryContext* qctx = governance.ctx();
  if (qctx != nullptr) {
    io.governor = qctx;
    io.mem_charge = exec::QueryContext::MemHookThunk;
    io.cancel_check = exec::QueryContext::CancelCheckThunk;
  }

  // Spans live entirely on the host side of the morsel ABI — the generated
  // source is identical for traced and untraced runs.
  obs::QueryTrace* trace = qctx != nullptr ? qctx->trace() : nullptr;
  obs::SpanScope kernel_span(trace, "jit_kernel");
  kernel_span.Attr("cache_hit", static_cast<int64_t>(from_cache_ ? 1 : 0));
  std::optional<obs::SpanScope> phase;

  if (kernel_.grouped) {
    result.grouped = true;
    result.num_aggs = kernel_.num_aggs;
  }

  // Drive the morsel ABI: build the shared dim structures once,
  // then scan the fact in tile-aligned morsels under the work-stealing
  // scheduler with one generated state per worker, merged in worker order
  // (bit-exact at every thread count), and emit from worker 0's state.
  SWOLE_ASSIGN_OR_RETURN(const Table* fact,
                         catalog.GetTable(kernel_.fact_table));
  const int resolved_threads = exec::ResolveNumThreads(num_threads);
  kernel_span.Attr("threads", static_cast<int64_t>(resolved_threads));

  using BuildFn = void* (*)(const KernelIO*);
  using ThreadStateFn = void* (*)(const KernelIO*);
  using MorselFn = void (*)(const KernelIO*, void*, void*, int64_t, int64_t);
  using MergeFn = void (*)(void*, void*);
  using FinishFn = void (*)(const KernelIO*, void*, void*);
  auto build = reinterpret_cast<BuildFn>(library_->build_entry());
  auto thread_state =
      reinterpret_cast<ThreadStateFn>(library_->thread_state_entry());
  auto morsel = reinterpret_cast<MorselFn>(library_->morsel_entry());
  auto merge = reinterpret_cast<MergeFn>(library_->merge_entry());
  auto finish = reinterpret_cast<FinishFn>(library_->finish_entry());

  void* shared = nullptr;
  std::vector<void*> states(resolved_threads, nullptr);

  // Best-effort teardown of generated-side allocations after an abort:
  // merge deletes its `from`, finish deletes state + shared (their
  // destructors release tracked charges). A second abort mid-teardown
  // (e.g. a refused rehash inside merge) leaks that state — bounded, and
  // only on an already-failing query.
  auto cleanup = [&]() noexcept {
    if (states[0] != nullptr) {
      for (int w = 1; w < resolved_threads; ++w) {
        if (states[w] == nullptr) continue;
        try {
          merge(states[0], states[w]);
        } catch (...) {
        }
        states[w] = nullptr;
      }
    }
    // finish tolerates a null worker-0 state (abort before it existed)
    // and still frees the shared structures.
    if (shared != nullptr || states[0] != nullptr) {
      try {
        finish(&io, shared, states[0]);
      } catch (...) {
      }
      states[0] = nullptr;
      shared = nullptr;
    }
  };

  phase.emplace(trace, "build");
  try {
    shared = build(&io);
    for (int w = 0; w < resolved_threads; ++w) states[w] = thread_state(&io);
  } catch (...) {
    Status aborted = exec::StatusFromCurrentException(qctx);
    cleanup();
    return aborted;
  }
  phase.reset();

  phase.emplace(trace, "scan");
  exec::MorselStats scan_stats = exec::ParallelMorsels(
      qctx, resolved_threads, fact->num_rows(),
      exec::DefaultMorselSize(kernel_.tile_size),
      [&](int worker, int64_t begin, int64_t end) {
        morsel(&io, shared, states[worker], begin, end);
      });
  phase->Attr("morsels", scan_stats.morsels);
  phase->Attr("steals", scan_stats.steals);
  phase->Attr("workers", static_cast<int64_t>(scan_stats.workers));
  phase.reset();
  if (!scan_stats.status.ok()) {
    cleanup();
    return scan_stats.status;
  }

  phase.emplace(trace, "merge");
  try {
    for (int w = 1; w < resolved_threads; ++w) {
      merge(states[0], states[w]);
      states[w] = nullptr;
    }
    phase.reset();
    phase.emplace(trace, "finish");
    finish(&io, shared, states[0]);
    states[0] = nullptr;
    shared = nullptr;
  } catch (...) {
    Status aborted = exec::StatusFromCurrentException(qctx);
    cleanup();
    return aborted;
  }
  phase.reset();

  if (kernel_.grouped) {
    if (sort_groups_) result.SortGroups();
  } else {
    result.grouped = false;
    result.scalar = std::move(scalar);
  }
  return result;
}

Result<std::unique_ptr<CompiledKernel>> GenerateAndCompile(
    const QueryPlan& plan, const Catalog& catalog,
    const GeneratorOptions& gen_options, const JitOptions& jit_options) {
  SWOLE_ASSIGN_OR_RETURN(GeneratedKernel kernel,
                         GenerateKernel(plan, catalog, gen_options));
  return CompileKernel(std::move(kernel), plan, jit_options);
}

Result<QueryResult> ExecuteWithFallback(const QueryPlan& plan,
                                        const Catalog& catalog,
                                        const GeneratorOptions& gen_options,
                                        const JitOptions& jit_options,
                                        ExecutionReport* report) {
  ExecutionReport local_report;
  if (report == nullptr) report = &local_report;
  *report = ExecutionReport();

  // Admission before compiling anything: a shed query must not occupy the
  // compiler either. The interpreted fallbacks below re-enter engine
  // Execute on this thread and ride this scope's slot (exec/admission.h).
  exec::AdmissionScope admission(gen_options.tenant);
  SWOLE_RETURN_NOT_OK(admission.status());

  // One governance scope for the whole attempt chain (env-resolved:
  // SWOLE_MEM_LIMIT / SWOLE_DEADLINE_MS), so a degradation retry runs
  // under the same budget, deadline, and accumulated peak attribution as
  // the kernel run that breached.
  exec::GovernanceScope governance(nullptr, /*mem_limit_bytes=*/-1,
                                   /*deadline_ms=*/-1, gen_options.trace);
  exec::QueryContext* qctx = governance.ctx();
  if (qctx != nullptr && gen_options.priority != 0) {
    qctx->set_priority(gen_options.priority);
  }
  obs::QueryTrace* trace = qctx != nullptr ? qctx->trace() : nullptr;

  // Estimate side of the cost-feedback observation (cost/feedback.h); the
  // owning scope completes and forwards it on teardown. Interpreted
  // fallbacks re-enter engine Execute with this same context and overwrite
  // the carrier with their own estimates, so the record reflects whatever
  // engine actually served the query.
  if (qctx != nullptr && cost::RefitEnabled()) {
    Result<const Table*> fact = catalog.GetTable(plan.fact_table);
    if (fact.ok()) {
      AggWorkload w;
      w.rows = static_cast<double>((*fact)->num_rows());
      w.selectivity = plan.fact_filter != nullptr
                          ? EstimateSelectivity(**fact, *plan.fact_filter)
                          : 1.0;
      cost::QueryObservation* record = qctx->MutableObservation();
      record->rows = w.rows;
      record->selectivity = w.selectivity;
      record->predicted_ns = HybridCost(CostProfile::Default(), w);
      record->technique =
          std::string("jit/") + StrategyKindName(gen_options.strategy);
    }
  }

  static obs::Counter& queries =
      obs::MetricsRegistry::Global().GetCounter("queries.jit");
  static obs::Histogram& latency =
      obs::MetricsRegistry::Global().GetHistogram("query.latency_us.jit");
  queries.Add(1);
  Timer timer;

  // Stamped on every exit — success, fallback, or structured failure — so
  // the histogram carries what the client observed for the whole attempt
  // chain. Stamping only the happy path (as this function once did)
  // understates exactly the tail that matters under concurrency.
  struct LatencyStamp {
    obs::Histogram& hist;
    Timer& timer;
    ~LatencyStamp() { hist.Record(timer.ElapsedNanos() / 1000); }
  } latency_stamp{latency, timer};

  Status jit_failure;
  std::optional<obs::SpanScope> compile_span;
  compile_span.emplace(trace, "jit_compile");
  compile_span->Attr("strategy", StrategyKindName(gen_options.strategy));
  Result<std::unique_ptr<CompiledKernel>> compiled =
      GenerateAndCompile(plan, catalog, gen_options, jit_options);
  if (compiled.ok()) {
    report->cache_hit = (*compiled)->from_cache();
    compile_span->Attr("cache_hit",
                       static_cast<int64_t>(report->cache_hit ? 1 : 0));
    compile_span.reset();
    Result<QueryResult> run =
        (*compiled)->Run(catalog, gen_options.num_threads, qctx);
    if (run.ok()) {
      report->used_jit = true;
      return std::move(run).value();
    }
    jit_failure = run.status();
  } else {
    jit_failure = compiled.status();
    compile_span->Attr("error", jit_failure.ToString());
    compile_span.reset();
  }

  // Governance aborts are query-lifecycle outcomes, not JIT infrastructure
  // failures: re-running the same work interpreted would just breach (or
  // miss the deadline) again. Surface them structured — except a SWOLE
  // budget breach, which earns one retry on the memory-lean data-centric
  // interpreter under the same context (SwoleStrategy's degradation path).
  if (jit_failure.IsGovernance()) {
    if (jit_failure.code() == StatusCode::kBudgetExceeded && qctx != nullptr &&
        qctx->spill_enabled()) {
      // Spill engages host-side only: generated kernels keep their
      // in-memory group tables (and therefore their source text and cache
      // keys — a spilling kernel variant would fork the kernel corpus), so
      // a budget breach with spill enabled retries on the interpreted
      // engine of the SAME strategy, whose group tables spill to disk
      // under this same context instead of aborting.
      SWOLE_LOG(WARNING) << "JIT kernel for plan \"" << plan.name
                         << "\" breached its memory budget ("
                         << jit_failure.ToString()
                         << "); retrying interpreted "
                         << StrategyKindName(gen_options.strategy)
                         << " with spill-to-disk";
      GlobalJitStats().fallbacks.Add(1);
      report->used_fallback = true;
      report->fallback_reason = jit_failure.ToString();
      StrategyOptions spill_options;
      spill_options.tile_size = gen_options.tile_size;
      spill_options.num_threads = gen_options.num_threads;
      spill_options.query_ctx = qctx;
      std::unique_ptr<Strategy> spilling =
          MakeStrategy(gen_options.strategy, catalog, spill_options);
      Result<QueryResult> spilled = spilling->Execute(plan);
      if (spilled.ok()) report->fallback_engine = spilling->name();
      return spilled;
    }
    if (jit_failure.code() == StatusCode::kBudgetExceeded && qctx != nullptr &&
        gen_options.strategy == StrategyKind::kSwole) {
      SWOLE_LOG(WARNING) << "JIT kernel for plan \"" << plan.name
                         << "\" breached its memory budget ("
                         << jit_failure.ToString()
                         << "); degrading to interpreted data-centric";
      qctx->CountDegradation();
      GlobalJitStats().fallbacks.Add(1);
      report->used_fallback = true;
      report->fallback_reason = jit_failure.ToString();
      StrategyOptions lean_options;
      lean_options.tile_size = gen_options.tile_size;
      lean_options.num_threads = gen_options.num_threads;
      lean_options.query_ctx = qctx;
      std::unique_ptr<Strategy> lean =
          MakeStrategy(StrategyKind::kDataCentric, catalog, lean_options);
      Result<QueryResult> degraded = lean->Execute(plan);
      if (degraded.ok()) report->fallback_engine = lean->name();
      return degraded;
    }
    return jit_failure;
  }

  GlobalJitStats().fallbacks.Add(1);
  report->used_fallback = true;
  report->fallback_reason = jit_failure.ToString();
  SWOLE_LOG(WARNING) << "JIT unavailable for plan \"" << plan.name
                     << "\", executing interpreted: "
                     << jit_failure.ToString();

  // First choice: the interpreted engine for the same strategy, so the
  // fallback keeps the strategy's access patterns (and its performance
  // envelope) — and the caller's tile size and thread count. The reference
  // oracle is the engine of last resort.
  StrategyOptions fallback_options;
  fallback_options.tile_size = gen_options.tile_size;
  fallback_options.num_threads = gen_options.num_threads;
  fallback_options.query_ctx = qctx;
  std::unique_ptr<Strategy> engine =
      MakeStrategy(gen_options.strategy, catalog, fallback_options);
  Result<QueryResult> interpreted = engine->Execute(plan);
  if (interpreted.ok()) {
    report->fallback_engine = engine->name();
    return std::move(interpreted).value();
  }
  // An interpreted governance abort is final for the same reason as above.
  if (interpreted.status().IsGovernance()) return interpreted.status();
  ReferenceEngine reference(catalog, gen_options.num_threads);
  reference.set_query_context(qctx);
  Result<QueryResult> oracle = reference.Execute(plan);
  if (!oracle.ok()) return oracle.status();
  report->fallback_engine = "reference";
  return std::move(oracle).value();
}

}  // namespace swole::codegen
