#include "codegen/jit.h"

#include <dlfcn.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "common/env.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "storage/table.h"

// The include root for the header-only runtime the generated code uses,
// injected by the build (src/CMakeLists.txt).
#ifndef SWOLE_SOURCE_DIR
#define SWOLE_SOURCE_DIR "."
#endif

namespace swole::codegen {

namespace {

std::atomic<int64_t> g_kernel_counter{0};

Result<std::string> MakeWorkDir(const JitOptions& options) {
  if (!options.work_dir.empty()) return options.work_dir;
  std::string tmpl = "/tmp/swole_jit_XXXXXX";
  if (::mkdtemp(tmpl.data()) == nullptr) {
    return Status::IOError("mkdtemp failed for JIT work dir");
  }
  return tmpl;
}

}  // namespace

CompiledKernel::~CompiledKernel() {
  if (handle_ != nullptr) ::dlclose(handle_);
}

Result<std::unique_ptr<CompiledKernel>> CompileKernel(
    GeneratedKernel kernel, const QueryPlan& plan,
    const JitOptions& options) {
  SWOLE_ASSIGN_OR_RETURN(std::string dir, MakeWorkDir(options));
  int64_t id = g_kernel_counter.fetch_add(1);
  std::string base = StringFormat("%s/kernel_%lld", dir.c_str(),
                                  static_cast<long long>(id));
  std::string source_path = base + ".cc";
  std::string library_path = base + ".so";

  {
    std::ofstream out(source_path);
    if (!out) {
      return Status::IOError(
          StringFormat("cannot write %s", source_path.c_str()));
    }
    out << kernel.source;
  }

  // The generated unit needs the logging runtime (CHECK failures in the
  // shared hash table); compile it in rather than exporting host symbols.
  std::string compiler = GetEnvString("SWOLE_CXX", options.compiler);
  std::string command = StringFormat(
      "%s -std=c++20 %s -shared -fPIC -DNDEBUG -I%s %s %s/common/logging.cc "
      "-o %s 2> %s.log",
      compiler.c_str(), options.extra_flags.c_str(), SWOLE_SOURCE_DIR,
      source_path.c_str(), SWOLE_SOURCE_DIR, library_path.c_str(),
      base.c_str());
  int rc = std::system(command.c_str());
  if (rc != 0) {
    std::string log;
    std::ifstream log_in(base + ".log");
    if (log_in) {
      log.assign(std::istreambuf_iterator<char>(log_in),
                 std::istreambuf_iterator<char>());
    }
    return Status::Internal(StringFormat(
        "JIT compile failed (rc=%d): %s\n%s", rc, command.c_str(),
        log.substr(0, 2000).c_str()));
  }

  void* handle = ::dlopen(library_path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (handle == nullptr) {
    return Status::Internal(
        StringFormat("dlopen failed: %s", ::dlerror()));
  }
  void* entry = ::dlsym(handle, kEntryPoint);
  if (entry == nullptr) {
    ::dlclose(handle);
    return Status::Internal(
        StringFormat("dlsym(%s) failed: %s", kEntryPoint, ::dlerror()));
  }

  auto compiled = std::unique_ptr<CompiledKernel>(new CompiledKernel());
  compiled->kernel_ = std::move(kernel);
  compiled->library_path_ = library_path;
  compiled->source_path_ = source_path;
  compiled->handle_ = handle;
  compiled->entry_ = entry;
  for (const AggSpec& agg : plan.aggs) {
    compiled->agg_names_.push_back(agg.name);
  }
  if (!options.keep_artifacts) {
    // The .so stays mapped after unlink; sources removed.
    std::remove(source_path.c_str());
    std::remove((base + ".log").c_str());
    std::remove(library_path.c_str());
  }
  return compiled;
}

Result<QueryResult> CompiledKernel::Run(const Catalog& catalog) const {
  // Bind column slots.
  std::vector<const void*> columns;
  for (const ColumnSlot& slot : kernel_.column_slots) {
    SWOLE_ASSIGN_OR_RETURN(const Table* table, catalog.GetTable(slot.table));
    SWOLE_ASSIGN_OR_RETURN(const Column* column,
                           table->GetColumn(slot.column));
    if (column->type().physical != slot.physical) {
      return Status::TypeError(StringFormat(
          "kernel slot %s.%s expects %s", slot.table.c_str(),
          slot.column.c_str(), PhysicalTypeName(slot.physical)));
    }
    const void* data = DispatchPhysical(
        column->type().physical,
        [&]<typename T>() -> const void* { return column->Data<T>(); });
    columns.push_back(data);
  }

  std::vector<int64_t> table_rows;
  for (const std::string& name : kernel_.table_slots) {
    SWOLE_ASSIGN_OR_RETURN(const Table* table, catalog.GetTable(name));
    table_rows.push_back(table->num_rows());
  }

  std::vector<const uint32_t*> fk_offsets;
  for (size_t s = 0; s < kernel_.fk_slots_table.size(); ++s) {
    SWOLE_ASSIGN_OR_RETURN(const Table* table,
                           catalog.GetTable(kernel_.fk_slots_table[s]));
    SWOLE_ASSIGN_OR_RETURN(const FkIndex* index,
                           table->GetFkIndex(kernel_.fk_slots_column[s]));
    fk_offsets.push_back(index->offsets());
  }

  QueryResult result;
  result.agg_names = agg_names_;
  std::vector<int64_t> scalar(kernel_.num_aggs, 0);

  struct EmitContext {
    QueryResult* result;
  } emit_context{&result};

  KernelIO io;
  io.columns = columns.data();
  io.table_rows = table_rows.data();
  io.fk_offsets = fk_offsets.data();
  io.scalar_out = scalar.data();
  io.group_ctx = &emit_context;
  io.emit_group = [](void* ctx, int64_t key, const int64_t* aggs) {
    auto* emit = static_cast<EmitContext*>(ctx);
    emit->result->AddGroup(key, aggs);
  };

  if (kernel_.grouped) {
    result.grouped = true;
    result.num_aggs = kernel_.num_aggs;
  }

  using EntryFn = void (*)(const KernelIO*);
  reinterpret_cast<EntryFn>(entry_)(&io);

  if (kernel_.grouped) {
    if (sort_groups_) result.SortGroups();
  } else {
    result.grouped = false;
    result.scalar = std::move(scalar);
  }
  return result;
}

Result<std::unique_ptr<CompiledKernel>> GenerateAndCompile(
    const QueryPlan& plan, const Catalog& catalog,
    const GeneratorOptions& gen_options, const JitOptions& jit_options) {
  SWOLE_ASSIGN_OR_RETURN(GeneratedKernel kernel,
                         GenerateKernel(plan, catalog, gen_options));
  return CompileKernel(std::move(kernel), plan, jit_options);
}

}  // namespace swole::codegen
