#include "codegen/kernel_cache.h"

#include <dlfcn.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "codegen/generator.h"
#include "common/checksum.h"
#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/string_util.h"

namespace swole::codegen {

SWOLE_REGISTER_FAULT_SITE("jit_dlopen", "kernel shared-object dlopen")
SWOLE_REGISTER_FAULT_SITE("jit_dlsym",
                          "kernel entry-point symbol resolution")

namespace {

// Sidecar carrying the XXH64 of the cached shared object, as 16 hex chars.
// A cached kernel is executable code: it is verified against this before
// any dlopen, and a mismatch (or a missing sidecar — a torn store, or an
// entry from before checksums existed) quarantines the entry and
// recompiles rather than executing bytes of unknown provenance.
std::string SumPath(const std::string& so_path) { return so_path + ".sum"; }

bool ReadStoredSum(const std::string& sum_path, uint64_t* out) {
  std::ifstream in(sum_path);
  std::string hex;
  if (!in || !(in >> hex) || hex.size() != 16) return false;
  char* end = nullptr;
  *out = std::strtoull(hex.c_str(), &end, 16);
  return end != nullptr && *end == '\0';
}

}  // namespace

KernelLibrary::~KernelLibrary() {
  if (handle_ != nullptr) ::dlclose(handle_);
}

Result<std::shared_ptr<KernelLibrary>> KernelLibrary::Load(
    const std::string& library_path) {
  SWOLE_FAULT_POINT("jit_dlopen",
                    Status::Internal("injected fault: jit_dlopen"));
  void* handle = ::dlopen(library_path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (handle == nullptr) {
    return Status::Internal(StringFormat("dlopen failed: %s", ::dlerror()));
  }
  if (FaultInjector::Global().ShouldFail("jit_dlsym")) {
    ::dlclose(handle);
    return Status::Internal("injected fault: jit_dlsym");
  }
  auto library = std::shared_ptr<KernelLibrary>(new KernelLibrary());
  const struct {
    const char* name;
    void** slot;
  } symbols[] = {
      {kBuildEntryPoint, &library->build_},
      {kThreadStateEntryPoint, &library->thread_state_},
      {kMorselEntryPoint, &library->morsel_},
      {kMergeEntryPoint, &library->merge_},
      {kFinishEntryPoint, &library->finish_},
      {kCancelCheckEntryPoint, &library->cancel_check_},
  };
  for (const auto& symbol : symbols) {
    void* entry = ::dlsym(handle, symbol.name);
    if (entry == nullptr) {
      std::string error = ::dlerror();
      ::dlclose(handle);
      return Status::Internal(StringFormat("dlsym(%s) failed: %s",
                                           symbol.name, error.c_str()));
    }
    *symbol.slot = entry;
  }
  library->handle_ = handle;
  library->library_path_ = library_path;
  return library;
}

std::string KernelCacheKey(const std::string& source,
                           const std::string& compiler,
                           const std::string& flags) {
  // Chain FNV-1a over the three components with distinct separators so
  // (source="a", flags="bc") and (source="ab", flags="c") cannot collide.
  uint64_t h = Fnv1aHash64(source);
  h = Fnv1aHash64("\x1f", h);
  h = Fnv1aHash64(compiler, h);
  h = Fnv1aHash64("\x1f", h);
  h = Fnv1aHash64(flags, h);
  return StringFormat("%016llx", static_cast<unsigned long long>(h));
}

KernelCache& KernelCache::Global() {
  static KernelCache* cache = new KernelCache();
  return *cache;
}

std::shared_ptr<KernelLibrary> KernelCache::Lookup(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : it->second;
}

void KernelCache::Insert(const std::string& key,
                         std::shared_ptr<KernelLibrary> library) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_[key] = std::move(library);
}

Result<std::shared_ptr<KernelLibrary>> KernelCache::LookupDisk(
    const std::string& dir, const std::string& key) {
  std::string path = StringFormat("%s/swole_kernel_%s.so", dir.c_str(),
                                  key.c_str());
  if (::access(path.c_str(), R_OK) != 0) {
    return std::shared_ptr<KernelLibrary>(nullptr);  // miss, not an error
  }
  std::string sum_path = SumPath(path);
  uint64_t stored = 0;
  const bool have_stored = ReadStoredSum(sum_path, &stored);
  Result<uint64_t> actual = Xxh64File(path);
  if (!have_stored || !actual.ok() || *actual != stored) {
    // Quarantine, don't delete: the corrupt object stays inspectable but
    // can never be picked up as a cache entry again.
    std::string quarantine =
        StringFormat("%s.corrupt.%d", path.c_str(), ::getpid());
    ::rename(path.c_str(), quarantine.c_str());
    ::unlink(sum_path.c_str());
    SWOLE_LOG(WARNING) << "kernel cache entry " << path
                       << (have_stored
                               ? " failed its content checksum"
                               : " has no readable checksum sidecar")
                       << "; quarantined to " << quarantine
                       << ", recompiling";
    return std::shared_ptr<KernelLibrary>(nullptr);  // treated as a miss
  }
  return KernelLibrary::Load(path);
}

Status KernelCache::StoreDisk(const std::string& dir, const std::string& key,
                              const std::string& library_path) {
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IOError(StringFormat("cannot create cache dir %s: %s",
                                        dir.c_str(), std::strerror(errno)));
  }
  std::string final_path = StringFormat("%s/swole_kernel_%s.so", dir.c_str(),
                                        key.c_str());
  std::string temp_path =
      StringFormat("%s.tmp.%d", final_path.c_str(), ::getpid());
  {
    std::ifstream in(library_path, std::ios::binary);
    if (!in) {
      return Status::IOError(
          StringFormat("cannot read %s", library_path.c_str()));
    }
    std::ofstream out(temp_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::IOError(
          StringFormat("cannot write %s", temp_path.c_str()));
    }
    out << in.rdbuf();
    if (!out.good()) {
      out.close();
      ::unlink(temp_path.c_str());
      return Status::IOError(
          StringFormat("short write to %s", temp_path.c_str()));
    }
  }
  ::chmod(temp_path.c_str(), 0755);
  if (::rename(temp_path.c_str(), final_path.c_str()) != 0) {
    ::unlink(temp_path.c_str());
    return Status::IOError(StringFormat("cannot rename into cache: %s",
                                        std::strerror(errno)));
  }

  // Checksum sidecar, written with the same temp-file + rename discipline
  // so a concurrent LookupDisk never reads a half-written sum. Until the
  // rename lands the entry has no sidecar and loads quarantine it — the
  // safe direction for executable content.
  SWOLE_ASSIGN_OR_RETURN(uint64_t sum, Xxh64File(final_path));
  std::string sum_path = SumPath(final_path);
  std::string sum_temp =
      StringFormat("%s.tmp.%d", sum_path.c_str(), ::getpid());
  {
    std::ofstream out(sum_temp, std::ios::trunc);
    if (!out) {
      return Status::IOError(
          StringFormat("cannot write %s", sum_temp.c_str()));
    }
    out << StringFormat("%016llx", static_cast<unsigned long long>(sum));
    if (!out.good()) {
      out.close();
      ::unlink(sum_temp.c_str());
      return Status::IOError(
          StringFormat("short write to %s", sum_temp.c_str()));
    }
  }
  if (::rename(sum_temp.c_str(), sum_path.c_str()) != 0) {
    ::unlink(sum_temp.c_str());
    return Status::IOError(StringFormat(
        "cannot rename checksum sidecar into cache: %s",
        std::strerror(errno)));
  }
  return Status::OK();
}

int64_t KernelCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(entries_.size());
}

void KernelCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

}  // namespace swole::codegen
