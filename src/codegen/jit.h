#ifndef SWOLE_CODEGEN_JIT_H_
#define SWOLE_CODEGEN_JIT_H_

#include <memory>
#include <string>
#include <vector>

#include "codegen/generator.h"
#include "codegen/kernel_cache.h"
#include "obs/metrics.h"
#include "plan/result.h"

// JIT driver: writes a generated translation unit to a temp directory,
// compiles it with the system C++ compiler, dlopens the result, and runs it
// against a catalog. This is the Daytona/HIQUE-style compile-to-shared-object
// pipeline; the generated code is real, inspectable C++ (keep the .cc around
// with keep_artifacts).
//
// The pipeline is built to degrade, never to take a query down with it:
//
//   kernel cache ──hit──────────────────────────────▶ run compiled kernel
//        │miss
//   compile -O3 -march=native ──fail/timeout──▶ -O2 ──▶ -O0   (retry ladder)
//        │all fail
//   ExecuteWithFallback ──▶ interpreted strategy engine ──▶ reference engine
//
// Compiles run in a fork/exec subprocess (common/subprocess.h) with a
// timeout — no shell, no hung compiler wedging the server. Every stage
// (workdir, source write, compile, dlopen, dlsym) is a fault-injection site
// (common/fault_injection.h, SWOLE_FAULT=jit_compile:1.0) so the failure
// paths are deterministically testable. Counters for all of it live in
// JitStats.

namespace swole::exec {
class QueryContext;
}  // namespace swole::exec

namespace swole::codegen {

struct JitOptions {
  // Compiler binary; the SWOLE_CXX env var overrides. A single executable
  // path — flags go in extra_flags / degrade_flags.
  std::string compiler = "c++";
  // First rung of the flag ladder.
  std::string extra_flags = "-O3 -march=native";
  // Successive rungs tried when a compile fails or times out (the
  // HeteroDB-style "default variant" degradation). Empty = no retries.
  std::vector<std::string> degrade_flags = {"-O2", "-O0"};
  // Directory for generated sources/objects; empty => a fresh temp dir,
  // removed again unless keep_artifacts is set.
  std::string work_dir;
  bool keep_artifacts = false;
  // Per-compile-attempt wall-clock budget; expired compilers are killed.
  // SWOLE_JIT_TIMEOUT_MS overrides; 0 disables the timeout.
  int64_t compile_timeout_ms = 60'000;
  // Consult/populate the in-memory kernel cache.
  bool use_cache = true;
  // On-disk cache directory shared across processes; empty disables the
  // disk layer. SWOLE_KERNEL_CACHE_DIR overrides.
  std::string disk_cache_dir;

  /// Rejects option values that could not survive an exec boundary: paths
  /// or flags containing whitespace (outside flag lists), quotes, or shell
  /// metacharacters. The compile pipeline never invokes a shell, so this is
  /// defense in depth, not an escaping layer.
  Status Validate() const;
};

/// Pipeline counters, process-wide. A stable view over the `jit.*`
/// instruments in obs::MetricsRegistry (which owns storage and the
/// shutdown dump); benches and tests read snapshots exactly as before the
/// registry existed. Each member is a forever-valid registry handle.
struct JitStats {
  obs::Counter& compiles;          // jit.compiles: subprocess invocations
  obs::Counter& compile_failures;  // jit.compile_failures
  obs::Counter& retries;           // jit.retries: ladder rungs after first
  obs::Counter& timeouts;          // jit.timeouts: attempts killed on timeout
  obs::Counter& cache_hits_memory;  // jit.cache_hits_memory
  obs::Counter& cache_hits_disk;    // jit.cache_hits_disk
  obs::Counter& fallbacks;         // jit.fallbacks: served interpreted
  obs::Counter& compile_ms;        // jit.compile_ms: total compiler wall time

  JitStats();  // binds the handles; use GlobalJitStats(), don't construct

  struct Snapshot {
    int64_t compiles = 0;
    int64_t compile_failures = 0;
    int64_t retries = 0;
    int64_t timeouts = 0;
    int64_t cache_hits_memory = 0;
    int64_t cache_hits_disk = 0;
    int64_t fallbacks = 0;
    int64_t compile_ms = 0;

    std::string ToString() const;
  };

  Snapshot snapshot() const;
  void Reset();
};

/// The process-wide stats instance used by the pipeline. The metrics
/// registry logs all non-zero instruments (including these) at shutdown.
JitStats& GlobalJitStats();

/// A compiled query kernel bound to the dlopened shared object. The shared
/// object itself (KernelLibrary) may be shared with the kernel cache and
/// other CompiledKernel instances.
class CompiledKernel {
 public:
  ~CompiledKernel() = default;

  CompiledKernel(const CompiledKernel&) = delete;
  CompiledKernel& operator=(const CompiledKernel&) = delete;

  /// Executes the kernel against `catalog`, binding column/table/fk-index
  /// slots by name. The catalog must contain the same tables the kernel
  /// was generated against; slot types and fk-index row counts are
  /// validated (InvalidArgument) before any generated code runs.
  /// `num_threads` == 0 defers to SWOLE_THREADS (default 1); the fact scan
  /// is dispatched as tile-aligned morsels with per-worker generated
  /// states merged in worker order, so results are bit-exact at every
  /// thread count.
  ///
  /// `query_ctx` attaches query-lifecycle governance (exec/query_context.h)
  /// to the kernel: its memory hook tracks the generated dim structures and
  /// group tables (sites jit_dim_bitmap / jit_dim_keyset / jit_groups) and
  /// its cancellation token is polled at the top of every generated morsel.
  /// When null, SWOLE_MEM_LIMIT / SWOLE_DEADLINE_MS still govern the run if
  /// set; with neither, the hooks stay null and the kernel runs exactly as
  /// before (identical generated source either way — cache keys are stable).
  Result<QueryResult> Run(const Catalog& catalog, int num_threads = 0,
                          exec::QueryContext* query_ctx = nullptr) const;

  const GeneratedKernel& kernel() const { return kernel_; }
  const std::string& library_path() const { return library_->library_path(); }
  const std::string& source_path() const { return source_path_; }
  /// True if this kernel came out of the cache instead of a fresh compile.
  bool from_cache() const { return from_cache_; }

 private:
  friend Result<std::unique_ptr<CompiledKernel>> CompileKernel(
      GeneratedKernel kernel, const QueryPlan& plan,
      const JitOptions& options);

  CompiledKernel() = default;

  GeneratedKernel kernel_;
  std::shared_ptr<KernelLibrary> library_;
  std::string source_path_;
  bool from_cache_ = false;
  // Result post-processing metadata captured from the plan.
  std::vector<std::string> agg_names_;
  bool sort_groups_ = true;
};

/// The kernel-cache key CompileKernel will use for `source` under
/// `options`, with environment overrides (SWOLE_CXX) resolved — what the
/// startup corpus (codegen/corpus.h) registers for warm-hit accounting.
std::string ResolvedKernelCacheKey(const std::string& source,
                                   const JitOptions& options = {});

/// Compiles a generated kernel into a shared object and loads it, going
/// through the cache and the flag-degradation retry ladder.
Result<std::unique_ptr<CompiledKernel>> CompileKernel(
    GeneratedKernel kernel, const QueryPlan& plan,
    const JitOptions& options = {});

/// One-stop: generate + compile for (plan, strategy).
Result<std::unique_ptr<CompiledKernel>> GenerateAndCompile(
    const QueryPlan& plan, const Catalog& catalog,
    const GeneratorOptions& gen_options, const JitOptions& jit_options = {});

/// How ExecuteWithFallback actually served a query.
struct ExecutionReport {
  bool used_jit = false;        // ran the compiled kernel
  bool used_fallback = false;   // ran an interpreted engine instead
  bool cache_hit = false;       // compiled kernel came from the cache
  // Which engine served the fallback: "strategy" or "reference".
  std::string fallback_engine;
  // Status string of the JIT failure that triggered the fallback.
  std::string fallback_reason;
};

/// Fault-tolerant execution: JIT the plan and run it; if generation,
/// compilation, loading, or kernel binding fails for any reason (including
/// Unimplemented plan shapes), transparently execute the plan on the
/// interpreted engine for gen_options.strategy — and on the reference
/// engine if even that refuses. A query only returns an error Status when
/// every layer has failed. Fallbacks are counted in GlobalJitStats().
///
/// Governance statuses are NOT infrastructure failures and do not trigger
/// the interpreter fallback: a cancelled or deadline-exceeded kernel run
/// returns its structured Status directly. The one exception is a memory
/// budget breach under the SWOLE strategy, which earns a single retry on
/// the interpreted data-centric engine under the same query context —
/// mirroring SwoleStrategy's own degradation path.
Result<QueryResult> ExecuteWithFallback(
    const QueryPlan& plan, const Catalog& catalog,
    const GeneratorOptions& gen_options = {},
    const JitOptions& jit_options = {}, ExecutionReport* report = nullptr);

}  // namespace swole::codegen

#endif  // SWOLE_CODEGEN_JIT_H_
