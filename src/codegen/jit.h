#ifndef SWOLE_CODEGEN_JIT_H_
#define SWOLE_CODEGEN_JIT_H_

#include <memory>
#include <string>

#include "codegen/generator.h"
#include "plan/result.h"

// JIT driver: writes a generated translation unit to a temp directory,
// compiles it with the system C++ compiler (-O3 -shared -fPIC), dlopens the
// result, and runs it against a catalog. This is the Daytona/HIQUE-style
// compile-to-shared-object pipeline; the generated code is real, inspectable
// C++ (keep the .cc around with keep_artifacts).

namespace swole::codegen {

struct JitOptions {
  // Compiler binary; SWOLE_CXX overrides.
  std::string compiler = "c++";
  std::string extra_flags = "-O3 -march=native";
  // Directory for generated sources/objects; empty => a fresh temp dir.
  std::string work_dir;
  bool keep_artifacts = false;
};

/// A compiled query kernel bound to the dlopened shared object.
class CompiledKernel {
 public:
  ~CompiledKernel();

  CompiledKernel(const CompiledKernel&) = delete;
  CompiledKernel& operator=(const CompiledKernel&) = delete;

  /// Executes the kernel against `catalog`, binding column/table/fk-index
  /// slots by name. The catalog must contain the same tables the kernel
  /// was generated against.
  Result<QueryResult> Run(const Catalog& catalog) const;

  const GeneratedKernel& kernel() const { return kernel_; }
  const std::string& library_path() const { return library_path_; }
  const std::string& source_path() const { return source_path_; }

 private:
  friend Result<std::unique_ptr<CompiledKernel>> CompileKernel(
      GeneratedKernel kernel, const QueryPlan& plan,
      const JitOptions& options);

  CompiledKernel() = default;

  GeneratedKernel kernel_;
  std::string library_path_;
  std::string source_path_;
  void* handle_ = nullptr;
  void* entry_ = nullptr;
  // Result post-processing metadata captured from the plan.
  std::vector<std::string> agg_names_;
  bool sort_groups_ = true;
};

/// Compiles a generated kernel into a shared object and loads it.
Result<std::unique_ptr<CompiledKernel>> CompileKernel(
    GeneratedKernel kernel, const QueryPlan& plan,
    const JitOptions& options = {});

/// One-stop: generate + compile for (plan, strategy).
Result<std::unique_ptr<CompiledKernel>> GenerateAndCompile(
    const QueryPlan& plan, const Catalog& catalog,
    const GeneratorOptions& gen_options, const JitOptions& jit_options = {});

}  // namespace swole::codegen

#endif  // SWOLE_CODEGEN_JIT_H_
