#include "codegen/generator.h"

#include <set>

#include "common/logging.h"
#include "common/string_util.h"
#include "cost/string_placement.h"
#include "storage/table.h"

namespace swole::codegen {

namespace {

// Indented source writer.
class CodeWriter {
 public:
  void Line(const std::string& text) {
    if (!text.empty()) out_.append(indent_ * 2, ' ');
    out_ += text;
    out_ += '\n';
  }
  void Open(const std::string& text) {
    Line(text);
    ++indent_;
  }
  void Close(const std::string& text = "}") {
    --indent_;
    Line(text);
  }
  std::string&& Take() { return std::move(out_); }

 private:
  std::string out_;
  int indent_ = 0;
};

// Renders `s` as a C string literal for the generated unit. Quotes,
// backslashes, and non-printable bytes use 3-digit octal escapes — hex
// escapes are greedy ("\x6C" followed by 'a' reads as \x6CA), octal with a
// fixed width never is — so arbitrary LIKE patterns (embedded NUL,
// non-ASCII bytes) round-trip exactly.
std::string CStringLiteral(const std::string& s) {
  std::string out = "\"";
  for (unsigned char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += static_cast<char>(c);
    } else if (c >= 0x20 && c < 0x7F) {
      out += static_cast<char>(c);
    } else {
      out += StringFormat("\\%03o", static_cast<int>(c));
    }
  }
  out += '"';
  return out;
}

// Tracks column slot assignment per (table, column).
class SlotTable {
 public:
  explicit SlotTable(const Catalog& catalog) : catalog_(catalog) {}

  // Variable name of a column's typed pointer, registering it on first use.
  std::string Column(const std::string& table, const std::string& column) {
    for (size_t s = 0; s < slots_.size(); ++s) {
      if (slots_[s].table == table && slots_[s].column == column) {
        return StringFormat("c%d", static_cast<int>(s));
      }
    }
    ColumnSlot slot;
    slot.table = table;
    slot.column = column;
    slot.physical =
        catalog_.TableRef(table).ColumnRef(column).type().physical;
    slots_.push_back(slot);
    return StringFormat("c%d", static_cast<int>(slots_.size() - 1));
  }

  // Variable name of a table's row count, registering it on first use.
  std::string Rows(const std::string& table) {
    for (size_t s = 0; s < tables_.size(); ++s) {
      if (tables_[s] == table) {
        return StringFormat("rows%d", static_cast<int>(s));
      }
    }
    tables_.push_back(table);
    return StringFormat("rows%d", static_cast<int>(tables_.size() - 1));
  }

  // Variable name of a dim's fk offset array (positional joins).
  // `ref_table` is the referenced primary-key table, recorded so Run can
  // bounds-check the index against the bound catalog.
  std::string FkOffsets(const std::string& table, const std::string& fk,
                        const std::string& ref_table) {
    for (size_t s = 0; s < fk_tables_.size(); ++s) {
      if (fk_tables_[s] == table && fk_columns_[s] == fk) {
        return StringFormat("offs%d", static_cast<int>(s));
      }
    }
    fk_tables_.push_back(table);
    fk_columns_.push_back(fk);
    fk_ref_tables_.push_back(ref_table);
    return StringFormat("offs%d", static_cast<int>(fk_tables_.size() - 1));
  }

  // Slot index of a raw-text column's (arena, offsets) pointer pair,
  // registering it on first use. Declared as tb%d / to%d.
  int Text(const std::string& table, const std::string& column) {
    for (size_t s = 0; s < text_tables_.size(); ++s) {
      if (text_tables_[s] == table && text_columns_[s] == column) {
        return static_cast<int>(s);
      }
    }
    text_tables_.push_back(table);
    text_columns_.push_back(column);
    return static_cast<int>(text_tables_.size() - 1);
  }

  // Index of the file-scope compiled-LIKE static for (pattern, negated),
  // registering it on first use. Declared as lk%d.
  int Like(const Expr& e) {
    for (size_t s = 0; s < like_patterns_.size(); ++s) {
      if (like_patterns_[s] == e.like_pattern &&
          like_negated_[s] == e.like_negated) {
        return static_cast<int>(s);
      }
    }
    like_patterns_.push_back(e.like_pattern);
    like_negated_.push_back(e.like_negated);
    return static_cast<int>(like_patterns_.size() - 1);
  }

  void EmitDeclarations(CodeWriter* w) const {
    for (size_t s = 0; s < slots_.size(); ++s) {
      w->Line(StringFormat(
          "const %s* __restrict__ c%d = static_cast<const %s*>("
          "io->columns[%d]);",
          PhysicalTypeCName(slots_[s].physical), static_cast<int>(s),
          PhysicalTypeCName(slots_[s].physical), static_cast<int>(s)));
    }
    for (size_t s = 0; s < tables_.size(); ++s) {
      w->Line(StringFormat("const int64_t rows%d = io->table_rows[%d];",
                           static_cast<int>(s), static_cast<int>(s)));
    }
    for (size_t s = 0; s < fk_tables_.size(); ++s) {
      w->Line(StringFormat(
          "const uint32_t* __restrict__ offs%d = io->fk_offsets[%d];",
          static_cast<int>(s), static_cast<int>(s)));
    }
    for (size_t s = 0; s < text_tables_.size(); ++s) {
      w->Line(StringFormat(
          "const uint8_t* __restrict__ tb%d = "
          "static_cast<const uint8_t*>(io->text_bytes[%d]);",
          static_cast<int>(s), static_cast<int>(s)));
      w->Line(StringFormat(
          "const uint32_t* __restrict__ to%d = io->text_offsets[%d];",
          static_cast<int>(s), static_cast<int>(s)));
    }
  }

  // File-scope compiled-LIKE statics. The pattern is passed with an
  // explicit length so embedded NUL bytes survive the round trip.
  void EmitLikeStatics(CodeWriter* w) const {
    for (size_t s = 0; s < like_patterns_.size(); ++s) {
      w->Line(StringFormat(
          "static const swole::simd::CompiledLike lk%d = "
          "swole::simd::CompileLike(std::string_view(%s, %d), %s);",
          static_cast<int>(s), CStringLiteral(like_patterns_[s]).c_str(),
          static_cast<int>(like_patterns_[s].size()),
          like_negated_[s] ? "true" : "false"));
    }
  }

  bool HasLikes() const { return !like_patterns_.empty(); }

  std::vector<ColumnSlot> slots_;
  std::vector<std::string> tables_;
  std::vector<std::string> fk_tables_;
  std::vector<std::string> fk_columns_;
  std::vector<std::string> fk_ref_tables_;
  std::vector<std::string> text_tables_;
  std::vector<std::string> text_columns_;
  std::vector<std::string> like_patterns_;
  std::vector<bool> like_negated_;

 private:
  const Catalog& catalog_;
};

enum class BoolStyle { kShortCircuit, kBranchFree };

// Checks that an expression over `table` stays inside the codegen subset.
// LIKE is supported only over raw-text (LogicalType::kText) columns, where
// it lowers to the compiled string kernels; dictionary LIKE stays with the
// interpreted engines.
Status CheckExprSupported(const Expr& expr, const Catalog& catalog,
                          const std::string& table) {
  switch (expr.kind) {
    case ExprKind::kColumnRef:
    case ExprKind::kLiteral:
      return Status::OK();
    case ExprKind::kBinary:
    case ExprKind::kNot:
      for (const ExprPtr& child : expr.children) {
        SWOLE_RETURN_NOT_OK(CheckExprSupported(*child, catalog, table));
      }
      return Status::OK();
    case ExprKind::kInList:
      return CheckExprSupported(*expr.children[0], catalog, table);
    case ExprKind::kLike: {
      const Expr& target = *expr.children[0];
      if (target.kind == ExprKind::kColumnRef) {
        auto col = catalog.TableRef(table).GetColumn(target.column);
        if (col.ok() && (*col)->type().logical == LogicalType::kText) {
          return Status::OK();
        }
      }
      return Status::Unimplemented(StringFormat(
          "codegen: LIKE is only supported over raw-text columns: %s",
          expr.ToString().c_str()));
    }
    default:
      return Status::Unimplemented(StringFormat(
          "codegen: unsupported expression: %s", expr.ToString().c_str()));
  }
}

// Emits a C++ expression over table `table` at row expression `row`.
// Boolean subexpressions yield int 0/1.
std::string EmitExpr(const Expr& expr, const std::string& table,
                     const std::string& row, SlotTable* slots,
                     BoolStyle style) {
  switch (expr.kind) {
    case ExprKind::kColumnRef:
      return StringFormat("(int64_t)%s[%s]",
                          slots->Column(table, expr.column).c_str(),
                          row.c_str());
    case ExprKind::kLiteral:
      return StringFormat("INT64_C(%lld)",
                          static_cast<long long>(expr.literal));
    case ExprKind::kBinary: {
      std::string lhs =
          EmitExpr(*expr.children[0], table, row, slots, style);
      std::string rhs =
          EmitExpr(*expr.children[1], table, row, slots, style);
      const char* op = BinaryOpToken(expr.op);
      if (style == BoolStyle::kBranchFree) {
        if (expr.op == BinaryOp::kAnd) op = "&";
        if (expr.op == BinaryOp::kOr) op = "|";
      }
      if (expr.op == BinaryOp::kAnd || expr.op == BinaryOp::kOr) {
        // Logical operands are already 0/1 ints; parenthesize heavily.
        return StringFormat("((%s) %s (%s))", lhs.c_str(), op, rhs.c_str());
      }
      if (IsComparisonOp(expr.op)) {
        return StringFormat("((int64_t)((%s) %s (%s)))", lhs.c_str(), op,
                            rhs.c_str());
      }
      return StringFormat("((%s) %s (%s))", lhs.c_str(), op, rhs.c_str());
    }
    case ExprKind::kNot:
      return StringFormat(
          "((%s) == 0 ? INT64_C(1) : INT64_C(0))",
          EmitExpr(*expr.children[0], table, row, slots, style).c_str());
    case ExprKind::kLike: {
      // Compiled single-row LIKE over the raw arena; NOT LIKE is folded
      // into the compiled program, so no negation here.
      const int t = slots->Text(table, expr.children[0]->column);
      const int lk = slots->Like(expr);
      return StringFormat(
          "((int64_t)swole::kernels::StrLikeOne(tb%d, to%d, %s, lk%d))", t,
          t, row.c_str(), lk);
    }
    case ExprKind::kInList: {
      std::string value =
          EmitExpr(*expr.children[0], table, row, slots, style);
      std::string out = "(";
      const char* join =
          style == BoolStyle::kBranchFree ? " | " : " || ";
      for (size_t i = 0; i < expr.in_list.size(); ++i) {
        if (i > 0) out += join;
        out += StringFormat("(int64_t)((%s) == INT64_C(%lld))",
                            value.c_str(),
                            static_cast<long long>(expr.in_list[i]));
      }
      out += ")";
      return out;
    }
    default:
      SWOLE_CHECK(false) << "unreachable (checked by CheckExprSupported)";
      return "";
  }
}

Status CheckPlanSupported(const QueryPlan& plan, const Catalog& catalog) {
  if (!plan.reverse_dims.empty() || plan.disjunctive.has_value() ||
      !plan.paths.empty() || !plan.path_equalities.empty() ||
      plan.group_seed.has_value() || plan.histogram_of_agg0 ||
      !plan.group_by_path.empty()) {
    return Status::Unimplemented(
        "codegen: plan uses features outside the codegen subset "
        "(paths/reverse/disjunctive/seed/histogram)");
  }
  if (plan.fact_filter != nullptr) {
    SWOLE_RETURN_NOT_OK(
        CheckExprSupported(*plan.fact_filter, catalog, plan.fact_table));
  }
  for (const DimJoin& dim : plan.dims) {
    if (!dim.children.empty()) {
      return Status::Unimplemented("codegen: nested dimension joins");
    }
    if (dim.filter != nullptr) {
      SWOLE_RETURN_NOT_OK(
          CheckExprSupported(*dim.filter, catalog, dim.hop.to_table));
    }
  }
  if (plan.group_by != nullptr) {
    SWOLE_RETURN_NOT_OK(
        CheckExprSupported(*plan.group_by, catalog, plan.fact_table));
  }
  for (const AggSpec& agg : plan.aggs) {
    if (agg.kind != AggKind::kSum && agg.kind != AggKind::kCount) {
      return Status::Unimplemented("codegen: only sum/count aggregates");
    }
    if (!agg.path_factor.empty()) {
      return Status::Unimplemented("codegen: path factors");
    }
    if (agg.expr != nullptr) {
      SWOLE_RETURN_NOT_OK(
          CheckExprSupported(*agg.expr, catalog, plan.fact_table));
    }
  }
  return Status::OK();
}

// The per-aggregate value expression at fact row `row` ("1" for count).
std::string AggValueExpr(const AggSpec& agg, const std::string& fact,
                         const std::string& row, SlotTable* slots,
                         BoolStyle style) {
  if (agg.kind == AggKind::kCount) return "INT64_C(1)";
  return EmitExpr(*agg.expr, fact, row, slots, style);
}

// For value-masked scalar aggregation, simple shapes lower to the
// dispatched SIMD kernels (exec/simd.h) instead of a hand-rolled lane
// loop: count -> CountBytes, sum(col) -> SumMasked, sum(a*b) ->
// SumProductMasked. Returns the full `aggN += ...;` statement, or empty if
// the expression is outside the kernel shapes (it then stays in the
// per-lane loop; int64 wrap-around addition is associative, so the
// lane-reordered kernel reductions are bit-exact either way).
std::string MaskedAggKernelStmt(const AggSpec& agg, int index,
                                const std::string& fact, SlotTable* slots) {
  if (agg.kind == AggKind::kCount) {
    return StringFormat("agg%d += swole::kernels::CountBytes(cmp, len);",
                        index);
  }
  const Expr& e = *agg.expr;
  if (e.kind == ExprKind::kColumnRef) {
    return StringFormat(
        "agg%d += swole::kernels::SumMasked(%s + i, cmp, len);", index,
        slots->Column(fact, e.column).c_str());
  }
  if (e.kind == ExprKind::kBinary && e.op == BinaryOp::kMul &&
      e.children[0]->kind == ExprKind::kColumnRef &&
      e.children[1]->kind == ExprKind::kColumnRef) {
    std::string a = slots->Column(fact, e.children[0]->column);
    std::string b = slots->Column(fact, e.children[1]->column);
    return StringFormat(
        "agg%d += swole::kernels::SumProductMasked(%s + i, %s + i, cmp, "
        "len);",
        index, a.c_str(), b.c_str());
  }
  return std::string();
}

// Maps a comparison BinaryOp to the emitted kernels::CmpOp name;
// `swapped` mirrors the op for literal-OP-column leaves (lit < col is
// col > lit).
const char* CmpOpName(BinaryOp op, bool swapped) {
  switch (op) {
    case BinaryOp::kLt:
      return swapped ? "kGt" : "kLt";
    case BinaryOp::kLe:
      return swapped ? "kGe" : "kLe";
    case BinaryOp::kGt:
      return swapped ? "kLt" : "kGt";
    case BinaryOp::kGe:
      return swapped ? "kLe" : "kGe";
    case BinaryOp::kEq:
      return "kEq";
    default:
      return "kNe";
  }
}

// Splits the prepass predicate's And-tree into column-vs-literal
// comparison leaves — lowered to the width-native CompareLit kernel so the
// generated code reads the column at its physical width — top-level LIKE
// leaves — lowered to the StrLikeTile string kernel — and a residual
// evaluated in the branch-free lane loop. 0/1 bytes AND bitwise-identically
// in any order, so the decomposition cannot change the mask.
void SplitPrepassConjuncts(const Expr& e, std::vector<const Expr*>* simple,
                           std::vector<const Expr*>* likes,
                           std::vector<const Expr*>* rest) {
  if (e.kind == ExprKind::kBinary && e.op == BinaryOp::kAnd) {
    SplitPrepassConjuncts(*e.children[0], simple, likes, rest);
    SplitPrepassConjuncts(*e.children[1], simple, likes, rest);
    return;
  }
  if (e.kind == ExprKind::kBinary && IsComparisonOp(e.op) &&
      ((e.children[0]->kind == ExprKind::kColumnRef &&
        e.children[1]->kind == ExprKind::kLiteral) ||
       (e.children[0]->kind == ExprKind::kLiteral &&
        e.children[1]->kind == ExprKind::kColumnRef))) {
    simple->push_back(&e);
    return;
  }
  if (e.kind == ExprKind::kLike) {
    likes->push_back(&e);
    return;
  }
  rest->push_back(&e);
}

}  // namespace

Result<GeneratedKernel> GenerateKernel(const QueryPlan& plan,
                                       const Catalog& catalog,
                                       const GeneratorOptions& options) {
  SWOLE_RETURN_NOT_OK(ValidatePlan(plan, catalog));
  SWOLE_RETURN_NOT_OK(CheckPlanSupported(plan, catalog));
  if (options.strategy == StrategyKind::kRof) {
    return Status::Unimplemented(
        "codegen: ROF emission is not implemented (the paper's evaluation "
        "also excludes ROF); use the interpreted engine");
  }

  const bool grouped = plan.HasGroupBy();
  const int naggs = static_cast<int>(plan.aggs.size());
  const std::string& fact = plan.fact_table;
  const bool swole = options.strategy == StrategyKind::kSwole;
  const bool dc = options.strategy == StrategyKind::kDataCentric;
  // SWOLE falls back to the hybrid loop shape when the cost model says so.
  const bool masked =
      swole && options.agg_choice != AggChoice::kHybridFallback;
  const bool key_masked =
      masked && grouped && options.agg_choice == AggChoice::kKeyMasking;

  // Access-aware string placement: the same split every interpreted engine
  // honors (cost/string_placement.h). The scan evaluates scan_filter;
  // pulled conjuncts refine after every other qualification. Placement
  // changes the emitted source — and thus the kernel-cache key — but AND
  // commutes, so results are identical either way.
  const StringPredSplit str_split =
      DecideStringPlacement(plan, catalog, CostProfile::Default());
  const Expr* scan_filter = str_split.scan_filter.get();

  SlotTable slots(catalog);
  // Bodies of the build and morsel entry points; thread-state creation,
  // merge, and finish are assembled directly in the unit below.
  CodeWriter build;
  CodeWriter body;

  // Register the fact row-count slot first (the host binds table_rows in
  // slot order and reads the fact count for morsel dispatch).
  slots.Rows(fact);

  // Shared (build-phase) state: one field per dimension structure,
  // constructed with the dim row counts, read-only during the probe.
  std::vector<std::string> shared_fields;
  std::vector<std::string> shared_params;
  std::vector<std::string> shared_inits;
  std::vector<std::string> shared_args;  // row-count vars at the new-site
  // Governance hook attachments, emitted right after shared-state
  // construction (before the build loops fill the structures, so growth is
  // charged as it happens).
  std::vector<std::string> hook_attach;

  // ---- Build phase ----
  for (size_t d = 0; d < plan.dims.size(); ++d) {
    const DimJoin& dim = plan.dims[d];
    const std::string& dt = dim.hop.to_table;
    std::string dim_rows = slots.Rows(dt);
    shared_params.push_back(StringFormat("int64_t r%d", static_cast<int>(d)));
    shared_args.push_back(dim_rows);
    if (swole) {
      // Positional bitmap, built sequentially with an unconditional store
      // of the predicate result (§III-D).
      shared_fields.push_back(StringFormat("swole::PositionalBitmap bm%d;",
                                           static_cast<int>(d)));
      shared_inits.push_back(
          StringFormat("bm%d(r%d)", static_cast<int>(d),
                       static_cast<int>(d)));
      hook_attach.push_back(StringFormat(
          "shared->bm%d.SetMemHook(io->mem_charge, io->governor, "
          "\"jit_dim_bitmap\");",
          static_cast<int>(d)));
      build.Line(StringFormat(
          "swole::PositionalBitmap& bm%d = shared->bm%d;",
          static_cast<int>(d), static_cast<int>(d)));
      build.Open(StringFormat("for (int64_t i = 0; i < %s; ++i) {",
                              dim_rows.c_str()));
      std::string pred =
          dim.filter != nullptr
              ? EmitExpr(*dim.filter, dt, "i", &slots,
                         BoolStyle::kBranchFree)
              : std::string("INT64_C(1)");
      build.Line(StringFormat("bm%d.SetTo(i, (%s) != 0);",
                              static_cast<int>(d), pred.c_str()));
      build.Close();
      slots.FkOffsets(fact, dim.hop.fk_column, dim.hop.to_table);
    } else {
      // Hash set of qualifying primary keys, probed by value.
      shared_fields.push_back(
          StringFormat("swole::HashTable dim%d;", static_cast<int>(d)));
      shared_inits.push_back(StringFormat("dim%d(0, r%d)",
                                          static_cast<int>(d),
                                          static_cast<int>(d)));
      hook_attach.push_back(StringFormat(
          "shared->dim%d.SetMemHook(io->mem_charge, io->governor, "
          "\"jit_dim_keyset\");",
          static_cast<int>(d)));
      build.Line(StringFormat("swole::HashTable& dim%d = shared->dim%d;",
                              static_cast<int>(d), static_cast<int>(d)));
      build.Open(StringFormat("for (int64_t i = 0; i < %s; ++i) {",
                              dim_rows.c_str()));
      if (dim.filter != nullptr) {
        build.Line(StringFormat(
            "if (!(%s)) continue;",
            EmitExpr(*dim.filter, dt, "i", &slots,
                     dc ? BoolStyle::kShortCircuit : BoolStyle::kBranchFree)
                .c_str()));
      }
      build.Line(StringFormat(
          "dim%d.GetOrInsert(%s);", static_cast<int>(d),
          EmitExpr(*Col(dim.hop.to_pk_column), dt, "i", &slots,
                   BoolStyle::kShortCircuit)
              .c_str()));
      build.Close();
    }
  }

  // ---- Per-thread probe state (aliases at the top of the morsel body) ----
  for (size_t d = 0; d < plan.dims.size(); ++d) {
    if (swole) {
      body.Line(StringFormat(
          "const swole::PositionalBitmap& bm%d = shared->bm%d;",
          static_cast<int>(d), static_cast<int>(d)));
    } else {
      body.Line(StringFormat(
          "const swole::HashTable& dim%d = shared->dim%d;",
          static_cast<int>(d), static_cast<int>(d)));
    }
  }
  if (grouped) {
    body.Line("swole::HashTable& groups = state->groups;");
  } else {
    // Local accumulators, folded into the thread state after the loop.
    for (int a = 0; a < naggs; ++a) {
      body.Line(StringFormat("int64_t agg%d = 0;", a));
    }
  }

  // ---- Probe loop ----
  if (dc) {
    // Fig. 1 (top): one fused tuple-at-a-time loop with branching.
    body.Open("for (int64_t i = morsel_begin; i < morsel_end; ++i) {");
    if (scan_filter != nullptr) {
      body.Line(StringFormat(
          "if (!(%s)) continue;",
          EmitExpr(*scan_filter, fact, "i", &slots,
                   BoolStyle::kShortCircuit)
              .c_str()));
    }
    for (size_t d = 0; d < plan.dims.size(); ++d) {
      body.Line(StringFormat(
          "if (!dim%d.Contains(%s)) continue;", static_cast<int>(d),
          EmitExpr(*Col(plan.dims[d].hop.fk_column), fact, "i", &slots,
                   BoolStyle::kShortCircuit)
              .c_str()));
    }
    // Pulled string conjuncts run last: only rows that survived every
    // cheaper qualification touch the arena.
    for (const Expr* pred : str_split.pulled) {
      body.Line(StringFormat(
          "if (!(%s)) continue;",
          EmitExpr(*pred, fact, "i", &slots, BoolStyle::kShortCircuit)
              .c_str()));
    }
    if (grouped) {
      body.Line(StringFormat(
          "int64_t* p = groups.GetOrInsert(%s);",
          EmitExpr(*plan.group_by, fact, "i", &slots,
                   BoolStyle::kShortCircuit)
              .c_str()));
      body.Line("p[0] += 1;");
      for (int a = 0; a < naggs; ++a) {
        body.Line(StringFormat("p[%d] += %s;", 1 + a,
                               AggValueExpr(plan.aggs[a], fact, "i", &slots,
                                            BoolStyle::kShortCircuit)
                                   .c_str()));
      }
    } else {
      for (int a = 0; a < naggs; ++a) {
        body.Line(StringFormat("agg%d += %s;", a,
                               AggValueExpr(plan.aggs[a], fact, "i", &slots,
                                            BoolStyle::kShortCircuit)
                                   .c_str()));
      }
    }
    body.Close();
  } else {
    // Tiled loop shared by hybrid and SWOLE. The prepass predicate's
    // And-tree is split up front: column-vs-literal leaves lower to the
    // width-native CompareLit kernel (reading the column at its physical
    // width), anything else stays in the branch-free lane loop.
    std::vector<const Expr*> pre_simple;
    std::vector<const Expr*> pre_likes;
    std::vector<const Expr*> pre_rest;
    if (scan_filter != nullptr) {
      SplitPrepassConjuncts(*scan_filter, &pre_simple, &pre_likes,
                            &pre_rest);
    }
    const size_t mask_producers =
        pre_simple.size() + pre_likes.size() + (pre_rest.empty() ? 0 : 1);
    body.Line(StringFormat("constexpr int64_t kTile = %lld;",
                           static_cast<long long>(options.tile_size)));
    body.Line("uint8_t cmp[kTile];");
    if (mask_producers > 1) body.Line("uint8_t cmp2[kTile];");
    if (!masked) body.Line("int32_t idx[kTile];");
    // Hash-table batch buffers: gathered probe keys and, for group-bys,
    // the payload pointers handed back by GetOrInsertBatch.
    const bool batch_dims = !masked && !swole && !plan.dims.empty();
    if (grouped || batch_dims) body.Line("int64_t keys[kTile];");
    if (grouped) body.Line("int64_t* ptrs[kTile];");
    body.Open("for (int64_t i = morsel_begin; i < morsel_end; i += kTile) {");
    body.Line(
        "const int64_t len = "
        "morsel_end - i < kTile ? morsel_end - i : kTile;");

    // Prepass: branch-free predicate evaluation into cmp (Fig. 1 middle).
    // Lowered comparison leaves run one dispatched kernel each and AND
    // into the mask; 0/1 bytes conjoin bitwise-identically in any order.
    if (mask_producers == 0) {
      body.Open("for (int64_t j = 0; j < len; ++j) {");
      body.Line("cmp[j] = (uint8_t)1;");
      body.Close();
    } else {
      bool first = true;
      for (const Expr* leaf : pre_simple) {
        const bool swapped = leaf->children[0]->kind == ExprKind::kLiteral;
        const Expr& col = swapped ? *leaf->children[1] : *leaf->children[0];
        const Expr& lit = swapped ? *leaf->children[0] : *leaf->children[1];
        body.Line(StringFormat(
            "swole::kernels::CompareLit(swole::kernels::CmpOp::%s, %s + i, "
            "INT64_C(%lld), %s, len);",
            CmpOpName(leaf->op, swapped),
            slots.Column(fact, col.column).c_str(),
            static_cast<long long>(lit.literal), first ? "cmp" : "cmp2"));
        if (!first) body.Line("swole::kernels::AndBytes(cmp, cmp2, len);");
        first = false;
      }
      for (const Expr* leaf : pre_likes) {
        // Pushed LIKE: the unconditional tile kernel — every row in the
        // tile pays the sequential arena match (the pushdown access
        // pattern the cost model priced).
        const int t = slots.Text(fact, leaf->children[0]->column);
        const int lk = slots.Like(*leaf);
        body.Line(StringFormat(
            "swole::kernels::StrLikeTile(tb%d, to%d, i, len, lk%d, %s);",
            t, t, lk, first ? "cmp" : "cmp2"));
        if (!first) body.Line("swole::kernels::AndBytes(cmp, cmp2, len);");
        first = false;
      }
      if (!pre_rest.empty()) {
        const char* target = first ? "cmp" : "cmp2";
        body.Open("for (int64_t j = 0; j < len; ++j) {");
        std::string pred;
        for (size_t r = 0; r < pre_rest.size(); ++r) {
          if (r > 0) pred += " & ";
          pred += StringFormat(
              "((%s) != 0)",
              EmitExpr(*pre_rest[r], fact, "i + j", &slots,
                       BoolStyle::kBranchFree)
                  .c_str());
        }
        body.Line(
            StringFormat("%s[j] = (uint8_t)(%s);", target, pred.c_str()));
        body.Close();
        if (!first) body.Line("swole::kernels::AndBytes(cmp, cmp2, len);");
      }
    }

    if (swole) {
      // Positional bitmap probes fold into the mask (predicate pullup).
      for (size_t d = 0; d < plan.dims.size(); ++d) {
        std::string offs =
            slots.FkOffsets(fact, plan.dims[d].hop.fk_column,
                            plan.dims[d].hop.to_table);
        body.Open("for (int64_t j = 0; j < len; ++j) {");
        body.Line(StringFormat("cmp[j] &= (uint8_t)bm%d.Test(%s[i + j]);",
                               static_cast<int>(d), offs.c_str()));
        body.Close();
      }
    }

    if (masked) {
      // Pulled string conjuncts refine the mask after every other
      // qualification; the guarded kernel skips dead lanes, so only
      // survivors touch the arena (the pullup access pattern).
      for (const Expr* pred : str_split.pulled) {
        const int t = slots.Text(fact, pred->children[0]->column);
        const int lk = slots.Like(*pred);
        body.Line(StringFormat(
            "swole::kernels::StrLikeTileAnd(tb%d, to%d, i, len, lk%d, "
            "cmp);",
            t, t, lk));
      }
    }

    if (masked) {
      if (!grouped) {
        // Value masking (Fig. 3): unconditional aggregation, masked adds.
        // Simple shapes go through the dispatched SIMD kernels; anything
        // else stays in a branch-free lane loop.
        std::vector<int> loop_aggs;
        for (int a = 0; a < naggs; ++a) {
          std::string stmt =
              MaskedAggKernelStmt(plan.aggs[a], a, fact, &slots);
          if (stmt.empty()) {
            loop_aggs.push_back(a);
          } else {
            body.Line(stmt);
          }
        }
        if (!loop_aggs.empty()) {
          body.Open("for (int64_t j = 0; j < len; ++j) {");
          for (int a : loop_aggs) {
            body.Line(StringFormat(
                "agg%d += (%s) * cmp[j];", a,
                AggValueExpr(plan.aggs[a], fact, "i + j", &slots,
                             BoolStyle::kBranchFree)
                    .c_str()));
          }
          body.Close();
        }
      } else {
        // Group keys are materialized per tile and probed with one
        // software-pipelined GetOrInsertBatch (capacity is reserved up
        // front, so every ptrs[j] stays valid for the whole tile).
        body.Open("for (int64_t j = 0; j < len; ++j) {");
        std::string key = EmitExpr(*plan.group_by, fact, "i + j", &slots,
                                   BoolStyle::kBranchFree);
        if (key_masked) {
          // Key masking (Fig. 4 bottom): non-qualifying keys map to the
          // throwaway entry; values stay unmasked.
          body.Line(StringFormat("int64_t mm = -(int64_t)cmp[j];"));
          body.Line(StringFormat(
              "keys[j] = ((%s) & mm) | (swole::HashTable::kMaskKey & "
              "~mm);",
              key.c_str()));
        } else {
          body.Line(StringFormat("keys[j] = %s;", key.c_str()));
        }
        body.Close();
        body.Line(
            "groups.GetOrInsertBatch(keys, (int32_t)len, ptrs, true);");
        body.Open("for (int64_t j = 0; j < len; ++j) {");
        body.Line("int64_t* p = ptrs[j];");
        if (key_masked) {
          body.Line("p[0] += 1;");
          for (int a = 0; a < naggs; ++a) {
            body.Line(StringFormat(
                "p[%d] += %s;", 1 + a,
                AggValueExpr(plan.aggs[a], fact, "i + j", &slots,
                             BoolStyle::kBranchFree)
                    .c_str()));
          }
        } else {
          // Value masking over groups (Fig. 4 top).
          body.Line("p[0] += cmp[j];");
          for (int a = 0; a < naggs; ++a) {
            body.Line(StringFormat(
                "p[%d] += (%s) * cmp[j];", 1 + a,
                AggValueExpr(plan.aggs[a], fact, "i + j", &slots,
                             BoolStyle::kBranchFree)
                    .c_str()));
          }
        }
        body.Close();
      }
    } else {
      // Selection vector via the dispatched no-branch kernel (Fig. 1
      // middle); the SWAR/AVX2 tiers pack the mask a word / movemask at a
      // time with bit-identical output.
      body.Line(
          "int32_t n = swole::kernels::SelVecFromCmpNoBranch(cmp, len, "
          "idx);");
      if (!swole) {
        // Hash-probe refinement per dimension: gather the fk keys for the
        // surviving lanes and probe them as one batch (cmp is dead after
        // the selection vector is built, so it doubles as the match-byte
        // output).
        for (size_t d = 0; d < plan.dims.size(); ++d) {
          body.Open("{");
          body.Open("for (int32_t k = 0; k < n; ++k) {");
          body.Line(StringFormat(
              "keys[k] = %s;",
              EmitExpr(*Col(plan.dims[d].hop.fk_column), fact,
                       "i + idx[k]", &slots, BoolStyle::kBranchFree)
                  .c_str()));
          body.Close();
          body.Line(StringFormat(
              "dim%d.ContainsBatch(keys, n, cmp, false);",
              static_cast<int>(d)));
          body.Line("int32_t m = 0;");
          body.Open("for (int32_t k = 0; k < n; ++k) {");
          body.Line("idx[m] = idx[k];");
          body.Line("m += cmp[k] != 0;");
          body.Close();
          body.Line("n = m;");
          body.Close();
        }
      }
      // Pulled string conjuncts: per-lane compiled match over the
      // surviving selection vector, then the usual no-branch compaction
      // (cmp is dead after the selection vector is built, so it doubles
      // as the match-byte scratch).
      for (const Expr* pred : str_split.pulled) {
        const int t = slots.Text(fact, pred->children[0]->column);
        const int lk = slots.Like(*pred);
        body.Open("{");
        body.Open("for (int32_t k = 0; k < n; ++k) {");
        body.Line(StringFormat(
            "cmp[k] = (uint8_t)swole::kernels::StrLikeOne(tb%d, to%d, "
            "i + idx[k], lk%d);",
            t, t, lk));
        body.Close();
        body.Line("int32_t m = 0;");
        body.Open("for (int32_t k = 0; k < n; ++k) {");
        body.Line("idx[m] = idx[k];");
        body.Line("m += cmp[k] != 0;");
        body.Close();
        body.Line("n = m;");
        body.Close();
      }
      if (!grouped) {
        body.Open("for (int32_t k = 0; k < n; ++k) {");
        for (int a = 0; a < naggs; ++a) {
          body.Line(StringFormat(
              "agg%d += %s;", a,
              AggValueExpr(plan.aggs[a], fact, "i + idx[k]", &slots,
                           BoolStyle::kBranchFree)
                  .c_str()));
        }
        body.Close();
      } else {
        body.Open("for (int32_t k = 0; k < n; ++k) {");
        body.Line(StringFormat(
            "keys[k] = %s;",
            EmitExpr(*plan.group_by, fact, "i + idx[k]", &slots,
                     BoolStyle::kBranchFree)
                .c_str()));
        body.Close();
        body.Line("groups.GetOrInsertBatch(keys, n, ptrs, false);");
        body.Open("for (int32_t k = 0; k < n; ++k) {");
        body.Line("int64_t* p = ptrs[k];");
        body.Line("p[0] += 1;");
        for (int a = 0; a < naggs; ++a) {
          body.Line(StringFormat(
              "p[%d] += %s;", 1 + a,
              AggValueExpr(plan.aggs[a], fact, "i + idx[k]", &slots,
                           BoolStyle::kBranchFree)
                  .c_str()));
        }
        body.Close();
      }
    }
    body.Close();  // tile loop
  }

  // Fold the local scalar accumulators into the thread state.
  if (!grouped) {
    for (int a = 0; a < naggs; ++a) {
      body.Line(StringFormat("state->agg%d += agg%d;", a, a));
    }
  }

  // ---- Assemble the translation unit ----
  CodeWriter unit;
  unit.Line(StringFormat(
      "// Generated by swole::codegen — plan '%s', strategy %s.",
      plan.name.c_str(), StrategyKindName(options.strategy)));
  unit.Line("#include <cstdint>");
  unit.Line("#include \"exec/hash_table.h\"");
  unit.Line("#include \"exec/kernels.h\"");
  unit.Line("#include \"storage/bitmap.h\"");
  unit.Line("");
  if (slots.HasLikes()) {
    unit.Line("// Compiled LIKE programs, one per distinct pattern.");
    slots.EmitLikeStatics(&unit);
    unit.Line("");
  }
  unit.Line("// Host ABI (mirror of swole::codegen::KernelIO, ABI v5).");
  unit.Open("struct SwoleKernelIO {");
  unit.Line("const void* const* columns;");
  unit.Line("const int64_t* table_rows;");
  unit.Line("const uint32_t* const* fk_offsets;");
  unit.Line("int64_t* scalar_out;");
  unit.Line("void* group_ctx;");
  unit.Line("void (*emit_group)(void* ctx, int64_t key, const int64_t*);");
  unit.Line("// Governance hooks; null when the query runs ungoverned.");
  unit.Line("void* governor;");
  unit.Line("int (*mem_charge)(void* ctx, int64_t delta, const char* site);");
  unit.Line("int (*cancel_check)(void* ctx);");
  unit.Line("// Nonzero forces the legacy widening path (SWOLE_WIDEN).");
  unit.Line("int64_t widen;");
  unit.Line("// Raw-text slots (ABI v5): byte arena + offsets per slot.");
  unit.Line("const void* const* text_bytes;");
  unit.Line("const uint32_t* const* text_offsets;");
  unit.Close("};");
  unit.Line("");
  unit.Line("// Build-phase output: dimension structures, read-only while");
  unit.Line("// morsels run.");
  unit.Open("struct SwoleSharedState {");
  for (const std::string& field : shared_fields) unit.Line(field);
  if (!shared_params.empty()) {
    unit.Line(StringFormat("explicit SwoleSharedState(%s) : %s {}",
                           StrJoin(shared_params, ", ").c_str(),
                           StrJoin(shared_inits, ", ").c_str()));
  }
  unit.Close("};");
  unit.Line("");
  unit.Line("// Per-worker probe state, merged pairwise after the scan.");
  unit.Open("struct SwoleThreadState {");
  if (grouped) {
    unit.Line("swole::HashTable groups;");
    unit.Line(StringFormat(
        "explicit SwoleThreadState(int64_t hint) : groups(%d, hint) {}",
        1 + naggs));
  } else {
    for (int a = 0; a < naggs; ++a) {
      unit.Line(StringFormat("int64_t agg%d = 0;", a));
    }
  }
  unit.Close("};");
  unit.Line("");

  auto splice = [&unit](CodeWriter&& writer) {
    for (const std::string& line : StrSplit(writer.Take(), '\n')) {
      unit.Line(line);
    }
  };

  unit.Open(StringFormat("extern \"C\" void* %s(const SwoleKernelIO* io) {",
                         kBuildEntryPoint));
  // The dlopened image carries its own copy of the inline widen flag;
  // sync it from the host before any kernel runs (build runs exactly once
  // per execution, including on cache hits).
  unit.Line("swole::kernels::SetWidenMode(io->widen != 0);");
  slots.EmitDeclarations(&unit);
  if (shared_args.empty()) {
    unit.Line("auto* shared = new SwoleSharedState();");
  } else {
    unit.Line(StringFormat("auto* shared = new SwoleSharedState(%s);",
                           StrJoin(shared_args, ", ").c_str()));
  }
  // A refused charge (or bad_alloc) throws out of the build loops; free
  // the half-built shared state before letting the host classify it.
  unit.Open("try {");
  if (!hook_attach.empty()) {
    unit.Open("if (io->mem_charge != nullptr) {");
    for (const std::string& attach : hook_attach) unit.Line(attach);
    unit.Close();
  }
  splice(std::move(build));
  unit.Close("} catch (...) { delete shared; throw; }");
  unit.Line("return shared;");
  unit.Close();
  unit.Line("");

  unit.Open(StringFormat("extern \"C\" void* %s(const SwoleKernelIO* io) {",
                         kThreadStateEntryPoint));
  unit.Line("(void)io;");
  if (grouped) {
    unit.Line(StringFormat("auto* state = new SwoleThreadState(INT64_C(%lld));",
                           static_cast<long long>(
                               options.group_capacity_hint)));
    unit.Open("try {");
    unit.Open("if (io->mem_charge != nullptr) {");
    unit.Line(
        "state->groups.SetMemHook(io->mem_charge, io->governor, "
        "\"jit_groups\");");
    unit.Close();
    if (key_masked) {
      unit.Line("state->groups.GetOrInsert(swole::HashTable::kMaskKey);");
    }
    unit.Close("} catch (...) { delete state; throw; }");
  } else {
    unit.Line("auto* state = new SwoleThreadState();");
  }
  unit.Line("return state;");
  unit.Close();
  unit.Line("");

  unit.Open(StringFormat(
      "extern \"C\" void %s(const SwoleKernelIO* io, void* shared_v, "
      "void* state_v, int64_t morsel_begin, int64_t morsel_end) {",
      kMorselEntryPoint));
  unit.Line("// Cooperative cancellation checkpoint (governed runs only).");
  unit.Line(
      "if (io->cancel_check != nullptr && "
      "io->cancel_check(io->governor) != 0) return;");
  slots.EmitDeclarations(&unit);
  unit.Line("auto* shared = static_cast<SwoleSharedState*>(shared_v);");
  unit.Line("auto* state = static_cast<SwoleThreadState*>(state_v);");
  unit.Line("(void)shared;");
  unit.Line("(void)state;");
  splice(std::move(body));
  unit.Close();
  unit.Line("");

  unit.Open(StringFormat("extern \"C\" void %s(void* into_v, void* from_v) {",
                         kMergeEntryPoint));
  unit.Line("auto* into = static_cast<SwoleThreadState*>(into_v);");
  unit.Line("auto* from = static_cast<SwoleThreadState*>(from_v);");
  if (grouped) {
    unit.Line("into->groups.MergeAdd(from->groups);");
  } else {
    for (int a = 0; a < naggs; ++a) {
      unit.Line(StringFormat("into->agg%d += from->agg%d;", a, a));
    }
  }
  unit.Line("delete from;");
  unit.Close();
  unit.Line("");

  unit.Open(StringFormat(
      "extern \"C\" void %s(const SwoleKernelIO* io, void* shared_v, "
      "void* state_v) {",
      kFinishEntryPoint));
  unit.Line("auto* shared = static_cast<SwoleSharedState*>(shared_v);");
  unit.Line("auto* state = static_cast<SwoleThreadState*>(state_v);");
  // state may be null when the host tears down after an abort that hit
  // before worker 0's thread state existed; still free the shared state.
  unit.Open("if (state != nullptr) {");
  if (grouped) {
    unit.Open("state->groups.ForEach([&](int64_t key, const int64_t* p) {");
    unit.Line("if (key == swole::HashTable::kMaskKey) return;");
    unit.Line("if (p[0] == 0) return;");
    unit.Line("io->emit_group(io->group_ctx, key, p + 1);");
    unit.Close("});");
  } else {
    for (int a = 0; a < naggs; ++a) {
      unit.Line(StringFormat("io->scalar_out[%d] = state->agg%d;", a, a));
    }
  }
  unit.Line("delete state;");
  unit.Close();
  unit.Line("delete shared;");
  unit.Close();
  unit.Line("");

  unit.Open(StringFormat("extern \"C\" int %s(const SwoleKernelIO* io) {",
                         kCancelCheckEntryPoint));
  unit.Line(
      "return io->cancel_check != nullptr ? io->cancel_check(io->governor) "
      ": 0;");
  unit.Close();

  GeneratedKernel kernel;
  kernel.source = unit.Take();
  kernel.column_slots = slots.slots_;
  kernel.table_slots = slots.tables_;
  kernel.fk_slots_table = slots.fk_tables_;
  kernel.fk_slots_column = slots.fk_columns_;
  kernel.fk_slots_ref_table = slots.fk_ref_tables_;
  kernel.text_slots_table = slots.text_tables_;
  kernel.text_slots_column = slots.text_columns_;
  kernel.num_aggs = naggs;
  kernel.grouped = grouped;
  kernel.fact_table = fact;
  kernel.tile_size = options.tile_size;
  return kernel;
}

}  // namespace swole::codegen
