#ifndef SWOLE_EXPR_SCALAR_EVAL_H_
#define SWOLE_EXPR_SCALAR_EVAL_H_

#include <cstdint>
#include <map>
#include <vector>

#include "expr/expr.h"

// Row-at-a-time expression evaluation. Used by the reference engine (the
// correctness oracle) and by tests — never on a hot path of a strategy.

namespace swole {

class Table;

class ScalarEvaluator {
 public:
  /// `table` must outlive the evaluator.
  explicit ScalarEvaluator(const Table& table);

  /// Evaluates `expr` at `row`. Booleans come back as 0/1.
  /// Preconditions: BindExpr(expr, table).ok().
  int64_t Eval(const Expr& expr, int64_t row);

 private:
  const std::vector<uint8_t>& LikeMaskFor(const Expr& like);

  const Table& table_;
  // LIKE masks are built once per pattern (evaluating LIKE per row per call
  // would make the oracle quadratic in practice).
  std::map<const Expr*, std::vector<uint8_t>> like_masks_;
};

}  // namespace swole

#endif  // SWOLE_EXPR_SCALAR_EVAL_H_
