#ifndef SWOLE_EXPR_VECTOR_EVAL_H_
#define SWOLE_EXPR_VECTOR_EVAL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "exec/simd_string.h"
#include "expr/expr.h"

// Tile-at-a-time expression evaluation over a table's columns. This is the
// "prepass" machinery (Fig. 1): boolean expressions evaluate into 0/1 byte
// arrays with branch-free typed loops (SIMD-friendly), numeric expressions
// into int64 arrays. The hybrid, ROF, and SWOLE engines are built on top of
// this; fused special-case kernels in exec/kernels.h take over on the hot
// aggregate shapes.

namespace swole {

class Table;

class VectorEvaluator {
 public:
  /// `table` must outlive the evaluator. Tiles must not exceed `tile_size`.
  explicit VectorEvaluator(const Table& table,
                           int64_t tile_size = 1024);

  /// Boolean expression over rows [start, start+len) into cmp (bytes 0/1).
  /// Preconditions: expr.IsBoolean(), len <= tile_size.
  void EvalBool(const Expr& expr, int64_t start, int64_t len, uint8_t* cmp);

  /// Numeric expression over rows [start, start+len) into out (int64).
  /// Boolean subexpressions contribute 0/1 values (used for masking).
  void EvalNumeric(const Expr& expr, int64_t start, int64_t len,
                   int64_t* out);

  const Table& table() const { return table_; }
  int64_t tile_size() const { return tile_size_; }

  /// The 0/1 dictionary mask for a LIKE expression (built once, cached).
  const std::vector<uint8_t>& LikeMaskFor(const Expr& like);

  /// The compiled pattern for a raw-text LIKE expression (cached per node).
  const simd::CompiledLike& CompiledLikeFor(const Expr& like);

  /// Column overrides for compacted evaluation: while set, every column
  /// reference named in the list reads from the given widened int64 buffer
  /// (indexed from `start`, normally 0) instead of the table. Used after a
  /// gather so expressions evaluate only over selected lanes. Every column
  /// the expression references must be overridden. Pass nullptr to clear.
  using Overrides = std::vector<std::pair<std::string, const int64_t*>>;
  void SetOverrides(const Overrides* overrides) { overrides_ = overrides; }

 private:
  // Scratch buffer pool: recursion depth d uses buffers_[d].
  int64_t* NumScratch(int depth);
  uint8_t* BoolScratch(int depth);

  /// Override buffer for `name`, or nullptr.
  const int64_t* FindOverride(const std::string& name) const;

  const Table& table_;
  int64_t tile_size_;
  const Overrides* overrides_ = nullptr;
  std::vector<std::unique_ptr<int64_t[]>> num_scratch_;
  std::vector<std::unique_ptr<uint8_t[]>> bool_scratch_;
  std::map<const Expr*, std::vector<uint8_t>> like_masks_;
  std::map<const Expr*, simd::CompiledLike> compiled_likes_;
};

}  // namespace swole

#endif  // SWOLE_EXPR_VECTOR_EVAL_H_
