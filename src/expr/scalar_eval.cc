#include "expr/scalar_eval.h"

#include "common/logging.h"
#include "common/string_util.h"
#include "storage/table.h"

namespace swole {

ScalarEvaluator::ScalarEvaluator(const Table& table) : table_(table) {}

const std::vector<uint8_t>& ScalarEvaluator::LikeMaskFor(const Expr& like) {
  auto it = like_masks_.find(&like);
  if (it != like_masks_.end()) return it->second;
  const Column& column = table_.ColumnRef(like.children[0]->column);
  SWOLE_CHECK(column.dictionary() != nullptr);
  std::vector<uint8_t> mask = column.dictionary()->LikeMask(like.like_pattern);
  if (like.like_negated) {
    for (auto& b : mask) b = 1 - b;
  }
  return like_masks_.emplace(&like, std::move(mask)).first->second;
}

int64_t ScalarEvaluator::Eval(const Expr& expr, int64_t row) {
  switch (expr.kind) {
    case ExprKind::kColumnRef:
      return table_.ColumnRef(expr.column).ValueAt(row);
    case ExprKind::kLiteral:
      return expr.literal;
    case ExprKind::kBinary: {
      // Short-circuit the logical operators (also avoids evaluating
      // division guarded by a condition).
      if (expr.op == BinaryOp::kAnd) {
        return Eval(*expr.children[0], row) != 0 &&
                       Eval(*expr.children[1], row) != 0
                   ? 1
                   : 0;
      }
      if (expr.op == BinaryOp::kOr) {
        return Eval(*expr.children[0], row) != 0 ||
                       Eval(*expr.children[1], row) != 0
                   ? 1
                   : 0;
      }
      int64_t lhs = Eval(*expr.children[0], row);
      int64_t rhs = Eval(*expr.children[1], row);
      switch (expr.op) {
        case BinaryOp::kAdd:
          return lhs + rhs;
        case BinaryOp::kSub:
          return lhs - rhs;
        case BinaryOp::kMul:
          return lhs * rhs;
        case BinaryOp::kDiv:
          SWOLE_CHECK_NE(rhs, 0) << "division by zero";
          return lhs / rhs;
        case BinaryOp::kLt:
          return lhs < rhs ? 1 : 0;
        case BinaryOp::kLe:
          return lhs <= rhs ? 1 : 0;
        case BinaryOp::kGt:
          return lhs > rhs ? 1 : 0;
        case BinaryOp::kGe:
          return lhs >= rhs ? 1 : 0;
        case BinaryOp::kEq:
          return lhs == rhs ? 1 : 0;
        case BinaryOp::kNe:
          return lhs != rhs ? 1 : 0;
        default:
          break;
      }
      SWOLE_CHECK(false) << "unreachable";
      return 0;
    }
    case ExprKind::kNot:
      return Eval(*expr.children[0], row) != 0 ? 0 : 1;
    case ExprKind::kLike: {
      const Column& column = table_.ColumnRef(expr.children[0]->column);
      if (column.type().logical == LogicalType::kText) {
        bool match = LikeMatch(column.TextAt(row), expr.like_pattern);
        return (match != expr.like_negated) ? 1 : 0;
      }
      const std::vector<uint8_t>& mask = LikeMaskFor(expr);
      int64_t code = Eval(*expr.children[0], row);
      SWOLE_DCHECK_GE(code, 0);
      SWOLE_DCHECK_LT(code, static_cast<int64_t>(mask.size()));
      return mask[code];
    }
    case ExprKind::kInList: {
      int64_t value = Eval(*expr.children[0], row);
      for (int64_t candidate : expr.in_list) {
        if (candidate == value) return 1;
      }
      return 0;
    }
    case ExprKind::kCase: {
      for (size_t i = 0; i + 1 < expr.children.size(); i += 2) {
        if (Eval(*expr.children[i], row) != 0) {
          return Eval(*expr.children[i + 1], row);
        }
      }
      return Eval(*expr.children.back(), row);
    }
  }
  SWOLE_CHECK(false) << "unknown expression kind";
  return 0;
}

}  // namespace swole
