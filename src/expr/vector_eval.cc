#include "expr/vector_eval.h"

#include "common/logging.h"
#include "common/string_util.h"
#include "exec/kernels.h"
#include "storage/table.h"

namespace swole {

namespace {
kernels::CmpOp ToCmpOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kLt:
      return kernels::CmpOp::kLt;
    case BinaryOp::kLe:
      return kernels::CmpOp::kLe;
    case BinaryOp::kGt:
      return kernels::CmpOp::kGt;
    case BinaryOp::kGe:
      return kernels::CmpOp::kGe;
    case BinaryOp::kEq:
      return kernels::CmpOp::kEq;
    case BinaryOp::kNe:
      return kernels::CmpOp::kNe;
    default:
      SWOLE_CHECK(false) << "not a comparison: " << BinaryOpName(op);
      return kernels::CmpOp::kEq;
  }
}

// Mirror of a comparison with swapped operands (lit < col  ==  col > lit).
kernels::CmpOp FlipCmpOp(kernels::CmpOp op) {
  switch (op) {
    case kernels::CmpOp::kLt:
      return kernels::CmpOp::kGt;
    case kernels::CmpOp::kLe:
      return kernels::CmpOp::kGe;
    case kernels::CmpOp::kGt:
      return kernels::CmpOp::kLt;
    case kernels::CmpOp::kGe:
      return kernels::CmpOp::kLe;
    default:
      return op;  // kEq/kNe are symmetric
  }
}
}  // namespace

VectorEvaluator::VectorEvaluator(const Table& table, int64_t tile_size)
    : table_(table), tile_size_(tile_size) {
  SWOLE_CHECK_GT(tile_size, 0);
}

int64_t* VectorEvaluator::NumScratch(int depth) {
  while (static_cast<int>(num_scratch_.size()) <= depth) {
    num_scratch_.push_back(std::make_unique<int64_t[]>(tile_size_));
  }
  return num_scratch_[depth].get();
}

uint8_t* VectorEvaluator::BoolScratch(int depth) {
  while (static_cast<int>(bool_scratch_.size()) <= depth) {
    bool_scratch_.push_back(std::make_unique<uint8_t[]>(tile_size_));
  }
  return bool_scratch_[depth].get();
}

const int64_t* VectorEvaluator::FindOverride(const std::string& name) const {
  if (overrides_ == nullptr) return nullptr;
  for (const auto& [override_name, buffer] : *overrides_) {
    if (override_name == name) return buffer;
  }
  return nullptr;
}

const std::vector<uint8_t>& VectorEvaluator::LikeMaskFor(const Expr& like) {
  auto it = like_masks_.find(&like);
  if (it != like_masks_.end()) return it->second;
  const Column& column = table_.ColumnRef(like.children[0]->column);
  SWOLE_CHECK(column.dictionary() != nullptr);
  std::vector<uint8_t> mask =
      column.dictionary()->LikeMask(like.like_pattern);
  if (like.like_negated) {
    for (auto& b : mask) b = 1 - b;
  }
  return like_masks_.emplace(&like, std::move(mask)).first->second;
}

const simd::CompiledLike& VectorEvaluator::CompiledLikeFor(const Expr& like) {
  auto it = compiled_likes_.find(&like);
  if (it != compiled_likes_.end()) return it->second;
  return compiled_likes_
      .emplace(&like,
               simd::CompileLike(like.like_pattern, like.like_negated))
      .first->second;
}

void VectorEvaluator::EvalBool(const Expr& expr, int64_t start, int64_t len,
                               uint8_t* cmp) {
  SWOLE_DCHECK_LE(len, tile_size_);
  switch (expr.kind) {
    case ExprKind::kBinary: {
      if (expr.op == BinaryOp::kAnd || expr.op == BinaryOp::kOr) {
        // Prepass semantics: both sides are evaluated unconditionally and
        // combined bitwise — no short circuit, no branches.
        EvalBool(*expr.children[0], start, len, cmp);
        uint8_t* rhs = BoolScratch(0);
        // Reentrancy: nested AND/OR chains reuse scratch; evaluate the rhs
        // into a fresh local buffer when the child is itself logical.
        std::vector<uint8_t> local;
        uint8_t* rhs_buf = rhs;
        if (expr.children[1]->kind == ExprKind::kBinary &&
            (expr.children[1]->op == BinaryOp::kAnd ||
             expr.children[1]->op == BinaryOp::kOr)) {
          local.resize(len);
          rhs_buf = local.data();
        }
        EvalBool(*expr.children[1], start, len, rhs_buf);
        if (expr.op == BinaryOp::kAnd) {
          kernels::AndBytes(cmp, rhs_buf, len);
        } else {
          kernels::OrBytes(cmp, rhs_buf, len);
        }
        return;
      }
      SWOLE_CHECK(IsComparisonOp(expr.op)) << expr.ToString();
      const Expr& lhs = *expr.children[0];
      const Expr& rhs = *expr.children[1];
      kernels::CmpOp op = ToCmpOp(expr.op);

      // Fast path 1: column OP literal (typed branch-free loop).
      if (lhs.kind == ExprKind::kColumnRef &&
          rhs.kind == ExprKind::kLiteral) {
        if (const int64_t* buf = FindOverride(lhs.column)) {
          kernels::CompareLit<int64_t>(op, buf + start, rhs.literal, cmp,
                                       len);
          return;
        }
        const Column& col = table_.ColumnRef(lhs.column);
        DispatchPhysical(col.type().physical, [&]<typename T>() {
          kernels::CompareLit<T>(op, col.Data<T>() + start, rhs.literal, cmp,
                                 len);
        });
        return;
      }
      // Fast path 2: literal OP column (flip).
      if (lhs.kind == ExprKind::kLiteral &&
          rhs.kind == ExprKind::kColumnRef) {
        if (const int64_t* buf = FindOverride(rhs.column)) {
          kernels::CompareLit<int64_t>(FlipCmpOp(op), buf + start,
                                       lhs.literal, cmp, len);
          return;
        }
        const Column& col = table_.ColumnRef(rhs.column);
        DispatchPhysical(col.type().physical, [&]<typename T>() {
          kernels::CompareLit<T>(FlipCmpOp(op), col.Data<T>() + start,
                                 lhs.literal, cmp, len);
        });
        return;
      }
      // Fast path 3: column OP column with matching physical type.
      if (lhs.kind == ExprKind::kColumnRef &&
          rhs.kind == ExprKind::kColumnRef &&
          FindOverride(lhs.column) == nullptr &&
          FindOverride(rhs.column) == nullptr) {
        const Column& lcol = table_.ColumnRef(lhs.column);
        const Column& rcol = table_.ColumnRef(rhs.column);
        if (lcol.type().physical == rcol.type().physical) {
          DispatchPhysical(lcol.type().physical, [&]<typename T>() {
            kernels::CompareCol<T>(op, lcol.Data<T>() + start,
                                   rcol.Data<T>() + start, cmp, len);
          });
          return;
        }
      }
      // General path: evaluate both sides to int64 and compare.
      int64_t* lbuf = NumScratch(0);
      std::vector<int64_t> rlocal(len);
      EvalNumeric(lhs, start, len, lbuf);
      EvalNumeric(rhs, start, len, rlocal.data());
      kernels::CompareCol<int64_t>(op, lbuf, rlocal.data(), cmp, len);
      return;
    }
    case ExprKind::kNot:
      EvalBool(*expr.children[0], start, len, cmp);
      kernels::NotBytes(cmp, len);
      return;
    case ExprKind::kLike: {
      {
        const Column& col = table_.ColumnRef(expr.children[0]->column);
        if (col.type().logical == LogicalType::kText) {
          // Raw text: the dispatched string-kernel prepass over the arena
          // (the Q13 bottleneck). Patterns compile once per expression.
          const StringColumn& text = *col.text();
          kernels::StrLikeTile(text.bytes(), text.offsets(), start, len,
                               CompiledLikeFor(expr), cmp);
          return;
        }
      }
      const std::vector<uint8_t>& mask = LikeMaskFor(expr);
      if (const int64_t* buf = FindOverride(expr.children[0]->column)) {
        kernels::LookupMask<int64_t>(buf + start, mask.data(), cmp, len);
        return;
      }
      const Column& col = table_.ColumnRef(expr.children[0]->column);
      DispatchPhysical(col.type().physical, [&]<typename T>() {
        kernels::LookupMask<T>(col.Data<T>() + start, mask.data(), cmp, len);
      });
      return;
    }
    case ExprKind::kInList: {
      // value IN (v1, ..., vk)  ==  OR of equality prepasses.
      const Expr& target = *expr.children[0];
      uint8_t* scratch = BoolScratch(1);
      bool first = true;
      for (int64_t candidate : expr.in_list) {
        uint8_t* dst = first ? cmp : scratch;
        if (target.kind == ExprKind::kColumnRef &&
            FindOverride(target.column) != nullptr) {
          kernels::CompareLit<int64_t>(kernels::CmpOp::kEq,
                                       FindOverride(target.column) + start,
                                       candidate, dst, len);
        } else if (target.kind == ExprKind::kColumnRef) {
          const Column& col = table_.ColumnRef(target.column);
          DispatchPhysical(col.type().physical, [&]<typename T>() {
            kernels::CompareLit<T>(kernels::CmpOp::kEq,
                                   col.Data<T>() + start, candidate, dst,
                                   len);
          });
        } else {
          int64_t* values = NumScratch(1);
          EvalNumeric(target, start, len, values);
          kernels::CompareLit<int64_t>(kernels::CmpOp::kEq, values, candidate,
                                       dst, len);
        }
        if (!first) kernels::OrBytes(cmp, scratch, len);
        first = false;
      }
      return;
    }
    default: {
      // Numeric used in boolean position: nonzero test.
      std::vector<int64_t> values(len);
      EvalNumeric(expr, start, len, values.data());
      kernels::CompareLit<int64_t>(kernels::CmpOp::kNe, values.data(), 0, cmp,
                                   len);
      return;
    }
  }
}

void VectorEvaluator::EvalNumeric(const Expr& expr, int64_t start,
                                  int64_t len, int64_t* out) {
  SWOLE_DCHECK_LE(len, tile_size_);
  switch (expr.kind) {
    case ExprKind::kLiteral:
      for (int64_t j = 0; j < len; ++j) out[j] = expr.literal;
      return;
    case ExprKind::kColumnRef: {
      if (const int64_t* buf = FindOverride(expr.column)) {
        for (int64_t j = 0; j < len; ++j) out[j] = buf[start + j];
        return;
      }
      const Column& col = table_.ColumnRef(expr.column);
      DispatchPhysical(col.type().physical, [&]<typename T>() {
        kernels::Widen<T>(col.Data<T>() + start, len, out);
      });
      return;
    }
    case ExprKind::kBinary: {
      if (IsBooleanOp(expr.op)) break;  // handled by the boolean path below
      // Arithmetic: children into two buffers, then a branch-free combine.
      std::vector<int64_t> lhs(len);
      std::vector<int64_t> rhs(len);
      EvalNumeric(*expr.children[0], start, len, lhs.data());
      EvalNumeric(*expr.children[1], start, len, rhs.data());
      switch (expr.op) {
        case BinaryOp::kAdd:
          for (int64_t j = 0; j < len; ++j) out[j] = lhs[j] + rhs[j];
          return;
        case BinaryOp::kSub:
          for (int64_t j = 0; j < len; ++j) out[j] = lhs[j] - rhs[j];
          return;
        case BinaryOp::kMul:
          for (int64_t j = 0; j < len; ++j) out[j] = lhs[j] * rhs[j];
          return;
        case BinaryOp::kDiv:
          for (int64_t j = 0; j < len; ++j) {
            SWOLE_DCHECK_NE(rhs[j], 0);
            out[j] = lhs[j] / rhs[j];
          }
          return;
        default:
          SWOLE_CHECK(false) << "unreachable";
      }
      return;
    }
    case ExprKind::kCase: {
      // Masked CASE (§III-A): all arms are evaluated unconditionally; the
      // result is selected branch-free, first-match-wins via reverse
      // overwrite.
      EvalNumeric(*expr.children.back(), start, len, out);
      std::vector<uint8_t> cond(len);
      std::vector<int64_t> value(len);
      for (int64_t i =
               static_cast<int64_t>(expr.children.size()) / 2 * 2 - 2;
           i >= 0; i -= 2) {
        EvalBool(*expr.children[i], start, len, cond.data());
        EvalNumeric(*expr.children[i + 1], start, len, value.data());
        for (int64_t j = 0; j < len; ++j) {
          int64_t m = -static_cast<int64_t>(cond[j]);
          out[j] = (value[j] & m) | (out[j] & ~m);
        }
      }
      return;
    }
    default:
      break;
  }
  // Boolean expression used as a 0/1 numeric value (masking).
  std::vector<uint8_t> cmp(len);
  EvalBool(expr, start, len, cmp.data());
  for (int64_t j = 0; j < len; ++j) out[j] = cmp[j];
}

}  // namespace swole
