#ifndef SWOLE_EXPR_EXPR_H_
#define SWOLE_EXPR_EXPR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

// Expression AST for the restricted OLAP algebra. All values are int64 at
// evaluation time (the storage layer keeps narrow physical types; kernels
// widen on load). Booleans are 0/1 int64 values, which is what makes the
// paper's masking techniques (`sum += (a*b) * cmp`) expressible directly.
//
// Strings never appear at runtime: string predicates are resolved against
// the column dictionary (LIKE -> per-code mask, equality -> code literal)
// before execution, so generated code only touches integers.

namespace swole {

class Table;

enum class ExprKind : uint8_t {
  kColumnRef,  // named column
  kLiteral,    // int64 constant
  kBinary,     // arithmetic / comparison / logical
  kNot,        // logical negation
  kLike,       // dictionary-column LIKE pattern (child = column ref)
  kInList,     // child value IN (literals)
  kCase,       // CASE WHEN c THEN v [WHEN...] ELSE e END
};

enum class BinaryOp : uint8_t {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kLt,
  kLe,
  kGt,
  kGe,
  kEq,
  kNe,
  kAnd,
  kOr,
};

/// True for comparison and logical operators (result is 0/1).
bool IsBooleanOp(BinaryOp op);
/// True for kLt..kNe.
bool IsComparisonOp(BinaryOp op);
const char* BinaryOpName(BinaryOp op);
/// C source token for the operator ("<", "&&", ...), for the code generator.
const char* BinaryOpToken(BinaryOp op);

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  ExprKind kind;
  BinaryOp op = BinaryOp::kAdd;       // kBinary only
  std::string column;                 // kColumnRef only
  int64_t literal = 0;                // kLiteral only
  std::string like_pattern;           // kLike only
  bool like_negated = false;          // kLike: NOT LIKE
  std::vector<int64_t> in_list;       // kInList only
  std::vector<ExprPtr> children;
  // kCase layout: [when1, then1, when2, then2, ..., else]

  ExprPtr Clone() const;
  std::string ToString() const;

  /// True if this expression's result is boolean (0/1).
  bool IsBoolean() const;
};

// ---- Factory functions (the public way to build expressions) ----

ExprPtr Col(std::string name);
ExprPtr Lit(int64_t value);

ExprPtr Binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr Add(ExprPtr lhs, ExprPtr rhs);
ExprPtr Sub(ExprPtr lhs, ExprPtr rhs);
ExprPtr Mul(ExprPtr lhs, ExprPtr rhs);
ExprPtr Div(ExprPtr lhs, ExprPtr rhs);
ExprPtr Lt(ExprPtr lhs, ExprPtr rhs);
ExprPtr Le(ExprPtr lhs, ExprPtr rhs);
ExprPtr Gt(ExprPtr lhs, ExprPtr rhs);
ExprPtr Ge(ExprPtr lhs, ExprPtr rhs);
ExprPtr Eq(ExprPtr lhs, ExprPtr rhs);
ExprPtr Ne(ExprPtr lhs, ExprPtr rhs);
ExprPtr And(ExprPtr lhs, ExprPtr rhs);
ExprPtr Or(ExprPtr lhs, ExprPtr rhs);
ExprPtr Not(ExprPtr operand);

/// lo <= e AND e <= hi (inclusive, as in SQL BETWEEN).
ExprPtr Between(ExprPtr e, int64_t lo, int64_t hi);

/// Dictionary LIKE. `column` must be a string column at bind time.
ExprPtr Like(std::string column, std::string pattern);
ExprPtr NotLike(std::string column, std::string pattern);

ExprPtr InList(ExprPtr e, std::vector<int64_t> values);

/// CASE WHEN when THEN then ELSE els END.
ExprPtr Case(ExprPtr when, ExprPtr then, ExprPtr els);

// ---- Analysis helpers ----

/// All distinct column names referenced (in reference order, deduplicated).
std::vector<std::string> CollectColumnRefs(const Expr& expr);

/// Splits a conjunction tree into its conjuncts (top-level ANDs flattened).
/// The returned pointers alias `expr`.
std::vector<const Expr*> SplitConjuncts(const Expr& expr);

/// Validates `expr` against a table: every column exists, LIKE targets a
/// dictionary column, CASE arms are well-formed, operands of arithmetic are
/// numeric.
Status BindExpr(const Expr& expr, const Table& table);

}  // namespace swole

#endif  // SWOLE_EXPR_EXPR_H_
