#include "expr/expr.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"
#include "storage/table.h"

namespace swole {

bool IsBooleanOp(BinaryOp op) {
  return IsComparisonOp(op) || op == BinaryOp::kAnd || op == BinaryOp::kOr;
}

bool IsComparisonOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
    case BinaryOp::kEq:
    case BinaryOp::kNe:
      return true;
    default:
      return false;
  }
}

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "<>";
    case BinaryOp::kAnd:
      return "and";
    case BinaryOp::kOr:
      return "or";
  }
  return "?";
}

const char* BinaryOpToken(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
      return "==";
    case BinaryOp::kNe:
      return "!=";
    case BinaryOp::kAnd:
      return "&&";
    case BinaryOp::kOr:
      return "||";
    default:
      return BinaryOpName(op);
  }
}

ExprPtr Expr::Clone() const {
  auto copy = std::make_unique<Expr>();
  copy->kind = kind;
  copy->op = op;
  copy->column = column;
  copy->literal = literal;
  copy->like_pattern = like_pattern;
  copy->like_negated = like_negated;
  copy->in_list = in_list;
  copy->children.reserve(children.size());
  for (const ExprPtr& child : children) copy->children.push_back(child->Clone());
  return copy;
}

bool Expr::IsBoolean() const {
  switch (kind) {
    case ExprKind::kBinary:
      return IsBooleanOp(op);
    case ExprKind::kNot:
    case ExprKind::kLike:
    case ExprKind::kInList:
      return true;
    default:
      return false;
  }
}

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kColumnRef:
      return column;
    case ExprKind::kLiteral:
      return StringFormat("%lld", static_cast<long long>(literal));
    case ExprKind::kBinary:
      return StringFormat("(%s %s %s)", children[0]->ToString().c_str(),
                          BinaryOpName(op), children[1]->ToString().c_str());
    case ExprKind::kNot:
      return StringFormat("(not %s)", children[0]->ToString().c_str());
    case ExprKind::kLike:
      return StringFormat("(%s %slike '%s')",
                          children[0]->ToString().c_str(),
                          like_negated ? "not " : "", like_pattern.c_str());
    case ExprKind::kInList: {
      std::vector<std::string> parts;
      for (int64_t v : in_list) {
        parts.push_back(StringFormat("%lld", static_cast<long long>(v)));
      }
      return StringFormat("(%s in (%s))", children[0]->ToString().c_str(),
                          StrJoin(parts, ", ").c_str());
    }
    case ExprKind::kCase: {
      std::string out = "(case";
      for (size_t i = 0; i + 1 < children.size(); i += 2) {
        out += StringFormat(" when %s then %s",
                            children[i]->ToString().c_str(),
                            children[i + 1]->ToString().c_str());
      }
      out += StringFormat(" else %s end)",
                          children.back()->ToString().c_str());
      return out;
    }
  }
  return "?";
}

ExprPtr Col(std::string name) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->column = std::move(name);
  return e;
}

ExprPtr Lit(int64_t value) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = value;
  return e;
}

ExprPtr Binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  SWOLE_CHECK(lhs != nullptr && rhs != nullptr);
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->op = op;
  e->children.push_back(std::move(lhs));
  e->children.push_back(std::move(rhs));
  return e;
}

ExprPtr Add(ExprPtr lhs, ExprPtr rhs) {
  return Binary(BinaryOp::kAdd, std::move(lhs), std::move(rhs));
}
ExprPtr Sub(ExprPtr lhs, ExprPtr rhs) {
  return Binary(BinaryOp::kSub, std::move(lhs), std::move(rhs));
}
ExprPtr Mul(ExprPtr lhs, ExprPtr rhs) {
  return Binary(BinaryOp::kMul, std::move(lhs), std::move(rhs));
}
ExprPtr Div(ExprPtr lhs, ExprPtr rhs) {
  return Binary(BinaryOp::kDiv, std::move(lhs), std::move(rhs));
}
ExprPtr Lt(ExprPtr lhs, ExprPtr rhs) {
  return Binary(BinaryOp::kLt, std::move(lhs), std::move(rhs));
}
ExprPtr Le(ExprPtr lhs, ExprPtr rhs) {
  return Binary(BinaryOp::kLe, std::move(lhs), std::move(rhs));
}
ExprPtr Gt(ExprPtr lhs, ExprPtr rhs) {
  return Binary(BinaryOp::kGt, std::move(lhs), std::move(rhs));
}
ExprPtr Ge(ExprPtr lhs, ExprPtr rhs) {
  return Binary(BinaryOp::kGe, std::move(lhs), std::move(rhs));
}
ExprPtr Eq(ExprPtr lhs, ExprPtr rhs) {
  return Binary(BinaryOp::kEq, std::move(lhs), std::move(rhs));
}
ExprPtr Ne(ExprPtr lhs, ExprPtr rhs) {
  return Binary(BinaryOp::kNe, std::move(lhs), std::move(rhs));
}
ExprPtr And(ExprPtr lhs, ExprPtr rhs) {
  return Binary(BinaryOp::kAnd, std::move(lhs), std::move(rhs));
}
ExprPtr Or(ExprPtr lhs, ExprPtr rhs) {
  return Binary(BinaryOp::kOr, std::move(lhs), std::move(rhs));
}

ExprPtr Not(ExprPtr operand) {
  SWOLE_CHECK(operand != nullptr);
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kNot;
  e->children.push_back(std::move(operand));
  return e;
}

ExprPtr Between(ExprPtr e, int64_t lo, int64_t hi) {
  ExprPtr copy = e->Clone();
  return And(Ge(std::move(e), Lit(lo)), Le(std::move(copy), Lit(hi)));
}

ExprPtr Like(std::string column, std::string pattern) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLike;
  e->like_pattern = std::move(pattern);
  e->children.push_back(Col(std::move(column)));
  return e;
}

ExprPtr NotLike(std::string column, std::string pattern) {
  ExprPtr e = Like(std::move(column), std::move(pattern));
  e->like_negated = true;
  return e;
}

ExprPtr InList(ExprPtr e, std::vector<int64_t> values) {
  SWOLE_CHECK(e != nullptr);
  auto out = std::make_unique<Expr>();
  out->kind = ExprKind::kInList;
  out->in_list = std::move(values);
  out->children.push_back(std::move(e));
  return out;
}

ExprPtr Case(ExprPtr when, ExprPtr then, ExprPtr els) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kCase;
  e->children.push_back(std::move(when));
  e->children.push_back(std::move(then));
  e->children.push_back(std::move(els));
  return e;
}

namespace {
void CollectRefsInto(const Expr& expr, std::vector<std::string>* out) {
  if (expr.kind == ExprKind::kColumnRef) {
    if (std::find(out->begin(), out->end(), expr.column) == out->end()) {
      out->push_back(expr.column);
    }
    return;
  }
  for (const ExprPtr& child : expr.children) CollectRefsInto(*child, out);
}

void SplitConjunctsInto(const Expr& expr, std::vector<const Expr*>* out) {
  if (expr.kind == ExprKind::kBinary && expr.op == BinaryOp::kAnd) {
    SplitConjunctsInto(*expr.children[0], out);
    SplitConjunctsInto(*expr.children[1], out);
    return;
  }
  out->push_back(&expr);
}
}  // namespace

std::vector<std::string> CollectColumnRefs(const Expr& expr) {
  std::vector<std::string> out;
  CollectRefsInto(expr, &out);
  return out;
}

std::vector<const Expr*> SplitConjuncts(const Expr& expr) {
  std::vector<const Expr*> out;
  SplitConjunctsInto(expr, &out);
  return out;
}

Status BindExpr(const Expr& expr, const Table& table) {
  switch (expr.kind) {
    case ExprKind::kColumnRef:
      if (!table.HasColumn(expr.column)) {
        return Status::NotFound(StringFormat("no column '%s' in table '%s'",
                                             expr.column.c_str(),
                                             table.name().c_str()));
      }
      return Status::OK();
    case ExprKind::kLiteral:
      return Status::OK();
    case ExprKind::kBinary: {
      SWOLE_RETURN_NOT_OK(BindExpr(*expr.children[0], table));
      SWOLE_RETURN_NOT_OK(BindExpr(*expr.children[1], table));
      if (expr.op == BinaryOp::kAnd || expr.op == BinaryOp::kOr) {
        if (!expr.children[0]->IsBoolean() || !expr.children[1]->IsBoolean()) {
          return Status::TypeError(
              StringFormat("logical operator over non-boolean operands: %s",
                           expr.ToString().c_str()));
        }
      }
      return Status::OK();
    }
    case ExprKind::kNot:
      SWOLE_RETURN_NOT_OK(BindExpr(*expr.children[0], table));
      if (!expr.children[0]->IsBoolean()) {
        return Status::TypeError(StringFormat(
            "NOT over non-boolean operand: %s", expr.ToString().c_str()));
      }
      return Status::OK();
    case ExprKind::kLike: {
      const Expr& target = *expr.children[0];
      if (target.kind != ExprKind::kColumnRef) {
        return Status::TypeError("LIKE target must be a column");
      }
      SWOLE_RETURN_NOT_OK(BindExpr(target, table));
      const Column& column = table.ColumnRef(target.column);
      bool dict_ok = column.type().logical == LogicalType::kString &&
                     column.dictionary() != nullptr;
      bool text_ok = column.type().logical == LogicalType::kText &&
                     column.text() != nullptr;
      if (!dict_ok && !text_ok) {
        return Status::TypeError(StringFormat(
            "LIKE over non-string column '%s'", target.column.c_str()));
      }
      return Status::OK();
    }
    case ExprKind::kInList:
      if (expr.in_list.empty()) {
        return Status::InvalidArgument("empty IN list");
      }
      return BindExpr(*expr.children[0], table);
    case ExprKind::kCase: {
      if (expr.children.size() < 3 || expr.children.size() % 2 == 0) {
        return Status::InvalidArgument("malformed CASE expression");
      }
      for (size_t i = 0; i + 1 < expr.children.size(); i += 2) {
        SWOLE_RETURN_NOT_OK(BindExpr(*expr.children[i], table));
        if (!expr.children[i]->IsBoolean()) {
          return Status::TypeError("CASE condition must be boolean");
        }
        SWOLE_RETURN_NOT_OK(BindExpr(*expr.children[i + 1], table));
      }
      return BindExpr(*expr.children.back(), table);
    }
  }
  return Status::Internal("unknown expression kind");
}

}  // namespace swole
