#include "plan/result.h"

#include <algorithm>
#include <numeric>

#include "common/string_util.h"

namespace swole {

void QueryResult::SortGroups() {
  int64_t n = NumGroups();
  if (n <= 1) return;
  std::vector<int64_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [this](int64_t a, int64_t b) {
    return group_keys[a] < group_keys[b];
  });
  std::vector<int64_t> sorted_keys(n);
  std::vector<int64_t> sorted_aggs(group_aggs.size());
  for (int64_t i = 0; i < n; ++i) {
    sorted_keys[i] = group_keys[order[i]];
    for (int a = 0; a < num_aggs; ++a) {
      sorted_aggs[i * num_aggs + a] = group_aggs[order[i] * num_aggs + a];
    }
  }
  group_keys = std::move(sorted_keys);
  group_aggs = std::move(sorted_aggs);
}

std::string QueryResult::ToString(int max_rows) const {
  std::string out;
  if (!grouped) {
    for (size_t i = 0; i < scalar.size(); ++i) {
      const char* name = i < agg_names.size() ? agg_names[i].c_str() : "agg";
      out += StringFormat("%s = %lld\n", name,
                          static_cast<long long>(scalar[i]));
    }
    return out;
  }
  out += StringFormat("%lld groups\n", static_cast<long long>(NumGroups()));
  for (int64_t i = 0; i < NumGroups() && i < max_rows; ++i) {
    out += StringFormat("key=%lld:", static_cast<long long>(group_keys[i]));
    for (int a = 0; a < num_aggs; ++a) {
      out += StringFormat(" %lld", static_cast<long long>(GroupAgg(i, a)));
    }
    out += "\n";
  }
  if (NumGroups() > max_rows) out += "...\n";
  return out;
}

}  // namespace swole
