#ifndef SWOLE_PLAN_PLAN_H_
#define SWOLE_PLAN_PLAN_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "expr/expr.h"

// The restricted OLAP plan algebra executed by every strategy.
//
// A query is a *staged* plan over a star/snowflake schema:
//
//   fact table  --fk-->  dimension  --fk-->  dimension  ...
//
// All joins are foreign-key/primary-key joins (each fact row references
// exactly one row per dimension; referential integrity is enforced by the
// fk offset indexes at load time). Under that constraint an inner join is
// an existence test plus column reads through the fk chain, which is what
// lets the four strategies implement the same plan with hash tables
// (data-centric/hybrid/ROF) or positional bitmaps and late materialization
// (SWOLE, §III-D) while producing identical results.
//
// The algebra covers every query in the paper's evaluation: TPC-H Q1, Q3,
// Q4, Q5, Q6, Q13, Q14, Q19 and microbenchmark Q1-Q5 (§IV).

namespace swole {

class Table;

/// A hop along a foreign key: follow `fk_column` (on the current table) to
/// the single matching row of `to_table`. `to_pk_column` names the primary
/// key on `to_table`: hash-based strategies key their join hash tables by
/// its values, while positional strategies ignore it and go through the fk
/// offset index.
struct Hop {
  std::string fk_column;
  std::string to_table;
  std::string to_pk_column;
};

/// A column reached from a fact row through one or more fk hops, exposed to
/// the plan under `alias` (late materialization handle). If `like_pattern`
/// is set, the exposed value is the 0/1 result of `column LIKE pattern`
/// (evaluated once per dictionary entry — the "small hash table computed on
/// the fly" of TPC-H Q14); the column must then be dictionary-encoded.
struct ColumnPath {
  std::string alias;
  std::vector<Hop> hops;   // at least one
  std::string column;      // on the final hop's table
  std::string like_pattern;
};

/// Existence-join node: a fact (or parent-dimension) row qualifies iff the
/// referenced row of `hop.to_table` passes `filter` AND all `children`
/// dimensions qualify recursively. With a null filter and no children every
/// row qualifies (pure payload access).
struct DimJoin {
  Hop hop;                       // from the parent table to this dimension
  ExprPtr filter;                // local predicate on the dimension (or null)
  std::vector<DimJoin> children; // snowflake tail (e.g. customer->nation->region)

  DimJoin() = default;
  DimJoin(Hop h, ExprPtr f) : hop(std::move(h)), filter(std::move(f)) {}
  DimJoin(DimJoin&&) = default;
  DimJoin& operator=(DimJoin&&) = default;

  DimJoin CloneTree() const;
};

/// Reverse existence (TPC-H Q4's EXISTS subquery): the fact row qualifies
/// iff SOME row of `table` with `filter` references it via `fk_column`.
/// `fact_pk_column` names the fact's primary key (probed by hash-based
/// strategies; positional strategies use the fk offset index directly).
struct ReverseDim {
  std::string table;
  std::string fk_column;       // on `table`, referencing the fact table
  ExprPtr filter;              // on `table` (or null)
  std::string fact_pk_column;  // on the fact table
};

/// Disjunctive fk join (TPC-H Q19): the fact row qualifies iff for SOME
/// clause k, the referenced dimension row passes `dim_filter[k]` AND the
/// fact row passes `fact_filter[k]`.
struct DisjunctiveJoin {
  Hop hop;
  struct Clause {
    ExprPtr dim_filter;
    ExprPtr fact_filter;
  };
  std::vector<Clause> clauses;
};

enum class AggKind : uint8_t { kSum, kCount, kMin, kMax };

const char* AggKindName(AggKind kind);

/// One output aggregate. `expr` ranges over fact columns; the optional
/// `path_factor` multiplies in a value reached through a fk path (how Q14's
/// `CASE WHEN p_type LIKE 'PROMO%' ...` becomes `promo_flag * revenue`).
struct AggSpec {
  AggKind kind = AggKind::kSum;
  ExprPtr expr;               // null only for kCount
  std::string path_factor;    // alias of a ColumnPath, or empty
  std::string name;

  AggSpec() = default;
  AggSpec(AggKind k, ExprPtr e, std::string n)
      : kind(k), expr(std::move(e)), name(std::move(n)) {}
};

/// Post-join equality between two path columns (Q5's
/// `s_nationkey = c_nationkey` across the two fk chains).
struct PathEquality {
  std::string left_alias;
  std::string right_alias;
};

/// Seeds the group-by table with every key of a dimension before the fact
/// scan, so groups with no qualifying fact rows appear with zeroed
/// aggregates (left-outer groupjoin semantics, TPC-H Q13).
struct GroupSeed {
  std::string table;
  std::string key_column;
};

struct QueryPlan {
  std::string name;  // for diagnostics and benchmark labels

  std::string fact_table;
  ExprPtr fact_filter;  // or null

  std::vector<DimJoin> dims;
  std::vector<ReverseDim> reverse_dims;
  std::optional<DisjunctiveJoin> disjunctive;

  std::vector<ColumnPath> paths;
  std::vector<PathEquality> path_equalities;

  // Group-by key: either an expression over fact columns or a path alias
  // (at most one of the two). Neither -> scalar aggregation.
  ExprPtr group_by;
  std::string group_by_path;

  // Hint for hash-table sizing and the cost model (0 = unknown).
  int64_t group_cardinality_hint = 0;

  std::optional<GroupSeed> group_seed;

  std::vector<AggSpec> aggs;

  // TPC-H Q13's second level: after grouping, histogram the value of
  // aggregate 0 (count of groups per aggregate value).
  bool histogram_of_agg0 = false;

  QueryPlan() = default;
  QueryPlan(QueryPlan&&) = default;
  QueryPlan& operator=(QueryPlan&&) = default;

  bool HasGroupBy() const {
    return group_by != nullptr || !group_by_path.empty();
  }

  const ColumnPath* FindPath(const std::string& alias) const;

  std::string ToString() const;
};

/// A catalog of tables available to plans, by name.
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  Status AddTable(std::shared_ptr<Table> table);
  Result<const Table*> GetTable(const std::string& name) const;
  const Table& TableRef(const std::string& name) const;
  std::vector<std::string> TableNames() const;

 private:
  std::vector<std::shared_ptr<Table>> tables_;
};

/// Validates a plan against a catalog: tables exist, every hop has a
/// registered fk index, filters bind, aliases resolve, group-by and
/// aggregate specs are well-formed.
Status ValidatePlan(const QueryPlan& plan, const Catalog& catalog);

}  // namespace swole

#endif  // SWOLE_PLAN_PLAN_H_
