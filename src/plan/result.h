#ifndef SWOLE_PLAN_RESULT_H_
#define SWOLE_PLAN_RESULT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.h"

// Normalized query results. Every engine (reference oracle, the four
// strategy engines, JIT-generated kernels) produces this form so tests can
// compare them bit-exactly: fixed-point arithmetic means there is no
// floating-point tolerance anywhere.
//
// Grouped results use a flat struct-of-arrays layout (keys + row-major
// aggregate matrix) so extracting a million groups costs two allocations,
// not a million — result materialization must not drown the measured
// aggregation work at reduced benchmark scale.

namespace swole {

struct QueryResult {
  /// Aggregate identity values (what an aggregate holds before any input).
  static constexpr int64_t kMinIdentity = INT64_MAX;
  static constexpr int64_t kMaxIdentity = INT64_MIN;

  bool grouped = false;

  /// !grouped: one value per aggregate.
  std::vector<int64_t> scalar;

  /// grouped: parallel arrays; group_aggs is row-major with `num_aggs`
  /// values per group.
  int num_aggs = 0;
  std::vector<int64_t> group_keys;
  std::vector<int64_t> group_aggs;

  std::vector<std::string> agg_names;

  int64_t NumGroups() const {
    return static_cast<int64_t>(group_keys.size());
  }

  int64_t GroupAgg(int64_t group, int agg) const {
    SWOLE_DCHECK_LT(group, NumGroups());
    SWOLE_DCHECK_LT(agg, num_aggs);
    return group_aggs[group * num_aggs + agg];
  }

  void AddGroup(int64_t key, const int64_t* aggs) {
    group_keys.push_back(key);
    group_aggs.insert(group_aggs.end(), aggs, aggs + num_aggs);
  }

  bool operator==(const QueryResult& other) const {
    // agg_names are labels, not payload.
    return grouped == other.grouped && scalar == other.scalar &&
           num_aggs == other.num_aggs && group_keys == other.group_keys &&
           group_aggs == other.group_aggs;
  }

  /// Sorts groups by key ascending (engines emit hash order).
  void SortGroups();

  std::string ToString(int max_rows = 20) const;
};

}  // namespace swole

#endif  // SWOLE_PLAN_RESULT_H_
