#include "plan/plan.h"

#include <set>

#include "common/string_util.h"
#include "storage/table.h"

namespace swole {

const char* AggKindName(AggKind kind) {
  switch (kind) {
    case AggKind::kSum:
      return "sum";
    case AggKind::kCount:
      return "count";
    case AggKind::kMin:
      return "min";
    case AggKind::kMax:
      return "max";
  }
  return "?";
}

DimJoin DimJoin::CloneTree() const {
  DimJoin copy;
  copy.hop = hop;
  copy.filter = filter ? filter->Clone() : nullptr;
  copy.children.reserve(children.size());
  for (const DimJoin& child : children) {
    copy.children.push_back(child.CloneTree());
  }
  return copy;
}

const ColumnPath* QueryPlan::FindPath(const std::string& alias) const {
  for (const ColumnPath& path : paths) {
    if (path.alias == alias) return &path;
  }
  return nullptr;
}

namespace {
void AppendDim(const DimJoin& dim, int indent, std::string* out) {
  out->append(indent, ' ');
  *out += StringFormat("join %s via %s", dim.hop.to_table.c_str(),
                       dim.hop.fk_column.c_str());
  if (dim.filter != nullptr) {
    *out += StringFormat(" where %s", dim.filter->ToString().c_str());
  }
  *out += "\n";
  for (const DimJoin& child : dim.children) {
    AppendDim(child, indent + 2, out);
  }
}
}  // namespace

std::string QueryPlan::ToString() const {
  std::string out = StringFormat("plan %s: scan %s", name.c_str(),
                                 fact_table.c_str());
  if (fact_filter != nullptr) {
    out += StringFormat(" where %s", fact_filter->ToString().c_str());
  }
  out += "\n";
  for (const DimJoin& dim : dims) AppendDim(dim, 2, &out);
  for (const ReverseDim& rdim : reverse_dims) {
    out += StringFormat("  exists %s.%s -> %s", rdim.table.c_str(),
                        rdim.fk_column.c_str(), fact_table.c_str());
    if (rdim.filter != nullptr) {
      out += StringFormat(" where %s", rdim.filter->ToString().c_str());
    }
    out += "\n";
  }
  if (disjunctive.has_value()) {
    out += StringFormat("  disjunctive join %s via %s (%d clauses)\n",
                        disjunctive->hop.to_table.c_str(),
                        disjunctive->hop.fk_column.c_str(),
                        static_cast<int>(disjunctive->clauses.size()));
  }
  for (const ColumnPath& path : paths) {
    out += StringFormat("  path %s = ", path.alias.c_str());
    for (const Hop& hop : path.hops) {
      out += StringFormat("%s->%s.", hop.fk_column.c_str(),
                          hop.to_table.c_str());
    }
    out += path.column + "\n";
  }
  for (const PathEquality& eq : path_equalities) {
    out += StringFormat("  require %s = %s\n", eq.left_alias.c_str(),
                        eq.right_alias.c_str());
  }
  if (group_by != nullptr) {
    out += StringFormat("  group by %s\n", group_by->ToString().c_str());
  } else if (!group_by_path.empty()) {
    out += StringFormat("  group by path %s\n", group_by_path.c_str());
  }
  for (const AggSpec& agg : aggs) {
    out += StringFormat("  agg %s = %s(%s)%s\n", agg.name.c_str(),
                        AggKindName(agg.kind),
                        agg.expr ? agg.expr->ToString().c_str() : "*",
                        agg.path_factor.empty()
                            ? ""
                            : (" * " + agg.path_factor).c_str());
  }
  return out;
}

Status Catalog::AddTable(std::shared_ptr<Table> table) {
  if (table == nullptr) {
    return Status::InvalidArgument("Catalog::AddTable: null table");
  }
  for (const auto& existing : tables_) {
    if (existing->name() == table->name()) {
      return Status::AlreadyExists(
          StringFormat("table '%s' already in catalog", table->name().c_str()));
    }
  }
  tables_.push_back(std::move(table));
  return Status::OK();
}

Result<const Table*> Catalog::GetTable(const std::string& name) const {
  for (const auto& table : tables_) {
    if (table->name() == name) return static_cast<const Table*>(table.get());
  }
  return Status::NotFound(StringFormat("no table '%s' in catalog",
                                       name.c_str()));
}

const Table& Catalog::TableRef(const std::string& name) const {
  Result<const Table*> result = GetTable(name);
  result.status().CheckOK();
  return *result.value();
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& table : tables_) names.push_back(table->name());
  return names;
}

namespace {

Status ValidateHop(const Hop& hop, const Table& from, const Catalog& catalog,
                   const Table** to_out) {
  SWOLE_ASSIGN_OR_RETURN(const Table* to, catalog.GetTable(hop.to_table));
  if (!from.HasColumn(hop.fk_column)) {
    return Status::NotFound(
        StringFormat("hop fk column '%s' not in table '%s'",
                     hop.fk_column.c_str(), from.name().c_str()));
  }
  if (!from.GetFkIndex(hop.fk_column).ok()) {
    return Status::InvalidArgument(StringFormat(
        "no fk index registered for '%s.%s' (required for join to '%s')",
        from.name().c_str(), hop.fk_column.c_str(), hop.to_table.c_str()));
  }
  if (!to->HasColumn(hop.to_pk_column)) {
    return Status::NotFound(StringFormat(
        "hop pk column '%s' not in table '%s'", hop.to_pk_column.c_str(),
        hop.to_table.c_str()));
  }
  *to_out = to;
  return Status::OK();
}

Status ValidateDim(const DimJoin& dim, const Table& parent,
                   const Catalog& catalog) {
  const Table* dim_table = nullptr;
  SWOLE_RETURN_NOT_OK(ValidateHop(dim.hop, parent, catalog, &dim_table));
  if (dim.filter != nullptr) {
    SWOLE_RETURN_NOT_OK(BindExpr(*dim.filter, *dim_table));
    if (!dim.filter->IsBoolean()) {
      return Status::TypeError(StringFormat(
          "dimension filter on '%s' is not boolean", dim.hop.to_table.c_str()));
    }
  }
  for (const DimJoin& child : dim.children) {
    SWOLE_RETURN_NOT_OK(ValidateDim(child, *dim_table, catalog));
  }
  return Status::OK();
}

}  // namespace

Status ValidatePlan(const QueryPlan& plan, const Catalog& catalog) {
  SWOLE_ASSIGN_OR_RETURN(const Table* fact,
                         catalog.GetTable(plan.fact_table));

  if (plan.fact_filter != nullptr) {
    SWOLE_RETURN_NOT_OK(BindExpr(*plan.fact_filter, *fact));
    if (!plan.fact_filter->IsBoolean()) {
      return Status::TypeError("fact filter is not boolean");
    }
  }

  for (const DimJoin& dim : plan.dims) {
    SWOLE_RETURN_NOT_OK(ValidateDim(dim, *fact, catalog));
  }

  for (const ReverseDim& rdim : plan.reverse_dims) {
    SWOLE_ASSIGN_OR_RETURN(const Table* rtable, catalog.GetTable(rdim.table));
    if (!rtable->GetFkIndex(rdim.fk_column).ok()) {
      return Status::InvalidArgument(StringFormat(
          "no fk index for reverse dim '%s.%s'", rdim.table.c_str(),
          rdim.fk_column.c_str()));
    }
    if (!fact->HasColumn(rdim.fact_pk_column)) {
      return Status::NotFound(StringFormat(
          "fact pk column '%s' not in '%s'", rdim.fact_pk_column.c_str(),
          plan.fact_table.c_str()));
    }
    if (rdim.filter != nullptr) {
      SWOLE_RETURN_NOT_OK(BindExpr(*rdim.filter, *rtable));
    }
  }

  if (plan.disjunctive.has_value()) {
    const Table* dim_table = nullptr;
    SWOLE_RETURN_NOT_OK(
        ValidateHop(plan.disjunctive->hop, *fact, catalog, &dim_table));
    if (plan.disjunctive->clauses.empty()) {
      return Status::InvalidArgument("disjunctive join with no clauses");
    }
    for (const DisjunctiveJoin::Clause& clause : plan.disjunctive->clauses) {
      if (clause.dim_filter != nullptr) {
        SWOLE_RETURN_NOT_OK(BindExpr(*clause.dim_filter, *dim_table));
      }
      if (clause.fact_filter != nullptr) {
        SWOLE_RETURN_NOT_OK(BindExpr(*clause.fact_filter, *fact));
      }
    }
  }

  std::set<std::string> aliases;
  for (const ColumnPath& path : plan.paths) {
    if (path.alias.empty() || !aliases.insert(path.alias).second) {
      return Status::InvalidArgument(StringFormat(
          "missing or duplicate path alias '%s'", path.alias.c_str()));
    }
    if (path.hops.empty()) {
      return Status::InvalidArgument(
          StringFormat("path '%s' has no hops", path.alias.c_str()));
    }
    const Table* current = fact;
    for (const Hop& hop : path.hops) {
      const Table* next = nullptr;
      SWOLE_RETURN_NOT_OK(ValidateHop(hop, *current, catalog, &next));
      current = next;
    }
    if (!current->HasColumn(path.column)) {
      return Status::NotFound(StringFormat(
          "path '%s': no column '%s' in table '%s'", path.alias.c_str(),
          path.column.c_str(), current->name().c_str()));
    }
    if (!path.like_pattern.empty()) {
      const Column& target = current->ColumnRef(path.column);
      if (target.type().logical != LogicalType::kString ||
          target.dictionary() == nullptr) {
        return Status::TypeError(StringFormat(
            "path '%s': LIKE flag requires a dictionary column",
            path.alias.c_str()));
      }
    }
  }

  for (const PathEquality& eq : plan.path_equalities) {
    if (plan.FindPath(eq.left_alias) == nullptr ||
        plan.FindPath(eq.right_alias) == nullptr) {
      return Status::NotFound(StringFormat(
          "path equality references unknown alias ('%s' = '%s')",
          eq.left_alias.c_str(), eq.right_alias.c_str()));
    }
  }

  if (plan.group_by != nullptr && !plan.group_by_path.empty()) {
    return Status::InvalidArgument(
        "group_by and group_by_path are mutually exclusive");
  }
  if (plan.group_by != nullptr) {
    SWOLE_RETURN_NOT_OK(BindExpr(*plan.group_by, *fact));
  }
  if (!plan.group_by_path.empty() &&
      plan.FindPath(plan.group_by_path) == nullptr) {
    return Status::NotFound(StringFormat("group_by_path alias '%s' unknown",
                                         plan.group_by_path.c_str()));
  }

  if (plan.group_seed.has_value()) {
    if (!plan.HasGroupBy()) {
      return Status::InvalidArgument("group_seed without group-by");
    }
    SWOLE_ASSIGN_OR_RETURN(const Table* seed_table,
                           catalog.GetTable(plan.group_seed->table));
    if (!seed_table->HasColumn(plan.group_seed->key_column)) {
      return Status::NotFound(StringFormat(
          "group seed column '%s' not in '%s'",
          plan.group_seed->key_column.c_str(),
          plan.group_seed->table.c_str()));
    }
  }

  if (plan.aggs.empty()) {
    return Status::InvalidArgument("plan has no aggregates");
  }
  for (const AggSpec& agg : plan.aggs) {
    if (agg.kind == AggKind::kCount) {
      if (agg.expr != nullptr) {
        return Status::InvalidArgument("count aggregate takes no expression");
      }
    } else {
      if (agg.expr == nullptr) {
        return Status::InvalidArgument(StringFormat(
            "aggregate '%s' has no expression", agg.name.c_str()));
      }
      SWOLE_RETURN_NOT_OK(BindExpr(*agg.expr, *fact));
    }
    if (plan.HasGroupBy() &&
        agg.kind != AggKind::kSum && agg.kind != AggKind::kCount) {
      return Status::Unimplemented(
          "grouped aggregation supports only sum and count");
    }
    if (!agg.path_factor.empty()) {
      if (plan.FindPath(agg.path_factor) == nullptr) {
        return Status::NotFound(StringFormat(
            "aggregate '%s': unknown path factor '%s'", agg.name.c_str(),
            agg.path_factor.c_str()));
      }
      if (agg.kind != AggKind::kSum) {
        return Status::InvalidArgument(
            "path_factor is only supported on sum aggregates");
      }
    }
  }

  if (plan.histogram_of_agg0 && !plan.HasGroupBy()) {
    return Status::InvalidArgument("histogram_of_agg0 requires group-by");
  }

  return Status::OK();
}

}  // namespace swole
