#ifndef SWOLE_EXEC_ADMISSION_H_
#define SWOLE_EXEC_ADMISSION_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "common/status.h"

// Admission control and overload shedding for concurrent multi-query
// serving (DESIGN.md §11). The scheduler (exec/scheduler.h) makes many
// queries share one worker pool; this layer decides whether a query may
// START, so a saturated process sheds load with structured rejections
// instead of queueing unboundedly, collapsing tail latency, or OOMing:
//
//   * a max-concurrent-queries cap with a bounded-wait queue — a query
//     arriving at a full server waits up to SWOLE_ADMISSION_TIMEOUT_MS for
//     a slot, behind at most SWOLE_MAX_QUEUED waiters, then is shed as
//     kQueueTimeout / kAdmissionRejected;
//   * per-tenant running-query caps (kAdmissionRejected, no queueing — a
//     tenant at its cap must not occupy shared queue slots);
//   * a process-wide GlobalMemoryPool that every per-query QueryContext
//     mirrors its charge-before-allocate accounting into, so concurrent
//     queries compete for one budget and an overcommitted pool refuses the
//     *growth* (one query gets kBudgetExceeded) instead of the process
//     dying.
//
// All shedding outcomes are query-level, structured, and deterministic to
// test: the fault sites `admission_reject`, `queue_timeout`, and
// `pool_exhausted` (common/fault_injection.h) force each rejection path
// without real overload. Outcomes feed the metrics registry under
// `admission.*`.

namespace swole::exec {

struct AdmissionConfig {
  // Maximum queries executing at once; 0 = unlimited (cap disabled).
  int64_t max_concurrent_queries = 0;
  // Maximum queries waiting for a slot before new arrivals are rejected
  // outright; -1 = default (2 * max_concurrent_queries).
  int64_t max_queued_queries = -1;
  // Bounded wait for a slot before a queued query is shed.
  int64_t admission_timeout_ms = 100;
  // Process-wide budget for tracked operator state across all concurrent
  // queries; 0 = no shared pool.
  int64_t global_mem_limit_bytes = 0;
  // Maximum queries a single tenant may have running; 0 = unlimited.
  int64_t max_queries_per_tenant = 0;

  /// SWOLE_MAX_QUERIES, SWOLE_MAX_QUEUED, SWOLE_ADMISSION_TIMEOUT_MS,
  /// SWOLE_GLOBAL_MEM_LIMIT, SWOLE_TENANT_MAX_QUERIES.
  static AdmissionConfig FromEnv();

  /// Effective queue-depth cap (resolves the -1 default).
  int64_t EffectiveMaxQueued() const {
    return max_queued_queries >= 0 ? max_queued_queries
                                   : 2 * max_concurrent_queries;
  }
};

/// The process-wide memory budget concurrent queries draw down from.
/// Reservations are charge-before-allocate, mirrored from each query's
/// QueryContext::TryCharge, so the pool refuses growth *before* the bytes
/// exist. Thread-safe; reserve/release are single atomics.
class GlobalMemoryPool {
 public:
  /// limit_bytes <= 0 means unlimited (the pool still accounts).
  explicit GlobalMemoryPool(int64_t limit_bytes) : limit_(limit_bytes) {}

  /// Reserves `bytes` (> 0) from the pool; false when the pool would
  /// overcommit or the `pool_exhausted` fault site fires. Never blocks.
  bool TryReserve(int64_t bytes);

  /// Returns `bytes` to the pool. Always succeeds.
  void Release(int64_t bytes);

  int64_t limit_bytes() const { return limit_; }
  int64_t reserved_bytes() const {
    return reserved_.load(std::memory_order_relaxed);
  }

 private:
  const int64_t limit_;
  std::atomic<int64_t> reserved_{0};
};

class AdmissionController;

/// A granted admission slot; returned by AdmissionController::Admit and
/// released on destruction (RAII). Movable, not copyable.
class AdmissionTicket {
 public:
  AdmissionTicket() = default;
  ~AdmissionTicket() { Release(); }
  AdmissionTicket(AdmissionTicket&& other) noexcept { *this = std::move(other); }
  AdmissionTicket& operator=(AdmissionTicket&& other) noexcept;
  AdmissionTicket(const AdmissionTicket&) = delete;
  AdmissionTicket& operator=(const AdmissionTicket&) = delete;

  bool admitted() const { return controller_ != nullptr; }
  void Release();

 private:
  friend class AdmissionController;
  AdmissionController* controller_ = nullptr;
  std::string tenant_;
};

class AdmissionController {
 public:
  /// The process-wide controller, configured from the environment on first
  /// use. Disabled (every Admit passes, no locking) unless a cap or the
  /// global pool is configured — the single-query overhead is two relaxed
  /// fault-site probes.
  static AdmissionController& Global();

  /// Replaces the global controller's configuration (serving harnesses and
  /// tests). Safe against concurrent Admits: current waiters re-evaluate
  /// under the new config; already-running queries keep their slots.
  static void ConfigureGlobal(const AdmissionConfig& config);

  explicit AdmissionController(const AdmissionConfig& config);

  /// Asks to start a query for `tenant` (empty = the default tenant).
  /// Blocks up to admission_timeout_ms when the server is saturated.
  /// Returns OK and binds *ticket on admission; kAdmissionRejected when
  /// the queue is full or the tenant is at its cap; kQueueTimeout when the
  /// bounded wait expired. Fault sites `admission_reject` and
  /// `queue_timeout` force the matching outcome deterministically.
  Status Admit(const std::string& tenant, AdmissionTicket* ticket);

  /// The shared pool, or null when no global memory limit is configured.
  GlobalMemoryPool* memory_pool();

  bool enabled() const;
  AdmissionConfig config() const;
  int64_t running() const;
  int64_t waiting() const;

 private:
  friend class AdmissionTicket;
  void Release(const std::string& tenant);
  void ResetConfig(const AdmissionConfig& config);  // under mu_

  mutable std::mutex mu_;
  std::condition_variable slot_free_;
  AdmissionConfig config_;
  std::unique_ptr<GlobalMemoryPool> pool_;
  int64_t running_ = 0;
  int64_t waiting_ = 0;
  std::map<std::string, int64_t> tenant_running_;
  // Config epoch: bumped by ResetConfig so waiters notice live changes.
  int64_t epoch_ = 0;
};

/// How the current driver thread's outermost admission went: whether it
/// waited in the queue and for how long. Written by AdmissionScope /
/// Admit, read by GovernanceScope when stamping the query trace
/// (`admission.queued`, `admission.wait_us` root attributes) — all on the
/// driving thread, so a plain thread-local suffices.
struct AdmissionWaitInfo {
  bool queued = false;
  int64_t wait_us = 0;
};
const AdmissionWaitInfo& LastAdmissionWaitOnThread();

/// RAII admission for one engine execution against the global controller.
/// Engines construct it at the top of Execute and return status() when not
/// OK. Re-entrant per thread: the degradation and JIT-fallback retries of
/// one logical query re-enter engine Execute on the same driver thread and
/// must not be double-counted (or deadlock against their own slot), so
/// only the outermost scope on a thread admits.
class AdmissionScope {
 public:
  explicit AdmissionScope(const std::string& tenant);
  ~AdmissionScope();
  AdmissionScope(const AdmissionScope&) = delete;
  AdmissionScope& operator=(const AdmissionScope&) = delete;

  /// OK when admitted (or admission is disabled / this is a nested scope);
  /// the structured rejection otherwise.
  const Status& status() const { return status_; }

 private:
  AdmissionTicket ticket_;
  Status status_;
  bool outermost_ = false;
};

}  // namespace swole::exec

#endif  // SWOLE_EXEC_ADMISSION_H_
