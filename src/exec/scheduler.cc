#include "exec/scheduler.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/env.h"
#include "common/logging.h"
#include "exec/query_context.h"
#include "obs/metrics.h"

namespace swole::exec {

namespace {

// True while the current thread is executing morsels for some job. Nested
// ParallelMorsels calls detect this and run inline so a pool worker never
// blocks waiting on tasks that need the pool.
thread_local bool t_in_parallel_region = false;

struct Job {
  const MorselFn* fn = nullptr;
  QueryContext* ctx = nullptr;
  int64_t morsel_size = 0;
  int64_t total = 0;
  int participants = 0;
  // Participant w owns the contiguous morsel run
  // [queue_begin[w], queue_end[w]) and pops via fetch_add on cursor[w];
  // a steal is the identical fetch_add on another participant's cursor, so
  // each morsel index is claimed exactly once.
  std::vector<int64_t> queue_begin;
  std::vector<int64_t> queue_end;
  std::unique_ptr<std::atomic<int64_t>[]> cursor;
  std::atomic<int64_t> remaining{0};
  std::atomic<int64_t> steals{0};
  // First error wins; once `aborted` is set, remaining morsels are claimed
  // but their bodies are skipped, so siblings drain fast and the caller's
  // completion wait still terminates.
  std::atomic<bool> aborted{false};
  Status first_error = Status::OK();  // guarded by mu once aborted is set
  std::mutex mu;
  std::condition_variable done;
};

void SetJobError(Job& job, const Status& status) {
  bool expected = false;
  if (job.aborted.compare_exchange_strong(expected, true,
                                          std::memory_order_acq_rel)) {
    std::lock_guard<std::mutex> lock(job.mu);
    job.first_error = status;
  }
}

void RunMorsel(Job& job, int worker, int64_t morsel) {
  if (SWOLE_LIKELY(!job.aborted.load(std::memory_order_acquire))) {
    // Every morsel claim is a cooperative checkpoint under governance.
    if (job.ctx != nullptr) {
      AbortReason live = job.ctx->CheckLiveReason();
      if (SWOLE_UNLIKELY(live != AbortReason::kNone)) {
        SetJobError(job, job.ctx->MakeStatus(live));
      }
    }
    if (SWOLE_LIKELY(!job.aborted.load(std::memory_order_acquire))) {
      const int64_t begin = morsel * job.morsel_size;
      const int64_t end = std::min(job.total, begin + job.morsel_size);
      try {
        (*job.fn)(worker, begin, end);
      } catch (...) {
        // A worker exception must never reach std::thread (that would
        // std::terminate the process): capture the first one as a Status
        // and cancel the sibling participants.
        SetJobError(job, StatusFromCurrentException(job.ctx));
      }
    }
  }
  // The release half of acq_rel publishes this worker's state writes to the
  // caller, whose completion wait loads `remaining` with acquire.
  if (job.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lock(job.mu);
    job.done.notify_all();
  }
}

void RunParticipant(const std::shared_ptr<Job>& job, int worker) {
  const bool was_in_region = t_in_parallel_region;
  t_in_parallel_region = true;
  // Drain the own run first: contiguous morsels keep the scan sequential.
  while (true) {
    int64_t m = job->cursor[worker].fetch_add(1, std::memory_order_relaxed);
    if (m >= job->queue_end[worker]) break;
    RunMorsel(*job, worker, m);
  }
  // Then steal, sweeping the other participants until one full sweep finds
  // no work anywhere.
  bool found = true;
  while (found) {
    found = false;
    for (int v = 1; v < job->participants; ++v) {
      int victim = (worker + v) % job->participants;
      int64_t m = job->cursor[victim].fetch_add(1, std::memory_order_relaxed);
      if (m < job->queue_end[victim]) {
        job->steals.fetch_add(1, std::memory_order_relaxed);
        RunMorsel(*job, worker, m);
        found = true;
      }
    }
  }
  t_in_parallel_region = was_in_region;
}

// Lazily grown, process-lifetime worker pool. A function-local static value
// (not a leaked pointer) so the destructor joins all workers at exit and
// leak/thread sanitizers see a clean shutdown.
class Pool {
 public:
  static Pool& Global() {
    static Pool pool;
    return pool;
  }

  void Submit(std::function<void()> task, int needed_workers) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      while (static_cast<int>(threads_.size()) < needed_workers) {
        threads_.emplace_back([this] { WorkerLoop(); });
      }
      tasks_.push_back(std::move(task));
    }
    cv_.notify_one();
  }

  ~Pool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

 private:
  void WorkerLoop() {
    while (true) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [&] { return shutdown_ || !tasks_.empty(); });
        if (tasks_.empty()) return;  // only reachable on shutdown
        task = std::move(tasks_.front());
        tasks_.pop_front();
      }
      task();
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> tasks_;
  bool shutdown_ = false;
};

}  // namespace

int ResolveNumThreads(int requested) {
  int64_t n = requested > 0 ? requested : GetEnvInt64("SWOLE_THREADS", 1);
  return static_cast<int>(std::clamp<int64_t>(n, 1, 256));
}

int64_t DefaultMorselSize(int64_t tile_size) {
  const int64_t tile = std::max<int64_t>(1, tile_size);
  const int64_t tiles = std::max<int64_t>(1, GetEnvInt64("SWOLE_MORSEL_TILES", 64));
  int64_t morsel = tiles * tile;
  // Round up by whole tiles until 64-row aligned; terminates within 64
  // steps because tile*k mod 64 cycles with period 64/gcd(tile, 64).
  while (morsel % 64 != 0) morsel += tile;
  return morsel;
}

MorselStats ParallelMorsels(int num_threads, int64_t total_rows,
                            int64_t morsel_size, const MorselFn& fn) {
  return ParallelMorsels(nullptr, num_threads, total_rows, morsel_size, fn);
}

namespace {
// Process-wide rollups, bumped once per parallel region (never per morsel).
void CountRegion(const MorselStats& stats) {
  static obs::Counter& runs =
      obs::MetricsRegistry::Global().GetCounter("scheduler.runs");
  static obs::Counter& morsels =
      obs::MetricsRegistry::Global().GetCounter("scheduler.morsels");
  static obs::Counter& steals =
      obs::MetricsRegistry::Global().GetCounter("scheduler.steals");
  runs.Add(1);
  morsels.Add(stats.morsels);
  steals.Add(stats.steals);
}
}  // namespace

MorselStats ParallelMorsels(QueryContext* ctx, int num_threads,
                            int64_t total_rows, int64_t morsel_size,
                            const MorselFn& fn) {
  MorselStats stats;
  if (total_rows <= 0) return stats;
  SWOLE_CHECK(morsel_size > 0);
  const int64_t num_morsels = (total_rows + morsel_size - 1) / morsel_size;
  const int participants = static_cast<int>(
      std::min<int64_t>(std::max(1, num_threads), num_morsels));
  stats.morsels = num_morsels;
  stats.workers = participants;

  if (participants == 1 || t_in_parallel_region) {
    for (int64_t m = 0; m < num_morsels; ++m) {
      if (ctx != nullptr) {
        AbortReason live = ctx->CheckLiveReason();
        if (SWOLE_UNLIKELY(live != AbortReason::kNone)) {
          stats.status = ctx->MakeStatus(live);
          CountRegion(stats);
          return stats;
        }
      }
      const int64_t begin = m * morsel_size;
      try {
        fn(0, begin, std::min(total_rows, begin + morsel_size));
      } catch (...) {
        stats.status = StatusFromCurrentException(ctx);
        CountRegion(stats);
        return stats;
      }
    }
    CountRegion(stats);
    return stats;
  }

  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->ctx = ctx;
  job->morsel_size = morsel_size;
  job->total = total_rows;
  job->participants = participants;
  job->queue_begin.resize(participants);
  job->queue_end.resize(participants);
  job->cursor = std::make_unique<std::atomic<int64_t>[]>(participants);
  job->remaining.store(num_morsels, std::memory_order_relaxed);
  const int64_t base = num_morsels / participants;
  const int64_t extra = num_morsels % participants;
  int64_t next = 0;
  for (int w = 0; w < participants; ++w) {
    job->queue_begin[w] = next;
    next += base + (w < extra ? 1 : 0);
    job->queue_end[w] = next;
    job->cursor[w].store(job->queue_begin[w], std::memory_order_relaxed);
  }
  for (int w = 1; w < participants; ++w) {
    Pool::Global().Submit([job, w] { RunParticipant(job, w); },
                          participants - 1);
  }
  RunParticipant(job, 0);
  {
    // `remaining == 0` means every morsel's fn call has returned, so `fn`
    // (a caller-owned reference) is never touched after we return; late
    // pool tasks only probe the cursors, which the shared_ptr keeps alive.
    std::unique_lock<std::mutex> lock(job->mu);
    job->done.wait(lock, [&] {
      return job->remaining.load(std::memory_order_acquire) == 0;
    });
  }
  stats.steals = job->steals.load(std::memory_order_relaxed);
  if (SWOLE_UNLIKELY(job->aborted.load(std::memory_order_acquire))) {
    std::lock_guard<std::mutex> lock(job->mu);
    stats.status = job->first_error;
  }
  CountRegion(stats);
  return stats;
}

}  // namespace swole::exec
