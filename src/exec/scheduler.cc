#include "exec/scheduler.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/env.h"
#include "common/logging.h"
#include "exec/query_context.h"
#include "obs/metrics.h"

namespace swole::exec {

namespace {

// True while the current thread is executing morsels for some job. Nested
// ParallelMorsels calls detect this and run inline so a pool worker never
// blocks waiting on tasks that need the pool.
thread_local bool t_in_parallel_region = false;

// Per-pool-worker slot markers (Job::worker_slot).
constexpr int kNoSlot = -1;     // this pool worker has not joined the job
constexpr int kSlotsFull = -2;  // job had no free participant slot for it

// One parallel region of one query: the per-query task queue the global
// scheduler multiplexes. Participant slot w owns the contiguous morsel run
// [queue_begin[w], queue_end[w]) and pops via fetch_add on cursor[w]; a
// steal is the identical fetch_add on another slot's cursor, so each morsel
// index is claimed exactly once regardless of which thread holds the slot.
struct Job {
  const MorselFn* fn = nullptr;
  QueryContext* ctx = nullptr;
  int64_t morsel_size = 0;
  int64_t total = 0;
  int participants = 0;
  int priority = 0;   // higher is served first (QueryContext::priority)
  uint64_t seq = 0;   // registration order, anchors the round-robin sweep
  std::vector<int64_t> queue_begin;
  std::vector<int64_t> queue_end;
  std::unique_ptr<std::atomic<int64_t>[]> cursor;
  // Morsels not yet claimed by any participant. The scheduler skips jobs
  // at zero — they are done or being finished by their current claimants.
  std::atomic<int64_t> unclaimed{0};
  std::atomic<int64_t> remaining{0};
  std::atomic<int64_t> steals{0};
  // Participant-slot allocator for pool workers; slot 0 is the caller's.
  std::atomic<int> next_slot{1};
  // Slot held by each pool worker (kNoSlot / kSlotsFull / index). A worker
  // keeps its slot until the job completes, so the slot's thread-local
  // aggregation state is only ever touched by one thread.
  std::unique_ptr<std::atomic<int>[]> worker_slot;
  // First error wins; once `aborted` is set, remaining morsels are claimed
  // but their bodies are skipped, so siblings drain fast and the caller's
  // completion wait still terminates.
  std::atomic<bool> aborted{false};
  Status first_error = Status::OK();  // guarded by mu once aborted is set
  std::mutex mu;
  std::condition_variable done;
};

void SetJobError(Job& job, const Status& status) {
  bool expected = false;
  if (job.aborted.compare_exchange_strong(expected, true,
                                          std::memory_order_acq_rel)) {
    std::lock_guard<std::mutex> lock(job.mu);
    job.first_error = status;
  }
}

/// Claims one morsel for participant `slot`: own run first (keeps the scan
/// contiguous), then a sweep over the sibling slots' runs. Returns the
/// morsel index, setting *stolen when it came from a sibling, or -1 when
/// the job has nothing left to claim.
int64_t ClaimMorsel(Job& job, int slot, bool* stolen) {
  int64_t m = job.cursor[slot].fetch_add(1, std::memory_order_relaxed);
  if (m < job.queue_end[slot]) {
    job.unclaimed.fetch_sub(1, std::memory_order_relaxed);
    return m;
  }
  for (int v = 1; v < job.participants; ++v) {
    int victim = (slot + v) % job.participants;
    m = job.cursor[victim].fetch_add(1, std::memory_order_relaxed);
    if (m < job.queue_end[victim]) {
      job.unclaimed.fetch_sub(1, std::memory_order_relaxed);
      *stolen = true;
      return m;
    }
  }
  return -1;
}

void RunMorsel(Job& job, int worker, int64_t morsel) {
  if (SWOLE_LIKELY(!job.aborted.load(std::memory_order_acquire))) {
    // Every morsel claim is a cooperative checkpoint under governance.
    if (job.ctx != nullptr) {
      AbortReason live = job.ctx->CheckLiveReason();
      if (SWOLE_UNLIKELY(live != AbortReason::kNone)) {
        SetJobError(job, job.ctx->MakeStatus(live));
      }
    }
    if (SWOLE_LIKELY(!job.aborted.load(std::memory_order_acquire))) {
      const int64_t begin = morsel * job.morsel_size;
      const int64_t end = std::min(job.total, begin + job.morsel_size);
      try {
        (*job.fn)(worker, begin, end);
      } catch (...) {
        // A worker exception must never reach std::thread (that would
        // std::terminate the process): capture the first one as a Status
        // and cancel the sibling participants.
        SetJobError(job, StatusFromCurrentException(job.ctx));
      }
    }
  }
  // The release half of acq_rel publishes this worker's state writes to the
  // caller, whose completion wait loads `remaining` with acquire.
  if (job.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lock(job.mu);
    job.done.notify_all();
  }
}

/// The calling thread's participation: slot 0 of its own job, and only its
/// own job — claim (own queue, then steal) until the job is drained.
void RunCallerParticipant(Job& job) {
  const bool was_in_region = t_in_parallel_region;
  t_in_parallel_region = true;
  while (true) {
    bool stolen = false;
    int64_t m = ClaimMorsel(job, 0, &stolen);
    if (m < 0) break;
    if (stolen) job.steals.fetch_add(1, std::memory_order_relaxed);
    RunMorsel(job, 0, m);
  }
  t_in_parallel_region = was_in_region;
}

int64_t ResolvePoolCap() {
  int64_t cap = GetEnvInt64("SWOLE_POOL_THREADS", 0);
  if (cap <= 0) {
    // The floor of 8 keeps stealing and cross-query interleavings real on
    // small CI machines; threads are spawned lazily, so an idle process
    // never pays for the cap.
    cap = std::max<int64_t>(
        {static_cast<int64_t>(std::thread::hardware_concurrency()),
         GetEnvInt64("SWOLE_THREADS", 1), 8});
  }
  return std::clamp<int64_t>(cap, 1, 256);
}

// The process-wide scheduler: a fixed-cap worker pool multiplexing morsels
// from every active job. A function-local static value (not a leaked
// pointer) so the destructor joins all workers at exit and leak/thread
// sanitizers see a clean shutdown.
class TaskScheduler {
 public:
  static TaskScheduler& Global() {
    static TaskScheduler scheduler;
    return scheduler;
  }

  int cap() const { return cap_; }

  int threads_spawned() const {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<int>(threads_.size());
  }

  void Register(const std::shared_ptr<Job>& job) {
    static obs::Gauge& queue_depth =
        obs::MetricsRegistry::Global().GetGauge("scheduler.queue_depth");
    static obs::Gauge& pool_threads =
        obs::MetricsRegistry::Global().GetGauge("scheduler.pool_threads");
    {
      std::lock_guard<std::mutex> lock(mu_);
      job->seq = next_seq_++;
      active_.push_back(job);
      queue_depth.Set(static_cast<int64_t>(active_.size()));
      // Grow the pool toward the summed demand of the active jobs (each
      // job can use participants-1 workers beside its caller), never past
      // the cap and never shrinking: a serving process converges on one
      // warm, fixed-size pool.
      int64_t demand = 0;
      for (const auto& j : active_) demand += j->participants - 1;
      const int target =
          static_cast<int>(std::min<int64_t>(demand, cap_));
      while (static_cast<int>(threads_.size()) < target) {
        const int id = static_cast<int>(threads_.size());
        threads_.emplace_back([this, id] { WorkerLoop(id); });
      }
      pool_threads.Set(static_cast<int64_t>(threads_.size()));
    }
    cv_.notify_all();
  }

  void Unregister(const Job* job) {
    static obs::Gauge& queue_depth =
        obs::MetricsRegistry::Global().GetGauge("scheduler.queue_depth");
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < active_.size(); ++i) {
      if (active_[i].get() == job) {
        active_.erase(active_.begin() + i);
        break;
      }
    }
    queue_depth.Set(static_cast<int64_t>(active_.size()));
  }

  ~TaskScheduler() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

 private:
  TaskScheduler() : cap_(static_cast<int>(ResolvePoolCap())) {}

  /// Picks the job worker `id` should serve next, under mu_: the highest
  /// priority among jobs with unclaimed morsels and a (potential) slot for
  /// this worker; ties broken round-robin by registration sequence,
  /// rotated one step per pick so equal-priority queries interleave at
  /// morsel granularity.
  std::shared_ptr<Job> PickJobFor(int id) {
    std::shared_ptr<Job> best;
    uint64_t rotation = rr_++;
    for (size_t i = 0; i < active_.size(); ++i) {
      const std::shared_ptr<Job>& job =
          active_[(i + rotation) % active_.size()];
      if (job->unclaimed.load(std::memory_order_relaxed) <= 0) continue;
      int slot = job->worker_slot[id].load(std::memory_order_relaxed);
      if (slot == kSlotsFull) continue;
      if (slot == kNoSlot &&
          job->next_slot.load(std::memory_order_relaxed) >=
              job->participants) {
        // No slot will ever free up (slots are held to completion):
        // remember so the wait predicate does not spin on this job.
        job->worker_slot[id].store(kSlotsFull, std::memory_order_relaxed);
        continue;
      }
      if (best == nullptr || job->priority > best->priority) best = job;
    }
    return best;
  }

  void WorkerLoop(int id) {
    std::unique_lock<std::mutex> lock(mu_);
    while (true) {
      std::shared_ptr<Job> job;
      cv_.wait(lock, [&] {
        if (shutdown_) return true;
        job = PickJobFor(id);
        return job != nullptr;
      });
      if (shutdown_) return;
      lock.unlock();
      // Join the job (acquire a participant slot on first contact), then
      // claim and run ONE morsel before re-picking: morsel-granularity
      // round-robin is what keeps a short query's tail latency flat while
      // a scan-heavy neighbor is resident.
      int slot = job->worker_slot[id].load(std::memory_order_relaxed);
      if (slot == kNoSlot) {
        slot = job->next_slot.fetch_add(1, std::memory_order_relaxed);
        if (slot >= job->participants) slot = kSlotsFull;
        job->worker_slot[id].store(slot, std::memory_order_relaxed);
      }
      if (slot >= 0) {
        bool stolen = false;
        int64_t m = ClaimMorsel(*job, slot, &stolen);
        if (m >= 0) {
          if (stolen) job->steals.fetch_add(1, std::memory_order_relaxed);
          const bool was_in_region = t_in_parallel_region;
          t_in_parallel_region = true;
          RunMorsel(*job, slot, m);
          t_in_parallel_region = was_in_region;
        }
      }
      job.reset();
      lock.lock();
    }
  }

  const int cap_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::thread> threads_;
  std::vector<std::shared_ptr<Job>> active_;
  uint64_t next_seq_ = 0;
  uint64_t rr_ = 0;
  bool shutdown_ = false;
};

}  // namespace

int ResolveNumThreads(int requested) {
  int64_t n = requested > 0 ? requested : GetEnvInt64("SWOLE_THREADS", 1);
  return static_cast<int>(std::clamp<int64_t>(n, 1, 256));
}

int GlobalPoolThreadCap() { return TaskScheduler::Global().cap(); }

int GlobalPoolThreadsSpawned() {
  return TaskScheduler::Global().threads_spawned();
}

int64_t DefaultMorselSize(int64_t tile_size) {
  const int64_t tile = std::max<int64_t>(1, tile_size);
  const int64_t tiles = std::max<int64_t>(1, GetEnvInt64("SWOLE_MORSEL_TILES", 64));
  int64_t morsel = tiles * tile;
  // Round up by whole tiles until 64-row aligned; terminates within 64
  // steps because tile*k mod 64 cycles with period 64/gcd(tile, 64).
  while (morsel % 64 != 0) morsel += tile;
  return morsel;
}

MorselStats ParallelMorsels(int num_threads, int64_t total_rows,
                            int64_t morsel_size, const MorselFn& fn) {
  return ParallelMorsels(nullptr, num_threads, total_rows, morsel_size, fn);
}

namespace {
// Process-wide rollups, bumped once per parallel region (never per morsel).
void CountRegion(const MorselStats& stats) {
  static obs::Counter& runs =
      obs::MetricsRegistry::Global().GetCounter("scheduler.runs");
  static obs::Counter& morsels =
      obs::MetricsRegistry::Global().GetCounter("scheduler.morsels");
  static obs::Counter& steals =
      obs::MetricsRegistry::Global().GetCounter("scheduler.steals");
  runs.Add(1);
  morsels.Add(stats.morsels);
  steals.Add(stats.steals);
}
}  // namespace

MorselStats ParallelMorsels(QueryContext* ctx, int num_threads,
                            int64_t total_rows, int64_t morsel_size,
                            const MorselFn& fn) {
  MorselStats stats;
  if (total_rows <= 0) return stats;
  SWOLE_CHECK(morsel_size > 0);
  const int64_t num_morsels = (total_rows + morsel_size - 1) / morsel_size;
  const int participants = static_cast<int>(
      std::min<int64_t>(std::max(1, num_threads), num_morsels));
  stats.morsels = num_morsels;
  stats.workers = participants;

  if (participants == 1 || t_in_parallel_region) {
    for (int64_t m = 0; m < num_morsels; ++m) {
      if (ctx != nullptr) {
        AbortReason live = ctx->CheckLiveReason();
        if (SWOLE_UNLIKELY(live != AbortReason::kNone)) {
          stats.status = ctx->MakeStatus(live);
          CountRegion(stats);
          return stats;
        }
      }
      const int64_t begin = m * morsel_size;
      try {
        fn(0, begin, std::min(total_rows, begin + morsel_size));
      } catch (...) {
        stats.status = StatusFromCurrentException(ctx);
        CountRegion(stats);
        return stats;
      }
    }
    CountRegion(stats);
    return stats;
  }

  TaskScheduler& scheduler = TaskScheduler::Global();
  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->ctx = ctx;
  job->morsel_size = morsel_size;
  job->total = total_rows;
  job->participants = participants;
  job->priority = ctx != nullptr ? ctx->priority() : 0;
  job->queue_begin.resize(participants);
  job->queue_end.resize(participants);
  job->cursor = std::make_unique<std::atomic<int64_t>[]>(participants);
  job->unclaimed.store(num_morsels, std::memory_order_relaxed);
  job->remaining.store(num_morsels, std::memory_order_relaxed);
  job->worker_slot =
      std::make_unique<std::atomic<int>[]>(scheduler.cap());
  for (int w = 0; w < scheduler.cap(); ++w) {
    job->worker_slot[w].store(kNoSlot, std::memory_order_relaxed);
  }
  const int64_t base = num_morsels / participants;
  const int64_t extra = num_morsels % participants;
  int64_t next = 0;
  for (int w = 0; w < participants; ++w) {
    job->queue_begin[w] = next;
    next += base + (w < extra ? 1 : 0);
    job->queue_end[w] = next;
    job->cursor[w].store(job->queue_begin[w], std::memory_order_relaxed);
  }
  scheduler.Register(job);
  RunCallerParticipant(*job);
  {
    // `remaining == 0` means every morsel's fn call has returned, so `fn`
    // (a caller-owned reference) is never touched after we return; late
    // scheduler picks only probe the cursors, which the shared_ptr keeps
    // alive.
    std::unique_lock<std::mutex> lock(job->mu);
    job->done.wait(lock, [&] {
      return job->remaining.load(std::memory_order_acquire) == 0;
    });
  }
  scheduler.Unregister(job.get());
  stats.steals = job->steals.load(std::memory_order_relaxed);
  if (SWOLE_UNLIKELY(job->aborted.load(std::memory_order_acquire))) {
    std::lock_guard<std::mutex> lock(job->mu);
    stats.status = job->first_error;
  }
  CountRegion(stats);
  return stats;
}

}  // namespace swole::exec
