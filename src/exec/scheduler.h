#ifndef SWOLE_EXEC_SCHEDULER_H_
#define SWOLE_EXEC_SCHEDULER_H_

#include <cstdint>
#include <functional>

#include "common/status.h"

// Morsel-driven parallel execution over one process-wide scheduler.
//
// A query's probe/scan side is split into fixed-size "morsels" (a whole
// number of tiles, see DefaultMorselSize); morsels are dealt to a small
// set of participants in contiguous runs, and idle participants steal from
// the tail of other participants' runs. Every participant owns a
// thread-local aggregation state that the engines merge in participant
// order after the scan, which keeps results bit-exact with single-thread
// runs (see DESIGN.md §7).
//
// Concurrency model (DESIGN.md §11). The worker pool behind ParallelMorsels
// is a single process-wide TaskScheduler with a fixed thread cap
// (GlobalPoolThreadCap: SWOLE_POOL_THREADS, else hardware/SWOLE_THREADS).
// Each ParallelMorsels call registers one job — the per-query task queue —
// and pool workers multiplex morsels from all active jobs:
//
//   * fairness: workers pick jobs round-robin at MORSEL granularity, so a
//     long-running scan cannot monopolize the pool against a short query;
//   * priority: jobs inherit QueryContext::priority(); workers always
//     serve the highest-priority job that still has unclaimed morsels
//     (strict priority — equal priorities share round-robin);
//   * participant slots: a pool worker joining a job claims one of the
//     job's participant slots (bounded by the query's num_threads) and
//     keeps it until the job completes, so per-worker aggregation state
//     and the worker-order merge are untouched by multiplexing;
//   * stealing: within a job, exhausting the own slot's run falls through
//     to stealing from sibling slots exactly as before; across jobs, the
//     round-robin pick itself is the (fair) steal.
//
// The calling thread always participates as slot 0 of its own job and only
// its own job — a client thread never burns its latency budget executing
// another query's morsels. Nested ParallelMorsels calls (a morsel function
// starting another parallel region) run inline on the calling participant,
// so the pool can never deadlock on itself.

namespace swole::exec {

class QueryContext;

/// Resolves an engine's thread count: `requested` > 0 wins, otherwise the
/// SWOLE_THREADS environment variable, otherwise 1 (single-threaded — the
/// default matches the pre-parallel engines). Clamped to [1, 256].
int ResolveNumThreads(int requested);

/// The process-wide worker-pool thread cap: SWOLE_POOL_THREADS when set,
/// otherwise max(hardware concurrency, SWOLE_THREADS, 8) — the floor keeps
/// work stealing and the TSan schedules real on small CI machines. Clamped
/// to [1, 256]; resolved once at first use. Threads are spawned lazily up
/// to this cap as jobs demand them and reused across all queries.
int GlobalPoolThreadCap();

/// Pool threads actually spawned so far (<= GlobalPoolThreadCap()). For
/// tests and the serving benchmark.
int GlobalPoolThreadsSpawned();

/// Morsel size for a given tile size: SWOLE_MORSEL_TILES tiles (default
/// 64), rounded up by whole tiles until the size is also a multiple of 64
/// rows. Tile alignment keeps a worker's inner loops full-width; 64-row
/// alignment makes morsel boundaries fall on bitmap word boundaries so
/// parallel bitmap builds (PackBytes) write disjoint words.
int64_t DefaultMorselSize(int64_t tile_size);

struct MorselStats {
  int64_t morsels = 0;
  int64_t steals = 0;
  int workers = 1;  // participant slots available (<= requested threads)
  /// First error observed across all participants. Non-OK means the run
  /// was aborted: some morsels were skipped and per-worker states are
  /// incomplete — callers must discard them and propagate this status.
  Status status = Status::OK();
};

/// Morsel body: process fact rows [begin, end). `worker` indexes the
/// participant's thread-local state, 0 <= worker < num_threads; worker 0
/// is always the calling thread. The same worker id may process many
/// non-adjacent morsels, so per-worker carry state (e.g. ROF selection
/// carries) must hold global row indices.
using MorselFn = std::function<void(int worker, int64_t begin, int64_t end)>;

/// Splits [0, total_rows) into morsel_size-row morsels and runs `fn` over
/// all of them using at most `num_threads` participants (the caller plus
/// pool workers), with work stealing. Blocks until every morsel has
/// completed. With num_threads <= 1, a single morsel, or when called from
/// inside another parallel region, all morsels run inline on the caller in
/// ascending order. total_rows == 0 returns without invoking `fn`.
///
/// Workers are exception-safe: an exception escaping `fn` is caught at the
/// morsel boundary, converted to a Status, and returned as
/// MorselStats::status; sibling participants stop claiming morsels as soon
/// as the first error is recorded. The process never aborts because a
/// morsel threw.
MorselStats ParallelMorsels(int num_threads, int64_t total_rows,
                            int64_t morsel_size, const MorselFn& fn);

/// Governed variant: when `ctx` is non-null, every morsel claim is a
/// cooperative cancellation / deadline checkpoint (QueryContext::CheckLive)
/// and a governance abort (QueryAbort thrown by a tracked allocation, or a
/// checkpoint firing) stops all participants and surfaces as the matching
/// structured Status; the job is scheduled at ctx->priority(). ctx ==
/// nullptr behaves exactly like the overload above.
MorselStats ParallelMorsels(QueryContext* ctx, int num_threads,
                            int64_t total_rows, int64_t morsel_size,
                            const MorselFn& fn);

}  // namespace swole::exec

#endif  // SWOLE_EXEC_SCHEDULER_H_
