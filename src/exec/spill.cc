#include "exec/spill.h"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/bit_util.h"
#include "common/checksum.h"
#include "common/env.h"
#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "exec/query_context.h"
#include "obs/metrics.h"

namespace swole::exec {

SWOLE_REGISTER_FAULT_SITE("spill_create",
                          "creating a spill run file (fopen)")
SWOLE_REGISTER_FAULT_SITE("spill_write",
                          "writing a spill block (fwrite)")
SWOLE_REGISTER_FAULT_SITE("spill_flush",
                          "flushing/closing a spill run (fflush/fclose)")
SWOLE_REGISTER_FAULT_SITE("spill_read",
                          "reading a spill run back (fopen/fread)")
SWOLE_REGISTER_FAULT_SITE("spill_unlink",
                          "removing a merged spill run (unlink)")
SWOLE_REGISTER_FAULT_SITE("spill_enospc",
                          "simulated ENOSPC on the spill write path")
SWOLE_REGISTER_FAULT_SITE("spill_checksum",
                          "spill block checksum mismatch on read-back")

namespace {

constexpr uint64_t kSpillMagic = 0x53575350494C4C31ULL;  // "SWSPILL1"
constexpr int64_t kBlockRows = 4096;
constexpr int64_t kMaxBlockRows = int64_t{1} << 22;
constexpr const char* kMergeSite = "spill_merge";
// Serialized rebuild attempts at depth exhaustion before kSpillFailed.
constexpr int kSoloMergeRetries = 16;

struct FileHeader {
  uint64_t magic;
  int32_t payload_width;
  int32_t reserved;
};

struct BlockHeader {
  uint64_t checksum;
  uint32_t num_rows;
  uint32_t row_width;
};

struct SpillMetrics {
  obs::Counter& spills;
  obs::Counter& bytes_written;
  obs::Counter& blocks_written;
  obs::Counter& rows;
  obs::Counter& merge_rows;
  obs::Counter& partitions_merged;
  obs::Counter& repartitions;
  obs::Counter& checksum_failures;
};

SpillMetrics& Metrics() {
  static SpillMetrics* metrics = new SpillMetrics{
      obs::MetricsRegistry::Global().GetCounter("spill.spills"),
      obs::MetricsRegistry::Global().GetCounter("spill.bytes_written"),
      obs::MetricsRegistry::Global().GetCounter("spill.blocks_written"),
      obs::MetricsRegistry::Global().GetCounter("spill.rows"),
      obs::MetricsRegistry::Global().GetCounter("spill.merge_rows"),
      obs::MetricsRegistry::Global().GetCounter("spill.partitions_merged"),
      obs::MetricsRegistry::Global().GetCounter("spill.repartitions"),
      obs::MetricsRegistry::Global().GetCounter("spill.checksum_failures"),
  };
  return *metrics;
}

}  // namespace

SpillConfig SpillConfig::FromEnv() {
  SpillConfig config;
  std::string mode = GetEnvString("SWOLE_SPILL", "off");
  config.enabled = mode == "auto" || mode == "on" || mode == "1";
  config.dir = ScratchDir::ResolveBase("SWOLE_SPILL_DIR", "spill");
  int64_t partitions = GetEnvInt64("SWOLE_SPILL_PARTITIONS", 16);
  partitions = std::clamp<int64_t>(partitions, 2, 256);
  config.num_partitions =
      static_cast<int>(bit_util::NextPowerOfTwo(partitions));
  int64_t depth = GetEnvInt64("SWOLE_SPILL_DEPTH", 4);
  config.max_depth = static_cast<int>(std::clamp<int64_t>(depth, 1, 8));
  return config;
}

SpillManager::SpillManager(SpillConfig config, int payload_width,
                           QueryContext* ctx)
    : config_(std::move(config)), payload_width_(payload_width), ctx_(ctx) {
  SWOLE_CHECK_GE(payload_width_, 0);
  radix_bits_ = __builtin_ctz(static_cast<unsigned>(config_.num_partitions));
  // Every repartition level consumes radix_bits_ more hash bits; cap the
  // depth so the deepest digit still comes from real hash bits.
  config_.max_depth =
      std::min(config_.max_depth, 64 / radix_bits_ - 1);
}

SpillManager::~SpillManager() {
  for (auto& writer : writers_) {
    if (writer != nullptr && writer->file != nullptr) {
      std::fclose(writer->file);
      writer->file = nullptr;
    }
  }
  // scratch_ destructor removes every tracked run file (and sweeps the
  // directory) — the abort/cancel/deadline cleanup path.
}

int SpillManager::RadixDigit(int64_t key, int depth) const {
  uint64_t hash = HashTable::Hash(key);
  int shift = 64 - radix_bits_ * (depth + 1);
  return static_cast<int>((hash >> shift) &
                          static_cast<uint64_t>(config_.num_partitions - 1));
}

Status SpillManager::EnsureScratchDir() {
  std::lock_guard<std::mutex> lock(dir_mu_);
  if (!writers_.empty()) return Status::OK();
  SWOLE_ASSIGN_OR_RETURN(ScratchDir dir,
                         ScratchDir::CreateUnder(config_.dir, "swole_spill_"));
  scratch_ = std::move(dir);
  writers_.resize(config_.num_partitions);
  for (int p = 0; p < config_.num_partitions; ++p) {
    writers_[p] = std::make_unique<PartitionWriter>();
    writers_[p]->path =
        StringFormat("%s/p%03d.run", scratch_.path().c_str(), p);
    scratch_.Track(writers_[p]->path);
  }
  return Status::OK();
}

Status SpillManager::FlushBlock(PartitionWriter& writer) {
  if (writer.buffer.empty()) return Status::OK();
  if (writer.file == nullptr) {
    SWOLE_FAULT_POINT("spill_create",
                      Status::IOError("injected fault: spill_create"));
    writer.file = std::fopen(writer.path.c_str(), "wb");
    if (writer.file == nullptr) {
      return Status::IOError(StringFormat("cannot create spill run %s: %s",
                                          writer.path.c_str(),
                                          std::strerror(errno)));
    }
    FileHeader header{kSpillMagic, payload_width_, 0};
    if (std::fwrite(&header, sizeof(header), 1, writer.file) != 1) {
      return Status::IOError(StringFormat("cannot write spill header to %s",
                                          writer.path.c_str()));
    }
    bytes_written_.fetch_add(sizeof(header), std::memory_order_relaxed);
  }
  SWOLE_FAULT_POINT(
      "spill_enospc",
      Status::IOError("injected fault: spill_enospc (no space left on "
                      "device)"));
  SWOLE_FAULT_POINT("spill_write",
                    Status::IOError("injected fault: spill_write"));
  const int row_width = 1 + payload_width_;
  const size_t num_rows = writer.buffer.size() / row_width;
  const size_t data_bytes = writer.buffer.size() * sizeof(int64_t);
  BlockHeader block;
  block.checksum = Xxh64(writer.buffer.data(), data_bytes);
  block.num_rows = static_cast<uint32_t>(num_rows);
  block.row_width = static_cast<uint32_t>(row_width);
  if (std::fwrite(&block, sizeof(block), 1, writer.file) != 1 ||
      std::fwrite(writer.buffer.data(), sizeof(int64_t),
                  writer.buffer.size(), writer.file) != writer.buffer.size()) {
    return Status::IOError(StringFormat("short write to spill run %s: %s",
                                        writer.path.c_str(),
                                        std::strerror(errno)));
  }
  bytes_written_.fetch_add(
      static_cast<int64_t>(sizeof(block) + data_bytes),
      std::memory_order_relaxed);
  rows_spilled_.fetch_add(static_cast<int64_t>(num_rows),
                          std::memory_order_relaxed);
  Metrics().blocks_written.Add(1);
  Metrics().bytes_written.Add(static_cast<int64_t>(sizeof(block) + data_bytes));
  Metrics().rows.Add(static_cast<int64_t>(num_rows));
  writer.buffer.clear();
  return Status::OK();
}

Status SpillManager::AppendRow(PartitionWriter& writer, int64_t key,
                               const int64_t* payload) {
  std::lock_guard<std::mutex> lock(writer.mu);
  if (!writer.failed_error.empty()) {
    return Status::IOError(
        StringFormat("spill run %s already failed: %s", writer.path.c_str(),
                     writer.failed_error.c_str()));
  }
  writer.buffer.push_back(key);
  writer.buffer.insert(writer.buffer.end(), payload,
                       payload + payload_width_);
  if (static_cast<int64_t>(writer.buffer.size()) >=
      kBlockRows * (1 + payload_width_)) {
    Status st = FlushBlock(writer);
    if (!st.ok()) {
      writer.failed_error = std::string(st.message());
      return st;
    }
  }
  return Status::OK();
}

Status SpillManager::SpillTable(const HashTable& table, int64_t skip_key) {
  SWOLE_RETURN_NOT_OK(EnsureScratchDir());
  Status status;
  table.ForEach([&](int64_t key, const int64_t* payload) {
    if (key == skip_key || !status.ok()) return;
    status = AppendRow(*writers_[RadixDigit(key, 0)], key, payload);
  });
  SWOLE_RETURN_NOT_OK(status);
  spill_events_.fetch_add(1, std::memory_order_acq_rel);
  Metrics().spills.Add(1);
  return Status::OK();
}

Status SpillManager::SpillRow(int64_t key, const int64_t* payload) {
  SWOLE_RETURN_NOT_OK(EnsureScratchDir());
  return AppendRow(*writers_[RadixDigit(key, 0)], key, payload);
}

void SpillManager::NoteSpillEvent() {
  spill_events_.fetch_add(1, std::memory_order_acq_rel);
  Metrics().spills.Add(1);
}

Status SpillManager::CloseWriter(PartitionWriter& writer) {
  std::lock_guard<std::mutex> lock(writer.mu);
  SWOLE_RETURN_NOT_OK(FlushBlock(writer));
  if (writer.file == nullptr) return Status::OK();
  SWOLE_FAULT_POINT("spill_flush",
                    Status::IOError("injected fault: spill_flush"));
  int rc = std::fflush(writer.file);
  rc |= std::fclose(writer.file);
  writer.file = nullptr;
  if (rc != 0) {
    return Status::IOError(StringFormat("cannot flush spill run %s: %s",
                                        writer.path.c_str(),
                                        std::strerror(errno)));
  }
  return Status::OK();
}

Status SpillManager::Flush() {
  Status status;
  for (auto& writer : writers_) {
    if (writer == nullptr) continue;
    Status st = CloseWriter(*writer);
    // Close every writer even after a failure so no FILE* leaks; report
    // the first error.
    if (!st.ok() && status.ok()) status = st;
    if (!st.ok() && writer->file != nullptr) {
      std::fclose(writer->file);
      writer->file = nullptr;
    }
  }
  return status;
}

Status SpillManager::ReadRun(
    const std::string& path,
    const std::function<Status(int64_t, const int64_t*)>& row_fn) {
  if (::access(path.c_str(), F_OK) != 0) {
    return Status::OK();  // partition never received a row
  }
  SWOLE_FAULT_POINT("spill_read",
                    Status::IOError("injected fault: spill_read"));
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::IOError(StringFormat("cannot open spill run %s: %s",
                                        path.c_str(), std::strerror(errno)));
  }
  auto fail = [&](std::string msg) {
    std::fclose(file);
    return Status::IOError(std::move(msg));
  };
  FileHeader header;
  if (std::fread(&header, sizeof(header), 1, file) != 1 ||
      header.magic != kSpillMagic ||
      header.payload_width != payload_width_) {
    return fail(StringFormat("corrupt spill run header in %s", path.c_str()));
  }
  std::vector<int64_t> rows;
  while (true) {
    BlockHeader block;
    size_t n = std::fread(&block, sizeof(block), 1, file);
    if (n == 0) {
      if (std::feof(file)) break;
      return fail(StringFormat("read failed on spill run %s", path.c_str()));
    }
    if (block.row_width != static_cast<uint32_t>(1 + payload_width_) ||
        block.num_rows == 0 ||
        block.num_rows > static_cast<uint32_t>(kMaxBlockRows)) {
      return fail(
          StringFormat("corrupt spill block header in %s", path.c_str()));
    }
    rows.resize(static_cast<size_t>(block.num_rows) * block.row_width);
    if (std::fread(rows.data(), sizeof(int64_t), rows.size(), file) !=
        rows.size()) {
      return fail(
          StringFormat("truncated spill block in %s", path.c_str()));
    }
    uint64_t computed = Xxh64(rows.data(), rows.size() * sizeof(int64_t));
    if (FaultInjector::Global().ShouldFail("spill_checksum")) {
      computed ^= 1;  // deterministic corruption for the fault sweep
    }
    if (computed != block.checksum) {
      Metrics().checksum_failures.Add(1);
      return fail(StringFormat(
          "spill block checksum mismatch in %s (stored %016llx, computed "
          "%016llx)",
          path.c_str(), static_cast<unsigned long long>(block.checksum),
          static_cast<unsigned long long>(computed)));
    }
    const int row_width = 1 + payload_width_;
    for (uint32_t r = 0; r < block.num_rows; ++r) {
      const int64_t* row = rows.data() + static_cast<size_t>(r) * row_width;
      Status st = row_fn(row[0], row + 1);
      if (!st.ok()) {
        std::fclose(file);
        return st;
      }
    }
  }
  std::fclose(file);
  return Status::OK();
}

Status SpillManager::RemoveRun(const std::string& path) {
  SWOLE_FAULT_POINT("spill_unlink",
                    Status::IOError("injected fault: spill_unlink"));
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return Status::IOError(StringFormat("cannot remove spill run %s: %s",
                                        path.c_str(), std::strerror(errno)));
  }
  return Status::OK();
}

Status SpillManager::Repartition(const std::string& path, int depth,
                                 std::vector<std::string>* child_paths) {
  Metrics().repartitions.Add(1);
  std::vector<std::unique_ptr<PartitionWriter>> children(
      config_.num_partitions);
  for (int p = 0; p < config_.num_partitions; ++p) {
    children[p] = std::make_unique<PartitionWriter>();
    children[p]->path = StringFormat("%s.%03d", path.c_str(), p);
    scratch_.Track(children[p]->path);
  }
  Status status = ReadRun(path, [&](int64_t key, const int64_t* payload) {
    return AppendRow(*children[RadixDigit(key, depth + 1)], key, payload);
  });
  for (auto& child : children) {
    Status st = CloseWriter(*child);
    if (!st.ok() && status.ok()) status = st;
    if (child->file != nullptr) {
      std::fclose(child->file);
      child->file = nullptr;
    }
  }
  SWOLE_RETURN_NOT_OK(status);
  SWOLE_RETURN_NOT_OK(RemoveRun(path));
  child_paths->clear();
  for (auto& child : children) child_paths->push_back(child->path);
  return Status::OK();
}

Status SpillManager::RebuildRun(const std::string& path,
                                const SpillMergeFn& merge_fn,
                                std::vector<int64_t>* out_rows,
                                bool* over_budget) {
  // Rebuild this run's groups under the query budget. The table charges
  // at "spill_merge"; a refusal abandons the partial rebuild (the table's
  // destructor releases its charge) and reports over_budget to the caller.
  *over_budget = false;
  HashTable table(payload_width_, 16);
  try {
    if (ctx_ != nullptr) {
      table.SetMemHook(QueryContext::MemHookThunk, ctx_, kMergeSite);
    }
    Status st = ReadRun(path, [&](int64_t key, const int64_t* payload) {
      int64_t before = table.size();
      int64_t* dst = table.GetOrInsert(key);
      if (table.size() > before) {
        std::memcpy(dst, payload, payload_width_ * sizeof(int64_t));
      } else {
        merge_fn(dst, payload);
      }
      return Status::OK();
    });
    if (!st.ok()) return st;
    SWOLE_RETURN_NOT_OK(RemoveRun(path));
    out_rows->reserve(out_rows->size() +
                      static_cast<size_t>(table.size()) *
                          (1 + payload_width_));
    table.ForEach([&](int64_t key, const int64_t* payload) {
      out_rows->push_back(key);
      out_rows->insert(out_rows->end(), payload, payload + payload_width_);
    });
    Metrics().merge_rows.Add(table.size());
    return Status::OK();
  } catch (const QueryAbort& abort) {
    // Budget refusals start the next rung of the ladder; deadline and
    // cancellation propagate (the caller's governed region converts
    // them to structured Statuses).
    if (abort.reason != AbortReason::kBudget) throw;
    // Recovered: the refusal's pending-abort record must not reclassify
    // the structured Status this ladder produces (e.g. kSpillFailed at
    // depth exhaustion) back into kBudgetExceeded.
    if (ctx_ != nullptr) ctx_->ClearRecoveredBudgetAbort();
    *over_budget = true;
    return Status::OK();
  }
}

Status SpillManager::MergeRun(const std::string& path, int depth,
                              const SpillMergeFn& merge_fn,
                              std::vector<int64_t>* out_rows) {
  bool over_budget = false;
  SWOLE_RETURN_NOT_OK(RebuildRun(path, merge_fn, out_rows, &over_budget));
  if (!over_budget) return Status::OK();
  if (depth >= config_.max_depth) {
    // Last resort before failing: partitions are merged concurrently, so
    // the refusals that burned every repartition level may have come from
    // sibling merges' transient charges, not this partition's own size.
    // Retry serialized behind the solo lock — siblings keep draining and
    // releasing their rebuild tables — so kSpillFailed is only returned
    // for a partition that does not fit the budget largely on its own.
    std::lock_guard<std::mutex> solo(solo_merge_mu_);
    for (int attempt = 0; attempt < kSoloMergeRetries; ++attempt) {
      SWOLE_RETURN_NOT_OK(RebuildRun(path, merge_fn, out_rows, &over_budget));
      if (!over_budget) return Status::OK();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return Status::SpillFailed(StringFormat(
        "spill partition %s still exceeds the memory budget at repartition "
        "depth %d (SWOLE_SPILL_DEPTH=%d, SWOLE_SPILL_PARTITIONS=%d); raise "
        "mem_limit_bytes or the partition fan-out",
        path.c_str(), depth, config_.max_depth, config_.num_partitions));
  }
  int new_depth = depth + 1;
  int seen = max_depth_reached_.load(std::memory_order_relaxed);
  while (seen < new_depth &&
         !max_depth_reached_.compare_exchange_weak(
             seen, new_depth, std::memory_order_acq_rel)) {
  }
  std::vector<std::string> children;
  SWOLE_RETURN_NOT_OK(Repartition(path, depth, &children));
  for (const std::string& child : children) {
    SWOLE_RETURN_NOT_OK(MergeRun(child, new_depth, merge_fn, out_rows));
  }
  return Status::OK();
}

Status SpillManager::MergePartition(int index, const SpillMergeFn& merge_fn,
                                    std::vector<int64_t>* out_rows) {
  SWOLE_CHECK(index >= 0 && index < config_.num_partitions);
  if (writers_.empty()) return Status::OK();  // nothing ever spilled
  Metrics().partitions_merged.Add(1);
  return MergeRun(writers_[index]->path, 0, merge_fn, out_rows);
}

}  // namespace swole::exec
