#include "exec/admission.h"

#include <chrono>
#include <memory>
#include <utility>

#include "common/env.h"
#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "obs/metrics.h"

namespace swole::exec {

namespace {

// Shedding outcomes feed the registry so overload is visible without
// per-query tracing (naming: admission.<event>).
obs::Counter& AdmittedCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("admission.admitted");
  return c;
}
obs::Counter& RejectedCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("admission.rejected");
  return c;
}
obs::Counter& TenantRejectedCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("admission.tenant_rejected");
  return c;
}
obs::Counter& TimeoutCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("admission.timeouts");
  return c;
}
obs::Counter& QueuedCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("admission.queued");
  return c;
}
obs::Counter& PoolRefusalCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("admission.pool_refusals");
  return c;
}
obs::Gauge& RunningGauge() {
  static obs::Gauge& g =
      obs::MetricsRegistry::Global().GetGauge("admission.running");
  return g;
}
obs::Gauge& WaitingGauge() {
  static obs::Gauge& g =
      obs::MetricsRegistry::Global().GetGauge("admission.waiting");
  return g;
}
obs::Histogram& WaitHistogram() {
  static obs::Histogram& h =
      obs::MetricsRegistry::Global().GetHistogram("admission.wait_us");
  return h;
}

// Only the outermost AdmissionScope on a driver thread admits: retries of
// the same logical query (SWOLE degradation, JIT fallback) re-enter engine
// Execute on this thread while the outer scope still holds the slot.
thread_local bool t_thread_admitted = false;

// Queue-wait facts for the outermost admission on this thread; stamped
// onto the query trace by GovernanceScope (query_context.cc).
thread_local AdmissionWaitInfo t_last_wait;

}  // namespace

const AdmissionWaitInfo& LastAdmissionWaitOnThread() { return t_last_wait; }

AdmissionConfig AdmissionConfig::FromEnv() {
  AdmissionConfig config;
  config.max_concurrent_queries = GetEnvInt64("SWOLE_MAX_QUERIES", 0);
  config.max_queued_queries = GetEnvInt64("SWOLE_MAX_QUEUED", -1);
  config.admission_timeout_ms =
      GetEnvInt64("SWOLE_ADMISSION_TIMEOUT_MS", 100);
  config.global_mem_limit_bytes = GetEnvInt64("SWOLE_GLOBAL_MEM_LIMIT", 0);
  config.max_queries_per_tenant =
      GetEnvInt64("SWOLE_TENANT_MAX_QUERIES", 0);
  return config;
}

bool GlobalMemoryPool::TryReserve(int64_t bytes) {
  if (bytes <= 0) return true;
  // Deterministic exhaustion for tests: refuses as if the pool were full.
  if (SWOLE_UNLIKELY(
          FaultInjector::Global().ShouldFail("pool_exhausted"))) {
    PoolRefusalCounter().Add(1);
    return false;
  }
  int64_t now = reserved_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  if (SWOLE_UNLIKELY(limit_ > 0 && now > limit_)) {
    reserved_.fetch_sub(bytes, std::memory_order_relaxed);
    PoolRefusalCounter().Add(1);
    return false;
  }
  return true;
}

void GlobalMemoryPool::Release(int64_t bytes) {
  if (bytes <= 0) return;
  reserved_.fetch_sub(bytes, std::memory_order_relaxed);
}

AdmissionTicket& AdmissionTicket::operator=(AdmissionTicket&& other) noexcept {
  if (this != &other) {
    Release();
    controller_ = other.controller_;
    tenant_ = std::move(other.tenant_);
    other.controller_ = nullptr;
  }
  return *this;
}

void AdmissionTicket::Release() {
  if (controller_ != nullptr) {
    controller_->Release(tenant_);
    controller_ = nullptr;
  }
}

AdmissionController& AdmissionController::Global() {
  // Leaked: tickets released from client threads may outlive static
  // destruction of this translation unit's other objects.
  static AdmissionController* controller =
      new AdmissionController(AdmissionConfig::FromEnv());
  return *controller;
}

void AdmissionController::ConfigureGlobal(const AdmissionConfig& config) {
  AdmissionController& controller = Global();
  {
    std::lock_guard<std::mutex> lock(controller.mu_);
    controller.ResetConfig(config);
  }
  controller.slot_free_.notify_all();
}

AdmissionController::AdmissionController(const AdmissionConfig& config) {
  ResetConfig(config);
}

void AdmissionController::ResetConfig(const AdmissionConfig& config) {
  config_ = config;
  ++epoch_;
  if (config.global_mem_limit_bytes > 0) {
    // A new pool starts empty; in-flight queries keep drawing from the
    // pool they attached at admission (their QueryContext holds the
    // pointer), so a reconfiguration never strands or double-frees bytes.
    pool_ = std::make_unique<GlobalMemoryPool>(config.global_mem_limit_bytes);
  } else {
    pool_.reset();
  }
}

bool AdmissionController::enabled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return config_.max_concurrent_queries > 0 ||
         config_.max_queries_per_tenant > 0 ||
         config_.global_mem_limit_bytes > 0;
}

AdmissionConfig AdmissionController::config() const {
  std::lock_guard<std::mutex> lock(mu_);
  return config_;
}

int64_t AdmissionController::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

int64_t AdmissionController::waiting() const {
  std::lock_guard<std::mutex> lock(mu_);
  return waiting_;
}

GlobalMemoryPool* AdmissionController::memory_pool() {
  std::lock_guard<std::mutex> lock(mu_);
  return pool_.get();
}

Status AdmissionController::Admit(const std::string& tenant,
                                  AdmissionTicket* ticket) {
  // The deterministic rejection sites fire before any capacity math so
  // every shedding path is testable without real overload — even on a
  // controller with no caps configured.
  if (SWOLE_UNLIKELY(
          FaultInjector::Global().ShouldFail("admission_reject"))) {
    RejectedCounter().Add(1);
    return Status::AdmissionRejected(
        "admission rejected (injected admission_reject fault)");
  }
  if (SWOLE_UNLIKELY(FaultInjector::Global().ShouldFail("queue_timeout"))) {
    TimeoutCounter().Add(1);
    return Status::QueueTimeout(
        "admission queue timeout (injected queue_timeout fault)");
  }

  std::unique_lock<std::mutex> lock(mu_);
  if (config_.max_queries_per_tenant > 0 && !tenant.empty()) {
    auto it = tenant_running_.find(tenant);
    if (it != tenant_running_.end() &&
        it->second >= config_.max_queries_per_tenant) {
      // Tenant caps shed immediately: a capped tenant must not consume
      // shared queue slots other tenants could use.
      TenantRejectedCounter().Add(1);
      RejectedCounter().Add(1);
      return Status::AdmissionRejected(StringFormat(
          "tenant \"%s\" is at its cap of %lld running queries",
          tenant.c_str(),
          static_cast<long long>(config_.max_queries_per_tenant)));
    }
  }

  if (config_.max_concurrent_queries > 0 &&
      running_ >= config_.max_concurrent_queries) {
    if (waiting_ >= config_.EffectiveMaxQueued()) {
      RejectedCounter().Add(1);
      return Status::AdmissionRejected(StringFormat(
          "server saturated: %lld queries running (cap %lld), "
          "%lld already queued (cap %lld)",
          static_cast<long long>(running_),
          static_cast<long long>(config_.max_concurrent_queries),
          static_cast<long long>(waiting_),
          static_cast<long long>(config_.EffectiveMaxQueued())));
    }
    ++waiting_;
    QueuedCounter().Add(1);
    WaitingGauge().Set(waiting_);
    const int64_t entry_epoch = epoch_;
    const auto wait_start = std::chrono::steady_clock::now();
    const auto deadline =
        wait_start + std::chrono::milliseconds(config_.admission_timeout_ms);
    const bool got_slot = slot_free_.wait_until(lock, deadline, [&] {
      // Re-read the config each evaluation so ConfigureGlobal takes
      // effect on live waiters.
      return epoch_ != entry_epoch ||
             config_.max_concurrent_queries <= 0 ||
             running_ < config_.max_concurrent_queries;
    });
    --waiting_;
    WaitingGauge().Set(waiting_);
    const int64_t waited_us =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - wait_start)
            .count();
    WaitHistogram().Record(waited_us);
    t_last_wait.queued = true;
    t_last_wait.wait_us = waited_us;
    if (!got_slot) {
      TimeoutCounter().Add(1);
      return Status::QueueTimeout(StringFormat(
          "no admission slot within %lldms (cap %lld running)",
          static_cast<long long>(config_.admission_timeout_ms),
          static_cast<long long>(config_.max_concurrent_queries)));
    }
  }

  ++running_;
  RunningGauge().Set(running_);
  if (!tenant.empty()) ++tenant_running_[tenant];
  AdmittedCounter().Add(1);
  if (ticket != nullptr) {
    ticket->Release();
    ticket->controller_ = this;
    ticket->tenant_ = tenant;
  }
  return Status::OK();
}

void AdmissionController::Release(const std::string& tenant) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --running_;
    RunningGauge().Set(running_);
    if (!tenant.empty()) {
      auto it = tenant_running_.find(tenant);
      if (it != tenant_running_.end() && --it->second <= 0) {
        tenant_running_.erase(it);
      }
    }
  }
  slot_free_.notify_all();
}

AdmissionScope::AdmissionScope(const std::string& tenant) {
  if (t_thread_admitted) return;  // nested: the outer scope holds the slot
  t_last_wait = AdmissionWaitInfo{};  // fresh facts for this admission
  AdmissionController& controller = AdmissionController::Global();
  status_ = controller.Admit(tenant, &ticket_);
  if (status_.ok()) {
    t_thread_admitted = true;
    outermost_ = true;
  }
}

AdmissionScope::~AdmissionScope() {
  if (outermost_) t_thread_admitted = false;
}

}  // namespace swole::exec
