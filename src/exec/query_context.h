#ifndef SWOLE_EXEC_QUERY_CONTEXT_H_
#define SWOLE_EXEC_QUERY_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/query_abort.h"
#include "common/status.h"
#include "common/timer.h"
#include "cost/feedback.h"

namespace swole::obs {
class PerfCounterSet;
class QueryTrace;
}  // namespace swole::obs

// Query-lifecycle governance: one QueryContext per query execution carries
//
//   * a MemoryTracker — hierarchical query -> operator-site accounting with
//     a hard budget (SWOLE_MEM_LIMIT / StrategyOptions::mem_limit_bytes).
//     HashTable / PositionalBitmap growth charges the tracker *before*
//     allocating (exec/hash_table.h SetMemHook), so a breach refuses the
//     growth instead of discovering it after the fact;
//   * a wall-clock deadline (SWOLE_DEADLINE_MS / deadline_ms);
//   * a cooperative cancellation token, checked at every morsel claim in
//     the scheduler and at every tracked allocation.
//
// A breach never takes the process down: the refusing site throws
// QueryAbort (common/query_abort.h), the engine or scheduler converts it to
// a structured Status (kBudgetExceeded / kDeadlineExceeded / kCancelled)
// carrying the per-operator peak-memory attribution, and SWOLE's pullup
// plans get one retry under the memory-lean data-centric strategy.
//
// Fault injection (common/fault_injection.h): every tracked allocation site
// is an injection point (SWOLE_FAULT=group_table:1.0 refuses every
// GroupTable growth as a budget breach), and the synthetic site
// `deadline_fire` makes CheckLive report an expired deadline on demand —
// so every degradation path is deterministically testable.

namespace swole::exec {

class GlobalMemoryPool;

class QueryContext {
 public:
  struct Limits {
    int64_t mem_limit_bytes = 0;  // 0 = unlimited
    int64_t deadline_ms = 0;      // 0 = no deadline
  };

  QueryContext();
  explicit QueryContext(Limits limits);
  ~QueryContext();

  QueryContext(const QueryContext&) = delete;
  QueryContext& operator=(const QueryContext&) = delete;

  // ---- Cancellation / deadline ----

  /// Requests cooperative cancellation (thread-safe; callable from any
  /// thread while the query runs). Workers observe it at the next morsel
  /// claim or tracked allocation.
  void RequestCancel();
  bool cancel_requested() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// Why the query must stop now, or kNone. Order: cancellation, then the
  /// deadline (sticky once fired), then the `deadline_fire` fault site.
  AbortReason CheckLiveReason();

  /// CheckLiveReason as a structured Status (OK when live).
  Status CheckLive();

  // ---- Memory accounting ----

  /// Asks permission to grow `site` by `delta` bytes (delta < 0 releases
  /// unconditionally). Refuses — recording the pending abort — when the
  /// budget would be breached, when cancellation/deadline fired, or when
  /// the site's allocation fault is armed. Returns kNone on success.
  AbortReason TryCharge(int64_t delta, const char* site);

  int64_t limit_bytes() const { return limits_.mem_limit_bytes; }
  int64_t deadline_ms() const { return limits_.deadline_ms; }
  int64_t consumed_bytes() const {
    return consumed_.load(std::memory_order_relaxed);
  }
  int64_t peak_bytes() const { return peak_.load(std::memory_order_relaxed); }

  /// Attaches the process-wide memory pool (exec/admission.h) this query's
  /// charges draw down from: every accepted TryCharge delta is mirrored
  /// into the pool, so concurrent queries compete for one global budget.
  /// A pool refusal is a kBudget abort attributed to the refusing site.
  /// Detaching (or destroying the context) refunds any residual charge, so
  /// an aborted query can never strand pool capacity.
  void AttachGlobalPool(GlobalMemoryPool* pool);
  void DetachGlobalPool();
  GlobalMemoryPool* global_pool() const {
    return pool_.load(std::memory_order_acquire);
  }

  // ---- Scheduling ----

  /// Scheduler priority of this query's morsel jobs (exec/scheduler.h):
  /// higher is served first by the shared pool; equal priorities share
  /// round-robin. Default 0. Set before execution starts.
  int priority() const { return priority_; }
  void set_priority(int priority) { priority_ = priority; }

  /// Peak bytes attributed to one operator site (0 if never charged).
  int64_t site_peak_bytes(const std::string& site) const;

  /// Every charged site with its peak bytes, sorted by site name.
  std::vector<std::pair<std::string, int64_t>> SitePeaks() const;

  /// Per-operator peak attribution, e.g.
  /// "peak 18432B (limit 16384B): group_table=12288B peak, dim_bitmap=..."
  std::string MemoryReport() const;

  // ---- Status construction / cross-.so abort classification ----

  /// Structured Status for `reason`, message carrying the memory report
  /// (and `site` when the abort names one).
  Status MakeStatus(AbortReason reason, const char* site = nullptr,
                    int64_t requested = 0) const;

  /// Records why a hook is about to refuse. Written before the refusing
  /// return so that a QueryAbort thrown inside a JIT kernel .so — whose
  /// RTTI may not unify with the host's — can still be classified from a
  /// plain catch(...).
  void RecordPendingAbort(AbortReason reason, const char* site,
                          int64_t requested);

  /// Takes (and clears) the pending abort; kNone if none was recorded.
  AbortReason TakePendingAbort(std::string* site_out, int64_t* requested_out);

  /// Drops a pending kBudget record after a spill path recovered from the
  /// refusal, so StatusFromCurrentException cannot misclassify a later
  /// unrelated exception with the stale record. Non-budget records
  /// (deadline, cancellation) are never recovered from and are preserved.
  void ClearRecoveredBudgetAbort();

  // ---- Hook thunks ----

  /// MemHookFn-shaped thunk (`ctx` is the QueryContext*): also the
  /// KernelIO::mem_charge callback of the JIT ABI.
  static int MemHookThunk(void* ctx, int64_t delta, const char* site);

  /// KernelIO::cancel_check callback: nonzero (an AbortReason) when the
  /// kernel must stop.
  static int CancelCheckThunk(void* ctx);

  /// How many times a SWOLE execution under this context degraded to the
  /// data-centric strategy after a budget breach.
  int64_t degradations() const {
    return degradations_.load(std::memory_order_relaxed);
  }
  void CountDegradation();

  // ---- Spill (exec/spill.h) ----

  /// When enabled, a budget refusal at a spill-capable group-table site
  /// triggers partitioned spill-to-disk instead of aborting the query: the
  /// site catches the refusal, spills its accumulated state through the
  /// attached SpillManager, and retries under a near-empty table — the
  /// first rung of the spill degradation ladder (DESIGN.md §14). Resolved
  /// by GovernanceScope from SWOLE_SPILL (or forced per-query via
  /// StrategyOptions::spill); join-mode and seeded tables stay non-spill
  /// regardless (spilling would drop their seeded keys).
  bool spill_enabled() const {
    return spill_enabled_.load(std::memory_order_acquire);
  }
  void set_spill_enabled(bool enabled) {
    spill_enabled_.store(enabled, std::memory_order_release);
  }

  /// How many spill events this query's sites performed.
  int64_t spills() const { return spills_.load(std::memory_order_relaxed); }
  void CountSpill() { spills_.fetch_add(1, std::memory_order_relaxed); }

  // ---- Tracing (obs/trace.h) ----

  /// Non-owning trace attachment; null (the default) disables span
  /// recording — engines pay one pointer test per phase. Set by the owner
  /// of the trace (GovernanceScope or the caller) before execution starts.
  obs::QueryTrace* trace() const { return trace_; }
  void set_trace(obs::QueryTrace* trace) { trace_ = trace; }

  /// Writes the governance outcome onto the trace root as attributes —
  /// mem.peak_bytes, mem.site.<name> peaks, degradations, deadline/cancel
  /// flags. No-op without an attached trace. GovernanceScope calls this
  /// when it attached the trace; callers managing their own attachment can
  /// invoke it directly.
  void AttachStatsToTrace();

  // ---- Cost-model feedback (cost/feedback.h) ----

  /// Per-query observation carrier: the engine fills the estimate side
  /// (rows, selectivity, predicted cost, technique) from the driving
  /// thread; the owning GovernanceScope completes it with elapsed time and
  /// hardware counts on teardown and forwards it to CostFeedback::Global().
  /// Driving-thread only — not synchronized.
  cost::QueryObservation* MutableObservation() {
    has_observation_ = true;
    return &observation_;
  }
  bool has_observation() const { return has_observation_; }
  const cost::QueryObservation& observation() const { return observation_; }

 private:
  struct SiteStats {
    int64_t current = 0;
    int64_t peak = 0;
  };

  Limits limits_;
  std::chrono::steady_clock::time_point deadline_tp_{};
  bool has_deadline_ = false;

  std::atomic<bool> cancelled_{false};
  std::atomic<bool> deadline_fired_{false};

  std::atomic<int64_t> consumed_{0};
  std::atomic<int64_t> peak_{0};
  mutable std::mutex site_mu_;
  std::map<std::string, SiteStats> sites_;

  std::atomic<int> pending_reason_{0};
  mutable std::mutex pending_mu_;
  std::string pending_site_;
  int64_t pending_requested_ = 0;

  std::atomic<int64_t> degradations_{0};
  std::atomic<bool> spill_enabled_{false};
  std::atomic<int64_t> spills_{0};

  // Shared-pool accounting: the pool this context draws from (null = query
  // budget only) and how many bytes this context currently holds in it —
  // the residual refunded on detach/destruction.
  std::atomic<GlobalMemoryPool*> pool_{nullptr};
  std::atomic<int64_t> pool_charged_{0};

  int priority_ = 0;

  obs::QueryTrace* trace_ = nullptr;

  cost::QueryObservation observation_;
  bool has_observation_ = false;
};

/// Resolves the governance + observability configuration for one engine
/// execution: an externally supplied context wins; otherwise a context is
/// owned for the call when the options (or the SWOLE_MEM_LIMIT /
/// SWOLE_DEADLINE_MS environment) configure any limit, when a trace is
/// requested (explicit `trace` or SWOLE_TRACE=1), when hardware counters
/// are requested (SWOLE_PERF_COUNTERS=1), or when cost-model refit is
/// collecting observations (SWOLE_COST_REFIT=observe|apply — the
/// observation carrier needs a context to ride on). ctx() is nullptr when
/// ungoverned and untraced — the zero-overhead path: no hooks attach and
/// no checks run.
///
/// A scope that OWNS its context forwards the context's QueryObservation
/// (completed with elapsed wall time and hardware counts) to
/// cost::CostFeedback::Global() on teardown — exactly one observation per
/// query, from the outermost owning scope; scopes wrapping an external
/// context never double-report.
class GovernanceScope {
 public:
  /// `mem_limit_bytes` / `deadline_ms`: -1 defers to the environment
  /// variable (whose absence means "off"); 0 explicitly off; > 0 sets the
  /// limit. A non-null `trace` is attached to the resolved context for the
  /// scope's lifetime (unless the external context already carries one);
  /// with SWOLE_TRACE=1 and no explicit trace, the scope owns one and
  /// renders it at DEBUG level on exit. The scope that attached the trace
  /// stamps the governance outcome onto it (AttachStatsToTrace) and owns
  /// the per-query perf-counter set when SWOLE_PERF_COUNTERS=1.
  GovernanceScope(QueryContext* external, int64_t mem_limit_bytes,
                  int64_t deadline_ms, obs::QueryTrace* trace = nullptr);
  ~GovernanceScope();

  GovernanceScope(const GovernanceScope&) = delete;
  GovernanceScope& operator=(const GovernanceScope&) = delete;

  QueryContext* ctx() const { return ctx_; }

 private:
  QueryContext* ctx_ = nullptr;
  QueryContext* owned_ = nullptr;
  obs::QueryTrace* owned_trace_ = nullptr;
  obs::PerfCounterSet* perf_ = nullptr;
  bool attached_trace_ = false;
  bool attached_pool_ = false;
  Timer timer_;  // elapsed side of the cost-feedback observation
};

/// Maps the in-flight exception to a Status: QueryAbort (and the pending
/// abort recorded on `ctx`, covering kernel-.so throws whose RTTI does not
/// unify) become governance codes with attribution; bad_alloc becomes
/// kBudgetExceeded; anything else becomes kInternal. Callable only from a
/// catch block.
Status StatusFromCurrentException(QueryContext* ctx);

/// Carrier for propagating an already-structured Status through layers
/// whose signatures return values (builders). Caught by the engines'
/// execute boundary via StatusFromCurrentException.
struct ThrownStatus {
  Status status;
};

/// Throws ThrownStatus{status} if `status` is not OK.
void ThrowIfError(const Status& status);

}  // namespace swole::exec

#endif  // SWOLE_EXEC_QUERY_CONTEXT_H_
