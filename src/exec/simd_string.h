#ifndef SWOLE_EXEC_SIMD_STRING_H_
#define SWOLE_EXEC_SIMD_STRING_H_

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/macros.h"
#include "exec/simd.h"

// String kernels over raw arena storage (storage/string_column.h: byte
// blob + uint32 offsets), in the same three-tier runtime-dispatch
// framework as exec/simd.h — scalar reference loops, SWAR word tricks,
// AVX2 via per-function target attributes. Backend selection is shared
// with the numeric kernels (simd::ActiveBackend()), so SWOLE_SIMD pins
// string and numeric primitives together.
//
// Bit-exactness contract (same as simd.h): every primitive returns
// byte-identical results on all three tiers, for any byte content —
// embedded NUL and non-ASCII included; nothing here treats text as C
// strings or applies locale rules. Matching is plain byte equality,
// ordering is memcmp order with shorter-string-first tiebreak, and the
// substring search is the memmem idiom: a wide first(+last)-byte filter
// proposing candidates that a byte-exact verify confirms, so candidate
// order — and therefore the returned index — is identical on every tier.
//
// LIKE runs through CompiledLike: patterns without '_' compile to anchored
// token shapes (equality, prefix, suffix, contains, ordered token
// sequence — Q13's "%special%requests%" is a two-token sequence) that the
// wide primitives accelerate; patterns with '_' fall back to a
// self-contained two-pointer matcher. The fallback duplicates
// common/string_util.h's LikeMatch on purpose: JIT-generated translation
// units include this header (via exec/kernels.h) and link nothing but
// logging, so the matcher must live here; the differential tests pin the
// two implementations together.
//
// Hashing (FNV-1a, seeded as common/string_util.h's Fnv1aHash64) is a
// sequential byte recurrence with no width trick that preserves the exact
// value, so all three tiers share one loop by design.

namespace swole::simd {

// ---------------------------------------------------------------------------
// Per-backend byte-range primitives. Each backend is a tag struct with the
// same three static methods; the tile loops below are templates over the
// tag, so each tier's loop body inlines its own wide primitives.
// ---------------------------------------------------------------------------

struct ScalarStrOps {
  /// Byte-wise equality of a[0..n) and b[0..n).
  static bool EqRange(const uint8_t* a, const uint8_t* b, int64_t n) {
    for (int64_t i = 0; i < n; ++i) {
      if (a[i] != b[i]) return false;
    }
    return true;
  }

  /// memcmp order with length tiebreak: <0, 0, >0.
  static int CmpRange(const uint8_t* a, int64_t an, const uint8_t* b,
                      int64_t bn) {
    const int64_t n = std::min(an, bn);
    for (int64_t i = 0; i < n; ++i) {
      if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
    }
    return an < bn ? -1 : (an > bn ? 1 : 0);
  }

  /// Leftmost occurrence of needle[0..nlen) in hay[0..hlen), or -1.
  /// Preconditions: nlen >= 1.
  static int64_t Find(const uint8_t* hay, int64_t hlen, const uint8_t* needle,
                      int64_t nlen) {
    const uint8_t first = needle[0];
    const int64_t last_start = hlen - nlen;
    for (int64_t i = 0; i <= last_start; ++i) {
      if (hay[i] == first && EqRange(hay + i, needle, nlen)) return i;
    }
    return -1;
  }
};

struct SwarStrOps {
  static bool EqRange(const uint8_t* a, const uint8_t* b, int64_t n) {
    int64_t i = 0;
    for (; i + 8 <= n; i += 8) {
      if (swar::LoadWord(a + i) != swar::LoadWord(b + i)) return false;
    }
    for (; i < n; ++i) {
      if (a[i] != b[i]) return false;
    }
    return true;
  }

  static int CmpRange(const uint8_t* a, int64_t an, const uint8_t* b,
                      int64_t bn) {
    const int64_t n = std::min(an, bn);
    int64_t i = 0;
    for (; i + 8 <= n; i += 8) {
      if (swar::LoadWord(a + i) != swar::LoadWord(b + i)) break;
    }
    for (; i < n; ++i) {
      if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
    }
    return an < bn ? -1 : (an > bn ? 1 : 0);
  }

  static int64_t Find(const uint8_t* hay, int64_t hlen, const uint8_t* needle,
                      int64_t nlen) {
    const uint8_t first = needle[0];
    const uint64_t pat = swar::kOnes * first;
    const int64_t last_start = hlen - nlen;
    int64_t i = 0;
    // Word loop proposes candidate starts wherever a byte equals the
    // needle's first byte; ZeroBytesToOnes leaves one bit per matching
    // byte, consumed lowest-first so candidates verify left to right.
    for (; i + 8 <= last_start + 1; i += 8) {
      uint64_t m = swar::ZeroBytesToOnes(swar::LoadWord(hay + i) ^ pat);
      while (m != 0) {
        const int64_t cand = i + (std::countr_zero(m) >> 3);
        if (EqRange(hay + cand, needle, nlen)) return cand;
        m &= m - 1;
      }
    }
    for (; i <= last_start; ++i) {
      if (hay[i] == first && EqRange(hay + i, needle, nlen)) return i;
    }
    return -1;
  }
};

#if SWOLE_SIMD_X86

struct Avx2StrOps {
  SWOLE_TARGET_AVX2
  static bool EqRange(const uint8_t* a, const uint8_t* b, int64_t n) {
    int64_t i = 0;
    for (; i + 32 <= n; i += 32) {
      const __m256i x =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
      const __m256i y =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
      if (_mm256_movemask_epi8(_mm256_cmpeq_epi8(x, y)) != -1) return false;
    }
    for (; i + 8 <= n; i += 8) {
      if (swar::LoadWord(a + i) != swar::LoadWord(b + i)) return false;
    }
    for (; i < n; ++i) {
      if (a[i] != b[i]) return false;
    }
    return true;
  }

  SWOLE_TARGET_AVX2
  static int CmpRange(const uint8_t* a, int64_t an, const uint8_t* b,
                      int64_t bn) {
    const int64_t n = std::min(an, bn);
    int64_t i = 0;
    for (; i + 32 <= n; i += 32) {
      const __m256i x =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
      const __m256i y =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
      const uint32_t eq = static_cast<uint32_t>(
          _mm256_movemask_epi8(_mm256_cmpeq_epi8(x, y)));
      if (eq != 0xFFFFFFFFu) {
        const int64_t d = i + std::countr_zero(~eq);
        return a[d] < b[d] ? -1 : 1;
      }
    }
    for (; i < n; ++i) {
      if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
    }
    return an < bn ? -1 : (an > bn ? 1 : 0);
  }

  SWOLE_TARGET_AVX2
  static int64_t Find(const uint8_t* hay, int64_t hlen, const uint8_t* needle,
                      int64_t nlen) {
    const uint8_t first = needle[0];
    const uint8_t last = needle[nlen - 1];
    const __m256i vfirst = _mm256_set1_epi8(static_cast<char>(first));
    const __m256i vlast = _mm256_set1_epi8(static_cast<char>(last));
    const int64_t last_start = hlen - nlen;
    int64_t i = 0;
    // First+last byte filter: a start qualifies only if hay[i] matches the
    // needle's first byte AND hay[i+nlen-1] its last. With i+31 a valid
    // start, both 32-byte loads stay inside hay[0..hlen).
    for (; i + 32 <= last_start + 1; i += 32) {
      const __m256i h0 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(hay + i));
      const __m256i h1 = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(hay + i + nlen - 1));
      uint32_t m = static_cast<uint32_t>(_mm256_movemask_epi8(_mm256_and_si256(
          _mm256_cmpeq_epi8(h0, vfirst), _mm256_cmpeq_epi8(h1, vlast))));
      while (m != 0) {
        const int64_t cand = i + std::countr_zero(m);
        if (EqRange(hay + cand, needle, nlen)) return cand;
        m &= m - 1;
      }
    }
    for (; i <= last_start; ++i) {
      if (hay[i] == first && EqRange(hay + i, needle, nlen)) return i;
    }
    return -1;
  }
};

#endif  // SWOLE_SIMD_X86

// ---------------------------------------------------------------------------
// Compiled LIKE patterns.
// ---------------------------------------------------------------------------

struct CompiledLike {
  enum class Kind : uint8_t {
    kAll,       // pattern is only '%'s: matches everything
    kEquals,    // no wildcards: byte equality
    kPrefix,    // "abc%"
    kSuffix,    // "%abc"
    kContains,  // "%abc%"
    kTokens,    // '%'-separated token sequence, possibly end-anchored
    kGeneral,   // contains '_': two-pointer fallback matcher
  };

  Kind kind = Kind::kGeneral;
  bool negated = false;          // NOT LIKE
  bool anchored_prefix = false;  // kTokens: first token must match at 0
  bool anchored_suffix = false;  // kTokens: last token must match at end
  std::string pattern;           // original pattern (kGeneral fallback)
  std::vector<std::string> tokens;
};

/// Classifies a LIKE pattern into the fast shape the tile kernels handle,
/// or kGeneral when '_' forces the full matcher.
inline CompiledLike CompileLike(std::string_view pattern, bool negated) {
  CompiledLike lk;
  lk.negated = negated;
  lk.pattern.assign(pattern.data(), pattern.size());
  if (pattern.find('_') != std::string_view::npos) {
    lk.kind = CompiledLike::Kind::kGeneral;
    return lk;
  }
  if (pattern.find('%') == std::string_view::npos) {
    lk.kind = CompiledLike::Kind::kEquals;
    lk.tokens.emplace_back(pattern);
    return lk;
  }
  lk.anchored_prefix = pattern.front() != '%';
  lk.anchored_suffix = pattern.back() != '%';
  size_t pos = 0;
  while (pos <= pattern.size()) {
    const size_t next = std::min(pattern.find('%', pos), pattern.size());
    if (next > pos) lk.tokens.emplace_back(pattern.substr(pos, next - pos));
    pos = next + 1;
  }
  if (lk.tokens.empty()) {
    lk.kind = CompiledLike::Kind::kAll;
  } else if (lk.tokens.size() == 1 && !lk.anchored_prefix &&
             !lk.anchored_suffix) {
    lk.kind = CompiledLike::Kind::kContains;
  } else if (lk.tokens.size() == 1 && lk.anchored_prefix) {
    lk.kind = CompiledLike::Kind::kPrefix;
  } else if (lk.tokens.size() == 1) {
    lk.kind = CompiledLike::Kind::kSuffix;
  } else {
    lk.kind = CompiledLike::Kind::kTokens;
  }
  return lk;
}

namespace detail_str {

/// Self-contained copy of common/string_util.h LikeMatch (see the header
/// comment for why): '%' any run, '_' any single byte, backtracking to the
/// last '%'.
inline bool GeneralLikeMatch(const uint8_t* s, int64_t n,
                             std::string_view pattern) {
  int64_t v = 0;
  size_t p = 0;
  size_t star_p = static_cast<size_t>(-1);
  int64_t star_v = 0;
  while (v < n) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || static_cast<uint8_t>(pattern[p]) == s[v])) {
      ++p;
      ++v;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_v = v;
    } else if (star_p != static_cast<size_t>(-1)) {
      p = star_p + 1;
      v = ++star_v;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

inline const uint8_t* TokenData(const std::string& t) {
  return reinterpret_cast<const uint8_t*>(t.data());
}

/// '%'-only token-sequence match: anchored prefix, then middle tokens
/// greedily at their leftmost occurrence, then a non-overlapping anchored
/// suffix. Greedy-leftmost minimizes the consumed position, so if it can't
/// leave room for the suffix no assignment can.
template <typename Ops>
bool MatchTokens(const uint8_t* s, int64_t n, const CompiledLike& lk) {
  int64_t pos = 0;
  size_t ti = 0;
  size_t tend = lk.tokens.size();
  if (lk.anchored_prefix) {
    const std::string& t = lk.tokens.front();
    const int64_t tn = static_cast<int64_t>(t.size());
    if (n < tn || !Ops::EqRange(s, TokenData(t), tn)) return false;
    pos = tn;
    ti = 1;
  }
  if (lk.anchored_suffix) --tend;
  for (; ti < tend; ++ti) {
    const std::string& t = lk.tokens[ti];
    const int64_t tn = static_cast<int64_t>(t.size());
    const int64_t found = Ops::Find(s + pos, n - pos, TokenData(t), tn);
    if (found < 0) return false;
    pos += found + tn;
  }
  if (lk.anchored_suffix) {
    const std::string& t = lk.tokens.back();
    const int64_t tn = static_cast<int64_t>(t.size());
    if (n - tn < pos) return false;
    return Ops::EqRange(s + (n - tn), TokenData(t), tn);
  }
  return true;
}

/// Raw (un-negated) compiled-pattern match for one value.
template <typename Ops>
SWOLE_ALWAYS_INLINE bool MatchCompiled(const uint8_t* s, int64_t n,
                                       const CompiledLike& lk) {
  switch (lk.kind) {
    case CompiledLike::Kind::kAll:
      return true;
    case CompiledLike::Kind::kEquals: {
      const std::string& t = lk.tokens.front();
      return n == static_cast<int64_t>(t.size()) &&
             Ops::EqRange(s, TokenData(t), n);
    }
    case CompiledLike::Kind::kPrefix: {
      const std::string& t = lk.tokens.front();
      const int64_t tn = static_cast<int64_t>(t.size());
      return n >= tn && Ops::EqRange(s, TokenData(t), tn);
    }
    case CompiledLike::Kind::kSuffix: {
      const std::string& t = lk.tokens.front();
      const int64_t tn = static_cast<int64_t>(t.size());
      return n >= tn && Ops::EqRange(s + (n - tn), TokenData(t), tn);
    }
    case CompiledLike::Kind::kContains: {
      const std::string& t = lk.tokens.front();
      const int64_t tn = static_cast<int64_t>(t.size());
      return n >= tn && Ops::Find(s, n, TokenData(t), tn) >= 0;
    }
    case CompiledLike::Kind::kTokens:
      return MatchTokens<Ops>(s, n, lk);
    case CompiledLike::Kind::kGeneral:
      return GeneralLikeMatch(s, n, lk.pattern);
  }
  return false;
}

template <typename Ops>
void StrEqLitTileT(const uint8_t* bytes, const uint32_t* offsets,
                   int64_t start, int64_t len, const uint8_t* lit,
                   int64_t lit_len, uint8_t* out) {
  for (int64_t j = 0; j < len; ++j) {
    const uint32_t off = offsets[start + j];
    const int64_t n = offsets[start + j + 1] - off;
    out[j] =
        static_cast<uint8_t>(n == lit_len && Ops::EqRange(bytes + off, lit, n));
  }
}

template <typename Ops>
void StrCmpLitTileT(CmpOp op, const uint8_t* bytes, const uint32_t* offsets,
                    int64_t start, int64_t len, const uint8_t* lit,
                    int64_t lit_len, uint8_t* out) {
  for (int64_t j = 0; j < len; ++j) {
    const uint32_t off = offsets[start + j];
    const int64_t n = offsets[start + j + 1] - off;
    const int c = Ops::CmpRange(bytes + off, n, lit, lit_len);
    bool r = false;
    switch (op) {
      case CmpOp::kLt:
        r = c < 0;
        break;
      case CmpOp::kLe:
        r = c <= 0;
        break;
      case CmpOp::kGt:
        r = c > 0;
        break;
      case CmpOp::kGe:
        r = c >= 0;
        break;
      case CmpOp::kEq:
        r = c == 0;
        break;
      case CmpOp::kNe:
        r = c != 0;
        break;
    }
    out[j] = static_cast<uint8_t>(r);
  }
}

template <typename Ops>
void StrPrefixTileT(const uint8_t* bytes, const uint32_t* offsets,
                    int64_t start, int64_t len, const uint8_t* prefix,
                    int64_t plen, uint8_t* out) {
  for (int64_t j = 0; j < len; ++j) {
    const uint32_t off = offsets[start + j];
    const int64_t n = offsets[start + j + 1] - off;
    out[j] = static_cast<uint8_t>(n >= plen &&
                                  Ops::EqRange(bytes + off, prefix, plen));
  }
}

template <typename Ops>
void StrSuffixTileT(const uint8_t* bytes, const uint32_t* offsets,
                    int64_t start, int64_t len, const uint8_t* suffix,
                    int64_t slen, uint8_t* out) {
  for (int64_t j = 0; j < len; ++j) {
    const uint32_t off = offsets[start + j];
    const int64_t n = offsets[start + j + 1] - off;
    out[j] = static_cast<uint8_t>(
        n >= slen && Ops::EqRange(bytes + off + (n - slen), suffix, slen));
  }
}

template <typename Ops>
void StrContainsTileT(const uint8_t* bytes, const uint32_t* offsets,
                      int64_t start, int64_t len, const uint8_t* needle,
                      int64_t nlen, uint8_t* out) {
  if (nlen == 0) {
    std::memset(out, 1, static_cast<size_t>(len));
    return;
  }
  for (int64_t j = 0; j < len; ++j) {
    const uint32_t off = offsets[start + j];
    const int64_t n = offsets[start + j + 1] - off;
    out[j] = static_cast<uint8_t>(n >= nlen &&
                                  Ops::Find(bytes + off, n, needle, nlen) >= 0);
  }
}

template <typename Ops>
void StrLikeTileT(const uint8_t* bytes, const uint32_t* offsets, int64_t start,
                  int64_t len, const CompiledLike& lk, uint8_t* out) {
  for (int64_t j = 0; j < len; ++j) {
    const uint32_t off = offsets[start + j];
    const int64_t n = offsets[start + j + 1] - off;
    out[j] = static_cast<uint8_t>(MatchCompiled<Ops>(bytes + off, n, lk) !=
                                  lk.negated);
  }
}

template <typename Ops>
void StrLikeTileAndT(const uint8_t* bytes, const uint32_t* offsets,
                     int64_t start, int64_t len, const CompiledLike& lk,
                     uint8_t* cmp) {
  // Guarded refine: only surviving lanes pay the arena touch — this is the
  // pulled-placement access pattern the cost model's read_cond term prices.
  for (int64_t j = 0; j < len; ++j) {
    if (cmp[j] == 0) continue;
    const uint32_t off = offsets[start + j];
    const int64_t n = offsets[start + j + 1] - off;
    cmp[j] = static_cast<uint8_t>(MatchCompiled<Ops>(bytes + off, n, lk) !=
                                  lk.negated);
  }
}

}  // namespace detail_str

// ---------------------------------------------------------------------------
// Dispatched entry points (the API exec/kernels.h routes through).
// ---------------------------------------------------------------------------

#if SWOLE_SIMD_X86
#define SWOLE_STR_DISPATCH(fn, ...)                         \
  switch (ActiveBackend()) {                                \
    case Backend::kAvx2:                                    \
      return detail_str::fn<Avx2StrOps>(__VA_ARGS__);       \
    case Backend::kSwar:                                    \
      return detail_str::fn<SwarStrOps>(__VA_ARGS__);       \
    default:                                                \
      return detail_str::fn<ScalarStrOps>(__VA_ARGS__);     \
  }
#else
#define SWOLE_STR_DISPATCH(fn, ...)                         \
  switch (ActiveBackend()) {                                \
    case Backend::kSwar:                                    \
      return detail_str::fn<SwarStrOps>(__VA_ARGS__);       \
    default:                                                \
      return detail_str::fn<ScalarStrOps>(__VA_ARGS__);     \
  }
#endif

/// out[j] = (row start+j == lit), 0/1 bytes.
inline void StrEqLit(const uint8_t* bytes, const uint32_t* offsets,
                     int64_t start, int64_t len, std::string_view lit,
                     uint8_t* out) {
  const uint8_t* l = reinterpret_cast<const uint8_t*>(lit.data());
  const int64_t ln = static_cast<int64_t>(lit.size());
  SWOLE_STR_DISPATCH(StrEqLitTileT, bytes, offsets, start, len, l, ln, out);
}

/// out[j] = (row start+j OP lit) under memcmp order with length tiebreak.
inline void StrCmpLit(CmpOp op, const uint8_t* bytes, const uint32_t* offsets,
                      int64_t start, int64_t len, std::string_view lit,
                      uint8_t* out) {
  const uint8_t* l = reinterpret_cast<const uint8_t*>(lit.data());
  const int64_t ln = static_cast<int64_t>(lit.size());
  SWOLE_STR_DISPATCH(StrCmpLitTileT, op, bytes, offsets, start, len, l, ln,
                     out);
}

/// out[j] = row start+j starts with `prefix`.
inline void StrPrefix(const uint8_t* bytes, const uint32_t* offsets,
                      int64_t start, int64_t len, std::string_view prefix,
                      uint8_t* out) {
  const uint8_t* p = reinterpret_cast<const uint8_t*>(prefix.data());
  const int64_t pn = static_cast<int64_t>(prefix.size());
  SWOLE_STR_DISPATCH(StrPrefixTileT, bytes, offsets, start, len, p, pn, out);
}

/// out[j] = row start+j ends with `suffix`.
inline void StrSuffix(const uint8_t* bytes, const uint32_t* offsets,
                      int64_t start, int64_t len, std::string_view suffix,
                      uint8_t* out) {
  const uint8_t* s = reinterpret_cast<const uint8_t*>(suffix.data());
  const int64_t sn = static_cast<int64_t>(suffix.size());
  SWOLE_STR_DISPATCH(StrSuffixTileT, bytes, offsets, start, len, s, sn, out);
}

/// out[j] = row start+j contains `needle` (empty needle matches all).
inline void StrContains(const uint8_t* bytes, const uint32_t* offsets,
                        int64_t start, int64_t len, std::string_view needle,
                        uint8_t* out) {
  const uint8_t* nd = reinterpret_cast<const uint8_t*>(needle.data());
  const int64_t nn = static_cast<int64_t>(needle.size());
  SWOLE_STR_DISPATCH(StrContainsTileT, bytes, offsets, start, len, nd, nn,
                     out);
}

/// out[j] = row start+j matches `lk` (negation folded in).
inline void StrLikeTile(const uint8_t* bytes, const uint32_t* offsets,
                        int64_t start, int64_t len, const CompiledLike& lk,
                        uint8_t* out) {
  SWOLE_STR_DISPATCH(StrLikeTileT, bytes, offsets, start, len, lk, out);
}

/// cmp[j] &= row start+j matches `lk`; lanes already 0 are skipped (the
/// pulled-predicate refine).
inline void StrLikeTileAnd(const uint8_t* bytes, const uint32_t* offsets,
                           int64_t start, int64_t len, const CompiledLike& lk,
                           uint8_t* cmp) {
  SWOLE_STR_DISPATCH(StrLikeTileAndT, bytes, offsets, start, len, lk, cmp);
}

#undef SWOLE_STR_DISPATCH

/// Single-row compiled LIKE (reference engine, data-centric JIT emission).
/// Dispatched like the tiles so even per-row matching exercises the active
/// tier's primitives.
inline bool StrLikeOne(const uint8_t* bytes, const uint32_t* offsets,
                       int64_t row, const CompiledLike& lk) {
  const uint32_t off = offsets[row];
  const int64_t n = offsets[row + 1] - off;
  bool match = false;
  switch (ActiveBackend()) {
#if SWOLE_SIMD_X86
    case Backend::kAvx2:
      match = detail_str::MatchCompiled<Avx2StrOps>(bytes + off, n, lk);
      break;
#endif
    case Backend::kSwar:
      match = detail_str::MatchCompiled<SwarStrOps>(bytes + off, n, lk);
      break;
    default:
      match = detail_str::MatchCompiled<ScalarStrOps>(bytes + off, n, lk);
      break;
  }
  return match != lk.negated;
}

/// Leftmost occurrence of `needle` in `hay`, or -1; empty needle -> 0.
/// The dispatched memmem primitive (benches use it directly).
inline int64_t StrFindFirst(const uint8_t* hay, int64_t hlen,
                            const uint8_t* needle, int64_t nlen) {
  if (nlen == 0) return 0;
  if (nlen > hlen) return -1;
  switch (ActiveBackend()) {
#if SWOLE_SIMD_X86
    case Backend::kAvx2:
      return Avx2StrOps::Find(hay, hlen, needle, nlen);
#endif
    case Backend::kSwar:
      return SwarStrOps::Find(hay, hlen, needle, nlen);
    default:
      return ScalarStrOps::Find(hay, hlen, needle, nlen);
  }
}

/// Per-row FNV-1a hashes (seed/recurrence shared with Fnv1aHash64). One
/// sequential loop on every tier — the recurrence admits no bit-identical
/// width trick — so "dispatch" here documents intent, not a fast path.
inline void StrHashTile(const uint8_t* bytes, const uint32_t* offsets,
                        int64_t start, int64_t len, uint64_t* out) {
  for (int64_t j = 0; j < len; ++j) {
    const uint32_t off = offsets[start + j];
    const uint32_t end = offsets[start + j + 1];
    uint64_t h = 0xCBF29CE484222325ULL;
    for (uint32_t i = off; i < end; ++i) {
      h ^= bytes[i];
      h *= 0x100000001B3ULL;
    }
    out[j] = h;
  }
}

}  // namespace swole::simd

#endif  // SWOLE_EXEC_SIMD_STRING_H_
