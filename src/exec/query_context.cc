#include "exec/query_context.h"

#include <algorithm>
#include <exception>
#include <new>
#include <vector>

#include "common/env.h"
#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "exec/admission.h"
#include "obs/metrics.h"
#include "obs/perf_counters.h"
#include "obs/trace.h"

namespace swole::exec {

// Tracked-allocation sites: TryCharge evaluates the fault injector at every
// site name below, so each is a deterministic budget-breach injection point
// (SWOLE_FAULT=group_table:1.0). The synthetic deadline_fire site lives in
// CheckLiveReason.
SWOLE_REGISTER_FAULT_SITE("group_table", "group-by hash table growth charge")
SWOLE_REGISTER_FAULT_SITE("spill_merge",
                          "spill partition rebuild table growth charge")
SWOLE_REGISTER_FAULT_SITE("reference_groups",
                          "reference-engine shard map growth charge "
                          "(spill-enabled runs only)")
SWOLE_REGISTER_FAULT_SITE("dim_keyset", "dim-side key-set build charge")
SWOLE_REGISTER_FAULT_SITE("dim_bitmap", "dim positional-bitmap build charge")
SWOLE_REGISTER_FAULT_SITE("reverse_keyset",
                          "reverse-lookup key-set build charge")
SWOLE_REGISTER_FAULT_SITE("reverse_bitmap",
                          "reverse-lookup bitmap build charge")
SWOLE_REGISTER_FAULT_SITE("disjunctive_ht",
                          "disjunctive-clause hash-table build charge")
SWOLE_REGISTER_FAULT_SITE("disjunctive_bitmap",
                          "disjunctive-clause bitmap build charge")
SWOLE_REGISTER_FAULT_SITE("jit_groups",
                          "JIT kernel group-table growth charge")
SWOLE_REGISTER_FAULT_SITE("jit_dim_keyset",
                          "JIT kernel dim key-set build charge")
SWOLE_REGISTER_FAULT_SITE("jit_dim_bitmap",
                          "JIT kernel dim bitmap build charge")
SWOLE_REGISTER_FAULT_SITE("deadline_fire",
                          "synthetic deadline expiry in CheckLive")

namespace {
// Governance events feed the process-wide registry so budget breaches and
// deadline fires are visible without per-query tracing.
obs::Counter& BudgetBreachCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("governance.budget_breaches");
  return c;
}
obs::Counter& DeadlineFireCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("governance.deadline_fires");
  return c;
}
obs::Counter& CancellationCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("governance.cancellations");
  return c;
}
obs::Counter& DegradationCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("governance.degradations");
  return c;
}

bool TraceRequestedFromEnv() {
  static const bool requested = GetEnvInt64("SWOLE_TRACE", 0) != 0;
  return requested;
}

// Not cached: the spill tests toggle SWOLE_SPILL between queries.
bool SpillRequestedFromEnv() {
  std::string mode = GetEnvString("SWOLE_SPILL", "off");
  return mode == "auto" || mode == "on" || mode == "1";
}
}  // namespace

QueryContext::QueryContext() : QueryContext(Limits()) {}

QueryContext::QueryContext(Limits limits) : limits_(limits) {
  if (limits_.deadline_ms > 0) {
    deadline_tp_ = std::chrono::steady_clock::now() +
                   std::chrono::milliseconds(limits_.deadline_ms);
    has_deadline_ = true;
  }
}

QueryContext::~QueryContext() { DetachGlobalPool(); }

void QueryContext::AttachGlobalPool(GlobalMemoryPool* pool) {
  pool_.store(pool, std::memory_order_release);
}

void QueryContext::DetachGlobalPool() {
  GlobalMemoryPool* pool = pool_.exchange(nullptr, std::memory_order_acq_rel);
  if (pool == nullptr) return;
  // Refund whatever this query still holds in the shared pool. Normally
  // zero — tracked structures release their charges on destruction — but
  // an abort that leaked generated-side state (see codegen/jit.cc cleanup)
  // must not strand pool capacity forever.
  int64_t residual = pool_charged_.exchange(0, std::memory_order_acq_rel);
  if (residual > 0) pool->Release(residual);
}

void QueryContext::RequestCancel() {
  if (!cancelled_.exchange(true, std::memory_order_acq_rel)) {
    CancellationCounter().Add(1);
  }
}

void QueryContext::CountDegradation() {
  degradations_.fetch_add(1, std::memory_order_relaxed);
  DegradationCounter().Add(1);
}

AbortReason QueryContext::CheckLiveReason() {
  if (SWOLE_UNLIKELY(cancelled_.load(std::memory_order_acquire))) {
    return AbortReason::kCancelled;
  }
  if (SWOLE_UNLIKELY(deadline_fired_.load(std::memory_order_acquire))) {
    return AbortReason::kDeadline;
  }
  if (has_deadline_ &&
      SWOLE_UNLIKELY(std::chrono::steady_clock::now() >= deadline_tp_)) {
    if (!deadline_fired_.exchange(true, std::memory_order_acq_rel)) {
      DeadlineFireCounter().Add(1);
    }
    return AbortReason::kDeadline;
  }
  // Deterministic deadline injection for tests (SWOLE_FAULT=deadline_fire:p).
  if (SWOLE_UNLIKELY(FaultInjector::Global().ShouldFail("deadline_fire"))) {
    if (!deadline_fired_.exchange(true, std::memory_order_acq_rel)) {
      DeadlineFireCounter().Add(1);
    }
    return AbortReason::kDeadline;
  }
  return AbortReason::kNone;
}

Status QueryContext::CheckLive() {
  AbortReason reason = CheckLiveReason();
  if (SWOLE_LIKELY(reason == AbortReason::kNone)) return Status::OK();
  return MakeStatus(reason);
}

AbortReason QueryContext::TryCharge(int64_t delta, const char* site) {
  if (delta <= 0) {
    // Release path: always accepted, keeps query-level accounting exact.
    consumed_.fetch_add(delta, std::memory_order_relaxed);
    if (GlobalMemoryPool* pool = global_pool(); pool != nullptr) {
      pool->Release(-delta);
      pool_charged_.fetch_add(delta, std::memory_order_relaxed);
    }
    std::lock_guard<std::mutex> lock(site_mu_);
    sites_[site].current += delta;
    return AbortReason::kNone;
  }

  // A growth point is also a cooperative cancellation/deadline checkpoint —
  // hash-table rehashes are where runaway queries spend unbounded time.
  AbortReason live = CheckLiveReason();
  if (SWOLE_UNLIKELY(live != AbortReason::kNone)) {
    RecordPendingAbort(live, site, delta);
    return live;
  }

  // Deterministic allocation-failure injection at every tracked site.
  if (SWOLE_UNLIKELY(FaultInjector::Global().ShouldFail(site))) {
    BudgetBreachCounter().Add(1);
    RecordPendingAbort(AbortReason::kBudget, site, delta);
    return AbortReason::kBudget;
  }

  int64_t now = consumed_.fetch_add(delta, std::memory_order_relaxed) + delta;
  if (SWOLE_UNLIKELY(limits_.mem_limit_bytes > 0 &&
                     now > limits_.mem_limit_bytes)) {
    consumed_.fetch_sub(delta, std::memory_order_relaxed);
    BudgetBreachCounter().Add(1);
    RecordPendingAbort(AbortReason::kBudget, site, delta);
    return AbortReason::kBudget;
  }

  // Mirror the accepted growth into the shared pool (when admitted under a
  // global memory limit): the pool refusing means some *other* queries hold
  // the capacity — this query sheds with the same structured kBudget abort
  // a private-limit breach produces, and the process never overcommits.
  if (GlobalMemoryPool* pool = global_pool(); pool != nullptr) {
    if (SWOLE_UNLIKELY(!pool->TryReserve(delta))) {
      consumed_.fetch_sub(delta, std::memory_order_relaxed);
      BudgetBreachCounter().Add(1);
      RecordPendingAbort(AbortReason::kBudget, site, delta);
      return AbortReason::kBudget;
    }
    pool_charged_.fetch_add(delta, std::memory_order_relaxed);
  }

  // Query-level peak (CAS loop: charges are rare growth events).
  int64_t peak = peak_.load(std::memory_order_relaxed);
  while (now > peak &&
         !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
  }

  std::lock_guard<std::mutex> lock(site_mu_);
  SiteStats& stats = sites_[site];
  stats.current += delta;
  stats.peak = std::max(stats.peak, stats.current);
  return AbortReason::kNone;
}

int64_t QueryContext::site_peak_bytes(const std::string& site) const {
  std::lock_guard<std::mutex> lock(site_mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.peak;
}

std::vector<std::pair<std::string, int64_t>> QueryContext::SitePeaks() const {
  std::lock_guard<std::mutex> lock(site_mu_);
  std::vector<std::pair<std::string, int64_t>> peaks;
  peaks.reserve(sites_.size());
  for (const auto& [site, stats] : sites_) {
    peaks.emplace_back(site, stats.peak);
  }
  return peaks;
}

void QueryContext::AttachStatsToTrace() {
  obs::QueryTrace* trace = trace_;
  if (trace == nullptr) return;
  obs::QueryTrace::Span* root = trace->root();
  trace->AddAttr(root, "mem.peak_bytes", peak_bytes());
  if (limits_.mem_limit_bytes > 0) {
    trace->AddAttr(root, "mem.limit_bytes", limits_.mem_limit_bytes);
  }
  for (const auto& [site, peak] : SitePeaks()) {
    trace->AddAttr(root, ("mem.site." + site).c_str(), peak);
  }
  if (degradations() > 0) {
    trace->AddAttr(root, "governance.degradations", degradations());
  }
  if (deadline_fired_.load(std::memory_order_acquire)) {
    trace->AddAttr(root, "governance.deadline_fired", int64_t{1});
  }
  if (cancel_requested()) {
    trace->AddAttr(root, "governance.cancelled", int64_t{1});
  }
  // Queue-wait facts from this driver thread's admission (exec/admission.h):
  // stamped here because AttachStatsToTrace runs on the same thread that
  // opened the AdmissionScope, after the query finished.
  const AdmissionWaitInfo& wait = LastAdmissionWaitOnThread();
  if (wait.queued) {
    trace->AddAttr(root, "admission.queued", int64_t{1});
    trace->AddAttr(root, "admission.wait_us", wait.wait_us);
  }
}

std::string QueryContext::MemoryReport() const {
  std::string report = StringFormat(
      "peak %lldB", static_cast<long long>(peak_bytes()));
  if (limits_.mem_limit_bytes > 0) {
    report += StringFormat(" (limit %lldB)",
                           static_cast<long long>(limits_.mem_limit_bytes));
  }
  if (GlobalMemoryPool* pool = global_pool(); pool != nullptr) {
    report += StringFormat(
        "; global pool %lldB/%lldB reserved",
        static_cast<long long>(pool->reserved_bytes()),
        static_cast<long long>(pool->limit_bytes()));
  }
  std::lock_guard<std::mutex> lock(site_mu_);
  if (sites_.empty()) return report;
  report += "; per-operator peaks:";
  for (const auto& [site, stats] : sites_) {
    report += StringFormat(" %s=%lldB", site.c_str(),
                           static_cast<long long>(stats.peak));
  }
  return report;
}

Status QueryContext::MakeStatus(AbortReason reason, const char* site,
                                int64_t requested) const {
  std::string detail;
  if (site != nullptr && site[0] != '\0') {
    detail = StringFormat(" at site %s", site);
    if (requested > 0) {
      detail += StringFormat(" (requested %lldB)",
                             static_cast<long long>(requested));
    }
  }
  std::string report = MemoryReport();
  switch (reason) {
    case AbortReason::kBudget:
      return Status::BudgetExceeded(StringFormat(
          "query memory budget exceeded%s; %s", detail.c_str(),
          report.c_str()));
    case AbortReason::kDeadline:
      return Status::DeadlineExceeded(StringFormat(
          "query deadline of %lldms exceeded%s; %s",
          static_cast<long long>(limits_.deadline_ms), detail.c_str(),
          report.c_str()));
    case AbortReason::kCancelled:
      return Status::Cancelled(StringFormat("query cancelled%s; %s",
                                            detail.c_str(), report.c_str()));
    case AbortReason::kNone:
      break;
  }
  return Status::OK();
}

void QueryContext::RecordPendingAbort(AbortReason reason, const char* site,
                                      int64_t requested) {
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    pending_site_ = site != nullptr ? site : "";
    pending_requested_ = requested;
  }
  pending_reason_.store(static_cast<int>(reason), std::memory_order_release);
}

void QueryContext::ClearRecoveredBudgetAbort() {
  int expected = static_cast<int>(AbortReason::kBudget);
  pending_reason_.compare_exchange_strong(expected, 0,
                                          std::memory_order_acq_rel);
}

AbortReason QueryContext::TakePendingAbort(std::string* site_out,
                                           int64_t* requested_out) {
  int reason = pending_reason_.exchange(0, std::memory_order_acq_rel);
  if (reason == 0) return AbortReason::kNone;
  std::lock_guard<std::mutex> lock(pending_mu_);
  if (site_out != nullptr) *site_out = pending_site_;
  if (requested_out != nullptr) *requested_out = pending_requested_;
  return static_cast<AbortReason>(reason);
}

int QueryContext::MemHookThunk(void* ctx, int64_t delta, const char* site) {
  auto* context = static_cast<QueryContext*>(ctx);
  return static_cast<int>(context->TryCharge(delta, site));
}

int QueryContext::CancelCheckThunk(void* ctx) {
  auto* context = static_cast<QueryContext*>(ctx);
  AbortReason reason = context->CheckLiveReason();
  if (SWOLE_UNLIKELY(reason != AbortReason::kNone)) {
    // Record it: a kernel that early-returns on this signal surfaces the
    // reason through the host's next CheckLive, but recording here keeps
    // the first-observed site attribution.
    context->RecordPendingAbort(reason, "cancel_check", 0);
  }
  return static_cast<int>(reason);
}

GovernanceScope::GovernanceScope(QueryContext* external,
                                 int64_t mem_limit_bytes, int64_t deadline_ms,
                                 obs::QueryTrace* trace) {
  // When the process serves under a global memory limit, every governed
  // execution draws from the shared pool — including externally supplied
  // contexts that have not attached one themselves.
  GlobalMemoryPool* pool = AdmissionController::Global().memory_pool();
  if (external != nullptr) {
    ctx_ = external;
    if (pool != nullptr && external->global_pool() == nullptr) {
      external->AttachGlobalPool(pool);
      attached_pool_ = true;
    }
    if (trace != nullptr && external->trace() == nullptr) {
      external->set_trace(trace);
      attached_trace_ = true;
    }
    if (SpillRequestedFromEnv()) external->set_spill_enabled(true);
    return;
  }
  QueryContext::Limits limits;
  limits.mem_limit_bytes = mem_limit_bytes >= 0
                               ? mem_limit_bytes
                               : GetEnvInt64("SWOLE_MEM_LIMIT", 0);
  limits.deadline_ms =
      deadline_ms >= 0 ? deadline_ms : GetEnvInt64("SWOLE_DEADLINE_MS", 0);
  const bool trace_requested = trace != nullptr || TraceRequestedFromEnv();
  const bool perf_requested = obs::PerfCountersRequested();
  // Cost-model refit (observe or apply) needs a context for the engines'
  // observation carrier even when nothing else governs the query.
  const bool refit_requested = cost::RefitEnabled();
  if (limits.mem_limit_bytes > 0 || limits.deadline_ms > 0 ||
      trace_requested || perf_requested || refit_requested ||
      pool != nullptr) {
    owned_ = new QueryContext(limits);
    ctx_ = owned_;
    if (pool != nullptr) {
      ctx_->AttachGlobalPool(pool);
      attached_pool_ = true;
    }
    if (SpillRequestedFromEnv()) ctx_->set_spill_enabled(true);
  }
  if (trace_requested) {
    if (trace == nullptr) {
      // Env-requested trace with no caller-supplied sink: own one for the
      // query and render it at DEBUG level on scope exit (enable with
      // SWOLE_TRACE=1 SWOLE_LOG_LEVEL=debug).
      owned_trace_ = new obs::QueryTrace();
      trace = owned_trace_;
    }
    ctx_->set_trace(trace);
    attached_trace_ = true;
  }
  if (perf_requested) {
    std::string error;
    perf_ = obs::PerfCounterSet::TryCreate(&error).release();
    if (perf_ != nullptr) {
      perf_->Start();
    } else {
      static bool warned = [](const std::string& reason) {
        SWOLE_LOG(WARNING) << "SWOLE_PERF_COUNTERS=1 but hardware counters "
                              "are unavailable: "
                           << reason;
        return true;
      }(error);
      (void)warned;
    }
  }
}

GovernanceScope::~GovernanceScope() {
  obs::HwCounts hw_counts;
  if (perf_ != nullptr) {
    perf_->Stop();
    obs::HwCounts counts = perf_->Read();
    hw_counts = counts;
    obs::QueryTrace* trace = ctx_ != nullptr ? ctx_->trace() : nullptr;
    if (trace != nullptr && counts.valid) {
      obs::QueryTrace::Span* root = trace->root();
      trace->AddAttr(root, "hw.cycles", counts.cycles);
      trace->AddAttr(root, "hw.instructions", counts.instructions);
      trace->AddAttr(root, "hw.llc_misses", counts.llc_misses);
      trace->AddAttr(root, "hw.branch_misses", counts.branch_misses);
    } else {
      SWOLE_LOG(DEBUG) << "hw counters: " << counts.ToString();
    }
    delete perf_;
  }
  // Cost-feedback handoff: the engine filled the estimate side of the
  // observation on our owned context; complete it with the observed side
  // (wall time here, hardware counts above) and forward. Only the OWNING
  // scope reports — an external context belongs to an outer scope, which
  // reports once for the whole attempt chain.
  if (owned_ != nullptr && owned_->has_observation() &&
      cost::RefitEnabled()) {
    cost::QueryObservation record = owned_->observation();
    record.elapsed_ns = static_cast<double>(timer_.ElapsedNanos());
    if (hw_counts.valid) {
      record.cycles = hw_counts.cycles;
      record.llc_misses = hw_counts.llc_misses;
    }
    cost::CostFeedback::Global().Observe(record);
  }
  if (attached_trace_ && ctx_ != nullptr) {
    ctx_->AttachStatsToTrace();
  }
  if (owned_trace_ != nullptr && GetLogLevel() <= LogLevel::kDebug) {
    SWOLE_LOG(DEBUG) << "query trace:\n" << owned_trace_->ToText();
  }
  if (attached_trace_ && ctx_ != nullptr) {
    ctx_->set_trace(nullptr);
  }
  if (attached_pool_ && ctx_ != nullptr) {
    ctx_->DetachGlobalPool();  // refunds any residual shared-pool charge
  }
  delete owned_trace_;
  delete owned_;
}

Status StatusFromCurrentException(QueryContext* ctx) {
  // The pending-abort record takes precedence: it is written by the
  // refusing hook *before* the throw, so it classifies correctly even when
  // the exception object itself crossed a dlopen boundary and its RTTI
  // does not unify with the host's QueryAbort.
  if (ctx != nullptr) {
    std::string site;
    int64_t requested = 0;
    AbortReason pending = ctx->TakePendingAbort(&site, &requested);
    if (pending != AbortReason::kNone) {
      return ctx->MakeStatus(pending, site.c_str(), requested);
    }
  }
  try {
    throw;
  } catch (const ThrownStatus& thrown) {
    return thrown.status;
  } catch (const QueryAbort& abort) {
    if (ctx != nullptr) {
      return ctx->MakeStatus(abort.reason, abort.site, abort.requested_bytes);
    }
    switch (abort.reason) {
      case AbortReason::kBudget:
        return Status::BudgetExceeded("query memory budget exceeded");
      case AbortReason::kDeadline:
        return Status::DeadlineExceeded("query deadline exceeded");
      case AbortReason::kCancelled:
        return Status::Cancelled("query cancelled");
      case AbortReason::kNone:
        break;
    }
    return Status::Internal("QueryAbort with no reason");
  } catch (const std::bad_alloc&) {
    return Status::BudgetExceeded(
        ctx != nullptr
            ? StringFormat("allocation failed (std::bad_alloc); %s",
                           ctx->MemoryReport().c_str())
            : std::string("allocation failed (std::bad_alloc)"));
  } catch (const std::exception& e) {
    return Status::Internal(
        StringFormat("worker exception: %s", e.what()));
  } catch (...) {
    return Status::Internal("worker exception of unknown type");
  }
}

void ThrowIfError(const Status& status) {
  if (SWOLE_UNLIKELY(!status.ok())) throw ThrownStatus{status};
}

}  // namespace swole::exec
