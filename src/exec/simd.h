#ifndef SWOLE_EXEC_SIMD_H_
#define SWOLE_EXEC_SIMD_H_

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <type_traits>

#include "common/macros.h"

// Explicitly vectorized backends for the hot primitive kernels, behind
// runtime CPU dispatch. Three tiers:
//
//  * kScalar — the plain loops the paper describes; whatever the compiler
//    auto-vectorizes at the baseline ISA. This is the reference semantics.
//  * kSwar   — SIMD-within-a-register on plain uint64_t words (the
//    StringZilla-style portable fallback): word-wide byte-mask algebra,
//    population counts, multiply-packed selection-vector bitmasks, and
//    byte-wise equality. Primitives with no profitable word trick fall
//    through to the scalar loops.
//  * kAvx2   — 256-bit intrinsics compiled via per-function
//    `__attribute__((target("avx2")))`, so the translation unit itself
//    needs no -march flags and the binary stays portable.
//
// The backend is selected once, on first use, from CPUID
// (__builtin_cpu_supports) with an `SWOLE_SIMD=avx2|swar|scalar` env
// override for A/B measurement; SetBackend() re-pins it programmatically
// (tests, benches). Requests for an unsupported tier clamp down.
//
// Bit-exactness contract: for every primitive and every input the three
// backends return byte-identical results. Mask (`cmp`) arrays hold 0/1
// bytes — the library-wide convention (kernels.h) — and the SWAR/AVX2
// tiers rely on it where noted. All integer arithmetic is two's-complement
// wrap, and int64 addition is associative, so lane-reordered reductions
// are still bit-exact; combined with PR 2's worker-order merges, query
// results are identical across backends at every thread count.
//
// This header is self-contained (no .cc file) so that JIT-generated
// translation units — which include exec/kernels.h and link nothing but
// common/logging.cc — get the same dispatched primitives as the host
// engines, and the generated source stays backend-agnostic (stable cache
// keys).

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define SWOLE_SIMD_X86 1
#include <immintrin.h>
#define SWOLE_TARGET_AVX2 __attribute__((target("avx2")))
#else
#define SWOLE_SIMD_X86 0
#define SWOLE_TARGET_AVX2
#endif

// GCC's aggressive loop optimizer flags the scalar tail loops below with
// "iteration ~2^61 invokes undefined behavior": the pointer arithmetic
// would overflow if `len` approached INT64_MAX. Lane counts are bounded by
// the address space (a 2^48-lane column is already 2 PiB) so those
// iterations are unreachable, but GCC 12 keeps warning even with an
// explicit `__builtin_unreachable()` range assertion on `len`, so the
// diagnostic is silenced for this header instead.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Waggressive-loop-optimizations"
#endif

namespace swole::simd {

enum class CmpOp : uint8_t { kLt, kLe, kGt, kGe, kEq, kNe };

enum class Backend : uint8_t { kScalar = 0, kSwar = 1, kAvx2 = 2 };

inline const char* BackendName(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kSwar:
      return "swar";
    case Backend::kAvx2:
      return "avx2";
  }
  return "?";
}

inline bool CpuHasAvx2() {
#if SWOLE_SIMD_X86
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

namespace detail {

template <CmpOp op>
SWOLE_ALWAYS_INLINE bool Cmp(int64_t lhs, int64_t rhs) {
  if constexpr (op == CmpOp::kLt) return lhs < rhs;
  if constexpr (op == CmpOp::kLe) return lhs <= rhs;
  if constexpr (op == CmpOp::kGt) return lhs > rhs;
  if constexpr (op == CmpOp::kGe) return lhs >= rhs;
  if constexpr (op == CmpOp::kEq) return lhs == rhs;
  if constexpr (op == CmpOp::kNe) return lhs != rhs;
}

/// Decomposes the six comparison ops into {use equality, swap operands,
/// invert result} over the two vector-native predicates (eq, signed gt).
struct OpShape {
  bool eq;
  bool swap;
  bool invert;
};

SWOLE_ALWAYS_INLINE OpShape ShapeOf(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return {true, false, false};
    case CmpOp::kNe:
      return {true, false, true};
    case CmpOp::kGt:
      return {false, false, false};
    case CmpOp::kLe:
      return {false, false, true};
    case CmpOp::kLt:
      return {false, true, false};
    case CmpOp::kGe:
      return {false, true, true};
  }
  return {true, false, false};
}

/// Result of `col[j] OP lit` when `lit` does not fit in the column's
/// physical type: constant over the whole tile.
SWOLE_ALWAYS_INLINE uint8_t OutOfRangeResult(CmpOp op, bool lit_above_max) {
  switch (op) {
    case CmpOp::kLt:
    case CmpOp::kLe:
      return lit_above_max ? 1 : 0;
    case CmpOp::kGt:
    case CmpOp::kGe:
      return lit_above_max ? 0 : 1;
    case CmpOp::kEq:
      return 0;
    case CmpOp::kNe:
      return 1;
  }
  return 0;
}

/// Expands an 8-bit mask into a u64 whose byte j is bit j (0 or 1).
constexpr std::array<uint64_t, 256> BuildBitToByte() {
  std::array<uint64_t, 256> t{};
  for (uint32_t m = 0; m < 256; ++m) {
    uint64_t w = 0;
    for (int b = 0; b < 8; ++b) {
      if (m & (1u << b)) w |= uint64_t{1} << (8 * b);
    }
    t[m] = w;
  }
  return t;
}
inline constexpr std::array<uint64_t, 256> kBitToByte = BuildBitToByte();

/// Positions-per-mask tables (Data Blocks [32] / ROF [5]): row m lists the
/// set-bit positions of m in ascending order, padded to 8 so a full-width
/// vector store is always legal. kSelCnt is the matching count (avoids a
/// POPCNT dependency inside target("avx2") code).
struct SelPosTables {
  alignas(32) int32_t pos[256][8];
  uint8_t cnt[256];
};

constexpr SelPosTables BuildSelPos() {
  SelPosTables t{};
  for (int m = 0; m < 256; ++m) {
    uint8_t n = 0;
    for (int b = 0; b < 8; ++b) {
      if (m & (1 << b)) t.pos[m][n++] = b;
    }
    t.cnt[m] = n;
    for (int k = n; k < 8; ++k) t.pos[m][k] = 0;
  }
  return t;
}
inline constexpr SelPosTables kSelPos = BuildSelPos();

/// Same, keyed by the *bit-reversed* mask the SWAR multiply pack produces
/// (bit 7-j of the packed byte corresponds to lane j).
constexpr SelPosTables BuildSelPosRev() {
  SelPosTables t{};
  for (int m = 0; m < 256; ++m) {
    uint8_t n = 0;
    for (int b = 7; b >= 0; --b) {
      if (m & (1 << b)) t.pos[m][n++] = 7 - b;
    }
    t.cnt[m] = n;
    for (int k = n; k < 8; ++k) t.pos[m][k] = 0;
  }
  return t;
}
inline constexpr SelPosTables kSelPosRev = BuildSelPosRev();

}  // namespace detail

// ---------------------------------------------------------------------------
// Scalar backend: the reference loops. Semantics of every other backend are
// defined as "byte-identical to these".
// ---------------------------------------------------------------------------

namespace scalar {

template <typename T, CmpOp op>
void CompareLitT(const T* SWOLE_RESTRICT col, int64_t lit,
                 uint8_t* SWOLE_RESTRICT out, int64_t len) {
  for (int64_t j = 0; j < len; ++j) {
    out[j] = detail::Cmp<op>(static_cast<int64_t>(col[j]), lit) ? 1 : 0;
  }
}

template <typename T>
void CompareLit(CmpOp op, const T* col, int64_t lit, uint8_t* out,
                int64_t len) {
  switch (op) {
    case CmpOp::kLt:
      return CompareLitT<T, CmpOp::kLt>(col, lit, out, len);
    case CmpOp::kLe:
      return CompareLitT<T, CmpOp::kLe>(col, lit, out, len);
    case CmpOp::kGt:
      return CompareLitT<T, CmpOp::kGt>(col, lit, out, len);
    case CmpOp::kGe:
      return CompareLitT<T, CmpOp::kGe>(col, lit, out, len);
    case CmpOp::kEq:
      return CompareLitT<T, CmpOp::kEq>(col, lit, out, len);
    case CmpOp::kNe:
      return CompareLitT<T, CmpOp::kNe>(col, lit, out, len);
  }
}

template <typename T, CmpOp op>
void CompareColT(const T* SWOLE_RESTRICT lhs, const T* SWOLE_RESTRICT rhs,
                 uint8_t* SWOLE_RESTRICT out, int64_t len) {
  for (int64_t j = 0; j < len; ++j) {
    out[j] = detail::Cmp<op>(static_cast<int64_t>(lhs[j]),
                             static_cast<int64_t>(rhs[j]))
                 ? 1
                 : 0;
  }
}

template <typename T>
void CompareCol(CmpOp op, const T* lhs, const T* rhs, uint8_t* out,
                int64_t len) {
  switch (op) {
    case CmpOp::kLt:
      return CompareColT<T, CmpOp::kLt>(lhs, rhs, out, len);
    case CmpOp::kLe:
      return CompareColT<T, CmpOp::kLe>(lhs, rhs, out, len);
    case CmpOp::kGt:
      return CompareColT<T, CmpOp::kGt>(lhs, rhs, out, len);
    case CmpOp::kGe:
      return CompareColT<T, CmpOp::kGe>(lhs, rhs, out, len);
    case CmpOp::kEq:
      return CompareColT<T, CmpOp::kEq>(lhs, rhs, out, len);
    case CmpOp::kNe:
      return CompareColT<T, CmpOp::kNe>(lhs, rhs, out, len);
  }
}

inline void AndBytes(uint8_t* SWOLE_RESTRICT out,
                     const uint8_t* SWOLE_RESTRICT other, int64_t len) {
  for (int64_t j = 0; j < len; ++j) out[j] &= other[j];
}

inline void OrBytes(uint8_t* SWOLE_RESTRICT out,
                    const uint8_t* SWOLE_RESTRICT other, int64_t len) {
  for (int64_t j = 0; j < len; ++j) out[j] |= other[j];
}

inline void NotBytes(uint8_t* out, int64_t len) {
  for (int64_t j = 0; j < len; ++j) out[j] = 1 - out[j];
}

inline int64_t CountBytes(const uint8_t* cmp, int64_t len) {
  int64_t count = 0;
  for (int64_t j = 0; j < len; ++j) count += cmp[j];
  return count;
}

template <typename T>
int64_t SumMasked(const T* SWOLE_RESTRICT col,
                  const uint8_t* SWOLE_RESTRICT cmp, int64_t len) {
  int64_t sum = 0;
  for (int64_t j = 0; j < len; ++j) {
    sum += static_cast<int64_t>(col[j]) * cmp[j];
  }
  return sum;
}

template <typename TA, typename TB>
int64_t SumProductMasked(const TA* SWOLE_RESTRICT a,
                         const TB* SWOLE_RESTRICT b,
                         const uint8_t* SWOLE_RESTRICT cmp, int64_t len) {
  int64_t sum = 0;
  for (int64_t j = 0; j < len; ++j) {
    sum += (static_cast<int64_t>(a[j]) * static_cast<int64_t>(b[j])) * cmp[j];
  }
  return sum;
}

template <typename T>
void MaskIntoTmp(const T* SWOLE_RESTRICT col,
                 const uint8_t* SWOLE_RESTRICT cmp, int64_t len,
                 int64_t* SWOLE_RESTRICT tmp) {
  for (int64_t j = 0; j < len; ++j) {
    tmp[j] = static_cast<int64_t>(col[j]) * cmp[j];
  }
}

template <typename T, CmpOp op>
void CompareLitMaskIntoTmpT(const T* SWOLE_RESTRICT col, int64_t lit,
                            int64_t len, int64_t* SWOLE_RESTRICT tmp) {
  for (int64_t j = 0; j < len; ++j) {
    int64_t v = static_cast<int64_t>(col[j]);
    tmp[j] = v * (detail::Cmp<op>(v, lit) ? 1 : 0);
  }
}

template <typename T>
void CompareLitMaskIntoTmp(CmpOp op, const T* col, int64_t lit, int64_t len,
                           int64_t* tmp) {
  switch (op) {
    case CmpOp::kLt:
      return CompareLitMaskIntoTmpT<T, CmpOp::kLt>(col, lit, len, tmp);
    case CmpOp::kLe:
      return CompareLitMaskIntoTmpT<T, CmpOp::kLe>(col, lit, len, tmp);
    case CmpOp::kGt:
      return CompareLitMaskIntoTmpT<T, CmpOp::kGt>(col, lit, len, tmp);
    case CmpOp::kGe:
      return CompareLitMaskIntoTmpT<T, CmpOp::kGe>(col, lit, len, tmp);
    case CmpOp::kEq:
      return CompareLitMaskIntoTmpT<T, CmpOp::kEq>(col, lit, len, tmp);
    case CmpOp::kNe:
      return CompareLitMaskIntoTmpT<T, CmpOp::kNe>(col, lit, len, tmp);
  }
}

template <typename T>
void MaskKeys(const T* SWOLE_RESTRICT col, const uint8_t* SWOLE_RESTRICT cmp,
              int64_t null_key, int64_t len, int64_t* SWOLE_RESTRICT key) {
  for (int64_t j = 0; j < len; ++j) {
    int64_t m = -static_cast<int64_t>(cmp[j]);  // 0 or ~0
    key[j] = (static_cast<int64_t>(col[j]) & m) | (null_key & ~m);
  }
}

/// No-branch (predicated) selection-vector construction [31].
inline int32_t SelVecNoBranch(const uint8_t* SWOLE_RESTRICT cmp, int64_t len,
                              int32_t* SWOLE_RESTRICT idx) {
  int32_t n = 0;
  for (int64_t j = 0; j < len; ++j) {
    idx[n] = static_cast<int32_t>(j);
    n += cmp[j] != 0;
  }
  return n;
}

/// Data Blocks-style [32] LUT construction: packs 8 cmp bytes into a
/// bitmask byte-by-byte, then appends the precomputed position list.
inline int32_t SelVecLut(const uint8_t* cmp, int64_t len, int32_t* idx) {
  int32_t n = 0;
  int64_t j = 0;
  for (; j <= len - 8; j += 8) {
    unsigned mask = 0;
    for (int b = 0; b < 8; ++b) mask |= (cmp[j + b] & 1u) << b;
    const int32_t base = static_cast<int32_t>(j);
    const uint8_t cnt = detail::kSelPos.cnt[mask];
    for (uint8_t k = 0; k < cnt; ++k) {
      idx[n++] = base + detail::kSelPos.pos[mask][k];
    }
  }
  for (; j < len; ++j) {
    idx[n] = static_cast<int32_t>(j);
    n += cmp[j] != 0;
  }
  return n;
}

}  // namespace scalar

// ---------------------------------------------------------------------------
// SWAR backend: 64-bit lanes on plain uint64_t (portable fallback).
// Accelerates the byte-mask algebra, population count, selection-vector
// packing, and byte-wise equality; the remaining primitives have no
// profitable word trick and fall through to the scalar loops.
// ---------------------------------------------------------------------------

namespace swar {

inline constexpr uint64_t kOnes = 0x0101010101010101ULL;
inline constexpr uint64_t kMsbs = 0x8080808080808080ULL;

SWOLE_ALWAYS_INLINE uint64_t LoadWord(const void* p) {
  uint64_t w;
  std::memcpy(&w, p, 8);
  return w;
}

SWOLE_ALWAYS_INLINE void StoreWord(void* p, uint64_t w) {
  std::memcpy(p, &w, 8);
}

inline void AndBytes(uint8_t* SWOLE_RESTRICT out,
                     const uint8_t* SWOLE_RESTRICT other, int64_t len) {
  int64_t j = 0;
  for (; j <= len - 8; j += 8) {
    StoreWord(out + j, LoadWord(out + j) & LoadWord(other + j));
  }
  for (; j < len; ++j) out[j] &= other[j];
}

inline void OrBytes(uint8_t* SWOLE_RESTRICT out,
                    const uint8_t* SWOLE_RESTRICT other, int64_t len) {
  int64_t j = 0;
  for (; j <= len - 8; j += 8) {
    StoreWord(out + j, LoadWord(out + j) | LoadWord(other + j));
  }
  for (; j < len; ++j) out[j] |= other[j];
}

inline void NotBytes(uint8_t* out, int64_t len) {
  // 0/1 mask bytes: 1 - x == x ^ 1 per byte, no borrows across lanes.
  int64_t j = 0;
  for (; j <= len - 8; j += 8) StoreWord(out + j, LoadWord(out + j) ^ kOnes);
  for (; j < len; ++j) out[j] = 1 - out[j];
}

inline int64_t CountBytes(const uint8_t* cmp, int64_t len) {
  // 0/1 mask bytes: the horizontal byte sum of a word is (w * kOnes) >> 56
  // (sums of <= 8 never carry out of the top byte).
  int64_t count = 0;
  int64_t j = 0;
  for (; j <= len - 8; j += 8) {
    count += static_cast<int64_t>((LoadWord(cmp + j) * kOnes) >> 56);
  }
  for (; j < len; ++j) count += cmp[j];
  return count;
}

/// Byte-wise equality over a word: 0x01 where the bytes of w are zero.
/// The classic (w - kOnes) & ~w & kMsbs is only an "any zero byte" test —
/// its subtraction borrows across byte lanes, so a zero byte can flag its
/// upper neighbor. This form is per-byte exact: (w & 0x7f..) + 0x7f.. sets
/// each byte's MSB iff its low 7 bits are nonzero and never carries out of
/// the byte; OR-ing w itself folds the MSB back in, leaving the MSB clear
/// exactly for zero bytes.
SWOLE_ALWAYS_INLINE uint64_t ZeroBytesToOnes(uint64_t w) {
  const uint64_t k7f = ~kMsbs;
  return (~((((w & k7f) + k7f) | w) | k7f)) >> 7;
}

/// Per-byte unsigned x >= y, flagged in each byte's MSB. The low 7 bits
/// compare through z = (x|MSB) - (y&~MSB): every minuend byte is >= 0x80
/// and every subtrahend <= 0x7F, so no borrow crosses byte lanes and z's
/// per-byte MSB is exactly [x_low7 >= y_low7]. Folding in the operands'
/// own MSBs gives the full unsigned compare: x >= y iff x's MSB exceeds
/// y's, or they match and the low halves compare >=.
SWOLE_ALWAYS_INLINE uint64_t GeBytesMsb(uint64_t x, uint64_t y) {
  const uint64_t z = (x | kMsbs) - (y & ~kMsbs);
  return ((x & ~y) | (~(x ^ y) & z)) & kMsbs;
}

/// Word-wide int8 ordering: signed per-byte compare via the bias trick
/// (flip both sign bits, compare unsigned). `out` gets 0/1 bytes of
/// `col[j] OP lit` for the ordering ops; kGe/kLt read GeBytesMsb(x, lit),
/// kLe/kGt read it with the operands swapped (x <= lit iff lit >= x),
/// inverting where needed.
SWOLE_ALWAYS_INLINE void CompareLitOrderI8(CmpOp op, const int8_t* col,
                                           uint64_t pattern, uint8_t* out,
                                           int64_t len, int64_t lit) {
  const uint64_t biased_lit = pattern ^ kMsbs;
  const bool swap = op == CmpOp::kLe || op == CmpOp::kGt;
  const uint64_t inv = (op == CmpOp::kLt || op == CmpOp::kGt) ? kMsbs : 0;
  int64_t j = 0;
  for (; j <= len - 8; j += 8) {
    const uint64_t x = LoadWord(col + j) ^ kMsbs;
    const uint64_t ge = swap ? GeBytesMsb(biased_lit, x)
                             : GeBytesMsb(x, biased_lit);
    StoreWord(out + j, (ge ^ inv) >> 7);
  }
  for (; j < len; ++j) {
    switch (op) {
      case CmpOp::kLt:
        out[j] = col[j] < lit ? 1 : 0;
        break;
      case CmpOp::kLe:
        out[j] = col[j] <= lit ? 1 : 0;
        break;
      case CmpOp::kGt:
        out[j] = col[j] > lit ? 1 : 0;
        break;
      default:
        out[j] = col[j] >= lit ? 1 : 0;
        break;
    }
  }
}

template <typename T>
void CompareLit(CmpOp op, const T* col, int64_t lit, uint8_t* out,
                int64_t len) {
  if constexpr (std::is_same_v<T, int8_t>) {
    if (lit < std::numeric_limits<int8_t>::min() ||
        lit > std::numeric_limits<int8_t>::max()) {
      std::memset(
          out,
          detail::OutOfRangeResult(
              op, lit > std::numeric_limits<int8_t>::max()),
          static_cast<size_t>(len));
      return;
    }
    const uint64_t pattern =
        kOnes * static_cast<uint8_t>(static_cast<int8_t>(lit));
    if (op == CmpOp::kEq || op == CmpOp::kNe) {
      const uint64_t flip = op == CmpOp::kNe ? kOnes : 0;
      int64_t j = 0;
      for (; j <= len - 8; j += 8) {
        StoreWord(out + j, ZeroBytesToOnes(LoadWord(col + j) ^ pattern) ^
                               flip);
      }
      for (; j < len; ++j) {
        out[j] = (static_cast<int64_t>(col[j]) == lit) ==
                         (op == CmpOp::kEq)
                     ? 1
                     : 0;
      }
      return;
    }
    CompareLitOrderI8(op, col, pattern, out, len, lit);
    return;
  }
  scalar::CompareLit<T>(op, col, lit, out, len);
}

template <typename T>
void CompareCol(CmpOp op, const T* lhs, const T* rhs, uint8_t* out,
                int64_t len) {
  if constexpr (std::is_same_v<T, int8_t>) {
    if (op == CmpOp::kEq || op == CmpOp::kNe) {
      const uint64_t flip = op == CmpOp::kNe ? kOnes : 0;
      int64_t j = 0;
      for (; j <= len - 8; j += 8) {
        StoreWord(out + j,
                  ZeroBytesToOnes(LoadWord(lhs + j) ^ LoadWord(rhs + j)) ^
                      flip);
      }
      for (; j < len; ++j) {
        out[j] = (lhs[j] == rhs[j]) == (op == CmpOp::kEq) ? 1 : 0;
      }
      return;
    }
    // Ordering: same bias trick as CompareLitOrderI8 with both sides
    // loaded per word.
    const bool swap = op == CmpOp::kLe || op == CmpOp::kGt;
    const uint64_t inv = (op == CmpOp::kLt || op == CmpOp::kGt) ? kMsbs : 0;
    int64_t j = 0;
    for (; j <= len - 8; j += 8) {
      const uint64_t x = LoadWord(lhs + j) ^ kMsbs;
      const uint64_t y = LoadWord(rhs + j) ^ kMsbs;
      const uint64_t ge = swap ? GeBytesMsb(y, x) : GeBytesMsb(x, y);
      StoreWord(out + j, (ge ^ inv) >> 7);
    }
    for (; j < len; ++j) {
      switch (op) {
        case CmpOp::kLt:
          out[j] = lhs[j] < rhs[j] ? 1 : 0;
          break;
        case CmpOp::kLe:
          out[j] = lhs[j] <= rhs[j] ? 1 : 0;
          break;
        case CmpOp::kGt:
          out[j] = lhs[j] > rhs[j] ? 1 : 0;
          break;
        default:
          out[j] = lhs[j] >= rhs[j] ? 1 : 0;
          break;
      }
    }
    return;
  }
  scalar::CompareCol<T>(op, lhs, rhs, out, len);
}

/// Word-wide masked sum for int8 columns. The 0/1 mask bytes expand to
/// 0x00/0xFF select bytes ((m * 0x7F) | (m << 7): both products are
/// byte-aligned, no carries), the selected bytes sum unsigned via two
/// carry-free folds, and a signed correction subtracts 256 for every
/// selected negative byte (its unsigned value overcounts by exactly 256).
template <typename T>
int64_t SumMasked(const T* SWOLE_RESTRICT col,
                  const uint8_t* SWOLE_RESTRICT cmp, int64_t len) {
  if constexpr (std::is_same_v<T, int8_t>) {
    constexpr uint64_t k00ff = 0x00FF00FF00FF00FFULL;
    int64_t sum = 0;
    int64_t j = 0;
    for (; j <= len - 8; j += 8) {
      const uint64_t m = LoadWord(cmp + j);
      const uint64_t full = (m * 0x7F) | (m << 7);
      const uint64_t v = LoadWord(col + j) & full;
      const uint64_t pairs = (v & k00ff) + ((v >> 8) & k00ff);
      const uint64_t usum = (pairs * 0x0001000100010001ULL) >> 48;
      sum += static_cast<int64_t>(usum) -
             256 * std::popcount(v & kMsbs);
    }
    for (; j < len; ++j) sum += static_cast<int64_t>(col[j]) * cmp[j];
    return sum;
  } else {
    return scalar::SumMasked<T>(col, cmp, len);
  }
}

/// Word-at-a-time selection-vector construction: packs 8 cmp bytes into a
/// bitmask with one multiply. For 0/1 bytes, (w * 0x8040...01) >> 56 is the
/// bit-reversed lane mask with no cross-byte carries (partial sums stay
/// < 256), so the bit-reversed position table recovers ascending order.
inline int32_t SelVecFromCmp(const uint8_t* SWOLE_RESTRICT cmp, int64_t len,
                             int32_t* SWOLE_RESTRICT idx) {
  int32_t n = 0;
  int64_t j = 0;
  for (; j <= len - 8; j += 8) {
    const uint64_t mask = (LoadWord(cmp + j) * 0x8040201008040201ULL) >> 56;
    const int32_t base = static_cast<int32_t>(j);
    const uint8_t cnt = detail::kSelPosRev.cnt[mask];
    for (uint8_t k = 0; k < cnt; ++k) {
      idx[n++] = base + detail::kSelPosRev.pos[mask][k];
    }
  }
  for (; j < len; ++j) {
    idx[n] = static_cast<int32_t>(j);
    n += cmp[j] != 0;
  }
  return n;
}

}  // namespace swar

// ---------------------------------------------------------------------------
// AVX2 backend. Every function carries target("avx2") so this header
// compiles without -march flags; callers must gate on the runtime dispatch.
// ---------------------------------------------------------------------------

#if SWOLE_SIMD_X86

namespace avx2 {

/// Widens the next 4 lanes of `col` to 4 x int64.
template <typename T>
SWOLE_TARGET_AVX2 SWOLE_ALWAYS_INLINE __m256i Load4Widened(const T* p) {
  if constexpr (sizeof(T) == 1) {
    int32_t bits;
    std::memcpy(&bits, p, 4);
    return _mm256_cvtepi8_epi64(_mm_cvtsi32_si128(bits));
  } else if constexpr (sizeof(T) == 2) {
    return _mm256_cvtepi16_epi64(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p)));
  } else if constexpr (sizeof(T) == 4) {
    return _mm256_cvtepi32_epi64(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
  } else {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
}

/// Expands 4 mask bytes (0/1) into 4 x int64 lanes of 0 / ~0.
SWOLE_TARGET_AVX2 SWOLE_ALWAYS_INLINE __m256i Expand4Mask(const uint8_t* cmp) {
  int32_t bits;
  std::memcpy(&bits, cmp, 4);
  const __m256i m01 = _mm256_cvtepi8_epi64(_mm_cvtsi32_si128(bits));
  return _mm256_sub_epi64(_mm256_setzero_si256(), m01);
}

/// Loads the next 8 lanes of `col` sign-extended to 8 x int32. Only valid
/// for columns whose physical type fits in 32 bits; int64 columns use the
/// 4-lane Load4Widened paths instead.
template <typename T>
SWOLE_TARGET_AVX2 SWOLE_ALWAYS_INLINE __m256i Load8AsI32(const T* p) {
  if constexpr (sizeof(T) == 1) {
    return _mm256_cvtepi8_epi32(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p)));
  } else if constexpr (sizeof(T) == 2) {
    return _mm256_cvtepi16_epi32(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
  } else {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
}

/// Expands 8 mask bytes (0/1) into 8 x int32 lanes of 0 / ~0.
SWOLE_TARGET_AVX2 SWOLE_ALWAYS_INLINE __m256i Expand8Mask32(
    const uint8_t* cmp) {
  const __m256i m01 = _mm256_cvtepi8_epi32(
      _mm_loadl_epi64(reinterpret_cast<const __m128i*>(cmp)));
  return _mm256_sub_epi32(_mm256_setzero_si256(), m01);
}

/// Widens 8 x int32 lanes to 2 x 4 x int64 and adds them into the two
/// accumulators.
SWOLE_TARGET_AVX2 SWOLE_ALWAYS_INLINE void AddWidened8(__m256i v,
                                                       __m256i* acc0,
                                                       __m256i* acc1) {
  *acc0 = _mm256_add_epi64(
      *acc0, _mm256_cvtepi32_epi64(_mm256_castsi256_si128(v)));
  *acc1 = _mm256_add_epi64(
      *acc1, _mm256_cvtepi32_epi64(_mm256_extracti128_si256(v, 1)));
}

/// Exact low-64-bit product per lane (vpmullq is AVX-512; compose from
/// 32x32 halves).
SWOLE_TARGET_AVX2 SWOLE_ALWAYS_INLINE __m256i MulLo64(__m256i a, __m256i b) {
  const __m256i lo = _mm256_mul_epu32(a, b);
  const __m256i a_hi = _mm256_srli_epi64(a, 32);
  const __m256i b_hi = _mm256_srli_epi64(b, 32);
  const __m256i cross =
      _mm256_add_epi64(_mm256_mul_epu32(a_hi, b), _mm256_mul_epu32(a, b_hi));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

SWOLE_TARGET_AVX2 SWOLE_ALWAYS_INLINE int64_t HorizontalSum64(__m256i v) {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  const __m128i s = _mm_add_epi64(lo, hi);
  return _mm_cvtsi128_si64(s) + _mm_extract_epi64(s, 1);
}

template <typename T>
SWOLE_TARGET_AVX2 void CompareLit(CmpOp op, const T* SWOLE_RESTRICT col,
                                  int64_t lit, uint8_t* SWOLE_RESTRICT out,
                                  int64_t len) {
  if constexpr (!std::is_same_v<T, int64_t>) {
    if (lit < static_cast<int64_t>(std::numeric_limits<T>::min()) ||
        lit > static_cast<int64_t>(std::numeric_limits<T>::max())) {
      std::memset(out, detail::OutOfRangeResult(
                           op, lit > static_cast<int64_t>(
                                         std::numeric_limits<T>::max())),
                  static_cast<size_t>(len));
      return;
    }
  }
  const detail::OpShape shape = detail::ShapeOf(op);
  const T l = static_cast<T>(lit);
  int64_t j = 0;
  if constexpr (sizeof(T) == 1) {
    const __m256i vlit = _mm256_set1_epi8(static_cast<char>(l));
    const __m256i inv =
        shape.invert ? _mm256_set1_epi8(-1) : _mm256_setzero_si256();
    const __m256i one = _mm256_set1_epi8(1);
    for (; j <= len - 32; j += 32) {
      const __m256i x =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(col + j));
      __m256i m;
      if (shape.eq) {
        m = _mm256_cmpeq_epi8(x, vlit);
      } else if (shape.swap) {
        m = _mm256_cmpgt_epi8(vlit, x);
      } else {
        m = _mm256_cmpgt_epi8(x, vlit);
      }
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + j),
                          _mm256_and_si256(_mm256_xor_si256(m, inv), one));
    }
  } else if constexpr (sizeof(T) == 2) {
    const __m256i vlit = _mm256_set1_epi16(l);
    const __m256i inv =
        shape.invert ? _mm256_set1_epi16(-1) : _mm256_setzero_si256();
    const __m256i one = _mm256_set1_epi16(1);
    for (; j <= len - 16; j += 16) {
      const __m256i x =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(col + j));
      __m256i m;
      if (shape.eq) {
        m = _mm256_cmpeq_epi16(x, vlit);
      } else if (shape.swap) {
        m = _mm256_cmpgt_epi16(vlit, x);
      } else {
        m = _mm256_cmpgt_epi16(x, vlit);
      }
      const __m256i w = _mm256_and_si256(_mm256_xor_si256(m, inv), one);
      const __m256i packed = _mm256_permute4x64_epi64(
          _mm256_packs_epi16(w, _mm256_setzero_si256()), 0xD8);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + j),
                       _mm256_castsi256_si128(packed));
    }
  } else if constexpr (sizeof(T) == 4) {
    const __m256i vlit = _mm256_set1_epi32(l);
    const uint32_t inv = shape.invert ? 0xFFu : 0;
    for (; j <= len - 8; j += 8) {
      const __m256i x =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(col + j));
      __m256i m;
      if (shape.eq) {
        m = _mm256_cmpeq_epi32(x, vlit);
      } else if (shape.swap) {
        m = _mm256_cmpgt_epi32(vlit, x);
      } else {
        m = _mm256_cmpgt_epi32(x, vlit);
      }
      const uint32_t bits =
          (static_cast<uint32_t>(
               _mm256_movemask_ps(_mm256_castsi256_ps(m))) ^
           inv) &
          0xFFu;
      swar::StoreWord(out + j, detail::kBitToByte[bits]);
    }
  } else {
    const __m256i vlit = _mm256_set1_epi64x(l);
    const uint32_t inv = shape.invert ? 0xFFu : 0;
    for (; j <= len - 8; j += 8) {
      const __m256i x0 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(col + j));
      const __m256i x1 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(col + j + 4));
      __m256i m0, m1;
      if (shape.eq) {
        m0 = _mm256_cmpeq_epi64(x0, vlit);
        m1 = _mm256_cmpeq_epi64(x1, vlit);
      } else if (shape.swap) {
        m0 = _mm256_cmpgt_epi64(vlit, x0);
        m1 = _mm256_cmpgt_epi64(vlit, x1);
      } else {
        m0 = _mm256_cmpgt_epi64(x0, vlit);
        m1 = _mm256_cmpgt_epi64(x1, vlit);
      }
      const uint32_t bits =
          ((static_cast<uint32_t>(
                _mm256_movemask_pd(_mm256_castsi256_pd(m0))) |
            (static_cast<uint32_t>(
                 _mm256_movemask_pd(_mm256_castsi256_pd(m1)))
             << 4)) ^
           inv) &
          0xFFu;
      swar::StoreWord(out + j, detail::kBitToByte[bits]);
    }
  }
  for (; j < len; ++j) {
    int64_t v = static_cast<int64_t>(col[j]);
    bool r;
    if (shape.eq) {
      r = v == lit;
    } else if (shape.swap) {
      r = lit > v;
    } else {
      r = v > lit;
    }
    out[j] = static_cast<uint8_t>(r != shape.invert);
  }
}

template <typename T>
SWOLE_TARGET_AVX2 void CompareCol(CmpOp op, const T* SWOLE_RESTRICT lhs,
                                  const T* SWOLE_RESTRICT rhs,
                                  uint8_t* SWOLE_RESTRICT out, int64_t len) {
  const detail::OpShape shape = detail::ShapeOf(op);
  int64_t j = 0;
  if constexpr (sizeof(T) == 1) {
    const __m256i inv =
        shape.invert ? _mm256_set1_epi8(-1) : _mm256_setzero_si256();
    const __m256i one = _mm256_set1_epi8(1);
    for (; j <= len - 32; j += 32) {
      __m256i a =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(lhs + j));
      __m256i b =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rhs + j));
      if (shape.swap) std::swap(a, b);
      const __m256i m =
          shape.eq ? _mm256_cmpeq_epi8(a, b) : _mm256_cmpgt_epi8(a, b);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + j),
                          _mm256_and_si256(_mm256_xor_si256(m, inv), one));
    }
  } else if constexpr (sizeof(T) == 2) {
    const __m256i inv =
        shape.invert ? _mm256_set1_epi16(-1) : _mm256_setzero_si256();
    const __m256i one = _mm256_set1_epi16(1);
    for (; j <= len - 16; j += 16) {
      __m256i a =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(lhs + j));
      __m256i b =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rhs + j));
      if (shape.swap) std::swap(a, b);
      const __m256i m =
          shape.eq ? _mm256_cmpeq_epi16(a, b) : _mm256_cmpgt_epi16(a, b);
      const __m256i w = _mm256_and_si256(_mm256_xor_si256(m, inv), one);
      const __m256i packed = _mm256_permute4x64_epi64(
          _mm256_packs_epi16(w, _mm256_setzero_si256()), 0xD8);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + j),
                       _mm256_castsi256_si128(packed));
    }
  } else if constexpr (sizeof(T) == 4) {
    const uint32_t inv = shape.invert ? 0xFFu : 0;
    for (; j <= len - 8; j += 8) {
      __m256i a =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(lhs + j));
      __m256i b =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rhs + j));
      if (shape.swap) std::swap(a, b);
      const __m256i m =
          shape.eq ? _mm256_cmpeq_epi32(a, b) : _mm256_cmpgt_epi32(a, b);
      const uint32_t bits =
          (static_cast<uint32_t>(
               _mm256_movemask_ps(_mm256_castsi256_ps(m))) ^
           inv) &
          0xFFu;
      swar::StoreWord(out + j, detail::kBitToByte[bits]);
    }
  } else {
    const uint32_t inv = shape.invert ? 0xFFu : 0;
    for (; j <= len - 8; j += 8) {
      __m256i a0 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(lhs + j));
      __m256i b0 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rhs + j));
      __m256i a1 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(lhs + j + 4));
      __m256i b1 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rhs + j + 4));
      if (shape.swap) {
        std::swap(a0, b0);
        std::swap(a1, b1);
      }
      const __m256i m0 =
          shape.eq ? _mm256_cmpeq_epi64(a0, b0) : _mm256_cmpgt_epi64(a0, b0);
      const __m256i m1 =
          shape.eq ? _mm256_cmpeq_epi64(a1, b1) : _mm256_cmpgt_epi64(a1, b1);
      const uint32_t bits =
          ((static_cast<uint32_t>(
                _mm256_movemask_pd(_mm256_castsi256_pd(m0))) |
            (static_cast<uint32_t>(
                 _mm256_movemask_pd(_mm256_castsi256_pd(m1)))
             << 4)) ^
           inv) &
          0xFFu;
      swar::StoreWord(out + j, detail::kBitToByte[bits]);
    }
  }
  for (; j < len; ++j) {
    int64_t a = static_cast<int64_t>(lhs[j]);
    int64_t b = static_cast<int64_t>(rhs[j]);
    if (shape.swap) std::swap(a, b);
    const bool r = shape.eq ? a == b : a > b;
    out[j] = static_cast<uint8_t>(r != shape.invert);
  }
}

SWOLE_TARGET_AVX2 inline void AndBytes(uint8_t* SWOLE_RESTRICT out,
                                       const uint8_t* SWOLE_RESTRICT other,
                                       int64_t len) {
  int64_t j = 0;
  for (; j <= len - 32; j += 32) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(out + j));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(other + j));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + j),
                        _mm256_and_si256(a, b));
  }
  for (; j < len; ++j) out[j] &= other[j];
}

SWOLE_TARGET_AVX2 inline void OrBytes(uint8_t* SWOLE_RESTRICT out,
                                      const uint8_t* SWOLE_RESTRICT other,
                                      int64_t len) {
  int64_t j = 0;
  for (; j <= len - 32; j += 32) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(out + j));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(other + j));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + j),
                        _mm256_or_si256(a, b));
  }
  for (; j < len; ++j) out[j] |= other[j];
}

SWOLE_TARGET_AVX2 inline void NotBytes(uint8_t* out, int64_t len) {
  const __m256i one = _mm256_set1_epi8(1);
  int64_t j = 0;
  for (; j <= len - 32; j += 32) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(out + j));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + j),
                        _mm256_sub_epi8(one, x));
  }
  for (; j < len; ++j) out[j] = 1 - out[j];
}

SWOLE_TARGET_AVX2 inline int64_t CountBytes(const uint8_t* cmp, int64_t len) {
  const __m256i zero = _mm256_setzero_si256();
  __m256i acc = zero;
  int64_t j = 0;
  for (; j <= len - 32; j += 32) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cmp + j));
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(x, zero));
  }
  int64_t count = HorizontalSum64(acc);
  for (; j < len; ++j) count += cmp[j];
  return count;
}

/// Width-native masked sum. Narrow widths accumulate in the narrowest
/// exact intermediate and fold into the int64 accumulators before any
/// intermediate can wrap, so the result is bit-identical to the int64
/// reference at all widths (int64 addition is the final step everywhere
/// and wraps mod 2^64 like the scalar backend).
template <typename T>
SWOLE_TARGET_AVX2 int64_t SumMasked(const T* SWOLE_RESTRICT col,
                                    const uint8_t* SWOLE_RESTRICT cmp,
                                    int64_t len) {
  __m256i acc0 = _mm256_setzero_si256();
  __m256i acc1 = _mm256_setzero_si256();
  int64_t j = 0;
  if constexpr (sizeof(T) == 1) {
    // 32 lanes/iter: maddubs pairs the unsigned 0/1 mask with the signed
    // values — pair sums stay in [-256, 254], far from i16 saturation —
    // then madd against ones gives exact i32 quad partials. Each i32 lane
    // grows by at most 4*128 = 2^9 per iteration, so folding to i64 every
    // 2^20 iterations bounds it at 2^29 < INT32_MAX.
    const __m256i ones16 = _mm256_set1_epi16(1);
    constexpr int64_t kFoldLanes = (int64_t{1} << 20) * 32;
    while (j + 32 <= len) {
      const int64_t vend = j + ((len - j) / 32) * 32;
      const int64_t stop = std::min(vend, j + kFoldLanes);
      __m256i acc32 = _mm256_setzero_si256();
      for (; j < stop; j += 32) {
        const __m256i v =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(col + j));
        const __m256i m =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cmp + j));
        const __m256i pairs = _mm256_maddubs_epi16(m, v);
        acc32 = _mm256_add_epi32(acc32, _mm256_madd_epi16(pairs, ones16));
      }
      AddWidened8(acc32, &acc0, &acc1);
    }
  } else if constexpr (sizeof(T) == 2) {
    // 16 lanes/iter: madd(value, 0/1 mask) — products are |v| or 0, pair
    // sums at most 2^16 in magnitude, exact in i32. Lane growth <= 2^16
    // per iteration; fold every 2^14 iterations (<= 2^30).
    constexpr int64_t kFoldLanes = (int64_t{1} << 14) * 16;
    while (j + 16 <= len) {
      const int64_t vend = j + ((len - j) / 16) * 16;
      const int64_t stop = std::min(vend, j + kFoldLanes);
      __m256i acc32 = _mm256_setzero_si256();
      for (; j < stop; j += 16) {
        const __m256i v =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(col + j));
        const __m256i m16 = _mm256_cvtepi8_epi16(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(cmp + j)));
        acc32 = _mm256_add_epi32(acc32, _mm256_madd_epi16(v, m16));
      }
      AddWidened8(acc32, &acc0, &acc1);
    }
  } else if constexpr (sizeof(T) == 4) {
    // 8 lanes/iter, masked at i32 then widened into the accumulators.
    for (; j + 8 <= len; j += 8) {
      const __m256i v = _mm256_and_si256(Load8AsI32(col + j),
                                         Expand8Mask32(cmp + j));
      AddWidened8(v, &acc0, &acc1);
    }
  } else {
    for (; j <= len - 8; j += 8) {
      const __m256i v0 = Load4Widened(col + j);
      const __m256i v1 = Load4Widened(col + j + 4);
      acc0 =
          _mm256_add_epi64(acc0, _mm256_and_si256(v0, Expand4Mask(cmp + j)));
      acc1 = _mm256_add_epi64(acc1,
                              _mm256_and_si256(v1, Expand4Mask(cmp + j + 4)));
    }
  }
  int64_t sum = HorizontalSum64(_mm256_add_epi64(acc0, acc1));
  for (; j < len; ++j) sum += static_cast<int64_t>(col[j]) * cmp[j];
  return sum;
}

/// Width-native masked dot product. Same exactness contract as SumMasked:
/// every narrow path computes the product in an intermediate wide enough
/// to hold it exactly and folds into int64 before partials can wrap.
/// Note the int16 path widens to i32 and multiplies with mullo_epi32
/// rather than pairing with madd_epi16 — madd's pair-sum wraps when both
/// pair products are (-2^15)^2, which would break bit-identity.
template <typename TA, typename TB>
SWOLE_TARGET_AVX2 int64_t SumProductMasked(const TA* SWOLE_RESTRICT a,
                                           const TB* SWOLE_RESTRICT b,
                                           const uint8_t* SWOLE_RESTRICT cmp,
                                           int64_t len) {
  __m256i acc0 = _mm256_setzero_si256();
  __m256i acc1 = _mm256_setzero_si256();
  int64_t j = 0;
  if constexpr (sizeof(TA) == 1 && sizeof(TB) == 1) {
    // 16 lanes/iter: int8 x int8 products fit i16 exactly (|p| <= 2^14);
    // mask at i16, then exact madd pair partials into i32. Lane growth
    // <= 2^15 per iteration; fold every 2^15 iterations (<= 2^30).
    const __m256i ones16 = _mm256_set1_epi16(1);
    constexpr int64_t kFoldLanes = (int64_t{1} << 15) * 16;
    while (j + 16 <= len) {
      const int64_t vend = j + ((len - j) / 16) * 16;
      const int64_t stop = std::min(vend, j + kFoldLanes);
      __m256i acc32 = _mm256_setzero_si256();
      for (; j < stop; j += 16) {
        const __m256i va = _mm256_cvtepi8_epi16(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + j)));
        const __m256i vb = _mm256_cvtepi8_epi16(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j)));
        const __m256i m01 = _mm256_cvtepi8_epi16(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(cmp + j)));
        const __m256i m = _mm256_sub_epi16(_mm256_setzero_si256(), m01);
        const __m256i prod =
            _mm256_and_si256(_mm256_mullo_epi16(va, vb), m);
        acc32 = _mm256_add_epi32(acc32, _mm256_madd_epi16(prod, ones16));
      }
      AddWidened8(acc32, &acc0, &acc1);
    }
  } else if constexpr (sizeof(TA) <= 2 && sizeof(TB) <= 2) {
    // 8 lanes/iter: int16-range factors give |product| <= 2^30, so
    // mullo_epi32 is exact; mask at i32 and widen into the accumulators.
    for (; j + 8 <= len; j += 8) {
      const __m256i va = Load8AsI32(a + j);
      const __m256i vb = Load8AsI32(b + j);
      const __m256i prod = _mm256_and_si256(_mm256_mullo_epi32(va, vb),
                                            Expand8Mask32(cmp + j));
      AddWidened8(prod, &acc0, &acc1);
    }
  } else {
    for (; j <= len - 4; j += 4) {
      const __m256i va = Load4Widened(a + j);
      const __m256i vb = Load4Widened(b + j);
      __m256i prod;
      if constexpr (sizeof(TA) <= 4 && sizeof(TB) <= 4) {
        // Both factors fit in 32 bits after widening; one signed 32x32->64.
        prod = _mm256_mul_epi32(va, vb);
      } else {
        prod = MulLo64(va, vb);
      }
      acc0 =
          _mm256_add_epi64(acc0, _mm256_and_si256(prod, Expand4Mask(cmp + j)));
    }
  }
  int64_t sum = HorizontalSum64(_mm256_add_epi64(acc0, acc1));
  for (; j < len; ++j) {
    sum += (static_cast<int64_t>(a[j]) * static_cast<int64_t>(b[j])) * cmp[j];
  }
  return sum;
}

template <typename T>
SWOLE_TARGET_AVX2 void MaskIntoTmp(const T* SWOLE_RESTRICT col,
                                   const uint8_t* SWOLE_RESTRICT cmp,
                                   int64_t len, int64_t* SWOLE_RESTRICT tmp) {
  int64_t j = 0;
  if constexpr (sizeof(T) <= 4) {
    // 8 lanes/iter: one narrow load + one 8-wide mask expand feed two
    // widening stores (the stores must widen — tmp is the int64 tile).
    for (; j + 8 <= len; j += 8) {
      const __m256i v =
          _mm256_and_si256(Load8AsI32(col + j), Expand8Mask32(cmp + j));
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(tmp + j),
          _mm256_cvtepi32_epi64(_mm256_castsi256_si128(v)));
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(tmp + j + 4),
          _mm256_cvtepi32_epi64(_mm256_extracti128_si256(v, 1)));
    }
  } else {
    for (; j <= len - 4; j += 4) {
      const __m256i v = Load4Widened(col + j);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(tmp + j),
                          _mm256_and_si256(v, Expand4Mask(cmp + j)));
    }
  }
  for (; j < len; ++j) tmp[j] = static_cast<int64_t>(col[j]) * cmp[j];
}

template <typename T>
SWOLE_TARGET_AVX2 void CompareLitMaskIntoTmp(CmpOp op,
                                             const T* SWOLE_RESTRICT col,
                                             int64_t lit, int64_t len,
                                             int64_t* SWOLE_RESTRICT tmp) {
  const detail::OpShape shape = detail::ShapeOf(op);
  int64_t j = 0;
  if constexpr (sizeof(T) <= 4) {
    if (lit < static_cast<int64_t>(std::numeric_limits<T>::min()) ||
        lit > static_cast<int64_t>(std::numeric_limits<T>::max())) {
      // Every lane compares the same way against an out-of-range literal:
      // the tile is all zeros or a straight widening copy.
      if (detail::OutOfRangeResult(
              op, lit > static_cast<int64_t>(
                            std::numeric_limits<T>::max())) == 0) {
        std::memset(tmp, 0, static_cast<size_t>(len) * sizeof(int64_t));
      } else {
        for (; j < len; ++j) tmp[j] = static_cast<int64_t>(col[j]);
      }
      return;
    }
    // 8 lanes/iter: compare at the native (<=32-bit) width, mask, then
    // widen only for the int64 tile stores.
    const __m256i vlit = _mm256_set1_epi32(static_cast<int32_t>(lit));
    const __m256i inv =
        shape.invert ? _mm256_set1_epi32(-1) : _mm256_setzero_si256();
    for (; j + 8 <= len; j += 8) {
      const __m256i v = Load8AsI32(col + j);
      __m256i m;
      if (shape.eq) {
        m = _mm256_cmpeq_epi32(v, vlit);
      } else if (shape.swap) {
        m = _mm256_cmpgt_epi32(vlit, v);
      } else {
        m = _mm256_cmpgt_epi32(v, vlit);
      }
      const __m256i mv = _mm256_and_si256(v, _mm256_xor_si256(m, inv));
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(tmp + j),
          _mm256_cvtepi32_epi64(_mm256_castsi256_si128(mv)));
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(tmp + j + 4),
          _mm256_cvtepi32_epi64(_mm256_extracti128_si256(mv, 1)));
    }
  } else {
    const __m256i vlit = _mm256_set1_epi64x(lit);
    const __m256i inv =
        shape.invert ? _mm256_set1_epi64x(-1) : _mm256_setzero_si256();
    for (; j <= len - 4; j += 4) {
      const __m256i v = Load4Widened(col + j);
      __m256i m;
      if (shape.eq) {
        m = _mm256_cmpeq_epi64(v, vlit);
      } else if (shape.swap) {
        m = _mm256_cmpgt_epi64(vlit, v);
      } else {
        m = _mm256_cmpgt_epi64(v, vlit);
      }
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(tmp + j),
                          _mm256_and_si256(v, _mm256_xor_si256(m, inv)));
    }
  }
  for (; j < len; ++j) {
    const int64_t v = static_cast<int64_t>(col[j]);
    bool r;
    if (shape.eq) {
      r = v == lit;
    } else if (shape.swap) {
      r = lit > v;
    } else {
      r = v > lit;
    }
    tmp[j] = v * ((r != shape.invert) ? 1 : 0);
  }
}

template <typename T>
SWOLE_TARGET_AVX2 void MaskKeys(const T* SWOLE_RESTRICT col,
                                const uint8_t* SWOLE_RESTRICT cmp,
                                int64_t null_key, int64_t len,
                                int64_t* SWOLE_RESTRICT key) {
  const __m256i vnull = _mm256_set1_epi64x(null_key);
  int64_t j = 0;
  if constexpr (sizeof(T) <= 4) {
    // 8 lanes/iter off one narrow load; the blend still happens at int64
    // because null_key need not fit the narrow width.
    for (; j + 8 <= len; j += 8) {
      const __m256i v = Load8AsI32(col + j);
      const __m256i lo = _mm256_cvtepi32_epi64(_mm256_castsi256_si128(v));
      const __m256i hi =
          _mm256_cvtepi32_epi64(_mm256_extracti128_si256(v, 1));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(key + j),
                          _mm256_blendv_epi8(vnull, lo, Expand4Mask(cmp + j)));
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(key + j + 4),
          _mm256_blendv_epi8(vnull, hi, Expand4Mask(cmp + j + 4)));
    }
  } else {
    for (; j <= len - 4; j += 4) {
      const __m256i v = Load4Widened(col + j);
      const __m256i m = Expand4Mask(cmp + j);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(key + j),
                          _mm256_blendv_epi8(vnull, v, m));
    }
  }
  for (; j < len; ++j) {
    const int64_t m = -static_cast<int64_t>(cmp[j]);
    key[j] = (static_cast<int64_t>(col[j]) & m) | (null_key & ~m);
  }
}

/// movemask + LUT selection-vector construction: 32 lanes per movemask,
/// then an unconditional 8-wide position store per byte of the mask. The
/// over-store is safe because n <= j always holds (at most one index per
/// byte seen), so writes stay below idx[len].
SWOLE_TARGET_AVX2 inline int32_t SelVecFromCmp(const uint8_t* SWOLE_RESTRICT cmp,
                                               int64_t len,
                                               int32_t* SWOLE_RESTRICT idx) {
  const __m256i zero = _mm256_setzero_si256();
  int32_t n = 0;
  int64_t j = 0;
  for (; j <= len - 32; j += 32) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cmp + j));
    const uint32_t mask = ~static_cast<uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(x, zero)));
    for (int b = 0; b < 4; ++b) {
      const uint32_t byte = (mask >> (8 * b)) & 0xFFu;
      const __m256i pos = _mm256_load_si256(
          reinterpret_cast<const __m256i*>(detail::kSelPos.pos[byte]));
      const __m256i base =
          _mm256_set1_epi32(static_cast<int32_t>(j) + 8 * b);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(idx + n),
                          _mm256_add_epi32(pos, base));
      n += detail::kSelPos.cnt[byte];
    }
  }
  for (; j < len; ++j) {
    idx[n] = static_cast<int32_t>(j);
    n += cmp[j] != 0;
  }
  return n;
}

}  // namespace avx2

#endif  // SWOLE_SIMD_X86

// ---------------------------------------------------------------------------
// Dispatch: selected once at startup, overridable for A/B runs.
// ---------------------------------------------------------------------------

inline Backend DetectBackend() {
  Backend best = CpuHasAvx2() ? Backend::kAvx2 : Backend::kSwar;
  const char* env = std::getenv("SWOLE_SIMD");
  if (env == nullptr || *env == '\0') return best;
  Backend requested = best;
  if (std::strcmp(env, "scalar") == 0) {
    requested = Backend::kScalar;
  } else if (std::strcmp(env, "swar") == 0) {
    requested = Backend::kSwar;
  } else if (std::strcmp(env, "avx2") == 0) {
    requested = Backend::kAvx2;
  }
  // Clamp an unsupported request down to the best supported tier.
  return requested <= best ? requested : best;
}

namespace detail {
inline std::atomic<Backend>& BackendVar() {
  static std::atomic<Backend> v{DetectBackend()};
  return v;
}
}  // namespace detail

/// The backend every dispatched primitive routes to. Initialized on first
/// use from CPUID + the SWOLE_SIMD env override.
inline Backend ActiveBackend() {
  return detail::BackendVar().load(std::memory_order_relaxed);
}

/// Re-pins the backend (tests and benches). Unsupported tiers clamp down.
inline Backend SetBackend(Backend b) {
  if (b == Backend::kAvx2 && !CpuHasAvx2()) b = Backend::kSwar;
  detail::BackendVar().store(b, std::memory_order_relaxed);
  return b;
}

// ---- Dispatched entry points (the API kernels.h routes through) ----

template <typename T>
void CompareLit(CmpOp op, const T* col, int64_t lit, uint8_t* out,
                int64_t len) {
  switch (ActiveBackend()) {
#if SWOLE_SIMD_X86
    case Backend::kAvx2:
      return avx2::CompareLit<T>(op, col, lit, out, len);
#endif
    case Backend::kSwar:
      return swar::CompareLit<T>(op, col, lit, out, len);
    default:
      return scalar::CompareLit<T>(op, col, lit, out, len);
  }
}

template <typename T>
void CompareCol(CmpOp op, const T* lhs, const T* rhs, uint8_t* out,
                int64_t len) {
  switch (ActiveBackend()) {
#if SWOLE_SIMD_X86
    case Backend::kAvx2:
      return avx2::CompareCol<T>(op, lhs, rhs, out, len);
#endif
    case Backend::kSwar:
      return swar::CompareCol<T>(op, lhs, rhs, out, len);
    default:
      return scalar::CompareCol<T>(op, lhs, rhs, out, len);
  }
}

inline void AndBytes(uint8_t* out, const uint8_t* other, int64_t len) {
  switch (ActiveBackend()) {
#if SWOLE_SIMD_X86
    case Backend::kAvx2:
      return avx2::AndBytes(out, other, len);
#endif
    case Backend::kSwar:
      return swar::AndBytes(out, other, len);
    default:
      return scalar::AndBytes(out, other, len);
  }
}

inline void OrBytes(uint8_t* out, const uint8_t* other, int64_t len) {
  switch (ActiveBackend()) {
#if SWOLE_SIMD_X86
    case Backend::kAvx2:
      return avx2::OrBytes(out, other, len);
#endif
    case Backend::kSwar:
      return swar::OrBytes(out, other, len);
    default:
      return scalar::OrBytes(out, other, len);
  }
}

inline void NotBytes(uint8_t* out, int64_t len) {
  switch (ActiveBackend()) {
#if SWOLE_SIMD_X86
    case Backend::kAvx2:
      return avx2::NotBytes(out, len);
#endif
    case Backend::kSwar:
      return swar::NotBytes(out, len);
    default:
      return scalar::NotBytes(out, len);
  }
}

inline int64_t CountBytes(const uint8_t* cmp, int64_t len) {
  switch (ActiveBackend()) {
#if SWOLE_SIMD_X86
    case Backend::kAvx2:
      return avx2::CountBytes(cmp, len);
#endif
    case Backend::kSwar:
      return swar::CountBytes(cmp, len);
    default:
      return scalar::CountBytes(cmp, len);
  }
}

template <typename T>
int64_t SumMasked(const T* col, const uint8_t* cmp, int64_t len) {
  switch (ActiveBackend()) {
#if SWOLE_SIMD_X86
    case Backend::kAvx2:
      return avx2::SumMasked<T>(col, cmp, len);
#endif
    case Backend::kSwar:
      return swar::SumMasked<T>(col, cmp, len);
    default:
      return scalar::SumMasked<T>(col, cmp, len);
  }
}

template <typename TA, typename TB>
int64_t SumProductMasked(const TA* a, const TB* b, const uint8_t* cmp,
                         int64_t len) {
  switch (ActiveBackend()) {
#if SWOLE_SIMD_X86
    case Backend::kAvx2:
      return avx2::SumProductMasked<TA, TB>(a, b, cmp, len);
#endif
    default:
      return scalar::SumProductMasked<TA, TB>(a, b, cmp, len);
  }
}

template <typename T>
void MaskIntoTmp(const T* col, const uint8_t* cmp, int64_t len,
                 int64_t* tmp) {
  switch (ActiveBackend()) {
#if SWOLE_SIMD_X86
    case Backend::kAvx2:
      return avx2::MaskIntoTmp<T>(col, cmp, len, tmp);
#endif
    default:
      return scalar::MaskIntoTmp<T>(col, cmp, len, tmp);
  }
}

template <typename T>
void CompareLitMaskIntoTmp(CmpOp op, const T* col, int64_t lit, int64_t len,
                           int64_t* tmp) {
  switch (ActiveBackend()) {
#if SWOLE_SIMD_X86
    case Backend::kAvx2:
      return avx2::CompareLitMaskIntoTmp<T>(op, col, lit, len, tmp);
#endif
    default:
      return scalar::CompareLitMaskIntoTmp<T>(op, col, lit, len, tmp);
  }
}

template <typename T>
void MaskKeys(const T* col, const uint8_t* cmp, int64_t null_key, int64_t len,
              int64_t* key) {
  switch (ActiveBackend()) {
#if SWOLE_SIMD_X86
    case Backend::kAvx2:
      return avx2::MaskKeys<T>(col, cmp, null_key, len, key);
#endif
    default:
      return scalar::MaskKeys<T>(col, cmp, null_key, len, key);
  }
}

/// Unified selection-vector construction. `scalar_flavor` picks which of
/// the paper's scalar loop shapes represents the primitive when the scalar
/// backend is active (the no-branch data dependency vs. the ROF LUT); the
/// SWAR and AVX2 tiers use their word/movemask packing for both.
enum class SelFlavor : uint8_t { kNoBranch, kLut };

inline int32_t SelVecFromCmp(const uint8_t* cmp, int64_t len, int32_t* idx,
                             SelFlavor scalar_flavor) {
  switch (ActiveBackend()) {
#if SWOLE_SIMD_X86
    case Backend::kAvx2:
      return avx2::SelVecFromCmp(cmp, len, idx);
#endif
    case Backend::kSwar:
      return swar::SelVecFromCmp(cmp, len, idx);
    default:
      return scalar_flavor == SelFlavor::kLut
                 ? scalar::SelVecLut(cmp, len, idx)
                 : scalar::SelVecNoBranch(cmp, len, idx);
  }
}

}  // namespace swole::simd

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

#endif  // SWOLE_EXEC_SIMD_H_
