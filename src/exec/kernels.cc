#include "exec/kernels.h"

#include <array>

namespace swole::kernels {

namespace {
// Precomputed positions-per-mask table (Data Blocks [32] / ROF [5]): for an
// 8-bit match mask, entry m lists the bit positions set in m, in order.
struct LutEntry {
  uint8_t count;
  uint8_t positions[8];
};

constexpr std::array<LutEntry, 256> BuildLut() {
  std::array<LutEntry, 256> lut{};
  for (int m = 0; m < 256; ++m) {
    uint8_t n = 0;
    for (uint8_t b = 0; b < 8; ++b) {
      if (m & (1 << b)) lut[m].positions[n++] = b;
    }
    lut[m].count = n;
  }
  return lut;
}

constexpr std::array<LutEntry, 256> kLut = BuildLut();
}  // namespace

int32_t SelVecFromCmpLut(const uint8_t* cmp, int64_t len, int32_t* idx) {
  int32_t n = 0;
  int64_t j = 0;
  for (; j + 8 <= len; j += 8) {
    // Pack 8 cmp bytes into a bitmask (branch-free).
    unsigned mask = 0;
    for (int b = 0; b < 8; ++b) mask |= (cmp[j + b] & 1u) << b;
    const LutEntry& entry = kLut[mask];
    for (uint8_t k = 0; k < entry.count; ++k) {
      idx[n++] = static_cast<int32_t>(j) + entry.positions[k];
    }
  }
  for (; j < len; ++j) {
    idx[n] = static_cast<int32_t>(j);
    n += cmp[j] != 0;
  }
  return n;
}

}  // namespace swole::kernels
