#include "exec/kernels.h"

#include "exec/simd.h"

namespace swole::kernels {

int32_t SelVecFromCmpLut(const uint8_t* cmp, int64_t len, int32_t* idx) {
  // Under the scalar backend this is the Data Blocks [32] / ROF [5] LUT
  // construction; the SWAR and AVX2 tiers pack the match mask a word /
  // movemask at a time (exec/simd.h) with bit-identical output.
  return simd::SelVecFromCmp(cmp, len, idx, simd::SelFlavor::kLut);
}

}  // namespace swole::kernels
