#ifndef SWOLE_EXEC_HASH_TABLE_H_
#define SWOLE_EXEC_HASH_TABLE_H_

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/bit_util.h"
#include "common/logging.h"
#include "common/macros.h"
#include "common/query_abort.h"

// Open-addressing, linear-probing hash table with int64 keys and a
// fixed-width int64 payload per key. This single structure backs group-by
// aggregation, hash joins, semijoins (payload width 0), groupjoins, and the
// eager-aggregation rewrite (which needs deletion, §III-E). It is the
// shared "library code (e.g., hash table implementations)" of the paper's
// evaluation — every strategy uses this same table.
//
// Key-masking support (§III-B): `kMaskKey` is an ordinary insertable key
// reserved as the throwaway entry. Because it hashes to a fixed slot that
// is touched for every masked tuple, it stays cache-resident — which is
// exactly the property the technique relies on.

namespace swole {

class HashTable {
 public:
  /// Throwaway key used by key masking. Never produced by data generators.
  static constexpr int64_t kMaskKey = INT64_MIN + 2;

  /// `payload_width` int64 slots per key (0 for set-membership tables).
  explicit HashTable(int payload_width, int64_t expected_keys = 16)
      : payload_width_(payload_width) {
    SWOLE_CHECK_GE(payload_width, 0);
    int64_t capacity = bit_util::NextPowerOfTwo(
        std::max<int64_t>(16, expected_keys * 10 / 7 + 1));
    Rehash(capacity);
  }

  HashTable(const HashTable&) = delete;
  HashTable& operator=(const HashTable&) = delete;

  // Custom moves: the memory-hook registration and the charged byte count
  // transfer with the buffers, so the source releases nothing and the
  // destination releases exactly once.
  HashTable(HashTable&& other) noexcept
      : payload_width_(other.payload_width_),
        capacity_(other.capacity_),
        mask_(other.mask_),
        size_(other.size_),
        tombstones_(other.tombstones_),
        keys_(std::move(other.keys_)),
        payload_(std::move(other.payload_)),
        mem_hook_(other.mem_hook_),
        mem_ctx_(other.mem_ctx_),
        mem_site_(other.mem_site_),
        tracked_bytes_(other.tracked_bytes_) {
    other.DropHook();
  }
  HashTable& operator=(HashTable&& other) noexcept {
    if (this != &other) {
      ReleaseTracked();
      payload_width_ = other.payload_width_;
      capacity_ = other.capacity_;
      mask_ = other.mask_;
      size_ = other.size_;
      tombstones_ = other.tombstones_;
      keys_ = std::move(other.keys_);
      payload_ = std::move(other.payload_);
      mem_hook_ = other.mem_hook_;
      mem_ctx_ = other.mem_ctx_;
      mem_site_ = other.mem_site_;
      tracked_bytes_ = other.tracked_bytes_;
      other.DropHook();
    }
    return *this;
  }

  ~HashTable() { ReleaseTracked(); }

  /// Registers the query-lifecycle memory hook (exec/query_context.h):
  /// growth charges the tracker *before* allocating and throws QueryAbort
  /// when refused; destruction releases the charge. `site` must be a
  /// string with static storage duration (the operator attribution name).
  /// The current footprint is charged on attachment, so a table that is
  /// already over budget fails here rather than at its next growth.
  void SetMemHook(MemHookFn hook, void* ctx, const char* site) {
    ReleaseTracked();
    mem_hook_ = hook;
    mem_ctx_ = ctx;
    mem_site_ = site;
    if (mem_hook_ != nullptr) ChargeDelta(ByteSize());
  }

  int payload_width() const { return payload_width_; }
  int64_t size() const { return size_; }
  int64_t capacity() const { return capacity_; }
  int64_t ByteSize() const {
    return static_cast<int64_t>(keys_.size()) * 8 +
           static_cast<int64_t>(payload_.size()) * 8;
  }

  /// Payload for `key`, inserting a zero-initialized entry if absent.
  /// The pointer is invalidated by the next insertion. With width 0 the
  /// returned pointer is non-null but must not be dereferenced.
  ///
  /// Growth happens on the actual-insert path only: a lookup of a present
  /// key never rehashes, and an insert that reuses a tombstone does not
  /// raise occupancy, so neither triggers growth.
  SWOLE_ALWAYS_INLINE int64_t* GetOrInsert(int64_t key) {
    SWOLE_DCHECK(key != kEmpty && key != kTombstone);
    while (true) {
      uint64_t slot = Hash(key) & mask_;
      int64_t first_tombstone = -1;
      while (true) {
        int64_t k = keys_[slot];
        if (k == key) return PayloadAt(slot);
        if (k == kEmpty) {
          if (first_tombstone >= 0) {
            slot = static_cast<uint64_t>(first_tombstone);
            --tombstones_;
          } else if (SWOLE_UNLIKELY((size_ + tombstones_ + 1) * 10 >=
                                    capacity_ * 7)) {
            Rehash(capacity_ * 2);
            break;  // re-probe against the grown table
          }
          keys_[slot] = key;
          ++size_;
          return PayloadAt(slot);
        }
        if (k == kTombstone && first_tombstone < 0) {
          first_tombstone = static_cast<int64_t>(slot);
        }
        slot = (slot + 1) & mask_;
      }
    }
  }

  /// Grows (if needed) so that `additional` inserts cannot trigger a rehash
  /// — i.e. payload pointers handed out during the next `additional`
  /// GetOrInsert calls stay valid for the whole batch.
  void ReserveFor(int64_t additional) {
    int64_t needed = size_ + tombstones_ + additional;
    int64_t cap = capacity_;
    while (needed * 10 >= cap * 7) cap *= 2;
    if (cap != capacity_) Rehash(cap);
  }

  /// Payload for `key`, or nullptr if absent.
  SWOLE_ALWAYS_INLINE int64_t* Find(int64_t key) {
    uint64_t slot = Hash(key) & mask_;
    while (true) {
      int64_t k = keys_[slot];
      if (k == key) return PayloadAt(slot);
      if (k == kEmpty) return nullptr;
      slot = (slot + 1) & mask_;
    }
  }

  SWOLE_ALWAYS_INLINE const int64_t* Find(int64_t key) const {
    return const_cast<HashTable*>(this)->Find(key);
  }

  SWOLE_ALWAYS_INLINE bool Contains(int64_t key) const {
    return Find(key) != nullptr;
  }

  /// Removes `key` (tombstone). Returns true if it was present. Used by the
  /// eager-aggregation rewrite's deletion scan (§III-E).
  bool Erase(int64_t key) {
    uint64_t slot = Hash(key) & mask_;
    while (true) {
      int64_t k = keys_[slot];
      if (k == key) {
        keys_[slot] = kTombstone;
        if (payload_width_ > 0) {
          std::memset(&payload_[slot * payload_width_], 0,
                      payload_width_ * sizeof(int64_t));
        }
        --size_;
        ++tombstones_;
        return true;
      }
      if (k == kEmpty) return false;
      slot = (slot + 1) & mask_;
    }
  }

  /// Prefetches the home slot of `key` (ROF's explicit prefetching).
  SWOLE_ALWAYS_INLINE void PrefetchSlot(int64_t key) const {
    uint64_t slot = Hash(key) & mask_;
    __builtin_prefetch(&keys_[slot], 0, 1);
    if (payload_width_ > 0) {
      __builtin_prefetch(&payload_[slot * payload_width_], 1, 1);
    }
  }

  /// Probe distance of the software-pipelined batch loops below (ROF
  /// §II-A.3): the home slot of key k+kProbeLookahead is prefetched while
  /// key k is probed, overlapping the cache misses of up to that many
  /// independent probes.
  static constexpr int32_t kProbeLookahead = 8;

  /// Batched Find: out[k] = payload pointer for keys[k], or nullptr.
  /// With `prefetch`, probes are software-pipelined.
  void FindBatch(const int64_t* SWOLE_RESTRICT keys, int32_t n,
                 int64_t** SWOLE_RESTRICT out, bool prefetch) {
    int32_t k = 0;
    if (prefetch) {
      const int32_t head = std::min(n, kProbeLookahead);
      for (; k < head; ++k) PrefetchSlot(keys[k]);
      for (k = 0; k + kProbeLookahead < n; ++k) {
        PrefetchSlot(keys[k + kProbeLookahead]);
        out[k] = Find(keys[k]);
      }
    }
    for (; k < n; ++k) out[k] = Find(keys[k]);
  }

  /// Batched membership probe: out[k] = keys[k] present ? 1 : 0 (a cmp
  /// byte array, composable with the mask kernels).
  void ContainsBatch(const int64_t* SWOLE_RESTRICT keys, int32_t n,
                     uint8_t* SWOLE_RESTRICT out, bool prefetch) const {
    int32_t k = 0;
    if (prefetch) {
      const int32_t head = std::min(n, kProbeLookahead);
      for (; k < head; ++k) PrefetchSlot(keys[k]);
      for (k = 0; k + kProbeLookahead < n; ++k) {
        PrefetchSlot(keys[k + kProbeLookahead]);
        out[k] = Contains(keys[k]) ? 1 : 0;
      }
    }
    for (; k < n; ++k) out[k] = Contains(keys[k]) ? 1 : 0;
  }

  /// Batched GetOrInsert. Capacity is reserved up front, so — unlike
  /// repeated GetOrInsert calls — every out[k] stays valid for the whole
  /// batch.
  void GetOrInsertBatch(const int64_t* SWOLE_RESTRICT keys, int32_t n,
                        int64_t** SWOLE_RESTRICT out, bool prefetch) {
    ReserveFor(n);
    int32_t k = 0;
    if (prefetch) {
      const int32_t head = std::min(n, kProbeLookahead);
      for (; k < head; ++k) PrefetchSlot(keys[k]);
      for (k = 0; k + kProbeLookahead < n; ++k) {
        PrefetchSlot(keys[k + kProbeLookahead]);
        out[k] = GetOrInsert(keys[k]);
      }
    }
    for (; k < n; ++k) out[k] = GetOrInsert(keys[k]);
  }

  /// Batched set insert (width-0 tables / key-set builds): like
  /// GetOrInsertBatch but without materializing payload pointers.
  void InsertBatch(const int64_t* SWOLE_RESTRICT keys, int32_t n,
                   bool prefetch) {
    ReserveFor(n);
    int32_t k = 0;
    if (prefetch) {
      const int32_t head = std::min(n, kProbeLookahead);
      for (; k < head; ++k) PrefetchSlot(keys[k]);
      for (k = 0; k + kProbeLookahead < n; ++k) {
        PrefetchSlot(keys[k + kProbeLookahead]);
        GetOrInsert(keys[k]);
      }
    }
    for (; k < n; ++k) GetOrInsert(keys[k]);
  }

  /// Adds every entry of `other` into this table element-wise: absent keys
  /// are inserted, payload slots are summed. This is the merge step of the
  /// parallel partitioned build and of per-thread group states — additive
  /// because every aggregation payload in this codebase is a plain int64
  /// running sum/count (min/max live in scalar accumulators, merged by
  /// kind). Width-0 tables merge as a set union.
  void MergeAdd(const HashTable& other) {
    SWOLE_CHECK_EQ(payload_width_, other.payload_width_);
    other.ForEach([&](int64_t key, const int64_t* src) {
      int64_t* dst = GetOrInsert(key);
      for (int w = 0; w < payload_width_; ++w) dst[w] += src[w];
    });
  }

  /// Visits every live entry: fn(key, payload pointer).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (int64_t slot = 0; slot < capacity_; ++slot) {
      int64_t k = keys_[slot];
      if (k != kEmpty && k != kTombstone) {
        fn(k, payload_width_ > 0 ? &payload_[slot * payload_width_] : nullptr);
      }
    }
  }

  static uint64_t Hash(int64_t key) {
    // Fibonacci-multiply + xor-shift finalizer; cheap and well-spread for
    // the dense integer keys used everywhere in this workload.
    uint64_t x = static_cast<uint64_t>(key) * 0x9E3779B97F4A7C15ULL;
    return x ^ (x >> 32);
  }

 private:
  static constexpr int64_t kEmpty = INT64_MIN;
  static constexpr int64_t kTombstone = INT64_MIN + 1;

  SWOLE_ALWAYS_INLINE int64_t* PayloadAt(uint64_t slot) {
    // Width-0 tables still return a stable non-null sentinel address.
    return payload_width_ > 0 ? &payload_[slot * payload_width_]
                              : sentinel_;
  }

  // Asks the memory hook for `delta` more bytes (releases when negative).
  // Throws QueryAbort on refusal *before* anything is allocated, leaving
  // the table fully usable at its current size.
  void ChargeDelta(int64_t delta) {
    if (mem_hook_ == nullptr || delta == 0) return;
    int rc = mem_hook_(mem_ctx_, delta, mem_site_);
    if (SWOLE_UNLIKELY(delta > 0 && rc != 0)) {
      throw QueryAbort(static_cast<AbortReason>(rc), mem_site_, delta);
    }
    tracked_bytes_ += delta;
  }

  void ReleaseTracked() noexcept {
    if (mem_hook_ != nullptr && tracked_bytes_ > 0) {
      mem_hook_(mem_ctx_, -tracked_bytes_, mem_site_);
    }
    tracked_bytes_ = 0;
  }

  void DropHook() noexcept {
    mem_hook_ = nullptr;
    mem_ctx_ = nullptr;
    tracked_bytes_ = 0;
  }

  void Rehash(int64_t new_capacity) {
    SWOLE_CHECK(bit_util::IsPowerOfTwo(static_cast<uint64_t>(new_capacity)));
    // Charge the new buffers before allocating them. Both generations are
    // live during the re-insert scan, so the tracker sees the true peak;
    // the old generation's bytes are released once it is freed below.
    const int64_t new_bytes = new_capacity * 8 * (1 + payload_width_);
    ChargeDelta(new_bytes);
    std::vector<int64_t> old_keys = std::move(keys_);
    std::vector<int64_t> old_payload = std::move(payload_);
    int64_t old_capacity = capacity_;
    const int64_t old_bytes =
        static_cast<int64_t>(old_keys.size() + old_payload.size()) * 8;

    capacity_ = new_capacity;
    mask_ = static_cast<uint64_t>(new_capacity - 1);
    keys_.assign(new_capacity, kEmpty);
    payload_.assign(static_cast<size_t>(new_capacity) * payload_width_, 0);
    size_ = 0;
    tombstones_ = 0;

    for (int64_t slot = 0; slot < old_capacity; ++slot) {
      int64_t k = old_keys[slot];
      if (k == kEmpty || k == kTombstone) continue;
      int64_t* dst = GetOrInsert(k);
      if (payload_width_ > 0) {
        std::memcpy(dst, &old_payload[slot * payload_width_],
                    payload_width_ * sizeof(int64_t));
      }
    }

    old_keys = std::vector<int64_t>();
    old_payload = std::vector<int64_t>();
    ChargeDelta(-old_bytes);
  }

  int payload_width_;
  int64_t capacity_ = 0;
  uint64_t mask_ = 0;
  int64_t size_ = 0;
  int64_t tombstones_ = 0;
  std::vector<int64_t> keys_;
  std::vector<int64_t> payload_;
  int64_t sentinel_[1] = {0};

  // Query-lifecycle memory accounting (see SetMemHook).
  MemHookFn mem_hook_ = nullptr;
  void* mem_ctx_ = nullptr;
  const char* mem_site_ = "";
  int64_t tracked_bytes_ = 0;
};

}  // namespace swole

#endif  // SWOLE_EXEC_HASH_TABLE_H_
