#ifndef SWOLE_EXEC_SPILL_H_
#define SWOLE_EXEC_SPILL_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/scratch_dir.h"
#include "common/status.h"
#include "exec/hash_table.h"

// Grace-style partitioned spill for group-by aggregation (DESIGN.md §14).
//
// When a QueryContext refuses a group-table growth charge and spill is
// enabled (SWOLE_SPILL=auto), the accumulated groups are partitioned by the
// top radix digits of HashTable::Hash(key) into append-only runs on disk
// and the in-memory table restarts empty. Because every grouped payload is
// additive (hash_table.h MergeAdd), a group's final value is the sum of its
// spilled fragments plus its in-memory remainder — independent of when
// spills happened or which worker wrote which fragment. The merge phase
// rebuilds one partition at a time under the same budget (site
// "spill_merge"), recursively repartitioning any partition that still does
// not fit (bounded depth, then a structured kSpillFailed), so the
// degradation ladder is: in-memory → spill → repartition → structured
// abort. Results stay bit-identical to the in-memory path at every thread
// count: partitions hold disjoint key sets, and the caller sorts the final
// group list exactly as the in-memory extract does.
//
// On-disk format: each run file starts with a 16-byte header {magic
// "SWSPILL1", payload_width:int32, reserved:int32}, followed by
// self-contained blocks {xxh64 checksum of the row bytes : uint64,
// num_rows:uint32, row_width:uint32, rows...}. A row is (key, payload[
// payload_width]) as int64s. Checksums are verified on read-back; a
// mismatch is a structured IOError, never a crash. All I/O goes through
// deterministic fault sites (spill_create / spill_write / spill_flush /
// spill_read / spill_unlink / spill_enospc / spill_checksum), and every
// file lives in a ScratchDir so abort/cancel/deadline paths never strand
// temp files.

namespace swole::exec {

class QueryContext;

struct SpillConfig {
  // SWOLE_SPILL: "off" (default) or "auto". Engines may also force it via
  // StrategyOptions::spill.
  bool enabled = false;
  // Base directory for spill scratch dirs: SWOLE_SPILL_DIR > TMPDIR > /tmp
  // (ScratchDir::ResolveBase policy, including the exec-unsafe refusal).
  std::string dir;
  // Fan-out per level; SWOLE_SPILL_PARTITIONS, rounded up to a power of
  // two and clamped to [2, 256].
  int num_partitions = 16;
  // Maximum repartition depth before a structured kSpillFailed;
  // SWOLE_SPILL_DEPTH, clamped to [1, 8].
  int max_depth = 4;

  static SpillConfig FromEnv();
};

/// Combines two partial payloads for the same key during partition
/// rebuild. Engines pass element-wise addition; the reference oracle
/// merges by aggregate kind (min/max/sum).
using SpillMergeFn = std::function<void(int64_t* dst, const int64_t* src)>;

/// One query's spill state: shared by every worker-local group table of
/// that query. Thread-safe appends (per-partition locks, self-contained
/// blocks); the merge phase is driven per-partition, typically as morsels
/// on the shared scheduler pool.
class SpillManager {
 public:
  /// `payload_width` is the per-key int64 payload width of spilled rows
  /// (group tables: 1 + num_aggs). `ctx` provides the budget the merge
  /// phase charges against; may be null (merge then runs unbudgeted).
  SpillManager(SpillConfig config, int payload_width, QueryContext* ctx);
  ~SpillManager();

  SpillManager(const SpillManager&) = delete;
  SpillManager& operator=(const SpillManager&) = delete;

  /// Appends every live entry of `table` except `skip_key` (the key-masking
  /// throwaway) to the depth-0 partition runs. Thread-safe.
  Status SpillTable(const HashTable& table, int64_t skip_key);

  /// Appends one row. Thread-safe. (Reference-engine shards spill from
  /// std::map state, not a HashTable.)
  Status SpillRow(int64_t key, const int64_t* payload);

  /// Counts one spill event for callers that spill row-by-row (SpillRow
  /// does not bump the event counter itself).
  void NoteSpillEvent();

  /// Flushes and closes every partition writer. Call once, after the last
  /// spill and before the first MergePartition.
  Status Flush();

  /// Rebuilds partition `index` (0 .. num_partitions-1) and appends its
  /// merged rows — (key, payload[payload_width]) int64 tuples — to
  /// `out_rows`. Keys are unique within a partition and disjoint across
  /// partitions, so partitions may be merged concurrently; deterministic
  /// output only requires the caller to concatenate in ascending partition
  /// order or sort, exactly as the in-memory extract already does. Budget
  /// refusals at "spill_merge" trigger recursive repartitioning; past
  /// config.max_depth the partition fails with kSpillFailed. Deadline and
  /// cancellation aborts propagate as QueryAbort (the scheduler converts
  /// them to structured Statuses).
  Status MergePartition(int index, const SpillMergeFn& merge_fn,
                        std::vector<int64_t>* out_rows);

  bool spilled() const {
    return spill_events_.load(std::memory_order_acquire) > 0;
  }
  int64_t spill_events() const {
    return spill_events_.load(std::memory_order_acquire);
  }
  int64_t bytes_written() const {
    return bytes_written_.load(std::memory_order_acquire);
  }
  int64_t rows_spilled() const {
    return rows_spilled_.load(std::memory_order_acquire);
  }
  /// Deepest repartition level reached during merge (0 = no repartition).
  int max_depth_reached() const {
    return max_depth_reached_.load(std::memory_order_acquire);
  }
  int num_partitions() const { return config_.num_partitions; }
  int payload_width() const { return payload_width_; }

 private:
  struct PartitionWriter {
    std::mutex mu;
    std::string path;
    std::FILE* file = nullptr;
    std::vector<int64_t> buffer;  // pending rows, row-major
    std::string failed_error;     // first I/O error wins; appends stop
  };

  // log2(num_partitions); the radix digit at depth d is
  // (Hash(key) >> (64 - bits*(d+1))) & (num_partitions-1).
  int RadixDigit(int64_t key, int depth) const;

  Status EnsureScratchDir();
  Status AppendRow(PartitionWriter& writer, int64_t key,
                   const int64_t* payload);
  Status FlushBlock(PartitionWriter& writer);  // writer.mu held
  Status CloseWriter(PartitionWriter& writer);

  // Recursive merge of one run file. Emits merged rows into out_rows.
  Status MergeRun(const std::string& path, int depth,
                  const SpillMergeFn& merge_fn,
                  std::vector<int64_t>* out_rows);
  // One rebuild attempt of `path` under the budget. On a budget refusal
  // sets *over_budget and returns OK without emitting; the run file is
  // only removed on a successful rebuild.
  Status RebuildRun(const std::string& path, const SpillMergeFn& merge_fn,
                    std::vector<int64_t>* out_rows, bool* over_budget);
  // Streams `path` into num_partitions child runs at depth+1.
  Status Repartition(const std::string& path, int depth,
                     std::vector<std::string>* child_paths);

  // Reads every block of `path`, verifying checksums, and calls
  // row_fn(key, payload) per row. Missing file = empty run (OK).
  Status ReadRun(const std::string& path,
                 const std::function<Status(int64_t, const int64_t*)>& row_fn);

  Status RemoveRun(const std::string& path);

  SpillConfig config_;
  int payload_width_;
  int radix_bits_;
  QueryContext* ctx_;

  // Serializes last-resort merges at repartition-depth exhaustion: a
  // partition that fits the budget on its own must not fail just because
  // sibling merges transiently held the budget on the way down.
  std::mutex solo_merge_mu_;

  std::mutex dir_mu_;
  ScratchDir scratch_;
  std::vector<std::unique_ptr<PartitionWriter>> writers_;

  std::atomic<int64_t> spill_events_{0};
  std::atomic<int64_t> bytes_written_{0};
  std::atomic<int64_t> rows_spilled_{0};
  std::atomic<int> max_depth_reached_{0};
};

}  // namespace swole::exec

#endif  // SWOLE_EXEC_SPILL_H_
