#ifndef SWOLE_EXEC_KERNELS_H_
#define SWOLE_EXEC_KERNELS_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <type_traits>

#include <string_view>

#include "common/macros.h"
#include "exec/simd.h"
#include "exec/simd_string.h"

// The shared primitive kernels ("library code" in the paper's terms, §IV:
// all strategies are built from the same library code so the comparison
// isolates the code generation strategy itself). Header-only templates so
// that both the strategy engines and the JIT-generated translation units
// instantiate them with concrete column types. The hot branch-free
// primitives route through the runtime-dispatched backends in exec/simd.h
// (scalar / SWAR / AVX2, selected once at startup, `SWOLE_SIMD` override);
// the deliberately *branching* kernels below stay scalar because branching
// is the behavior they exist to measure (data-centric strategy, Fig. 8).
//
// Conventions:
//  * All kernels operate on one tile: `col` pointers are pre-offset to the
//    tile start, `len` <= TILE, selection vectors hold tile-local indices.
//  * Comparison results are byte arrays of 0/1 ("cmp" in the paper's
//    pseudocode, Fig. 1).
//  * Aggregates accumulate in int64 (the paper stores all aggregates as
//    64-bit integers instead of overflow checking).

namespace swole::kernels {

/// Default vector/tile size (paper §IV: 1024, as suggested by [5], [27]).
inline constexpr int64_t kDefaultTileSize = 1024;

using CmpOp = simd::CmpOp;

namespace internal {
using simd::detail::Cmp;
}  // namespace internal

// ---- SWOLE_WIDEN escape hatch (legacy widening execution) ----
//
// When enabled, every simd-routed primitive below first inflates its narrow
// operands into thread-local int64 scratch tiles and then runs the int64
// kernels — the pre-native-width behavior, kept as a correctness oracle and
// an A/B baseline for the benches. Per-element widening is exact and int64
// arithmetic wraps mod 2^64 identically on both paths, so results stay
// bit-identical to native-width execution. The flag lives here (not in a
// .cc) because JIT-generated translation units include only this header and
// link nothing but logging: each dlopened kernel image gets its own copy,
// synced from the host through the KernelIO.widen field at build time.

namespace widen_detail {

inline constexpr int64_t kScratchLen = 1024;

struct Scratch {
  int64_t a[kScratchLen];
  int64_t b[kScratchLen];
};

inline Scratch& TlsScratch() {
  thread_local Scratch s;
  return s;
}

inline bool InitFromEnv() {
  const char* v = std::getenv("SWOLE_WIDEN");
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

inline std::atomic<bool>& Flag() {
  static std::atomic<bool> flag{InitFromEnv()};
  return flag;
}

}  // namespace widen_detail

/// True when the legacy widening path is forced (SWOLE_WIDEN=1 or
/// SetWidenMode(true)).
inline bool WidenEnabled() {
  return widen_detail::Flag().load(std::memory_order_relaxed);
}

/// Flips the widening escape hatch at runtime (tests, benches, and the
/// JIT build entry syncing a kernel image with the host).
inline void SetWidenMode(bool on) {
  widen_detail::Flag().store(on, std::memory_order_relaxed);
}

/// Prepass comparison against a literal: out[j] = col[j] OP lit (0/1).
/// Branch-free; this is the SIMD-friendly "prepass" loop of the hybrid
/// strategy (Fig. 1 middle).
template <typename T>
void CompareLit(CmpOp op, const T* col, int64_t lit, uint8_t* out,
                int64_t len) {
  if constexpr (!std::is_same_v<T, int64_t>) {
    if (SWOLE_UNLIKELY(WidenEnabled())) {
      auto& s = widen_detail::TlsScratch();
      for (int64_t base = 0; base < len; base += widen_detail::kScratchLen) {
        const int64_t n = std::min(widen_detail::kScratchLen, len - base);
        for (int64_t i = 0; i < n; ++i) {
          s.a[i] = static_cast<int64_t>(col[base + i]);
        }
        simd::CompareLit<int64_t>(op, s.a, lit, out + base, n);
      }
      return;
    }
  }
  simd::CompareLit<T>(op, col, lit, out, len);
}

/// Prepass column-vs-column comparison (same physical type).
template <typename T>
void CompareCol(CmpOp op, const T* lhs, const T* rhs, uint8_t* out,
                int64_t len) {
  if constexpr (!std::is_same_v<T, int64_t>) {
    if (SWOLE_UNLIKELY(WidenEnabled())) {
      auto& s = widen_detail::TlsScratch();
      for (int64_t base = 0; base < len; base += widen_detail::kScratchLen) {
        const int64_t n = std::min(widen_detail::kScratchLen, len - base);
        for (int64_t i = 0; i < n; ++i) {
          s.a[i] = static_cast<int64_t>(lhs[base + i]);
          s.b[i] = static_cast<int64_t>(rhs[base + i]);
        }
        simd::CompareCol<int64_t>(op, s.a, s.b, out + base, n);
      }
      return;
    }
  }
  simd::CompareCol<T>(op, lhs, rhs, out, len);
}

/// out[j] &= other[j] — conjunction of prepass results.
inline void AndBytes(uint8_t* out, const uint8_t* other, int64_t len) {
  simd::AndBytes(out, other, len);
}

/// out[j] |= other[j].
inline void OrBytes(uint8_t* out, const uint8_t* other, int64_t len) {
  simd::OrBytes(out, other, len);
}

/// out[j] = 1 - out[j] (logical NOT of a 0/1 byte array).
inline void NotBytes(uint8_t* out, int64_t len) { simd::NotBytes(out, len); }

/// Dictionary-code predicate: out[j] = mask[col[j]] (e.g. LIKE evaluated
/// once per dictionary entry, then a positional mask lookup per tuple).
template <typename T>
void LookupMask(const T* SWOLE_RESTRICT col,
                const uint8_t* SWOLE_RESTRICT mask,
                uint8_t* SWOLE_RESTRICT out, int64_t len) {
  for (int64_t j = 0; j < len; ++j) out[j] = mask[col[j]];
}

// ---- Selection vectors (predicate pushdown machinery) ----

/// Branching construction: `if (cmp[j]) idx[n++] = j`. This is the
/// data-centric flavor — CPU branch mispredictions at intermediate
/// selectivities produce the hump of Fig. 8 [31].
inline int32_t SelVecFromCmpBranch(const uint8_t* SWOLE_RESTRICT cmp,
                                   int64_t len,
                                   int32_t* SWOLE_RESTRICT idx) {
  int32_t n = 0;
  for (int64_t j = 0; j < len; ++j) {
    if (cmp[j]) idx[n++] = static_cast<int32_t>(j);
  }
  return n;
}

/// No-branch (predicated) construction: `idx[n] = j; n += cmp[j]`.
/// Replaces the control dependency with a data dependency [31]. Under the
/// SWAR/AVX2 backends this and SelVecFromCmpLut unify into the packed
/// movemask+LUT construction (bit-identical output).
inline int32_t SelVecFromCmpNoBranch(const uint8_t* cmp, int64_t len,
                                     int32_t* idx) {
  return simd::SelVecFromCmp(cmp, len, idx, simd::SelFlavor::kNoBranch);
}

/// Data Blocks-style [32] lookup-table construction used by ROF: packs 8
/// cmp bytes into a bitmask and appends the precomputed position list for
/// that mask. Branch-free over the match pattern.
int32_t SelVecFromCmpLut(const uint8_t* cmp, int64_t len, int32_t* idx);

/// Branching single-comparison selection directly from a column (fused
/// filter of the data-centric strategy): `if (col[j] OP lit) idx[n++] = j`.
template <typename T>
int32_t SelectLitBranch(CmpOp op, const T* col, int64_t lit, int32_t* idx,
                        int64_t len) {
  int32_t n = 0;
  switch (op) {
#define SWOLE_CASE(OP)                                                    \
  case CmpOp::OP:                                                         \
    for (int64_t j = 0; j < len; ++j) {                                   \
      if (internal::Cmp<CmpOp::OP>(static_cast<int64_t>(col[j]), lit)) {  \
        idx[n++] = static_cast<int32_t>(j);                               \
      }                                                                   \
    }                                                                     \
    break;
    SWOLE_CASE(kLt)
    SWOLE_CASE(kLe)
    SWOLE_CASE(kGt)
    SWOLE_CASE(kGe)
    SWOLE_CASE(kEq)
    SWOLE_CASE(kNe)
#undef SWOLE_CASE
  }
  return n;
}

/// Branching refinement of an existing selection vector.
template <typename T>
int32_t RefineLitBranch(CmpOp op, const T* col, int64_t lit,
                        const int32_t* idx_in, int32_t n_in,
                        int32_t* idx_out) {
  int32_t n = 0;
  switch (op) {
#define SWOLE_CASE(OP)                                                       \
  case CmpOp::OP:                                                            \
    for (int32_t k = 0; k < n_in; ++k) {                                     \
      if (internal::Cmp<CmpOp::OP>(static_cast<int64_t>(col[idx_in[k]]),     \
                                   lit)) {                                   \
        idx_out[n++] = idx_in[k];                                            \
      }                                                                      \
    }                                                                        \
    break;
    SWOLE_CASE(kLt)
    SWOLE_CASE(kLe)
    SWOLE_CASE(kGt)
    SWOLE_CASE(kGe)
    SWOLE_CASE(kEq)
    SWOLE_CASE(kNe)
#undef SWOLE_CASE
  }
  return n;
}

/// Branching refinement by a byte mask (for predicates that are not simple
/// literal comparisons, e.g. dictionary LIKE masks).
inline int32_t RefineMaskBranch(const uint8_t* SWOLE_RESTRICT cmp,
                                const int32_t* SWOLE_RESTRICT idx_in,
                                int32_t n_in, int32_t* SWOLE_RESTRICT idx_out) {
  int32_t n = 0;
  for (int32_t k = 0; k < n_in; ++k) {
    if (cmp[idx_in[k]]) idx_out[n++] = idx_in[k];
  }
  return n;
}

// ---- Gathers (conditional reads through a selection vector) ----

/// out[k] = col[idx[k]], widened to int64. The `read_cond` access pattern.
template <typename T>
void Gather(const T* SWOLE_RESTRICT col, const int32_t* SWOLE_RESTRICT idx,
            int32_t n, int64_t* SWOLE_RESTRICT out) {
  for (int32_t k = 0; k < n; ++k) out[k] = static_cast<int64_t>(col[idx[k]]);
}

/// Sequential widening load: out[j] = col[j]. The `read_seq` pattern.
template <typename T>
void Widen(const T* SWOLE_RESTRICT col, int64_t len,
           int64_t* SWOLE_RESTRICT out) {
  for (int64_t j = 0; j < len; ++j) out[j] = static_cast<int64_t>(col[j]);
}

// ---- Aggregation kernels ----

/// sum over a selection vector: sum_k col[idx[k]].
template <typename T>
int64_t SumSel(const T* SWOLE_RESTRICT col, const int32_t* SWOLE_RESTRICT idx,
               int32_t n) {
  int64_t sum = 0;
  for (int32_t k = 0; k < n; ++k) sum += static_cast<int64_t>(col[idx[k]]);
  return sum;
}

/// sum_k a[idx[k]] * b[idx[k]].
template <typename TA, typename TB>
int64_t SumProductSel(const TA* SWOLE_RESTRICT a, const TB* SWOLE_RESTRICT b,
                      const int32_t* SWOLE_RESTRICT idx, int32_t n) {
  int64_t sum = 0;
  for (int32_t k = 0; k < n; ++k) {
    sum += static_cast<int64_t>(a[idx[k]]) * static_cast<int64_t>(b[idx[k]]);
  }
  return sum;
}

/// sum_k a[idx[k]] / b[idx[k]] (integer division; b must be nonzero at
/// selected positions).
template <typename TA, typename TB>
int64_t SumQuotientSel(const TA* SWOLE_RESTRICT a, const TB* SWOLE_RESTRICT b,
                       const int32_t* SWOLE_RESTRICT idx, int32_t n) {
  int64_t sum = 0;
  for (int32_t k = 0; k < n; ++k) {
    sum += static_cast<int64_t>(a[idx[k]]) / static_cast<int64_t>(b[idx[k]]);
  }
  return sum;
}

/// Value masking (§III-A): sum_j col[j] * cmp[j]. Sequential access of
/// `col`; wasted work on masked lanes, no conditional reads.
template <typename T>
int64_t SumMasked(const T* col, const uint8_t* cmp, int64_t len) {
  if constexpr (!std::is_same_v<T, int64_t>) {
    if (SWOLE_UNLIKELY(WidenEnabled())) {
      auto& s = widen_detail::TlsScratch();
      int64_t sum = 0;
      for (int64_t base = 0; base < len; base += widen_detail::kScratchLen) {
        const int64_t n = std::min(widen_detail::kScratchLen, len - base);
        for (int64_t i = 0; i < n; ++i) {
          s.a[i] = static_cast<int64_t>(col[base + i]);
        }
        sum += simd::SumMasked<int64_t>(s.a, cmp + base, n);
      }
      return sum;
    }
  }
  return simd::SumMasked<T>(col, cmp, len);
}

/// Value masking of a product (Fig. 3): sum_j (a[j]*b[j]) * cmp[j].
template <typename TA, typename TB>
int64_t SumProductMasked(const TA* a, const TB* b, const uint8_t* cmp,
                         int64_t len) {
  if constexpr (!(std::is_same_v<TA, int64_t> &&
                  std::is_same_v<TB, int64_t>)) {
    if (SWOLE_UNLIKELY(WidenEnabled())) {
      auto& s = widen_detail::TlsScratch();
      int64_t sum = 0;
      for (int64_t base = 0; base < len; base += widen_detail::kScratchLen) {
        const int64_t n = std::min(widen_detail::kScratchLen, len - base);
        for (int64_t i = 0; i < n; ++i) {
          s.a[i] = static_cast<int64_t>(a[base + i]);
          s.b[i] = static_cast<int64_t>(b[base + i]);
        }
        sum += simd::SumProductMasked<int64_t, int64_t>(s.a, s.b, cmp + base,
                                                        n);
      }
      return sum;
    }
  }
  return simd::SumProductMasked<TA, TB>(a, b, cmp, len);
}

/// Value-masked quotient: sum_j (a[j]/b[j]) * cmp[j]. Division happens for
/// every lane — this is the "wasted work" that makes VM lose on
/// compute-bound aggregations (Fig. 8b).
template <typename TA, typename TB>
int64_t SumQuotientMasked(const TA* SWOLE_RESTRICT a,
                          const TB* SWOLE_RESTRICT b,
                          const uint8_t* SWOLE_RESTRICT cmp, int64_t len) {
  int64_t sum = 0;
  for (int64_t j = 0; j < len; ++j) {
    sum += (static_cast<int64_t>(a[j]) / static_cast<int64_t>(b[j])) * cmp[j];
  }
  return sum;
}

/// Unconditional sum over the tile (no predicate).
template <typename T>
int64_t SumAll(const T* SWOLE_RESTRICT col, int64_t len) {
  int64_t sum = 0;
  for (int64_t j = 0; j < len; ++j) sum += static_cast<int64_t>(col[j]);
  return sum;
}

template <typename TA, typename TB>
int64_t SumProductAll(const TA* SWOLE_RESTRICT a, const TB* SWOLE_RESTRICT b,
                      int64_t len) {
  int64_t sum = 0;
  for (int64_t j = 0; j < len; ++j) {
    sum += static_cast<int64_t>(a[j]) * static_cast<int64_t>(b[j]);
  }
  return sum;
}

/// Number of set lanes in a cmp array (selectivity of a tile).
inline int64_t CountBytes(const uint8_t* cmp, int64_t len) {
  return simd::CountBytes(cmp, len);
}

/// Access merging (§III-C, Fig. 5): tmp[j] = col[j] * cmp[j] — the predicate
/// result is folded into the value at first touch so the attribute is read
/// exactly once.
template <typename T>
void MaskIntoTmp(const T* col, const uint8_t* cmp, int64_t len,
                 int64_t* tmp) {
  if constexpr (!std::is_same_v<T, int64_t>) {
    if (SWOLE_UNLIKELY(WidenEnabled())) {
      auto& s = widen_detail::TlsScratch();
      for (int64_t base = 0; base < len; base += widen_detail::kScratchLen) {
        const int64_t n = std::min(widen_detail::kScratchLen, len - base);
        for (int64_t i = 0; i < n; ++i) {
          s.a[i] = static_cast<int64_t>(col[base + i]);
        }
        simd::MaskIntoTmp<int64_t>(s.a, cmp + base, n, tmp + base);
      }
      return;
    }
  }
  simd::MaskIntoTmp<T>(col, cmp, len, tmp);
}

/// Access merging with the comparison fused (Fig. 5 bottom, one access of x):
/// tmp[j] = x[j] * (x[j] OP lit).
template <typename T>
void CompareLitMaskIntoTmp(CmpOp op, const T* col, int64_t lit, int64_t len,
                           int64_t* tmp) {
  if constexpr (!std::is_same_v<T, int64_t>) {
    if (SWOLE_UNLIKELY(WidenEnabled())) {
      auto& s = widen_detail::TlsScratch();
      for (int64_t base = 0; base < len; base += widen_detail::kScratchLen) {
        const int64_t n = std::min(widen_detail::kScratchLen, len - base);
        for (int64_t i = 0; i < n; ++i) {
          s.a[i] = static_cast<int64_t>(col[base + i]);
        }
        simd::CompareLitMaskIntoTmp<int64_t>(op, s.a, lit, n, tmp + base);
      }
      return;
    }
  }
  simd::CompareLitMaskIntoTmp<T>(op, col, lit, len, tmp);
}

/// Key masking key production (§III-B, Fig. 4 bottom):
/// key[j] = cmp[j] ? c[j] : null_key. Branch-free select.
template <typename T>
void MaskKeys(const T* col, const uint8_t* cmp, int64_t null_key, int64_t len,
              int64_t* key) {
  if constexpr (!std::is_same_v<T, int64_t>) {
    if (SWOLE_UNLIKELY(WidenEnabled())) {
      auto& s = widen_detail::TlsScratch();
      for (int64_t base = 0; base < len; base += widen_detail::kScratchLen) {
        const int64_t n = std::min(widen_detail::kScratchLen, len - base);
        for (int64_t i = 0; i < n; ++i) {
          s.a[i] = static_cast<int64_t>(col[base + i]);
        }
        simd::MaskKeys<int64_t>(s.a, cmp + base, null_key, n, key + base);
      }
      return;
    }
  }
  simd::MaskKeys<T>(col, cmp, null_key, len, key);
}

/// Software prefetch helper (ROF §II-A.3): hints the cache line of `addr`.
SWOLE_ALWAYS_INLINE void PrefetchRead(const void* addr) {
  __builtin_prefetch(addr, /*rw=*/0, /*locality=*/1);
}

// ---- String kernels (raw arena columns, exec/simd_string.h) ----
//
// Same routing contract as the numeric primitives: strategy engines and
// JIT translation units call these wrappers, the wrappers call the
// runtime-dispatched simd:: entry points. Strings have no widened legacy
// path, so SWOLE_WIDEN does not apply here.

using simd::CompiledLike;
using simd::CompileLike;

/// Prepass LIKE over a tile of arena rows: out[j] = row matches (0/1).
/// The pushed-placement loop — bytes stream sequentially.
inline void StrLikeTile(const uint8_t* bytes, const uint32_t* offsets,
                        int64_t start, int64_t len, const CompiledLike& lk,
                        uint8_t* out) {
  simd::StrLikeTile(bytes, offsets, start, len, lk, out);
}

/// Guarded LIKE refine: cmp[j] &= row matches, skipping dead lanes. The
/// pulled-placement loop — only survivors touch the arena.
inline void StrLikeTileAnd(const uint8_t* bytes, const uint32_t* offsets,
                           int64_t start, int64_t len, const CompiledLike& lk,
                           uint8_t* cmp) {
  simd::StrLikeTileAnd(bytes, offsets, start, len, lk, cmp);
}

/// Single-row compiled LIKE (data-centric emission, reference engine).
inline bool StrLikeOne(const uint8_t* bytes, const uint32_t* offsets,
                       int64_t row, const CompiledLike& lk) {
  return simd::StrLikeOne(bytes, offsets, row, lk);
}

/// String equality / ordering / prefix / suffix / substring prepasses.
inline void StrEqLit(const uint8_t* bytes, const uint32_t* offsets,
                     int64_t start, int64_t len, std::string_view lit,
                     uint8_t* out) {
  simd::StrEqLit(bytes, offsets, start, len, lit, out);
}

inline void StrCmpLit(CmpOp op, const uint8_t* bytes, const uint32_t* offsets,
                      int64_t start, int64_t len, std::string_view lit,
                      uint8_t* out) {
  simd::StrCmpLit(op, bytes, offsets, start, len, lit, out);
}

inline void StrPrefix(const uint8_t* bytes, const uint32_t* offsets,
                      int64_t start, int64_t len, std::string_view prefix,
                      uint8_t* out) {
  simd::StrPrefix(bytes, offsets, start, len, prefix, out);
}

inline void StrSuffix(const uint8_t* bytes, const uint32_t* offsets,
                      int64_t start, int64_t len, std::string_view suffix,
                      uint8_t* out) {
  simd::StrSuffix(bytes, offsets, start, len, suffix, out);
}

inline void StrContains(const uint8_t* bytes, const uint32_t* offsets,
                        int64_t start, int64_t len, std::string_view needle,
                        uint8_t* out) {
  simd::StrContains(bytes, offsets, start, len, needle, out);
}

/// Dispatched memmem; -1 when absent.
inline int64_t StrFindFirst(const uint8_t* hay, int64_t hlen,
                            const uint8_t* needle, int64_t nlen) {
  return simd::StrFindFirst(hay, hlen, needle, nlen);
}

/// Per-row FNV-1a hashes over a tile (build-side string keys).
inline void StrHashTile(const uint8_t* bytes, const uint32_t* offsets,
                        int64_t start, int64_t len, uint64_t* out) {
  simd::StrHashTile(bytes, offsets, start, len, out);
}

}  // namespace swole::kernels

#endif  // SWOLE_EXEC_KERNELS_H_
