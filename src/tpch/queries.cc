#include "tpch/queries.h"

#include "common/logging.h"
#include "common/string_util.h"
#include "storage/table.h"
#include "tpch/dbgen.h"

namespace swole::tpch {

int64_t DictCode(const Catalog& catalog, const std::string& table,
                 const std::string& column, const std::string& value) {
  const Column& col = catalog.TableRef(table).ColumnRef(column);
  SWOLE_CHECK(col.dictionary() != nullptr)
      << table << "." << column << " is not dictionary-encoded";
  return col.dictionary()->Lookup(value);
}

namespace {

// Revenue expression shared by Q3/Q5/Q14/Q19:
// l_extendedprice * (1 - l_discount), in fixed point:
// extendedprice_cents * (100 - discount_percent).
ExprPtr Revenue() {
  return Mul(Col("l_extendedprice"), Sub(Lit(100), Col("l_discount")));
}

std::vector<int64_t> DictCodes(const Catalog& catalog,
                               const std::string& table,
                               const std::string& column,
                               const std::vector<std::string>& values) {
  std::vector<int64_t> codes;
  for (const std::string& value : values) {
    codes.push_back(DictCode(catalog, table, column, value));
  }
  return codes;
}

}  // namespace

// Q1: single-table scan of lineitem; simple predicate selecting ~98% of
// tuples; the most compute-intensive aggregation in TPC-H.
QueryPlan Q1(const Catalog& catalog) {
  (void)catalog;
  QueryPlan plan;
  plan.name = "tpch_q1";
  plan.fact_table = "lineitem";
  plan.fact_filter =
      Le(Col("l_shipdate"), Lit(ParseDate("1998-12-01") - 90));
  // group by l_returnflag, l_linestatus — encoded as one key.
  plan.group_by = Add(Mul(Col("l_returnflag"), Lit(2)), Col("l_linestatus"));
  plan.group_cardinality_hint = 6;
  plan.aggs.emplace_back(AggKind::kSum, Col("l_quantity"), "sum_qty");
  plan.aggs.emplace_back(AggKind::kSum, Col("l_extendedprice"),
                         "sum_base_price");
  plan.aggs.emplace_back(AggKind::kSum, Revenue(), "sum_disc_price");
  plan.aggs.emplace_back(
      AggKind::kSum,
      Mul(Mul(Col("l_extendedprice"), Sub(Lit(100), Col("l_discount"))),
          Add(Lit(100), Col("l_tax"))),
      "sum_charge");
  plan.aggs.emplace_back(AggKind::kSum, Col("l_discount"), "sum_disc");
  plan.aggs.emplace_back(AggKind::kCount, nullptr, "count_order");
  return plan;
}

// Q3: customer ⋈ orders ⋈ lineitem with a groupjoin on l_orderkey; every
// table filtered by a single comparison.
QueryPlan Q3(const Catalog& catalog) {
  QueryPlan plan;
  plan.name = "tpch_q3";
  plan.fact_table = "lineitem";
  plan.fact_filter = Gt(Col("l_shipdate"), Lit(ParseDate("1995-03-15")));

  DimJoin orders;
  orders.hop = {"l_orderkey", "orders", "o_orderkey"};
  orders.filter = Lt(Col("o_orderdate"), Lit(ParseDate("1995-03-15")));
  DimJoin cust;
  cust.hop = {"o_custkey", "customer", "c_custkey"};
  cust.filter = Eq(Col("c_mktsegment"),
                   Lit(DictCode(catalog, "customer", "c_mktsegment",
                                "BUILDING")));
  orders.children.push_back(std::move(cust));
  plan.dims.push_back(std::move(orders));

  plan.group_by = Col("l_orderkey");
  plan.group_cardinality_hint =
      catalog.TableRef("orders").num_rows() / 10;
  plan.aggs.emplace_back(AggKind::kSum, Revenue(), "revenue");
  return plan;
}

// Q4: orders with an EXISTS over lineitem (reverse semijoin); the
// lineitem-side build dominates the runtime.
QueryPlan Q4(const Catalog& catalog) {
  (void)catalog;
  QueryPlan plan;
  plan.name = "tpch_q4";
  plan.fact_table = "orders";
  int32_t from = ParseDate("1993-07-01");
  plan.fact_filter = And(Ge(Col("o_orderdate"), Lit(from)),
                         Lt(Col("o_orderdate"), Lit(from + 92)));

  ReverseDim exists;
  exists.table = "lineitem";
  exists.fk_column = "l_orderkey";
  exists.filter = Lt(Col("l_commitdate"), Col("l_receiptdate"));
  exists.fact_pk_column = "o_orderkey";
  plan.reverse_dims.push_back(std::move(exists));

  plan.group_by = Col("o_orderpriority");
  plan.group_cardinality_hint = 5;
  plan.aggs.emplace_back(AggKind::kCount, nullptr, "order_count");
  return plan;
}

// Q5: six tables; lineitem (unfiltered) joins orders -> customer ->
// nation -> region plus supplier, with c_nationkey = s_nationkey across
// the two chains; grouped by the supplier's nation.
QueryPlan Q5(const Catalog& catalog) {
  QueryPlan plan;
  plan.name = "tpch_q5";
  plan.fact_table = "lineitem";

  DimJoin orders;
  orders.hop = {"l_orderkey", "orders", "o_orderkey"};
  int32_t from = ParseDate("1994-01-01");
  orders.filter = And(Ge(Col("o_orderdate"), Lit(from)),
                      Lt(Col("o_orderdate"), Lit(from + 365)));
  DimJoin cust;
  cust.hop = {"o_custkey", "customer", "c_custkey"};
  DimJoin nat;
  nat.hop = {"c_nationkey", "nation", "n_nationkey"};
  DimJoin reg;
  reg.hop = {"n_regionkey", "region", "r_regionkey"};
  reg.filter =
      Eq(Col("r_name"), Lit(DictCode(catalog, "region", "r_name", "ASIA")));
  nat.children.push_back(std::move(reg));
  cust.children.push_back(std::move(nat));
  orders.children.push_back(std::move(cust));
  plan.dims.push_back(std::move(orders));

  ColumnPath c_nation;
  c_nation.alias = "c_nation";
  c_nation.hops = {{"l_orderkey", "orders", "o_orderkey"},
                   {"o_custkey", "customer", "c_custkey"}};
  c_nation.column = "c_nationkey";
  plan.paths.push_back(std::move(c_nation));

  ColumnPath s_nation;
  s_nation.alias = "s_nation";
  s_nation.hops = {{"l_suppkey", "supplier", "s_suppkey"}};
  s_nation.column = "s_nationkey";
  plan.paths.push_back(std::move(s_nation));

  plan.path_equalities.push_back({"s_nation", "c_nation"});
  plan.group_by_path = "s_nation";
  plan.group_cardinality_hint = 25;
  plan.aggs.emplace_back(AggKind::kSum, Revenue(), "revenue");
  return plan;
}

// Q6: single-table scan; five comparisons over three attributes selecting
// ~2% of lineitem; l_discount appears in both the predicate and the
// aggregate (the access-merging showcase).
QueryPlan Q6(const Catalog& catalog) {
  (void)catalog;
  QueryPlan plan;
  plan.name = "tpch_q6";
  plan.fact_table = "lineitem";
  int32_t from = ParseDate("1994-01-01");
  plan.fact_filter =
      And(And(And(Ge(Col("l_shipdate"), Lit(from)),
                  Lt(Col("l_shipdate"), Lit(from + 365))),
              And(Ge(Col("l_discount"), Lit(5)),
                  Le(Col("l_discount"), Lit(7)))),
          Lt(Col("l_quantity"), Lit(24)));
  plan.aggs.emplace_back(AggKind::kSum,
                         Mul(Col("l_extendedprice"), Col("l_discount")),
                         "revenue");
  return plan;
}

// Q13: groupjoin customer ⋈ orders with a complex NOT LIKE on o_comment
// (~98% pass), then a histogram over the per-customer counts — including
// customers with zero orders.
QueryPlan Q13(const Catalog& catalog) {
  QueryPlan plan;
  plan.name = "tpch_q13";
  plan.fact_table = "orders";
  plan.fact_filter = NotLike("o_comment", "%special%requests%");

  DimJoin cust;
  cust.hop = {"o_custkey", "customer", "c_custkey"};
  plan.dims.push_back(std::move(cust));

  plan.group_by = Col("o_custkey");
  plan.group_cardinality_hint = catalog.TableRef("customer").num_rows();
  plan.group_seed = GroupSeed{"customer", "c_custkey"};
  plan.histogram_of_agg0 = true;
  plan.aggs.emplace_back(AggKind::kCount, nullptr, "c_count");
  return plan;
}

// Q14: index join lineitem ⋈ part; the p_type LIKE 'PROMO%' becomes a
// dictionary-mask lookup computed on the fly; ~1% of lineitem selected.
QueryPlan Q14(const Catalog& catalog) {
  (void)catalog;
  QueryPlan plan;
  plan.name = "tpch_q14";
  plan.fact_table = "lineitem";
  int32_t from = ParseDate("1995-09-01");
  plan.fact_filter = And(Ge(Col("l_shipdate"), Lit(from)),
                         Lt(Col("l_shipdate"), Lit(from + 30)));

  DimJoin part;
  part.hop = {"l_partkey", "part", "p_partkey"};
  plan.dims.push_back(std::move(part));

  ColumnPath promo;
  promo.alias = "promo_flag";
  promo.hops = {{"l_partkey", "part", "p_partkey"}};
  promo.column = "p_type";
  promo.like_pattern = "PROMO%";
  plan.paths.push_back(std::move(promo));

  AggSpec promo_rev(AggKind::kSum, Revenue(), "promo_revenue");
  promo_rev.path_factor = "promo_flag";
  plan.aggs.push_back(std::move(promo_rev));
  plan.aggs.emplace_back(AggKind::kSum, Revenue(), "total_revenue");
  return plan;
}

// Q19: lineitem ⋈ part under a three-clause disjunctive join condition;
// the shipmode/shipinstruct conjuncts are common to all clauses.
QueryPlan Q19(const Catalog& catalog) {
  QueryPlan plan;
  plan.name = "tpch_q19";
  plan.fact_table = "lineitem";
  plan.fact_filter =
      And(InList(Col("l_shipmode"),
                 DictCodes(catalog, "lineitem", "l_shipmode",
                           {"AIR", "REG AIR"})),
          Eq(Col("l_shipinstruct"),
             Lit(DictCode(catalog, "lineitem", "l_shipinstruct",
                          "DELIVER IN PERSON"))));

  DisjunctiveJoin dj;
  dj.hop = {"l_partkey", "part", "p_partkey"};

  struct ClauseSpec {
    const char* brand;
    std::vector<std::string> containers;
    int64_t size_hi;
    int64_t qty_lo;
    int64_t qty_hi;
  };
  std::vector<ClauseSpec> specs = {
      {"Brand#12", {"SM CASE", "SM BOX", "SM PACK", "SM PKG"}, 5, 1, 11},
      {"Brand#23", {"MED BAG", "MED BOX", "MED PKG", "MED PACK"}, 10, 10, 20},
      {"Brand#34", {"LG CASE", "LG BOX", "LG PACK", "LG PKG"}, 15, 20, 30},
  };
  for (const ClauseSpec& spec : specs) {
    DisjunctiveJoin::Clause clause;
    clause.dim_filter =
        And(And(Eq(Col("p_brand"),
                   Lit(DictCode(catalog, "part", "p_brand", spec.brand))),
                InList(Col("p_container"),
                       DictCodes(catalog, "part", "p_container",
                                 spec.containers))),
            Between(Col("p_size"), 1, spec.size_hi));
    clause.fact_filter = Between(Col("l_quantity"), spec.qty_lo, spec.qty_hi);
    dj.clauses.push_back(std::move(clause));
  }
  plan.disjunctive = std::move(dj);

  plan.aggs.emplace_back(AggKind::kSum, Revenue(), "revenue");
  return plan;
}

// Q13 string variant: the positive form of Q13's comment predicate
// (~1.9% of orders mention "special ... requests") against a filtered
// customer dimension. The dim filter makes the non-string selectivity low
// enough that the cost model pulls the LIKE above the join.
QueryPlan Q13String(const Catalog& catalog) {
  QueryPlan plan;
  plan.name = "tpch_q13_string";
  plan.fact_table = "orders";
  plan.fact_filter = Like("o_comment", "%special%requests%");

  DimJoin cust;
  cust.hop = {"o_custkey", "customer", "c_custkey"};
  cust.filter = Eq(Col("c_mktsegment"),
                   Lit(DictCode(catalog, "customer", "c_mktsegment",
                                "BUILDING")));
  plan.dims.push_back(std::move(cust));

  plan.aggs.emplace_back(AggKind::kCount, nullptr, "special_orders");
  return plan;
}

// Q14 string variant: Q14's one-month shipdate window plus a raw comment
// match on the fact table itself — the date conjuncts qualify ~1.2% of
// lineitem, so only those rows should pay the arena touch (pullup).
QueryPlan Q14String(const Catalog& catalog) {
  (void)catalog;
  QueryPlan plan;
  plan.name = "tpch_q14_string";
  plan.fact_table = "lineitem";
  int32_t from = ParseDate("1995-09-01");
  plan.fact_filter =
      And(And(Ge(Col("l_shipdate"), Lit(from)),
              Lt(Col("l_shipdate"), Lit(from + 30))),
          Like("l_comment", "%special%requests%"));

  DimJoin part;
  part.hop = {"l_partkey", "part", "p_partkey"};
  plan.dims.push_back(std::move(part));

  plan.aggs.emplace_back(AggKind::kSum, Revenue(), "promo_revenue");
  plan.aggs.emplace_back(AggKind::kCount, nullptr, "matched_lines");
  return plan;
}

// Q19 string variant: Q19's common shipmode/shipinstruct conjuncts plus a
// NOT LIKE over the raw comment (~98% pass — the Q13 shape), joined to a
// size-filtered part dimension. The integer conjuncts qualify ~7% of
// lineitem, so pulling the nearly-always-true string match saves almost
// all of its arena traffic.
QueryPlan Q19String(const Catalog& catalog) {
  QueryPlan plan;
  plan.name = "tpch_q19_string";
  plan.fact_table = "lineitem";
  plan.fact_filter =
      And(And(InList(Col("l_shipmode"),
                     DictCodes(catalog, "lineitem", "l_shipmode",
                               {"AIR", "REG AIR"})),
              Eq(Col("l_shipinstruct"),
                 Lit(DictCode(catalog, "lineitem", "l_shipinstruct",
                              "DELIVER IN PERSON")))),
          NotLike("l_comment", "%special%requests%"));

  DimJoin part;
  part.hop = {"l_partkey", "part", "p_partkey"};
  part.filter = Between(Col("p_size"), 1, 15);
  plan.dims.push_back(std::move(part));

  plan.aggs.emplace_back(AggKind::kSum, Revenue(), "revenue");
  return plan;
}

std::vector<QueryPlan> AllQueries(const Catalog& catalog) {
  std::vector<QueryPlan> plans;
  plans.push_back(Q1(catalog));
  plans.push_back(Q3(catalog));
  plans.push_back(Q4(catalog));
  plans.push_back(Q5(catalog));
  plans.push_back(Q6(catalog));
  plans.push_back(Q13(catalog));
  plans.push_back(Q14(catalog));
  plans.push_back(Q19(catalog));
  return plans;
}

std::vector<QueryPlan> StringQueries(const Catalog& catalog) {
  std::vector<QueryPlan> plans;
  plans.push_back(Q13String(catalog));
  plans.push_back(Q14String(catalog));
  plans.push_back(Q19String(catalog));
  return plans;
}

}  // namespace swole::tpch
