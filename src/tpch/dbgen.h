#ifndef SWOLE_TPCH_DBGEN_H_
#define SWOLE_TPCH_DBGEN_H_

#include <memory>

#include "plan/plan.h"

// Deterministic TPC-H data generator (dbgen equivalent) for the seven
// tables the evaluated queries touch: region, nation, supplier, customer,
// part, orders, lineitem. Row counts per scale factor match the TPC-H
// specification; value domains and the distributions the evaluated
// predicates depend on (ship/commit/receipt date arithmetic, discount and
// quantity ranges, priorities, market segments, part type/brand/container
// vocabularies, o_comment text with the Q13 "special...requests"
// injection) follow dbgen's rules. Storage follows the paper's compression
// conventions: dictionary-encoded low-cardinality strings, null-suppressed
// narrow integers, fixed-point decimals (cents) in int64.

namespace swole::tpch {

struct TpchConfig {
  double scale_factor = 0.1;
  uint64_t seed = 19920101;

  /// Reads SWOLE_SF / SWOLE_TPCH_SEED over the defaults.
  static TpchConfig FromEnv();
};

struct TpchData {
  /// Generates all tables and registers every referential-integrity fk
  /// index (lineitem->orders/part/supplier, orders->customer,
  /// customer->nation, supplier->nation, nation->region).
  static std::unique_ptr<TpchData> Generate(const TpchConfig& config);

  TpchConfig config;
  Catalog catalog;

  int64_t num_orders = 0;
  int64_t num_lineitems = 0;
  int64_t num_customers = 0;
  int64_t num_parts = 0;
  int64_t num_suppliers = 0;
};

// Fixed calendar anchors (TPC-H spec).
int32_t StartDate();    // 1992-01-01
int32_t EndDate();      // 1998-12-31
int32_t CurrentDate();  // 1995-06-17

}  // namespace swole::tpch

#endif  // SWOLE_TPCH_DBGEN_H_
