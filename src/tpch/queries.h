#ifndef SWOLE_TPCH_QUERIES_H_
#define SWOLE_TPCH_QUERIES_H_

#include <string>
#include <vector>

#include "plan/plan.h"

// The eight TPC-H queries of the paper's evaluation (§IV-A) — the same
// representative subset used by the ROF paper [5] — expressed in the plan
// algebra. String constants are resolved to dictionary codes against the
// given catalog at plan-construction time (the standard dictionary-encoding
// rewrite every strategy shares). Dates are day literals; decimals are
// fixed-point, so e.g. Q6's `l_discount between 0.05 and 0.07` is
// `l_discount between 5 and 7` on the stored percent values.

namespace swole::tpch {

QueryPlan Q1(const Catalog& catalog);
QueryPlan Q3(const Catalog& catalog);
QueryPlan Q4(const Catalog& catalog);
QueryPlan Q5(const Catalog& catalog);
QueryPlan Q6(const Catalog& catalog);
QueryPlan Q13(const Catalog& catalog);
QueryPlan Q14(const Catalog& catalog);
QueryPlan Q19(const Catalog& catalog);

// String-heavy variants (raw-text LIKE on the fact table, so the
// access-aware placement decision in cost/string_placement.h has work to
// do). All three stay inside the codegen subset, so the JIT generator
// compiles them too.
QueryPlan Q13String(const Catalog& catalog);
QueryPlan Q14String(const Catalog& catalog);
QueryPlan Q19String(const Catalog& catalog);

/// All eight plans in paper order (Q1, Q3, Q4, Q5, Q6, Q13, Q14, Q19).
std::vector<QueryPlan> AllQueries(const Catalog& catalog);

/// The three string-heavy variants (q13_string, q14_string, q19_string).
std::vector<QueryPlan> StringQueries(const Catalog& catalog);

/// Dictionary code of `value` in `table.column`. Aborts if the column is
/// not dictionary-encoded; returns -1 if the value does not occur (the
/// predicate is then unsatisfiable, matching SQL semantics).
int64_t DictCode(const Catalog& catalog, const std::string& table,
                 const std::string& column, const std::string& value);

}  // namespace swole::tpch

#endif  // SWOLE_TPCH_QUERIES_H_
