#include "tpch/dbgen.h"

#include <algorithm>
#include <array>
#include <memory>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/string_util.h"
#include "storage/table.h"

namespace swole::tpch {

namespace {

// ---- Vocabularies (TPC-H spec §4.2.2/4.2.3) ----

constexpr const char* kRegions[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                                    "MIDDLE EAST"};

struct NationSpec {
  const char* name;
  int region;
};
constexpr NationSpec kNations[] = {
    {"ALGERIA", 0},      {"ARGENTINA", 1}, {"BRAZIL", 1},
    {"CANADA", 1},       {"EGYPT", 4},     {"ETHIOPIA", 0},
    {"FRANCE", 3},       {"GERMANY", 3},   {"INDIA", 2},
    {"INDONESIA", 2},    {"IRAN", 4},      {"IRAQ", 4},
    {"JAPAN", 2},        {"JORDAN", 4},    {"KENYA", 0},
    {"MOROCCO", 0},      {"MOZAMBIQUE", 0}, {"PERU", 1},
    {"CHINA", 2},        {"ROMANIA", 3},   {"SAUDI ARABIA", 4},
    {"VIETNAM", 2},      {"RUSSIA", 3},    {"UNITED KINGDOM", 3},
    {"UNITED STATES", 1}};

constexpr const char* kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                                     "MACHINERY", "HOUSEHOLD"};

constexpr const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                                       "4-NOT SPECIFIED", "5-LOW"};

constexpr const char* kTypeSyllable1[] = {"STANDARD", "SMALL",  "MEDIUM",
                                          "LARGE",    "ECONOMY", "PROMO"};
constexpr const char* kTypeSyllable2[] = {"ANODIZED", "BURNISHED", "PLATED",
                                          "POLISHED", "BRUSHED"};
constexpr const char* kTypeSyllable3[] = {"TIN", "NICKEL", "BRASS", "STEEL",
                                          "COPPER"};

constexpr const char* kContainer1[] = {"SM", "MED", "LG", "JUMBO", "WRAP"};
constexpr const char* kContainer2[] = {"CASE", "BOX", "BAG", "JAR",
                                       "PKG",  "PACK", "CAN", "DRUM"};

constexpr const char* kShipModes[] = {"REG AIR", "AIR",  "RAIL", "SHIP",
                                      "TRUCK",   "MAIL", "FOB"};
constexpr const char* kShipInstructions[] = {"DELIVER IN PERSON",
                                             "COLLECT COD", "NONE",
                                             "TAKE BACK RETURN"};

// Comment vocabulary for o_comment (neutral words; "special" and
// "requests" are injected explicitly so Q13's selectivity is controlled).
constexpr const char* kCommentWords[] = {
    "furiously", "quickly", "carefully", "blithely",  "slyly",   "even",
    "final",     "regular", "express",   "pending",   "bold",    "ironic",
    "silent",    "daring",  "accounts",  "deposits",  "packages", "pinto",
    "beans",     "foxes",   "theodolites", "instructions", "platelets",
    "asymptotes", "dependencies", "ideas", "excuses", "sauternes", "waters",
    "sheaves",   "courts",  "dolphins",  "multipliers", "attainments"};

// ---- Builders ----

std::shared_ptr<Dictionary> MakeDict(const std::vector<std::string>& values) {
  return std::make_shared<Dictionary>(Dictionary::FromValues(values));
}

std::unique_ptr<Column> DictColumn(const std::string& name,
                                   std::shared_ptr<const Dictionary> dict) {
  auto col = std::make_unique<Column>(name, ColumnType::String());
  col->set_dictionary(std::move(dict));
  return col;
}

// dbgen's retail price formula, in cents.
int64_t RetailPriceCents(int64_t partkey) {
  return 90000 + ((partkey / 10) % 20001) + 100 * (partkey % 1000);
}

std::string MakeComment(Rng* rng, bool inject_pattern, bool inject_decoy) {
  constexpr int kWords = sizeof(kCommentWords) / sizeof(kCommentWords[0]);
  int total = static_cast<int>(rng->UniformInt(4, 9));
  std::vector<std::string> words;
  words.reserve(total + 2);
  for (int w = 0; w < total; ++w) {
    words.push_back(kCommentWords[rng->NextBounded(kWords)]);
  }
  if (inject_pattern) {
    // "special" before "requests", possibly with words in between —
    // exactly what '%special%requests%' matches.
    size_t pos1 = rng->NextBounded(words.size());
    words.insert(words.begin() + pos1, "special");
    size_t pos2 = pos1 + 1 + rng->NextBounded(words.size() - pos1);
    words.insert(words.begin() + pos2, "requests");
  } else if (inject_decoy) {
    // One of the two words alone (or in the wrong order) must NOT match.
    if (rng->Bernoulli(0.5)) {
      words.insert(words.begin() + rng->NextBounded(words.size()),
                   rng->Bernoulli(0.5) ? "special" : "requests");
    } else {
      size_t pos1 = rng->NextBounded(words.size());
      words.insert(words.begin() + pos1, "requests");
      size_t pos2 = pos1 + 1 + rng->NextBounded(words.size() - pos1);
      words.insert(words.begin() + pos2, "special");
    }
  }
  std::string out;
  for (size_t w = 0; w < words.size(); ++w) {
    if (w > 0) out += ' ';
    out += words[w];
  }
  return out;
}

void RegisterFk(Table* from, const std::string& fk_column, const Table& to,
                const std::string& pk_column) {
  Result<FkIndex> index =
      FkIndex::Build(from->ColumnRef(fk_column), to.ColumnRef(pk_column));
  index.status().CheckOK();
  from->AddFkIndex(fk_column, std::move(index).value()).CheckOK();
}

}  // namespace

int32_t StartDate() { return DateToDays(1992, 1, 1); }
int32_t EndDate() { return DateToDays(1998, 12, 31); }
int32_t CurrentDate() { return DateToDays(1995, 6, 17); }

TpchConfig TpchConfig::FromEnv() {
  TpchConfig config;
  config.scale_factor = GetEnvDouble("SWOLE_SF", config.scale_factor);
  config.seed = static_cast<uint64_t>(
      GetEnvInt64("SWOLE_TPCH_SEED", static_cast<int64_t>(config.seed)));
  return config;
}

std::unique_ptr<TpchData> TpchData::Generate(const TpchConfig& config) {
  SWOLE_CHECK_GT(config.scale_factor, 0.0);
  auto data = std::make_unique<TpchData>();
  data->config = config;
  Rng rng(config.seed);

  const double sf = config.scale_factor;
  const int64_t num_suppliers = std::max<int64_t>(10, 10'000 * sf);
  const int64_t num_customers = std::max<int64_t>(30, 150'000 * sf);
  const int64_t num_parts = std::max<int64_t>(50, 200'000 * sf);
  const int64_t num_orders = std::max<int64_t>(100, 1'500'000 * sf);

  data->num_suppliers = num_suppliers;
  data->num_customers = num_customers;
  data->num_parts = num_parts;
  data->num_orders = num_orders;

  // ---- region ----
  auto region = std::make_shared<Table>("region");
  {
    std::vector<std::string> names(std::begin(kRegions), std::end(kRegions));
    auto dict = MakeDict(names);
    auto key = std::make_unique<Column>("r_regionkey",
                                        ColumnType::Int(PhysicalType::kInt8));
    auto name = DictColumn("r_name", dict);
    for (int i = 0; i < 5; ++i) {
      key->Append(i);
      name->Append(dict->Lookup(kRegions[i]));
    }
    region->AddColumn(std::move(key)).CheckOK();
    region->AddColumn(std::move(name)).CheckOK();
  }

  // ---- nation ----
  auto nation = std::make_shared<Table>("nation");
  {
    std::vector<std::string> names;
    for (const NationSpec& spec : kNations) names.push_back(spec.name);
    auto dict = MakeDict(names);
    auto key = std::make_unique<Column>("n_nationkey",
                                        ColumnType::Int(PhysicalType::kInt8));
    auto name = DictColumn("n_name", dict);
    auto regionkey = std::make_unique<Column>(
        "n_regionkey", ColumnType::Int(PhysicalType::kInt8));
    for (int i = 0; i < 25; ++i) {
      key->Append(i);
      name->Append(dict->Lookup(kNations[i].name));
      regionkey->Append(kNations[i].region);
    }
    nation->AddColumn(std::move(key)).CheckOK();
    nation->AddColumn(std::move(name)).CheckOK();
    nation->AddColumn(std::move(regionkey)).CheckOK();
  }
  RegisterFk(nation.get(), "n_regionkey", *region, "r_regionkey");

  // ---- supplier ----
  auto supplier = std::make_shared<Table>("supplier");
  {
    auto key = std::make_unique<Column>(
        "s_suppkey", ColumnType::Int(NarrowestPhysicalType(0, num_suppliers)));
    auto nationkey = std::make_unique<Column>(
        "s_nationkey", ColumnType::Int(PhysicalType::kInt8));
    for (int64_t i = 0; i < num_suppliers; ++i) {
      key->Append(i);
      nationkey->Append(rng.UniformInt(0, 24));
    }
    supplier->AddColumn(std::move(key)).CheckOK();
    supplier->AddColumn(std::move(nationkey)).CheckOK();
  }
  RegisterFk(supplier.get(), "s_nationkey", *nation, "n_nationkey");

  // ---- customer ----
  auto customer = std::make_shared<Table>("customer");
  {
    std::vector<std::string> segments(std::begin(kSegments),
                                      std::end(kSegments));
    auto dict = MakeDict(segments);
    auto key = std::make_unique<Column>(
        "c_custkey", ColumnType::Int(NarrowestPhysicalType(0, num_customers)));
    auto nationkey = std::make_unique<Column>(
        "c_nationkey", ColumnType::Int(PhysicalType::kInt8));
    auto segment = DictColumn("c_mktsegment", dict);
    for (int64_t i = 0; i < num_customers; ++i) {
      key->Append(i);
      nationkey->Append(rng.UniformInt(0, 24));
      segment->Append(dict->Lookup(kSegments[rng.NextBounded(5)]));
    }
    customer->AddColumn(std::move(key)).CheckOK();
    customer->AddColumn(std::move(nationkey)).CheckOK();
    customer->AddColumn(std::move(segment)).CheckOK();
  }
  RegisterFk(customer.get(), "c_nationkey", *nation, "n_nationkey");

  // ---- part ----
  auto part = std::make_shared<Table>("part");
  {
    std::vector<std::string> brands;
    for (int m = 1; m <= 5; ++m) {
      for (int n = 1; n <= 5; ++n) {
        brands.push_back(StringFormat("Brand#%d%d", m, n));
      }
    }
    std::vector<std::string> types;
    for (const char* s1 : kTypeSyllable1) {
      for (const char* s2 : kTypeSyllable2) {
        for (const char* s3 : kTypeSyllable3) {
          types.push_back(StringFormat("%s %s %s", s1, s2, s3));
        }
      }
    }
    std::vector<std::string> containers;
    for (const char* c1 : kContainer1) {
      for (const char* c2 : kContainer2) {
        containers.push_back(StringFormat("%s %s", c1, c2));
      }
    }
    auto brand_dict = MakeDict(brands);
    auto type_dict = MakeDict(types);
    auto container_dict = MakeDict(containers);

    auto key = std::make_unique<Column>(
        "p_partkey", ColumnType::Int(NarrowestPhysicalType(0, num_parts)));
    auto brand = DictColumn("p_brand", brand_dict);
    auto type = DictColumn("p_type", type_dict);
    auto container = DictColumn("p_container", container_dict);
    auto size = std::make_unique<Column>(
        "p_size", ColumnType::Int(PhysicalType::kInt8));
    auto retail = std::make_unique<Column>("p_retailprice",
                                           ColumnType::Decimal(2));
    for (int64_t i = 0; i < num_parts; ++i) {
      key->Append(i);
      brand->Append(
          brand_dict->Lookup(brands[rng.NextBounded(brands.size())]));
      type->Append(type_dict->Lookup(types[rng.NextBounded(types.size())]));
      container->Append(container_dict->Lookup(
          containers[rng.NextBounded(containers.size())]));
      size->Append(rng.UniformInt(1, 50));
      retail->Append(RetailPriceCents(i));
    }
    part->AddColumn(std::move(key)).CheckOK();
    part->AddColumn(std::move(brand)).CheckOK();
    part->AddColumn(std::move(type)).CheckOK();
    part->AddColumn(std::move(container)).CheckOK();
    part->AddColumn(std::move(size)).CheckOK();
    part->AddColumn(std::move(retail)).CheckOK();
  }

  // ---- orders ----
  auto orders = std::make_shared<Table>("orders");
  std::vector<int32_t> order_dates(num_orders);
  {
    std::vector<std::string> priorities(std::begin(kPriorities),
                                        std::end(kPriorities));
    auto prio_dict = MakeDict(priorities);
    auto key = std::make_unique<Column>(
        "o_orderkey", ColumnType::Int(NarrowestPhysicalType(0, num_orders)));
    auto custkey = std::make_unique<Column>(
        "o_custkey", ColumnType::Int(NarrowestPhysicalType(0, num_customers)));
    auto orderdate = std::make_unique<Column>("o_orderdate",
                                              ColumnType::Date());
    auto priority = DictColumn("o_orderpriority", prio_dict);
    auto text = std::make_shared<TextData>();

    const int32_t last_order_date = EndDate() - 151;
    for (int64_t i = 0; i < num_orders; ++i) {
      key->Append(i);
      // dbgen: customers whose key is divisible by 3 place no orders
      // (drives Q13's zero-order bucket).
      int64_t cust = rng.UniformInt(0, num_customers - 1);
      while (cust % 3 == 0) cust = rng.UniformInt(0, num_customers - 1);
      custkey->Append(cust);
      int32_t date = static_cast<int32_t>(
          rng.UniformInt(StartDate(), last_order_date));
      order_dates[i] = date;
      orderdate->Append(date);
      priority->Append(rng.NextBounded(5));
      // ~1.9% of comments match '%special%requests%' (dbgen: ~(1/55)^... a
      // small fixed fraction), plus decoys that almost match.
      bool inject = rng.Bernoulli(0.019);
      bool decoy = !inject && rng.Bernoulli(0.05);
      text->Append(MakeComment(&rng, inject, decoy));
    }
    auto comment = std::make_unique<Column>("o_comment", ColumnType::Text());
    comment->set_text(text);
    orders->AddColumn(std::move(key)).CheckOK();
    orders->AddColumn(std::move(custkey)).CheckOK();
    orders->AddColumn(std::move(orderdate)).CheckOK();
    orders->AddColumn(std::move(priority)).CheckOK();
    orders->AddColumn(std::move(comment)).CheckOK();
  }
  RegisterFk(orders.get(), "o_custkey", *customer, "c_custkey");

  // ---- lineitem ----
  auto lineitem = std::make_shared<Table>("lineitem");
  {
    std::vector<std::string> modes(std::begin(kShipModes),
                                   std::end(kShipModes));
    std::vector<std::string> instructions(std::begin(kShipInstructions),
                                          std::end(kShipInstructions));
    std::vector<std::string> flags = {"A", "N", "R"};
    std::vector<std::string> statuses = {"F", "O"};
    auto mode_dict = MakeDict(modes);
    auto instr_dict = MakeDict(instructions);
    auto flag_dict = MakeDict(flags);
    auto status_dict = MakeDict(statuses);

    auto orderkey = std::make_unique<Column>(
        "l_orderkey", ColumnType::Int(NarrowestPhysicalType(0, num_orders)));
    auto partkey = std::make_unique<Column>(
        "l_partkey", ColumnType::Int(NarrowestPhysicalType(0, num_parts)));
    auto suppkey = std::make_unique<Column>(
        "l_suppkey", ColumnType::Int(NarrowestPhysicalType(0, num_suppliers)));
    auto quantity = std::make_unique<Column>(
        "l_quantity", ColumnType::Int(PhysicalType::kInt8));
    auto extendedprice =
        std::make_unique<Column>("l_extendedprice", ColumnType::Decimal(2));
    auto discount = std::make_unique<Column>(
        "l_discount", ColumnType::Int(PhysicalType::kInt8));
    auto tax = std::make_unique<Column>("l_tax",
                                        ColumnType::Int(PhysicalType::kInt8));
    auto returnflag = DictColumn("l_returnflag", flag_dict);
    auto linestatus = DictColumn("l_linestatus", status_dict);
    auto shipdate = std::make_unique<Column>("l_shipdate",
                                             ColumnType::Date());
    auto commitdate =
        std::make_unique<Column>("l_commitdate", ColumnType::Date());
    auto receiptdate =
        std::make_unique<Column>("l_receiptdate", ColumnType::Date());
    auto shipinstruct = DictColumn("l_shipinstruct", instr_dict);
    auto shipmode = DictColumn("l_shipmode", mode_dict);
    auto comment_text = std::make_shared<TextData>();

    for (int64_t order = 0; order < num_orders; ++order) {
      int64_t lines = rng.UniformInt(1, 7);
      for (int64_t line = 0; line < lines; ++line) {
        orderkey->Append(order);
        int64_t pk = rng.UniformInt(0, num_parts - 1);
        partkey->Append(pk);
        suppkey->Append(rng.UniformInt(0, num_suppliers - 1));
        int64_t qty = rng.UniformInt(1, 50);
        quantity->Append(qty);
        extendedprice->Append(qty * RetailPriceCents(pk) / 100);
        discount->Append(rng.UniformInt(0, 10));
        tax->Append(rng.UniformInt(0, 8));
        int32_t ship = order_dates[order] +
                       static_cast<int32_t>(rng.UniformInt(1, 121));
        int32_t commit = order_dates[order] +
                         static_cast<int32_t>(rng.UniformInt(30, 90));
        int32_t receipt =
            ship + static_cast<int32_t>(rng.UniformInt(1, 30));
        shipdate->Append(ship);
        commitdate->Append(commit);
        receiptdate->Append(receipt);
        if (receipt <= CurrentDate()) {
          returnflag->Append(
              flag_dict->Lookup(rng.Bernoulli(0.5) ? "R" : "A"));
        } else {
          returnflag->Append(flag_dict->Lookup("N"));
        }
        linestatus->Append(
            status_dict->Lookup(ship > CurrentDate() ? "O" : "F"));
        shipinstruct->Append(rng.NextBounded(instructions.size()));
        shipmode->Append(rng.NextBounded(modes.size()));
        // Raw comment on the fact table itself: the string-placement
        // workloads (Q14/Q19 string variants) LIKE over it, so its match
        // fraction is controlled the same way as o_comment's.
        bool inject = rng.Bernoulli(0.019);
        bool decoy = !inject && rng.Bernoulli(0.05);
        comment_text->Append(MakeComment(&rng, inject, decoy));
      }
    }
    data->num_lineitems = orderkey->size();
    auto lcomment = std::make_unique<Column>("l_comment", ColumnType::Text());
    lcomment->set_text(comment_text);
    lineitem->AddColumn(std::move(orderkey)).CheckOK();
    lineitem->AddColumn(std::move(partkey)).CheckOK();
    lineitem->AddColumn(std::move(suppkey)).CheckOK();
    lineitem->AddColumn(std::move(quantity)).CheckOK();
    lineitem->AddColumn(std::move(extendedprice)).CheckOK();
    lineitem->AddColumn(std::move(discount)).CheckOK();
    lineitem->AddColumn(std::move(tax)).CheckOK();
    lineitem->AddColumn(std::move(returnflag)).CheckOK();
    lineitem->AddColumn(std::move(linestatus)).CheckOK();
    lineitem->AddColumn(std::move(shipdate)).CheckOK();
    lineitem->AddColumn(std::move(commitdate)).CheckOK();
    lineitem->AddColumn(std::move(receiptdate)).CheckOK();
    lineitem->AddColumn(std::move(shipinstruct)).CheckOK();
    lineitem->AddColumn(std::move(shipmode)).CheckOK();
    lineitem->AddColumn(std::move(lcomment)).CheckOK();
  }
  RegisterFk(lineitem.get(), "l_orderkey", *orders, "o_orderkey");
  RegisterFk(lineitem.get(), "l_partkey", *part, "p_partkey");
  RegisterFk(lineitem.get(), "l_suppkey", *supplier, "s_suppkey");

  data->catalog.AddTable(std::move(region)).CheckOK();
  data->catalog.AddTable(std::move(nation)).CheckOK();
  data->catalog.AddTable(std::move(supplier)).CheckOK();
  data->catalog.AddTable(std::move(customer)).CheckOK();
  data->catalog.AddTable(std::move(part)).CheckOK();
  data->catalog.AddTable(std::move(orders)).CheckOK();
  data->catalog.AddTable(std::move(lineitem)).CheckOK();
  return data;
}

}  // namespace swole::tpch
