#ifndef SWOLE_STRATEGIES_COMMON_H_
#define SWOLE_STRATEGIES_COMMON_H_

#include <memory>
#include <vector>

#include "exec/hash_table.h"
#include "exec/kernels.h"
#include "exec/query_context.h"
#include "expr/vector_eval.h"
#include "plan/plan.h"
#include "plan/result.h"
#include "storage/bitmap.h"
#include "storage/table.h"
#include "strategies/strategy.h"

// Shared pipeline machinery for the four strategy engines. Everything here
// is strategy-parameterized only where the paper's strategies genuinely
// differ (branching vs prepass filters, hash vs positional probes,
// prefetching); the rest is the common "library code".

namespace swole::exec {
class SpillManager;
}  // namespace swole::exec

namespace swole::pipeline {

/// Per-engine scratch buffers, sized for one tile.
struct Scratch {
  explicit Scratch(int64_t tile_size);

  int64_t tile;
  std::vector<uint8_t> cmp;    // predicate bytes (0/1)
  std::vector<uint8_t> cmp2;   // secondary mask
  std::vector<int32_t> sel;    // selection vector (tile-local indices)
  std::vector<int32_t> sel2;   // refined selection vector
  std::vector<int64_t> keys;   // group/join keys per lane
  std::vector<int64_t> vals;   // aggregate values per lane
  std::vector<int64_t> vals2;  // second operand / path factors
  std::vector<int64_t> offs;   // fk offset chain work buffer
  std::vector<int64_t> gath;   // gathered column buffer (override eval)
  std::vector<int64_t*> ptrs;  // batched hash-probe payload pointers
};

// ---- Filter evaluation (the strategies' defining difference) ----

/// Evaluates `filter` over tile [start, start+len) into `out_sel` as a
/// selection vector; returns the count.
///  * kDataCentric: branching, conjunct by conjunct (fused typed loops) —
///    the if-statement control dependency of Fig. 1 top.
///  * kHybrid: branch-free prepass into cmp, then no-branch construction.
///  * kRof: prepass + lookup-table construction (Data Blocks style).
/// A null filter selects every lane.
int32_t FilterToSelVec(StrategyKind kind, VectorEvaluator* eval,
                       const Table& table, const Expr* filter, int64_t start,
                       int64_t len, Scratch* scratch, int32_t* out_sel);

/// Evaluates `filter` into a byte mask (predicate pullup form). A null
/// filter yields all ones.
void FilterToMask(VectorEvaluator* eval, const Expr* filter, int64_t start,
                  int64_t len, uint8_t* cmp);

/// Compacts `sel` in place, keeping lanes whose flag is set. `flags[k]`
/// corresponds to sel[k]. No-branch for hybrid/ROF, branching for DC.
int32_t CompactSel(StrategyKind kind, int32_t* sel, const uint8_t* flags,
                   int32_t n);

/// Average physical width (bytes) of the fact columns the plan's
/// aggregation reads (aggregate inputs + group key). 8.0 when nothing is
/// referenced or when kernels::WidenEnabled() forces the legacy widening
/// path — scan-phase trace spans stamp this so traces show the width a
/// query actually ran at.
double AvgFactReadWidthBytes(const Table& fact, const QueryPlan& plan);

// ---- Build-side structures ----

/// Hash-based qualifying key set for a dimension subtree (width-0 table of
/// dim pk values). Used by data-centric, hybrid, and ROF. Builds child key
/// sets recursively; the dim scan uses the strategy's filter style and ROF
/// prefetches its child probes.
/// With num_threads > 1 the dim scan is partitioned into morsels: each
/// worker fills a private partial table, merged via HashTable::MergeAdd
/// in worker order (pk keys are unique, so the merge is a disjoint union).
/// All build-side constructors below take an optional QueryContext: when
/// set, the structures they build charge the memory tracker (per-operator
/// sites "dim_keyset" / "dim_bitmap" / "reverse_keyset" / "reverse_bitmap" /
/// "disjunctive_ht" / "disjunctive_bitmap") and internal parallel scans are
/// governed. A refused charge or fired checkpoint propagates by exception
/// (QueryAbort / ThrownStatus), caught at the engine's Execute boundary.
std::unique_ptr<HashTable> BuildDimKeySet(StrategyKind kind,
                                          const Catalog& catalog,
                                          const DimJoin& dim,
                                          int64_t tile_size,
                                          int num_threads = 1,
                                          exec::QueryContext* ctx = nullptr);

/// Positional qualification bitmap for a dimension subtree (SWOLE §III-D):
/// bit i == 1 iff dim row i passes the filter and all child dims qualify.
/// Sequential scan per worker; with num_threads > 1 workers fill disjoint
/// 64-bit-aligned row ranges of the same bitmap (no merge needed).
PositionalBitmap BuildDimBitmap(const Catalog& catalog, const DimJoin& dim,
                                int64_t tile_size, int num_threads = 1,
                                exec::QueryContext* ctx = nullptr);

/// Hash set of fk *values* for a reverse dim (Q4's EXISTS): the keys are
/// rdim.fk_column values of qualifying rdim rows; the fact probes with its
/// pk value.
std::unique_ptr<HashTable> BuildReverseKeySet(
    StrategyKind kind, const Catalog& catalog, const ReverseDim& rdim,
    int64_t tile_size, int num_threads = 1, exec::QueryContext* ctx = nullptr);

/// Positional bitmap over *fact* offsets for a reverse dim: scanning the
/// rdim table sequentially, OR the predicate result into the bit at the fk
/// offset (multiple rdim rows may map to one fact row). Always sequential:
/// fk offsets land at arbitrary fact positions, so partitioned workers
/// would race on bitmap words.
PositionalBitmap BuildReverseBitmap(const Catalog& catalog,
                                    const ReverseDim& rdim,
                                    int64_t fact_rows, int64_t tile_size,
                                    exec::QueryContext* ctx = nullptr);

/// Hash table for a disjunctive join (Q19): keys are dim pk values of rows
/// matching at least one clause; payload[0] is the bitmask of matching
/// clauses.
std::unique_ptr<HashTable> BuildDisjunctiveHt(
    StrategyKind kind, const Catalog& catalog, const DisjunctiveJoin& dj,
    int64_t tile_size, int num_threads = 1, exec::QueryContext* ctx = nullptr);

/// One qualification bitmap per clause over the dim table (SWOLE, Q19:
/// "builds a total of three bitmaps in a purely sequential scan").
std::vector<PositionalBitmap> BuildDisjunctiveBitmaps(
    const Catalog& catalog, const DisjunctiveJoin& dj, int64_t tile_size,
    int num_threads = 1, exec::QueryContext* ctx = nullptr);

// ---- Column paths (late materialization, §III-D) ----

/// A path pre-resolved to fk index pointers + the target column. When the
/// path carries a LIKE pattern, `like_mask` maps dictionary codes to 0/1
/// flags (built once per execution — "computed on the fly").
struct ResolvedPath {
  std::vector<const FkIndex*> indexes;
  const Column* column = nullptr;
  std::vector<uint8_t> like_mask;
};

ResolvedPath ResolvePath(const Catalog& catalog, const Table& fact,
                         const ColumnPath& path);

/// Gathers path values for selected lanes: out[k] = value at fact row
/// start + sel[k] through the fk chain.
void GatherPathSel(const ResolvedPath& path, int64_t start,
                   const int32_t* sel, int32_t n, Scratch* scratch,
                   int64_t* out);

/// Gathers path values for every lane of the tile (pullup form).
void GatherPathAll(const ResolvedPath& path, int64_t start, int64_t len,
                   Scratch* scratch, int64_t* out);

// ---- Aggregate evaluation ----

/// Recognized fused aggregate shapes (hot loops stay branch-free and typed).
struct AggShape {
  enum class Kind : uint8_t { kCount, kCol, kProduct, kQuotient, kGeneral };
  Kind kind = Kind::kGeneral;
  const Column* a = nullptr;
  const Column* b = nullptr;
};

AggShape DetectAggShape(const Table& fact, const AggSpec& agg);

/// Computes an aggregate's per-lane values for selected lanes into
/// `out[0..n)`. (kCount produces 1s.)
void AggValuesSel(const Table& fact, VectorEvaluator* eval,
                  const AggSpec& agg, const AggShape& shape, int64_t start,
                  const int32_t* sel, int32_t n, Scratch* scratch,
                  int64_t* out);

/// Computes per-lane values for the whole tile (pullup form — wasted work
/// on masked lanes by design).
void AggValuesAll(const Table& fact, VectorEvaluator* eval,
                  const AggSpec& agg, const AggShape& shape, int64_t start,
                  int64_t len, Scratch* scratch, int64_t* out);

/// Accumulates scalar aggregates over a selection vector, using fused
/// kernels where the shape allows.
void AccumulateScalarSel(const Table& fact, VectorEvaluator* eval,
                         const QueryPlan& plan,
                         const std::vector<AggShape>& shapes,
                         const std::vector<ResolvedPath>& factor_paths,
                         int64_t start, const int32_t* sel, int32_t n,
                         Scratch* scratch, int64_t* acc);

/// Accumulates scalar aggregates with value masking (§III-A): every lane is
/// computed, the mask multiplies the contribution. Aggregates with
/// `skip[a] != 0` are left untouched (access merging handles them with
/// fused kernels at the call site).
void AccumulateScalarMasked(const Table& fact, VectorEvaluator* eval,
                            const QueryPlan& plan,
                            const std::vector<AggShape>& shapes,
                            const std::vector<ResolvedPath>& factor_paths,
                            int64_t start, const uint8_t* cmp, int64_t len,
                            Scratch* scratch, int64_t* acc,
                            const std::vector<uint8_t>* skip = nullptr);

// ---- Grouped aggregation ----

/// Wraps the group hash table. Payload layout: [touched, agg0, agg1, ...].
/// `touched` counts contributing fact rows so extraction can drop groups
/// that exist only structurally (groupjoin build keys, VM-masked inserts).
class GroupTable {
 public:
  /// When `ctx` is set, the backing hash table charges the memory tracker
  /// under `site` (default "group_table"); growth past the budget throws
  /// QueryAbort. `site` must have static storage duration.
  GroupTable(const QueryPlan& plan, int64_t expected_keys,
             exec::QueryContext* ctx = nullptr,
             const char* site = "group_table");

  /// Inserts `key` with zeroed aggregates if absent (groupjoin build /
  /// group seeding).
  void SeedKey(int64_t key);

  /// Insert-mode update for compacted lanes (plain group-by).
  /// keys[k] / values[a][k] refer to the k-th selected lane.
  void UpdateSel(const int64_t* keys, const std::vector<int64_t*>& values,
                 int32_t n, bool prefetch);

  /// Insert-mode masked update over all lanes: contribution multiplied by
  /// cmp[j] (value masking: keys are real, values masked).
  void UpdateMaskedValues(const int64_t* keys,
                          const std::vector<int64_t*>& values,
                          const uint8_t* cmp, int64_t len);

  /// Insert-mode update over all lanes with pre-masked keys (key masking:
  /// non-qualifying lanes carry HashTable::kMaskKey; values unmasked).
  void UpdateMaskedKeys(const int64_t* masked_keys,
                        const std::vector<int64_t*>& values, int64_t len);

  /// Join-mode (groupjoin probe): lanes whose key is absent fall through to
  /// the throwaway entry with a zero mask. `extra_mask` may be null.
  void UpdateJoinMasked(const int64_t* keys,
                        const std::vector<int64_t*>& values,
                        const uint8_t* extra_mask, int64_t len);

  /// Join-mode over compacted lanes (hash strategies): lanes with no match
  /// are skipped by branching, matching the traditional probe loop.
  void UpdateJoinSel(const int64_t* keys, const std::vector<int64_t*>& values,
                     int32_t n, bool prefetch);

  /// Deletes `key` (eager aggregation's non-qualifying key removal).
  void EraseKey(int64_t key) { table_.Erase(key); }

  /// Merges a worker-local partial state: payloads added element-wise
  /// ([touched, sums/counts] — all additive). Called in worker order (the
  /// ordered merge); Extract sorts by key, so results are bit-exact with
  /// single-thread runs regardless of steal order. Spill-aware: with a
  /// manager attached, a budget refusal mid-merge spills the destination
  /// and continues from the same source entry (additive payloads make the
  /// fragment split exact; a blind retry of the whole merge would
  /// double-count entries applied before the refusal).
  void MergeFrom(const GroupTable& other);

  /// A worker-local copy with the same key set and zeroed payloads.
  /// Join-mode probes (UpdateJoinMasked/UpdateJoinSel) only Find keys, so
  /// every worker's table must be pre-populated with the seeded build keys.
  std::unique_ptr<GroupTable> CloneKeysOnly() const;

  HashTable& table() { return table_; }
  const HashTable& table() const { return table_; }
  int64_t ht_bytes() const { return table_.ByteSize(); }

  /// Extracts the final result. Drops the throwaway entry; drops untouched
  /// groups unless `keep_untouched` (Q13's left-outer zero counts).
  QueryResult Extract(const QueryPlan& plan, bool keep_untouched) const;

  // ---- Spill-to-disk (DESIGN.md §14) ----

  /// Attaches the query's spill manager: insert-mode updates
  /// (UpdateSel/UpdateMaskedValues/UpdateMaskedKeys) that hit a budget
  /// refusal at this table's site spill the accumulated groups to disk and
  /// retry the batch instead of aborting. Only valid for unseeded
  /// insert-mode tables — join-mode probes (Find-only) and group-seeded
  /// tables need their key set resident, so engines never enable spill for
  /// them. Worker-local tables of one query share one manager.
  /// `soft_cap_bytes` (0 = none) proactively spills this table once its own
  /// footprint crosses the cap, keeping concurrent workers' combined charge
  /// well under the budget. Without it a refused worker can starve: its
  /// retries only succeed after siblings release, and siblings holding
  /// stable tables never charge — so never spill — again.
  void EnableSpill(exec::SpillManager* spill, int64_t soft_cap_bytes = 0) {
    spill_ = spill;
    spill_soft_cap_ = soft_cap_bytes;
  }
  exec::SpillManager* spill() const { return spill_; }

  /// Extracts the final result for a query that spilled: drains this
  /// table's in-memory remainder, then merges every partition — as morsels
  /// on the shared pool — and concatenates in ascending partition order
  /// before the same key sort Extract uses, so the result is bit-identical
  /// to the in-memory path at every thread count. Untouched groups are
  /// always dropped (spill is never enabled for group-seeded plans).
  Result<QueryResult> ExtractSpilled(const QueryPlan& plan, int num_threads);

 private:
  /// Spills every accumulated group to spill_ and restarts the table empty
  /// (the move-assign releases the old charge before the minimum footprint
  /// is re-charged). Throws exec::ThrownStatus on spill I/O failure.
  void SpillAndReset();

  /// Runs one batch update, spilling and retrying once on a budget refusal
  /// when a manager is attached. Safe because every insert-mode update
  /// batch-probes all pointers before the first payload add: a refusal can
  /// only fire during the probe, so no contribution is applied twice.
  template <typename Fn>
  void RunSpillable(Fn&& fn);

  /// Resizes the batched-probe pointer scratch to at least n entries.
  int64_t** ProbeScratch(int64_t n) {
    if (static_cast<int64_t>(probe_.size()) < n) probe_.resize(n);
    return probe_.data();
  }

  const QueryPlan& plan_;
  int num_aggs_;
  exec::QueryContext* ctx_;  // governance context (may be null); CloneKeysOnly
  const char* site_;         // propagates both to worker-local copies
  HashTable table_;
  std::vector<int64_t*> probe_;  // batched-probe payload pointers
  exec::SpillManager* spill_ = nullptr;  // non-owning; null = no spill
  int64_t spill_soft_cap_ = 0;           // per-table quota; 0 = uncapped
};

/// Initializes a scalar accumulator to each aggregate's identity (0 for
/// sum/count, +inf/-inf sentinels for min/max).
void InitScalarAcc(const QueryPlan& plan, int64_t* acc);

/// Ordered merge of a worker's scalar partial into `into`: sum/count add,
/// min/max compare. Workers start at identities, so merging in worker
/// order reproduces the single-thread accumulator bit-exactly.
void MergeScalarAcc(const QueryPlan& plan, int64_t* into,
                    const int64_t* from);

/// Builds the final result for a scalar aggregation.
QueryResult MakeScalarResult(const QueryPlan& plan, const int64_t* acc);

/// Applies Q13's histogram post-step to a grouped result.
QueryResult HistogramOfAgg0(const QueryResult& grouped);

/// Expected group count: plan hint, or a sampled estimate.
int64_t ExpectedGroups(const Catalog& catalog, const QueryPlan& plan);

/// Per-worker group-table quota under spill (GroupTable::EnableSpill): half
/// the context's byte budget split across workers, so the workers' combined
/// steady-state footprint stays near 50% of the limit and growth transients
/// cannot exhaust it. 0 (uncapped) when the context has no byte limit.
int64_t SpillSoftCap(const exec::QueryContext* ctx, int num_threads);

}  // namespace swole::pipeline

#endif  // SWOLE_STRATEGIES_COMMON_H_
