#include "strategies/common.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>
#include <map>
#include <set>

#include "common/logging.h"
#include "cost/estimates.h"
#include "exec/scheduler.h"
#include "exec/spill.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace swole::pipeline {

namespace {

// One count per filter tile, bucketed by execution mode. Host-side only:
// kernels.h stays free of obs so JIT-compiled objects keep their minimal
// link surface.
void CountScanTile() {
  static obs::Counter& native =
      obs::MetricsRegistry::Global().GetCounter("simd.tiles_native");
  static obs::Counter& widened =
      obs::MetricsRegistry::Global().GetCounter("simd.tiles_widened");
  (kernels::WidenEnabled() ? widened : native).Add(1);
}

kernels::CmpOp ToCmpOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kLt:
      return kernels::CmpOp::kLt;
    case BinaryOp::kLe:
      return kernels::CmpOp::kLe;
    case BinaryOp::kGt:
      return kernels::CmpOp::kGt;
    case BinaryOp::kGe:
      return kernels::CmpOp::kGe;
    case BinaryOp::kEq:
      return kernels::CmpOp::kEq;
    case BinaryOp::kNe:
      return kernels::CmpOp::kNe;
    default:
      SWOLE_CHECK(false);
      return kernels::CmpOp::kEq;
  }
}

// True for `col OP lit` / `lit OP col` conjuncts; extracts the pieces.
bool AsSimpleComparison(const Expr& expr, const Table& table,
                        const Column** col, kernels::CmpOp* op,
                        int64_t* lit) {
  if (expr.kind != ExprKind::kBinary || !IsComparisonOp(expr.op)) {
    return false;
  }
  const Expr& lhs = *expr.children[0];
  const Expr& rhs = *expr.children[1];
  if (lhs.kind == ExprKind::kColumnRef && rhs.kind == ExprKind::kLiteral) {
    *col = &table.ColumnRef(lhs.column);
    *op = ToCmpOp(expr.op);
    *lit = rhs.literal;
    return true;
  }
  if (lhs.kind == ExprKind::kLiteral && rhs.kind == ExprKind::kColumnRef) {
    *col = &table.ColumnRef(rhs.column);
    switch (ToCmpOp(expr.op)) {
      case kernels::CmpOp::kLt:
        *op = kernels::CmpOp::kGt;
        break;
      case kernels::CmpOp::kLe:
        *op = kernels::CmpOp::kGe;
        break;
      case kernels::CmpOp::kGt:
        *op = kernels::CmpOp::kLt;
        break;
      case kernels::CmpOp::kGe:
        *op = kernels::CmpOp::kLe;
        break;
      default:
        *op = ToCmpOp(expr.op);
        break;
    }
    *lit = lhs.literal;
    return true;
  }
  return false;
}

void IotaSel(int32_t* sel, int64_t len) {
  for (int64_t j = 0; j < len; ++j) sel[j] = static_cast<int32_t>(j);
}

// Typed gather of a storage column through a selection vector.
void GatherColumnSel(const Column& col, int64_t start, const int32_t* sel,
                     int32_t n, int64_t* out) {
  DispatchPhysical(col.type().physical, [&]<typename T>() {
    kernels::Gather<T>(col.Data<T>() + start, sel, n, out);
  });
}

void WidenColumn(const Column& col, int64_t start, int64_t len,
                 int64_t* out) {
  DispatchPhysical(col.type().physical, [&]<typename T>() {
    kernels::Widen<T>(col.Data<T>() + start, len, out);
  });
}

}  // namespace

Scratch::Scratch(int64_t tile_size)
    : tile(tile_size),
      cmp(tile_size),
      cmp2(tile_size),
      sel(tile_size),
      sel2(tile_size),
      keys(tile_size),
      vals(tile_size),
      vals2(tile_size),
      offs(tile_size),
      gath(tile_size),
      ptrs(tile_size) {}

void FilterToMask(VectorEvaluator* eval, const Expr* filter, int64_t start,
                  int64_t len, uint8_t* cmp) {
  CountScanTile();
  if (filter == nullptr) {
    std::memset(cmp, 1, len);
    return;
  }
  eval->EvalBool(*filter, start, len, cmp);
}

int32_t CompactSel(StrategyKind kind, int32_t* sel, const uint8_t* flags,
                   int32_t n) {
  int32_t m = 0;
  if (kind == StrategyKind::kDataCentric) {
    for (int32_t k = 0; k < n; ++k) {
      if (flags[k]) sel[m++] = sel[k];
    }
  } else {
    for (int32_t k = 0; k < n; ++k) {
      sel[m] = sel[k];
      m += flags[k] != 0;
    }
  }
  return m;
}

int32_t FilterToSelVec(StrategyKind kind, VectorEvaluator* eval,
                       const Table& table, const Expr* filter, int64_t start,
                       int64_t len, Scratch* scratch, int32_t* out_sel) {
  CountScanTile();
  if (filter == nullptr) {
    IotaSel(out_sel, len);
    return static_cast<int32_t>(len);
  }

  if (kind == StrategyKind::kDataCentric) {
    // Branching, conjunct by conjunct (the fused if-chain of Fig. 1 top).
    std::vector<const Expr*> conjuncts = SplitConjuncts(*filter);
    int32_t n = 0;
    bool first = true;
    for (const Expr* conjunct : conjuncts) {
      const Column* col = nullptr;
      kernels::CmpOp op;
      int64_t lit = 0;
      if (AsSimpleComparison(*conjunct, table, &col, &op, &lit)) {
        if (first) {
          DispatchPhysical(col->type().physical, [&]<typename T>() {
            n = kernels::SelectLitBranch<T>(op, col->Data<T>() + start, lit,
                                            out_sel, len);
          });
        } else {
          DispatchPhysical(col->type().physical, [&]<typename T>() {
            n = kernels::RefineLitBranch<T>(op, col->Data<T>() + start, lit,
                                            out_sel, n, scratch->sel2.data());
          });
          std::memcpy(out_sel, scratch->sel2.data(), n * sizeof(int32_t));
        }
      } else {
        // Complex conjunct (LIKE, OR, ...): evaluate its mask, then take a
        // per-tuple branch on it — the data-centric control dependency is
        // preserved even though the mask itself is computed vectorized.
        eval->EvalBool(*conjunct, start, len, scratch->cmp.data());
        if (first) {
          n = kernels::SelVecFromCmpBranch(scratch->cmp.data(), len, out_sel);
        } else {
          n = kernels::RefineMaskBranch(scratch->cmp.data(), out_sel, n,
                                        scratch->sel2.data());
          std::memcpy(out_sel, scratch->sel2.data(), n * sizeof(int32_t));
        }
      }
      first = false;
      if (n == 0) break;
    }
    return n;
  }

  // Hybrid / ROF / SWOLE-fallback: full prepass into cmp, then selection
  // vector construction (no-branch for hybrid, lookup table for ROF).
  eval->EvalBool(*filter, start, len, scratch->cmp.data());
  if (kind == StrategyKind::kRof) {
    return kernels::SelVecFromCmpLut(scratch->cmp.data(), len, out_sel);
  }
  return kernels::SelVecFromCmpNoBranch(scratch->cmp.data(), len, out_sel);
}

std::unique_ptr<HashTable> BuildDimKeySet(StrategyKind kind,
                                          const Catalog& catalog,
                                          const DimJoin& dim,
                                          int64_t tile_size, int num_threads,
                                          exec::QueryContext* ctx) {
  // Children first (bottom-up through the snowflake).
  std::vector<std::unique_ptr<HashTable>> child_sets;
  child_sets.reserve(dim.children.size());
  for (const DimJoin& child : dim.children) {
    child_sets.push_back(
        BuildDimKeySet(kind, catalog, child, tile_size, num_threads, ctx));
  }

  const Table& table = catalog.TableRef(dim.hop.to_table);
  const Column& pk = table.ColumnRef(dim.hop.to_pk_column);

  // Partitioned build: each worker scans its morsels into a private partial
  // table; partials merge in worker order (pk keys are unique across
  // morsels, so the merge is a disjoint union).
  std::vector<std::unique_ptr<HashTable>> partials(num_threads);
  std::vector<std::unique_ptr<VectorEvaluator>> evals(num_threads);
  std::vector<std::unique_ptr<Scratch>> scratches(num_threads);
  for (int w = 0; w < num_threads; ++w) {
    partials[w] = std::make_unique<HashTable>(
        /*payload_width=*/0,
        w == 0 ? table.num_rows() : table.num_rows() / num_threads + 16);
    if (ctx != nullptr) {
      partials[w]->SetMemHook(exec::QueryContext::MemHookThunk, ctx,
                              "dim_keyset");
    }
    evals[w] = std::make_unique<VectorEvaluator>(table, tile_size);
    scratches[w] = std::make_unique<Scratch>(tile_size);
  }

  exec::MorselStats scan_stats = exec::ParallelMorsels(
      ctx, num_threads, table.num_rows(), exec::DefaultMorselSize(tile_size),
      [&](int worker, int64_t range_begin, int64_t range_end) {
        VectorEvaluator& eval = *evals[worker];
        Scratch& scratch = *scratches[worker];
        HashTable& ht = *partials[worker];
        for (int64_t start = range_begin; start < range_end;
             start += tile_size) {
          int64_t len = std::min(tile_size, range_end - start);
          int32_t n = FilterToSelVec(kind, &eval, table, dim.filter.get(),
                                     start, len, &scratch,
                                     scratch.sel.data());

          for (size_t c = 0; c < dim.children.size(); ++c) {
            if (n == 0) break;
            const Column& fk =
                table.ColumnRef(dim.children[c].hop.fk_column);
            GatherColumnSel(fk, start, scratch.sel.data(), n,
                            scratch.keys.data());
            HashTable& child = *child_sets[c];
            child.ContainsBatch(scratch.keys.data(), n, scratch.cmp2.data(),
                                /*prefetch=*/kind == StrategyKind::kRof);
            n = CompactSel(kind, scratch.sel.data(), scratch.cmp2.data(), n);
          }

          GatherColumnSel(pk, start, scratch.sel.data(), n,
                          scratch.keys.data());
          ht.InsertBatch(scratch.keys.data(), n,
                         /*prefetch=*/kind == StrategyKind::kRof);
        }
      });
  exec::ThrowIfError(scan_stats.status);

  for (int w = 1; w < num_threads; ++w) partials[0]->MergeAdd(*partials[w]);
  return std::move(partials[0]);
}

PositionalBitmap BuildDimBitmap(const Catalog& catalog, const DimJoin& dim,
                                int64_t tile_size, int num_threads,
                                exec::QueryContext* ctx) {
  std::vector<PositionalBitmap> child_bitmaps;
  child_bitmaps.reserve(dim.children.size());
  for (const DimJoin& child : dim.children) {
    child_bitmaps.push_back(
        BuildDimBitmap(catalog, child, tile_size, num_threads, ctx));
  }

  const Table& table = catalog.TableRef(dim.hop.to_table);
  PositionalBitmap bitmap(table.num_rows());
  if (ctx != nullptr) {
    bitmap.SetMemHook(exec::QueryContext::MemHookThunk, ctx, "dim_bitmap");
  }

  // Fk offset arrays for the children (sequential reads during the scan).
  std::vector<const uint32_t*> child_offsets;
  for (const DimJoin& child : dim.children) {
    const FkIndex* index =
        table.GetFkIndex(child.hop.fk_column).ValueOr(nullptr);
    SWOLE_CHECK(index != nullptr);
    child_offsets.push_back(index->offsets());
  }

  // Workers fill disjoint row ranges of the shared bitmap. Morsels are
  // 64-row aligned (DefaultMorselSize), so PackBytes never touches a word
  // another worker writes.
  std::vector<std::unique_ptr<VectorEvaluator>> evals(num_threads);
  std::vector<std::unique_ptr<Scratch>> scratches(num_threads);
  for (int w = 0; w < num_threads; ++w) {
    evals[w] = std::make_unique<VectorEvaluator>(table, tile_size);
    scratches[w] = std::make_unique<Scratch>(tile_size);
  }

  exec::MorselStats scan_stats = exec::ParallelMorsels(
      ctx, num_threads, table.num_rows(), exec::DefaultMorselSize(tile_size),
      [&](int worker, int64_t range_begin, int64_t range_end) {
        VectorEvaluator& eval = *evals[worker];
        Scratch& scratch = *scratches[worker];
        for (int64_t start = range_begin; start < range_end;
             start += tile_size) {
          int64_t len = std::min(tile_size, range_end - start);
          FilterToMask(&eval, dim.filter.get(), start, len,
                       scratch.cmp.data());
          for (size_t c = 0; c < child_bitmaps.size(); ++c) {
            const uint32_t* offs = child_offsets[c] + start;
            const PositionalBitmap& child = child_bitmaps[c];
            for (int64_t j = 0; j < len; ++j) {
              scratch.cmp[j] &= static_cast<uint8_t>(child.Test(offs[j]));
            }
          }
          // Unconditional store of the predicate result (§III-D option 1).
          bitmap.PackBytes(start, scratch.cmp.data(), len);
        }
      });
  exec::ThrowIfError(scan_stats.status);
  return bitmap;
}

std::unique_ptr<HashTable> BuildReverseKeySet(StrategyKind kind,
                                              const Catalog& catalog,
                                              const ReverseDim& rdim,
                                              int64_t tile_size,
                                              int num_threads,
                                              exec::QueryContext* ctx) {
  const Table& table = catalog.TableRef(rdim.table);
  const Column& fk = table.ColumnRef(rdim.fk_column);

  // Partitioned build; fk values repeat across morsels, but width-0
  // partials merge as a set union, so the result is order-independent.
  std::vector<std::unique_ptr<HashTable>> partials(num_threads);
  std::vector<std::unique_ptr<VectorEvaluator>> evals(num_threads);
  std::vector<std::unique_ptr<Scratch>> scratches(num_threads);
  for (int w = 0; w < num_threads; ++w) {
    partials[w] = std::make_unique<HashTable>(
        /*payload_width=*/0,
        w == 0 ? table.num_rows() : table.num_rows() / num_threads + 16);
    if (ctx != nullptr) {
      partials[w]->SetMemHook(exec::QueryContext::MemHookThunk, ctx,
                              "reverse_keyset");
    }
    evals[w] = std::make_unique<VectorEvaluator>(table, tile_size);
    scratches[w] = std::make_unique<Scratch>(tile_size);
  }

  exec::MorselStats scan_stats = exec::ParallelMorsels(
      ctx, num_threads, table.num_rows(), exec::DefaultMorselSize(tile_size),
      [&](int worker, int64_t range_begin, int64_t range_end) {
        VectorEvaluator& eval = *evals[worker];
        Scratch& scratch = *scratches[worker];
        HashTable& ht = *partials[worker];
        for (int64_t start = range_begin; start < range_end;
             start += tile_size) {
          int64_t len = std::min(tile_size, range_end - start);
          int32_t n = FilterToSelVec(kind, &eval, table, rdim.filter.get(),
                                     start, len, &scratch,
                                     scratch.sel.data());
          GatherColumnSel(fk, start, scratch.sel.data(), n,
                          scratch.keys.data());
          ht.InsertBatch(scratch.keys.data(), n,
                         /*prefetch=*/kind == StrategyKind::kRof);
        }
      });
  exec::ThrowIfError(scan_stats.status);

  for (int w = 1; w < num_threads; ++w) partials[0]->MergeAdd(*partials[w]);
  return std::move(partials[0]);
}

PositionalBitmap BuildReverseBitmap(const Catalog& catalog,
                                    const ReverseDim& rdim,
                                    int64_t fact_rows, int64_t tile_size,
                                    exec::QueryContext* ctx) {
  const Table& table = catalog.TableRef(rdim.table);
  const FkIndex* index = table.GetFkIndex(rdim.fk_column).ValueOr(nullptr);
  SWOLE_CHECK(index != nullptr);
  SWOLE_CHECK_EQ(index->referenced_size(), fact_rows);
  const uint32_t* offsets = index->offsets();

  VectorEvaluator eval(table, tile_size);
  Scratch scratch(tile_size);
  PositionalBitmap bitmap(fact_rows);
  if (ctx != nullptr) {
    bitmap.SetMemHook(exec::QueryContext::MemHookThunk, ctx,
                      "reverse_bitmap");
  }

  for (int64_t start = 0; start < table.num_rows(); start += tile_size) {
    // This scan is inherently sequential (fk offsets land at arbitrary
    // fact positions), so the per-tile check replaces the morsel-boundary
    // checkpoint the parallel builders get from the scheduler.
    if (ctx != nullptr) exec::ThrowIfError(ctx->CheckLive());
    int64_t len = std::min(tile_size, table.num_rows() - start);
    FilterToMask(&eval, rdim.filter.get(), start, len, scratch.cmp.data());
    const uint32_t* offs = offsets + start;
    for (int64_t j = 0; j < len; ++j) {
      // OR-store: several rdim rows can reference the same fact row.
      bitmap.OrTo(offs[j], scratch.cmp[j] != 0);
    }
  }
  return bitmap;
}

std::unique_ptr<HashTable> BuildDisjunctiveHt(StrategyKind kind,
                                              const Catalog& catalog,
                                              const DisjunctiveJoin& dj,
                                              int64_t tile_size,
                                              int num_threads,
                                              exec::QueryContext* ctx) {
  (void)kind;  // the clause masks are prepass-evaluated for every strategy
  const Table& table = catalog.TableRef(dj.hop.to_table);
  const Column& pk = table.ColumnRef(dj.hop.to_pk_column);

  // Partitioned build: pk keys are unique, so each key (and its clause
  // bitmask payload) lands in exactly one partial and MergeAdd unions them.
  std::vector<std::unique_ptr<HashTable>> partials(num_threads);
  std::vector<std::unique_ptr<VectorEvaluator>> evals(num_threads);
  std::vector<std::unique_ptr<Scratch>> scratches(num_threads);
  std::vector<std::vector<uint8_t>> clause_bits(num_threads);
  for (int w = 0; w < num_threads; ++w) {
    partials[w] = std::make_unique<HashTable>(
        /*payload_width=*/1,
        w == 0 ? table.num_rows() : table.num_rows() / num_threads + 16);
    if (ctx != nullptr) {
      partials[w]->SetMemHook(exec::QueryContext::MemHookThunk, ctx,
                              "disjunctive_ht");
    }
    evals[w] = std::make_unique<VectorEvaluator>(table, tile_size);
    scratches[w] = std::make_unique<Scratch>(tile_size);
    clause_bits[w].resize(tile_size);
  }

  exec::MorselStats scan_stats = exec::ParallelMorsels(
      ctx, num_threads, table.num_rows(), exec::DefaultMorselSize(tile_size),
      [&](int worker, int64_t range_begin, int64_t range_end) {
        VectorEvaluator& eval = *evals[worker];
        Scratch& scratch = *scratches[worker];
        HashTable& ht = *partials[worker];
        uint8_t* bits = clause_bits[worker].data();
        for (int64_t start = range_begin; start < range_end;
             start += tile_size) {
          int64_t len = std::min(tile_size, range_end - start);
          std::memset(bits, 0, len);
          for (size_t c = 0; c < dj.clauses.size(); ++c) {
            FilterToMask(&eval, dj.clauses[c].dim_filter.get(), start, len,
                         scratch.cmp.data());
            for (int64_t j = 0; j < len; ++j) {
              bits[j] |= static_cast<uint8_t>(scratch.cmp[j] << c);
            }
          }
          WidenColumn(pk, start, len, scratch.keys.data());
          // Compact the qualifying lanes, then insert as one batch.
          int32_t m = 0;
          for (int64_t j = 0; j < len; ++j) {
            scratch.keys[m] = scratch.keys[j];
            bits[m] = bits[j];
            m += bits[j] != 0;
          }
          ht.GetOrInsertBatch(scratch.keys.data(), m, scratch.ptrs.data(),
                              /*prefetch=*/false);
          for (int32_t k = 0; k < m; ++k) *scratch.ptrs[k] = bits[k];
        }
      });
  exec::ThrowIfError(scan_stats.status);

  for (int w = 1; w < num_threads; ++w) partials[0]->MergeAdd(*partials[w]);
  return std::move(partials[0]);
}

std::vector<PositionalBitmap> BuildDisjunctiveBitmaps(
    const Catalog& catalog, const DisjunctiveJoin& dj, int64_t tile_size,
    int num_threads, exec::QueryContext* ctx) {
  const Table& table = catalog.TableRef(dj.hop.to_table);

  std::vector<std::unique_ptr<VectorEvaluator>> evals(num_threads);
  std::vector<std::unique_ptr<Scratch>> scratches(num_threads);
  for (int w = 0; w < num_threads; ++w) {
    evals[w] = std::make_unique<VectorEvaluator>(table, tile_size);
    scratches[w] = std::make_unique<Scratch>(tile_size);
  }

  std::vector<PositionalBitmap> bitmaps;
  bitmaps.reserve(dj.clauses.size());
  for (const DisjunctiveJoin::Clause& clause : dj.clauses) {
    PositionalBitmap bitmap(table.num_rows());
    if (ctx != nullptr) {
      bitmap.SetMemHook(exec::QueryContext::MemHookThunk, ctx,
                        "disjunctive_bitmap");
    }
    exec::MorselStats scan_stats = exec::ParallelMorsels(
        ctx, num_threads, table.num_rows(),
        exec::DefaultMorselSize(tile_size),
        [&](int worker, int64_t range_begin, int64_t range_end) {
          VectorEvaluator& eval = *evals[worker];
          Scratch& scratch = *scratches[worker];
          for (int64_t start = range_begin; start < range_end;
               start += tile_size) {
            int64_t len = std::min(tile_size, range_end - start);
            FilterToMask(&eval, clause.dim_filter.get(), start, len,
                         scratch.cmp.data());
            bitmap.PackBytes(start, scratch.cmp.data(), len);
          }
        });
    exec::ThrowIfError(scan_stats.status);
    bitmaps.push_back(std::move(bitmap));
  }
  return bitmaps;
}

ResolvedPath ResolvePath(const Catalog& catalog, const Table& fact,
                         const ColumnPath& path) {
  ResolvedPath resolved;
  const Table* current = &fact;
  for (const Hop& hop : path.hops) {
    const FkIndex* index =
        current->GetFkIndex(hop.fk_column).ValueOr(nullptr);
    SWOLE_CHECK(index != nullptr);
    resolved.indexes.push_back(index);
    current = &catalog.TableRef(hop.to_table);
  }
  resolved.column = &current->ColumnRef(path.column);
  if (!path.like_pattern.empty()) {
    SWOLE_CHECK(resolved.column->dictionary() != nullptr);
    resolved.like_mask =
        resolved.column->dictionary()->LikeMask(path.like_pattern);
  }
  return resolved;
}

void GatherPathSel(const ResolvedPath& path, int64_t start,
                   const int32_t* sel, int32_t n, Scratch* scratch,
                   int64_t* out) {
  int64_t* offs = scratch->offs.data();
  for (int32_t k = 0; k < n; ++k) offs[k] = start + sel[k];
  for (const FkIndex* index : path.indexes) {
    const uint32_t* table_offsets = index->offsets();
    for (int32_t k = 0; k < n; ++k) offs[k] = table_offsets[offs[k]];
  }
  DispatchPhysical(path.column->type().physical, [&]<typename T>() {
    const T* data = path.column->Data<T>();
    for (int32_t k = 0; k < n; ++k) out[k] = static_cast<int64_t>(data[offs[k]]);
  });
  if (!path.like_mask.empty()) {
    for (int32_t k = 0; k < n; ++k) out[k] = path.like_mask[out[k]];
  }
}

void GatherPathAll(const ResolvedPath& path, int64_t start, int64_t len,
                   Scratch* scratch, int64_t* out) {
  int64_t* offs = scratch->offs.data();
  // First hop reads its offset array sequentially (pullup advantage).
  const uint32_t* first = path.indexes[0]->offsets() + start;
  for (int64_t j = 0; j < len; ++j) offs[j] = first[j];
  for (size_t h = 1; h < path.indexes.size(); ++h) {
    const uint32_t* table_offsets = path.indexes[h]->offsets();
    for (int64_t j = 0; j < len; ++j) offs[j] = table_offsets[offs[j]];
  }
  DispatchPhysical(path.column->type().physical, [&]<typename T>() {
    const T* data = path.column->Data<T>();
    for (int64_t j = 0; j < len; ++j) out[j] = static_cast<int64_t>(data[offs[j]]);
  });
  if (!path.like_mask.empty()) {
    for (int64_t j = 0; j < len; ++j) out[j] = path.like_mask[out[j]];
  }
}

AggShape DetectAggShape(const Table& fact, const AggSpec& agg) {
  AggShape shape;
  if (agg.kind == AggKind::kCount) {
    shape.kind = AggShape::Kind::kCount;
    return shape;
  }
  const Expr& e = *agg.expr;
  if (e.kind == ExprKind::kColumnRef) {
    shape.kind = AggShape::Kind::kCol;
    shape.a = &fact.ColumnRef(e.column);
    return shape;
  }
  if (e.kind == ExprKind::kBinary &&
      (e.op == BinaryOp::kMul || e.op == BinaryOp::kDiv) &&
      e.children[0]->kind == ExprKind::kColumnRef &&
      e.children[1]->kind == ExprKind::kColumnRef) {
    shape.kind = e.op == BinaryOp::kMul ? AggShape::Kind::kProduct
                                        : AggShape::Kind::kQuotient;
    shape.a = &fact.ColumnRef(e.children[0]->column);
    shape.b = &fact.ColumnRef(e.children[1]->column);
    return shape;
  }
  shape.kind = AggShape::Kind::kGeneral;
  return shape;
}

namespace {

// Generic (non-fused) per-lane value computation for selected lanes:
// gathers every referenced column and evaluates the expression compacted.
void GeneralValuesSel(const Table& fact, VectorEvaluator* eval,
                      const Expr& expr, int64_t start, const int32_t* sel,
                      int32_t n, int64_t* out) {
  std::vector<std::string> refs = CollectColumnRefs(expr);
  std::vector<std::vector<int64_t>> buffers(refs.size());
  VectorEvaluator::Overrides overrides;
  for (size_t r = 0; r < refs.size(); ++r) {
    buffers[r].resize(n);
    GatherColumnSel(fact.ColumnRef(refs[r]), start, sel, n,
                    buffers[r].data());
    overrides.emplace_back(refs[r], buffers[r].data());
  }
  eval->SetOverrides(&overrides);
  eval->EvalNumeric(expr, 0, n, out);
  eval->SetOverrides(nullptr);
}

}  // namespace

void AggValuesSel(const Table& fact, VectorEvaluator* eval,
                  const AggSpec& agg, const AggShape& shape, int64_t start,
                  const int32_t* sel, int32_t n, Scratch* scratch,
                  int64_t* out) {
  switch (shape.kind) {
    case AggShape::Kind::kCount:
      for (int32_t k = 0; k < n; ++k) out[k] = 1;
      return;
    case AggShape::Kind::kCol:
      GatherColumnSel(*shape.a, start, sel, n, out);
      return;
    case AggShape::Kind::kProduct:
      GatherColumnSel(*shape.a, start, sel, n, out);
      GatherColumnSel(*shape.b, start, sel, n, scratch->vals2.data());
      for (int32_t k = 0; k < n; ++k) out[k] *= scratch->vals2[k];
      return;
    case AggShape::Kind::kQuotient:
      GatherColumnSel(*shape.a, start, sel, n, out);
      GatherColumnSel(*shape.b, start, sel, n, scratch->vals2.data());
      for (int32_t k = 0; k < n; ++k) out[k] /= scratch->vals2[k];
      return;
    case AggShape::Kind::kGeneral:
      GeneralValuesSel(fact, eval, *agg.expr, start, sel, n, out);
      return;
  }
}

void AggValuesAll(const Table& fact, VectorEvaluator* eval,
                  const AggSpec& agg, const AggShape& shape, int64_t start,
                  int64_t len, Scratch* scratch, int64_t* out) {
  (void)fact;  // shapes carry the column pointers already
  switch (shape.kind) {
    case AggShape::Kind::kCount:
      for (int64_t j = 0; j < len; ++j) out[j] = 1;
      return;
    case AggShape::Kind::kCol:
      WidenColumn(*shape.a, start, len, out);
      return;
    case AggShape::Kind::kProduct:
      WidenColumn(*shape.a, start, len, out);
      WidenColumn(*shape.b, start, len, scratch->vals2.data());
      for (int64_t j = 0; j < len; ++j) out[j] *= scratch->vals2[j];
      return;
    case AggShape::Kind::kQuotient:
      WidenColumn(*shape.a, start, len, out);
      WidenColumn(*shape.b, start, len, scratch->vals2.data());
      for (int64_t j = 0; j < len; ++j) out[j] /= scratch->vals2[j];
      return;
    case AggShape::Kind::kGeneral:
      eval->EvalNumeric(*agg.expr, start, len, out);
      return;
  }
}

namespace {

int64_t SumProductSelDispatch(const Column& a, const Column& b, int64_t start,
                              const int32_t* sel, int32_t n, bool quotient) {
  return DispatchPhysical(a.type().physical, [&]<typename TA>() {
    return DispatchPhysical(b.type().physical, [&]<typename TB>() {
      if (quotient) {
        return kernels::SumQuotientSel<TA, TB>(a.Data<TA>() + start,
                                               b.Data<TB>() + start, sel, n);
      }
      return kernels::SumProductSel<TA, TB>(a.Data<TA>() + start,
                                            b.Data<TB>() + start, sel, n);
    });
  });
}

int64_t SumProductMaskedDispatch(const Column& a, const Column& b,
                                 int64_t start, const uint8_t* cmp,
                                 int64_t len, bool quotient) {
  return DispatchPhysical(a.type().physical, [&]<typename TA>() {
    return DispatchPhysical(b.type().physical, [&]<typename TB>() {
      if (quotient) {
        return kernels::SumQuotientMasked<TA, TB>(
            a.Data<TA>() + start, b.Data<TB>() + start, cmp, len);
      }
      return kernels::SumProductMasked<TA, TB>(a.Data<TA>() + start,
                                               b.Data<TB>() + start, cmp,
                                               len);
    });
  });
}

void AccumulateMinMax(AggKind kind, const int64_t* values, int32_t n,
                      int64_t* acc) {
  if (kind == AggKind::kMin) {
    for (int32_t k = 0; k < n; ++k) {
      if (values[k] < *acc) *acc = values[k];
    }
  } else {
    for (int32_t k = 0; k < n; ++k) {
      if (values[k] > *acc) *acc = values[k];
    }
  }
}

}  // namespace

void AccumulateScalarSel(const Table& fact, VectorEvaluator* eval,
                         const QueryPlan& plan,
                         const std::vector<AggShape>& shapes,
                         const std::vector<ResolvedPath>& factor_paths,
                         int64_t start, const int32_t* sel, int32_t n,
                         Scratch* scratch, int64_t* acc) {
  if (n == 0) return;
  for (size_t a = 0; a < plan.aggs.size(); ++a) {
    const AggSpec& agg = plan.aggs[a];
    const AggShape& shape = shapes[a];
    bool has_factor = !agg.path_factor.empty();

    if (!has_factor && agg.kind == AggKind::kSum) {
      // Fused fast paths (the paper's hand-written aggregation loops).
      switch (shape.kind) {
        case AggShape::Kind::kCol:
          acc[a] += DispatchPhysical(
              shape.a->type().physical, [&]<typename T>() {
                return kernels::SumSel<T>(shape.a->Data<T>() + start, sel, n);
              });
          continue;
        case AggShape::Kind::kProduct:
          acc[a] += SumProductSelDispatch(*shape.a, *shape.b, start, sel, n,
                                          /*quotient=*/false);
          continue;
        case AggShape::Kind::kQuotient:
          acc[a] += SumProductSelDispatch(*shape.a, *shape.b, start, sel, n,
                                          /*quotient=*/true);
          continue;
        default:
          break;
      }
    }
    if (!has_factor && agg.kind == AggKind::kCount) {
      acc[a] += n;
      continue;
    }

    AggValuesSel(fact, eval, agg, shape, start, sel, n, scratch,
                 scratch->vals.data());
    if (has_factor) {
      const ResolvedPath& path = factor_paths[a];
      GatherPathSel(path, start, sel, n, scratch, scratch->vals2.data());
      for (int32_t k = 0; k < n; ++k) {
        scratch->vals[k] *= scratch->vals2[k];
      }
    }
    switch (agg.kind) {
      case AggKind::kSum:
      case AggKind::kCount:
        for (int32_t k = 0; k < n; ++k) acc[a] += scratch->vals[k];
        break;
      case AggKind::kMin:
      case AggKind::kMax:
        AccumulateMinMax(agg.kind, scratch->vals.data(), n, &acc[a]);
        break;
    }
  }
}

void AccumulateScalarMasked(const Table& fact, VectorEvaluator* eval,
                            const QueryPlan& plan,
                            const std::vector<AggShape>& shapes,
                            const std::vector<ResolvedPath>& factor_paths,
                            int64_t start, const uint8_t* cmp, int64_t len,
                            Scratch* scratch, int64_t* acc,
                            const std::vector<uint8_t>* skip) {
  for (size_t a = 0; a < plan.aggs.size(); ++a) {
    if (skip != nullptr && (*skip)[a]) continue;
    const AggSpec& agg = plan.aggs[a];
    const AggShape& shape = shapes[a];
    bool has_factor = !agg.path_factor.empty();

    if (!has_factor && agg.kind == AggKind::kSum) {
      switch (shape.kind) {
        case AggShape::Kind::kCol:
          acc[a] += DispatchPhysical(
              shape.a->type().physical, [&]<typename T>() {
                return kernels::SumMasked<T>(shape.a->Data<T>() + start, cmp,
                                             len);
              });
          continue;
        case AggShape::Kind::kProduct:
          acc[a] += SumProductMaskedDispatch(*shape.a, *shape.b, start, cmp,
                                             len, /*quotient=*/false);
          continue;
        case AggShape::Kind::kQuotient:
          acc[a] += SumProductMaskedDispatch(*shape.a, *shape.b, start, cmp,
                                             len, /*quotient=*/true);
          continue;
        default:
          break;
      }
    }
    if (!has_factor && agg.kind == AggKind::kCount) {
      acc[a] += kernels::CountBytes(cmp, len);
      continue;
    }

    // General masked path: compute every lane (wasted work by design).
    AggValuesAll(fact, eval, agg, shape, start, len, scratch,
                 scratch->vals.data());
    if (has_factor) {
      GatherPathAll(factor_paths[a], start, len, scratch,
                    scratch->vals2.data());
      for (int64_t j = 0; j < len; ++j) {
        scratch->vals[j] *= scratch->vals2[j];
      }
    }
    switch (agg.kind) {
      case AggKind::kSum:
        for (int64_t j = 0; j < len; ++j) acc[a] += scratch->vals[j] * cmp[j];
        break;
      case AggKind::kCount:
        for (int64_t j = 0; j < len; ++j) acc[a] += cmp[j];
        break;
      case AggKind::kMin:
        // Masked lanes contribute the identity (branch-free select).
        for (int64_t j = 0; j < len; ++j) {
          int64_t m = -static_cast<int64_t>(cmp[j]);
          int64_t v = (scratch->vals[j] & m) |
                      (QueryResult::kMinIdentity & ~m);
          if (v < acc[a]) acc[a] = v;
        }
        break;
      case AggKind::kMax:
        for (int64_t j = 0; j < len; ++j) {
          int64_t m = -static_cast<int64_t>(cmp[j]);
          int64_t v = (scratch->vals[j] & m) |
                      (QueryResult::kMaxIdentity & ~m);
          if (v > acc[a]) acc[a] = v;
        }
        break;
    }
  }
}

GroupTable::GroupTable(const QueryPlan& plan, int64_t expected_keys,
                       exec::QueryContext* ctx, const char* site)
    : plan_(plan),
      num_aggs_(static_cast<int>(plan.aggs.size())),
      ctx_(ctx),
      site_(site),
      table_(/*payload_width=*/1 + static_cast<int>(plan.aggs.size()),
             std::max<int64_t>(expected_keys, 16)) {
  if (ctx_ != nullptr) {
    table_.SetMemHook(exec::QueryContext::MemHookThunk, ctx_, site_);
  }
  // Always provision the throwaway entry for masked updates (§III-B).
  table_.GetOrInsert(HashTable::kMaskKey);
}

void GroupTable::SeedKey(int64_t key) { table_.GetOrInsert(key); }

// Budget refusals during a spill retry can be transient: sibling workers
// charge the same QueryContext and release their tables the next time they
// are themselves refused. A handful of retries rides out that contention;
// refusals past the bound mean the budget genuinely cannot hold the
// working set of one batch.
constexpr int kSpillRetries = 4;

int64_t SpillSoftCap(const exec::QueryContext* ctx, int num_threads) {
  if (ctx == nullptr) return 0;
  const int64_t limit = ctx->limit_bytes();
  if (limit <= 0) return 0;
  return std::max<int64_t>(1, limit / (2 * std::max(num_threads, 1)));
}

void GroupTable::SpillAndReset() {
  SWOLE_DCHECK(spill_ != nullptr);
  // A budget refusal that routed here left a pending-abort record. Clear it
  // before attempting the spill: we are handling that refusal, so any
  // exception from this point on (including an I/O failure during the spill
  // itself) must classify on its own, not as the recovered budget abort.
  if (ctx_ != nullptr) ctx_->ClearRecoveredBudgetAbort();
  exec::ThrowIfError(spill_->SpillTable(table_, HashTable::kMaskKey));
  // Move-assigning a fresh table releases the full old charge through the
  // hook before the minimum footprint is charged back.
  table_ = HashTable(1 + num_aggs_, 16);
  if (ctx_ != nullptr) {
    table_.SetMemHook(exec::QueryContext::MemHookThunk, ctx_, site_);
    ctx_->CountSpill();
  }
  table_.GetOrInsert(HashTable::kMaskKey);
}

template <typename Fn>
void GroupTable::RunSpillable(Fn&& fn) {
  if (spill_ == nullptr) {
    fn();
    return;
  }
  for (int attempt = 0;; ++attempt) {
    try {
      fn();
      break;
    } catch (const QueryAbort& abort) {
      // Only a budget refusal is recoverable by spilling. Deadline and
      // cancellation aborts propagate. Retries are bounded: a refusal can
      // come from sibling workers transiently holding the budget (they
      // release on their own next refused charge), so a single retry gives
      // up too early — but kSpillRetries consecutive refusals of a batch
      // probing an emptied table means the budget itself cannot hold one
      // batch, and spilling again would loop forever without progress.
      if (abort.reason != AbortReason::kBudget ||
          attempt >= kSpillRetries) {
        throw;
      }
      SpillAndReset();
      // Back off before re-applying: the refusal usually means a sibling
      // worker's table is mid-batch at its transient peak, and its
      // proactive spill releases the budget within its batch window —
      // immediate retries would all land inside that window and give up.
      if (attempt > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  }
  // Proactive spill at the per-worker soft quota: siblings sharing the
  // budget stay refusal-free, so no worker ever depends on another
  // releasing memory to make progress. Outside the retry loop — a throw
  // from here must propagate, never re-run the (already applied) batch.
  if (spill_soft_cap_ > 0 && table_.ByteSize() > spill_soft_cap_) {
    SpillAndReset();
  }
}

void GroupTable::UpdateSel(const int64_t* keys,
                           const std::vector<int64_t*>& values, int32_t n,
                           bool prefetch) {
  RunSpillable([&] {
    int64_t** p = ProbeScratch(n);
    table_.GetOrInsertBatch(keys, n, p, prefetch);
    for (int32_t k = 0; k < n; ++k) {
      p[k][0] += 1;
      for (int a = 0; a < num_aggs_; ++a) p[k][1 + a] += values[a][k];
    }
  });
}

void GroupTable::UpdateMaskedValues(const int64_t* keys,
                                    const std::vector<int64_t*>& values,
                                    const uint8_t* cmp, int64_t len) {
  RunSpillable([&] {
    const int32_t n = static_cast<int32_t>(len);
    int64_t** p = ProbeScratch(n);
    table_.GetOrInsertBatch(keys, n, p, /*prefetch=*/true);
    for (int32_t j = 0; j < n; ++j) {
      int64_t m = cmp[j];
      p[j][0] += m;
      for (int a = 0; a < num_aggs_; ++a) p[j][1 + a] += values[a][j] * m;
    }
  });
}

void GroupTable::UpdateMaskedKeys(const int64_t* masked_keys,
                                  const std::vector<int64_t*>& values,
                                  int64_t len) {
  RunSpillable([&] {
    const int32_t n = static_cast<int32_t>(len);
    int64_t** p = ProbeScratch(n);
    table_.GetOrInsertBatch(masked_keys, n, p, /*prefetch=*/true);
    for (int32_t j = 0; j < n; ++j) {
      p[j][0] += 1;
      for (int a = 0; a < num_aggs_; ++a) p[j][1 + a] += values[a][j];
    }
  });
}

void GroupTable::MergeFrom(const GroupTable& other) {
  if (spill_ == nullptr) {
    table_.MergeAdd(other.table_);
    return;
  }
  // Per-entry merge: GetOrInsert charges before inserting and the payload
  // adds cannot throw, so each source entry is applied exactly once even
  // when a refusal spills the destination mid-merge. The loop continues
  // from the same entry, never restarts the merge.
  const int width = 1 + num_aggs_;
  other.table_.ForEach([&](int64_t key, const int64_t* payload) {
    for (int attempt = 0;; ++attempt) {
      try {
        int64_t* dst = table_.GetOrInsert(key);
        for (int w = 0; w < width; ++w) dst[w] += payload[w];
        return;
      } catch (const QueryAbort& abort) {
        if (abort.reason != AbortReason::kBudget ||
            attempt >= kSpillRetries) {
          throw;
        }
        SpillAndReset();
        if (attempt > 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      }
    }
  });
}

void GroupTable::UpdateJoinMasked(const int64_t* keys,
                                  const std::vector<int64_t*>& values,
                                  const uint8_t* extra_mask, int64_t len) {
  int64_t* throwaway = table_.Find(HashTable::kMaskKey);
  SWOLE_DCHECK(throwaway != nullptr);
  const int32_t n = static_cast<int32_t>(len);
  int64_t** ptrs = ProbeScratch(n);
  table_.FindBatch(keys, n, ptrs, /*prefetch=*/true);
  for (int32_t j = 0; j < n; ++j) {
    int64_t found = ptrs[j] != nullptr ? 1 : 0;
    int64_t* p = found ? ptrs[j] : throwaway;  // branch-free-ish select
    int64_t m = found & (extra_mask != nullptr ? extra_mask[j] : 1);
    p[0] += m;
    for (int a = 0; a < num_aggs_; ++a) p[1 + a] += values[a][j] * m;
  }
}

void GroupTable::UpdateJoinSel(const int64_t* keys,
                               const std::vector<int64_t*>& values,
                               int32_t n, bool prefetch) {
  int64_t** ptrs = ProbeScratch(n);
  table_.FindBatch(keys, n, ptrs, prefetch);
  for (int32_t k = 0; k < n; ++k) {
    int64_t* p = ptrs[k];
    if (p == nullptr) continue;  // traditional probe miss: skip (branch)
    p[0] += 1;
    for (int a = 0; a < num_aggs_; ++a) p[1 + a] += values[a][k];
  }
}

std::unique_ptr<GroupTable> GroupTable::CloneKeysOnly() const {
  auto clone = std::make_unique<GroupTable>(plan_, table_.size(), ctx_, site_);
  table_.ForEach([&](int64_t key, const int64_t*) {
    clone->table_.GetOrInsert(key);
  });
  return clone;
}

QueryResult GroupTable::Extract(const QueryPlan& plan,
                                bool keep_untouched) const {
  QueryResult result;
  result.grouped = true;
  result.num_aggs = num_aggs_;
  for (const AggSpec& agg : plan.aggs) result.agg_names.push_back(agg.name);
  result.group_keys.reserve(table_.size());
  result.group_aggs.reserve(table_.size() * num_aggs_);
  table_.ForEach([&](int64_t key, const int64_t* payload) {
    if (key == HashTable::kMaskKey) return;
    if (!keep_untouched && payload[0] == 0) return;
    result.AddGroup(key, payload + 1);
  });
  result.SortGroups();
  if (plan.histogram_of_agg0) return HistogramOfAgg0(result);
  return result;
}

Result<QueryResult> GroupTable::ExtractSpilled(const QueryPlan& plan,
                                               int num_threads) {
  SWOLE_DCHECK(spill_ != nullptr);
  obs::QueryTrace* trace = ctx_ != nullptr ? ctx_->trace() : nullptr;
  obs::SpanScope span(trace, "spill-merge");

  // Drain the in-memory remainder so every group lives wholly in the
  // partition its hash prefix names, then release the table's charge — the
  // merge phase wants the budget headroom for its rebuild tables.
  SWOLE_RETURN_NOT_OK(spill_->SpillTable(table_, HashTable::kMaskKey));
  table_ = HashTable(1 + num_aggs_, 16);
  if (ctx_ != nullptr) {
    table_.SetMemHook(exec::QueryContext::MemHookThunk, ctx_, site_);
  }
  table_.GetOrInsert(HashTable::kMaskKey);
  SWOLE_RETURN_NOT_OK(spill_->Flush());

  const int width = 1 + num_aggs_;
  const int partitions = spill_->num_partitions();
  std::vector<std::vector<int64_t>> partition_rows(partitions);
  const exec::SpillMergeFn merge_fn = [width](int64_t* dst,
                                              const int64_t* src) {
    for (int w = 0; w < width; ++w) dst[w] += src[w];
  };
  // One morsel per partition on the shared pool. Partitions hold disjoint
  // key sets, so rebuild order doesn't matter; the ascending concatenation
  // below plus the same key sort Extract uses keeps the result
  // bit-identical at every thread count.
  exec::MorselStats stats = exec::ParallelMorsels(
      ctx_, num_threads, partitions, /*morsel_size=*/1,
      [&](int /*worker*/, int64_t begin, int64_t end) {
        for (int64_t p = begin; p < end; ++p) {
          exec::ThrowIfError(spill_->MergePartition(
              static_cast<int>(p), merge_fn, &partition_rows[p]));
        }
      });
  SWOLE_RETURN_NOT_OK(stats.status);

  QueryResult result;
  result.grouped = true;
  result.num_aggs = num_aggs_;
  for (const AggSpec& agg : plan.aggs) result.agg_names.push_back(agg.name);
  int64_t merged_groups = 0;
  const size_t stride = 1 + static_cast<size_t>(width);
  for (int p = 0; p < partitions; ++p) {
    const std::vector<int64_t>& rows = partition_rows[p];
    for (size_t i = 0; i < rows.size(); i += stride) {
      const int64_t* row = rows.data() + i;  // [key, touched, agg0, ...]
      // Untouched entries are batch-probe artifacts with zero
      // contributions — dropped exactly as the in-memory Extract does.
      if (row[1] == 0) continue;
      result.AddGroup(row[0], row + 2);
    }
    merged_groups += static_cast<int64_t>(rows.size() / stride);
  }
  result.SortGroups();
  span.Attr("spill.bytes_written", spill_->bytes_written());
  span.Attr("spill.partitions", static_cast<int64_t>(partitions));
  span.Attr("spill.max_depth", spill_->max_depth_reached());
  span.Attr("spill.events", spill_->spill_events());
  span.Attr("spill.merged_groups", merged_groups);
  if (plan.histogram_of_agg0) return HistogramOfAgg0(result);
  return result;
}

void InitScalarAcc(const QueryPlan& plan, int64_t* acc) {
  for (size_t a = 0; a < plan.aggs.size(); ++a) {
    switch (plan.aggs[a].kind) {
      case AggKind::kMin:
        acc[a] = QueryResult::kMinIdentity;
        break;
      case AggKind::kMax:
        acc[a] = QueryResult::kMaxIdentity;
        break;
      default:
        acc[a] = 0;
        break;
    }
  }
}

void MergeScalarAcc(const QueryPlan& plan, int64_t* into,
                    const int64_t* from) {
  for (size_t a = 0; a < plan.aggs.size(); ++a) {
    switch (plan.aggs[a].kind) {
      case AggKind::kSum:
      case AggKind::kCount:
        into[a] += from[a];
        break;
      case AggKind::kMin:
        if (from[a] < into[a]) into[a] = from[a];
        break;
      case AggKind::kMax:
        if (from[a] > into[a]) into[a] = from[a];
        break;
    }
  }
}

QueryResult MakeScalarResult(const QueryPlan& plan, const int64_t* acc) {
  QueryResult result;
  result.grouped = false;
  for (size_t a = 0; a < plan.aggs.size(); ++a) {
    result.agg_names.push_back(plan.aggs[a].name);
    result.scalar.push_back(acc[a]);
  }
  return result;
}

QueryResult HistogramOfAgg0(const QueryResult& grouped) {
  std::map<int64_t, int64_t> histogram;
  for (int64_t i = 0; i < grouped.NumGroups(); ++i) {
    histogram[grouped.GroupAgg(i, 0)]++;
  }
  QueryResult result;
  result.grouped = true;
  result.num_aggs = 1;
  result.agg_names = {"group_count"};
  for (const auto& [value, count] : histogram) {
    result.AddGroup(value, &count);
  }
  return result;
}

double AvgFactReadWidthBytes(const Table& fact, const QueryPlan& plan) {
  if (kernels::WidenEnabled()) return 8.0;
  std::set<std::string> refs;
  for (const AggSpec& agg : plan.aggs) {
    if (agg.expr == nullptr) continue;
    for (const std::string& ref : CollectColumnRefs(*agg.expr)) {
      refs.insert(ref);
    }
  }
  if (plan.group_by != nullptr) {
    for (const std::string& ref : CollectColumnRefs(*plan.group_by)) {
      refs.insert(ref);
    }
  }
  if (refs.empty()) return 8.0;
  int64_t bytes = 0;
  for (const std::string& ref : refs) {
    bytes += PhysicalTypeSize(fact.ColumnRef(ref).type().physical);
  }
  return static_cast<double>(bytes) / static_cast<double>(refs.size());
}

int64_t ExpectedGroups(const Catalog& catalog, const QueryPlan& plan) {
  if (plan.group_cardinality_hint > 0) return plan.group_cardinality_hint;
  if (plan.group_by != nullptr) {
    return EstimateDistinctCount(catalog.TableRef(plan.fact_table),
                                 *plan.group_by);
  }
  return 1024;
}

}  // namespace swole::pipeline
