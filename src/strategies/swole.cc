#include "strategies/swole.h"

#include <algorithm>
#include <cstring>
#include <mutex>
#include <optional>
#include <set>

#include "common/bit_util.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "cost/estimates.h"
#include "cost/feedback.h"
#include "cost/string_placement.h"
#include "exec/admission.h"
#include "exec/scheduler.h"
#include "exec/spill.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace swole {

using pipeline::AggShape;
using pipeline::GroupTable;
using pipeline::ResolvedPath;
using pipeline::Scratch;

namespace {

kernels::CmpOp ToCmpOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kLt:
      return kernels::CmpOp::kLt;
    case BinaryOp::kLe:
      return kernels::CmpOp::kLe;
    case BinaryOp::kGt:
      return kernels::CmpOp::kGt;
    case BinaryOp::kGe:
      return kernels::CmpOp::kGe;
    case BinaryOp::kEq:
      return kernels::CmpOp::kEq;
    default:
      return kernels::CmpOp::kNe;
  }
}

// Estimated byte size of a group hash table with `keys` entries.
int64_t EstimateGroupHtBytes(int64_t keys, int num_aggs) {
  int64_t capacity = static_cast<int64_t>(bit_util::NextPowerOfTwo(
      static_cast<uint64_t>(std::max<int64_t>(16, keys * 10 / 7 + 1))));
  return capacity * 8 + capacity * 8 * (1 + num_aggs);
}

// Qualification selectivity of a dim subtree: product of the filter
// selectivities down the snowflake.
double EstimateDimTreeSelectivity(const Catalog& catalog,
                                  const DimJoin& dim) {
  double sel = 1.0;
  if (dim.filter != nullptr) {
    sel *= EstimateSelectivity(catalog.TableRef(dim.hop.to_table),
                               *dim.filter);
  }
  for (const DimJoin& child : dim.children) {
    sel *= EstimateDimTreeSelectivity(catalog, child);
  }
  return sel;
}

int FindGroupjoinDim(const QueryPlan& plan) {
  if (plan.group_by == nullptr ||
      plan.group_by->kind != ExprKind::kColumnRef) {
    return -1;
  }
  for (size_t d = 0; d < plan.dims.size(); ++d) {
    if (plan.dims[d].hop.fk_column == plan.group_by->column) {
      return static_cast<int>(d);
    }
  }
  return -1;
}

// An access-merging opportunity (§III-C): aggregate `agg_index` references
// `column`, which also appears in the simple fact-filter conjunct
// `conjunct_index` as `column OP literal`. The conjunct is folded into the
// first read of the column (tmp = col * (col OP lit)).
struct MergeCandidate {
  size_t agg_index;
  const Column* column = nullptr;
  kernels::CmpOp op;
  int64_t literal = 0;
  size_t conjunct_index = 0;
  bool column_is_lhs = false;  // position of the merged column in a product
};

// Masked key production over an int64 key buffer (key masking over keys
// produced by paths or key expressions).
void MaskKeysInPlace(int64_t* keys, const uint8_t* cmp, int64_t len) {
  for (int64_t j = 0; j < len; ++j) {
    int64_t m = -static_cast<int64_t>(cmp[j]);
    keys[j] = (keys[j] & m) | (HashTable::kMaskKey & ~m);
  }
}

}  // namespace

// Everything the cost model decided up front about how to run the plan.
struct SwoleStrategy::PlanAnalysis {
  double sigma_fact = 1.0;
  double sigma_total = 1.0;
  double comp_ns = 0;
  int64_t expected_groups = 0;
  int64_t group_ht_bytes = 0;
  AggChoice agg_choice = AggChoice::kValueMasking;
  bool use_ea = false;
  int groupjoin_dim = -1;
  int num_read_columns = 1;
  double avg_read_width = 8.0;  // bytes; 8.0 when forced to widen
  // Feedback inputs (cost/feedback.h): the chosen technique's total model
  // cost and its expected LLC misses per fact tuple (0 = cache-resident).
  double predicted_ns = 0;
  double expected_misses_per_tuple = 0;
  // Cost-model decision inputs, rendered once for the trace (obs/trace.h).
  std::string agg_cost_detail;
  std::string ea_cost_detail;
  std::vector<MergeCandidate> merges;
  std::vector<uint8_t> merged_aggs;  // per agg: handled by merging?
  ExprPtr residual_filter;           // fact filter minus merged conjuncts
  // Raw-string predicate placement (cost/string_placement.h): the scan
  // evaluates str_split.scan_filter; pulled conjuncts run after every
  // other qualification. Identical results either way (AND commutes).
  StringPredSplit str_split;
};

// Memoized analysis + the decision trace it produced. refit_epoch records
// which cost-feedback state the analysis was made under: -1 = refit not
// applied (the profile was the static one), otherwise the feedback epoch.
struct SwoleStrategy::CachedAnalysis {
  PlanAnalysis analysis;
  SwoleDecisions decisions;
  int64_t refit_epoch = -1;
  // The SWOLE_STR_PLACEMENT mode the analysis was made under: tests and
  // benches flip the env between queries on the same plan object, so a
  // mode change must invalidate the memoized split.
  StringPlacementMode str_mode = StringPlacementMode::kAuto;
  // Name of the plan the entry was computed for. The cache is keyed by
  // plan address, and a destroyed plan's address can be reused by a
  // different plan (e.g. two temporaries in a row); the analysis holds
  // pointers into the analyzed plan's expression tree, so following a
  // stale entry would chase dangling pointers. A name mismatch retires
  // the entry instead.
  std::string plan_name;
};

SwoleStrategy::SwoleStrategy(const Catalog& catalog, StrategyOptions options)
    : catalog_(catalog),
      options_(options),
      profile_(options.cost_profile != nullptr ? *options.cost_profile
                                               : CostProfile::Default()) {}

SwoleStrategy::~SwoleStrategy() = default;

Result<QueryResult> SwoleStrategy::Execute(const QueryPlan& plan) {
  SWOLE_RETURN_NOT_OK(ValidatePlan(plan, catalog_));

  // Admission before any work: a shed query costs the server nothing but
  // the rejection Status (exec/admission.h). Nested calls — the
  // degradation retry below re-enters Execute on this thread — ride the
  // outer scope's slot.
  exec::AdmissionScope admission(options_.tenant);
  SWOLE_RETURN_NOT_OK(admission.status());

  // Bound-once handles: per-call GetCounter takes the registry mutex,
  // which concurrent driver threads would contend on every query.
  static obs::Counter& queries =
      obs::MetricsRegistry::Global().GetCounter("queries.swole");
  static obs::Histogram& latency =
      obs::MetricsRegistry::Global().GetHistogram("query.latency_us.swole");
  queries.Add(1);
  Timer timer;
  const CachedAnalysis& cached = Analyze(plan);
  const PlanAnalysis& analysis = cached.analysis;
  exec::GovernanceScope governance(options_.query_ctx,
                                   options_.mem_limit_bytes,
                                   options_.deadline_ms, options_.trace);
  exec::QueryContext* qctx = governance.ctx();
  if (qctx != nullptr && options_.priority != 0) {
    qctx->set_priority(options_.priority);
  }
  if (qctx != nullptr && options_.spill >= 0) {
    qctx->set_spill_enabled(options_.spill == 1);
  }
  obs::QueryTrace* trace = qctx != nullptr ? qctx->trace() : nullptr;

  // Estimate side of the cost-feedback observation; the owning
  // GovernanceScope completes it with elapsed time + hardware counts on
  // teardown. The mid-query re-decision below upgrades selectivity from
  // estimate to observed when the build phase measured it.
  if (qctx != nullptr && cost::RefitEnabled()) {
    cost::QueryObservation* record = qctx->MutableObservation();
    record->rows =
        static_cast<double>(catalog_.TableRef(plan.fact_table).num_rows());
    record->selectivity = analysis.sigma_total;
    record->num_read_columns = analysis.num_read_columns;
    record->avg_read_width = analysis.avg_read_width;
    record->group_ht_bytes = analysis.group_ht_bytes;
    record->predicted_ns = analysis.predicted_ns;
    record->expected_misses_per_tuple = analysis.expected_misses_per_tuple;
    record->technique =
        std::string("swole/") + cached.decisions.aggregation;
  }

  Result<QueryResult> result = [&]() -> Result<QueryResult> {
    // The strategy decision and the cost-model numbers it was made on go
    // onto the engine span, so a trace explains *why* this plan ran as
    // VM/KM/EA/groupjoin, not just that it did. Attrs read the immutable
    // cache entry, not decisions_, so concurrent Executes don't race.
    obs::SpanScope engine_span(trace, "swole");
    if (trace != nullptr) {
      engine_span.Attr("agg", cached.decisions.aggregation);
      if (analysis.use_ea) engine_span.Attr("ea", int64_t{1});
      if (analysis.groupjoin_dim >= 0) {
        engine_span.Attr("groupjoin_dim",
                         static_cast<int64_t>(analysis.groupjoin_dim));
      }
      if (cached.decisions.used_access_merging) {
        engine_span.Attr("access_merging", int64_t{1});
      }
      if (analysis.str_split.workload.rows > 0) {
        engine_span.Attr("cost.str", analysis.str_split.rationale);
      }
      if (!analysis.agg_cost_detail.empty()) {
        engine_span.Attr("cost.agg", analysis.agg_cost_detail);
      }
      if (!analysis.ea_cost_detail.empty()) {
        engine_span.Attr("cost.ea", analysis.ea_cost_detail);
      }
    }
    try {
      if (analysis.use_ea) {
        return ExecuteEagerAggregation(plan, analysis, qctx);
      }
      if (analysis.groupjoin_dim >= 0) {
        return ExecuteGroupjoin(plan, analysis, qctx);
      }
      return ExecuteGeneral(plan, analysis, qctx);
    } catch (...) {
      return exec::StatusFromCurrentException(qctx);
    }
  }();

  // Graceful degradation: when the pullup plan breached its memory budget,
  // retry once under the memory-lean data-centric strategy against the
  // SAME context. The pullup build structures were destroyed during
  // unwinding (their trackers released), so the retry starts from the
  // query's baseline consumption. Deadline and cancellation are terminal —
  // retrying cannot make the clock go backwards.
  if (!result.ok() && qctx != nullptr &&
      result.status().code() == StatusCode::kBudgetExceeded) {
    SWOLE_LOG(WARNING) << "swole plan breached its memory budget ("
                       << result.status().message()
                       << "); degrading to data-centric";
    qctx->CountDegradation();
    {
      std::lock_guard<std::mutex> lock(analysis_mu_);
      decisions_.degraded_to_data_centric = true;
      decisions_.rationale +=
          " [budget breach: degraded to data-centric strategy]";
    }
    StrategyOptions lean = options_;
    lean.query_ctx = qctx;  // same budget, deadline, and cancellation token
    std::unique_ptr<Strategy> fallback =
        MakeStrategy(StrategyKind::kDataCentric, catalog_, lean);
    result = fallback->Execute(plan);
  }

  // Stamped after the degradation retry: the histogram carries what the
  // CLIENT observed for this query, not just the first attempt — under
  // concurrency that difference is exactly the tail the p99 must show.
  latency.Record(timer.ElapsedNanos() / 1000);
  return result;
}

const SwoleStrategy::CachedAnalysis& SwoleStrategy::Analyze(
    const QueryPlan& plan) {
  // One lock over lookup + compute + publish: analyses are cheap relative
  // to execution and memoized per plan object, so serializing them is not
  // a serving bottleneck; entries are heap-stable once published, so the
  // returned reference outlives the lock.
  std::lock_guard<std::mutex> lock(analysis_mu_);
  // Under SWOLE_COST_REFIT=apply the decisions are made on the refitted
  // profile, and a memoized entry is only valid for the feedback epoch it
  // was computed under — a materially moved fit re-analyzes the plan. The
  // superseded entry is retired, not destroyed: concurrent Executes may
  // still hold references into it.
  const bool refit_apply =
      cost::CurrentRefitMode() == cost::RefitMode::kApply;
  const int64_t refit_epoch =
      refit_apply ? cost::CostFeedback::Global().epoch() : -1;
  const StringPlacementMode str_mode = StringPlacementModeFromEnv();
  auto cache_it = analysis_cache_.find(&plan);
  if (cache_it != analysis_cache_.end() &&
      cache_it->second->refit_epoch == refit_epoch &&
      cache_it->second->str_mode == str_mode &&
      cache_it->second->plan_name == plan.name) {
    decisions_ = cache_it->second->decisions;
    return *cache_it->second;
  }
  if (cache_it != analysis_cache_.end()) {
    retired_analyses_.push_back(std::move(cache_it->second));
    analysis_cache_.erase(cache_it);
  }
  const CostProfile profile =
      refit_apply ? cost::CostFeedback::Global().Refitted(profile_)
                  : profile_;

  const Table& fact = catalog_.TableRef(plan.fact_table);
  PlanAnalysis analysis;
  decisions_ = SwoleDecisions{};

  // ---- Estimates ----
  if (plan.fact_filter != nullptr) {
    analysis.sigma_fact = EstimateSelectivity(fact, *plan.fact_filter);
  }
  analysis.sigma_total = analysis.sigma_fact;
  for (const DimJoin& dim : plan.dims) {
    analysis.sigma_total *= EstimateDimTreeSelectivity(catalog_, dim);
  }
  for (const ReverseDim& rdim : plan.reverse_dims) {
    if (rdim.filter != nullptr) {
      analysis.sigma_total *= std::min(
          1.0, EstimateSelectivity(catalog_.TableRef(rdim.table),
                                   *rdim.filter) *
                   static_cast<double>(
                       catalog_.TableRef(rdim.table).num_rows()) /
                   std::max<double>(1.0, fact.num_rows()));
    }
  }

  std::set<std::string> agg_columns;
  for (const AggSpec& agg : plan.aggs) {
    if (agg.expr != nullptr) {
      analysis.comp_ns += EstimateComputeNs(profile, *agg.expr);
      for (const std::string& ref : CollectColumnRefs(*agg.expr)) {
        agg_columns.insert(ref);
      }
    }
  }
  if (plan.group_by != nullptr) {
    for (const std::string& ref : CollectColumnRefs(*plan.group_by)) {
      agg_columns.insert(ref);
    }
  }
  analysis.num_read_columns =
      std::max<int>(1, static_cast<int>(agg_columns.size()));
  // Average physical width of the aggregation inputs: kernels execute at
  // native width, so sequential bandwidth terms scale with it. Under the
  // SWOLE_WIDEN escape hatch every read inflates to int64 first, so the
  // model sees the legacy 8-byte traffic again.
  if (!agg_columns.empty() && !kernels::WidenEnabled()) {
    int64_t bytes = 0;
    for (const std::string& ref : agg_columns) {
      bytes += PhysicalTypeSize(fact.ColumnRef(ref).type().physical);
    }
    analysis.avg_read_width =
        static_cast<double>(bytes) / static_cast<double>(agg_columns.size());
  }

  if (plan.HasGroupBy()) {
    analysis.expected_groups = pipeline::ExpectedGroups(catalog_, plan);
    analysis.group_ht_bytes = EstimateGroupHtBytes(
        analysis.expected_groups, static_cast<int>(plan.aggs.size()));
  }

  // ---- String predicate placement (access-aware pullup for raw text) ----
  analysis.str_split = DecideStringPlacement(plan, catalog_, profile,
                                             str_mode);
  if (analysis.str_split.workload.rows > 0) {
    decisions_.used_string_pullup = analysis.str_split.pull;
    decisions_.rationale += "[" + analysis.str_split.rationale + "] ";
  }

  analysis.groupjoin_dim = FindGroupjoinDim(plan);

  // ---- Eager aggregation decision (§III-E) ----
  bool ea_eligible = options_.enable_eager_aggregation &&
                     analysis.groupjoin_dim == 0 && plan.dims.size() == 1 &&
                     plan.reverse_dims.empty() &&
                     !plan.disjunctive.has_value() && plan.paths.empty() &&
                     !plan.group_seed.has_value();
  if (ea_eligible) {
    const DimJoin& dim = plan.dims[0];
    const Table& dim_table = catalog_.TableRef(dim.hop.to_table);
    double sigma_s = EstimateDimTreeSelectivity(catalog_, dim);
    GroupjoinWorkload w;
    w.r_rows = static_cast<double>(fact.num_rows());
    w.s_rows = static_cast<double>(dim_table.num_rows());
    w.sigma_r = analysis.sigma_fact;
    w.sigma_s = sigma_s;
    w.match_prob = sigma_s * analysis.sigma_fact;
    w.comp_ns = analysis.comp_ns;
    // Groupjoin table: qualifying dim keys only. EA table: every dim key.
    w.ht_bytes = EstimateGroupHtBytes(
        std::max<int64_t>(16, static_cast<int64_t>(
                                  sigma_s * dim_table.num_rows())),
        static_cast<int>(plan.aggs.size()));
    w.ea_ht_bytes = EstimateGroupHtBytes(
        dim_table.num_rows(), static_cast<int>(plan.aggs.size()));
    w.num_read_columns = analysis.num_read_columns;
    w.avg_read_width = analysis.avg_read_width;
    analysis.use_ea = options_.force_eager_aggregation ||
                      ChooseEagerAggregation(profile, w);
    decisions_.rationale += StringFormat(
        "EA=%.0fms vs groupjoin=%.0fms; ",
        EagerAggregationCost(profile, w) / 1e6,
        GroupjoinCost(profile, w) / 1e6);
    analysis.ea_cost_detail = DescribeEagerDecision(profile, w);
  }

  // ---- Aggregation technique decision (§III-A/B) ----
  AggWorkload w;
  w.rows = static_cast<double>(fact.num_rows());
  w.selectivity = analysis.sigma_total;
  w.comp_ns = analysis.comp_ns;
  w.group_ht_bytes = analysis.group_ht_bytes;
  w.num_read_columns = analysis.num_read_columns;
  w.avg_read_width = analysis.avg_read_width;
  switch (options_.force_agg) {
    case StrategyOptions::ForceAgg::kValueMasking:
      analysis.agg_choice = AggChoice::kValueMasking;
      break;
    case StrategyOptions::ForceAgg::kKeyMasking:
      analysis.agg_choice = AggChoice::kKeyMasking;
      break;
    case StrategyOptions::ForceAgg::kHybridFallback:
      analysis.agg_choice = AggChoice::kHybridFallback;
      break;
    case StrategyOptions::ForceAgg::kAuto: {
      analysis.agg_choice = ChooseAggregation(profile, w);
      if (analysis.agg_choice == AggChoice::kValueMasking &&
          !options_.enable_value_masking) {
        analysis.agg_choice = AggChoice::kHybridFallback;
      }
      if (analysis.agg_choice == AggChoice::kKeyMasking &&
          !options_.enable_key_masking) {
        analysis.agg_choice = options_.enable_value_masking
                                  ? AggChoice::kValueMasking
                                  : AggChoice::kHybridFallback;
      }
      break;
    }
  }
  decisions_.aggregation = AggChoiceName(analysis.agg_choice);
  analysis.agg_cost_detail = DescribeAggDecision(profile, w);
  // Feedback inputs for the chosen technique: its own cost formula is the
  // prediction the refit compares wall time against, and its expected LLC
  // miss traffic (≈ one lookup per aggregated tuple once the group table
  // spills past L3) is what the memory-scale fit compares misses against.
  switch (analysis.agg_choice) {
    case AggChoice::kHybridFallback:
      analysis.predicted_ns = HybridCost(profile, w);
      break;
    case AggChoice::kValueMasking:
      analysis.predicted_ns = ValueMaskingCost(profile, w);
      break;
    case AggChoice::kKeyMasking:
      analysis.predicted_ns = KeyMaskingCost(profile, w);
      break;
  }
  if (w.group_ht_bytes > profile.l3_bytes) {
    analysis.expected_misses_per_tuple =
        analysis.agg_choice == AggChoice::kValueMasking ? 1.0
                                                        : w.selectivity;
  }
  if (refit_apply && refit_epoch > 0) {
    decisions_.rationale += StringFormat(
        "[refit epoch=%lld bw=%.2f mem=%.2f] ",
        static_cast<long long>(refit_epoch),
        cost::CostFeedback::Global().bandwidth_scale(),
        cost::CostFeedback::Global().memory_scale());
  }
  decisions_.used_eager_aggregation = analysis.use_ea;
  decisions_.used_positional_bitmaps =
      options_.enable_positional_bitmaps &&
      (!plan.dims.empty() || !plan.reverse_dims.empty() ||
       plan.disjunctive.has_value());
  decisions_.rationale += StringFormat(
      "sigma=%.3f comp=%.1fns groups=%lld ht=%lldB", analysis.sigma_total,
      analysis.comp_ns, static_cast<long long>(analysis.expected_groups),
      static_cast<long long>(analysis.group_ht_bytes));

  // ---- Access merging analysis (§III-C) ----
  // Folding a conjunct into an aggregate's first read removes it from the
  // shared mask, so it is only sound when every aggregate absorbs it —
  // i.e. single-aggregate plans (the paper's Fig. 5 / Q6 shape).
  analysis.merged_aggs.assign(plan.aggs.size(), 0);
  // Merging analyzes the scan-side filter: pulled string conjuncts are not
  // in the shared mask, so they are not candidates (and kLike conjuncts
  // never fold into a first read anyway — only simple comparisons do).
  const Expr* merge_source = analysis.str_split.scan_filter.get();
  if (options_.enable_access_merging && merge_source != nullptr &&
      !plan.HasGroupBy() && plan.aggs.size() == 1 &&
      analysis.agg_choice == AggChoice::kValueMasking) {
    std::vector<const Expr*> conjuncts = SplitConjuncts(*merge_source);
    std::vector<uint8_t> conjunct_used(conjuncts.size(), 0);
    for (size_t a = 0; a < plan.aggs.size(); ++a) {
      const AggSpec& agg = plan.aggs[a];
      if (agg.kind != AggKind::kSum || !agg.path_factor.empty()) continue;
      AggShape shape = pipeline::DetectAggShape(fact, agg);
      if (shape.kind != AggShape::Kind::kCol &&
          shape.kind != AggShape::Kind::kProduct) {
        continue;
      }
      for (size_t c = 0; c < conjuncts.size(); ++c) {
        if (conjunct_used[c]) continue;
        const Expr& e = *conjuncts[c];
        if (e.kind != ExprKind::kBinary || !IsComparisonOp(e.op)) continue;
        const Expr& lhs = *e.children[0];
        const Expr& rhs = *e.children[1];
        if (lhs.kind != ExprKind::kColumnRef ||
            rhs.kind != ExprKind::kLiteral) {
          continue;
        }
        const Column* col = &fact.ColumnRef(lhs.column);
        MergeCandidate merge;
        merge.agg_index = a;
        merge.column = col;
        merge.op = ToCmpOp(e.op);
        merge.literal = rhs.literal;
        merge.conjunct_index = c;
        if (shape.kind == AggShape::Kind::kCol && shape.a == col) {
          merge.column_is_lhs = true;
        } else if (shape.kind == AggShape::Kind::kProduct &&
                   shape.a == col) {
          merge.column_is_lhs = true;
        } else if (shape.kind == AggShape::Kind::kProduct &&
                   shape.b == col) {
          merge.column_is_lhs = false;
        } else {
          continue;
        }
        // A product may merge both factors (Fig. 10b "reuses both"): at
        // most one merge per factor position.
        bool duplicate = false;
        for (const MergeCandidate& existing : analysis.merges) {
          if (existing.agg_index == a &&
              existing.column_is_lhs == merge.column_is_lhs) {
            duplicate = true;
            break;
          }
        }
        if (duplicate) continue;
        analysis.merges.push_back(merge);
        analysis.merged_aggs[a] = 1;
        conjunct_used[c] = 1;
        if (shape.kind == AggShape::Kind::kCol) break;
      }
    }
    if (!analysis.merges.empty()) {
      decisions_.used_access_merging = true;
      // Residual filter: conjuncts not folded into a merge.
      ExprPtr residual;
      for (size_t c = 0; c < conjuncts.size(); ++c) {
        if (conjunct_used[c]) continue;
        residual = residual == nullptr
                       ? conjuncts[c]->Clone()
                       : And(std::move(residual), conjuncts[c]->Clone());
      }
      analysis.residual_filter = std::move(residual);
    }
  }

  auto cached = std::make_unique<CachedAnalysis>();
  cached->analysis = std::move(analysis);
  cached->decisions = decisions_;
  cached->refit_epoch = refit_epoch;
  cached->str_mode = str_mode;
  cached->plan_name = plan.name;
  cache_it = analysis_cache_.emplace(&plan, std::move(cached)).first;
  return *cache_it->second;
}

// ---------------------------------------------------------------------------
// Mid-query re-decision (adaptive pullup): between the build and probe
// phases, the dim qualification structures just materialized turn the
// plan's estimated selectivity / group-table size into measurements — so
// the VM/KM/hybrid choice can be re-run on facts before any probe work is
// committed. Safe by construction: every technique is bit-identical
// (DESIGN.md §7), so an overturned choice changes performance, never
// results; and the observed inputs (bitmap popcounts, seeded table bytes)
// are thread-count invariant, so the re-decision is deterministic at any
// parallelism. In observe mode the would-be decision is only recorded; in
// apply mode it takes effect.
// ---------------------------------------------------------------------------

AggChoice SwoleStrategy::ReDecideAggregation(const PlanAnalysis& analysis,
                                             double fact_rows,
                                             double observed_sigma,
                                             int64_t observed_ht_bytes,
                                             exec::QueryContext* qctx,
                                             const char* where) {
  static obs::Counter& considered = obs::MetricsRegistry::Global().GetCounter(
      "cost.redecision.considered");
  static obs::Counter& overturned = obs::MetricsRegistry::Global().GetCounter(
      "cost.redecision.overturned");
  considered.Add(1);

  // Rebuild the workload the up-front decision used, with observations
  // substituted where the build phase produced them.
  AggWorkload w;
  w.rows = fact_rows;
  w.selectivity = observed_sigma;
  w.comp_ns = analysis.comp_ns;
  w.group_ht_bytes =
      observed_ht_bytes > 0 ? observed_ht_bytes : analysis.group_ht_bytes;
  w.num_read_columns = analysis.num_read_columns;
  w.avg_read_width = analysis.avg_read_width;

  const bool apply = cost::CurrentRefitMode() == cost::RefitMode::kApply;
  const CostProfile profile =
      apply ? cost::CostFeedback::Global().Refitted(profile_) : profile_;

  AggChoice rechoice = ChooseAggregation(profile, w);
  // Mirror Analyze's ablation gates.
  if (rechoice == AggChoice::kValueMasking &&
      !options_.enable_value_masking) {
    rechoice = AggChoice::kHybridFallback;
  }
  if (rechoice == AggChoice::kKeyMasking && !options_.enable_key_masking) {
    rechoice = options_.enable_value_masking ? AggChoice::kValueMasking
                                             : AggChoice::kHybridFallback;
  }

  obs::QueryTrace* trace = qctx != nullptr ? qctx->trace() : nullptr;
  if (trace != nullptr) {
    obs::QueryTrace::Span* root = trace->root();
    trace->AddAttr(root, "redecision.point", where);
    trace->AddAttr(root, "redecision.sigma_obs",
                   StringFormat("%.4f", observed_sigma));
    if (observed_ht_bytes > 0) {
      trace->AddAttr(root, "redecision.ht_bytes", observed_ht_bytes);
    }
    trace->AddAttr(root, "redecision.agg", AggChoiceName(rechoice));
    trace->AddAttr(root, "redecision.applied",
                   int64_t{apply && rechoice != analysis.agg_choice ? 1 : 0});
  }
  if (qctx != nullptr && qctx->has_observation()) {
    qctx->MutableObservation()->selectivity = observed_sigma;
  }

  if (rechoice == analysis.agg_choice) return analysis.agg_choice;
  overturned.Add(1);
  if (!apply) return analysis.agg_choice;  // observe mode: record only
  {
    std::lock_guard<std::mutex> lock(analysis_mu_);
    decisions_.aggregation = AggChoiceName(rechoice);
    decisions_.rationale += StringFormat(
        " [mid-query re-decision at %s: %s -> %s, sigma_obs=%.4f]", where,
        AggChoiceName(analysis.agg_choice), AggChoiceName(rechoice),
        observed_sigma);
  }
  return rechoice;
}

// ---------------------------------------------------------------------------
// General path: masked (VM/KM) or selection-vector (fallback) probe pipeline
// with positional bitmaps for every join.
// ---------------------------------------------------------------------------

Result<QueryResult> SwoleStrategy::ExecuteGeneral(
    const QueryPlan& plan, const PlanAnalysis& analysis,
    exec::QueryContext* qctx) {
  const int64_t tile = options_.tile_size;
  const int num_threads = exec::ResolveNumThreads(options_.num_threads);
  const Table& fact = catalog_.TableRef(plan.fact_table);
  const bool use_bitmaps = options_.enable_positional_bitmaps;

  // Phase spans are recorded by this (driving) thread only, so the tree
  // shape is thread-count invariant; worker rollups become attributes.
  obs::QueryTrace* trace = qctx != nullptr ? qctx->trace() : nullptr;
  std::optional<obs::SpanScope> phase;
  phase.emplace(trace, "build");

  // ---- Build phase ----
  std::vector<PositionalBitmap> dim_bitmaps;
  std::vector<CompressedBitmap> dim_compressed;
  std::vector<std::unique_ptr<HashTable>> dim_sets;
  std::vector<const uint32_t*> dim_offsets;  // fact's fk offsets per dim
  const bool compressed = options_.use_compressed_bitmaps;
  for (const DimJoin& dim : plan.dims) {
    if (use_bitmaps) {
      dim_bitmaps.push_back(
          pipeline::BuildDimBitmap(catalog_, dim, tile, num_threads, qctx));
      if (compressed) {
        dim_compressed.push_back(
            CompressedBitmap::Compress(dim_bitmaps.back()));
      }
      dim_sets.push_back(nullptr);
    } else {
      dim_bitmaps.emplace_back();
      dim_sets.push_back(pipeline::BuildDimKeySet(
          StrategyKind::kSwole, catalog_, dim, tile, num_threads, qctx));
    }
    const FkIndex* index =
        fact.GetFkIndex(dim.hop.fk_column).ValueOr(nullptr);
    SWOLE_CHECK(index != nullptr);
    dim_offsets.push_back(index->offsets());
  }

  std::vector<PositionalBitmap> reverse_bitmaps;
  for (const ReverseDim& rdim : plan.reverse_dims) {
    reverse_bitmaps.push_back(pipeline::BuildReverseBitmap(
        catalog_, rdim, fact.num_rows(), tile, qctx));
  }

  std::vector<PositionalBitmap> clause_bitmaps;
  const uint32_t* disjunctive_offsets = nullptr;
  if (plan.disjunctive.has_value()) {
    clause_bitmaps = pipeline::BuildDisjunctiveBitmaps(
        catalog_, *plan.disjunctive, tile, num_threads, qctx);
    const FkIndex* index =
        fact.GetFkIndex(plan.disjunctive->hop.fk_column).ValueOr(nullptr);
    SWOLE_CHECK(index != nullptr);
    disjunctive_offsets = index->offsets();
  }

  std::vector<AggShape> shapes;
  std::vector<ResolvedPath> factor_paths(plan.aggs.size());
  for (size_t a = 0; a < plan.aggs.size(); ++a) {
    shapes.push_back(pipeline::DetectAggShape(fact, plan.aggs[a]));
    if (!plan.aggs[a].path_factor.empty()) {
      factor_paths[a] = pipeline::ResolvePath(
          catalog_, fact, *plan.FindPath(plan.aggs[a].path_factor));
    }
  }
  ResolvedPath group_path;
  if (!plan.group_by_path.empty()) {
    group_path = pipeline::ResolvePath(catalog_, fact,
                                       *plan.FindPath(plan.group_by_path));
  }
  std::vector<std::pair<ResolvedPath, ResolvedPath>> equality_paths;
  for (const PathEquality& eq : plan.path_equalities) {
    equality_paths.emplace_back(
        pipeline::ResolvePath(catalog_, fact, *plan.FindPath(eq.left_alias)),
        pipeline::ResolvePath(catalog_, fact,
                              *plan.FindPath(eq.right_alias)));
  }

  // Spill engagement (DESIGN.md §14): ExecuteGeneral's group updates are
  // all insert-mode (UpdateSel / UpdateMaskedValues / UpdateMaskedKeys),
  // so any unseeded group table may spill; group-seeded plans need their
  // key set resident. One manager is shared by every worker-local table.
  std::unique_ptr<exec::SpillManager> spill;
  std::unique_ptr<GroupTable> groups;
  const bool spillable = plan.HasGroupBy() &&
                         !plan.group_seed.has_value() && qctx != nullptr &&
                         qctx->spill_enabled();
  if (plan.HasGroupBy()) {
    // Under spill, skip the cardinality-sized pre-allocation: charging the
    // full estimate upfront would breach the budget before a single row is
    // aggregated. The table starts minimal and grows (or spills) on demand.
    groups = std::make_unique<GroupTable>(
        plan, spillable ? 16 : analysis.expected_groups, qctx);
    if (plan.group_seed.has_value()) {
      const Table& seed_table = catalog_.TableRef(plan.group_seed->table);
      const Column& key_col =
          seed_table.ColumnRef(plan.group_seed->key_column);
      for (int64_t row = 0; row < seed_table.num_rows(); ++row) {
        groups->SeedKey(key_col.ValueAt(row));
      }
    } else if (spillable) {
      exec::SpillConfig spill_cfg = exec::SpillConfig::FromEnv();
      spill_cfg.enabled = true;
      spill = std::make_unique<exec::SpillManager>(
          spill_cfg, 1 + static_cast<int>(plan.aggs.size()), qctx);
      groups->EnableSpill(spill.get(),
                          pipeline::SpillSoftCap(qctx, num_threads));
    }
  }

  // ---- Mid-query re-decision point ----
  // The dim and reverse bitmaps just built carry exact qualification
  // popcounts; substitute them for the estimated factors and re-choose the
  // technique before the probe commits. Only when the choice was the cost
  // model's to make (kAuto) and feedback is collecting.
  AggChoice live_choice = analysis.agg_choice;
  if (cost::RefitEnabled() &&
      options_.force_agg == StrategyOptions::ForceAgg::kAuto && use_bitmaps &&
      (!dim_bitmaps.empty() || !reverse_bitmaps.empty())) {
    double observed_sigma = analysis.sigma_fact;
    for (const PositionalBitmap& bm : dim_bitmaps) {
      if (bm.num_bits() > 0) {
        observed_sigma *= static_cast<double>(bm.CountSetBits()) /
                          static_cast<double>(bm.num_bits());
      }
    }
    for (const PositionalBitmap& bm : reverse_bitmaps) {
      if (bm.num_bits() > 0) {
        observed_sigma *= static_cast<double>(bm.CountSetBits()) /
                          static_cast<double>(bm.num_bits());
      }
    }
    live_choice = ReDecideAggregation(
        analysis, static_cast<double>(fact.num_rows()), observed_sigma,
        groups != nullptr ? groups->ht_bytes() : 0, qctx, "general-probe");
  }

  // Access merging was analyzed under the up-front VM choice; if the
  // re-decision moved away from VM the merged path is simply not taken
  // (scalar VM is the only consumer), and the mask filter must be the full
  // scan-side filter again. Pulled string conjuncts are in neither: they
  // run after every other qualification below.
  const bool merging = decisions_.used_access_merging &&
                       live_choice == AggChoice::kValueMasking;
  const Expr* mask_filter = merging ? analysis.residual_filter.get()
                                    : analysis.str_split.scan_filter.get();

  const bool mask_mode = live_choice != AggChoice::kHybridFallback;

  // Per-worker probe context: every scheduler participant aggregates into
  // a private state; worker 0 owns the primary (seeded) group table and
  // the others merge into it in worker order after the scan.
  struct ProbeCtx {
    VectorEvaluator eval;
    Scratch scratch;
    std::vector<std::vector<int64_t>> value_storage;
    std::vector<int64_t*> value_ptrs;
    std::vector<int64_t> scalar_acc;
    std::vector<std::vector<int64_t>> merge_tmp;
    std::vector<uint8_t> disjunctive_mask;
    std::vector<uint8_t> clause_fact_mask;
    std::unique_ptr<GroupTable> owned_groups;
    GroupTable* groups = nullptr;

    ProbeCtx(const Table& fact_table, int64_t tile_size)
        : eval(fact_table, tile_size),
          scratch(tile_size),
          disjunctive_mask(tile_size),
          clause_fact_mask(tile_size) {}
  };

  std::vector<std::unique_ptr<ProbeCtx>> ctxs(num_threads);
  for (int w = 0; w < num_threads; ++w) {
    auto ctx = std::make_unique<ProbeCtx>(fact, tile);
    ctx->value_storage.resize(plan.aggs.size());
    ctx->value_ptrs.resize(plan.aggs.size());
    for (size_t a = 0; a < plan.aggs.size(); ++a) {
      ctx->value_storage[a].resize(tile);
      ctx->value_ptrs[a] = ctx->value_storage[a].data();
    }
    ctx->scalar_acc.resize(plan.aggs.size());
    pipeline::InitScalarAcc(plan, ctx->scalar_acc.data());
    ctx->merge_tmp.resize(analysis.merges.size());
    for (auto& buffer : ctx->merge_tmp) buffer.resize(tile);
    if (plan.HasGroupBy()) {
      if (w == 0) {
        ctx->groups = groups.get();
      } else {
        // Insert-mode updates: workers start empty (the ctor provisions
        // the throwaway entry); seeds stay in the primary only.
        ctx->owned_groups = std::make_unique<GroupTable>(
            plan, spill != nullptr ? 16 : analysis.expected_groups, qctx);
        if (spill != nullptr) {
          ctx->owned_groups->EnableSpill(
              spill.get(), pipeline::SpillSoftCap(qctx, num_threads));
        }
        ctx->groups = ctx->owned_groups.get();
      }
    }
    ctxs[w] = std::move(ctx);
  }

  auto process_tile = [&](ProbeCtx& ctx, int64_t start, int64_t len) {
    VectorEvaluator& eval = ctx.eval;
    Scratch& scratch = ctx.scratch;
    std::vector<int64_t*>& value_ptrs = ctx.value_ptrs;
    std::vector<int64_t>& scalar_acc = ctx.scalar_acc;
    std::vector<std::vector<int64_t>>& merge_tmp = ctx.merge_tmp;
    std::vector<uint8_t>& disjunctive_mask = ctx.disjunctive_mask;
    std::vector<uint8_t>& clause_fact_mask = ctx.clause_fact_mask;
    GroupTable* groups = ctx.groups;

    if (mask_mode) {
      // ---- Predicate-pullup pipeline: everything stays a byte mask ----
      uint8_t* cmp = scratch.cmp.data();
      pipeline::FilterToMask(&eval, mask_filter, start, len, cmp);

      for (size_t d = 0; d < plan.dims.size(); ++d) {
        if (use_bitmaps && compressed) {
          const uint32_t* offs = dim_offsets[d] + start;
          const CompressedBitmap& bm = dim_compressed[d];
          for (int64_t j = 0; j < len; ++j) {
            cmp[j] &= static_cast<uint8_t>(bm.Test(offs[j]));
          }
        } else if (use_bitmaps) {
          const uint32_t* offs = dim_offsets[d] + start;
          const PositionalBitmap& bm = dim_bitmaps[d];
          for (int64_t j = 0; j < len; ++j) {
            cmp[j] &= static_cast<uint8_t>(bm.Test(offs[j]));
          }
        } else {
          const Column& fk = fact.ColumnRef(plan.dims[d].hop.fk_column);
          DispatchPhysical(fk.type().physical, [&]<typename T>() {
            kernels::Widen<T>(fk.Data<T>() + start, len, scratch.keys.data());
          });
          dim_sets[d]->ContainsBatch(scratch.keys.data(),
                                     static_cast<int32_t>(len),
                                     scratch.cmp2.data(), /*prefetch=*/false);
          kernels::AndBytes(cmp, scratch.cmp2.data(), len);
        }
      }

      for (size_t r = 0; r < reverse_bitmaps.size(); ++r) {
        const PositionalBitmap& bm = reverse_bitmaps[r];
        for (int64_t j = 0; j < len; ++j) {
          cmp[j] &= static_cast<uint8_t>(bm.Test(start + j));
        }
      }

      if (plan.disjunctive.has_value()) {
        std::memset(disjunctive_mask.data(), 0, len);
        const uint32_t* offs = disjunctive_offsets + start;
        for (size_t c = 0; c < clause_bitmaps.size(); ++c) {
          pipeline::FilterToMask(
              &eval, plan.disjunctive->clauses[c].fact_filter.get(), start,
              len, clause_fact_mask.data());
          const PositionalBitmap& bm = clause_bitmaps[c];
          for (int64_t j = 0; j < len; ++j) {
            disjunctive_mask[j] |= static_cast<uint8_t>(
                clause_fact_mask[j] & bm.Test(offs[j]));
          }
        }
        kernels::AndBytes(cmp, disjunctive_mask.data(), len);
      }

      for (const auto& [left, right] : equality_paths) {
        pipeline::GatherPathAll(left, start, len, &scratch,
                                scratch.vals.data());
        pipeline::GatherPathAll(right, start, len, &scratch,
                                scratch.vals2.data());
        for (int64_t j = 0; j < len; ++j) {
          cmp[j] &= static_cast<uint8_t>(scratch.vals[j] ==
                                         scratch.vals2[j]);
        }
      }

      // Pulled raw-string predicates run last: only lanes that survived
      // every other qualification pay the arena touch + match (the guarded
      // kernel skips zero lanes), which is exactly the access pattern the
      // pulled-cost formula prices.
      for (const Expr* pred : analysis.str_split.pulled) {
        const Column& col = fact.ColumnRef(pred->children[0]->column);
        const StringColumn& text = *col.text();
        kernels::StrLikeTileAnd(text.bytes(), text.offsets(), start, len,
                                eval.CompiledLikeFor(*pred), cmp);
      }

      if (!plan.HasGroupBy()) {
        // Access-merged aggregates: tmp = col * (col OP lit), one read of
        // the shared attribute (Fig. 5 bottom). A product can merge one or
        // both factors (Fig. 10a/10b).
        for (size_t m = 0; m < analysis.merges.size(); ++m) {
          const MergeCandidate& merge = analysis.merges[m];
          DispatchPhysical(
              merge.column->type().physical, [&]<typename T>() {
                kernels::CompareLitMaskIntoTmp<T>(
                    merge.op, merge.column->Data<T>() + start, merge.literal,
                    len, merge_tmp[m].data());
              });
        }
        for (size_t a = 0; a < plan.aggs.size(); ++a) {
          if (!analysis.merged_aggs[a]) continue;
          const MergeCandidate* lhs_merge = nullptr;
          const MergeCandidate* rhs_merge = nullptr;
          const int64_t* lhs_tmp = nullptr;
          const int64_t* rhs_tmp = nullptr;
          for (size_t m = 0; m < analysis.merges.size(); ++m) {
            if (analysis.merges[m].agg_index != a) continue;
            if (analysis.merges[m].column_is_lhs) {
              lhs_merge = &analysis.merges[m];
              lhs_tmp = merge_tmp[m].data();
            } else {
              rhs_merge = &analysis.merges[m];
              rhs_tmp = merge_tmp[m].data();
            }
          }
          const AggShape& shape = shapes[a];
          int64_t partial = 0;
          if (shape.kind == AggShape::Kind::kCol) {
            partial =
                kernels::SumMasked<int64_t>(lhs_tmp, cmp, len);
          } else if (lhs_merge != nullptr && rhs_merge != nullptr) {
            partial = kernels::SumProductMasked<int64_t, int64_t>(
                lhs_tmp, rhs_tmp, cmp, len);
          } else {
            const int64_t* tmp = lhs_merge != nullptr ? lhs_tmp : rhs_tmp;
            const Column* other =
                lhs_merge != nullptr ? shape.b : shape.a;
            partial = DispatchPhysical(
                other->type().physical, [&]<typename T>() {
                  return kernels::SumProductMasked<T, int64_t>(
                      other->Data<T>() + start, tmp, cmp, len);
                });
          }
          scalar_acc[a] += partial;
        }
        pipeline::AccumulateScalarMasked(
            fact, &eval, plan, shapes, factor_paths, start, cmp, len,
            &scratch, scalar_acc.data(),
            merging ? &analysis.merged_aggs : nullptr);
        return;
      }

      // Grouped: keys for every lane (pullup), masked update.
      int64_t* keys = scratch.keys.data();
      if (!plan.group_by_path.empty()) {
        pipeline::GatherPathAll(group_path, start, len, &scratch, keys);
      } else if (plan.group_by->kind == ExprKind::kColumnRef) {
        const Column& col = fact.ColumnRef(plan.group_by->column);
        DispatchPhysical(col.type().physical, [&]<typename T>() {
          kernels::Widen<T>(col.Data<T>() + start, len, keys);
        });
      } else {
        eval.EvalNumeric(*plan.group_by, start, len, keys);
      }
      for (size_t a = 0; a < plan.aggs.size(); ++a) {
        pipeline::AggValuesAll(fact, &eval, plan.aggs[a], shapes[a], start,
                               len, &scratch, value_ptrs[a]);
        if (!plan.aggs[a].path_factor.empty()) {
          pipeline::GatherPathAll(factor_paths[a], start, len, &scratch,
                                  scratch.vals2.data());
          for (int64_t j = 0; j < len; ++j) {
            value_ptrs[a][j] *= scratch.vals2[j];
          }
        }
      }
      if (live_choice == AggChoice::kKeyMasking) {
        MaskKeysInPlace(keys, cmp, len);
        groups->UpdateMaskedKeys(keys, value_ptrs, len);
      } else {
        groups->UpdateMaskedValues(keys, value_ptrs, cmp, len);
      }
      return;
    }

    // ---- Hybrid-fallback pipeline (selection vectors + bitmap probes) ----
    int32_t n = pipeline::FilterToSelVec(
        StrategyKind::kSwole, &eval, fact,
        analysis.str_split.scan_filter.get(), start, len, &scratch,
        scratch.sel.data());
    for (size_t d = 0; d < plan.dims.size() && n > 0; ++d) {
      if (use_bitmaps && compressed) {
        const uint32_t* offs = dim_offsets[d] + start;
        const CompressedBitmap& bm = dim_compressed[d];
        for (int32_t k = 0; k < n; ++k) {
          scratch.cmp2[k] =
              static_cast<uint8_t>(bm.Test(offs[scratch.sel[k]]));
        }
      } else if (use_bitmaps) {
        const uint32_t* offs = dim_offsets[d] + start;
        const PositionalBitmap& bm = dim_bitmaps[d];
        for (int32_t k = 0; k < n; ++k) {
          scratch.cmp2[k] =
              static_cast<uint8_t>(bm.Test(offs[scratch.sel[k]]));
        }
      } else {
        const Column& fk = fact.ColumnRef(plan.dims[d].hop.fk_column);
        DispatchPhysical(fk.type().physical, [&]<typename T>() {
          kernels::Gather<T>(fk.Data<T>() + start, scratch.sel.data(), n,
                             scratch.keys.data());
        });
        dim_sets[d]->ContainsBatch(scratch.keys.data(), n,
                                   scratch.cmp2.data(), /*prefetch=*/false);
      }
      n = pipeline::CompactSel(StrategyKind::kSwole, scratch.sel.data(),
                               scratch.cmp2.data(), n);
    }
    for (size_t r = 0; r < reverse_bitmaps.size() && n > 0; ++r) {
      for (int32_t k = 0; k < n; ++k) {
        scratch.cmp2[k] = static_cast<uint8_t>(
            reverse_bitmaps[r].Test(start + scratch.sel[k]));
      }
      n = pipeline::CompactSel(StrategyKind::kSwole, scratch.sel.data(),
                               scratch.cmp2.data(), n);
    }
    if (plan.disjunctive.has_value() && n > 0) {
      const uint32_t* offs = disjunctive_offsets + start;
      // Clause fact filters prepass over the tile (branch-free, cheap);
      // bitmap probes only for the lanes that survived the fact filter.
      std::memset(scratch.cmp2.data(), 0, n);
      for (size_t c = 0; c < clause_bitmaps.size(); ++c) {
        pipeline::FilterToMask(
            &eval, plan.disjunctive->clauses[c].fact_filter.get(), start,
            len, clause_fact_mask.data());
        const PositionalBitmap& bm = clause_bitmaps[c];
        for (int32_t k = 0; k < n; ++k) {
          scratch.cmp2[k] |= static_cast<uint8_t>(
              clause_fact_mask[scratch.sel[k]] &
              bm.Test(offs[scratch.sel[k]]));
        }
      }
      n = pipeline::CompactSel(StrategyKind::kSwole, scratch.sel.data(),
                               scratch.cmp2.data(), n);
    }
    for (const auto& [left, right] : equality_paths) {
      if (n == 0) break;
      pipeline::GatherPathSel(left, start, scratch.sel.data(), n, &scratch,
                              scratch.vals.data());
      pipeline::GatherPathSel(right, start, scratch.sel.data(), n, &scratch,
                              scratch.vals2.data());
      for (int32_t k = 0; k < n; ++k) {
        scratch.cmp2[k] = scratch.vals[k] == scratch.vals2[k] ? 1 : 0;
      }
      n = pipeline::CompactSel(StrategyKind::kSwole, scratch.sel.data(),
                               scratch.cmp2.data(), n);
    }
    // Pulled raw-string predicates: per-surviving-lane match (sel-vector
    // form of the pulled access pattern — a random arena touch per lane).
    for (const Expr* pred : analysis.str_split.pulled) {
      if (n == 0) break;
      const Column& col = fact.ColumnRef(pred->children[0]->column);
      const StringColumn& text = *col.text();
      const simd::CompiledLike& lk = eval.CompiledLikeFor(*pred);
      for (int32_t k = 0; k < n; ++k) {
        scratch.cmp2[k] = static_cast<uint8_t>(kernels::StrLikeOne(
            text.bytes(), text.offsets(), start + scratch.sel[k], lk));
      }
      n = pipeline::CompactSel(StrategyKind::kSwole, scratch.sel.data(),
                               scratch.cmp2.data(), n);
    }
    if (n == 0) return;

    if (!plan.HasGroupBy()) {
      pipeline::AccumulateScalarSel(fact, &eval, plan, shapes, factor_paths,
                                    start, scratch.sel.data(), n, &scratch,
                                    scalar_acc.data());
      return;
    }
    if (!plan.group_by_path.empty()) {
      pipeline::GatherPathSel(group_path, start, scratch.sel.data(), n,
                              &scratch, scratch.keys.data());
    } else if (plan.group_by->kind == ExprKind::kColumnRef) {
      const Column& col = fact.ColumnRef(plan.group_by->column);
      DispatchPhysical(col.type().physical, [&]<typename T>() {
        kernels::Gather<T>(col.Data<T>() + start, scratch.sel.data(), n,
                           scratch.keys.data());
      });
    } else {
      AggSpec key_spec;
      key_spec.kind = AggKind::kSum;
      key_spec.expr = plan.group_by->Clone();
      AggShape key_shape = pipeline::DetectAggShape(fact, key_spec);
      pipeline::AggValuesSel(fact, &eval, key_spec, key_shape, start,
                             scratch.sel.data(), n, &scratch,
                             scratch.keys.data());
    }
    for (size_t a = 0; a < plan.aggs.size(); ++a) {
      pipeline::AggValuesSel(fact, &eval, plan.aggs[a], shapes[a], start,
                             scratch.sel.data(), n, &scratch, value_ptrs[a]);
      if (!plan.aggs[a].path_factor.empty()) {
        pipeline::GatherPathSel(factor_paths[a], start, scratch.sel.data(),
                                n, &scratch, scratch.vals2.data());
        for (int32_t k = 0; k < n; ++k) value_ptrs[a][k] *= scratch.vals2[k];
      }
    }
    groups->UpdateSel(scratch.keys.data(), value_ptrs, n, false);
  };

  phase.reset();  // build

  phase.emplace(trace, "probe");
  exec::MorselStats probe_stats = exec::ParallelMorsels(
      qctx, num_threads, fact.num_rows(), exec::DefaultMorselSize(tile),
      [&](int worker, int64_t begin, int64_t end) {
        ProbeCtx& ctx = *ctxs[worker];
        for (int64_t start = begin; start < end; start += tile) {
          process_tile(ctx, start, std::min(tile, end - start));
        }
      });
  phase->Attr("morsels", probe_stats.morsels);
  phase->Attr("steals", probe_stats.steals);
  phase->Attr("workers", static_cast<int64_t>(probe_stats.workers));
  phase->Attr("width", StringFormat("%.1fB", analysis.avg_read_width));
  phase->Attr("widen", int64_t{kernels::WidenEnabled() ? 1 : 0});
  phase.reset();  // probe
  SWOLE_RETURN_NOT_OK(probe_stats.status);

  phase.emplace(trace, "merge");
  // Ordered merge of worker-local states (DESIGN.md §7).
  for (int w = 1; w < num_threads; ++w) {
    pipeline::MergeScalarAcc(plan, ctxs[0]->scalar_acc.data(),
                             ctxs[w]->scalar_acc.data());
    if (plan.HasGroupBy()) {
      groups->MergeFrom(*ctxs[w]->groups);
      // Release merged worker tables eagerly: under spill the destination
      // may need budget headroom the unmerged tables are still holding.
      ctxs[w]->groups = nullptr;
      ctxs[w]->owned_groups.reset();
    }
  }
  phase.reset();  // merge

  phase.emplace(trace, "extract");
  if (!plan.HasGroupBy()) {
    return pipeline::MakeScalarResult(plan, ctxs[0]->scalar_acc.data());
  }
  if (spill != nullptr && spill->spilled()) {
    return groups->ExtractSpilled(plan, num_threads);
  }
  return groups->Extract(plan, plan.group_seed.has_value());
}

// ---------------------------------------------------------------------------
// Groupjoin path (group key == join key): probe in join mode with VM/KM.
// ---------------------------------------------------------------------------

Result<QueryResult> SwoleStrategy::ExecuteGroupjoin(
    const QueryPlan& plan, const PlanAnalysis& analysis,
    exec::QueryContext* qctx) {
  const int64_t tile = options_.tile_size;
  const int num_threads = exec::ResolveNumThreads(options_.num_threads);
  const Table& fact = catalog_.TableRef(plan.fact_table);
  Scratch scratch(tile);  // build/seed-phase scratch (caller thread only)

  obs::QueryTrace* trace = qctx != nullptr ? qctx->trace() : nullptr;
  std::optional<obs::SpanScope> phase;
  phase.emplace(trace, "build");

  const DimJoin& gdim = plan.dims[analysis.groupjoin_dim];
  const Table& dim_table = catalog_.TableRef(gdim.hop.to_table);

  // Seed the groupjoin table with qualifying dim keys: local filter plus
  // child qualification through positional bitmaps.
  GroupTable groups(plan, dim_table.num_rows(), qctx);
  if (plan.group_seed.has_value()) {
    const Table& seed_table = catalog_.TableRef(plan.group_seed->table);
    const Column& key_col = seed_table.ColumnRef(plan.group_seed->key_column);
    for (int64_t row = 0; row < seed_table.num_rows(); ++row) {
      groups.SeedKey(key_col.ValueAt(row));
    }
  }
  {
    std::vector<PositionalBitmap> child_bitmaps;
    std::vector<const uint32_t*> child_offsets;
    for (const DimJoin& child : gdim.children) {
      child_bitmaps.push_back(
          pipeline::BuildDimBitmap(catalog_, child, tile, num_threads, qctx));
      const FkIndex* index =
          dim_table.GetFkIndex(child.hop.fk_column).ValueOr(nullptr);
      SWOLE_CHECK(index != nullptr);
      child_offsets.push_back(index->offsets());
    }
    VectorEvaluator dim_eval(dim_table, tile);
    const Column& pk = dim_table.ColumnRef(gdim.hop.to_pk_column);
    for (int64_t start = 0; start < dim_table.num_rows(); start += tile) {
      if (qctx != nullptr) exec::ThrowIfError(qctx->CheckLive());
      int64_t len = std::min(tile, dim_table.num_rows() - start);
      pipeline::FilterToMask(&dim_eval, gdim.filter.get(), start, len,
                             scratch.cmp.data());
      for (size_t c = 0; c < child_bitmaps.size(); ++c) {
        const uint32_t* offs = child_offsets[c] + start;
        for (int64_t j = 0; j < len; ++j) {
          scratch.cmp[j] &=
              static_cast<uint8_t>(child_bitmaps[c].Test(offs[j]));
        }
      }
      DispatchPhysical(pk.type().physical, [&]<typename T>() {
        const T* data = pk.Data<T>() + start;
        for (int64_t j = 0; j < len; ++j) {
          if (scratch.cmp[j]) groups.SeedKey(static_cast<int64_t>(data[j]));
        }
      });
    }
  }

  // Other dims qualify the fact through bitmaps.
  std::vector<PositionalBitmap> other_bitmaps;
  std::vector<const uint32_t*> other_offsets;
  for (size_t d = 0; d < plan.dims.size(); ++d) {
    if (static_cast<int>(d) == analysis.groupjoin_dim) continue;
    other_bitmaps.push_back(pipeline::BuildDimBitmap(
        catalog_, plan.dims[d], tile, num_threads, qctx));
    const FkIndex* index =
        fact.GetFkIndex(plan.dims[d].hop.fk_column).ValueOr(nullptr);
    SWOLE_CHECK(index != nullptr);
    other_offsets.push_back(index->offsets());
  }

  std::vector<AggShape> shapes;
  for (const AggSpec& agg : plan.aggs) {
    shapes.push_back(pipeline::DetectAggShape(fact, agg));
  }

  // Mid-query re-decision: the groupjoin table is seeded and the other-dim
  // bitmaps are built, so the estimate side of the §III-A/B choice can be
  // replaced with observations before the probe commits to a technique.
  AggChoice live_choice = analysis.agg_choice;
  if (cost::RefitEnabled() &&
      options_.force_agg == StrategyOptions::ForceAgg::kAuto) {
    double observed_sigma = analysis.sigma_fact;
    for (const PositionalBitmap& bm : other_bitmaps) {
      if (bm.num_bits() > 0) {
        observed_sigma *= static_cast<double>(bm.CountSetBits()) /
                          static_cast<double>(bm.num_bits());
      }
    }
    live_choice = ReDecideAggregation(
        analysis, static_cast<double>(fact.num_rows()), observed_sigma,
        groups.ht_bytes(), qctx, "groupjoin-probe");
  }

  const Column& fk = fact.ColumnRef(gdim.hop.fk_column);
  const bool hybrid_fallback = live_choice == AggChoice::kHybridFallback;

  // Per-worker probe context. The groupjoin probe is join-mode (Find, no
  // insert), so every worker's table must carry the seeded key set:
  // workers > 0 get a keys-only clone of the primary.
  struct ProbeCtx {
    VectorEvaluator eval;
    Scratch scratch;
    std::vector<std::vector<int64_t>> value_storage;
    std::vector<int64_t*> value_ptrs;
    std::unique_ptr<GroupTable> owned_groups;
    GroupTable* groups = nullptr;

    ProbeCtx(const Table& fact_table, int64_t tile_size)
        : eval(fact_table, tile_size), scratch(tile_size) {}
  };

  std::vector<std::unique_ptr<ProbeCtx>> ctxs(num_threads);
  for (int w = 0; w < num_threads; ++w) {
    auto ctx = std::make_unique<ProbeCtx>(fact, tile);
    ctx->value_storage.resize(plan.aggs.size());
    ctx->value_ptrs.resize(plan.aggs.size());
    for (size_t a = 0; a < plan.aggs.size(); ++a) {
      ctx->value_storage[a].resize(tile);
      ctx->value_ptrs[a] = ctx->value_storage[a].data();
    }
    if (w == 0) {
      ctx->groups = &groups;
    } else {
      ctx->owned_groups = groups.CloneKeysOnly();
      ctx->groups = ctx->owned_groups.get();
    }
    ctxs[w] = std::move(ctx);
  }

  auto process_tile = [&](ProbeCtx& ctx, int64_t start, int64_t len) {
    VectorEvaluator& eval = ctx.eval;
    Scratch& scratch = ctx.scratch;
    std::vector<int64_t*>& value_ptrs = ctx.value_ptrs;
    GroupTable& groups = *ctx.groups;

    if (!hybrid_fallback) {
      uint8_t* cmp = scratch.cmp.data();
      pipeline::FilterToMask(&eval, analysis.str_split.scan_filter.get(),
                             start, len, cmp);
      for (size_t d = 0; d < other_bitmaps.size(); ++d) {
        const uint32_t* offs = other_offsets[d] + start;
        for (int64_t j = 0; j < len; ++j) {
          cmp[j] &= static_cast<uint8_t>(other_bitmaps[d].Test(offs[j]));
        }
      }
      // Pulled raw-string predicates: guarded match over surviving lanes.
      for (const Expr* pred : analysis.str_split.pulled) {
        const Column& col = fact.ColumnRef(pred->children[0]->column);
        const StringColumn& text = *col.text();
        kernels::StrLikeTileAnd(text.bytes(), text.offsets(), start, len,
                                eval.CompiledLikeFor(*pred), cmp);
      }
      int64_t* keys = scratch.keys.data();
      DispatchPhysical(fk.type().physical, [&]<typename T>() {
        kernels::Widen<T>(fk.Data<T>() + start, len, keys);
      });
      for (size_t a = 0; a < plan.aggs.size(); ++a) {
        pipeline::AggValuesAll(fact, &eval, plan.aggs[a], shapes[a], start,
                               len, &scratch, value_ptrs[a]);
      }
      if (live_choice == AggChoice::kKeyMasking) {
        MaskKeysInPlace(keys, cmp, len);
        groups.UpdateJoinMasked(keys, value_ptrs, nullptr, len);
      } else {
        groups.UpdateJoinMasked(keys, value_ptrs, cmp, len);
      }
      return;
    }

    int32_t n = pipeline::FilterToSelVec(
        StrategyKind::kSwole, &eval, fact,
        analysis.str_split.scan_filter.get(), start, len, &scratch,
        scratch.sel.data());
    for (size_t d = 0; d < other_bitmaps.size() && n > 0; ++d) {
      const uint32_t* offs = other_offsets[d] + start;
      for (int32_t k = 0; k < n; ++k) {
        scratch.cmp2[k] =
            static_cast<uint8_t>(other_bitmaps[d].Test(offs[scratch.sel[k]]));
      }
      n = pipeline::CompactSel(StrategyKind::kSwole, scratch.sel.data(),
                               scratch.cmp2.data(), n);
    }
    for (const Expr* pred : analysis.str_split.pulled) {
      if (n == 0) break;
      const Column& col = fact.ColumnRef(pred->children[0]->column);
      const StringColumn& text = *col.text();
      const simd::CompiledLike& lk = eval.CompiledLikeFor(*pred);
      for (int32_t k = 0; k < n; ++k) {
        scratch.cmp2[k] = static_cast<uint8_t>(kernels::StrLikeOne(
            text.bytes(), text.offsets(), start + scratch.sel[k], lk));
      }
      n = pipeline::CompactSel(StrategyKind::kSwole, scratch.sel.data(),
                               scratch.cmp2.data(), n);
    }
    if (n == 0) return;
    DispatchPhysical(fk.type().physical, [&]<typename T>() {
      kernels::Gather<T>(fk.Data<T>() + start, scratch.sel.data(), n,
                         scratch.keys.data());
    });
    for (size_t a = 0; a < plan.aggs.size(); ++a) {
      pipeline::AggValuesSel(fact, &eval, plan.aggs[a], shapes[a], start,
                             scratch.sel.data(), n, &scratch, value_ptrs[a]);
    }
    groups.UpdateJoinSel(scratch.keys.data(), value_ptrs, n, false);
  };

  phase.reset();  // build
  phase.emplace(trace, "probe");
  exec::MorselStats probe_stats = exec::ParallelMorsels(
      qctx, num_threads, fact.num_rows(), exec::DefaultMorselSize(tile),
      [&](int worker, int64_t begin, int64_t end) {
        ProbeCtx& ctx = *ctxs[worker];
        for (int64_t start = begin; start < end; start += tile) {
          process_tile(ctx, start, std::min(tile, end - start));
        }
      });
  phase->Attr("morsels", probe_stats.morsels);
  phase->Attr("steals", probe_stats.steals);
  phase->Attr("workers", static_cast<int64_t>(probe_stats.workers));
  phase->Attr("width", StringFormat("%.1fB", analysis.avg_read_width));
  phase->Attr("widen", int64_t{kernels::WidenEnabled() ? 1 : 0});
  phase.reset();
  SWOLE_RETURN_NOT_OK(probe_stats.status);

  // Ordered merge of worker-local join-mode states.
  phase.emplace(trace, "merge");
  for (int w = 1; w < num_threads; ++w) {
    groups.MergeFrom(*ctxs[w]->groups);
  }
  phase.reset();

  phase.emplace(trace, "extract");
  return groups.Extract(plan, plan.group_seed.has_value());
}

// ---------------------------------------------------------------------------
// Eager aggregation (§III-E): aggregate the fact unconditionally by the join
// key, then delete the keys whose dim row does NOT qualify (inverted
// predicate).
// ---------------------------------------------------------------------------

Result<QueryResult> SwoleStrategy::ExecuteEagerAggregation(
    const QueryPlan& plan, const PlanAnalysis& analysis,
    exec::QueryContext* qctx) {
  const int64_t tile = options_.tile_size;
  const int num_threads = exec::ResolveNumThreads(options_.num_threads);
  const Table& fact = catalog_.TableRef(plan.fact_table);
  Scratch scratch(tile);  // phase-2 dim-scan scratch (caller thread only)

  obs::QueryTrace* trace = qctx != nullptr ? qctx->trace() : nullptr;
  std::optional<obs::SpanScope> phase;

  const DimJoin& dim = plan.dims[0];
  const Table& dim_table = catalog_.TableRef(dim.hop.to_table);
  const Column& fk = fact.ColumnRef(dim.hop.fk_column);

  std::vector<AggShape> shapes;
  for (const AggSpec& agg : plan.aggs) {
    shapes.push_back(pipeline::DetectAggShape(fact, agg));
  }

  GroupTable groups(plan, dim_table.num_rows(), qctx);

  // EA keeps the FULL fact filter (string conjuncts included): its phase-1
  // aggregation is unconditional by construction, so there is no "after
  // the joins" point for a pulled predicate to run at — the mask applied
  // during aggregation is the only qualification the fact side gets.
  //
  // Sub-choice for handling the fact's own filter during the unconditional
  // aggregation ("min(Hybrid, VM, KM)" in the EA formula).
  AggChoice sub_choice = AggChoice::kValueMasking;
  if (plan.fact_filter != nullptr) {
    AggWorkload w;
    w.rows = static_cast<double>(fact.num_rows());
    w.selectivity = analysis.sigma_fact;
    w.comp_ns = analysis.comp_ns;
    w.group_ht_bytes = EstimateGroupHtBytes(
        dim_table.num_rows(), static_cast<int>(plan.aggs.size()));
    w.num_read_columns = analysis.num_read_columns;
    w.avg_read_width = analysis.avg_read_width;
    sub_choice = ChooseAggregation(profile_, w);
  }

  // Phase 1: unconditional aggregation of the fact by the join key.
  // Parallel: every worker aggregates morsels into its own group table
  // (insert-mode updates), merged into `groups` in worker order afterwards.
  struct EaCtx {
    VectorEvaluator eval;
    Scratch scratch;
    std::vector<std::vector<int64_t>> value_storage;
    std::vector<int64_t*> value_ptrs;
    std::unique_ptr<GroupTable> owned_groups;
    GroupTable* groups = nullptr;
    EaCtx(const Table& fact, int64_t tile) : eval(fact, tile), scratch(tile) {}
  };
  std::vector<std::unique_ptr<EaCtx>> ctxs(num_threads);
  for (int w = 0; w < num_threads; ++w) {
    ctxs[w] = std::make_unique<EaCtx>(fact, tile);
    EaCtx& ctx = *ctxs[w];
    ctx.value_storage.resize(plan.aggs.size());
    ctx.value_ptrs.resize(plan.aggs.size());
    for (size_t a = 0; a < plan.aggs.size(); ++a) {
      ctx.value_storage[a].resize(tile);
      ctx.value_ptrs[a] = ctx.value_storage[a].data();
    }
    if (w == 0) {
      ctx.groups = &groups;
    } else {
      ctx.owned_groups =
          std::make_unique<GroupTable>(plan, dim_table.num_rows(), qctx);
      ctx.groups = ctx.owned_groups.get();
    }
  }

  auto process_tile = [&](EaCtx& ctx, int64_t start, int64_t len) {
    VectorEvaluator& eval = ctx.eval;
    Scratch& scratch = ctx.scratch;
    std::vector<int64_t*>& value_ptrs = ctx.value_ptrs;
    GroupTable& groups = *ctx.groups;

    if (plan.fact_filter != nullptr &&
        sub_choice == AggChoice::kHybridFallback) {
      int32_t n = pipeline::FilterToSelVec(StrategyKind::kSwole, &eval, fact,
                                           plan.fact_filter.get(), start,
                                           len, &scratch,
                                           scratch.sel.data());
      if (n == 0) return;
      DispatchPhysical(fk.type().physical, [&]<typename T>() {
        kernels::Gather<T>(fk.Data<T>() + start, scratch.sel.data(), n,
                           scratch.keys.data());
      });
      for (size_t a = 0; a < plan.aggs.size(); ++a) {
        pipeline::AggValuesSel(fact, &eval, plan.aggs[a], shapes[a], start,
                               scratch.sel.data(), n, &scratch,
                               value_ptrs[a]);
      }
      groups.UpdateSel(scratch.keys.data(), value_ptrs, n, false);
      return;
    }

    int64_t* keys = scratch.keys.data();
    DispatchPhysical(fk.type().physical, [&]<typename T>() {
      kernels::Widen<T>(fk.Data<T>() + start, len, keys);
    });
    for (size_t a = 0; a < plan.aggs.size(); ++a) {
      pipeline::AggValuesAll(fact, &eval, plan.aggs[a], shapes[a], start,
                             len, &scratch, value_ptrs[a]);
    }
    if (plan.fact_filter == nullptr) {
      groups.UpdateMaskedKeys(keys, value_ptrs, len);  // unmasked keys
    } else {
      pipeline::FilterToMask(&eval, plan.fact_filter.get(), start, len,
                             scratch.cmp.data());
      if (sub_choice == AggChoice::kKeyMasking) {
        MaskKeysInPlace(keys, scratch.cmp.data(), len);
        groups.UpdateMaskedKeys(keys, value_ptrs, len);
      } else {
        groups.UpdateMaskedValues(keys, value_ptrs, scratch.cmp.data(), len);
      }
    }
  };

  phase.emplace(trace, "aggregate");
  exec::MorselStats agg_stats = exec::ParallelMorsels(
      qctx, num_threads, fact.num_rows(), exec::DefaultMorselSize(tile),
      [&](int worker, int64_t begin, int64_t end) {
        EaCtx& ctx = *ctxs[worker];
        for (int64_t start = begin; start < end; start += tile) {
          process_tile(ctx, start, std::min(tile, end - start));
        }
      });
  phase->Attr("morsels", agg_stats.morsels);
  phase->Attr("steals", agg_stats.steals);
  phase->Attr("workers", static_cast<int64_t>(agg_stats.workers));
  phase->Attr("width", StringFormat("%.1fB", analysis.avg_read_width));
  phase->Attr("widen", int64_t{kernels::WidenEnabled() ? 1 : 0});
  phase.reset();
  SWOLE_RETURN_NOT_OK(agg_stats.status);
  phase.emplace(trace, "merge");
  for (int w = 1; w < num_threads; ++w) {
    groups.MergeFrom(*ctxs[w]->groups);
  }
  phase.reset();

  // Phase 2: scan the dim with the predicate inverted; delete keys of
  // non-qualifying dim rows from the aggregate table.
  phase.emplace(trace, "delete");
  {
    std::vector<PositionalBitmap> child_bitmaps;
    std::vector<const uint32_t*> child_offsets;
    for (const DimJoin& child : dim.children) {
      child_bitmaps.push_back(
          pipeline::BuildDimBitmap(catalog_, child, tile, num_threads, qctx));
      const FkIndex* index =
          dim_table.GetFkIndex(child.hop.fk_column).ValueOr(nullptr);
      SWOLE_CHECK(index != nullptr);
      child_offsets.push_back(index->offsets());
    }
    VectorEvaluator dim_eval(dim_table, tile);
    const Column& pk = dim_table.ColumnRef(dim.hop.to_pk_column);
    for (int64_t start = 0; start < dim_table.num_rows(); start += tile) {
      if (qctx != nullptr) exec::ThrowIfError(qctx->CheckLive());
      int64_t len = std::min(tile, dim_table.num_rows() - start);
      pipeline::FilterToMask(&dim_eval, dim.filter.get(), start, len,
                             scratch.cmp.data());
      for (size_t c = 0; c < child_bitmaps.size(); ++c) {
        const uint32_t* offs = child_offsets[c] + start;
        for (int64_t j = 0; j < len; ++j) {
          scratch.cmp[j] &=
              static_cast<uint8_t>(child_bitmaps[c].Test(offs[j]));
        }
      }
      DispatchPhysical(pk.type().physical, [&]<typename T>() {
        const T* data = pk.Data<T>() + start;
        for (int64_t j = 0; j < len; ++j) {
          if (!scratch.cmp[j]) {
            groups.EraseKey(static_cast<int64_t>(data[j]));
          }
        }
      });
    }
  }
  phase.reset();

  phase.emplace(trace, "extract");
  return groups.Extract(plan, /*keep_untouched=*/false);
}

std::unique_ptr<SwoleStrategy> MakeSwoleStrategy(const Catalog& catalog,
                                                 StrategyOptions options) {
  return std::make_unique<SwoleStrategy>(catalog, options);
}

std::unique_ptr<Strategy> MakeSwoleStrategyImpl(const Catalog& catalog,
                                                StrategyOptions options) {
  return std::make_unique<SwoleStrategy>(catalog, options);
}

}  // namespace swole
