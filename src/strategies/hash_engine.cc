#include "strategies/hash_engine.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <optional>

#include "common/logging.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "cost/estimates.h"
#include "cost/feedback.h"
#include "cost/string_placement.h"
#include "exec/admission.h"
#include "exec/scheduler.h"
#include "exec/spill.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace swole {

using pipeline::AggShape;
using pipeline::GroupTable;
using pipeline::ResolvedPath;
using pipeline::Scratch;

namespace {

// Index of the dimension whose join key doubles as the group-by key (the
// groupjoin fusion of §III-E / TPC-H Q3, Q13), or -1.
int FindGroupjoinDim(const QueryPlan& plan) {
  if (plan.group_by == nullptr ||
      plan.group_by->kind != ExprKind::kColumnRef) {
    return -1;
  }
  for (size_t d = 0; d < plan.dims.size(); ++d) {
    if (plan.dims[d].hop.fk_column == plan.group_by->column) {
      return static_cast<int>(d);
    }
  }
  return -1;
}

// Bound-once metric handles per strategy kind. One HashStrategyEngine
// class serves three kinds, so a single function-local static at the call
// site would bind whichever kind executed first; and per-call
// GetCounter/GetHistogram lookups take the registry mutex, which
// concurrent driver threads contend on every query.
struct EngineMetrics {
  obs::Counter* queries;
  obs::Histogram* latency;
};

EngineMetrics& MetricsFor(StrategyKind kind) {
  static std::array<EngineMetrics, 4> table = [] {
    std::array<EngineMetrics, 4> t{};
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    for (int k = 0; k < 4; ++k) {
      const char* name = StrategyKindName(static_cast<StrategyKind>(k));
      t[k] = {&reg.GetCounter(std::string("queries.") + name),
              &reg.GetHistogram(std::string("query.latency_us.") + name)};
    }
    return t;
  }();
  return table[static_cast<int>(kind)];
}

}  // namespace

HashStrategyEngine::HashStrategyEngine(StrategyKind kind,
                                       const Catalog& catalog,
                                       StrategyOptions options)
    : kind_(kind), catalog_(catalog), options_(options) {
  SWOLE_CHECK(kind != StrategyKind::kSwole);
}

Result<QueryResult> HashStrategyEngine::Execute(const QueryPlan& plan) {
  SWOLE_RETURN_NOT_OK(ValidatePlan(plan, catalog_));

  // Admission before any work (exec/admission.h): a shed query costs the
  // server nothing but the rejection Status. When this engine runs as the
  // SWOLE degradation fallback on an already-admitted thread, the scope is
  // a no-op riding the outer slot.
  exec::AdmissionScope admission(options_.tenant);
  SWOLE_RETURN_NOT_OK(admission.status());

  EngineMetrics& metrics = MetricsFor(kind_);
  metrics.queries->Add(1);
  Timer timer;
  exec::GovernanceScope governance(options_.query_ctx,
                                   options_.mem_limit_bytes,
                                   options_.deadline_ms, options_.trace);
  if (governance.ctx() != nullptr && options_.priority != 0) {
    governance.ctx()->set_priority(options_.priority);
  }
  if (governance.ctx() != nullptr && options_.spill >= 0) {
    governance.ctx()->set_spill_enabled(options_.spill == 1);
  }

  // Estimate side of the cost-feedback observation (cost/feedback.h): the
  // traditional engines run the conditional-access plan the Hybrid formula
  // models, so their observed runtimes anchor the bandwidth fit from the
  // non-pullup side. The owning GovernanceScope completes the record with
  // elapsed time and hardware counts on teardown.
  if (governance.ctx() != nullptr && cost::RefitEnabled()) {
    const Table& fact = catalog_.TableRef(plan.fact_table);
    double sigma = plan.fact_filter != nullptr
                       ? EstimateSelectivity(fact, *plan.fact_filter)
                       : 1.0;
    for (const DimJoin& dim : plan.dims) {
      if (dim.filter != nullptr) {
        sigma *= EstimateSelectivity(catalog_.TableRef(dim.hop.to_table),
                                     *dim.filter);
      }
    }
    AggWorkload w;
    w.rows = static_cast<double>(fact.num_rows());
    w.selectivity = sigma;
    w.avg_read_width = pipeline::AvgFactReadWidthBytes(fact, plan);
    if (plan.HasGroupBy()) {
      // Rough open-addressing footprint: key slot + payload per aggregate.
      w.group_ht_bytes = pipeline::ExpectedGroups(catalog_, plan) * 8 *
                         static_cast<int64_t>(2 + plan.aggs.size());
    }
    const CostProfile profile = options_.cost_profile != nullptr
                                    ? *options_.cost_profile
                                    : CostProfile::Default();
    cost::QueryObservation* record =
        governance.ctx()->MutableObservation();
    record->rows = w.rows;
    record->selectivity = sigma;
    record->num_read_columns = w.num_read_columns;
    record->avg_read_width = w.avg_read_width;
    record->group_ht_bytes = w.group_ht_bytes;
    record->predicted_ns = HybridCost(profile, w);
    record->technique = name();
  }

  Result<QueryResult> result = [&]() -> Result<QueryResult> {
    try {
      return ExecuteGoverned(plan, governance.ctx());
    } catch (...) {
      return exec::StatusFromCurrentException(governance.ctx());
    }
  }();
  metrics.latency->Record(timer.ElapsedNanos() / 1000);
  return result;
}

Result<QueryResult> HashStrategyEngine::ExecuteGoverned(
    const QueryPlan& plan, exec::QueryContext* qctx) {
  const int64_t tile = options_.tile_size;
  const int num_threads = exec::ResolveNumThreads(options_.num_threads);
  const Table& fact = catalog_.TableRef(plan.fact_table);
  const bool rof = kind_ == StrategyKind::kRof;

  // Raw-string predicate placement (cost/string_placement.h): every
  // strategy honors the same split, so a strategy-vs-strategy comparison
  // on a string-heavy plan measures the strategy, not the placement. The
  // scan evaluates scan_filter; pulled conjuncts run per surviving lane
  // after all other qualifications.
  const StringPredSplit str_split = DecideStringPlacement(
      plan, catalog_,
      options_.cost_profile != nullptr ? *options_.cost_profile
                                       : CostProfile::Default());

  // Spans open/close only on this (driving) thread, so the tree shape is
  // identical at every thread count; worker rollups arrive as attributes.
  obs::QueryTrace* trace = qctx != nullptr ? qctx->trace() : nullptr;
  obs::SpanScope engine_span(trace, name());
  engine_span.Attr("threads", static_cast<int64_t>(num_threads));
  std::optional<obs::SpanScope> phase;
  phase.emplace(trace, "build");

  // ---- Build phase ----
  const int groupjoin_dim = FindGroupjoinDim(plan);

  std::vector<std::unique_ptr<HashTable>> dim_sets(plan.dims.size());
  for (size_t d = 0; d < plan.dims.size(); ++d) {
    if (static_cast<int>(d) == groupjoin_dim) continue;  // fused below
    dim_sets[d] = pipeline::BuildDimKeySet(kind_, catalog_, plan.dims[d],
                                           tile, num_threads, qctx);
  }

  std::vector<std::unique_ptr<HashTable>> reverse_sets;
  for (const ReverseDim& rdim : plan.reverse_dims) {
    reverse_sets.push_back(
        pipeline::BuildReverseKeySet(kind_, catalog_, rdim, tile,
                                     num_threads, qctx));
  }

  std::unique_ptr<HashTable> disjunctive_ht;
  if (plan.disjunctive.has_value()) {
    disjunctive_ht = pipeline::BuildDisjunctiveHt(
        kind_, catalog_, *plan.disjunctive, tile, num_threads, qctx);
  }

  // Group table. For the groupjoin fusion its keys ARE the qualifying
  // dimension keys (build side); probing uses join mode (Find, no insert).
  // Spill engagement (DESIGN.md §14): only unseeded insert-mode group
  // tables may spill — join-mode probes and seeded tables need their key
  // set resident. One manager is shared by every worker-local table.
  std::unique_ptr<exec::SpillManager> spill;
  std::unique_ptr<GroupTable> groups;
  const bool spillable = plan.HasGroupBy() && groupjoin_dim < 0 &&
                         !plan.group_seed.has_value() && qctx != nullptr &&
                         qctx->spill_enabled();
  if (plan.HasGroupBy()) {
    // Under spill, skip the cardinality-sized pre-allocation: charging the
    // full estimate upfront would breach the budget before a single row is
    // aggregated. The table starts minimal and grows (or spills) on demand.
    groups = std::make_unique<GroupTable>(
        plan, spillable ? 16 : pipeline::ExpectedGroups(catalog_, plan),
        qctx);
    if (plan.group_seed.has_value()) {
      const Table& seed_table = catalog_.TableRef(plan.group_seed->table);
      const Column& key_col =
          seed_table.ColumnRef(plan.group_seed->key_column);
      for (int64_t start = 0; start < seed_table.num_rows(); start += tile) {
        int64_t len = std::min(tile, seed_table.num_rows() - start);
        DispatchPhysical(key_col.type().physical, [&]<typename T>() {
          const T* data = key_col.Data<T>() + start;
          for (int64_t j = 0; j < len; ++j) {
            groups->SeedKey(static_cast<int64_t>(data[j]));
          }
        });
      }
    }
    if (groupjoin_dim >= 0) {
      // Build the groupjoin table from the fused dimension: every
      // qualifying dim key is seeded (so probe misses mean "join filtered").
      const DimJoin& dim = plan.dims[groupjoin_dim];
      std::unique_ptr<HashTable> qualifying = pipeline::BuildDimKeySet(
          kind_, catalog_, dim, tile, num_threads, qctx);
      qualifying->ForEach(
          [&](int64_t key, const int64_t*) { groups->SeedKey(key); });
    }
    if (spillable) {
      exec::SpillConfig spill_cfg = exec::SpillConfig::FromEnv();
      spill_cfg.enabled = true;
      spill = std::make_unique<exec::SpillManager>(
          spill_cfg, 1 + static_cast<int>(plan.aggs.size()), qctx);
      groups->EnableSpill(spill.get(),
                          pipeline::SpillSoftCap(qctx, num_threads));
    }
  }

  phase.reset();  // build

  // ---- Probe-phase metadata ----
  std::vector<AggShape> shapes;
  std::vector<ResolvedPath> factor_paths(plan.aggs.size());
  for (size_t a = 0; a < plan.aggs.size(); ++a) {
    shapes.push_back(pipeline::DetectAggShape(fact, plan.aggs[a]));
    if (!plan.aggs[a].path_factor.empty()) {
      factor_paths[a] = pipeline::ResolvePath(
          catalog_, fact, *plan.FindPath(plan.aggs[a].path_factor));
    }
  }

  ResolvedPath group_path;
  if (!plan.group_by_path.empty()) {
    group_path = pipeline::ResolvePath(catalog_, fact,
                                       *plan.FindPath(plan.group_by_path));
  }

  std::vector<std::pair<ResolvedPath, ResolvedPath>> equality_paths;
  for (const PathEquality& eq : plan.path_equalities) {
    equality_paths.emplace_back(
        pipeline::ResolvePath(catalog_, fact, *plan.FindPath(eq.left_alias)),
        pipeline::ResolvePath(catalog_, fact,
                              *plan.FindPath(eq.right_alias)));
  }

  // ---- Per-worker probe context ----
  // Each scheduler participant owns one: scratch buffers, a private
  // aggregation state, and (for ROF) the carried selection vector. Worker 0
  // aggregates into the primary `groups`/accumulator; the others merge into
  // it in worker order after the scan.
  struct ProbeCtx {
    VectorEvaluator eval;
    Scratch scratch;
    std::vector<std::vector<uint8_t>> clause_masks;
    std::vector<std::vector<int64_t>> value_storage;
    std::vector<int64_t*> value_ptrs;
    std::vector<int64_t> scalar_acc;
    std::unique_ptr<GroupTable> owned_groups;
    GroupTable* groups = nullptr;
    // ROF's carried FULL selection vector of GLOBAL fact indices — global
    // because one worker's morsels are not contiguous.
    std::vector<int32_t> carry;
    int32_t carry_n = 0;
    int64_t carry_mask_start = 0;  // tile start of the lanes in `carry`

    ProbeCtx(const Table& fact_table, int64_t tile_size)
        : eval(fact_table, tile_size),
          scratch(tile_size),
          carry(tile_size) {}
  };

  const bool join_mode = groupjoin_dim >= 0;
  std::vector<std::unique_ptr<ProbeCtx>> ctxs(num_threads);
  for (int w = 0; w < num_threads; ++w) {
    auto ctx = std::make_unique<ProbeCtx>(fact, tile);
    if (plan.disjunctive.has_value()) {
      ctx->clause_masks.assign(plan.disjunctive->clauses.size(),
                               std::vector<uint8_t>(tile));
    }
    ctx->value_storage.resize(plan.aggs.size());
    ctx->value_ptrs.resize(plan.aggs.size());
    for (size_t a = 0; a < plan.aggs.size(); ++a) {
      ctx->value_storage[a].resize(tile);
      ctx->value_ptrs[a] = ctx->value_storage[a].data();
    }
    ctx->scalar_acc.resize(plan.aggs.size());
    pipeline::InitScalarAcc(plan, ctx->scalar_acc.data());
    if (plan.HasGroupBy()) {
      if (w == 0) {
        ctx->groups = groups.get();
      } else if (join_mode) {
        // Join-mode probes only Find keys, so every worker needs the
        // seeded key set; payloads start at zero and merge additively.
        ctx->owned_groups = groups->CloneKeysOnly();
        ctx->groups = ctx->owned_groups.get();
      } else {
        ctx->owned_groups = std::make_unique<GroupTable>(
            plan,
            spill != nullptr ? 16 : pipeline::ExpectedGroups(catalog_, plan),
            qctx);
        if (spill != nullptr) {
          ctx->owned_groups->EnableSpill(
              spill.get(), pipeline::SpillSoftCap(qctx, num_threads));
        }
        ctx->groups = ctx->owned_groups.get();
      }
    }
    ctxs[w] = std::move(ctx);
  }

  // Processes one batch of selected lanes. For DC/hybrid the batch is the
  // tile's local selection vector (base == tile start); for ROF it is the
  // carried FULL selection vector of global indices (base == 0).
  auto process_batch = [&](ProbeCtx& ctx, int64_t base, int32_t* sel,
                           int32_t n, int64_t mask_tile_start) -> void {
    VectorEvaluator& eval = ctx.eval;
    Scratch& scratch = ctx.scratch;
    // Join qualification: probe each dimension's key set by fk value.
    for (size_t d = 0; d < plan.dims.size(); ++d) {
      if (n == 0) return;
      if (static_cast<int>(d) == groupjoin_dim) continue;  // at agg time
      const Column& fk = fact.ColumnRef(plan.dims[d].hop.fk_column);
      DispatchPhysical(fk.type().physical, [&]<typename T>() {
        kernels::Gather<T>(fk.Data<T>() + base, sel, n, scratch.keys.data());
      });
      HashTable& set = *dim_sets[d];
      set.ContainsBatch(scratch.keys.data(), n, scratch.cmp2.data(),
                        /*prefetch=*/rof);
      n = pipeline::CompactSel(kind_, sel, scratch.cmp2.data(), n);
    }

    // Reverse dims: probe by the fact's own pk value.
    for (size_t r = 0; r < plan.reverse_dims.size(); ++r) {
      if (n == 0) return;
      const Column& pk = fact.ColumnRef(plan.reverse_dims[r].fact_pk_column);
      DispatchPhysical(pk.type().physical, [&]<typename T>() {
        kernels::Gather<T>(pk.Data<T>() + base, sel, n, scratch.keys.data());
      });
      HashTable& set = *reverse_sets[r];
      set.ContainsBatch(scratch.keys.data(), n, scratch.cmp2.data(),
                        /*prefetch=*/rof);
      n = pipeline::CompactSel(kind_, sel, scratch.cmp2.data(), n);
    }

    // Disjunctive join (Q19): payload bit k set => dim row passes clause k;
    // the lane qualifies if some clause also passes its fact-side filter.
    if (plan.disjunctive.has_value() && n > 0) {
      const Column& fk = fact.ColumnRef(plan.disjunctive->hop.fk_column);
      DispatchPhysical(fk.type().physical, [&]<typename T>() {
        kernels::Gather<T>(fk.Data<T>() + base, sel, n, scratch.keys.data());
      });
      disjunctive_ht->FindBatch(scratch.keys.data(), n, scratch.ptrs.data(),
                                /*prefetch=*/rof);
      for (int32_t k = 0; k < n; ++k) {
        const int64_t* payload = scratch.ptrs[k];
        uint8_t dim_bits =
            payload != nullptr ? static_cast<uint8_t>(*payload) : 0;
        uint8_t ok = 0;
        for (size_t c = 0; c < plan.disjunctive->clauses.size(); ++c) {
          // clause_masks are tile-relative; translate the lane back.
          int64_t local = base + sel[k] - mask_tile_start;
          ok |= static_cast<uint8_t>(((dim_bits >> c) & 1) &
                                     ctx.clause_masks[c][local]);
        }
        scratch.cmp2[k] = ok;
      }
      n = pipeline::CompactSel(kind_, sel, scratch.cmp2.data(), n);
    }

    // Path equalities (Q5's s_nationkey = c_nationkey).
    for (const auto& [left, right] : equality_paths) {
      if (n == 0) return;
      pipeline::GatherPathSel(left, base, sel, n, &scratch,
                              scratch.vals.data());
      pipeline::GatherPathSel(right, base, sel, n, &scratch,
                              scratch.vals2.data());
      for (int32_t k = 0; k < n; ++k) {
        scratch.cmp2[k] = scratch.vals[k] == scratch.vals2[k] ? 1 : 0;
      }
      n = pipeline::CompactSel(kind_, sel, scratch.cmp2.data(), n);
    }

    // Pulled raw-string predicates: per-surviving-lane match. `base + sel`
    // is the global fact row for DC/hybrid (tile-local sel, base = tile
    // start) AND for ROF (global carry, base = 0).
    for (const Expr* pred : str_split.pulled) {
      if (n == 0) return;
      const Column& col = fact.ColumnRef(pred->children[0]->column);
      const StringColumn& text = *col.text();
      const simd::CompiledLike& lk = eval.CompiledLikeFor(*pred);
      for (int32_t k = 0; k < n; ++k) {
        scratch.cmp2[k] = static_cast<uint8_t>(kernels::StrLikeOne(
            text.bytes(), text.offsets(), base + sel[k], lk));
      }
      n = pipeline::CompactSel(kind_, sel, scratch.cmp2.data(), n);
    }

    if (n == 0) return;

    // Aggregation.
    if (!plan.HasGroupBy()) {
      pipeline::AccumulateScalarSel(fact, &eval, plan, shapes, factor_paths,
                                    base, sel, n, &scratch,
                                    ctx.scalar_acc.data());
      return;
    }

    // Group keys per lane.
    if (!plan.group_by_path.empty()) {
      pipeline::GatherPathSel(group_path, base, sel, n, &scratch,
                              scratch.keys.data());
    } else if (plan.group_by->kind == ExprKind::kColumnRef) {
      const Column& col = fact.ColumnRef(plan.group_by->column);
      DispatchPhysical(col.type().physical, [&]<typename T>() {
        kernels::Gather<T>(col.Data<T>() + base, sel, n,
                           scratch.keys.data());
      });
    } else {
      // General key expression: compacted evaluation over gathered refs.
      AggSpec key_spec;
      key_spec.kind = AggKind::kSum;
      key_spec.expr = plan.group_by->Clone();
      AggShape key_shape = pipeline::DetectAggShape(fact, key_spec);
      pipeline::AggValuesSel(fact, &eval, key_spec, key_shape, base, sel, n,
                             &scratch, scratch.keys.data());
    }

    for (size_t a = 0; a < plan.aggs.size(); ++a) {
      pipeline::AggValuesSel(fact, &eval, plan.aggs[a], shapes[a], base, sel,
                             n, &scratch, ctx.value_ptrs[a]);
      if (!plan.aggs[a].path_factor.empty()) {
        pipeline::GatherPathSel(factor_paths[a], base, sel, n, &scratch,
                                scratch.vals2.data());
        for (int32_t k = 0; k < n; ++k) {
          ctx.value_ptrs[a][k] *= scratch.vals2[k];
        }
      }
    }
    if (join_mode) {
      ctx.groups->UpdateJoinSel(scratch.keys.data(), ctx.value_ptrs, n, rof);
    } else {
      ctx.groups->UpdateSel(scratch.keys.data(), ctx.value_ptrs, n, rof);
    }
  };

  // ---- Probe phase (morsel-driven) ----
  // ROF carries a FULL selection vector of global indices across the tiles
  // of a worker's morsels ("always operating on full intermediate result
  // selection vectors"); it persists in the worker's ctx and flushes after
  // the scan.
  auto process_range = [&](ProbeCtx& ctx, int64_t range_begin,
                           int64_t range_end) -> void {
    for (int64_t start = range_begin; start < range_end; start += tile) {
      int64_t len = std::min(tile, range_end - start);

      // Disjunctive per-clause fact filters: prepass once per tile.
      if (plan.disjunctive.has_value()) {
        // ROF's carry would mix lanes from tiles with different masks;
        // flush first so clause masks always refer to the current tile.
        if (rof && ctx.carry_n > 0) {
          process_batch(ctx, 0, ctx.carry.data(), ctx.carry_n,
                        ctx.carry_mask_start);
          ctx.carry_n = 0;
        }
        for (size_t c = 0; c < plan.disjunctive->clauses.size(); ++c) {
          pipeline::FilterToMask(
              &ctx.eval, plan.disjunctive->clauses[c].fact_filter.get(),
              start, len, ctx.clause_masks[c].data());
        }
        ctx.carry_mask_start = start;
      }

      int32_t n = pipeline::FilterToSelVec(kind_, &ctx.eval, fact,
                                           str_split.scan_filter.get(),
                                           start, len, &ctx.scratch,
                                           ctx.scratch.sel.data());

      if (!rof) {
        process_batch(ctx, start, ctx.scratch.sel.data(), n, start);
        continue;
      }

      // ROF: append global indices until the vector is full, then process.
      int32_t appended = 0;
      while (appended < n) {
        int32_t space = static_cast<int32_t>(tile) - ctx.carry_n;
        int32_t take = std::min(space, n - appended);
        for (int32_t k = 0; k < take; ++k) {
          ctx.carry[ctx.carry_n + k] =
              static_cast<int32_t>(start) + ctx.scratch.sel[appended + k];
        }
        ctx.carry_n += take;
        appended += take;
        if (ctx.carry_n == static_cast<int32_t>(tile)) {
          process_batch(ctx, 0, ctx.carry.data(), ctx.carry_n,
                        ctx.carry_mask_start);
          ctx.carry_n = 0;
        }
      }
    }
  };

  phase.emplace(trace, "probe");
  exec::MorselStats probe_stats =
      exec::ParallelMorsels(qctx, num_threads, fact.num_rows(),
                           exec::DefaultMorselSize(tile),
                           [&](int worker, int64_t begin, int64_t end) {
                             process_range(*ctxs[worker], begin, end);
                           });
  phase->Attr("morsels", probe_stats.morsels);
  phase->Attr("steals", probe_stats.steals);
  phase->Attr("workers", static_cast<int64_t>(probe_stats.workers));
  phase->Attr("width", StringFormat("%.1fB",
                                    pipeline::AvgFactReadWidthBytes(fact,
                                                                    plan)));
  phase->Attr("widen", int64_t{kernels::WidenEnabled() ? 1 : 0});
  phase.reset();  // probe
  SWOLE_RETURN_NOT_OK(probe_stats.status);

  phase.emplace(trace, "merge");
  // Flush leftover ROF carries, then merge worker states — both in worker
  // order, the deterministic ordered merge (DESIGN.md §7).
  for (int w = 0; w < num_threads; ++w) {
    ProbeCtx& ctx = *ctxs[w];
    if (rof && ctx.carry_n > 0) {
      process_batch(ctx, 0, ctx.carry.data(), ctx.carry_n,
                    ctx.carry_mask_start);
      ctx.carry_n = 0;
    }
  }
  for (int w = 1; w < num_threads; ++w) {
    pipeline::MergeScalarAcc(plan, ctxs[0]->scalar_acc.data(),
                             ctxs[w]->scalar_acc.data());
    if (plan.HasGroupBy()) {
      groups->MergeFrom(*ctxs[w]->groups);
      // Release each worker table as soon as it is merged so the budget
      // headroom grows monotonically through the merge — under spill the
      // destination may need to grow while later tables still hold their
      // charges.
      ctxs[w]->groups = nullptr;
      ctxs[w]->owned_groups.reset();
    }
  }

  phase.reset();  // merge

  // ---- Result extraction ----
  phase.emplace(trace, "extract");
  if (!plan.HasGroupBy()) {
    return pipeline::MakeScalarResult(plan, ctxs[0]->scalar_acc.data());
  }
  bool keep_untouched = plan.group_seed.has_value();
  if (spill != nullptr && spill->spilled()) {
    return groups->ExtractSpilled(plan, num_threads);
  }
  return groups->Extract(plan, keep_untouched);
}

std::unique_ptr<Strategy> MakeStrategy(StrategyKind kind,
                                       const Catalog& catalog,
                                       StrategyOptions options) {
  if (kind == StrategyKind::kSwole) {
    extern std::unique_ptr<Strategy> MakeSwoleStrategyImpl(
        const Catalog& catalog, StrategyOptions options);
    return MakeSwoleStrategyImpl(catalog, options);
  }
  return std::make_unique<HashStrategyEngine>(kind, catalog, options);
}

const char* StrategyKindName(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kDataCentric:
      return "data-centric";
    case StrategyKind::kHybrid:
      return "hybrid";
    case StrategyKind::kRof:
      return "rof";
    case StrategyKind::kSwole:
      return "swole";
  }
  return "?";
}

}  // namespace swole
