#include "strategies/hash_engine.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"

namespace swole {

using pipeline::AggShape;
using pipeline::GroupTable;
using pipeline::ResolvedPath;
using pipeline::Scratch;

namespace {

// Index of the dimension whose join key doubles as the group-by key (the
// groupjoin fusion of §III-E / TPC-H Q3, Q13), or -1.
int FindGroupjoinDim(const QueryPlan& plan) {
  if (plan.group_by == nullptr ||
      plan.group_by->kind != ExprKind::kColumnRef) {
    return -1;
  }
  for (size_t d = 0; d < plan.dims.size(); ++d) {
    if (plan.dims[d].hop.fk_column == plan.group_by->column) {
      return static_cast<int>(d);
    }
  }
  return -1;
}

}  // namespace

HashStrategyEngine::HashStrategyEngine(StrategyKind kind,
                                       const Catalog& catalog,
                                       StrategyOptions options)
    : kind_(kind), catalog_(catalog), options_(options) {
  SWOLE_CHECK(kind != StrategyKind::kSwole);
}

Result<QueryResult> HashStrategyEngine::Execute(const QueryPlan& plan) {
  SWOLE_RETURN_NOT_OK(ValidatePlan(plan, catalog_));

  const int64_t tile = options_.tile_size;
  const Table& fact = catalog_.TableRef(plan.fact_table);
  VectorEvaluator eval(fact, tile);
  Scratch scratch(tile);
  const bool rof = kind_ == StrategyKind::kRof;

  // ---- Build phase ----
  const int groupjoin_dim = FindGroupjoinDim(plan);

  std::vector<std::unique_ptr<HashTable>> dim_sets(plan.dims.size());
  for (size_t d = 0; d < plan.dims.size(); ++d) {
    if (static_cast<int>(d) == groupjoin_dim) continue;  // fused below
    dim_sets[d] =
        pipeline::BuildDimKeySet(kind_, catalog_, plan.dims[d], tile);
  }

  std::vector<std::unique_ptr<HashTable>> reverse_sets;
  for (const ReverseDim& rdim : plan.reverse_dims) {
    reverse_sets.push_back(
        pipeline::BuildReverseKeySet(kind_, catalog_, rdim, tile));
  }

  std::unique_ptr<HashTable> disjunctive_ht;
  if (plan.disjunctive.has_value()) {
    disjunctive_ht = pipeline::BuildDisjunctiveHt(kind_, catalog_,
                                                  *plan.disjunctive, tile);
  }

  // Group table. For the groupjoin fusion its keys ARE the qualifying
  // dimension keys (build side); probing uses join mode (Find, no insert).
  std::unique_ptr<GroupTable> groups;
  if (plan.HasGroupBy()) {
    groups = std::make_unique<GroupTable>(
        plan, pipeline::ExpectedGroups(catalog_, plan));
    if (plan.group_seed.has_value()) {
      const Table& seed_table = catalog_.TableRef(plan.group_seed->table);
      const Column& key_col =
          seed_table.ColumnRef(plan.group_seed->key_column);
      for (int64_t start = 0; start < seed_table.num_rows(); start += tile) {
        int64_t len = std::min(tile, seed_table.num_rows() - start);
        DispatchPhysical(key_col.type().physical, [&]<typename T>() {
          const T* data = key_col.Data<T>() + start;
          for (int64_t j = 0; j < len; ++j) {
            groups->SeedKey(static_cast<int64_t>(data[j]));
          }
        });
      }
    }
    if (groupjoin_dim >= 0) {
      // Build the groupjoin table from the fused dimension: every
      // qualifying dim key is seeded (so probe misses mean "join filtered").
      const DimJoin& dim = plan.dims[groupjoin_dim];
      std::unique_ptr<HashTable> qualifying =
          pipeline::BuildDimKeySet(kind_, catalog_, dim, tile);
      qualifying->ForEach(
          [&](int64_t key, const int64_t*) { groups->SeedKey(key); });
    }
  }

  // ---- Probe-phase metadata ----
  std::vector<AggShape> shapes;
  std::vector<ResolvedPath> factor_paths(plan.aggs.size());
  for (size_t a = 0; a < plan.aggs.size(); ++a) {
    shapes.push_back(pipeline::DetectAggShape(fact, plan.aggs[a]));
    if (!plan.aggs[a].path_factor.empty()) {
      factor_paths[a] = pipeline::ResolvePath(
          catalog_, fact, *plan.FindPath(plan.aggs[a].path_factor));
    }
  }

  ResolvedPath group_path;
  if (!plan.group_by_path.empty()) {
    group_path = pipeline::ResolvePath(catalog_, fact,
                                       *plan.FindPath(plan.group_by_path));
  }

  std::vector<std::pair<ResolvedPath, ResolvedPath>> equality_paths;
  for (const PathEquality& eq : plan.path_equalities) {
    equality_paths.emplace_back(
        pipeline::ResolvePath(catalog_, fact, *plan.FindPath(eq.left_alias)),
        pipeline::ResolvePath(catalog_, fact,
                              *plan.FindPath(eq.right_alias)));
  }

  // Per-clause fact filters of the disjunctive join, prepass-evaluated
  // per tile (outside the per-lane loop).
  std::vector<std::vector<uint8_t>> clause_masks;
  if (plan.disjunctive.has_value()) {
    clause_masks.assign(plan.disjunctive->clauses.size(),
                        std::vector<uint8_t>(tile));
  }

  // Per-aggregate value buffers for grouped updates.
  std::vector<std::vector<int64_t>> value_storage(plan.aggs.size());
  std::vector<int64_t*> value_ptrs(plan.aggs.size());
  for (size_t a = 0; a < plan.aggs.size(); ++a) {
    value_storage[a].resize(tile);
    value_ptrs[a] = value_storage[a].data();
  }

  std::vector<int64_t> scalar_acc(plan.aggs.size());
  for (size_t a = 0; a < plan.aggs.size(); ++a) {
    scalar_acc[a] = plan.aggs[a].kind == AggKind::kMin
                        ? QueryResult::kMinIdentity
                        : plan.aggs[a].kind == AggKind::kMax
                              ? QueryResult::kMaxIdentity
                              : 0;
  }

  // Processes one batch of selected lanes. For DC/hybrid the batch is the
  // tile's local selection vector (base == tile start); for ROF it is the
  // carried FULL selection vector of global indices (base == 0).
  auto process_batch = [&](int64_t base, int32_t* sel, int32_t n,
                           int64_t mask_tile_start) -> void {
    // Join qualification: probe each dimension's key set by fk value.
    for (size_t d = 0; d < plan.dims.size(); ++d) {
      if (n == 0) return;
      if (static_cast<int>(d) == groupjoin_dim) continue;  // at agg time
      const Column& fk = fact.ColumnRef(plan.dims[d].hop.fk_column);
      DispatchPhysical(fk.type().physical, [&]<typename T>() {
        kernels::Gather<T>(fk.Data<T>() + base, sel, n, scratch.keys.data());
      });
      HashTable& set = *dim_sets[d];
      if (rof) {
        for (int32_t k = 0; k < n; ++k) set.PrefetchSlot(scratch.keys[k]);
      }
      for (int32_t k = 0; k < n; ++k) {
        scratch.cmp2[k] = set.Contains(scratch.keys[k]) ? 1 : 0;
      }
      n = pipeline::CompactSel(kind_, sel, scratch.cmp2.data(), n);
    }

    // Reverse dims: probe by the fact's own pk value.
    for (size_t r = 0; r < plan.reverse_dims.size(); ++r) {
      if (n == 0) return;
      const Column& pk = fact.ColumnRef(plan.reverse_dims[r].fact_pk_column);
      DispatchPhysical(pk.type().physical, [&]<typename T>() {
        kernels::Gather<T>(pk.Data<T>() + base, sel, n, scratch.keys.data());
      });
      HashTable& set = *reverse_sets[r];
      if (rof) {
        for (int32_t k = 0; k < n; ++k) set.PrefetchSlot(scratch.keys[k]);
      }
      for (int32_t k = 0; k < n; ++k) {
        scratch.cmp2[k] = set.Contains(scratch.keys[k]) ? 1 : 0;
      }
      n = pipeline::CompactSel(kind_, sel, scratch.cmp2.data(), n);
    }

    // Disjunctive join (Q19): payload bit k set => dim row passes clause k;
    // the lane qualifies if some clause also passes its fact-side filter.
    if (plan.disjunctive.has_value() && n > 0) {
      const Column& fk = fact.ColumnRef(plan.disjunctive->hop.fk_column);
      DispatchPhysical(fk.type().physical, [&]<typename T>() {
        kernels::Gather<T>(fk.Data<T>() + base, sel, n, scratch.keys.data());
      });
      if (rof) {
        for (int32_t k = 0; k < n; ++k) {
          disjunctive_ht->PrefetchSlot(scratch.keys[k]);
        }
      }
      for (int32_t k = 0; k < n; ++k) {
        const int64_t* payload = disjunctive_ht->Find(scratch.keys[k]);
        uint8_t dim_bits =
            payload != nullptr ? static_cast<uint8_t>(*payload) : 0;
        uint8_t ok = 0;
        for (size_t c = 0; c < plan.disjunctive->clauses.size(); ++c) {
          // clause_masks are tile-relative; translate the lane back.
          int64_t local = base + sel[k] - mask_tile_start;
          ok |= static_cast<uint8_t>(((dim_bits >> c) & 1) &
                                     clause_masks[c][local]);
        }
        scratch.cmp2[k] = ok;
      }
      n = pipeline::CompactSel(kind_, sel, scratch.cmp2.data(), n);
    }

    // Path equalities (Q5's s_nationkey = c_nationkey).
    for (const auto& [left, right] : equality_paths) {
      if (n == 0) return;
      pipeline::GatherPathSel(left, base, sel, n, &scratch,
                              scratch.vals.data());
      pipeline::GatherPathSel(right, base, sel, n, &scratch,
                              scratch.vals2.data());
      for (int32_t k = 0; k < n; ++k) {
        scratch.cmp2[k] = scratch.vals[k] == scratch.vals2[k] ? 1 : 0;
      }
      n = pipeline::CompactSel(kind_, sel, scratch.cmp2.data(), n);
    }

    if (n == 0) return;

    // Aggregation.
    if (!plan.HasGroupBy()) {
      pipeline::AccumulateScalarSel(fact, &eval, plan, shapes, factor_paths,
                                    base, sel, n, &scratch,
                                    scalar_acc.data());
      return;
    }

    // Group keys per lane.
    if (!plan.group_by_path.empty()) {
      pipeline::GatherPathSel(group_path, base, sel, n, &scratch,
                              scratch.keys.data());
    } else if (plan.group_by->kind == ExprKind::kColumnRef) {
      const Column& col = fact.ColumnRef(plan.group_by->column);
      DispatchPhysical(col.type().physical, [&]<typename T>() {
        kernels::Gather<T>(col.Data<T>() + base, sel, n,
                           scratch.keys.data());
      });
    } else {
      // General key expression: compacted evaluation over gathered refs.
      AggSpec key_spec;
      key_spec.kind = AggKind::kSum;
      key_spec.expr = plan.group_by->Clone();
      AggShape key_shape = pipeline::DetectAggShape(fact, key_spec);
      pipeline::AggValuesSel(fact, &eval, key_spec, key_shape, base, sel, n,
                             &scratch, scratch.keys.data());
    }

    for (size_t a = 0; a < plan.aggs.size(); ++a) {
      pipeline::AggValuesSel(fact, &eval, plan.aggs[a], shapes[a], base, sel,
                             n, &scratch, value_ptrs[a]);
      if (!plan.aggs[a].path_factor.empty()) {
        pipeline::GatherPathSel(factor_paths[a], base, sel, n, &scratch,
                                scratch.vals2.data());
        for (int32_t k = 0; k < n; ++k) {
          value_ptrs[a][k] *= scratch.vals2[k];
        }
      }
    }
    if (groupjoin_dim >= 0) {
      groups->UpdateJoinSel(scratch.keys.data(), value_ptrs, n, rof);
    } else {
      groups->UpdateSel(scratch.keys.data(), value_ptrs, n, rof);
    }
  };

  // ---- Probe phase ----
  // ROF carries a FULL selection vector of global indices across tiles
  // ("always operating on full intermediate result selection vectors").
  std::vector<int32_t> carry(tile);
  int32_t carry_n = 0;
  int64_t carry_mask_start = 0;  // tile start of the lanes in `carry`

  for (int64_t start = 0; start < fact.num_rows(); start += tile) {
    int64_t len = std::min(tile, fact.num_rows() - start);

    // Disjunctive per-clause fact filters: prepass once per tile.
    if (plan.disjunctive.has_value()) {
      // ROF's carry would mix lanes from tiles with different masks; flush
      // first so clause masks always refer to the current tile.
      if (rof && carry_n > 0) {
        process_batch(0, carry.data(), carry_n, carry_mask_start);
        carry_n = 0;
      }
      for (size_t c = 0; c < plan.disjunctive->clauses.size(); ++c) {
        pipeline::FilterToMask(&eval,
                               plan.disjunctive->clauses[c].fact_filter.get(),
                               start, len, clause_masks[c].data());
      }
      carry_mask_start = start;
    }

    int32_t n = pipeline::FilterToSelVec(kind_, &eval, fact,
                                         plan.fact_filter.get(), start, len,
                                         &scratch, scratch.sel.data());

    if (!rof) {
      process_batch(start, scratch.sel.data(), n, start);
      continue;
    }

    // ROF: append global indices until the vector is full, then process.
    int32_t appended = 0;
    while (appended < n) {
      int32_t space = static_cast<int32_t>(tile) - carry_n;
      int32_t take = std::min(space, n - appended);
      for (int32_t k = 0; k < take; ++k) {
        carry[carry_n + k] =
            static_cast<int32_t>(start) + scratch.sel[appended + k];
      }
      carry_n += take;
      appended += take;
      if (carry_n == static_cast<int32_t>(tile)) {
        process_batch(0, carry.data(), carry_n, carry_mask_start);
        carry_n = 0;
      }
    }
  }
  if (rof && carry_n > 0) {
    process_batch(0, carry.data(), carry_n, carry_mask_start);
  }

  // ---- Result extraction ----
  if (!plan.HasGroupBy()) {
    return pipeline::MakeScalarResult(plan, scalar_acc.data());
  }
  bool keep_untouched = plan.group_seed.has_value();
  return groups->Extract(plan, keep_untouched);
}

std::unique_ptr<Strategy> MakeStrategy(StrategyKind kind,
                                       const Catalog& catalog,
                                       StrategyOptions options) {
  if (kind == StrategyKind::kSwole) {
    extern std::unique_ptr<Strategy> MakeSwoleStrategyImpl(
        const Catalog& catalog, StrategyOptions options);
    return MakeSwoleStrategyImpl(catalog, options);
  }
  return std::make_unique<HashStrategyEngine>(kind, catalog, options);
}

const char* StrategyKindName(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kDataCentric:
      return "data-centric";
    case StrategyKind::kHybrid:
      return "hybrid";
    case StrategyKind::kRof:
      return "rof";
    case StrategyKind::kSwole:
      return "swole";
  }
  return "?";
}

}  // namespace swole
