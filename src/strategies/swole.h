#ifndef SWOLE_STRATEGIES_SWOLE_H_
#define SWOLE_STRATEGIES_SWOLE_H_

#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "strategies/common.h"
#include "strategies/strategy.h"

// The access-aware strategy (§III). SWOLE rewrites the plan's execution
// around predicate pullups:
//
//   * dimensions qualify through positional bitmaps probed via the fk
//     offset indexes (§III-D) instead of value-keyed hash tables;
//   * the aggregation runs under value masking, key masking, or the hybrid
//     fallback, chosen by the cost models of §III-A/B;
//   * repeated attribute references are fused by access merging (§III-C);
//   * groupjoins are rewritten to eager aggregation when the §III-E model
//     says the unconditional aggregate is cheaper.

namespace swole {

class SwoleStrategy : public Strategy {
 public:
  SwoleStrategy(const Catalog& catalog, StrategyOptions options);
  ~SwoleStrategy() override;

  StrategyKind kind() const override { return StrategyKind::kSwole; }

  Result<QueryResult> Execute(const QueryPlan& plan) override;

  /// What the cost model decided during the last Execute call. Not
  /// synchronized with in-flight Execute calls — read it after Execute
  /// returns on the calling thread (concurrent drivers should use one
  /// engine instance per thread; the worker pool and admission control are
  /// process-wide either way).
  const SwoleDecisions& last_decisions() const { return decisions_; }

 private:
  struct PlanAnalysis;
  struct CachedAnalysis;

  /// Runs the cost-model analysis for `plan`, memoized per plan object
  /// (the paper's timings cover query processing, not planning — repeated
  /// executions of the same plan reuse the decisions). Thread-safe: the
  /// cache is mutex-guarded and entries are stable once published. Under
  /// SWOLE_COST_REFIT=apply the analysis is made on the refitted profile
  /// and keyed on the feedback epoch: when the fitted scales move
  /// materially, the plan re-analyzes (the superseded entry is retired,
  /// not destroyed, so references held by in-flight executions stay
  /// valid); with refit off, memoization behaves exactly as before.
  const CachedAnalysis& Analyze(const QueryPlan& plan);

  /// Mid-query re-decision (ExecuteGeneral / ExecuteGroupjoin): re-runs
  /// the aggregation-technique choice with build-phase observations
  /// substituted for estimates. Returns the (possibly overturned) choice;
  /// records the decision on the trace root and in decisions_.rationale.
  AggChoice ReDecideAggregation(const PlanAnalysis& analysis,
                                double fact_rows, double observed_sigma,
                                int64_t observed_ht_bytes,
                                exec::QueryContext* qctx, const char* where);

  Result<QueryResult> ExecuteEagerAggregation(const QueryPlan& plan,
                                              const PlanAnalysis& analysis,
                                              exec::QueryContext* qctx);
  Result<QueryResult> ExecuteGroupjoin(const QueryPlan& plan,
                                       const PlanAnalysis& analysis,
                                       exec::QueryContext* qctx);
  Result<QueryResult> ExecuteGeneral(const QueryPlan& plan,
                                     const PlanAnalysis& analysis,
                                     exec::QueryContext* qctx);

  const Catalog& catalog_;
  StrategyOptions options_;
  CostProfile profile_;
  SwoleDecisions decisions_;
  // Guards analysis_cache_ and writes to decisions_ (Analyze runs from
  // concurrent driver threads when an instance is shared).
  mutable std::mutex analysis_mu_;
  std::map<const QueryPlan*, std::unique_ptr<CachedAnalysis>>
      analysis_cache_;
  // Entries superseded by a refit-epoch change. Kept alive (not destroyed)
  // because concurrent Executes may still hold references; growth is
  // bounded by material model shifts, not by query count.
  std::vector<std::unique_ptr<CachedAnalysis>> retired_analyses_;
};

}  // namespace swole

#endif  // SWOLE_STRATEGIES_SWOLE_H_
