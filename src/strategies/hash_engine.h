#ifndef SWOLE_STRATEGIES_HASH_ENGINE_H_
#define SWOLE_STRATEGIES_HASH_ENGINE_H_

#include <memory>

#include "strategies/common.h"
#include "strategies/strategy.h"

// The three traditional (predicate-pushdown) strategies share one engine:
// they execute the same plan shape — filter early, probe join hash tables
// by key value, aggregate only surviving tuples (the s_trav_cr pattern of
// §II-B) — and differ exactly where the paper says they differ:
//
//   data-centric: branching filters fused conjunct-by-conjunct; branching
//                 selection refinement on probes.
//   hybrid:       branch-free prepass + no-branch partial selection vectors
//                 (flushed every tile).
//   ROF:          prepass + lookup-table selection, FULL selection vectors
//                 carried across tiles, software prefetching before hash
//                 probes.

namespace swole {

class HashStrategyEngine : public Strategy {
 public:
  HashStrategyEngine(StrategyKind kind, const Catalog& catalog,
                     StrategyOptions options);

  StrategyKind kind() const override { return kind_; }

  /// Governed execution boundary: resolves the QueryContext (options /
  /// environment), runs the plan, and converts any governance abort
  /// (budget / deadline / cancellation) or worker exception into a
  /// structured error Status instead of letting it escape.
  Result<QueryResult> Execute(const QueryPlan& plan) override;

 private:
  Result<QueryResult> ExecuteGoverned(const QueryPlan& plan,
                                      exec::QueryContext* qctx);

  StrategyKind kind_;
  const Catalog& catalog_;
  StrategyOptions options_;
};

}  // namespace swole

#endif  // SWOLE_STRATEGIES_HASH_ENGINE_H_
