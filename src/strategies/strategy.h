#ifndef SWOLE_STRATEGIES_STRATEGY_H_
#define SWOLE_STRATEGIES_STRATEGY_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "cost/cost_model.h"
#include "exec/kernels.h"
#include "plan/plan.h"
#include "plan/result.h"

// The four code-generation strategies as execution engines over the plan
// algebra. All engines share the primitive kernels (exec/kernels.h) and the
// hash table (exec/hash_table.h) — the paper's "same library code" setup —
// so a runtime difference between two engines on the same plan reflects the
// strategy (its data access patterns), not incidental implementation
// differences.

namespace swole {

namespace exec {
class QueryContext;
}  // namespace exec

namespace obs {
class QueryTrace;
}  // namespace obs

enum class StrategyKind : uint8_t {
  kDataCentric,  // HyPer-style tuple-at-a-time with branching [3]
  kHybrid,       // Tupleware-style prepass + partial selection vectors [4]
  kRof,          // Peloton's relaxed operator fusion: full selection
                 // vectors, LUT selection, software prefetching [5]
  kSwole,        // access-aware: predicate pullups, masking, positional
                 // bitmaps, eager aggregation (this paper)
};

const char* StrategyKindName(StrategyKind kind);

struct StrategyOptions {
  int64_t tile_size = kernels::kDefaultTileSize;

  // Morsel-driven parallelism (exec/scheduler.h): number of worker threads
  // for the build and probe phases. 0 defers to the SWOLE_THREADS
  // environment variable (default 1). Results are bit-exact at every
  // thread count: per-worker states are merged in worker order.
  int num_threads = 0;

  // Cost-model inputs for SWOLE's technique decisions (null = default
  // deterministic profile).
  const CostProfile* cost_profile = nullptr;

  // Ablation switches (SWOLE only): force-disable individual techniques so
  // benchmarks can measure each one's contribution.
  bool enable_value_masking = true;
  bool enable_key_masking = true;
  bool enable_access_merging = true;
  bool enable_positional_bitmaps = true;
  bool enable_eager_aggregation = true;

  // Overrides the cost model (for microbenchmarks that pin a technique):
  // when set, SWOLE uses exactly this aggregation technique.
  enum class ForceAgg { kAuto, kValueMasking, kKeyMasking, kHybridFallback };
  ForceAgg force_agg = ForceAgg::kAuto;

  // Forces the eager-aggregation rewrite whenever the plan shape is
  // eligible, regardless of the cost model (Fig. 12's EA series).
  bool force_eager_aggregation = false;

  // Probes dimension qualification through block-compressed bitmaps
  // instead of plain ones (§III-D: "we can always compress the bitmap ...
  // but the benefits in size reduction would need to be weighed against
  // the increased access overhead"). Exposed for the bitmap benchmark.
  bool use_compressed_bitmaps = false;

  // ---- Query-lifecycle governance (exec/query_context.h) ----

  // Externally owned context carrying the memory budget, deadline, and
  // cancellation token for this execution. When set it wins over the limit
  // fields below and over the environment. The caller retains ownership
  // and may RequestCancel() from another thread.
  exec::QueryContext* query_ctx = nullptr;

  // Hard memory budget in bytes for tracked build-side structures
  // (hash tables, group tables, positional bitmaps). -1 defers to
  // SWOLE_MEM_LIMIT (absent = unlimited); 0 explicitly unlimited.
  int64_t mem_limit_bytes = -1;

  // Wall-clock deadline for the whole execution. -1 defers to
  // SWOLE_DEADLINE_MS (absent = none); 0 explicitly none.
  int64_t deadline_ms = -1;

  // Spill-to-disk for group tables that breach the memory budget
  // (exec/spill.h, DESIGN.md §14): -1 defers to SWOLE_SPILL (default off),
  // 0 forces off, 1 forces on. Only insert-mode group tables spill;
  // join-mode and group-seeded plans keep their budget-abort behavior.
  int spill = -1;

  // ---- Concurrent serving (exec/admission.h, exec/scheduler.h) ----

  // Scheduler priority of this query's morsel work in the shared worker
  // pool: higher runs first, equal priorities share round-robin. Only
  // meaningful when concurrent queries compete for the pool.
  int priority = 0;

  // Tenant identity for per-tenant admission caps (SWOLE_TENANT_MAX_QUERIES).
  // Empty = the default tenant (never capped per-tenant).
  std::string tenant;

  // ---- Observability (obs/trace.h) ----

  // Per-query trace to record spans into (strategy choice, operator
  // phases, morsel rollups, governance events). Null (the default)
  // disables recording at zero cost; SWOLE_TRACE=1 enables an internally
  // owned trace instead, rendered at DEBUG log level. When query_ctx is
  // also set, the trace attaches to it for the duration of the call unless
  // the context already carries one.
  obs::QueryTrace* trace = nullptr;
};

/// Explanation of what SWOLE decided for a plan (for tests, examples, and
/// EXPERIMENTS.md narration).
struct SwoleDecisions {
  std::string aggregation;       // "value-masking" / "key-masking" / "hybrid"
  bool used_access_merging = false;
  bool used_positional_bitmaps = false;
  bool used_eager_aggregation = false;
  // A raw-string fact predicate was pulled above the joins and the other
  // conjuncts (string placement, cost/string_placement.h). False when the
  // plan had no raw-string conjunct or the cost model chose pushdown.
  bool used_string_pullup = false;
  // The pullup plan breached its memory budget and the execution was
  // retried (successfully or not) under the memory-lean data-centric
  // strategy (graceful degradation).
  bool degraded_to_data_centric = false;
  std::string rationale;
};

class Strategy {
 public:
  virtual ~Strategy() = default;

  virtual StrategyKind kind() const = 0;
  const char* name() const { return StrategyKindName(kind()); }

  /// Executes `plan` against the engine's catalog. Results are normalized
  /// (groups sorted by key) and bit-exact across engines.
  virtual Result<QueryResult> Execute(const QueryPlan& plan) = 0;
};

/// Creates an engine. `catalog` must outlive it.
std::unique_ptr<Strategy> MakeStrategy(StrategyKind kind,
                                       const Catalog& catalog,
                                       StrategyOptions options = {});

/// SWOLE-specific factory giving access to the decision trace.
class SwoleStrategy;
std::unique_ptr<SwoleStrategy> MakeSwoleStrategy(const Catalog& catalog,
                                                 StrategyOptions options = {});

}  // namespace swole

#endif  // SWOLE_STRATEGIES_STRATEGY_H_
