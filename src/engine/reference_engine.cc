#include "engine/reference_engine.h"

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "common/logging.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "cost/string_placement.h"
#include "exec/admission.h"
#include "exec/query_context.h"
#include "exec/scheduler.h"
#include "exec/spill.h"
#include "expr/scalar_eval.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/table.h"

namespace swole {

namespace {

// Per-table scalar evaluators, created lazily (LIKE masks cached inside).
class EvaluatorPool {
 public:
  explicit EvaluatorPool(const Catalog& catalog) : catalog_(catalog) {}

  ScalarEvaluator& For(const std::string& table_name) {
    auto it = evaluators_.find(table_name);
    if (it == evaluators_.end()) {
      it = evaluators_
               .emplace(table_name,
                        std::make_unique<ScalarEvaluator>(
                            catalog_.TableRef(table_name)))
               .first;
    }
    return *it->second;
  }

 private:
  const Catalog& catalog_;
  std::map<std::string, std::unique_ptr<ScalarEvaluator>> evaluators_;
};

// Recursively decides whether dimension row `row` of `dim` qualifies.
bool DimRowQualifies(const DimJoin& dim, const Catalog& catalog,
                     EvaluatorPool* pool, int64_t row) {
  const Table& table = catalog.TableRef(dim.hop.to_table);
  if (dim.filter != nullptr &&
      pool->For(dim.hop.to_table).Eval(*dim.filter, row) == 0) {
    return false;
  }
  for (const DimJoin& child : dim.children) {
    const FkIndex* index =
        table.GetFkIndex(child.hop.fk_column).ValueOr(nullptr);
    SWOLE_CHECK(index != nullptr);
    if (!DimRowQualifies(child, catalog, pool,
                         index->OffsetAt(row))) {
      return false;
    }
  }
  return true;
}

// Follows a path's hops from fact row `row` to the final row offset and
// table, returning the column value at the end (or the 0/1 LIKE flag when
// the path carries a pattern).
int64_t ResolvePath(const ColumnPath& path, const Catalog& catalog,
                    const std::string& fact_table, int64_t row) {
  const Table* current = &catalog.TableRef(fact_table);
  int64_t offset = row;
  for (const Hop& hop : path.hops) {
    const FkIndex* index =
        current->GetFkIndex(hop.fk_column).ValueOr(nullptr);
    SWOLE_CHECK(index != nullptr);
    offset = index->OffsetAt(offset);
    current = &catalog.TableRef(hop.to_table);
  }
  const Column& column = current->ColumnRef(path.column);
  int64_t value = column.ValueAt(offset);
  if (!path.like_pattern.empty()) {
    const Dictionary* dict = column.dictionary();
    SWOLE_CHECK(dict != nullptr);
    return LikeMatch(dict->At(static_cast<int32_t>(value)),
                     path.like_pattern)
               ? 1
               : 0;
  }
  return value;
}

void UpdateAgg(AggKind kind, int64_t* slot, int64_t value) {
  switch (kind) {
    case AggKind::kSum:
    case AggKind::kCount:
      *slot += value;
      return;
    case AggKind::kMin:
      if (value < *slot) *slot = value;
      return;
    case AggKind::kMax:
      if (value > *slot) *slot = value;
      return;
  }
}

int64_t AggIdentity(AggKind kind) {
  switch (kind) {
    case AggKind::kMin:
      return QueryResult::kMinIdentity;
    case AggKind::kMax:
      return QueryResult::kMaxIdentity;
    default:
      return 0;
  }
}

}  // namespace

Result<QueryResult> ReferenceEngine::Execute(const QueryPlan& plan) {
  SWOLE_RETURN_NOT_OK(ValidatePlan(plan, catalog_));
  // The oracle serves under the same admission regime as the strategy
  // engines: correctness-checking traffic is still traffic.
  exec::AdmissionScope admission(tenant_);
  SWOLE_RETURN_NOT_OK(admission.status());
  static obs::Counter& queries =
      obs::MetricsRegistry::Global().GetCounter("queries.reference");
  static obs::Histogram& latency =
      obs::MetricsRegistry::Global().GetHistogram("query.latency_us.reference");
  queries.Add(1);
  Timer timer;
  exec::GovernanceScope governance(query_ctx_, /*mem_limit_bytes=*/-1,
                                   /*deadline_ms=*/-1);
  Result<QueryResult> result = [&]() -> Result<QueryResult> {
    try {
      return ExecuteGoverned(plan, governance.ctx());
    } catch (...) {
      return exec::StatusFromCurrentException(governance.ctx());
    }
  }();
  latency.Record(timer.ElapsedNanos() / 1000);
  return result;
}

Result<QueryResult> ReferenceEngine::ExecuteGoverned(
    const QueryPlan& plan, exec::QueryContext* qctx) {
  const Table& fact = catalog_.TableRef(plan.fact_table);
  const int num_threads = exec::ResolveNumThreads(num_threads_);

  // Raw-string predicate placement (cost/string_placement.h): the oracle
  // honors the same split as the strategy engines — scan_filter first,
  // pulled conjuncts after every other qualification — through a fully
  // independent evaluator (ScalarEvaluator's LikeMatch, not the kernels).
  // AND commutes, so this changes evaluation order only; what it buys is a
  // second implementation of the split for the differential tests to pin
  // the engines against.
  const StringPredSplit str_split =
      DecideStringPlacement(plan, catalog_, CostProfile::Default());

  obs::QueryTrace* trace = qctx != nullptr ? qctx->trace() : nullptr;
  obs::SpanScope engine_span(trace, "reference");
  engine_span.Attr("threads", static_cast<int64_t>(num_threads));
  std::optional<obs::SpanScope> phase;
  phase.emplace(trace, "build");

  // Reverse dims: precompute the set of qualifying fact offsets (on the
  // caller thread, before the parallel fact scan — shards read them).
  std::vector<std::vector<bool>> reverse_marks;
  {
    EvaluatorPool build_pool(catalog_);
    for (const ReverseDim& rdim : plan.reverse_dims) {
      const Table& rtable = catalog_.TableRef(rdim.table);
      const FkIndex* index =
          rtable.GetFkIndex(rdim.fk_column).ValueOr(nullptr);
      SWOLE_CHECK(index != nullptr);
      std::vector<bool> marks(fact.num_rows(), false);
      ScalarEvaluator& reval = build_pool.For(rdim.table);
      for (int64_t row = 0; row < rtable.num_rows(); ++row) {
        // Sequential scan: a per-tile liveness check stands in for the
        // morsel-boundary checkpoint of the parallel path.
        if (qctx != nullptr && (row & 4095) == 0) {
          exec::ThrowIfError(qctx->CheckLive());
        }
        if (rdim.filter == nullptr || reval.Eval(*rdim.filter, row) != 0) {
          marks[index->OffsetAt(row)] = true;
        }
      }
      reverse_marks.push_back(std::move(marks));
    }
  }

  const int num_aggs = static_cast<int>(plan.aggs.size());
  std::vector<int64_t> identities(num_aggs);
  for (int a = 0; a < num_aggs; ++a) {
    identities[a] = AggIdentity(plan.aggs[a].kind);
  }

  // One shard per worker: private evaluator pool (LIKE caches are not
  // shared), private group map and scalar slots. Shards are merged in
  // worker order below; all merges are order-insensitive on int64, so the
  // result is bit-exact with the single-threaded scan.
  struct Shard {
    EvaluatorPool pool;
    std::map<int64_t, std::vector<int64_t>> groups;
    std::vector<int64_t> scalar;
    int64_t charged = 0;  // groups charged at "reference_groups"
    explicit Shard(const Catalog& catalog) : pool(catalog) {}
  };
  std::vector<std::unique_ptr<Shard>> shards;
  for (int w = 0; w < num_threads; ++w) {
    shards.push_back(std::make_unique<Shard>(catalog_));
    shards.back()->scalar = identities;
  }

  // Spill engagement (DESIGN.md §14). Historically the oracle charged
  // nothing — it exists to check answers, not budgets — so group charging
  // at "reference_groups" only turns on together with spill: a
  // budget-constrained oracle then degrades the same ladder as the
  // strategy engines instead of silently ignoring the limit. Spilled
  // payloads are the raw aggregate values; the merge combines them by
  // aggregate kind (sum/count add, min/max compare — all associative and
  // commutative, so fragment order cannot change the result).
  std::unique_ptr<exec::SpillManager> spill;
  if (plan.HasGroupBy() && !plan.group_seed.has_value() && qctx != nullptr &&
      qctx->spill_enabled() && num_aggs > 0) {
    exec::SpillConfig spill_cfg = exec::SpillConfig::FromEnv();
    spill_cfg.enabled = true;
    spill = std::make_unique<exec::SpillManager>(spill_cfg, num_aggs, qctx);
  }
  // Approximate footprint of one group: red-black node overhead + key +
  // vector header + aggregate slots.
  const int64_t group_bytes = 64 + 8 * static_cast<int64_t>(num_aggs);
  struct ChargeRelease {
    exec::QueryContext* ctx = nullptr;
    std::vector<std::unique_ptr<Shard>>* shards = nullptr;
    int64_t group_bytes = 0;
    ~ChargeRelease() {
      if (ctx == nullptr) return;
      for (auto& shard : *shards) {
        if (shard->charged > 0) {
          ctx->TryCharge(-shard->charged * group_bytes, "reference_groups");
          shard->charged = 0;
        }
      }
    }
  } charge_release{spill != nullptr ? qctx : nullptr, &shards, group_bytes};

  // Drains a shard's accumulated groups to disk and releases their charge.
  auto spill_shard = [&](Shard& shard) {
    for (const auto& [key, aggs] : shard.groups) {
      exec::ThrowIfError(spill->SpillRow(key, aggs.data()));
    }
    spill->NoteSpillEvent();
    if (shard.charged > 0) {
      qctx->TryCharge(-shard.charged * group_bytes, "reference_groups");
      shard.charged = 0;
    }
    shard.groups.clear();
    qctx->CountSpill();
  };

  // Group-slot lookup with budget charging: a refused insert spills the
  // shard (including the just-inserted identity entry, whose real updates
  // follow the re-insert — identities merge neutrally) and retries once.
  auto locate_group = [&](Shard& shard, int64_t key) -> std::vector<int64_t>* {
    auto [it, inserted] = shard.groups.try_emplace(key, identities);
    if (!inserted || spill == nullptr) return &it->second;
    AbortReason reason = qctx->TryCharge(group_bytes, "reference_groups");
    if (reason == AbortReason::kNone) {
      ++shard.charged;
      return &it->second;
    }
    if (reason != AbortReason::kBudget) {
      throw QueryAbort(reason, "reference_groups", group_bytes);
    }
    // Recovering from the refusal: drop its pending-abort record first so a
    // failure inside the spill itself classifies as its own error.
    qctx->ClearRecoveredBudgetAbort();
    spill_shard(shard);
    it = shard.groups.try_emplace(key, identities).first;
    reason = qctx->TryCharge(group_bytes, "reference_groups");
    if (reason != AbortReason::kNone) {
      // One group from an empty shard still refused: the budget itself is
      // too small, and spilling again would loop without progress.
      throw QueryAbort(reason, "reference_groups", group_bytes);
    }
    ++shard.charged;
    return &it->second;
  };

  if (plan.group_seed.has_value()) {
    const Table& seed_table = catalog_.TableRef(plan.group_seed->table);
    const Column& key_col = seed_table.ColumnRef(plan.group_seed->key_column);
    for (int64_t row = 0; row < seed_table.num_rows(); ++row) {
      shards[0]->groups.emplace(key_col.ValueAt(row), identities);
    }
  }

  auto process_row = [&](Shard& shard, int64_t row) {
    EvaluatorPool& pool = shard.pool;
    ScalarEvaluator& fact_eval = pool.For(plan.fact_table);

    if (str_split.scan_filter != nullptr &&
        fact_eval.Eval(*str_split.scan_filter, row) == 0) {
      return;
    }

    bool qualified = true;
    for (const DimJoin& dim : plan.dims) {
      const FkIndex* index =
          fact.GetFkIndex(dim.hop.fk_column).ValueOr(nullptr);
      SWOLE_CHECK(index != nullptr);
      if (!DimRowQualifies(dim, catalog_, &pool, index->OffsetAt(row))) {
        qualified = false;
        break;
      }
    }
    if (!qualified) return;

    for (const std::vector<bool>& marks : reverse_marks) {
      if (!marks[row]) {
        qualified = false;
        break;
      }
    }
    if (!qualified) return;

    if (plan.disjunctive.has_value()) {
      const DisjunctiveJoin& dj = *plan.disjunctive;
      const FkIndex* index =
          fact.GetFkIndex(dj.hop.fk_column).ValueOr(nullptr);
      SWOLE_CHECK(index != nullptr);
      int64_t dim_row = index->OffsetAt(row);
      ScalarEvaluator& dim_eval = pool.For(dj.hop.to_table);
      bool any = false;
      for (const DisjunctiveJoin::Clause& clause : dj.clauses) {
        bool dim_ok = clause.dim_filter == nullptr ||
                      dim_eval.Eval(*clause.dim_filter, dim_row) != 0;
        bool fact_ok = clause.fact_filter == nullptr ||
                       fact_eval.Eval(*clause.fact_filter, row) != 0;
        if (dim_ok && fact_ok) {
          any = true;
          break;
        }
      }
      if (!any) return;
    }

    bool equalities_hold = true;
    for (const PathEquality& eq : plan.path_equalities) {
      int64_t lhs = ResolvePath(*plan.FindPath(eq.left_alias), catalog_,
                                plan.fact_table, row);
      int64_t rhs = ResolvePath(*plan.FindPath(eq.right_alias), catalog_,
                                plan.fact_table, row);
      if (lhs != rhs) {
        equalities_hold = false;
        break;
      }
    }
    if (!equalities_hold) return;

    // Pulled raw-string predicates: last, as in the strategy engines.
    for (const Expr* pred : str_split.pulled) {
      if (fact_eval.Eval(*pred, row) == 0) return;
    }

    // Locate the aggregation slots for this row.
    std::vector<int64_t>* slots = &shard.scalar;
    if (plan.HasGroupBy()) {
      int64_t key =
          plan.group_by != nullptr
              ? fact_eval.Eval(*plan.group_by, row)
              : ResolvePath(*plan.FindPath(plan.group_by_path), catalog_,
                            plan.fact_table, row);
      slots = locate_group(shard, key);
    }

    for (int a = 0; a < num_aggs; ++a) {
      const AggSpec& agg = plan.aggs[a];
      int64_t value =
          agg.kind == AggKind::kCount ? 1 : fact_eval.Eval(*agg.expr, row);
      if (!agg.path_factor.empty()) {
        value *= ResolvePath(*plan.FindPath(agg.path_factor), catalog_,
                             plan.fact_table, row);
      }
      UpdateAgg(agg.kind, &(*slots)[a], value);
    }
  };

  phase.reset();  // build
  phase.emplace(trace, "scan");
  exec::MorselStats scan_stats = exec::ParallelMorsels(
      qctx, num_threads, fact.num_rows(), /*morsel_size=*/4096,
      [&](int worker, int64_t begin, int64_t end) {
        Shard& shard = *shards[worker];
        for (int64_t row = begin; row < end; ++row) {
          process_row(shard, row);
        }
      });
  phase->Attr("morsels", scan_stats.morsels);
  phase->Attr("steals", scan_stats.steals);
  phase->Attr("workers", static_cast<int64_t>(scan_stats.workers));
  phase.reset();
  SWOLE_RETURN_NOT_OK(scan_stats.status);

  phase.emplace(trace, "merge");
  std::map<int64_t, std::vector<int64_t>>& groups = shards[0]->groups;
  std::vector<int64_t>& scalar = shards[0]->scalar;
  for (int w = 1; w < num_threads; ++w) {
    for (int a = 0; a < num_aggs; ++a) {
      UpdateAgg(plan.aggs[a].kind, &scalar[a], shards[w]->scalar[a]);
    }
    for (const auto& [key, partial] : shards[w]->groups) {
      // locate_group keeps the merge budget-honest too: a refused insert
      // spills shard 0 and continues from this same entry, so each partial
      // is applied exactly once across memory and disk fragments.
      std::vector<int64_t>* slots = locate_group(*shards[0], key);
      for (int a = 0; a < num_aggs; ++a) {
        UpdateAgg(plan.aggs[a].kind, &(*slots)[a], partial[a]);
      }
    }
  }
  phase.reset();

  phase.emplace(trace, "extract");
  QueryResult result;
  for (const AggSpec& agg : plan.aggs) result.agg_names.push_back(agg.name);

  if (!plan.HasGroupBy()) {
    result.grouped = false;
    result.scalar = std::move(scalar);
    return result;
  }

  result.grouped = true;
  if (spill != nullptr && spill->spilled()) {
    // Partitioned rebuild: drain the residual, then merge partitions as
    // morsels on the shared pool. Partitions hold disjoint key sets and
    // every per-kind combine is associative and commutative, so the final
    // key sort makes the result bit-identical to the in-memory path.
    obs::SpanScope spill_span(trace, "spill-merge");
    spill_shard(*shards[0]);
    exec::ThrowIfError(spill->Flush());
    const int partitions = spill->num_partitions();
    std::vector<std::vector<int64_t>> partition_rows(partitions);
    const exec::SpillMergeFn merge_fn = [&](int64_t* dst,
                                            const int64_t* src) {
      for (int a = 0; a < num_aggs; ++a) {
        UpdateAgg(plan.aggs[a].kind, &dst[a], src[a]);
      }
    };
    exec::MorselStats merge_stats = exec::ParallelMorsels(
        qctx, num_threads, partitions, /*morsel_size=*/1,
        [&](int /*worker*/, int64_t begin, int64_t end) {
          for (int64_t p = begin; p < end; ++p) {
            exec::ThrowIfError(spill->MergePartition(
                static_cast<int>(p), merge_fn, &partition_rows[p]));
          }
        });
    SWOLE_RETURN_NOT_OK(merge_stats.status);
    spill_span.Attr("spill.bytes_written", spill->bytes_written());
    spill_span.Attr("spill.partitions", static_cast<int64_t>(partitions));
    spill_span.Attr("spill.max_depth", spill->max_depth_reached());
    spill_span.Attr("spill.events", spill->spill_events());
    const size_t stride = 1 + static_cast<size_t>(num_aggs);
    if (plan.histogram_of_agg0) {
      std::map<int64_t, int64_t> histogram;
      for (const auto& rows : partition_rows) {
        for (size_t i = 0; i < rows.size(); i += stride) {
          histogram[rows[i + 1]]++;
        }
      }
      result.num_aggs = 1;
      for (const auto& [value, count] : histogram) {
        result.AddGroup(value, &count);
      }
      result.agg_names = {"group_count"};
    } else {
      result.num_aggs = num_aggs;
      for (const auto& rows : partition_rows) {
        for (size_t i = 0; i < rows.size(); i += stride) {
          result.AddGroup(rows[i], rows.data() + i + 1);
        }
      }
      result.SortGroups();
    }
    return result;
  }
  if (plan.histogram_of_agg0) {
    // Second-level aggregation (Q13): count groups per value of agg 0.
    std::map<int64_t, int64_t> histogram;
    for (const auto& [key, aggs] : groups) histogram[aggs[0]]++;
    result.num_aggs = 1;
    for (const auto& [value, count] : histogram) {
      result.AddGroup(value, &count);
    }
    result.agg_names = {"group_count"};
  } else {
    result.num_aggs = num_aggs;
    for (const auto& [key, aggs] : groups) {
      result.AddGroup(key, aggs.data());
    }
  }
  // std::map iteration is already key-ordered; SortGroups is a no-op kept
  // for uniformity.
  result.SortGroups();
  return result;
}

}  // namespace swole
