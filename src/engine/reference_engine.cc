#include "engine/reference_engine.h"

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "common/logging.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "exec/admission.h"
#include "exec/query_context.h"
#include "exec/scheduler.h"
#include "expr/scalar_eval.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/table.h"

namespace swole {

namespace {

// Per-table scalar evaluators, created lazily (LIKE masks cached inside).
class EvaluatorPool {
 public:
  explicit EvaluatorPool(const Catalog& catalog) : catalog_(catalog) {}

  ScalarEvaluator& For(const std::string& table_name) {
    auto it = evaluators_.find(table_name);
    if (it == evaluators_.end()) {
      it = evaluators_
               .emplace(table_name,
                        std::make_unique<ScalarEvaluator>(
                            catalog_.TableRef(table_name)))
               .first;
    }
    return *it->second;
  }

 private:
  const Catalog& catalog_;
  std::map<std::string, std::unique_ptr<ScalarEvaluator>> evaluators_;
};

// Recursively decides whether dimension row `row` of `dim` qualifies.
bool DimRowQualifies(const DimJoin& dim, const Catalog& catalog,
                     EvaluatorPool* pool, int64_t row) {
  const Table& table = catalog.TableRef(dim.hop.to_table);
  if (dim.filter != nullptr &&
      pool->For(dim.hop.to_table).Eval(*dim.filter, row) == 0) {
    return false;
  }
  for (const DimJoin& child : dim.children) {
    const FkIndex* index =
        table.GetFkIndex(child.hop.fk_column).ValueOr(nullptr);
    SWOLE_CHECK(index != nullptr);
    if (!DimRowQualifies(child, catalog, pool,
                         index->OffsetAt(row))) {
      return false;
    }
  }
  return true;
}

// Follows a path's hops from fact row `row` to the final row offset and
// table, returning the column value at the end (or the 0/1 LIKE flag when
// the path carries a pattern).
int64_t ResolvePath(const ColumnPath& path, const Catalog& catalog,
                    const std::string& fact_table, int64_t row) {
  const Table* current = &catalog.TableRef(fact_table);
  int64_t offset = row;
  for (const Hop& hop : path.hops) {
    const FkIndex* index =
        current->GetFkIndex(hop.fk_column).ValueOr(nullptr);
    SWOLE_CHECK(index != nullptr);
    offset = index->OffsetAt(offset);
    current = &catalog.TableRef(hop.to_table);
  }
  const Column& column = current->ColumnRef(path.column);
  int64_t value = column.ValueAt(offset);
  if (!path.like_pattern.empty()) {
    const Dictionary* dict = column.dictionary();
    SWOLE_CHECK(dict != nullptr);
    return LikeMatch(dict->At(static_cast<int32_t>(value)),
                     path.like_pattern)
               ? 1
               : 0;
  }
  return value;
}

void UpdateAgg(AggKind kind, int64_t* slot, int64_t value) {
  switch (kind) {
    case AggKind::kSum:
    case AggKind::kCount:
      *slot += value;
      return;
    case AggKind::kMin:
      if (value < *slot) *slot = value;
      return;
    case AggKind::kMax:
      if (value > *slot) *slot = value;
      return;
  }
}

int64_t AggIdentity(AggKind kind) {
  switch (kind) {
    case AggKind::kMin:
      return QueryResult::kMinIdentity;
    case AggKind::kMax:
      return QueryResult::kMaxIdentity;
    default:
      return 0;
  }
}

}  // namespace

Result<QueryResult> ReferenceEngine::Execute(const QueryPlan& plan) {
  SWOLE_RETURN_NOT_OK(ValidatePlan(plan, catalog_));
  // The oracle serves under the same admission regime as the strategy
  // engines: correctness-checking traffic is still traffic.
  exec::AdmissionScope admission(tenant_);
  SWOLE_RETURN_NOT_OK(admission.status());
  static obs::Counter& queries =
      obs::MetricsRegistry::Global().GetCounter("queries.reference");
  static obs::Histogram& latency =
      obs::MetricsRegistry::Global().GetHistogram("query.latency_us.reference");
  queries.Add(1);
  Timer timer;
  exec::GovernanceScope governance(query_ctx_, /*mem_limit_bytes=*/-1,
                                   /*deadline_ms=*/-1);
  Result<QueryResult> result = [&]() -> Result<QueryResult> {
    try {
      return ExecuteGoverned(plan, governance.ctx());
    } catch (...) {
      return exec::StatusFromCurrentException(governance.ctx());
    }
  }();
  latency.Record(timer.ElapsedNanos() / 1000);
  return result;
}

Result<QueryResult> ReferenceEngine::ExecuteGoverned(
    const QueryPlan& plan, exec::QueryContext* qctx) {
  const Table& fact = catalog_.TableRef(plan.fact_table);
  const int num_threads = exec::ResolveNumThreads(num_threads_);

  obs::QueryTrace* trace = qctx != nullptr ? qctx->trace() : nullptr;
  obs::SpanScope engine_span(trace, "reference");
  engine_span.Attr("threads", static_cast<int64_t>(num_threads));
  std::optional<obs::SpanScope> phase;
  phase.emplace(trace, "build");

  // Reverse dims: precompute the set of qualifying fact offsets (on the
  // caller thread, before the parallel fact scan — shards read them).
  std::vector<std::vector<bool>> reverse_marks;
  {
    EvaluatorPool build_pool(catalog_);
    for (const ReverseDim& rdim : plan.reverse_dims) {
      const Table& rtable = catalog_.TableRef(rdim.table);
      const FkIndex* index =
          rtable.GetFkIndex(rdim.fk_column).ValueOr(nullptr);
      SWOLE_CHECK(index != nullptr);
      std::vector<bool> marks(fact.num_rows(), false);
      ScalarEvaluator& reval = build_pool.For(rdim.table);
      for (int64_t row = 0; row < rtable.num_rows(); ++row) {
        // Sequential scan: a per-tile liveness check stands in for the
        // morsel-boundary checkpoint of the parallel path.
        if (qctx != nullptr && (row & 4095) == 0) {
          exec::ThrowIfError(qctx->CheckLive());
        }
        if (rdim.filter == nullptr || reval.Eval(*rdim.filter, row) != 0) {
          marks[index->OffsetAt(row)] = true;
        }
      }
      reverse_marks.push_back(std::move(marks));
    }
  }

  const int num_aggs = static_cast<int>(plan.aggs.size());
  std::vector<int64_t> identities(num_aggs);
  for (int a = 0; a < num_aggs; ++a) {
    identities[a] = AggIdentity(plan.aggs[a].kind);
  }

  // One shard per worker: private evaluator pool (LIKE caches are not
  // shared), private group map and scalar slots. Shards are merged in
  // worker order below; all merges are order-insensitive on int64, so the
  // result is bit-exact with the single-threaded scan.
  struct Shard {
    EvaluatorPool pool;
    std::map<int64_t, std::vector<int64_t>> groups;
    std::vector<int64_t> scalar;
    explicit Shard(const Catalog& catalog) : pool(catalog) {}
  };
  std::vector<std::unique_ptr<Shard>> shards;
  for (int w = 0; w < num_threads; ++w) {
    shards.push_back(std::make_unique<Shard>(catalog_));
    shards.back()->scalar = identities;
  }

  if (plan.group_seed.has_value()) {
    const Table& seed_table = catalog_.TableRef(plan.group_seed->table);
    const Column& key_col = seed_table.ColumnRef(plan.group_seed->key_column);
    for (int64_t row = 0; row < seed_table.num_rows(); ++row) {
      shards[0]->groups.emplace(key_col.ValueAt(row), identities);
    }
  }

  auto process_row = [&](Shard& shard, int64_t row) {
    EvaluatorPool& pool = shard.pool;
    ScalarEvaluator& fact_eval = pool.For(plan.fact_table);

    if (plan.fact_filter != nullptr &&
        fact_eval.Eval(*plan.fact_filter, row) == 0) {
      return;
    }

    bool qualified = true;
    for (const DimJoin& dim : plan.dims) {
      const FkIndex* index =
          fact.GetFkIndex(dim.hop.fk_column).ValueOr(nullptr);
      SWOLE_CHECK(index != nullptr);
      if (!DimRowQualifies(dim, catalog_, &pool, index->OffsetAt(row))) {
        qualified = false;
        break;
      }
    }
    if (!qualified) return;

    for (const std::vector<bool>& marks : reverse_marks) {
      if (!marks[row]) {
        qualified = false;
        break;
      }
    }
    if (!qualified) return;

    if (plan.disjunctive.has_value()) {
      const DisjunctiveJoin& dj = *plan.disjunctive;
      const FkIndex* index =
          fact.GetFkIndex(dj.hop.fk_column).ValueOr(nullptr);
      SWOLE_CHECK(index != nullptr);
      int64_t dim_row = index->OffsetAt(row);
      ScalarEvaluator& dim_eval = pool.For(dj.hop.to_table);
      bool any = false;
      for (const DisjunctiveJoin::Clause& clause : dj.clauses) {
        bool dim_ok = clause.dim_filter == nullptr ||
                      dim_eval.Eval(*clause.dim_filter, dim_row) != 0;
        bool fact_ok = clause.fact_filter == nullptr ||
                       fact_eval.Eval(*clause.fact_filter, row) != 0;
        if (dim_ok && fact_ok) {
          any = true;
          break;
        }
      }
      if (!any) return;
    }

    bool equalities_hold = true;
    for (const PathEquality& eq : plan.path_equalities) {
      int64_t lhs = ResolvePath(*plan.FindPath(eq.left_alias), catalog_,
                                plan.fact_table, row);
      int64_t rhs = ResolvePath(*plan.FindPath(eq.right_alias), catalog_,
                                plan.fact_table, row);
      if (lhs != rhs) {
        equalities_hold = false;
        break;
      }
    }
    if (!equalities_hold) return;

    // Locate the aggregation slots for this row.
    std::vector<int64_t>* slots = &shard.scalar;
    if (plan.HasGroupBy()) {
      int64_t key =
          plan.group_by != nullptr
              ? fact_eval.Eval(*plan.group_by, row)
              : ResolvePath(*plan.FindPath(plan.group_by_path), catalog_,
                            plan.fact_table, row);
      auto [it, inserted] = shard.groups.try_emplace(key, identities);
      slots = &it->second;
    }

    for (int a = 0; a < num_aggs; ++a) {
      const AggSpec& agg = plan.aggs[a];
      int64_t value =
          agg.kind == AggKind::kCount ? 1 : fact_eval.Eval(*agg.expr, row);
      if (!agg.path_factor.empty()) {
        value *= ResolvePath(*plan.FindPath(agg.path_factor), catalog_,
                             plan.fact_table, row);
      }
      UpdateAgg(agg.kind, &(*slots)[a], value);
    }
  };

  phase.reset();  // build
  phase.emplace(trace, "scan");
  exec::MorselStats scan_stats = exec::ParallelMorsels(
      qctx, num_threads, fact.num_rows(), /*morsel_size=*/4096,
      [&](int worker, int64_t begin, int64_t end) {
        Shard& shard = *shards[worker];
        for (int64_t row = begin; row < end; ++row) {
          process_row(shard, row);
        }
      });
  phase->Attr("morsels", scan_stats.morsels);
  phase->Attr("steals", scan_stats.steals);
  phase->Attr("workers", static_cast<int64_t>(scan_stats.workers));
  phase.reset();
  SWOLE_RETURN_NOT_OK(scan_stats.status);

  phase.emplace(trace, "merge");
  std::map<int64_t, std::vector<int64_t>>& groups = shards[0]->groups;
  std::vector<int64_t>& scalar = shards[0]->scalar;
  for (int w = 1; w < num_threads; ++w) {
    for (int a = 0; a < num_aggs; ++a) {
      UpdateAgg(plan.aggs[a].kind, &scalar[a], shards[w]->scalar[a]);
    }
    for (const auto& [key, partial] : shards[w]->groups) {
      auto [it, inserted] = groups.try_emplace(key, identities);
      for (int a = 0; a < num_aggs; ++a) {
        UpdateAgg(plan.aggs[a].kind, &it->second[a], partial[a]);
      }
    }
  }
  phase.reset();

  phase.emplace(trace, "extract");
  QueryResult result;
  for (const AggSpec& agg : plan.aggs) result.agg_names.push_back(agg.name);

  if (!plan.HasGroupBy()) {
    result.grouped = false;
    result.scalar = std::move(scalar);
    return result;
  }

  result.grouped = true;
  if (plan.histogram_of_agg0) {
    // Second-level aggregation (Q13): count groups per value of agg 0.
    std::map<int64_t, int64_t> histogram;
    for (const auto& [key, aggs] : groups) histogram[aggs[0]]++;
    result.num_aggs = 1;
    for (const auto& [value, count] : histogram) {
      result.AddGroup(value, &count);
    }
    result.agg_names = {"group_count"};
  } else {
    result.num_aggs = num_aggs;
    for (const auto& [key, aggs] : groups) {
      result.AddGroup(key, aggs.data());
    }
  }
  // std::map iteration is already key-ordered; SortGroups is a no-op kept
  // for uniformity.
  result.SortGroups();
  return result;
}

}  // namespace swole
