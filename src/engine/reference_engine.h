#ifndef SWOLE_ENGINE_REFERENCE_ENGINE_H_
#define SWOLE_ENGINE_REFERENCE_ENGINE_H_

#include <string>
#include <utility>

#include "common/status.h"
#include "plan/plan.h"
#include "plan/result.h"

// The correctness oracle: a naive row-at-a-time interpreter over the plan
// algebra. Deliberately simple (no tiles, no masks, no selection vectors,
// std::map for groups) so its results are obviously right; every strategy
// engine and every JIT-generated kernel is tested against it bit-exactly.
// Never benchmarked.

namespace swole {

namespace exec {
class QueryContext;
}  // namespace exec

class ReferenceEngine {
 public:
  /// `num_threads` == 0 defers to SWOLE_THREADS (default 1). The fact scan
  /// is sharded across workers with per-shard group maps merged in worker
  /// order, so results stay bit-exact at every thread count.
  explicit ReferenceEngine(const Catalog& catalog, int num_threads = 0)
      : catalog_(catalog), num_threads_(num_threads) {}

  /// Attaches an externally owned query context. The oracle's memory is
  /// untracked (std::map shards), but deadline and cancellation checks run
  /// at morsel boundaries and worker exceptions surface as a Status. When
  /// no context is set, SWOLE_MEM_LIMIT / SWOLE_DEADLINE_MS still apply
  /// via the governance scope resolved inside Execute.
  void set_query_context(exec::QueryContext* ctx) { query_ctx_ = ctx; }

  /// Tenant identity for per-tenant admission caps (exec/admission.h).
  /// Empty (the default) is the uncapped default tenant.
  void set_tenant(std::string tenant) { tenant_ = std::move(tenant); }

  /// Executes `plan`. Validates first; returns the normalized result with
  /// groups sorted by key.
  Result<QueryResult> Execute(const QueryPlan& plan);

 private:
  Result<QueryResult> ExecuteGoverned(const QueryPlan& plan,
                                      exec::QueryContext* qctx);

  const Catalog& catalog_;
  int num_threads_;
  exec::QueryContext* query_ctx_ = nullptr;
  std::string tenant_;
};

}  // namespace swole

#endif  // SWOLE_ENGINE_REFERENCE_ENGINE_H_
