#ifndef SWOLE_ENGINE_REFERENCE_ENGINE_H_
#define SWOLE_ENGINE_REFERENCE_ENGINE_H_

#include "common/status.h"
#include "plan/plan.h"
#include "plan/result.h"

// The correctness oracle: a naive row-at-a-time interpreter over the plan
// algebra. Deliberately simple (no tiles, no masks, no selection vectors,
// std::map for groups) so its results are obviously right; every strategy
// engine and every JIT-generated kernel is tested against it bit-exactly.
// Never benchmarked.

namespace swole {

class ReferenceEngine {
 public:
  explicit ReferenceEngine(const Catalog& catalog) : catalog_(catalog) {}

  /// Executes `plan`. Validates first; returns the normalized result with
  /// groups sorted by key.
  Result<QueryResult> Execute(const QueryPlan& plan);

 private:
  const Catalog& catalog_;
};

}  // namespace swole

#endif  // SWOLE_ENGINE_REFERENCE_ENGINE_H_
