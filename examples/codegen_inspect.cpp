// Prints the code each strategy generates for the paper's running example
// (Fig. 1 / Fig. 3): `select sum(r_a * r_b) from R where r_x < 13 and
// r_y = 1` — then JIT-compiles each variant and runs it to show they all
// produce the same answer.
//
//   $ ./build/examples/codegen_inspect

#include <cstdio>

#include "codegen/corpus.h"
#include "codegen/generator.h"
#include "codegen/jit.h"
#include "micro/micro.h"
#include "storage/table.h"

using namespace swole;

int main() {
  MicroConfig config;
  config.r_rows = 100'000;
  config.s_small_rows = 100;
  config.s_large_rows = 1000;
  auto data = MicroData::Generate(config);

  // SWOLE_WARM_CORPUS=auto (or a descriptor path) pre-compiles the known
  // kernel corpus before any query runs; later compiles of those keys are
  // served from the warm cache (jit.corpus.* in the shutdown metrics).
  codegen::CorpusReport warm = codegen::WarmCorpusFromEnv(data->catalog);
  if (warm.entries > 0) {
    std::printf("warm corpus: %s\n\n", warm.ToString().c_str());
  }

  QueryPlan plan = MicroQ1(/*division=*/false, /*sel=*/13);

  struct Variant {
    const char* title;
    codegen::GeneratorOptions options;
  };
  Variant variants[3];
  variants[0].title = "data-centric (Fig. 1 top)";
  variants[0].options.strategy = StrategyKind::kDataCentric;
  variants[1].title = "hybrid (Fig. 1 middle)";
  variants[1].options.strategy = StrategyKind::kHybrid;
  variants[2].title = "SWOLE value masking (Fig. 3)";
  variants[2].options.strategy = StrategyKind::kSwole;
  variants[2].options.agg_choice = AggChoice::kValueMasking;

  for (const Variant& variant : variants) {
    std::printf("==== %s ====\n", variant.title);
    Result<codegen::GeneratedKernel> kernel =
        codegen::GenerateKernel(plan, data->catalog, variant.options);
    kernel.status().CheckOK();
    std::printf("%s\n", kernel->source.c_str());

    // ExecuteWithFallback survives a broken toolchain: try e.g.
    //   SWOLE_FAULT=jit_compile:1.0 ./build/examples/codegen_inspect
    // and the interpreted engine serves the same answer.
    QueryPlan run_plan = MicroQ1(false, 13);
    codegen::ExecutionReport report;
    QueryResult result =
        codegen::ExecuteWithFallback(run_plan, data->catalog,
                                     variant.options, {}, &report)
            .value();
    std::printf("--> %s: sum = %lld\n\n",
                report.used_jit ? "compiled & executed"
                                : "compile failed, executed interpreted",
                static_cast<long long>(result.scalar[0]));
  }
  return 0;
}
