// TPC-H walkthrough: generates a small TPC-H instance, runs the eight
// evaluated queries with every strategy, verifies all engines agree with
// the reference oracle, and prints a Figure-6-style runtime table.
//
//   $ SWOLE_SF=0.05 ./build/examples/tpch_demo

#include <cstdio>

#include "codegen/corpus.h"
#include "common/env.h"
#include "common/timer.h"
#include "engine/reference_engine.h"
#include "storage/table.h"
#include "strategies/strategy.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

using namespace swole;

int main() {
  tpch::TpchConfig config = tpch::TpchConfig::FromEnv();
  if (GetEnvString("SWOLE_SF", "").empty()) {
    config.scale_factor = 0.02;  // demo default: fast
  }
  std::printf("generating TPC-H SF %.3f ...\n", config.scale_factor);
  Timer gen_timer;
  auto data = tpch::TpchData::Generate(config);
  std::printf("generated %lld lineitems in %.1fs\n\n",
              static_cast<long long>(data->num_lineitems),
              gen_timer.ElapsedSeconds());

  // SWOLE_WARM_CORPUS=auto pre-compiles the JIT kernel corpus for every
  // registered query whose tables exist, before serving starts.
  codegen::CorpusReport warm = codegen::WarmCorpusFromEnv(data->catalog);
  if (warm.entries > 0) {
    std::printf("warm corpus: %s\n\n", warm.ToString().c_str());
  }

  static constexpr const char* kNames[] = {"Q1",  "Q3",  "Q4",  "Q5",
                                           "Q6",  "Q13", "Q14", "Q19"};
  ReferenceEngine oracle(data->catalog);

  std::printf("%-5s %14s %14s %14s %14s  verified\n", "query",
              "data-centric", "hybrid", "rof", "swole");
  for (size_t q = 0; q < 8; ++q) {
    QueryPlan plan = std::move(tpch::AllQueries(data->catalog)[q]);
    QueryResult expected = oracle.Execute(plan).value();
    std::printf("%-5s", kNames[q]);
    bool all_match = true;
    for (StrategyKind kind :
         {StrategyKind::kDataCentric, StrategyKind::kHybrid,
          StrategyKind::kRof, StrategyKind::kSwole}) {
      auto engine = MakeStrategy(kind, data->catalog);
      engine->Execute(plan).status().CheckOK();  // warm-up + plan analysis
      Timer timer;
      QueryResult result = engine->Execute(plan).value();
      double ms = timer.ElapsedMillis();
      all_match = all_match && (result == expected);
      std::printf(" %12.2fms", ms);
    }
    std::printf("  %s\n", all_match ? "yes" : "NO — BUG");
  }
  return 0;
}
