// Quickstart: build a table, write a query plan, execute it with every
// strategy, and inspect SWOLE's cost-model decisions.
//
//   $ ./build/examples/quickstart

#include <cstdio>
#include <memory>

#include "common/random.h"
#include "engine/reference_engine.h"
#include "storage/table.h"
#include "strategies/strategy.h"
#include "strategies/swole.h"

using namespace swole;

int main() {
  // 1. Build a 1M-row table with two payload columns and a predicate
  //    column (narrow physical types, as the storage layer encourages).
  Rng rng(42);
  auto table = std::make_shared<Table>("sales");
  auto amount = std::make_unique<Column>(
      "amount", ColumnType::Int(PhysicalType::kInt32));
  auto units = std::make_unique<Column>(
      "units", ColumnType::Int(PhysicalType::kInt8));
  auto day = std::make_unique<Column>(
      "day", ColumnType::Int(PhysicalType::kInt16));
  constexpr int64_t kRows = 1'000'000;
  for (int64_t i = 0; i < kRows; ++i) {
    amount->Append(rng.UniformInt(100, 100000));
    units->Append(rng.UniformInt(1, 20));
    day->Append(rng.UniformInt(0, 364));
  }
  table->AddColumn(std::move(amount)).CheckOK();
  table->AddColumn(std::move(units)).CheckOK();
  table->AddColumn(std::move(day)).CheckOK();

  Catalog catalog;
  catalog.AddTable(table).CheckOK();

  // 2. Express: select sum(amount * units) from sales where day < 270.
  QueryPlan plan;
  plan.name = "quickstart";
  plan.fact_table = "sales";
  plan.fact_filter = Lt(Col("day"), Lit(270));
  plan.aggs.emplace_back(AggKind::kSum, Mul(Col("amount"), Col("units")),
                         "revenue");

  std::printf("%s\n", plan.ToString().c_str());

  // 3. Run the oracle and every strategy; results are bit-exact.
  ReferenceEngine oracle(catalog);
  QueryResult expected = oracle.Execute(plan).value();
  std::printf("reference: %s", expected.ToString().c_str());

  for (StrategyKind kind :
       {StrategyKind::kDataCentric, StrategyKind::kHybrid, StrategyKind::kRof,
        StrategyKind::kSwole}) {
    std::unique_ptr<Strategy> engine = MakeStrategy(kind, catalog);
    QueryResult result = engine->Execute(plan).value();
    std::printf("%-13s revenue = %lld  (%s)\n", engine->name(),
                static_cast<long long>(result.scalar[0]),
                result == expected ? "matches" : "MISMATCH");
  }

  // 4. Ask SWOLE what it decided and why.
  std::unique_ptr<SwoleStrategy> swole_engine = MakeSwoleStrategy(catalog);
  swole_engine->Execute(plan).status().CheckOK();
  const SwoleDecisions& decisions = swole_engine->last_decisions();
  std::printf("\nSWOLE decisions: aggregation=%s merging=%d bitmaps=%d "
              "eager-agg=%d\n  rationale: %s\n",
              decisions.aggregation.c_str(),
              decisions.used_access_merging,
              decisions.used_positional_bitmaps,
              decisions.used_eager_aggregation,
              decisions.rationale.c_str());
  return 0;
}
