// The paper's core claim, live: the same simple aggregation query executed
// with predicate pushdown (data-centric, hybrid) vs predicate pullup
// (value masking) across the selectivity range. Reproduces the story of
// Fig. 1/3/8a in one terminal table.
//
//   $ SWOLE_MICRO_R=4000000 ./build/examples/access_patterns

#include <cstdio>

#include "common/timer.h"
#include "micro/micro.h"
#include "strategies/strategy.h"

using namespace swole;

namespace {

double MeasureMs(Strategy* engine, const QueryPlan& plan) {
  engine->Execute(plan).status().CheckOK();  // warm-up + plan analysis
  double best = 1e30;
  for (int rep = 0; rep < 3; ++rep) {
    Timer timer;
    engine->Execute(plan).status().CheckOK();
    best = std::min(best, timer.ElapsedMillis());
  }
  return best;
}

}  // namespace

int main() {
  MicroConfig config = MicroConfig::FromEnv();
  std::printf("generating R with %lld rows ...\n",
              static_cast<long long>(config.r_rows));
  auto data = MicroData::Generate(config);

  auto dc = MakeStrategy(StrategyKind::kDataCentric, data->catalog);
  auto hybrid = MakeStrategy(StrategyKind::kHybrid, data->catalog);
  StrategyOptions vm_options;
  vm_options.force_agg = StrategyOptions::ForceAgg::kValueMasking;
  auto vm = MakeStrategy(StrategyKind::kSwole, data->catalog, vm_options);

  std::printf("\nselect sum(r_a * r_b) from R where r_x < SEL and r_y = 1\n");
  std::printf("%5s %15s %10s %15s\n", "SEL%", "data-centric", "hybrid",
              "value-masking");
  for (int64_t sel : {0, 10, 25, 50, 75, 90, 100}) {
    QueryPlan p1 = MicroQ1(false, sel);
    QueryPlan p2 = MicroQ1(false, sel);
    QueryPlan p3 = MicroQ1(false, sel);
    std::printf("%5lld %13.1fms %8.1fms %13.1fms\n",
                static_cast<long long>(sel), MeasureMs(dc.get(), p1),
                MeasureMs(hybrid.get(), p2), MeasureMs(vm.get(), p3));
  }
  std::printf(
      "\nNote the data-centric hump at intermediate selectivities (branch\n"
      "mispredictions) and value masking's flat profile: its access\n"
      "pattern — and therefore its cost — does not depend on the\n"
      "predicate at all.\n");
  return 0;
}
