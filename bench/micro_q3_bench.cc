// Figure 10: microbenchmark Q3 — access merging on
// `select sum(r_x * [COL]) from R where r_x < [SEL] and r_y = 1`.
//
//   10a: COL = r_b — the aggregate reuses one predicate attribute (r_x);
//        access merging gains ~1.15x over plain value masking.
//   10b: COL = r_y — both aggregate inputs are predicate attributes;
//        merging gains ~1.9x.
//
// Series: data-centric | hybrid | value-masking (merging disabled) |
//         access-merging (SWOLE default VM + merging).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "micro/micro.h"

namespace swole {
namespace {

void RegisterAll(const MicroData& data) {
  for (bool reuse_both : {false, true}) {
    const char* figure = reuse_both ? "fig10b_both" : "fig10a_one";
    for (int64_t sel : bench::SelectivityGrid()) {
      for (StrategyKind kind :
           {StrategyKind::kDataCentric, StrategyKind::kHybrid}) {
        bench::RegisterPlanBenchmark(
            StringFormat("%s/%s/sel:%lld", figure, StrategyKindName(kind),
                         static_cast<long long>(sel)),
            data.catalog, kind, MicroQ3(reuse_both, sel));
      }
      StrategyOptions vm;
      vm.force_agg = StrategyOptions::ForceAgg::kValueMasking;
      vm.enable_access_merging = false;
      bench::RegisterPlanBenchmark(
          StringFormat("%s/value-masking/sel:%lld", figure,
                       static_cast<long long>(sel)),
          data.catalog, StrategyKind::kSwole, MicroQ3(reuse_both, sel), vm);
      StrategyOptions am;
      am.force_agg = StrategyOptions::ForceAgg::kValueMasking;
      bench::RegisterPlanBenchmark(
          StringFormat("%s/access-merging/sel:%lld", figure,
                       static_cast<long long>(sel)),
          data.catalog, StrategyKind::kSwole, MicroQ3(reuse_both, sel), am);
    }
  }
}

}  // namespace
}  // namespace swole

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  auto data = swole::MicroData::Generate(swole::MicroConfig::FromEnv());
  swole::RegisterAll(*data);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
