// Cost-model validation (extension): calibrates the §III cost model on
// this machine, then prints predicted vs measured runtimes for the
// microbenchmark Q1/Q2 configurations. The model only needs to rank
// techniques correctly — the table also reports whether the predicted
// winner matches the measured winner at each point.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/timer.h"
#include "cost/calibration.h"
#include "cost/cost_model.h"
#include "cost/feedback.h"
#include "micro/micro.h"
#include "strategies/strategy.h"

using namespace swole;

namespace {

double MeasureMs(Strategy* engine, const QueryPlan& plan) {
  engine->Execute(plan).status().CheckOK();  // warm-up / plan analysis
  double best = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    Timer timer;
    engine->Execute(plan).status().CheckOK();
    best = std::min(best, timer.ElapsedMillis());
  }
  return best;
}

}  // namespace

int main() {
  MicroConfig config = MicroConfig::FromEnv();
  std::printf("calibrating cost profile...\n");
  CalibrationOptions cal;
  cal.probe_bytes = 16 << 20;
  cal.ht_probes = 1 << 18;
  CostProfile profile = CalibrateCostProfile(cal);
  std::printf("%s\n\n", profile.ToString().c_str());

  std::printf("generating R (%lld rows)...\n\n",
              static_cast<long long>(config.r_rows));
  auto data = MicroData::Generate(config);

  auto hybrid = MakeStrategy(StrategyKind::kHybrid, data->catalog);
  StrategyOptions vm_opt;
  vm_opt.force_agg = StrategyOptions::ForceAgg::kValueMasking;
  vm_opt.cost_profile = &profile;
  auto vm = MakeStrategy(StrategyKind::kSwole, data->catalog, vm_opt);

  // ---- Scalar aggregation (micro Q1, multiplication) ----
  std::printf("micro Q1 (*): predicted vs measured (ms)\n");
  std::printf("%5s %12s %12s | %12s %12s | winner pred/meas\n", "SEL%",
              "hyb(pred)", "vm(pred)", "hyb(meas)", "vm(meas)");
  int agree = 0;
  int total = 0;
  for (int64_t sel : {0, 20, 40, 60, 80, 100}) {
    AggWorkload w;
    w.rows = static_cast<double>(config.r_rows);
    w.selectivity = sel / 100.0;
    QueryPlan probe_plan = MicroQ1(false, sel);
    w.comp_ns = EstimateComputeNs(profile, *probe_plan.aggs[0].expr);
    w.num_read_columns = 2;
    double hybrid_pred = HybridCost(profile, w) / 1e6;
    double vm_pred = ValueMaskingCost(profile, w) / 1e6;
    QueryPlan p1 = MicroQ1(false, sel);
    QueryPlan p2 = MicroQ1(false, sel);
    double hybrid_meas = MeasureMs(hybrid.get(), p1);
    double vm_meas = MeasureMs(vm.get(), p2);
    bool pred_vm = vm_pred < hybrid_pred;
    bool meas_vm = vm_meas < hybrid_meas;
    agree += pred_vm == meas_vm;
    ++total;
    std::printf("%5lld %12.2f %12.2f | %12.2f %12.2f | %s/%s %s\n",
                static_cast<long long>(sel), hybrid_pred, vm_pred,
                hybrid_meas, vm_meas, pred_vm ? "vm" : "hyb",
                meas_vm ? "vm" : "hyb", pred_vm == meas_vm ? "" : " <-");
  }

  // ---- Grouped aggregation (micro Q2) across cardinalities ----
  StrategyOptions km_opt;
  km_opt.force_agg = StrategyOptions::ForceAgg::kKeyMasking;
  auto km = MakeStrategy(StrategyKind::kSwole, data->catalog, km_opt);
  std::printf("\nmicro Q2: predicted vs measured winners at sel=50%%\n");
  std::printf("%10s | pred winner | meas winner\n", "keys");
  std::vector<AggWorkload> q2_workloads;
  std::vector<std::string> q2_measured;
  for (size_t c = 0; c < data->c_columns.size(); ++c) {
    AggWorkload w;
    w.rows = static_cast<double>(config.r_rows);
    w.selectivity = 0.5;
    w.comp_ns = 2.0;
    w.num_read_columns = 3;
    int64_t entry_bytes = 8 + 8 * 2;
    w.group_ht_bytes = data->c_actual[c] * entry_bytes * 10 / 7;
    AggChoice choice = ChooseAggregation(profile, w);

    QueryPlan ph = MicroQ2(data->c_columns[c], data->c_actual[c], 50);
    QueryPlan pv = MicroQ2(data->c_columns[c], data->c_actual[c], 50);
    QueryPlan pk = MicroQ2(data->c_columns[c], data->c_actual[c], 50);
    double ms_h = MeasureMs(hybrid.get(), ph);
    double ms_v = MeasureMs(vm.get(), pv);
    double ms_k = MeasureMs(km.get(), pk);
    const char* measured = ms_h <= ms_v && ms_h <= ms_k ? "hybrid"
                           : ms_v <= ms_k              ? "value-masking"
                                                        : "key-masking";
    bool match = std::string(AggChoiceName(choice)) == measured;
    agree += match;
    ++total;
    std::printf("%10lld | %11s | %11s %s\n",
                static_cast<long long>(data->c_actual[c]),
                AggChoiceName(choice), measured, match ? "" : " <-");
    q2_workloads.push_back(w);
    q2_measured.push_back(measured);
  }
  std::printf("\nmodel/measurement agreement: %d / %d points\n", agree,
              total);

  // ---- Online refit vs the offline profile (SWOLE_COST_REFIT=apply) ----
  // A short warm-up stream feeds CostFeedback with predicted-vs-observed
  // cost under the calibrated profile; the refitted profile's Q2 decisions
  // are then checked against the same measured winners. The refit only has
  // to match or beat the offline profile — it exists to absorb drift the
  // one-shot calibration can't see.
  std::printf("\nonline refit vs offline profile (micro Q2 decisions)\n");
  cost::SetRefitModeForTest(cost::RefitMode::kApply);
  cost::CostFeedback::Global().Reset();
  {
    StrategyOptions warm_opt;
    warm_opt.cost_profile = &profile;
    auto engine = MakeStrategy(StrategyKind::kSwole, data->catalog, warm_opt);
    for (int64_t sel : {20, 50, 80}) {
      QueryPlan p = MicroQ1(false, sel);
      for (int rep = 0; rep < 3; ++rep) {
        engine->Execute(p).status().CheckOK();
      }
    }
    for (size_t c = 0; c < data->c_columns.size(); ++c) {
      QueryPlan p = MicroQ2(data->c_columns[c], data->c_actual[c], 50);
      engine->Execute(p).status().CheckOK();
    }
  }
  std::printf("fit after warm-up: %s\n",
              cost::CostFeedback::Global().ToString().c_str());
  CostProfile refit = cost::CostFeedback::Global().Refitted(profile);

  int offline_agree = 0;
  int refit_agree = 0;
  std::printf("%10s | %13s | %13s | %13s\n", "keys", "measured", "offline",
              "refit");
  for (size_t c = 0; c < q2_workloads.size(); ++c) {
    const char* offline_choice =
        AggChoiceName(ChooseAggregation(profile, q2_workloads[c]));
    const char* refit_choice =
        AggChoiceName(ChooseAggregation(refit, q2_workloads[c]));
    offline_agree += q2_measured[c] == offline_choice;
    refit_agree += q2_measured[c] == refit_choice;
    std::printf("%10lld | %13s | %13s | %13s\n",
                static_cast<long long>(data->c_actual[c]),
                q2_measured[c].c_str(), offline_choice, refit_choice);
  }
  std::printf("refit agreement: %d / %zu points (offline: %d / %zu)\n",
              refit_agree, q2_workloads.size(), offline_agree,
              q2_workloads.size());
  cost::CostFeedback::Global().Reset();
  cost::SetRefitModeForTest(cost::RefitMode::kOff);
  return 0;
}
