// Figure 9: microbenchmark Q2 — group-by aggregation at four group-key
// cardinalities (paper: 10 / 1K / 100K / 10M; the largest is capped at
// |R|/4 at reduced scale).
//
// Expected shape: at small cardinalities (9a/9b) the hash table is cached
// and value masking ≈ key masking, both beating hybrid at most
// selectivities. At 100K (9c) value masking degrades (unconditional
// lookups in a big table) while key masking overtakes hybrid around ~45%.
// At the largest size (9d) hybrid wins until high selectivity (~85%),
// contradicting Voodoo's claim that predicated lookups dominate.
//
// Series: data-centric | hybrid | value-masking | key-masking.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "micro/micro.h"

namespace swole {
namespace {

void RegisterAll(const MicroData& data) {
  for (size_t c = 0; c < data.c_columns.size(); ++c) {
    std::string figure = StringFormat(
        "fig9_keys:%lld", static_cast<long long>(data.c_actual[c]));
    for (int64_t sel : bench::SelectivityGrid()) {
      for (StrategyKind kind :
           {StrategyKind::kDataCentric, StrategyKind::kHybrid}) {
        bench::RegisterPlanBenchmark(
            StringFormat("%s/%s/sel:%lld", figure.c_str(),
                         StrategyKindName(kind),
                         static_cast<long long>(sel)),
            data.catalog, kind,
            MicroQ2(data.c_columns[c], data.c_actual[c], sel));
      }
      StrategyOptions vm;
      vm.force_agg = StrategyOptions::ForceAgg::kValueMasking;
      bench::RegisterPlanBenchmark(
          StringFormat("%s/value-masking/sel:%lld", figure.c_str(),
                       static_cast<long long>(sel)),
          data.catalog, StrategyKind::kSwole,
          MicroQ2(data.c_columns[c], data.c_actual[c], sel), vm);
      StrategyOptions km;
      km.force_agg = StrategyOptions::ForceAgg::kKeyMasking;
      bench::RegisterPlanBenchmark(
          StringFormat("%s/key-masking/sel:%lld", figure.c_str(),
                       static_cast<long long>(sel)),
          data.catalog, StrategyKind::kSwole,
          MicroQ2(data.c_columns[c], data.c_actual[c], sel), km);
    }
  }
}

}  // namespace
}  // namespace swole

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  auto data = swole::MicroData::Generate(swole::MicroConfig::FromEnv());
  swole::RegisterAll(*data);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
