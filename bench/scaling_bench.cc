// Morsel-driven scaling: speedup vs thread count for all four strategy
// engines on TPC-H (default SF 0.1, override with SWOLE_SF). One row per
// (strategy, thread count) — `scaling/<query>/<strategy>/threads:N` — so
// dividing the threads:1 row by the threads:N row gives the speedup curve.
// Q1 (grouped scan-heavy) and Q5 (join-heavy) bracket the two probe-side
// shapes; results are bit-exact across thread counts, so every row computes
// the same answer.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace swole {
namespace {

void RegisterAll(const tpch::TpchData& data) {
  static constexpr int kThreadCounts[] = {1, 2, 4, 8};
  struct NamedPlan {
    const char* name;
    QueryPlan (*make)(const Catalog&);
  };
  static constexpr NamedPlan kPlans[] = {{"Q1", tpch::Q1},
                                         {"Q5", tpch::Q5}};
  for (const NamedPlan& named : kPlans) {
    for (StrategyKind kind :
         {StrategyKind::kDataCentric, StrategyKind::kHybrid,
          StrategyKind::kRof, StrategyKind::kSwole}) {
      for (int threads : kThreadCounts) {
        StrategyOptions options;
        options.num_threads = threads;
        bench::RegisterPlanBenchmark(
            StringFormat("scaling/%s/%s/threads:%d", named.name,
                         StrategyKindName(kind), threads),
            data.catalog, kind, named.make(data.catalog), options);
      }
    }
  }
}

}  // namespace
}  // namespace swole

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  auto data = swole::tpch::TpchData::Generate(
      swole::tpch::TpchConfig::FromEnv());
  swole::RegisterAll(*data);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
