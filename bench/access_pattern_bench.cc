// Hardware access-pattern evidence (obs/perf_counters.h): per-strategy
// cycles / instructions / LLC-miss / branch-miss counts on the paper's
// micro queries Q1–Q5 and TPC-H Q1/Q6. SWOLE's claim is micro-architectural — it trades
// extra instructions (unconditional masked work) for fewer LLC misses
// (sequential instead of conditional access) — and these counters are the
// direct measurement. When perf_event_open is unavailable (containers, CI,
// perf_event_paranoid), every row is labeled counters-unavailable and the
// timing columns still stand.
//
// Also measures tracing overhead: TPC-H Q1 under SWOLE with a fresh
// QueryTrace attached per execution vs the untraced baseline, both under
// the same external QueryContext so the delta isolates span recording.
// The acceptance bar is < 2% on Q1; see BENCH_obs.json.

#include <benchmark/benchmark.h>

#include <functional>
#include <memory>
#include <string>

#include "bench_util.h"
#include "exec/query_context.h"
#include "micro/micro.h"
#include "obs/perf_counters.h"
#include "obs/trace.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace swole {
namespace {

constexpr StrategyKind kAllStrategies[] = {
    StrategyKind::kDataCentric, StrategyKind::kHybrid, StrategyKind::kRof,
    StrategyKind::kSwole};

// One benchmark per (query, strategy): the counter set wraps each
// execution, and the per-iteration averages land as user counters next to
// the timing columns.
void RegisterCounted(const std::string& name, const Catalog& catalog,
                     StrategyKind kind, QueryPlan plan) {
  bench::PlanPool().push_back(std::make_unique<QueryPlan>(std::move(plan)));
  const QueryPlan* plan_ptr = bench::PlanPool().back().get();
  bench::EnginePool().push_back(MakeStrategy(kind, catalog, {}));
  Strategy* engine = bench::EnginePool().back().get();
  benchmark::RegisterBenchmark(
      name.c_str(),
      [plan_ptr, engine](benchmark::State& state) {
        std::string error;
        std::unique_ptr<obs::PerfCounterSet> counters =
            obs::PerfCounterSet::TryCreate(&error);
        obs::HwCounts totals;
        int64_t counted_iters = 0;
        int64_t checksum = 0;
        for (auto _ : state) {
          if (counters != nullptr) counters->Start();
          Result<QueryResult> result = engine->Execute(*plan_ptr);
          if (counters != nullptr) {
            counters->Stop();
            obs::HwCounts counts = counters->Read();
            if (counts.valid) {
              totals.cycles += counts.cycles;
              totals.instructions += counts.instructions;
              totals.llc_misses += counts.llc_misses;
              totals.branch_misses += counts.branch_misses;
              ++counted_iters;
            }
          }
          result.status().CheckOK();
          checksum ^= result->grouped ? result->NumGroups()
                                      : result->scalar[0];
          benchmark::DoNotOptimize(checksum);
        }
        if (counted_iters > 0) {
          const double n = static_cast<double>(counted_iters);
          state.counters["cycles"] = totals.cycles / n;
          state.counters["instructions"] = totals.instructions / n;
          state.counters["llc_misses"] = totals.llc_misses / n;
          state.counters["branch_misses"] = totals.branch_misses / n;
        } else {
          state.SetLabel("counters-unavailable: " +
                         (counters == nullptr ? error
                                              : std::string("read failed")));
        }
      })
      ->Unit(benchmark::kMillisecond);
}

void RegisterMicro(const MicroData& micro) {
  struct Row {
    const char* name;
    std::function<QueryPlan()> build;
  };
  const Row rows[] = {
      {"Q1", [] { return MicroQ1(/*division=*/false, /*sel=*/50); }},
      {"Q2",
       [&micro] {
         return MicroQ2(micro.c_columns[1], micro.c_actual[1], /*sel=*/50);
       }},
      {"Q3", [] { return MicroQ3(/*reuse_both=*/false, /*sel=*/50); }},
      {"Q4", [] { return MicroQ4(/*large_s=*/false, /*sel1=*/50,
                                 /*sel2=*/50); }},
      {"Q5",
       [&micro] {
         return MicroQ5(/*large_s=*/false, /*sel=*/50,
                        micro.config.s_small_rows);
       }},
  };
  for (const Row& row : rows) {
    for (StrategyKind kind : kAllStrategies) {
      RegisterCounted(
          StringFormat("access_pattern/%s/%s", row.name,
                       StrategyKindName(kind)),
          micro.catalog, kind, row.build());
    }
  }
}

// TPC-H evidence at full plan complexity (grouped agg Q1, selective scan
// Q6 — the two queries the codegen subset also covers).
void RegisterTpch(const tpch::TpchData& data) {
  struct Row {
    const char* name;
    std::function<QueryPlan()> build;
  };
  const Row rows[] = {
      {"tpch_Q1", [&data] { return tpch::Q1(data.catalog); }},
      {"tpch_Q6", [&data] { return tpch::Q6(data.catalog); }},
  };
  for (const Row& row : rows) {
    for (StrategyKind kind : kAllStrategies) {
      RegisterCounted(
          StringFormat("access_pattern/%s/%s", row.name,
                       StrategyKindName(kind)),
          data.catalog, kind, row.build());
    }
  }
}

// Trace overhead: both series run under the same external QueryContext so
// governance hooks are identical; the traced series attaches a fresh
// QueryTrace per execution (the realistic per-query pattern — span trees
// must not accumulate across queries).
void RegisterTraceOverhead(const tpch::TpchData& data) {
  static exec::QueryContext* ctx = new exec::QueryContext();
  for (bool traced : {false, true}) {
    bench::PlanPool().push_back(
        std::make_unique<QueryPlan>(tpch::Q1(data.catalog)));
    const QueryPlan* plan_ptr = bench::PlanPool().back().get();
    StrategyOptions options;
    options.query_ctx = ctx;
    bench::EnginePool().push_back(
        MakeStrategy(StrategyKind::kSwole, data.catalog, options));
    Strategy* engine = bench::EnginePool().back().get();
    const std::string name = StringFormat(
        "trace_overhead/Q1/swole/%s", traced ? "traced" : "untraced");
    benchmark::RegisterBenchmark(
        name.c_str(),
        [plan_ptr, engine, traced](benchmark::State& state) {
          int64_t checksum = 0;
          for (auto _ : state) {
            Result<QueryResult> result = [&] {
              if (!traced) return engine->Execute(*plan_ptr);
              obs::QueryTrace trace;
              ctx->set_trace(&trace);
              Result<QueryResult> traced_result = engine->Execute(*plan_ptr);
              ctx->set_trace(nullptr);
              return traced_result;
            }();
            result.status().CheckOK();
            checksum ^= result->NumGroups();
            benchmark::DoNotOptimize(checksum);
          }
        })
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace swole

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  auto micro = swole::MicroData::Generate(swole::MicroConfig::FromEnv());
  auto tpch = swole::tpch::TpchData::Generate(
      swole::tpch::TpchConfig::FromEnv());
  swole::RegisterMicro(*micro);
  swole::RegisterTpch(*tpch);
  swole::RegisterTraceOverhead(*tpch);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
