// Figure 8: microbenchmark Q1 — value masking vs data-centric vs hybrid on
// `select sum(r_a [OP] r_b) from R where r_x < [SEL] and r_y = 1`.
//
//   8a: OP = '*' (memory-bound)  -> value masking flat and best nearly
//       everywhere; data-centric shows the branch-misprediction hump;
//       hybrid plateaus once memory-bound.
//   8b: OP = '/' (compute-bound) -> value masking's wasted divisions only
//       pay off at very high selectivity (~95%).
//
// Series: data-centric | hybrid | value-masking (SWOLE forced to VM).
// Scale via SWOLE_MICRO_R (default 4M; paper: 100M).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "micro/micro.h"

namespace swole {
namespace {

void RegisterAll(const MicroData& data) {
  for (bool division : {false, true}) {
    const char* figure = division ? "fig8b_div" : "fig8a_mul";
    for (int64_t sel : bench::SelectivityGrid()) {
      for (StrategyKind kind :
           {StrategyKind::kDataCentric, StrategyKind::kHybrid}) {
        bench::RegisterPlanBenchmark(
            StringFormat("%s/%s/sel:%lld", figure, StrategyKindName(kind),
                         static_cast<long long>(sel)),
            data.catalog, kind, MicroQ1(division, sel));
      }
      StrategyOptions vm;
      vm.force_agg = StrategyOptions::ForceAgg::kValueMasking;
      bench::RegisterPlanBenchmark(
          StringFormat("%s/value-masking/sel:%lld", figure,
                       static_cast<long long>(sel)),
          data.catalog, StrategyKind::kSwole, MicroQ1(division, sel), vm);
    }
  }
}

}  // namespace
}  // namespace swole

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  auto data = swole::MicroData::Generate(swole::MicroConfig::FromEnv());
  swole::RegisterAll(*data);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
