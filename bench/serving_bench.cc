// Concurrent multi-query serving: throughput and tail latency of the
// shared morsel scheduler under closed-loop client load, plus overload
// shedding behavior when the admission controller is saturated at 2x its
// concurrency cap. See BENCH_serving.json and EXPERIMENTS.md.
//
// Series:
//   serving/throughput/<clients>    - C client threads, each running a
//       mixed Q1/Q3/Q6 stream against one shared engine per strategy.
//       Counters: qps, p50_us, p99_us, p999_us.
//   serving/overload/2x             - admission capped at 2 concurrent
//       queries with no wait queue, driven by 4 clients. Every query
//       either succeeds or sheds with a structured admission Status;
//       anything else aborts the bench. Counters: shed_rate, admitted,
//       shed.
//   serving/q1_single/<strategy>    - single-threaded Q1 baseline; the
//       acceptance bar is < 5% regression vs the pre-scheduler seed.
//   serving/jit_corpus/{cold,warm}  - time-to-first-result for the JIT
//       path over the bench's query set (tpch q1/q3/q6, swole) starting
//       from an empty kernel cache. cold serves straight away and eats
//       the compiles; warm runs the startup corpus precompile
//       (SWOLE_WARM_CORPUS=auto path) first, so first clients hit a warm
//       cache. Counters: warm_hit_ratio (from jit.corpus.warm_hits /
//       cold_misses — 1.0 means every consult was corpus-served),
//       precompile_ms (startup cost the warm row paid outside the timed
//       serving wave).
//
// Tail percentiles are computed over every per-query latency observed
// across all iterations of a series, not per iteration, so the p999 row
// has a real sample population behind it.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "codegen/corpus.h"
#include "codegen/jit.h"
#include "codegen/kernel_cache.h"
#include "common/logging.h"
#include "exec/admission.h"
#include "obs/metrics.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace swole {
namespace {

using Clock = std::chrono::steady_clock;

int64_t ElapsedUs(Clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               since)
      .count();
}

// One entry of the mixed workload: a plan and the shared engine that
// serves it. Engines are shared across client threads on purpose — that
// is the serving scenario under test (Execute is thread-safe).
struct ServedQuery {
  const QueryPlan* plan;
  Strategy* engine;
};

// Plans and engines live in the bench_util pools; this just holds the
// round-robin view handed to client threads.
std::vector<ServedQuery>& Workload() {
  static std::vector<ServedQuery> workload;
  return workload;
}

void BuildWorkload(const tpch::TpchData& data) {
  struct Row {
    QueryPlan (*build)(const Catalog&);
  };
  static constexpr Row kRows[] = {{tpch::Q1}, {tpch::Q3}, {tpch::Q6}};
  for (StrategyKind kind : {StrategyKind::kDataCentric, StrategyKind::kSwole}) {
    Strategy* engine = nullptr;
    {
      bench::EnginePool().push_back(MakeStrategy(kind, data.catalog, {}));
      engine = bench::EnginePool().back().get();
    }
    for (const Row& row : kRows) {
      bench::PlanPool().push_back(
          std::make_unique<QueryPlan>(row.build(data.catalog)));
      Workload().push_back({bench::PlanPool().back().get(), engine});
    }
  }
}

int64_t Percentile(const std::vector<int64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  size_t idx = static_cast<size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

// Closed loop: `clients` threads each run `queries_per_client` queries
// round-robin over the mixed workload; wall time of the whole wave is the
// iteration time, and every per-query latency feeds the percentile
// counters.
void ServingThroughput(benchmark::State& state, int clients) {
  const int queries_per_client = 16;
  const std::vector<ServedQuery>& workload = Workload();
  std::vector<int64_t> latencies_us;
  int64_t total_queries = 0;
  double total_seconds = 0.0;
  for (auto _ : state) {
    std::vector<std::vector<int64_t>> per_client(clients);
    Clock::time_point wave_start = Clock::now();
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&workload, &per_client, c, queries_per_client] {
        for (int q = 0; q < queries_per_client; ++q) {
          const ServedQuery& served = workload[(c + q) % workload.size()];
          Clock::time_point start = Clock::now();
          Result<QueryResult> result = served.engine->Execute(*served.plan);
          result.status().CheckOK();
          per_client[c].push_back(ElapsedUs(start));
          benchmark::DoNotOptimize(result->grouped ? result->NumGroups()
                                                   : result->scalar[0]);
        }
      });
    }
    for (std::thread& t : threads) t.join();
    double seconds =
        static_cast<double>(ElapsedUs(wave_start)) / 1e6;
    state.SetIterationTime(seconds);
    total_seconds += seconds;
    total_queries += clients * queries_per_client;
    for (std::vector<int64_t>& lats : per_client) {
      latencies_us.insert(latencies_us.end(), lats.begin(), lats.end());
    }
  }
  std::sort(latencies_us.begin(), latencies_us.end());
  state.counters["qps"] =
      total_seconds > 0 ? static_cast<double>(total_queries) / total_seconds
                        : 0;
  state.counters["p50_us"] =
      static_cast<double>(Percentile(latencies_us, 0.50));
  state.counters["p99_us"] =
      static_cast<double>(Percentile(latencies_us, 0.99));
  state.counters["p999_us"] =
      static_cast<double>(Percentile(latencies_us, 0.999));
}

// Overload: admission capped at 2 concurrent queries, no wait queue, and
// twice that many clients hammering it. Sheds must be structured
// admission Statuses; any other failure is a bench abort. Shed clients
// retry-loop so admitted throughput stays measurable under the cap.
void ServingOverload(benchmark::State& state) {
  const int clients = 4;
  const int queries_per_client = 16;
  exec::AdmissionConfig cfg;
  cfg.max_concurrent_queries = 2;
  cfg.max_queued_queries = 0;  // saturation sheds immediately, no waiting
  exec::AdmissionController::ConfigureGlobal(cfg);
  const std::vector<ServedQuery>& workload = Workload();
  int64_t admitted = 0;
  int64_t shed = 0;
  double total_seconds = 0.0;
  for (auto _ : state) {
    std::atomic<int64_t> wave_admitted{0};
    std::atomic<int64_t> wave_shed{0};
    Clock::time_point wave_start = Clock::now();
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        for (int q = 0; q < queries_per_client; ++q) {
          const ServedQuery& served = workload[(c + q) % workload.size()];
          while (true) {
            Result<QueryResult> result = served.engine->Execute(*served.plan);
            if (result.ok()) {
              wave_admitted.fetch_add(1, std::memory_order_relaxed);
              break;
            }
            // Anything but a structured admission shed is a bench abort.
            if (!result.status().IsAdmission()) result.status().CheckOK();
            wave_shed.fetch_add(1, std::memory_order_relaxed);
            // Back off before retrying so the shed counter reflects load
            // waves, not a hot spin against the saturated controller.
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
    double seconds = static_cast<double>(ElapsedUs(wave_start)) / 1e6;
    state.SetIterationTime(seconds);
    total_seconds += seconds;
    admitted += wave_admitted.load();
    shed += wave_shed.load();
  }
  exec::AdmissionController::ConfigureGlobal(exec::AdmissionConfig{});
  const double attempts = static_cast<double>(admitted + shed);
  state.counters["admitted"] = static_cast<double>(admitted);
  state.counters["shed"] = static_cast<double>(shed);
  state.counters["shed_rate"] =
      attempts > 0 ? static_cast<double>(shed) / attempts : 0;
  state.counters["qps"] =
      total_seconds > 0 ? static_cast<double>(admitted) / total_seconds : 0;
}

// The JIT-served subset of the bench workload: the registered corpus
// queries that the serving mix actually runs (q1/q3/q6 under swole).
std::vector<codegen::CorpusEntry> JitWorkloadCorpus(const Catalog& catalog) {
  std::vector<codegen::CorpusEntry> all = codegen::AutoCorpus(catalog);
  std::vector<codegen::CorpusEntry> picked;
  for (codegen::CorpusEntry& entry : all) {
    for (const char* name : {"tpch.q1/", "tpch.q3/", "tpch.q6/"}) {
      if (entry.name.rfind(name, 0) == 0) picked.push_back(std::move(entry));
    }
  }
  return picked;
}

// Time-to-first-result from an empty kernel cache, with and without the
// startup corpus precompile. The timed region is only the serving wave —
// the warm row's precompile cost is reported separately, because that is
// exactly the cost the corpus moves out of the first clients' latency.
void ServingJitCorpus(benchmark::State& state, const tpch::TpchData& data,
                      bool warm) {
  obs::Counter& warm_hits =
      obs::MetricsRegistry::Global().GetCounter("jit.corpus.warm_hits");
  obs::Counter& cold_misses =
      obs::MetricsRegistry::Global().GetCounter("jit.corpus.cold_misses");
  int64_t warm_before = warm_hits.value();
  int64_t cold_before = cold_misses.value();
  double precompile_ms = 0;
  for (auto _ : state) {
    // Model a fresh process: empty cache, no corpus keys from prior rows.
    codegen::KernelCache::Global().Clear();
    codegen::ResetCorpusKeysForTest();
    std::vector<codegen::CorpusEntry> entries =
        JitWorkloadCorpus(data.catalog);
    if (warm) {
      codegen::CorpusReport report =
          codegen::PrecompileCorpus(entries, data.catalog);
      precompile_ms += static_cast<double>(report.elapsed_ms);
    }
    Clock::time_point start = Clock::now();
    for (const codegen::CorpusEntry& entry : entries) {
      Result<QueryResult> result = codegen::ExecuteWithFallback(
          entry.plan, data.catalog, entry.gen);
      result.status().CheckOK();
      benchmark::DoNotOptimize(result->grouped ? result->NumGroups()
                                               : result->scalar[0]);
    }
    state.SetIterationTime(static_cast<double>(ElapsedUs(start)) / 1e6);
  }
  codegen::ResetCorpusKeysForTest();
  const double hits = static_cast<double>(warm_hits.value() - warm_before);
  const double misses =
      static_cast<double>(cold_misses.value() - cold_before);
  state.counters["warm_hit_ratio"] =
      hits + misses > 0 ? hits / (hits + misses) : 0;
  state.counters["precompile_ms"] = precompile_ms;
}

void RegisterAll(const tpch::TpchData& data) {
  BuildWorkload(data);
  for (int clients : {1, 2, 4, 8}) {
    benchmark::RegisterBenchmark(
        StringFormat("serving/throughput/%d", clients).c_str(),
        [clients](benchmark::State& state) {
          ServingThroughput(state, clients);
        })
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond)
        ->Iterations(5);
  }
  benchmark::RegisterBenchmark("serving/overload/2x", ServingOverload)
      ->UseManualTime()
      ->Unit(benchmark::kMillisecond)
      ->Iterations(5);
  for (bool warm : {false, true}) {
    benchmark::RegisterBenchmark(
        StringFormat("serving/jit_corpus/%s", warm ? "warm" : "cold")
            .c_str(),
        [&data, warm](benchmark::State& state) {
          ServingJitCorpus(state, data, warm);
        })
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond)
        ->Iterations(2);
  }
  // Single-query baseline: the shared-scheduler refactor must keep this
  // within 5% of the pre-refactor seed (acceptance bar in ISSUE/ROADMAP).
  for (StrategyKind kind : {StrategyKind::kDataCentric, StrategyKind::kSwole}) {
    bench::RegisterPlanBenchmark(
        StringFormat("serving/q1_single/%s", StrategyKindName(kind)),
        data.catalog, kind, tpch::Q1(data.catalog));
  }
}

}  // namespace
}  // namespace swole

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  auto data =
      swole::tpch::TpchData::Generate(swole::tpch::TpchConfig::FromEnv());
  swole::RegisterAll(*data);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
