// Cost-model calibration probe (supports §III's cost models): measures the
// machine's read_seq / read_cond / ht_lookup(size) / ht_null constants and
// prints the calibrated profile, plus the hash-table lookup cost curve
// across working-set sizes (the step function behind Fig. 9's regimes).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/string_util.h"
#include "cost/calibration.h"
#include "cost/cost_model.h"

namespace swole {
namespace {

void BM_ReadSeq(benchmark::State& state) {
  CalibrationOptions options;
  options.probe_bytes = 16 << 20;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MeasureReadSeqNs(options));
  }
}
BENCHMARK(BM_ReadSeq)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_ReadCond(benchmark::State& state) {
  CalibrationOptions options;
  options.probe_bytes = 16 << 20;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MeasureReadCondNs(options));
  }
}
BENCHMARK(BM_ReadCond)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_HtLookupCurve(benchmark::State& state) {
  int64_t keys = state.range(0);
  CalibrationOptions options;
  options.ht_probes = 1 << 18;
  double ns = 0;
  for (auto _ : state) {
    ns = MeasureHtLookupNs(keys, options);
    benchmark::DoNotOptimize(ns);
  }
  state.counters["ns_per_lookup"] = ns;
}
BENCHMARK(BM_HtLookupCurve)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->RangeMultiplier(4)
    ->Range(1 << 8, 1 << 22);

}  // namespace
}  // namespace swole

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  // Print the full calibrated profile first (this is what SWOLE's cost
  // model would consume on this machine).
  swole::CalibrationOptions options;
  options.probe_bytes = 16 << 20;
  options.ht_probes = 1 << 18;
  swole::CostProfile profile = swole::CalibrateCostProfile(options);
  std::printf("calibrated profile: %s\n", profile.ToString().c_str());
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
