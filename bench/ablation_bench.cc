// Ablation study (extension beyond the paper): SWOLE on the TPC-H queries
// with each technique individually disabled, quantifying each technique's
// contribution per query (the per-query attributions §IV-A describes in
// prose: Q1 <- key masking, Q3/Q4/Q5/Q19 <- positional bitmaps, Q6 <-
// access merging + value masking, Q13 <- value masking).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace swole {
namespace {

void RegisterAll(const tpch::TpchData& data) {
  static constexpr const char* kNames[] = {"Q1",  "Q3",  "Q4",  "Q5",
                                           "Q6",  "Q13", "Q14", "Q19"};
  struct Variant {
    const char* label;
    void (*apply)(StrategyOptions*);
  };
  const Variant variants[] = {
      {"full", [](StrategyOptions*) {}},
      {"no-value-masking",
       [](StrategyOptions* o) { o->enable_value_masking = false; }},
      {"no-key-masking",
       [](StrategyOptions* o) { o->enable_key_masking = false; }},
      {"no-access-merging",
       [](StrategyOptions* o) { o->enable_access_merging = false; }},
      {"no-positional-bitmaps",
       [](StrategyOptions* o) { o->enable_positional_bitmaps = false; }},
      {"no-eager-aggregation",
       [](StrategyOptions* o) { o->enable_eager_aggregation = false; }},
      {"no-masking",
       [](StrategyOptions* o) {
         o->enable_value_masking = false;
         o->enable_key_masking = false;
       }},
  };
  for (size_t q = 0; q < 8; ++q) {
    for (const Variant& variant : variants) {
      StrategyOptions options;
      variant.apply(&options);
      QueryPlan plan = std::move(tpch::AllQueries(data.catalog)[q]);
      bench::RegisterPlanBenchmark(
          StringFormat("ablation/%s/%s", kNames[q], variant.label),
          data.catalog, StrategyKind::kSwole, std::move(plan), options);
    }
  }
}

}  // namespace
}  // namespace swole

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  auto data = swole::tpch::TpchData::Generate(
      swole::tpch::TpchConfig::FromEnv());
  swole::RegisterAll(*data);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
