// Figure 12: microbenchmark Q5 — eager aggregation vs the traditional
// groupjoin on `select r_fk, sum(r_a*r_b) from R, S where r_fk = s_pk and
// s_x < [SEL] group by r_fk`.
//
//   12a: |S| = 1K — group table cached: EA flat and nearly always best.
//   12b: |S| = 1M — expensive lookups: EA only wins from ~30% selectivity.
//   Hash strategies peak around 50% (branch mispredictions on the match).
//
// Series: data-centric | hybrid | eager-aggregation (SWOLE forced EA).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "micro/micro.h"

namespace swole {
namespace {

void RegisterAll(const MicroData& data) {
  struct Config {
    bool large;
    const char* figure;
    int64_t s_rows;
  };
  Config configs[] = {
      {false, "fig12a_s1k", data.config.s_small_rows},
      {true, "fig12b_s1m", data.config.s_large_rows},
  };
  for (const Config& config : configs) {
    for (int64_t sel : bench::SelectivityGrid()) {
      for (StrategyKind kind :
           {StrategyKind::kDataCentric, StrategyKind::kHybrid}) {
        bench::RegisterPlanBenchmark(
            StringFormat("%s/%s/sel:%lld", config.figure,
                         StrategyKindName(kind),
                         static_cast<long long>(sel)),
            data.catalog, kind,
            MicroQ5(config.large, sel, config.s_rows));
      }
      StrategyOptions ea;
      ea.force_eager_aggregation = true;
      bench::RegisterPlanBenchmark(
          StringFormat("%s/eager-aggregation/sel:%lld", config.figure,
                       static_cast<long long>(sel)),
          data.catalog, StrategyKind::kSwole,
          MicroQ5(config.large, sel, config.s_rows), ea);
    }
  }
}

}  // namespace
}  // namespace swole

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  auto data = swole::MicroData::Generate(swole::MicroConfig::FromEnv());
  swole::RegisterAll(*data);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
