// Skew ablation (extension): the paper's microbenchmark uses uniform keys
// because "skew means some keys are more common than others and,
// therefore, more likely to be cached ... a lookup in a large hash table
// with uniformly distributed values will almost certainly result in a
// cache miss" (§IV-B). This bench quantifies that: micro Q2 (large group
// table) and micro Q4 (1M-row join) at Zipf theta 0 (uniform), 0.5, and
// 0.9. Expect the hash-based strategies to recover as skew grows while
// the positional/masked variants stay flat.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "micro/micro.h"

namespace swole {
namespace {

std::vector<std::unique_ptr<MicroData>>& DataPool() {
  static auto* pool = new std::vector<std::unique_ptr<MicroData>>();
  return *pool;
}

void RegisterForTheta(double theta) {
  MicroConfig config = MicroConfig::FromEnv();
  config.zipf_theta = theta;
  DataPool().push_back(MicroData::Generate(config));
  const MicroData& data = *DataPool().back();

  std::string tag = StringFormat("theta:%.1f", theta);
  // Largest group-key cardinality: the Fig. 9d regime.
  size_t c = data.c_columns.size() - 1;
  for (StrategyKind kind :
       {StrategyKind::kDataCentric, StrategyKind::kHybrid}) {
    bench::RegisterPlanBenchmark(
        StringFormat("skew_q2/%s/%s", StrategyKindName(kind), tag.c_str()),
        data.catalog, kind,
        MicroQ2(data.c_columns[c], data.c_actual[c], 50));
  }
  StrategyOptions km;
  km.force_agg = StrategyOptions::ForceAgg::kKeyMasking;
  bench::RegisterPlanBenchmark(
      StringFormat("skew_q2/key-masking/%s", tag.c_str()), data.catalog,
      StrategyKind::kSwole,
      MicroQ2(data.c_columns[c], data.c_actual[c], 50), km);

  for (StrategyKind kind :
       {StrategyKind::kHybrid, StrategyKind::kSwole}) {
    bench::RegisterPlanBenchmark(
        StringFormat("skew_q4/%s/%s",
                     kind == StrategyKind::kSwole ? "positional-bitmaps"
                                                  : StrategyKindName(kind),
                     tag.c_str()),
        data.catalog, kind, MicroQ4(/*large_s=*/true, 50, 50));
  }
}

}  // namespace
}  // namespace swole

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  for (double theta : {0.0, 0.5, 0.9}) {
    swole::RegisterForTheta(theta);
  }
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
