#ifndef SWOLE_BENCH_BENCH_UTIL_H_
#define SWOLE_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/string_util.h"
#include "plan/plan.h"
#include "plan/result.h"
#include "strategies/strategy.h"
#include "strategies/swole.h"

// Shared helpers for the figure-regeneration benchmarks. Each bench binary
// registers one benchmark per (series, x-value) pair of its paper figure,
// named `<figure>/<series>/<x>`, so the output rows are the figure's data
// points. Data is generated once per process; plans are rebuilt per point
// (selectivity is a plan literal, exactly like the paper's substitution
// parameters).

namespace swole::bench {

// Keeps registered plans alive for the benchmark lambdas. Function-local
// static values (not leaked pointers) so the pools destruct at exit and
// the bench binaries come up clean under LeakSanitizer.
inline std::vector<std::unique_ptr<QueryPlan>>& PlanPool() {
  static std::vector<std::unique_ptr<QueryPlan>> pool;
  return pool;
}

inline std::vector<std::unique_ptr<Strategy>>& EnginePool() {
  static std::vector<std::unique_ptr<Strategy>> pool;
  return pool;
}

/// Registers one benchmark running `plan` on a fresh engine of `kind`.
inline void RegisterPlanBenchmark(const std::string& name,
                                  const Catalog& catalog, StrategyKind kind,
                                  QueryPlan plan,
                                  StrategyOptions options = {}) {
  PlanPool().push_back(std::make_unique<QueryPlan>(std::move(plan)));
  EnginePool().push_back(MakeStrategy(kind, catalog, options));
  const QueryPlan* plan_ptr = PlanPool().back().get();
  Strategy* engine = EnginePool().back().get();
  benchmark::RegisterBenchmark(name.c_str(),
                               [plan_ptr, engine](benchmark::State& state) {
                                 int64_t checksum = 0;
                                 for (auto _ : state) {
                                   Result<QueryResult> result =
                                       engine->Execute(*plan_ptr);
                                   result.status().CheckOK();
                                   checksum ^= result->grouped
                                                   ? result->NumGroups()
                                                   : result->scalar[0];
                                   benchmark::DoNotOptimize(checksum);
                                 }
                               })
      ->Unit(benchmark::kMillisecond);
}

/// The selectivity grid of the microbenchmark figures (x-axis 0..100%).
inline std::vector<int64_t> SelectivityGrid() {
  return {0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100};
}

}  // namespace swole::bench

#endif  // SWOLE_BENCH_BENCH_UTIL_H_
