// Codegen validation bench (extension): the interpreted strategy engines
// vs their JIT-compiled twins on microbenchmark Q1. If the engine layer's
// tile-at-a-time execution adds material interpretation overhead, it shows
// up here as a gap between `engine/...` and `jit/...` rows — keeping the
// figure benchmarks honest about what they measure.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "codegen/jit.h"
#include "common/logging.h"
#include "micro/micro.h"

namespace swole {
namespace {

std::vector<std::unique_ptr<codegen::CompiledKernel>>& KernelPool() {
  static auto* pool =
      new std::vector<std::unique_ptr<codegen::CompiledKernel>>();
  return *pool;
}

void RegisterJit(const std::string& name, const MicroData& data,
                 QueryPlan plan, const codegen::GeneratorOptions& options) {
  Result<std::unique_ptr<codegen::CompiledKernel>> compiled =
      codegen::GenerateAndCompile(plan, data.catalog, options);
  if (!compiled.ok()) {
    // Compiles can be made to fail on purpose (SWOLE_FAULT, SWOLE_CXX);
    // skip the pure-JIT row then — jit-resilient/ rows still run and show
    // the fallback cost.
    SWOLE_LOG(WARNING) << "skipping " << name
                       << ": " << compiled.status().ToString();
    return;
  }
  KernelPool().push_back(std::move(compiled).value());
  codegen::CompiledKernel* kernel = KernelPool().back().get();
  const Catalog* catalog = &data.catalog;
  benchmark::RegisterBenchmark(name.c_str(),
                               [kernel, catalog](benchmark::State& state) {
                                 for (auto _ : state) {
                                   Result<QueryResult> result =
                                       kernel->Run(*catalog);
                                   result.status().CheckOK();
                                   benchmark::DoNotOptimize(
                                       result->scalar[0]);
                                 }
                               })
      ->Unit(benchmark::kMillisecond);
}

// End-to-end resilient path: generate + compile (kernel-cache hit after the
// first iteration) + run, through ExecuteWithFallback. The gap between this
// row and the matching jit/ row is the cache-lookup + generation overhead;
// under SWOLE_FAULT=jit_compile:1.0 it becomes the interpreted-fallback
// cost instead.
void RegisterResilient(const std::string& name, const MicroData& data,
                       QueryPlan plan,
                       const codegen::GeneratorOptions& options) {
  auto* shared_plan = new QueryPlan(std::move(plan));
  const Catalog* catalog = &data.catalog;
  benchmark::RegisterBenchmark(
      name.c_str(),
      [shared_plan, catalog, options](benchmark::State& state) {
        for (auto _ : state) {
          Result<QueryResult> result = codegen::ExecuteWithFallback(
              *shared_plan, *catalog, options);
          result.status().CheckOK();
          benchmark::DoNotOptimize(result->scalar[0]);
        }
        codegen::JitStats::Snapshot stats =
            codegen::GlobalJitStats().snapshot();
        state.counters["cache_hits"] = static_cast<double>(
            stats.cache_hits_memory + stats.cache_hits_disk);
        state.counters["fallbacks"] = static_cast<double>(stats.fallbacks);
      })
      ->Unit(benchmark::kMillisecond);
}

void RegisterAll(const MicroData& data) {
  for (int64_t sel : {int64_t{10}, int64_t{50}, int64_t{90}}) {
    // Engine rows.
    for (StrategyKind kind :
         {StrategyKind::kDataCentric, StrategyKind::kHybrid}) {
      bench::RegisterPlanBenchmark(
          StringFormat("engine/%s/sel:%lld", StrategyKindName(kind),
                       static_cast<long long>(sel)),
          data.catalog, kind, MicroQ1(false, sel));
    }
    StrategyOptions vm;
    vm.force_agg = StrategyOptions::ForceAgg::kValueMasking;
    bench::RegisterPlanBenchmark(
        StringFormat("engine/value-masking/sel:%lld",
                     static_cast<long long>(sel)),
        data.catalog, StrategyKind::kSwole, MicroQ1(false, sel), vm);

    // JIT rows.
    codegen::GeneratorOptions dc;
    dc.strategy = StrategyKind::kDataCentric;
    RegisterJit(StringFormat("jit/data-centric/sel:%lld",
                             static_cast<long long>(sel)),
                data, MicroQ1(false, sel), dc);
    codegen::GeneratorOptions hy;
    hy.strategy = StrategyKind::kHybrid;
    RegisterJit(StringFormat("jit/hybrid/sel:%lld",
                             static_cast<long long>(sel)),
                data, MicroQ1(false, sel), hy);
    codegen::GeneratorOptions sw;
    sw.strategy = StrategyKind::kSwole;
    sw.agg_choice = AggChoice::kValueMasking;
    RegisterJit(StringFormat("jit/value-masking/sel:%lld",
                             static_cast<long long>(sel)),
                data, MicroQ1(false, sel), sw);
    RegisterResilient(StringFormat("jit-resilient/value-masking/sel:%lld",
                                   static_cast<long long>(sel)),
                      data, MicroQ1(false, sel), sw);
  }
}

}  // namespace
}  // namespace swole

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  auto data = swole::MicroData::Generate(swole::MicroConfig::FromEnv());
  swole::RegisterAll(*data);
  benchmark::RunSpecifiedBenchmarks();
  std::fprintf(stderr, "JIT pipeline stats: %s\n",
               swole::codegen::GlobalJitStats().snapshot().ToString().c_str());
  return 0;
}
