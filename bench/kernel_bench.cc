// Per-primitive kernel throughput, scalar vs SWAR vs AVX2, across mask
// selectivities. One row per (primitive, backend, selectivity) —
// `kernels/<primitive>/<backend>/sel:<pct>` — with bytes_per_second set to
// the streamed input+output volume, so rows read directly as GB/s and
// dividing a backend row by its scalar row gives the dispatch speedup.
// Backends the host cannot run (AVX2 without the ISA) are not registered.
//
// Record a baseline with:
//   ./bench/kernel_bench --benchmark_format=json > BENCH_kernels.json

#include <benchmark/benchmark.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "bench_util.h"
#include "exec/kernels.h"
#include "exec/simd.h"

namespace swole {
namespace {

using simd::Backend;
using simd::CmpOp;

constexpr int64_t kLen = 1 << 20;  // 1 Mi lanes per iteration

// One shared input set, generated once. Mask arrays are materialized per
// selectivity so every primitive sees identical bytes.
struct BenchData {
  std::vector<int64_t> a64, b64;
  std::vector<int32_t> a32, b32;
  std::vector<int16_t> a16, b16;
  std::vector<int8_t> a8, b8;
  std::vector<uint8_t> other;            // second mask for And/Or
  std::vector<std::vector<uint8_t>> cmp; // per-selectivity 0/1 masks
  std::vector<int> sels;

  explicit BenchData(std::vector<int> selectivities)
      : sels(std::move(selectivities)) {
    std::mt19937_64 rng(1234);
    std::uniform_int_distribution<int64_t> pct(0, 99);
    a64.resize(kLen);
    b64.resize(kLen);
    a32.resize(kLen);
    b32.resize(kLen);
    a16.resize(kLen);
    b16.resize(kLen);
    a8.resize(kLen);
    b8.resize(kLen);
    other.resize(kLen);
    for (int64_t j = 0; j < kLen; ++j) {
      // Values in [0, 100): CompareLit with lit == sel hits sel% of lanes,
      // and the masked sums cannot overflow.
      int64_t v = pct(rng);
      a64[j] = v;
      b64[j] = pct(rng);
      a32[j] = static_cast<int32_t>(b64[j]);
      b32[j] = static_cast<int32_t>(v);
      a16[j] = static_cast<int16_t>(v);
      b16[j] = static_cast<int16_t>(b64[j]);
      a8[j] = static_cast<int8_t>(v);
      b8[j] = static_cast<int8_t>(b64[j]);
      other[j] = static_cast<uint8_t>(rng() & 1);
    }
    for (int sel : sels) {
      std::vector<uint8_t> m(kLen);
      for (int64_t j = 0; j < kLen; ++j) m[j] = pct(rng) < sel ? 1 : 0;
      cmp.push_back(std::move(m));
    }
  }

  const std::vector<uint8_t>& Mask(int sel) const {
    for (size_t i = 0; i < sels.size(); ++i) {
      if (sels[i] == sel) return cmp[i];
    }
    SWOLE_CHECK(false) << "unknown selectivity " << sel;
    return cmp[0];
  }
};

BenchData* data = nullptr;

// Registers `kernels/<prim>/<backend>/sel:<pct>` running `fn(sel)` with the
// backend pinned for the duration of the row. `bytes` is the per-iteration
// streamed volume for the GB/s counter.
template <typename Fn>
void RegisterKernelRow(const std::string& prim, Backend backend, int sel,
                       int64_t bytes, Fn fn) {
  std::string name = StringFormat("kernels/%s/%s/sel:%d", prim.c_str(),
                                  simd::BackendName(backend), sel);
  benchmark::RegisterBenchmark(
      name.c_str(),
      [backend, sel, bytes, fn](benchmark::State& state) {
        Backend prev = simd::ActiveBackend();
        simd::SetBackend(backend);
        for (auto _ : state) {
          benchmark::DoNotOptimize(fn(sel));
        }
        state.SetBytesProcessed(state.iterations() * bytes);
        simd::SetBackend(prev);
      });
}

// Width-sweep rows: `kernels/<prim>/<backend>/w:<bits>` at a fixed 50%
// mask, plus `kernels/<prim>_widened/...` twins that force the legacy
// widen-to-int64 path (SWOLE_WIDEN) over the same narrow input. Both report
// the NATIVE streamed volume, so widened GB/s divided into native GB/s is
// exactly the speedup of executing at the column's physical width.
template <typename Fn>
void RegisterWidthRow(const std::string& prim, Backend backend, int bits,
                      bool widened, int64_t bytes, Fn fn) {
  std::string name =
      StringFormat("kernels/%s%s/%s/w:%d", prim.c_str(),
                   widened ? "_widened" : "", simd::BackendName(backend),
                   bits);
  benchmark::RegisterBenchmark(
      name.c_str(),
      [backend, widened, bytes, fn](benchmark::State& state) {
        Backend prev = simd::ActiveBackend();
        bool prev_widen = kernels::WidenEnabled();
        simd::SetBackend(backend);
        kernels::SetWidenMode(widened);
        for (auto _ : state) {
          benchmark::DoNotOptimize(fn());
        }
        state.SetBytesProcessed(state.iterations() * bytes);
        kernels::SetWidenMode(prev_widen);
        simd::SetBackend(prev);
      });
}

template <typename T>
void RegisterWidthRows(Backend b, const std::vector<T>& a,
                       const std::vector<T>& bcol, std::vector<uint8_t>* out,
                       std::vector<int64_t>* tmp) {
  const int bits = static_cast<int>(sizeof(T)) * 8;
  const int64_t w = static_cast<int64_t>(sizeof(T));
  // The int64 rows have no narrower path to widen from; register the
  // widened twin only for narrow widths.
  const int n_modes = sizeof(T) == 8 ? 1 : 2;
  for (int mode = 0; mode < n_modes; ++mode) {
    const bool widened = mode == 1;
    RegisterWidthRow("compare_lit", b, bits, widened, kLen * (w + 1),
                     [&a, out]() {
                       kernels::CompareLit<T>(CmpOp::kLt, a.data(), 50,
                                              out->data(), kLen);
                       return (*out)[kLen - 1];
                     });
    RegisterWidthRow("sum_masked", b, bits, widened, kLen * (w + 1),
                     [&a]() {
                       return kernels::SumMasked<T>(
                           a.data(), data->Mask(50).data(), kLen);
                     });
    RegisterWidthRow("sum_product_masked", b, bits, widened,
                     kLen * (2 * w + 1), [&a, &bcol]() {
                       return kernels::SumProductMasked<T, T>(
                           a.data(), bcol.data(), data->Mask(50).data(),
                           kLen);
                     });
    RegisterWidthRow("mask_into_tmp", b, bits, widened, kLen * (w + 1 + 8),
                     [&a, tmp]() {
                       kernels::MaskIntoTmp<T>(a.data(),
                                               data->Mask(50).data(), kLen,
                                               tmp->data());
                       return (*tmp)[kLen - 1];
                     });
  }
}

void RegisterAll() {
  std::vector<Backend> backends = {Backend::kScalar, Backend::kSwar};
  if (simd::CpuHasAvx2()) backends.push_back(Backend::kAvx2);
  static std::vector<uint8_t> out(kLen);
  static std::vector<int64_t> tmp(kLen);
  static std::vector<int32_t> idx(kLen + 8);

  for (Backend b : backends) {
    for (int sel : data->sels) {
      RegisterKernelRow("compare_lit_i64", b, sel, kLen * 9, [](int s) {
        kernels::CompareLit<int64_t>(CmpOp::kLt, data->a64.data(), s,
                                     out.data(), kLen);
        return out[kLen - 1];
      });
      RegisterKernelRow("compare_lit_i32", b, sel, kLen * 5, [](int s) {
        kernels::CompareLit<int32_t>(CmpOp::kLt, data->a32.data(), s,
                                     out.data(), kLen);
        return out[kLen - 1];
      });
      RegisterKernelRow("compare_eq_i8", b, sel, kLen * 2, [](int s) {
        kernels::CompareLit<int8_t>(CmpOp::kEq, data->a8.data(), s % 100,
                                    out.data(), kLen);
        return out[kLen - 1];
      });
      RegisterKernelRow("and_bytes", b, sel, kLen * 3, [](int s) {
        std::memcpy(out.data(), data->Mask(s).data(), kLen);
        kernels::AndBytes(out.data(), data->other.data(), kLen);
        return out[kLen - 1];
      });
      RegisterKernelRow("count_bytes", b, sel, kLen, [](int s) {
        return kernels::CountBytes(data->Mask(s).data(), kLen);
      });
      RegisterKernelRow("sum_masked_i64", b, sel, kLen * 9, [](int s) {
        return kernels::SumMasked<int64_t>(data->a64.data(),
                                           data->Mask(s).data(), kLen);
      });
      RegisterKernelRow("sum_product_masked_i32", b, sel, kLen * 9,
                        [](int s) {
                          return kernels::SumProductMasked<int32_t, int32_t>(
                              data->a32.data(), data->b32.data(),
                              data->Mask(s).data(), kLen);
                        });
      RegisterKernelRow("mask_into_tmp_i64", b, sel, kLen * 17, [](int s) {
        kernels::MaskIntoTmp<int64_t>(data->a64.data(),
                                      data->Mask(s).data(), kLen,
                                      tmp.data());
        return tmp[kLen - 1];
      });
      RegisterKernelRow("selvec_nobranch", b, sel, kLen, [](int s) {
        return kernels::SelVecFromCmpNoBranch(data->Mask(s).data(), kLen,
                                              idx.data());
      });
      RegisterKernelRow("selvec_lut", b, sel, kLen, [](int s) {
        return kernels::SelVecFromCmpLut(data->Mask(s).data(), kLen,
                                         idx.data());
      });
    }

    RegisterWidthRows<int8_t>(b, data->a8, data->b8, &out, &tmp);
    RegisterWidthRows<int16_t>(b, data->a16, data->b16, &out, &tmp);
    RegisterWidthRows<int32_t>(b, data->a32, data->b32, &out, &tmp);
    RegisterWidthRows<int64_t>(b, data->a64, data->b64, &out, &tmp);
  }
}

}  // namespace
}  // namespace swole

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  swole::BenchData bench_data({10, 50, 90});
  swole::data = &bench_data;
  swole::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  swole::data = nullptr;
  return 0;
}
