// Per-primitive kernel throughput, scalar vs SWAR vs AVX2, across mask
// selectivities. One row per (primitive, backend, selectivity) —
// `kernels/<primitive>/<backend>/sel:<pct>` — with bytes_per_second set to
// the streamed input+output volume, so rows read directly as GB/s and
// dividing a backend row by its scalar row gives the dispatch speedup.
// Backends the host cannot run (AVX2 without the ISA) are not registered.
//
// Record a baseline with:
//   ./bench/kernel_bench --benchmark_format=json > BENCH_kernels.json

#include <benchmark/benchmark.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "bench_util.h"
#include "exec/kernels.h"
#include "exec/simd.h"

namespace swole {
namespace {

using simd::Backend;
using simd::CmpOp;

constexpr int64_t kLen = 1 << 20;  // 1 Mi lanes per iteration

// One shared input set, generated once. Mask arrays are materialized per
// selectivity so every primitive sees identical bytes.
struct BenchData {
  std::vector<int64_t> a64, b64;
  std::vector<int32_t> a32, b32;
  std::vector<int8_t> a8;
  std::vector<uint8_t> other;            // second mask for And/Or
  std::vector<std::vector<uint8_t>> cmp; // per-selectivity 0/1 masks
  std::vector<int> sels;

  explicit BenchData(std::vector<int> selectivities)
      : sels(std::move(selectivities)) {
    std::mt19937_64 rng(1234);
    std::uniform_int_distribution<int64_t> pct(0, 99);
    a64.resize(kLen);
    b64.resize(kLen);
    a32.resize(kLen);
    b32.resize(kLen);
    a8.resize(kLen);
    other.resize(kLen);
    for (int64_t j = 0; j < kLen; ++j) {
      // Values in [0, 100): CompareLit with lit == sel hits sel% of lanes,
      // and the masked sums cannot overflow.
      int64_t v = pct(rng);
      a64[j] = v;
      b64[j] = pct(rng);
      a32[j] = static_cast<int32_t>(b64[j]);
      b32[j] = static_cast<int32_t>(v);
      a8[j] = static_cast<int8_t>(v);
      other[j] = static_cast<uint8_t>(rng() & 1);
    }
    for (int sel : sels) {
      std::vector<uint8_t> m(kLen);
      for (int64_t j = 0; j < kLen; ++j) m[j] = pct(rng) < sel ? 1 : 0;
      cmp.push_back(std::move(m));
    }
  }

  const std::vector<uint8_t>& Mask(int sel) const {
    for (size_t i = 0; i < sels.size(); ++i) {
      if (sels[i] == sel) return cmp[i];
    }
    SWOLE_CHECK(false) << "unknown selectivity " << sel;
    return cmp[0];
  }
};

BenchData* data = nullptr;

// Registers `kernels/<prim>/<backend>/sel:<pct>` running `fn(sel)` with the
// backend pinned for the duration of the row. `bytes` is the per-iteration
// streamed volume for the GB/s counter.
template <typename Fn>
void RegisterKernelRow(const std::string& prim, Backend backend, int sel,
                       int64_t bytes, Fn fn) {
  std::string name = StringFormat("kernels/%s/%s/sel:%d", prim.c_str(),
                                  simd::BackendName(backend), sel);
  benchmark::RegisterBenchmark(
      name.c_str(),
      [backend, sel, bytes, fn](benchmark::State& state) {
        Backend prev = simd::ActiveBackend();
        simd::SetBackend(backend);
        for (auto _ : state) {
          benchmark::DoNotOptimize(fn(sel));
        }
        state.SetBytesProcessed(state.iterations() * bytes);
        simd::SetBackend(prev);
      });
}

void RegisterAll() {
  std::vector<Backend> backends = {Backend::kScalar, Backend::kSwar};
  if (simd::CpuHasAvx2()) backends.push_back(Backend::kAvx2);
  static std::vector<uint8_t> out(kLen);
  static std::vector<int64_t> tmp(kLen);
  static std::vector<int32_t> idx(kLen + 8);

  for (Backend b : backends) {
    for (int sel : data->sels) {
      RegisterKernelRow("compare_lit_i64", b, sel, kLen * 9, [](int s) {
        kernels::CompareLit<int64_t>(CmpOp::kLt, data->a64.data(), s,
                                     out.data(), kLen);
        return out[kLen - 1];
      });
      RegisterKernelRow("compare_lit_i32", b, sel, kLen * 5, [](int s) {
        kernels::CompareLit<int32_t>(CmpOp::kLt, data->a32.data(), s,
                                     out.data(), kLen);
        return out[kLen - 1];
      });
      RegisterKernelRow("compare_eq_i8", b, sel, kLen * 2, [](int s) {
        kernels::CompareLit<int8_t>(CmpOp::kEq, data->a8.data(), s % 100,
                                    out.data(), kLen);
        return out[kLen - 1];
      });
      RegisterKernelRow("and_bytes", b, sel, kLen * 3, [](int s) {
        std::memcpy(out.data(), data->Mask(s).data(), kLen);
        kernels::AndBytes(out.data(), data->other.data(), kLen);
        return out[kLen - 1];
      });
      RegisterKernelRow("count_bytes", b, sel, kLen, [](int s) {
        return kernels::CountBytes(data->Mask(s).data(), kLen);
      });
      RegisterKernelRow("sum_masked_i64", b, sel, kLen * 9, [](int s) {
        return kernels::SumMasked<int64_t>(data->a64.data(),
                                           data->Mask(s).data(), kLen);
      });
      RegisterKernelRow("sum_product_masked_i32", b, sel, kLen * 9,
                        [](int s) {
                          return kernels::SumProductMasked<int32_t, int32_t>(
                              data->a32.data(), data->b32.data(),
                              data->Mask(s).data(), kLen);
                        });
      RegisterKernelRow("mask_into_tmp_i64", b, sel, kLen * 17, [](int s) {
        kernels::MaskIntoTmp<int64_t>(data->a64.data(),
                                      data->Mask(s).data(), kLen,
                                      tmp.data());
        return tmp[kLen - 1];
      });
      RegisterKernelRow("selvec_nobranch", b, sel, kLen, [](int s) {
        return kernels::SelVecFromCmpNoBranch(data->Mask(s).data(), kLen,
                                              idx.data());
      });
      RegisterKernelRow("selvec_lut", b, sel, kLen, [](int s) {
        return kernels::SelVecFromCmpLut(data->Mask(s).data(), kLen,
                                         idx.data());
      });
    }
  }
}

}  // namespace
}  // namespace swole

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  swole::BenchData bench_data({10, 50, 90});
  swole::data = &bench_data;
  swole::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  swole::data = nullptr;
  return 0;
}
