// Figure 6: TPC-H (paper: SF 10; default here SF 0.1, override with
// SWOLE_SF). One row per (query, strategy); the paper's reported speedups
// are the ratios data-centric/hybrid and hybrid/swole per query.
//
// Series: data-centric | hybrid | rof (extension; the paper excluded ROF
// for hardware reasons) | swole. The HyPer sanity-check series is omitted
// (proprietary binary; the paper itself treats it as a sanity check, not a
// comparison point).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "exec/kernels.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace swole {
namespace {

void RegisterAll(const tpch::TpchData& data) {
  static constexpr const char* kNames[] = {"Q1",  "Q3",  "Q4",  "Q5",
                                           "Q6",  "Q13", "Q14", "Q19"};
  std::vector<QueryPlan> plans = tpch::AllQueries(data.catalog);
  for (size_t q = 0; q < plans.size(); ++q) {
    for (StrategyKind kind :
         {StrategyKind::kDataCentric, StrategyKind::kHybrid,
          StrategyKind::kRof, StrategyKind::kSwole}) {
      // Plans are move-only; rebuild one per registration.
      QueryPlan plan = std::move(tpch::AllQueries(data.catalog)[q]);
      bench::RegisterPlanBenchmark(
          StringFormat("fig6_tpch/%s/%s", kNames[q], StrategyKindName(kind)),
          data.catalog, kind, std::move(plan));
    }
  }

  // Q1 under the SWOLE_WIDEN escape hatch: every narrow lineitem read
  // inflates to int64 first. The Q1/swole row above divided by this one is
  // the end-to-end payoff of native-width execution on the paper's
  // aggregation-heaviest query.
  {
    QueryPlan plan = std::move(tpch::AllQueries(data.catalog)[0]);
    bench::PlanPool().push_back(
        std::make_unique<QueryPlan>(std::move(plan)));
    bench::EnginePool().push_back(
        MakeStrategy(StrategyKind::kSwole, data.catalog, {}));
    const QueryPlan* plan_ptr = bench::PlanPool().back().get();
    Strategy* engine = bench::EnginePool().back().get();
    benchmark::RegisterBenchmark(
        "fig6_tpch/Q1_widened/swole",
        [plan_ptr, engine](benchmark::State& state) {
          bool prev = kernels::WidenEnabled();
          kernels::SetWidenMode(true);
          int64_t checksum = 0;
          for (auto _ : state) {
            Result<QueryResult> result = engine->Execute(*plan_ptr);
            result.status().CheckOK();
            checksum ^=
                result->grouped ? result->NumGroups() : result->scalar[0];
            benchmark::DoNotOptimize(checksum);
          }
          kernels::SetWidenMode(prev);
        })
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace swole

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  auto data = swole::tpch::TpchData::Generate(
      swole::tpch::TpchConfig::FromEnv());
  swole::RegisterAll(*data);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
