// Figure 6: TPC-H (paper: SF 10; default here SF 0.1, override with
// SWOLE_SF). One row per (query, strategy); the paper's reported speedups
// are the ratios data-centric/hybrid and hybrid/swole per query.
//
// Series: data-centric | hybrid | rof (extension; the paper excluded ROF
// for hardware reasons) | swole. The HyPer sanity-check series is omitted
// (proprietary binary; the paper itself treats it as a sanity check, not a
// comparison point).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace swole {
namespace {

void RegisterAll(const tpch::TpchData& data) {
  static constexpr const char* kNames[] = {"Q1",  "Q3",  "Q4",  "Q5",
                                           "Q6",  "Q13", "Q14", "Q19"};
  std::vector<QueryPlan> plans = tpch::AllQueries(data.catalog);
  for (size_t q = 0; q < plans.size(); ++q) {
    for (StrategyKind kind :
         {StrategyKind::kDataCentric, StrategyKind::kHybrid,
          StrategyKind::kRof, StrategyKind::kSwole}) {
      // Plans are move-only; rebuild one per registration.
      QueryPlan plan = std::move(tpch::AllQueries(data.catalog)[q]);
      bench::RegisterPlanBenchmark(
          StringFormat("fig6_tpch/%s/%s", kNames[q], StrategyKindName(kind)),
          data.catalog, kind, std::move(plan));
    }
  }
}

}  // namespace
}  // namespace swole

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  auto data = swole::tpch::TpchData::Generate(
      swole::tpch::TpchConfig::FromEnv());
  swole::RegisterAll(*data);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
