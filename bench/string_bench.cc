// String kernel throughput (scalar vs SWAR vs AVX2) and end-to-end
// pushed-vs-pulled placement rows.
//
// Kernel rows — `strings/<primitive>/<backend>/len:<avg>` — stream one
// tile's worth of rows per iteration with bytes_per_second set to the
// arena volume touched, so rows read directly as GB/s and dividing a
// backend row by its scalar row gives the dispatch speedup (the
// acceptance bar: AVX2 substring search at len:256 >= 2x scalar).
//
// End-to-end rows — `strings/e2e/micro_q6/<push|pull|auto>/sel:<pct>` —
// run the SWOLE engine on micro Q6 (r join s with `r_s LIKE '%zebra%'`)
// with the placement forced via SWOLE_STR_PLACEMENT, sweeping the dim
// selectivity across the cost model's flip point (~44%).
//
// Record a baseline with:
//   ./bench/string_bench --benchmark_format=json > BENCH_strings.json

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "bench_util.h"
#include "exec/kernels.h"
#include "exec/simd.h"
#include "exec/simd_string.h"
#include "micro/micro.h"
#include "storage/string_column.h"

namespace swole {
namespace {

using simd::Backend;

constexpr int64_t kRows = 1 << 16;  // rows per registered column

// One StringColumn per average length. Background bytes are drawn from
// a..y and the needle "zebra" is spliced into ~10% of rows, so substring
// rows do real verify work without degenerating to all-hit or all-miss.
struct StringBenchData {
  std::vector<int64_t> lens = {16, 64, 256};
  std::vector<StringColumn> columns;

  StringBenchData() {
    std::mt19937_64 rng(4242);
    std::uniform_int_distribution<int> letter(0, 24);
    for (int64_t avg : lens) {
      StringColumn col;
      std::string buf;
      std::uniform_int_distribution<int64_t> length(avg / 2, avg + avg / 2);
      std::uniform_int_distribution<int> pct(0, 99);
      for (int64_t i = 0; i < kRows; ++i) {
        int64_t n = length(rng);
        buf.resize(n);
        for (int64_t j = 0; j < n; ++j) {
          buf[j] = static_cast<char>('a' + letter(rng));
        }
        if (n >= 5 && pct(rng) < 10) {
          std::uniform_int_distribution<int64_t> pos(0, n - 5);
          buf.replace(pos(rng), 5, "zebra");
        }
        col.Append(buf);
      }
      columns.push_back(std::move(col));
    }
  }

  const StringColumn& ForLen(int64_t avg) const {
    for (size_t i = 0; i < lens.size(); ++i) {
      if (lens[i] == avg) return columns[i];
    }
    SWOLE_CHECK(false) << "unknown length " << avg;
    return columns[0];
  }
};

StringBenchData* data = nullptr;

// Registers `strings/<prim>/<backend>/len:<avg>` running `fn()` over the
// whole column with the backend pinned. `bytes` is the per-iteration
// arena volume for the GB/s counter.
template <typename Fn>
void RegisterStringRow(const std::string& prim, Backend backend, int64_t avg,
                       int64_t bytes, Fn fn) {
  std::string name =
      StringFormat("strings/%s/%s/len:%lld", prim.c_str(),
                   simd::BackendName(backend), static_cast<long long>(avg));
  benchmark::RegisterBenchmark(
      name.c_str(), [backend, bytes, fn](benchmark::State& state) {
        Backend prev = simd::ActiveBackend();
        simd::SetBackend(backend);
        for (auto _ : state) {
          benchmark::DoNotOptimize(fn());
        }
        state.SetBytesProcessed(state.iterations() * bytes);
        simd::SetBackend(prev);
      });
}

void RegisterKernelRows() {
  std::vector<Backend> backends = {Backend::kScalar, Backend::kSwar};
  if (simd::CpuHasAvx2()) backends.push_back(Backend::kAvx2);
  static std::vector<uint8_t> out(kRows);
  static std::vector<uint64_t> hashes(kRows);
  static const simd::CompiledLike contains =
      simd::CompileLike("%zebra%", false);
  static const simd::CompiledLike general =
      simd::CompileLike("%ze_ra%", false);

  for (Backend b : backends) {
    for (int64_t avg : data->lens) {
      const StringColumn& col = data->ForLen(avg);
      const uint8_t* bytes = col.bytes();
      const uint32_t* offsets = col.offsets();
      const int64_t volume = col.total_bytes() + kRows;

      RegisterStringRow("eq_lit", b, avg, volume, [bytes, offsets]() {
        kernels::StrEqLit(bytes, offsets, 0, kRows, "zebrazebra",
                          out.data());
        return out[kRows - 1];
      });
      RegisterStringRow("cmp_lit", b, avg, volume, [bytes, offsets]() {
        kernels::StrCmpLit(kernels::CmpOp::kLt, bytes, offsets, 0, kRows,
                           "mmmmmmmm", out.data());
        return out[kRows - 1];
      });
      RegisterStringRow("prefix", b, avg, volume, [bytes, offsets]() {
        kernels::StrPrefix(bytes, offsets, 0, kRows, "ze", out.data());
        return out[kRows - 1];
      });
      RegisterStringRow("contains", b, avg, volume, [bytes, offsets]() {
        kernels::StrContains(bytes, offsets, 0, kRows, "zebra", out.data());
        return out[kRows - 1];
      });
      RegisterStringRow("like_contains", b, avg, volume,
                        [bytes, offsets]() {
                          kernels::StrLikeTile(bytes, offsets, 0, kRows,
                                               contains, out.data());
                          return out[kRows - 1];
                        });
      RegisterStringRow("like_general", b, avg, volume, [bytes, offsets]() {
        kernels::StrLikeTile(bytes, offsets, 0, kRows, general, out.data());
        return out[kRows - 1];
      });
      RegisterStringRow("hash", b, avg, volume, [bytes, offsets]() {
        kernels::StrHashTile(bytes, offsets, 0, kRows, hashes.data());
        return hashes[kRows - 1];
      });
    }
  }
}

// End-to-end placement rows. The engine re-reads SWOLE_STR_PLACEMENT on
// every Analyze, so forcing it per-row is just setenv around Execute.
void RegisterE2eRows(const MicroData& micro) {
  for (const char* placement : {"push", "pull", "auto"}) {
    for (int64_t sel : {5, 20, 44, 70, 95}) {
      std::string name = StringFormat("strings/e2e/micro_q6/%s/sel:%lld",
                                      placement,
                                      static_cast<long long>(sel));
      bench::PlanPool().push_back(
          std::make_unique<QueryPlan>(MicroQ6(false, sel)));
      bench::EnginePool().push_back(
          MakeStrategy(StrategyKind::kSwole, micro.catalog));
      const QueryPlan* plan = bench::PlanPool().back().get();
      Strategy* engine = bench::EnginePool().back().get();
      benchmark::RegisterBenchmark(
          name.c_str(),
          [plan, engine, placement](benchmark::State& state) {
            setenv("SWOLE_STR_PLACEMENT", placement, 1);
            int64_t checksum = 0;
            for (auto _ : state) {
              Result<QueryResult> result = engine->Execute(*plan);
              result.status().CheckOK();
              checksum ^= result->scalar[0];
              benchmark::DoNotOptimize(checksum);
            }
            unsetenv("SWOLE_STR_PLACEMENT");
          })
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace swole

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  swole::StringBenchData bench_data;
  swole::data = &bench_data;
  swole::RegisterKernelRows();
  swole::MicroConfig config = swole::MicroConfig::FromEnv();
  config.r_rows = std::min<int64_t>(config.r_rows, 500'000);
  std::unique_ptr<swole::MicroData> micro =
      swole::MicroData::Generate(config);
  swole::RegisterE2eRows(*micro);
  benchmark::RunSpecifiedBenchmarks();
  swole::data = nullptr;
  return 0;
}
