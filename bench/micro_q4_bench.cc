// Figure 11: microbenchmark Q4 — positional bitmaps on the fk join
// `sum(r_a*r_b) from R, S where r_fk = s_pk and r_x < [SEL1] and
// s_x < [SEL2]`, S = 1M rows.
//
//   11a: probe side fixed at 10%, build side swept  (hash probes rare ->
//        strategies closest here)
//   11b: probe side fixed at 90%, build side swept
//   11c: build side fixed at 10%, probe side swept
//   11d: build side fixed at 90%, probe side swept
//
// Expected: positional bitmaps significantly beat both hash strategies in
// every configuration except the low-probe-selectivity corner.
//
// Series: data-centric | hybrid | positional-bitmaps (SWOLE).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "micro/micro.h"

namespace swole {
namespace {

void RegisterPoint(const MicroData& data, const char* figure, int64_t sel1,
                   int64_t sel2, int64_t x) {
  for (StrategyKind kind :
       {StrategyKind::kDataCentric, StrategyKind::kHybrid}) {
    bench::RegisterPlanBenchmark(
        StringFormat("%s/%s/sel:%lld", figure, StrategyKindName(kind),
                     static_cast<long long>(x)),
        data.catalog, kind, MicroQ4(/*large_s=*/true, sel1, sel2));
  }
  bench::RegisterPlanBenchmark(
      StringFormat("%s/positional-bitmaps/sel:%lld", figure,
                   static_cast<long long>(x)),
      data.catalog, StrategyKind::kSwole,
      MicroQ4(/*large_s=*/true, sel1, sel2));
}

void RegisterAll(const MicroData& data) {
  for (int64_t sel : bench::SelectivityGrid()) {
    RegisterPoint(data, "fig11a_probe10_buildX", 10, sel, sel);
    RegisterPoint(data, "fig11b_probe90_buildX", 90, sel, sel);
    RegisterPoint(data, "fig11c_build10_probeX", sel, 10, sel);
    RegisterPoint(data, "fig11d_build90_probeX", sel, 90, sel);
  }
}

}  // namespace
}  // namespace swole

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  auto data = swole::MicroData::Generate(swole::MicroConfig::FromEnv());
  swole::RegisterAll(*data);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
