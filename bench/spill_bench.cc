// Spill-to-disk aggregation: overhead of the memory-pressure-graceful
// group-by path vs the all-in-memory path, across budget pressure levels.
// See BENCH_spill.json and EXPERIMENTS.md.
//
// Series (strategy in {data-centric, swole}):
//   spill/q2_in_memory/<strategy>      - unbudgeted group-by; the baseline
//       every other row is measured against. The spill subsystem is
//       compiled in but fully dormant (no QueryContext): the acceptance
//       bar is < 2% regression vs the pre-spill seed of this same row.
//   spill/q2_budget_full/<strategy>    - a QueryContext with a budget
//       comfortably above the in-memory peak, spill enabled. Measures the
//       pure bookkeeping cost of charge-before-allocate + spill plumbing
//       when nothing ever spills (counter spills stays 0).
//   spill/q2_budget_div<N>/<strategy>  - budget = in_memory_peak / N for
//       N in {2, 4, 8}: the group-by state is N times the budget, so the
//       query only completes by radix-spilling to disk and merging.
//       Counters: spills (spill events per query), peak_mb (observed
//       high-water mark — must stay under the budget), budget_mb.
//
// The in-memory peak is measured once at startup with an unlimited
// budgeted run, so the div-N rows track the workload if it changes.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/string_util.h"
#include "exec/query_context.h"
#include "micro/micro.h"
#include "storage/table.h"

namespace swole {
namespace {

constexpr StrategyKind kKinds[] = {StrategyKind::kDataCentric,
                                   StrategyKind::kSwole};

MicroData* Data() {
  static std::unique_ptr<MicroData> data = [] {
    MicroConfig config;
    config.r_rows = 1'000'000;
    config.s_small_rows = 100;
    config.s_large_rows = 1'000;
    config.c_cardinalities = {250'000};
    config.seed = 29;
    return MicroData::Generate(config);
  }();
  return data.get();
}

QueryPlan SpillPlan() {
  return MicroQ2(Data()->c_columns[0], Data()->c_actual[0], 100);
}

// One budgeted, spill-enabled run at an effectively unlimited budget:
// its high-water mark is the in-memory working set the div-N budgets are
// derived from.
int64_t MeasureInMemoryPeak() {
  static int64_t peak = [] {
    exec::QueryContext ctx(
        exec::QueryContext::Limits{/*mem_limit_bytes=*/1LL << 40});
    StrategyOptions options;
    options.num_threads = 1;
    options.query_ctx = &ctx;
    options.spill = 1;
    MakeStrategy(StrategyKind::kDataCentric, Data()->catalog, options)
        ->Execute(SpillPlan())
        .status()
        .CheckOK();
    return ctx.peak_bytes();
  }();
  return peak;
}

// Budgeted run: divisor 0 means "no QueryContext at all" (the dormant
// in-memory path), divisor < 0 means "budget well above the peak".
void SpillGroupBy(benchmark::State& state, StrategyKind kind,
                  int64_t divisor) {
  QueryPlan plan = SpillPlan();
  const int64_t peak = divisor != 0 ? MeasureInMemoryPeak() : 0;
  const int64_t budget =
      divisor > 0 ? std::max<int64_t>(peak / divisor, 1) : 4 * peak;
  int64_t spills = 0;
  int64_t observed_peak = 0;
  int64_t runs = 0;
  for (auto _ : state) {
    StrategyOptions options;
    options.num_threads = 1;
    std::unique_ptr<exec::QueryContext> ctx;
    if (divisor != 0) {
      ctx = std::make_unique<exec::QueryContext>(
          exec::QueryContext::Limits{budget});
      options.query_ctx = ctx.get();
      options.spill = 1;
    }
    Result<QueryResult> result =
        MakeStrategy(kind, Data()->catalog, options)->Execute(plan);
    result.status().CheckOK();
    benchmark::DoNotOptimize(result->NumGroups());
    if (ctx != nullptr) {
      spills += ctx->spills();
      observed_peak = std::max(observed_peak, ctx->peak_bytes());
    }
    ++runs;
  }
  if (divisor != 0 && runs > 0) {
    state.counters["spills"] =
        static_cast<double>(spills) / static_cast<double>(runs);
    state.counters["peak_mb"] =
        static_cast<double>(observed_peak) / (1024.0 * 1024.0);
    state.counters["budget_mb"] =
        static_cast<double>(budget) / (1024.0 * 1024.0);
  }
}

void RegisterAll() {
  struct Row {
    const char* label;
    int64_t divisor;
  };
  static constexpr Row kRows[] = {{"q2_in_memory", 0},
                                  {"q2_budget_full", -1},
                                  {"q2_budget_div2", 2},
                                  {"q2_budget_div4", 4},
                                  {"q2_budget_div8", 8}};
  for (const Row& row : kRows) {
    for (StrategyKind kind : kKinds) {
      benchmark::RegisterBenchmark(
          StringFormat("spill/%s/%s", row.label, StrategyKindName(kind))
              .c_str(),
          [kind, divisor = row.divisor](benchmark::State& state) {
            SpillGroupBy(state, kind, divisor);
          })
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace swole

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  swole::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
