// Governance overhead: the cost of running a query under an active
// QueryContext — morsel-boundary cancellation checks plus memory-tracker
// charges on every hash-table/bitmap growth — measured on TPC-H Q1 and Q3
// against the ungoverned baseline (null context: no hooks attach, no
// checks run). The acceptance bar is < 2% on Q1; see BENCH_governance.json.
//
// Series per query: ungoverned | governed (a non-binding 1 TiB budget, so
// every check runs and nothing aborts).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "exec/query_context.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace swole {
namespace {

void RegisterGoverned(const std::string& name, const Catalog& catalog,
                      StrategyKind kind, QueryPlan plan) {
  bench::PlanPool().push_back(std::make_unique<QueryPlan>(std::move(plan)));
  const QueryPlan* plan_ptr = bench::PlanPool().back().get();
  StrategyOptions options;
  // Non-binding budget: the tracker and cancellation token are live on
  // every execution, but no limit ever refuses a charge.
  options.mem_limit_bytes = int64_t{1} << 40;
  bench::EnginePool().push_back(MakeStrategy(kind, catalog, options));
  Strategy* engine = bench::EnginePool().back().get();
  benchmark::RegisterBenchmark(name.c_str(),
                               [plan_ptr, engine](benchmark::State& state) {
                                 int64_t checksum = 0;
                                 for (auto _ : state) {
                                   Result<QueryResult> result =
                                       engine->Execute(*plan_ptr);
                                   result.status().CheckOK();
                                   checksum ^= result->grouped
                                                   ? result->NumGroups()
                                                   : result->scalar[0];
                                   benchmark::DoNotOptimize(checksum);
                                 }
                               })
      ->Unit(benchmark::kMillisecond);
}

void RegisterAll(const tpch::TpchData& data) {
  struct Row {
    const char* name;
    QueryPlan (*build)(const Catalog&);
  };
  static constexpr Row kRows[] = {{"Q1", tpch::Q1}, {"Q3", tpch::Q3}};
  for (const Row& row : kRows) {
    for (StrategyKind kind :
         {StrategyKind::kDataCentric, StrategyKind::kSwole}) {
      bench::RegisterPlanBenchmark(
          StringFormat("governance/%s/%s/ungoverned", row.name,
                       StrategyKindName(kind)),
          data.catalog, kind, row.build(data.catalog));
      RegisterGoverned(StringFormat("governance/%s/%s/governed", row.name,
                                    StrategyKindName(kind)),
                       data.catalog, kind, row.build(data.catalog));
    }
  }
}

}  // namespace
}  // namespace swole

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  auto data = swole::tpch::TpchData::Generate(
      swole::tpch::TpchConfig::FromEnv());
  swole::RegisterAll(*data);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
