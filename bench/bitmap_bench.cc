// Positional-bitmap deep dive (extension around §III-D): plain vs
// block-compressed bitmap probes on the micro Q4 join at several build-
// side selectivities (selectivity controls compressibility: near-0% and
// near-100% bitmaps collapse to all-zero/all-one blocks), plus raw data-
// structure microbenchmarks: build, probe, popcount.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/random.h"
#include "micro/micro.h"
#include "storage/bitmap.h"

namespace swole {
namespace {

void RegisterQueryLevel(const MicroData& data) {
  for (int64_t sel : {int64_t{2}, int64_t{50}, int64_t{98}}) {
    bench::RegisterPlanBenchmark(
        StringFormat("bitmap_q4/plain/build_sel:%lld",
                     static_cast<long long>(sel)),
        data.catalog, StrategyKind::kSwole,
        MicroQ4(/*large_s=*/true, 90, sel));
    StrategyOptions compressed;
    compressed.use_compressed_bitmaps = true;
    bench::RegisterPlanBenchmark(
        StringFormat("bitmap_q4/compressed/build_sel:%lld",
                     static_cast<long long>(sel)),
        data.catalog, StrategyKind::kSwole,
        MicroQ4(/*large_s=*/true, 90, sel), compressed);
  }
}

// Raw structure benchmarks.
void BM_BitmapBuild(benchmark::State& state) {
  int64_t bits = state.range(0);
  Rng rng(1);
  std::vector<uint8_t> cmp(bits);
  for (auto& b : cmp) b = rng.Bernoulli(0.5) ? 1 : 0;
  for (auto _ : state) {
    PositionalBitmap bm(bits);
    for (int64_t start = 0; start < bits; start += 1024) {
      int64_t len = std::min<int64_t>(1024, bits - start);
      bm.PackBytes(start, cmp.data() + start, len);
    }
    benchmark::DoNotOptimize(bm.CountSetBits());
  }
}
BENCHMARK(BM_BitmapBuild)->Arg(1 << 20)->Arg(1 << 24)
    ->Unit(benchmark::kMillisecond);

void BM_BitmapProbe(benchmark::State& state) {
  int64_t bits = state.range(0);
  bool compressed = state.range(1) != 0;
  Rng rng(2);
  PositionalBitmap bm(bits);
  for (int64_t i = 0; i < bits; ++i) {
    if (rng.Bernoulli(0.5)) bm.Set(i);
  }
  CompressedBitmap cb = CompressedBitmap::Compress(bm);
  std::vector<uint32_t> probes(1 << 20);
  for (auto& p : probes) {
    p = static_cast<uint32_t>(rng.NextBounded(bits));
  }
  for (auto _ : state) {
    int64_t hits = 0;
    if (compressed) {
      for (uint32_t p : probes) hits += cb.Test(p);
    } else {
      for (uint32_t p : probes) hits += bm.Test(p);
    }
    benchmark::DoNotOptimize(hits);
  }
  state.counters["bytes"] = static_cast<double>(
      compressed ? cb.ByteSize() : bm.ByteSize());
}
BENCHMARK(BM_BitmapProbe)
    ->Args({1 << 20, 0})
    ->Args({1 << 20, 1})
    ->Args({1 << 24, 0})
    ->Args({1 << 24, 1})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace swole

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  auto data = swole::MicroData::Generate(swole::MicroConfig::FromEnv());
  swole::RegisterQueryLevel(*data);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
