// TPC-H substrate tests: generator invariants (row counts, key structure,
// domains, predicate selectivities the paper depends on) and full
// correctness of all four strategies against the reference oracle on all
// eight evaluated queries.

#include <gtest/gtest.h>

#include <memory>

#include "common/string_util.h"
#include "cost/estimates.h"
#include "engine/reference_engine.h"
#include "storage/table.h"
#include "strategies/strategy.h"
#include "strategies/swole.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace swole {
namespace {

using tpch::TpchConfig;
using tpch::TpchData;

class TpchTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    TpchConfig config;
    config.scale_factor = 0.002;  // ~3000 orders, ~12000 lineitems
    config.seed = 99;
    data_ = TpchData::Generate(config).release();
  }
  static void TearDownTestSuite() {
    delete data_;
    data_ = nullptr;
  }

  static TpchData* data_;
};

TpchData* TpchTest::data_ = nullptr;

TEST_F(TpchTest, RowCountsScale) {
  EXPECT_EQ(data_->catalog.TableRef("region").num_rows(), 5);
  EXPECT_EQ(data_->catalog.TableRef("nation").num_rows(), 25);
  EXPECT_EQ(data_->catalog.TableRef("orders").num_rows(),
            data_->num_orders);
  EXPECT_EQ(data_->catalog.TableRef("lineitem").num_rows(),
            data_->num_lineitems);
  // 1..7 lineitems per order.
  EXPECT_GE(data_->num_lineitems, data_->num_orders);
  EXPECT_LE(data_->num_lineitems, 7 * data_->num_orders);
  EXPECT_NEAR(static_cast<double>(data_->num_lineitems) /
                  static_cast<double>(data_->num_orders),
              4.0, 0.5);
}

TEST_F(TpchTest, KeysAreDenseAndFkIndexesRegistered) {
  const Table& orders = data_->catalog.TableRef("orders");
  EXPECT_EQ(orders.ColumnRef("o_orderkey").MinValue(), 0);
  EXPECT_EQ(orders.ColumnRef("o_orderkey").MaxValue(),
            data_->num_orders - 1);
  const Table& lineitem = data_->catalog.TableRef("lineitem");
  EXPECT_TRUE(lineitem.GetFkIndex("l_orderkey").ok());
  EXPECT_TRUE(lineitem.GetFkIndex("l_partkey").ok());
  EXPECT_TRUE(lineitem.GetFkIndex("l_suppkey").ok());
  EXPECT_TRUE(orders.GetFkIndex("o_custkey").ok());
  EXPECT_TRUE(
      data_->catalog.TableRef("customer").GetFkIndex("c_nationkey").ok());
  EXPECT_TRUE(
      data_->catalog.TableRef("nation").GetFkIndex("n_regionkey").ok());
}

TEST_F(TpchTest, DateArithmeticInvariants) {
  const Table& lineitem = data_->catalog.TableRef("lineitem");
  const Column& ship = lineitem.ColumnRef("l_shipdate");
  const Column& receipt = lineitem.ColumnRef("l_receiptdate");
  const Column& commit = lineitem.ColumnRef("l_commitdate");
  for (int64_t row = 0; row < std::min<int64_t>(2000, lineitem.num_rows());
       ++row) {
    EXPECT_GT(receipt.ValueAt(row), ship.ValueAt(row));
    EXPECT_LE(receipt.ValueAt(row) - ship.ValueAt(row), 30);
    EXPECT_GE(commit.ValueAt(row), tpch::StartDate());
  }
  EXPECT_GE(ship.MinValue(), tpch::StartDate());
  EXPECT_LE(ship.MaxValue(), tpch::EndDate());
}

TEST_F(TpchTest, DictionariesHoldExpectedVocabularies) {
  const Table& part = data_->catalog.TableRef("part");
  EXPECT_EQ(part.ColumnRef("p_brand").dictionary()->size(), 25);
  EXPECT_LE(part.ColumnRef("p_type").dictionary()->size(), 150);
  EXPECT_LE(part.ColumnRef("p_container").dictionary()->size(), 40);
  EXPECT_GE(tpch::DictCode(data_->catalog, "part", "p_brand", "Brand#12"),
            0);
  EXPECT_GE(tpch::DictCode(data_->catalog, "region", "r_name", "ASIA"), 0);
  EXPECT_GE(tpch::DictCode(data_->catalog, "lineitem", "l_shipinstruct",
                           "DELIVER IN PERSON"),
            0);
  EXPECT_EQ(
      tpch::DictCode(data_->catalog, "region", "r_name", "ATLANTIS"), -1);
}

TEST_F(TpchTest, PaperSelectivitiesHold) {
  const Table& lineitem = data_->catalog.TableRef("lineitem");
  // Q1 predicate selects ~98%.
  {
    ExprPtr pred = Le(Col("l_shipdate"), Lit(ParseDate("1998-12-01") - 90));
    double sel = EstimateSelectivity(lineitem, *pred);
    EXPECT_GT(sel, 0.93);
    EXPECT_LT(sel, 1.0);
  }
  // Q6 predicate selects ~2%.
  {
    QueryPlan q6 = tpch::Q6(data_->catalog);
    double sel = EstimateSelectivity(lineitem, *q6.fact_filter);
    EXPECT_GT(sel, 0.003);
    EXPECT_LT(sel, 0.05);
  }
  // Q13 NOT LIKE passes ~98%.
  {
    QueryPlan q13 = tpch::Q13(data_->catalog);
    double sel = EstimateSelectivity(data_->catalog.TableRef("orders"),
                                     *q13.fact_filter);
    EXPECT_GT(sel, 0.95);
    EXPECT_LT(sel, 0.995);
  }
  // Q4's orders quarter is ~1/26 of the date range (~4%).
  {
    QueryPlan q4 = tpch::Q4(data_->catalog);
    double sel = EstimateSelectivity(data_->catalog.TableRef("orders"),
                                     *q4.fact_filter);
    EXPECT_GT(sel, 0.02);
    EXPECT_LT(sel, 0.06);
  }
}

TEST_F(TpchTest, ZeroOrderCustomersExist) {
  // dbgen rule: custkey % 3 == 0 places no orders — Q13's zero bucket.
  const Column& custkey =
      data_->catalog.TableRef("orders").ColumnRef("o_custkey");
  for (int64_t row = 0; row < custkey.size(); ++row) {
    EXPECT_NE(custkey.ValueAt(row) % 3, 0) << "row " << row;
  }
}

class TpchQuerySweep : public TpchTest,
                       public ::testing::WithParamInterface<int> {};

TEST_P(TpchQuerySweep, AllStrategiesMatchReference) {
  std::vector<QueryPlan> plans = tpch::AllQueries(data_->catalog);
  const QueryPlan& plan = plans[GetParam()];

  ReferenceEngine oracle(data_->catalog);
  Result<QueryResult> expected = oracle.Execute(plan);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  for (StrategyKind kind :
       {StrategyKind::kDataCentric, StrategyKind::kHybrid, StrategyKind::kRof,
        StrategyKind::kSwole}) {
    std::unique_ptr<Strategy> engine = MakeStrategy(kind, data_->catalog);
    Result<QueryResult> actual = engine->Execute(plan);
    ASSERT_TRUE(actual.ok())
        << plan.name << " " << engine->name() << ": "
        << actual.status().ToString();
    EXPECT_EQ(*actual, *expected)
        << engine->name() << " diverges on " << plan.name << "\nexpected:\n"
        << expected->ToString() << "actual:\n"
        << actual->ToString();
  }
}

TEST_P(TpchQuerySweep, ForcedSwoleTechniquesMatchReference) {
  std::vector<QueryPlan> plans = tpch::AllQueries(data_->catalog);
  const QueryPlan& plan = plans[GetParam()];

  ReferenceEngine oracle(data_->catalog);
  QueryResult expected = oracle.Execute(plan).value();

  for (StrategyOptions::ForceAgg force :
       {StrategyOptions::ForceAgg::kValueMasking,
        StrategyOptions::ForceAgg::kKeyMasking,
        StrategyOptions::ForceAgg::kHybridFallback}) {
    StrategyOptions options;
    options.force_agg = force;
    std::unique_ptr<SwoleStrategy> engine =
        MakeSwoleStrategy(data_->catalog, options);
    Result<QueryResult> actual = engine->Execute(plan);
    ASSERT_TRUE(actual.ok()) << plan.name << ": "
                             << actual.status().ToString();
    EXPECT_EQ(*actual, expected)
        << plan.name << " forced " << static_cast<int>(force);
  }
}

TEST_P(TpchQuerySweep, AblationFlagsStillCorrect) {
  std::vector<QueryPlan> plans = tpch::AllQueries(data_->catalog);
  const QueryPlan& plan = plans[GetParam()];
  ReferenceEngine oracle(data_->catalog);
  QueryResult expected = oracle.Execute(plan).value();

  for (int knob = 0; knob < 3; ++knob) {
    StrategyOptions options;
    if (knob == 0) options.enable_positional_bitmaps = false;
    if (knob == 1) options.enable_access_merging = false;
    if (knob == 2) options.enable_eager_aggregation = false;
    std::unique_ptr<SwoleStrategy> engine =
        MakeSwoleStrategy(data_->catalog, options);
    Result<QueryResult> actual = engine->Execute(plan);
    ASSERT_TRUE(actual.ok()) << plan.name << " knob " << knob;
    EXPECT_EQ(*actual, expected) << plan.name << " knob " << knob;
  }
}

std::string TpchQueryName(const ::testing::TestParamInfo<int>& info) {
  static constexpr const char* kNames[] = {"Q1",  "Q3",  "Q4",  "Q5",
                                           "Q6",  "Q13", "Q14", "Q19"};
  return kNames[info.param];
}

INSTANTIATE_TEST_SUITE_P(AllEight, TpchQuerySweep, ::testing::Range(0, 8),
                         TpchQueryName);

TEST_F(TpchTest, Q14PromoShareIsPlausible) {
  // PROMO is 1 of 6 type syllables -> promo revenue should be roughly 1/6
  // of total revenue.
  ReferenceEngine oracle(data_->catalog);
  QueryResult result = oracle.Execute(tpch::Q14(data_->catalog)).value();
  ASSERT_EQ(result.scalar.size(), 2u);
  double share = static_cast<double>(result.scalar[0]) /
                 static_cast<double>(result.scalar[1]);
  EXPECT_GT(share, 0.05);
  EXPECT_LT(share, 0.35);
}

TEST_F(TpchTest, Q13HistogramHasZeroBucket) {
  ReferenceEngine oracle(data_->catalog);
  QueryResult result = oracle.Execute(tpch::Q13(data_->catalog)).value();
  ASSERT_TRUE(result.grouped);
  ASSERT_GT(result.NumGroups(), 0);
  // First row is count 0: the ~1/3 of customers with no orders.
  EXPECT_EQ(result.group_keys[0], 0);
  int64_t customers = data_->catalog.TableRef("customer").num_rows();
  EXPECT_GT(result.GroupAgg(0, 0), customers / 4);
  // Total groups across buckets == number of customers.
  int64_t total = 0;
  for (int64_t i = 0; i < result.NumGroups(); ++i) {
    total += result.GroupAgg(i, 0);
  }
  EXPECT_EQ(total, customers);
}

}  // namespace
}  // namespace swole
